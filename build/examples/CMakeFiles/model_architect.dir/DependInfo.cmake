
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/model_architect.cpp" "examples/CMakeFiles/model_architect.dir/model_architect.cpp.o" "gcc" "examples/CMakeFiles/model_architect.dir/model_architect.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stash/CMakeFiles/stash_profiler.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/stash_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ddl/CMakeFiles/stash_ddl.dir/DependInfo.cmake"
  "/root/repo/build/src/coll/CMakeFiles/stash_coll.dir/DependInfo.cmake"
  "/root/repo/build/src/dnn/CMakeFiles/stash_dnn.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/stash_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/stash_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/stash_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stash_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
