file(REMOVE_RECURSE
  "CMakeFiles/model_architect.dir/model_architect.cpp.o"
  "CMakeFiles/model_architect.dir/model_architect.cpp.o.d"
  "model_architect"
  "model_architect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_architect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
