# Empty compiler generated dependencies file for model_architect.
# This may be replaced when dependencies are built.
