file(REMOVE_RECURSE
  "CMakeFiles/cluster_sweep.dir/cluster_sweep.cpp.o"
  "CMakeFiles/cluster_sweep.dir/cluster_sweep.cpp.o.d"
  "cluster_sweep"
  "cluster_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
