file(REMOVE_RECURSE
  "CMakeFiles/stash_cli.dir/stash_cli.cpp.o"
  "CMakeFiles/stash_cli.dir/stash_cli.cpp.o.d"
  "stash_cli"
  "stash_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stash_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
