# Empty dependencies file for stash_cli.
# This may be replaced when dependencies are built.
