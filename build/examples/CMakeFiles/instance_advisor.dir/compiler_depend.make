# Empty compiler generated dependencies file for instance_advisor.
# This may be replaced when dependencies are built.
