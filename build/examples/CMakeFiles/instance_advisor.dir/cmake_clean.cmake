file(REMOVE_RECURSE
  "CMakeFiles/instance_advisor.dir/instance_advisor.cpp.o"
  "CMakeFiles/instance_advisor.dir/instance_advisor.cpp.o.d"
  "instance_advisor"
  "instance_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instance_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
