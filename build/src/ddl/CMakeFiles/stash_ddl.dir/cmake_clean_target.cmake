file(REMOVE_RECURSE
  "libstash_ddl.a"
)
