file(REMOVE_RECURSE
  "CMakeFiles/stash_ddl.dir/pipeline.cpp.o"
  "CMakeFiles/stash_ddl.dir/pipeline.cpp.o.d"
  "CMakeFiles/stash_ddl.dir/trainer.cpp.o"
  "CMakeFiles/stash_ddl.dir/trainer.cpp.o.d"
  "libstash_ddl.a"
  "libstash_ddl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stash_ddl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
