# Empty compiler generated dependencies file for stash_ddl.
# This may be replaced when dependencies are built.
