file(REMOVE_RECURSE
  "libstash_analysis.a"
)
