file(REMOVE_RECURSE
  "CMakeFiles/stash_analysis.dir/analytic_model.cpp.o"
  "CMakeFiles/stash_analysis.dir/analytic_model.cpp.o.d"
  "libstash_analysis.a"
  "libstash_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stash_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
