# Empty compiler generated dependencies file for stash_analysis.
# This may be replaced when dependencies are built.
