file(REMOVE_RECURSE
  "CMakeFiles/stash_util.dir/log.cpp.o"
  "CMakeFiles/stash_util.dir/log.cpp.o.d"
  "CMakeFiles/stash_util.dir/table.cpp.o"
  "CMakeFiles/stash_util.dir/table.cpp.o.d"
  "CMakeFiles/stash_util.dir/trace.cpp.o"
  "CMakeFiles/stash_util.dir/trace.cpp.o.d"
  "libstash_util.a"
  "libstash_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stash_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
