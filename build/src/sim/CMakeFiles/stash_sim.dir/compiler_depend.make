# Empty compiler generated dependencies file for stash_sim.
# This may be replaced when dependencies are built.
