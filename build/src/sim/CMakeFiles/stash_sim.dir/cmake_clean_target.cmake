file(REMOVE_RECURSE
  "libstash_sim.a"
)
