file(REMOVE_RECURSE
  "CMakeFiles/stash_sim.dir/simulator.cpp.o"
  "CMakeFiles/stash_sim.dir/simulator.cpp.o.d"
  "libstash_sim.a"
  "libstash_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stash_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
