# CMake generated Testfile for 
# Source directory: /root/repo/src/stash
# Build directory: /root/repo/build/src/stash
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
