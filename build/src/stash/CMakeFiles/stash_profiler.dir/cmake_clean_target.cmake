file(REMOVE_RECURSE
  "libstash_profiler.a"
)
