# Empty dependencies file for stash_profiler.
# This may be replaced when dependencies are built.
