file(REMOVE_RECURSE
  "CMakeFiles/stash_profiler.dir/ds_analyzer.cpp.o"
  "CMakeFiles/stash_profiler.dir/ds_analyzer.cpp.o.d"
  "CMakeFiles/stash_profiler.dir/profiler.cpp.o"
  "CMakeFiles/stash_profiler.dir/profiler.cpp.o.d"
  "CMakeFiles/stash_profiler.dir/recommend.cpp.o"
  "CMakeFiles/stash_profiler.dir/recommend.cpp.o.d"
  "CMakeFiles/stash_profiler.dir/session.cpp.o"
  "CMakeFiles/stash_profiler.dir/session.cpp.o.d"
  "libstash_profiler.a"
  "libstash_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stash_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
