file(REMOVE_RECURSE
  "libstash_hw.a"
)
