# Empty compiler generated dependencies file for stash_hw.
# This may be replaced when dependencies are built.
