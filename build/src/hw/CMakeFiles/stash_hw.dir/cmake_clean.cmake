file(REMOVE_RECURSE
  "CMakeFiles/stash_hw.dir/flow_network.cpp.o"
  "CMakeFiles/stash_hw.dir/flow_network.cpp.o.d"
  "CMakeFiles/stash_hw.dir/gpu.cpp.o"
  "CMakeFiles/stash_hw.dir/gpu.cpp.o.d"
  "CMakeFiles/stash_hw.dir/topology.cpp.o"
  "CMakeFiles/stash_hw.dir/topology.cpp.o.d"
  "libstash_hw.a"
  "libstash_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stash_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
