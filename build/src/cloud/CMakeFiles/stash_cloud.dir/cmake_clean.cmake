file(REMOVE_RECURSE
  "CMakeFiles/stash_cloud.dir/builder.cpp.o"
  "CMakeFiles/stash_cloud.dir/builder.cpp.o.d"
  "CMakeFiles/stash_cloud.dir/instance.cpp.o"
  "CMakeFiles/stash_cloud.dir/instance.cpp.o.d"
  "CMakeFiles/stash_cloud.dir/network_qos.cpp.o"
  "CMakeFiles/stash_cloud.dir/network_qos.cpp.o.d"
  "CMakeFiles/stash_cloud.dir/spot.cpp.o"
  "CMakeFiles/stash_cloud.dir/spot.cpp.o.d"
  "libstash_cloud.a"
  "libstash_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stash_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
