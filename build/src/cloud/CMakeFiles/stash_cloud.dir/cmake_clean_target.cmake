file(REMOVE_RECURSE
  "libstash_cloud.a"
)
