# Empty dependencies file for stash_cloud.
# This may be replaced when dependencies are built.
