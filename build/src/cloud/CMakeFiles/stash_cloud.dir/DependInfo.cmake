
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cloud/builder.cpp" "src/cloud/CMakeFiles/stash_cloud.dir/builder.cpp.o" "gcc" "src/cloud/CMakeFiles/stash_cloud.dir/builder.cpp.o.d"
  "/root/repo/src/cloud/instance.cpp" "src/cloud/CMakeFiles/stash_cloud.dir/instance.cpp.o" "gcc" "src/cloud/CMakeFiles/stash_cloud.dir/instance.cpp.o.d"
  "/root/repo/src/cloud/network_qos.cpp" "src/cloud/CMakeFiles/stash_cloud.dir/network_qos.cpp.o" "gcc" "src/cloud/CMakeFiles/stash_cloud.dir/network_qos.cpp.o.d"
  "/root/repo/src/cloud/spot.cpp" "src/cloud/CMakeFiles/stash_cloud.dir/spot.cpp.o" "gcc" "src/cloud/CMakeFiles/stash_cloud.dir/spot.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/stash_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stash_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/stash_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
