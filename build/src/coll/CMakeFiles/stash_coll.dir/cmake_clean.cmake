file(REMOVE_RECURSE
  "CMakeFiles/stash_coll.dir/baselines.cpp.o"
  "CMakeFiles/stash_coll.dir/baselines.cpp.o.d"
  "CMakeFiles/stash_coll.dir/ring_allreduce.cpp.o"
  "CMakeFiles/stash_coll.dir/ring_allreduce.cpp.o.d"
  "libstash_coll.a"
  "libstash_coll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stash_coll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
