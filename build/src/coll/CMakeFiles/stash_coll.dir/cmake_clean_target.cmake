file(REMOVE_RECURSE
  "libstash_coll.a"
)
