# Empty dependencies file for stash_coll.
# This may be replaced when dependencies are built.
