file(REMOVE_RECURSE
  "libstash_dnn.a"
)
