
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dnn/bert.cpp" "src/dnn/CMakeFiles/stash_dnn.dir/bert.cpp.o" "gcc" "src/dnn/CMakeFiles/stash_dnn.dir/bert.cpp.o.d"
  "/root/repo/src/dnn/model.cpp" "src/dnn/CMakeFiles/stash_dnn.dir/model.cpp.o" "gcc" "src/dnn/CMakeFiles/stash_dnn.dir/model.cpp.o.d"
  "/root/repo/src/dnn/profile_model.cpp" "src/dnn/CMakeFiles/stash_dnn.dir/profile_model.cpp.o" "gcc" "src/dnn/CMakeFiles/stash_dnn.dir/profile_model.cpp.o.d"
  "/root/repo/src/dnn/resnet.cpp" "src/dnn/CMakeFiles/stash_dnn.dir/resnet.cpp.o" "gcc" "src/dnn/CMakeFiles/stash_dnn.dir/resnet.cpp.o.d"
  "/root/repo/src/dnn/vgg.cpp" "src/dnn/CMakeFiles/stash_dnn.dir/vgg.cpp.o" "gcc" "src/dnn/CMakeFiles/stash_dnn.dir/vgg.cpp.o.d"
  "/root/repo/src/dnn/zoo.cpp" "src/dnn/CMakeFiles/stash_dnn.dir/zoo.cpp.o" "gcc" "src/dnn/CMakeFiles/stash_dnn.dir/zoo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/stash_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
