file(REMOVE_RECURSE
  "CMakeFiles/stash_dnn.dir/bert.cpp.o"
  "CMakeFiles/stash_dnn.dir/bert.cpp.o.d"
  "CMakeFiles/stash_dnn.dir/model.cpp.o"
  "CMakeFiles/stash_dnn.dir/model.cpp.o.d"
  "CMakeFiles/stash_dnn.dir/profile_model.cpp.o"
  "CMakeFiles/stash_dnn.dir/profile_model.cpp.o.d"
  "CMakeFiles/stash_dnn.dir/resnet.cpp.o"
  "CMakeFiles/stash_dnn.dir/resnet.cpp.o.d"
  "CMakeFiles/stash_dnn.dir/vgg.cpp.o"
  "CMakeFiles/stash_dnn.dir/vgg.cpp.o.d"
  "CMakeFiles/stash_dnn.dir/zoo.cpp.o"
  "CMakeFiles/stash_dnn.dir/zoo.cpp.o.d"
  "libstash_dnn.a"
  "libstash_dnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stash_dnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
