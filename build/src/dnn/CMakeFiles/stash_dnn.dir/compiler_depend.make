# Empty compiler generated dependencies file for stash_dnn.
# This may be replaced when dependencies are built.
