# Empty dependencies file for stash_dnn.
# This may be replaced when dependencies are built.
