file(REMOVE_RECURSE
  "CMakeFiles/test_stash.dir/stash/batch_sweep_test.cpp.o"
  "CMakeFiles/test_stash.dir/stash/batch_sweep_test.cpp.o.d"
  "CMakeFiles/test_stash.dir/stash/characterization_test.cpp.o"
  "CMakeFiles/test_stash.dir/stash/characterization_test.cpp.o.d"
  "CMakeFiles/test_stash.dir/stash/ds_analyzer_test.cpp.o"
  "CMakeFiles/test_stash.dir/stash/ds_analyzer_test.cpp.o.d"
  "CMakeFiles/test_stash.dir/stash/profiler_test.cpp.o"
  "CMakeFiles/test_stash.dir/stash/profiler_test.cpp.o.d"
  "CMakeFiles/test_stash.dir/stash/recommend_test.cpp.o"
  "CMakeFiles/test_stash.dir/stash/recommend_test.cpp.o.d"
  "CMakeFiles/test_stash.dir/stash/session_test.cpp.o"
  "CMakeFiles/test_stash.dir/stash/session_test.cpp.o.d"
  "test_stash"
  "test_stash.pdb"
  "test_stash[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
