file(REMOVE_RECURSE
  "CMakeFiles/test_coll.dir/coll/baselines_test.cpp.o"
  "CMakeFiles/test_coll.dir/coll/baselines_test.cpp.o.d"
  "CMakeFiles/test_coll.dir/coll/collective_sweep_test.cpp.o"
  "CMakeFiles/test_coll.dir/coll/collective_sweep_test.cpp.o.d"
  "CMakeFiles/test_coll.dir/coll/comm_stream_test.cpp.o"
  "CMakeFiles/test_coll.dir/coll/comm_stream_test.cpp.o.d"
  "CMakeFiles/test_coll.dir/coll/ring_allreduce_test.cpp.o"
  "CMakeFiles/test_coll.dir/coll/ring_allreduce_test.cpp.o.d"
  "test_coll"
  "test_coll.pdb"
  "test_coll[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
