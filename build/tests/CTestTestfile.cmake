# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_hw[1]_include.cmake")
include("/root/repo/build/tests/test_dnn[1]_include.cmake")
include("/root/repo/build/tests/test_cloud[1]_include.cmake")
include("/root/repo/build/tests/test_coll[1]_include.cmake")
include("/root/repo/build/tests/test_ddl[1]_include.cmake")
include("/root/repo/build/tests/test_stash[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
