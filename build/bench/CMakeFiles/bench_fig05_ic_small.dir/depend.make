# Empty dependencies file for bench_fig05_ic_small.
# This may be replaced when dependencies are built.
