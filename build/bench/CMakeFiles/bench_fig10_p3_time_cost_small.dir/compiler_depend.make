# Empty compiler generated dependencies file for bench_fig10_p3_time_cost_small.
# This may be replaced when dependencies are built.
