# Empty dependencies file for bench_ext_straggler.
# This may be replaced when dependencies are built.
