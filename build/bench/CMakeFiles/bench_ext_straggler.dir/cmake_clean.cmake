file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_straggler.dir/bench_ext_straggler.cpp.o"
  "CMakeFiles/bench_ext_straggler.dir/bench_ext_straggler.cpp.o.d"
  "bench_ext_straggler"
  "bench_ext_straggler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_straggler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
