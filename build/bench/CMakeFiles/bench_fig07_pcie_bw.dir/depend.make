# Empty dependencies file for bench_fig07_pcie_bw.
# This may be replaced when dependencies are built.
