file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_pcie_bw.dir/bench_fig07_pcie_bw.cpp.o"
  "CMakeFiles/bench_fig07_pcie_bw.dir/bench_fig07_pcie_bw.cpp.o.d"
  "bench_fig07_pcie_bw"
  "bench_fig07_pcie_bw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_pcie_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
