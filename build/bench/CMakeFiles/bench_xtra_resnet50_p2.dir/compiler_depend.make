# Empty compiler generated dependencies file for bench_xtra_resnet50_p2.
# This may be replaced when dependencies are built.
