file(REMOVE_RECURSE
  "CMakeFiles/bench_xtra_resnet50_p2.dir/bench_xtra_resnet50_p2.cpp.o"
  "CMakeFiles/bench_xtra_resnet50_p2.dir/bench_xtra_resnet50_p2.cpp.o.d"
  "bench_xtra_resnet50_p2"
  "bench_xtra_resnet50_p2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_xtra_resnet50_p2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
