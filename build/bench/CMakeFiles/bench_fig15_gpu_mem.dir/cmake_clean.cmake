file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_gpu_mem.dir/bench_fig15_gpu_mem.cpp.o"
  "CMakeFiles/bench_fig15_gpu_mem.dir/bench_fig15_gpu_mem.cpp.o.d"
  "bench_fig15_gpu_mem"
  "bench_fig15_gpu_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_gpu_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
