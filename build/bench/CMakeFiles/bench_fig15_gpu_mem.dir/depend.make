# Empty dependencies file for bench_fig15_gpu_mem.
# This may be replaced when dependencies are built.
