# Empty dependencies file for bench_ablation_analytic.
# This may be replaced when dependencies are built.
