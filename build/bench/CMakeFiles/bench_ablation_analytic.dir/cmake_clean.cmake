file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_analytic.dir/bench_ablation_analytic.cpp.o"
  "CMakeFiles/bench_ablation_analytic.dir/bench_ablation_analytic.cpp.o.d"
  "bench_ablation_analytic"
  "bench_ablation_analytic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_analytic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
