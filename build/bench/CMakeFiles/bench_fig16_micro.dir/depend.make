# Empty dependencies file for bench_fig16_micro.
# This may be replaced when dependencies are built.
