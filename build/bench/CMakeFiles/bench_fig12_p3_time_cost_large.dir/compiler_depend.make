# Empty compiler generated dependencies file for bench_fig12_p3_time_cost_large.
# This may be replaced when dependencies are built.
