# Empty compiler generated dependencies file for bench_fig06_p2_time_cost.
# This may be replaced when dependencies are built.
