# Empty compiler generated dependencies file for bench_ablation_dsanalyzer.
# This may be replaced when dependencies are built.
