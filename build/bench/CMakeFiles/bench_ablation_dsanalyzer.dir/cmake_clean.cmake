file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dsanalyzer.dir/bench_ablation_dsanalyzer.cpp.o"
  "CMakeFiles/bench_ablation_dsanalyzer.dir/bench_ablation_dsanalyzer.cpp.o.d"
  "bench_ablation_dsanalyzer"
  "bench_ablation_dsanalyzer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dsanalyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
