# Empty compiler generated dependencies file for bench_fig09_p3_cpu_disk_large.
# This may be replaced when dependencies are built.
