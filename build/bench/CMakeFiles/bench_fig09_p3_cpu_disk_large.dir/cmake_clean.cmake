file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_p3_cpu_disk_large.dir/bench_fig09_p3_cpu_disk_large.cpp.o"
  "CMakeFiles/bench_fig09_p3_cpu_disk_large.dir/bench_fig09_p3_cpu_disk_large.cpp.o.d"
  "bench_fig09_p3_cpu_disk_large"
  "bench_fig09_p3_cpu_disk_large.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_p3_cpu_disk_large.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
