file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_p2_cpu_disk.dir/bench_fig04_p2_cpu_disk.cpp.o"
  "CMakeFiles/bench_fig04_p2_cpu_disk.dir/bench_fig04_p2_cpu_disk.cpp.o.d"
  "bench_fig04_p2_cpu_disk"
  "bench_fig04_p2_cpu_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_p2_cpu_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
