# Empty compiler generated dependencies file for bench_fig04_p2_cpu_disk.
# This may be replaced when dependencies are built.
