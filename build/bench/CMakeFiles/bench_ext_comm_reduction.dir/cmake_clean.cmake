file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_comm_reduction.dir/bench_ext_comm_reduction.cpp.o"
  "CMakeFiles/bench_ext_comm_reduction.dir/bench_ext_comm_reduction.cpp.o.d"
  "bench_ext_comm_reduction"
  "bench_ext_comm_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_comm_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
