# Empty compiler generated dependencies file for bench_ext_comm_reduction.
# This may be replaced when dependencies are built.
