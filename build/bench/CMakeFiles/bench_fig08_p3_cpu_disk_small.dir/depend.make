# Empty dependencies file for bench_fig08_p3_cpu_disk_small.
# This may be replaced when dependencies are built.
