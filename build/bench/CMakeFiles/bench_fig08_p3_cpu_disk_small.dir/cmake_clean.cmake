file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_p3_cpu_disk_small.dir/bench_fig08_p3_cpu_disk_small.cpp.o"
  "CMakeFiles/bench_fig08_p3_cpu_disk_small.dir/bench_fig08_p3_cpu_disk_small.cpp.o.d"
  "bench_fig08_p3_cpu_disk_small"
  "bench_fig08_p3_cpu_disk_small.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_p3_cpu_disk_small.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
