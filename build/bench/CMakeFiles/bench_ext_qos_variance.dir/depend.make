# Empty dependencies file for bench_ext_qos_variance.
# This may be replaced when dependencies are built.
