file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ps.dir/bench_ablation_ps.cpp.o"
  "CMakeFiles/bench_ablation_ps.dir/bench_ablation_ps.cpp.o.d"
  "bench_ablation_ps"
  "bench_ablation_ps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
