# Empty compiler generated dependencies file for bench_fig14_p2_vs_p3.
# This may be replaced when dependencies are built.
