# Empty dependencies file for bench_fig11_p3_ic.
# This may be replaced when dependencies are built.
