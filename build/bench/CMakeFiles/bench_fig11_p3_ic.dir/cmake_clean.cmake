file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_p3_ic.dir/bench_fig11_p3_ic.cpp.o"
  "CMakeFiles/bench_fig11_p3_ic.dir/bench_fig11_p3_ic.cpp.o.d"
  "bench_fig11_p3_ic"
  "bench_fig11_p3_ic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_p3_ic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
