file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_network_stall.dir/bench_fig13_network_stall.cpp.o"
  "CMakeFiles/bench_fig13_network_stall.dir/bench_fig13_network_stall.cpp.o.d"
  "bench_fig13_network_stall"
  "bench_fig13_network_stall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_network_stall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
