# Empty compiler generated dependencies file for bench_fig13_network_stall.
# This may be replaced when dependencies are built.
