#include "util/trace.h"

#include <gtest/gtest.h>

namespace stash::util {
namespace {

TEST(TraceRecorder, EmptyTraceIsValidJson) {
  TraceRecorder tr;
  std::string json = tr.to_json();
  EXPECT_EQ(json, "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}");
}

TEST(TraceRecorder, SpanSerialization) {
  TraceRecorder tr;
  tr.add_span("forward", "compute", 0.001, 0.002, 1, 2);
  std::string json = tr.to_json();
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"forward\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"compute\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1000"), std::string::npos);   // seconds -> us
  EXPECT_NE(json.find("\"dur\":2000"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":2"), std::string::npos);
}

TEST(TraceRecorder, TrackNamesEmittedAsMetadata) {
  TraceRecorder tr;
  tr.name_track(0, 0, "lead GPU worker");
  std::string json = tr.to_json();
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("lead GPU worker"), std::string::npos);
}

TEST(TraceRecorder, EscapesSpecialCharacters) {
  TraceRecorder tr;
  tr.add_span("a\"b\\c", "x", 0, 1, 0, 0);
  std::string json = tr.to_json();
  EXPECT_NE(json.find("a\\\"b\\\\c"), std::string::npos);
}

TEST(TraceRecorder, NegativeDurationThrows) {
  TraceRecorder tr;
  EXPECT_THROW(tr.add_span("x", "y", 0.0, -1.0, 0, 0), std::invalid_argument);
}

TEST(TraceRecorder, CountsSpans) {
  TraceRecorder tr;
  for (int i = 0; i < 5; ++i) tr.add_span("s", "c", i, 0.5, 0, 0);
  EXPECT_EQ(tr.size(), 5u);
  EXPECT_EQ(tr.spans().size(), 5u);
}

TEST(TraceRecorder, InstantSerialization) {
  TraceRecorder tr;
  tr.add_instant("fault detected", "faults", 0.004, 2, 90);
  std::string json = tr.to_json();
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"fault detected\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":4000"), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);  // thread-scoped
  EXPECT_NE(json.find("\"pid\":2"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":90"), std::string::npos);
}

TEST(TraceRecorder, CounterSerialization) {
  TraceRecorder tr;
  tr.add_counter("queue_depth", 0.002, 7.0, 1);
  std::string json = tr.to_json();
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"queue_depth\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":7"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":2000"), std::string::npos);
}

TEST(TraceRecorder, ProcessNamesEmittedAsMetadata) {
  TraceRecorder tr;
  tr.name_process(3, "p3.8xlarge (machine 3)");
  std::string json = tr.to_json();
  EXPECT_NE(json.find("process_name"), std::string::npos);
  EXPECT_NE(json.find("p3.8xlarge (machine 3)"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":3"), std::string::npos);
}

TEST(TraceRecorder, CountsDistinctTracks) {
  TraceRecorder tr;
  // Three span tracks: (0,0), (0,1), (1,0). Two counter tracks on pid 0.
  tr.add_span("a", "c", 0.0, 0.1, 0, 0);
  tr.add_span("b", "c", 0.0, 0.1, 0, 1);
  tr.add_span("c", "c", 0.0, 0.1, 1, 0);
  tr.add_span("d", "c", 0.2, 0.1, 0, 0);  // same track as "a"
  tr.add_counter("x", 0.0, 1.0, 0);
  tr.add_counter("y", 0.0, 1.0, 0);
  tr.add_counter("x", 0.5, 2.0, 0);  // same track as first "x"
  EXPECT_EQ(tr.num_span_tracks(), 3u);
  EXPECT_EQ(tr.num_counter_tracks(), 2u);
}

TEST(TraceRecorder, NegativeInstantTimeThrows) {
  TraceRecorder tr;
  EXPECT_THROW(tr.add_instant("x", "y", -1.0, 0, 0), std::invalid_argument);
  EXPECT_THROW(tr.add_counter("x", -1.0, 0.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace stash::util
