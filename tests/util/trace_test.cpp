#include "util/trace.h"

#include <gtest/gtest.h>

namespace stash::util {
namespace {

TEST(TraceRecorder, EmptyTraceIsValidJson) {
  TraceRecorder tr;
  std::string json = tr.to_json();
  EXPECT_EQ(json, "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}");
}

TEST(TraceRecorder, SpanSerialization) {
  TraceRecorder tr;
  tr.add_span("forward", "compute", 0.001, 0.002, 1, 2);
  std::string json = tr.to_json();
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"forward\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"compute\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1000"), std::string::npos);   // seconds -> us
  EXPECT_NE(json.find("\"dur\":2000"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":2"), std::string::npos);
}

TEST(TraceRecorder, TrackNamesEmittedAsMetadata) {
  TraceRecorder tr;
  tr.name_track(0, 0, "lead GPU worker");
  std::string json = tr.to_json();
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("lead GPU worker"), std::string::npos);
}

TEST(TraceRecorder, EscapesSpecialCharacters) {
  TraceRecorder tr;
  tr.add_span("a\"b\\c", "x", 0, 1, 0, 0);
  std::string json = tr.to_json();
  EXPECT_NE(json.find("a\\\"b\\\\c"), std::string::npos);
}

TEST(TraceRecorder, NegativeDurationThrows) {
  TraceRecorder tr;
  EXPECT_THROW(tr.add_span("x", "y", 0.0, -1.0, 0, 0), std::invalid_argument);
}

TEST(TraceRecorder, CountsSpans) {
  TraceRecorder tr;
  for (int i = 0; i < 5; ++i) tr.add_span("s", "c", i, 0.5, 0, 0);
  EXPECT_EQ(tr.size(), 5u);
  EXPECT_EQ(tr.spans().size(), 5u);
}

}  // namespace
}  // namespace stash::util
