#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace stash::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.uniform(0, 1) == b.uniform(0, 1)) ++equal;
  EXPECT_LT(equal, 5);
}

TEST(Rng, ChildStreamsAreIndependentAndStable) {
  Rng root(7);
  Rng c1 = root.child(1);
  Rng c1_again = Rng(7).child(1);
  Rng c2 = root.child(2);
  EXPECT_DOUBLE_EQ(c1.uniform(0, 1), c1_again.uniform(0, 1));
  // Streams 1 and 2 should not be identical.
  bool differ = false;
  for (int i = 0; i < 10; ++i)
    if (c1.uniform(0, 1) != c2.uniform(0, 1)) differ = true;
  EXPECT_TRUE(differ);
}

TEST(Rng, UniformRespectsBounds) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    double v = r.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng r(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.uniform_int(0, 3));
  EXPECT_EQ(seen, (std::set<std::int64_t>{0, 1, 2, 3}));
}

TEST(Rng, BernoulliExtremes) {
  Rng r(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Rng, ClampedNormalStaysInRange) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) {
    double v = r.clamped_normal(1.0, 10.0, 0.5, 1.5);
    EXPECT_GE(v, 0.5);
    EXPECT_LE(v, 1.5);
  }
}

TEST(Rng, NormalHasApproxMean) {
  Rng r(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, ExponentialHasApproxMean) {
  Rng r(17);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.2);
}

TEST(Rng, SplitMixAvalanche) {
  // Adjacent inputs should produce wildly different outputs.
  EXPECT_NE(splitmix64(1), splitmix64(2));
  EXPECT_NE(splitmix64(0), 0u);
}

}  // namespace
}  // namespace stash::util
