// Adversarial coverage for the JSON layer every machine-readable surface
// rides on: escaping of the full control-character range, non-finite
// doubles, and the strict parser's round-trip guarantee the run archive's
// content-addressed ids depend on (parse(x).dump() == x for anything
// JsonWriter produced).
#include "util/json.h"

#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>

#include <gtest/gtest.h>

namespace stash::util {
namespace {

TEST(JsonEscape, EscapesEveryControlCharacter) {
  // Short forms where JSON defines them, \u00XX everywhere else.
  EXPECT_EQ(json_escape(std::string(1, '\0')), "\\u0000");
  EXPECT_EQ(json_escape("\x01"), "\\u0001");
  EXPECT_EQ(json_escape("\b"), "\\b");
  EXPECT_EQ(json_escape("\t"), "\\t");
  EXPECT_EQ(json_escape("\n"), "\\n");
  EXPECT_EQ(json_escape("\f"), "\\f");
  EXPECT_EQ(json_escape("\r"), "\\r");
  EXPECT_EQ(json_escape("\x0b"), "\\u000b");
  EXPECT_EQ(json_escape("\x1f"), "\\u001f");
  EXPECT_EQ(json_escape("\""), "\\\"");
  EXPECT_EQ(json_escape("\\"), "\\\\");

  // Sweep all 32: the escaped form must contain no raw byte < 0x20.
  for (int c = 0; c < 0x20; ++c) {
    std::string s = json_escape(std::string(1, static_cast<char>(c)));
    for (char e : s) EXPECT_GE(static_cast<unsigned char>(e), 0x20u) << c;
    EXPECT_EQ(s[0], '\\') << c;
  }
}

TEST(JsonEscape, PassesUtf8AndDelThrough) {
  // Bytes >= 0x20 are not the escaper's business: multi-byte UTF-8
  // sequences (and DEL, which RFC 8259 does not require escaping) survive
  // byte-for-byte.
  const std::string utf8 = "caf\xc3\xa9 \xe2\x98\x83 \x7f";
  EXPECT_EQ(json_escape(utf8), utf8);
}

TEST(JsonEscape, EmbeddedNulDoesNotTruncate) {
  std::string s = "a";
  s.push_back('\0');
  s += "b";
  EXPECT_EQ(json_escape(s), "a\\u0000b");
}

TEST(JsonDouble, ShortestFormRoundTripsExactly) {
  for (double v :
       {0.0, -0.0, 1.0 / 3.0, 0.1, 97.39646745599968, 9.642200741509247e-14,
        -2.5e-300, 1.7976931348623157e308, 5e-324}) {
    std::string s = json_double(v);
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
  }
}

TEST(JsonDouble, NonFiniteBecomesNull) {
  EXPECT_EQ(json_double(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(json_double(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_double(-std::numeric_limits<double>::infinity()), "null");
}

TEST(JsonWriter, NonFiniteValueEmitsNullToken) {
  JsonWriter w;
  w.begin_object();
  w.key("nan").value(std::numeric_limits<double>::quiet_NaN());
  w.key("inf").value(std::numeric_limits<double>::infinity());
  w.end_object();
  EXPECT_EQ(w.str(), "{\"nan\":null,\"inf\":null}");
  // And the strict parser accepts the result — no bare nan/inf leaked.
  EXPECT_NO_THROW(json_parse(w.str()));
}

TEST(JsonWriter, CommaBookkeepingAcrossNesting) {
  JsonWriter w;
  w.begin_object();
  w.key("a").value(1);
  w.key("b").begin_array().value("x").begin_object().end_object().null()
      .end_array();
  w.key("c").value(true);
  w.end_object();
  EXPECT_EQ(w.str(), "{\"a\":1,\"b\":[\"x\",{},null],\"c\":true}");
}

TEST(JsonParse, RoundTripsWriterOutput) {
  JsonWriter w;
  w.begin_object();
  w.key("weird \"key\"\n").value("\x01 control \\ done");
  w.key("nums").begin_array().value(0.1).value(-3).value(1.0 / 3.0)
      .end_array();
  w.key("nested").begin_object().key("t").value(false).end_object();
  w.end_object();
  JsonValue doc = json_parse(w.str());
  EXPECT_EQ(doc.dump(), w.str());
  EXPECT_EQ(doc.get("weird \"key\"\n").as_string(), "\x01 control \\ done");
  EXPECT_EQ(doc.get("nums").at(0).as_double(), 0.1);
  EXPECT_FALSE(doc.get("nested").get("t").as_bool(true));
}

TEST(JsonParse, NumbersKeepSourceSpelling) {
  // dump() must reproduce the raw spelling — 1e3 stays 1e3, 1.50 stays
  // 1.50 — or content-addressed ids would change on a parse/dump cycle.
  for (const char* doc : {"[1e3]", "[1.50]", "[-0.0]", "[12345678901234567]"})
    EXPECT_EQ(json_parse(doc).dump(), doc);
  EXPECT_EQ(json_parse("[1e3]").at(0).as_double(), 1000.0);
}

TEST(JsonParse, DecodesEscapesAndSurrogatePairs) {
  EXPECT_EQ(json_parse("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(json_parse("\"\\u00e9\"").as_string(), "\xc3\xa9");
  EXPECT_EQ(json_parse("\"\\u2603\"").as_string(), "\xe2\x98\x83");
  // U+1F600 as a surrogate pair -> 4-byte UTF-8.
  EXPECT_EQ(json_parse("\"\\ud83d\\ude00\"").as_string(),
            "\xf0\x9f\x98\x80");
  EXPECT_EQ(json_parse("\"\\\"\\\\\\/\\b\\f\\n\\r\\t\"").as_string(),
            "\"\\/\b\f\n\r\t");
}

TEST(JsonParse, RejectsMalformedInputWithOffset) {
  EXPECT_THROW(json_parse(""), JsonParseError);
  EXPECT_THROW(json_parse("{"), JsonParseError);
  EXPECT_THROW(json_parse("[1,]"), JsonParseError);
  EXPECT_THROW(json_parse("{\"a\":1,}"), JsonParseError);
  EXPECT_THROW(json_parse("nan"), JsonParseError);
  EXPECT_THROW(json_parse("Infinity"), JsonParseError);
  EXPECT_THROW(json_parse("[01]"), JsonParseError);
  EXPECT_THROW(json_parse("'a'"), JsonParseError);
  EXPECT_THROW(json_parse("{} extra"), JsonParseError);
  EXPECT_THROW(json_parse("\"\\ud83d\""), JsonParseError);  // lone surrogate
  EXPECT_THROW(json_parse("\"\x01\""), JsonParseError);  // raw control char
  try {
    json_parse("[1, )");
    FAIL() << "expected JsonParseError";
  } catch (const JsonParseError& e) {
    EXPECT_EQ(e.offset(), 4u);
  }
}

TEST(JsonValue, ChainedLookupsAreNullSafe) {
  JsonValue doc = json_parse(R"({"manifest":{"stall_report":{"x":1}}})");
  EXPECT_EQ(doc.get("manifest").get("stall_report").get("x").as_double(), 1.0);
  // Missing keys at any depth land on the shared null, never crash.
  EXPECT_TRUE(doc.get("manifest").get("absent").get("deeper").is_null());
  EXPECT_EQ(doc.get("nope").find("x"), nullptr);
  EXPECT_EQ(doc.get("nope").as_double(42.0), 42.0);
}

}  // namespace
}  // namespace stash::util
