#include "util/table.h"

#include <gtest/gtest.h>

namespace stash::util {
namespace {

TEST(Table, AsciiAlignsColumns) {
  Table t({"model", "stall%"});
  t.row().cell("resnet18").cell(42.5, 1);
  t.row().cell("vgg11").cell(7.0, 1);
  std::string out = t.to_ascii();
  EXPECT_NE(out.find("| model    | stall% |"), std::string::npos);
  EXPECT_NE(out.find("| resnet18 | 42.5   |"), std::string::npos);
  EXPECT_NE(out.find("| vgg11    | 7.0    |"), std::string::npos);
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"name", "note"});
  t.row().cell("a,b").cell("say \"hi\"");
  std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, CsvHeaderFirstLine) {
  Table t({"x", "y"});
  t.row().cell(1).cell(2);
  std::string csv = t.to_csv();
  EXPECT_EQ(csv.substr(0, 4), "x,y\n");
}

TEST(Table, NumericCellFormatting) {
  Table t({"v"});
  t.row().cell(3.14159, 3);
  EXPECT_NE(t.to_ascii().find("3.142"), std::string::npos);
}

TEST(Table, TooManyCellsThrows) {
  Table t({"only"});
  t.row().cell("ok");
  EXPECT_THROW(t.cell("overflow"), std::logic_error);
}

TEST(Table, CellBeforeRowThrows) {
  Table t({"c"});
  EXPECT_THROW(t.cell("x"), std::logic_error);
}

TEST(Table, EmptyHeadersThrow) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, ShortRowRendersBlank) {
  Table t({"a", "b"});
  t.row().cell("x");
  std::string out = t.to_ascii();
  EXPECT_NE(out.find("| x | "), std::string::npos);
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.num_columns(), 2u);
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(format_double(1.0 / 3.0, 2), "0.33");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

}  // namespace
}  // namespace stash::util
