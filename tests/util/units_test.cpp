#include "util/units.h"

#include <gtest/gtest.h>

namespace stash::util {
namespace {

TEST(Units, BinarySizes) {
  EXPECT_DOUBLE_EQ(kib(1), 1024.0);
  EXPECT_DOUBLE_EQ(mib(1), 1024.0 * 1024.0);
  EXPECT_DOUBLE_EQ(gib(2), 2.0 * 1024 * 1024 * 1024);
}

TEST(Units, DecimalSizes) {
  EXPECT_DOUBLE_EQ(kb(1), 1e3);
  EXPECT_DOUBLE_EQ(mb(3), 3e6);
  EXPECT_DOUBLE_EQ(gb(1.5), 1.5e9);
}

TEST(Units, NetworkRatesAreBits) {
  // 10 Gbps NIC moves 1.25 GB/s.
  EXPECT_DOUBLE_EQ(gbps(10), 1.25e9);
  EXPECT_DOUBLE_EQ(mbps(800), 1e8);
}

TEST(Units, BusRatesAreBytes) {
  EXPECT_DOUBLE_EQ(gb_per_s(12), 12e9);
  EXPECT_DOUBLE_EQ(mb_per_s(250), 2.5e8);
}

TEST(Units, Time) {
  EXPECT_DOUBLE_EQ(usec(60), 60e-6);
  EXPECT_DOUBLE_EQ(msec(2.5), 2.5e-3);
  EXPECT_DOUBLE_EQ(minutes(2), 120.0);
  EXPECT_DOUBLE_EQ(hours(1), 3600.0);
}

TEST(Units, Compute) {
  EXPECT_DOUBLE_EQ(gflop(4), 4e9);
  EXPECT_DOUBLE_EQ(tflops(7.8), 7.8e12);
}

TEST(Units, ReportConversionsRoundTrip) {
  EXPECT_DOUBLE_EQ(to_gb_per_s(gb_per_s(7)), 7.0);
  EXPECT_DOUBLE_EQ(to_gbps(gbps(25)), 25.0);
  EXPECT_DOUBLE_EQ(to_gib(gib(16)), 16.0);
  EXPECT_DOUBLE_EQ(to_hours(hours(3)), 3.0);
}

}  // namespace
}  // namespace stash::util
