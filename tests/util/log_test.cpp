#include "util/log.h"

#include <gtest/gtest.h>

#include <iostream>
#include <sstream>
#include <string>

namespace stash::util {
namespace {

// Restores the process log level (and cerr's buffer) after each test; the
// level is process-global state shared with every other test in the binary.
class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_level_ = log_level();
    saved_buf_ = std::cerr.rdbuf(captured_.rdbuf());
  }
  void TearDown() override {
    std::cerr.rdbuf(saved_buf_);
    set_log_level(saved_level_);
  }
  std::string captured() const { return captured_.str(); }

  std::ostringstream captured_;

 private:
  LogLevel saved_level_{};
  std::streambuf* saved_buf_ = nullptr;
};

TEST_F(LogTest, ParseMapsEveryLevelAndDefaultsToOff) {
  EXPECT_EQ(parse_log_level(nullptr), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level(""), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("verbose"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("DEBUG"), LogLevel::kOff);  // case-sensitive
}

TEST_F(LogTest, SeverityOrderAdmitsMoreAtLowerThresholds) {
  EXPECT_LT(static_cast<int>(LogLevel::kDebug), static_cast<int>(LogLevel::kInfo));
  EXPECT_LT(static_cast<int>(LogLevel::kInfo), static_cast<int>(LogLevel::kWarn));
  EXPECT_LT(static_cast<int>(LogLevel::kWarn), static_cast<int>(LogLevel::kError));
  EXPECT_LT(static_cast<int>(LogLevel::kError), static_cast<int>(LogLevel::kOff));
}

TEST_F(LogTest, ErrorThresholdSuppressesWarningsButPrintsErrors) {
  set_log_level(LogLevel::kError);
  log_debug("d");
  log_info("i");
  log_warn("w");
  log_error("boom ", 42);
  EXPECT_EQ(captured(), "[ERROR] boom 42\n");
}

TEST_F(LogTest, OffSuppressesEverything) {
  set_log_level(LogLevel::kOff);
  log_debug("d");
  log_info("i");
  log_warn("w");
  log_error("e");
  EXPECT_EQ(captured(), "");
}

TEST_F(LogTest, DebugThresholdPrintsEverythingWithPrefixes) {
  set_log_level(LogLevel::kDebug);
  log_debug("a");
  log_info("b");
  log_warn("c");
  log_error("d");
  EXPECT_EQ(captured(), "[DEBUG] a\n[INFO] b\n[WARN] c\n[ERROR] d\n");
}

}  // namespace
}  // namespace stash::util
