#include "util/args.h"

#include <gtest/gtest.h>

namespace stash::util {
namespace {

Args make(std::initializer_list<const char*> argv) {
  std::vector<const char*> v{"prog"};
  v.insert(v.end(), argv.begin(), argv.end());
  return Args(static_cast<int>(v.size()), v.data());
}

TEST(Args, Positionals) {
  Args a = make({"profile", "resnet18"});
  EXPECT_EQ(a.num_positional(), 2u);
  EXPECT_EQ(a.positional(0), "profile");
  EXPECT_EQ(a.positional(1), "resnet18");
  EXPECT_EQ(a.positional(5, "dflt"), "dflt");
}

TEST(Args, KeyEqualsValue) {
  Args a = make({"--batch=64", "--instance=p3.16xlarge"});
  EXPECT_EQ(a.get("batch"), "64");
  EXPECT_EQ(a.get_int("batch", 0), 64);
  EXPECT_EQ(a.get("instance"), "p3.16xlarge");
}

TEST(Args, KeySpaceValue) {
  Args a = make({"--batch", "32", "pos"});
  EXPECT_EQ(a.get_int("batch", 0), 32);
  EXPECT_EQ(a.positional(0), "pos");
}

TEST(Args, BareFlag) {
  Args a = make({"--fast", "--csv"});
  EXPECT_TRUE(a.has("fast"));
  EXPECT_TRUE(a.has("csv"));
  EXPECT_FALSE(a.has("slow"));
  EXPECT_EQ(a.get("fast"), "");
}

TEST(Args, FlagFollowedByOption) {
  // A bare flag followed by another option must not swallow it.
  Args a = make({"--fast", "--batch=8"});
  EXPECT_TRUE(a.has("fast"));
  EXPECT_EQ(a.get_int("batch", 0), 8);
}

TEST(Args, Defaults) {
  Args a = make({});
  EXPECT_EQ(a.get("missing", "x"), "x");
  EXPECT_EQ(a.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(a.get_double("missing", 2.5), 2.5);
}

TEST(Args, NumericParsing) {
  Args a = make({"--ratio=0.25"});
  EXPECT_DOUBLE_EQ(a.get_double("ratio", 0), 0.25);
  Args bad = make({"--batch=abc"});
  EXPECT_THROW(bad.get_int("batch", 0), std::invalid_argument);
  EXPECT_THROW(bad.get_double("batch", 0), std::invalid_argument);
}

TEST(Args, EmptyDashDashThrows) {
  std::vector<const char*> v{"prog", "--"};
  EXPECT_THROW(Args(static_cast<int>(v.size()), v.data()), std::invalid_argument);
}

}  // namespace
}  // namespace stash::util
