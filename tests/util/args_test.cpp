#include "util/args.h"

#include <gtest/gtest.h>

namespace stash::util {
namespace {

Args make(std::initializer_list<const char*> argv,
          std::initializer_list<const char*> flags = {}) {
  std::vector<const char*> v{"prog"};
  v.insert(v.end(), argv.begin(), argv.end());
  return Args(static_cast<int>(v.size()), v.data(), flags);
}

TEST(Args, Positionals) {
  Args a = make({"profile", "resnet18"});
  EXPECT_EQ(a.num_positional(), 2u);
  EXPECT_EQ(a.positional(0), "profile");
  EXPECT_EQ(a.positional(1), "resnet18");
  EXPECT_EQ(a.positional(5, "dflt"), "dflt");
}

TEST(Args, KeyEqualsValue) {
  Args a = make({"--batch=64", "--instance=p3.16xlarge"});
  EXPECT_EQ(a.get("batch"), "64");
  EXPECT_EQ(a.get_int("batch", 0), 64);
  EXPECT_EQ(a.get("instance"), "p3.16xlarge");
}

TEST(Args, KeySpaceValue) {
  Args a = make({"--batch", "32", "pos"});
  EXPECT_EQ(a.get_int("batch", 0), 32);
  EXPECT_EQ(a.positional(0), "pos");
}

TEST(Args, BareFlag) {
  Args a = make({"--fast", "--csv"});
  EXPECT_TRUE(a.has("fast"));
  EXPECT_TRUE(a.has("csv"));
  EXPECT_FALSE(a.has("slow"));
  EXPECT_EQ(a.get("fast"), "");
}

TEST(Args, FlagFollowedByOption) {
  // A bare flag followed by another option must not swallow it.
  Args a = make({"--fast", "--batch=8"});
  EXPECT_TRUE(a.has("fast"));
  EXPECT_EQ(a.get_int("batch", 0), 8);
}

TEST(Args, Defaults) {
  Args a = make({});
  EXPECT_EQ(a.get("missing", "x"), "x");
  EXPECT_EQ(a.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(a.get_double("missing", 2.5), 2.5);
}

TEST(Args, NumericParsing) {
  Args a = make({"--ratio=0.25"});
  EXPECT_DOUBLE_EQ(a.get_double("ratio", 0), 0.25);
  Args bad = make({"--batch=abc"});
  EXPECT_THROW(bad.get_int("batch", 0), std::invalid_argument);
  EXPECT_THROW(bad.get_double("batch", 0), std::invalid_argument);
}

TEST(Args, EmptyDashDashThrows) {
  std::vector<const char*> v{"prog", "--"};
  EXPECT_THROW(Args(static_cast<int>(v.size()), v.data()), std::invalid_argument);
}

// Regression: `stash_cli profile --progress resnet50` silently swallowed the
// resnet50 positional because the unregistered bare flag consumed the next
// token. A registered flag must never take a separate-token value.
TEST(Args, RegisteredFlagDoesNotSwallowPositional) {
  Args a = make({"profile", "--progress", "resnet50"}, {"progress"});
  EXPECT_TRUE(a.has("progress"));
  EXPECT_EQ(a.get("progress"), "");
  ASSERT_EQ(a.num_positional(), 2u);
  EXPECT_EQ(a.positional(0), "profile");
  EXPECT_EQ(a.positional(1), "resnet50");
}

TEST(Args, RegisteredFlagBetweenValueOptions) {
  Args a = make({"plan", "--csv", "--batch", "16", "--json", "model"},
                {"csv", "json"});
  EXPECT_TRUE(a.has("csv"));
  EXPECT_TRUE(a.has("json"));
  EXPECT_EQ(a.get_int("batch", 0), 16);
  EXPECT_EQ(a.positional(1), "model");
}

// Regression: std::stoi/stod accepted trailing junk, so `--jobs 8x` parsed
// as 8 and `--spot-rate 0.2.5` as 0.2. Partial parses must fail loudly.
TEST(Args, TrailingJunkIntThrows) {
  Args a = make({"--jobs", "8x"});
  EXPECT_THROW(a.get_int("jobs", 1), std::invalid_argument);
  Args b = make({"--jobs=12 "});
  EXPECT_THROW(b.get_int("jobs", 1), std::invalid_argument);
}

TEST(Args, TrailingJunkDoubleThrows) {
  Args a = make({"--spot-rate", "0.2.5"});
  EXPECT_THROW(a.get_double("spot-rate", 0.0), std::invalid_argument);
  Args b = make({"--ratio=1.5e"});
  EXPECT_THROW(b.get_double("ratio", 0.0), std::invalid_argument);
}

// Negative numbers are values, not options: `--offset -5` must parse.
TEST(Args, NegativeNumberOptionValue) {
  Args a = make({"--offset", "-5", "--scale", "-2.5"});
  EXPECT_EQ(a.get_int("offset", 0), -5);
  EXPECT_DOUBLE_EQ(a.get_double("scale", 0.0), -2.5);
  Args b = make({"--offset=-5"});
  EXPECT_EQ(b.get_int("offset", 0), -5);
}

TEST(ParseNumbers, FullConsumption) {
  EXPECT_EQ(parse_int("8"), 8);
  EXPECT_EQ(parse_int("-5"), -5);
  EXPECT_FALSE(parse_int("8x").has_value());
  EXPECT_FALSE(parse_int("").has_value());
  EXPECT_FALSE(parse_int("x8").has_value());
  EXPECT_DOUBLE_EQ(*parse_double("0.25"), 0.25);
  EXPECT_DOUBLE_EQ(*parse_double("1e3"), 1000.0);
  EXPECT_FALSE(parse_double("0.2.5").has_value());
  EXPECT_FALSE(parse_double("1.5e").has_value());
  EXPECT_FALSE(parse_double("").has_value());
}

}  // namespace
}  // namespace stash::util
