#include "util/stats.h"

#include <gtest/gtest.h>

namespace stash::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 4.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, NegativeValues) {
  RunningStats s;
  s.add(-3.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(SampleSet, MeanAndMedianOdd) {
  SampleSet s;
  for (double v : {5.0, 1.0, 3.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
}

TEST(SampleSet, MedianEvenInterpolates) {
  SampleSet s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.median(), 2.5);
}

TEST(SampleSet, PercentileEndpoints) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(99), 99.01, 0.05);
}

TEST(SampleSet, PercentileOfEmptyThrows) {
  SampleSet s;
  EXPECT_THROW(s.percentile(50), std::out_of_range);
}

TEST(SampleSet, AddAfterSortStillCorrect) {
  SampleSet s;
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.median(), 10.0);
  s.add(0.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
}

}  // namespace
}  // namespace stash::util
