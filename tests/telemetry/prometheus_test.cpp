// Prometheus text exposition (version 0.0.4) of a metrics registry. The
// main check is a golden-file comparison: the exposition is deterministic
// (sorted names, shortest-round-trip doubles), so the expected output can
// be pinned byte-for-byte.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "telemetry/metrics.h"

namespace stash::telemetry {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing golden file: " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(PrometheusTest, MatchesGoldenExposition) {
  MetricsRegistry reg;
  reg.counter("coll/ring/bytes").add(1234.5);
  reg.gauge("profiler/ic_stall_pct").set(12.25);
  TimeWeightedGauge& tg = reg.time_gauge("queue/depth");
  tg.set(0.0, 1.0);
  tg.set(2.0, 3.0);
  tg.set(4.0, 3.0);  // mean 2 over [0,4], max 3, last 3
  Histogram& h = reg.histogram("iter/latency_s", {1.0, 10.0, 100.0});
  h.observe(0.5);
  h.observe(2.0);
  h.observe(200.0);  // overflow bucket: only le="+Inf" sees it

  const std::string golden =
      read_file(std::string(STASH_TEST_DATA_DIR) + "/registry_golden.prom");
  EXPECT_EQ(reg.to_prometheus(), golden);
}

TEST(PrometheusTest, VolatileInstrumentsAreExcludedFromDeterministicDump) {
  MetricsRegistry reg;
  reg.counter("sim/events").add(3.0);
  reg.gauge("wall/speedup", /*volatile_metric=*/true).set(250.0);

  const std::string full = reg.to_prometheus(/*include_volatile=*/true);
  const std::string det = reg.to_prometheus(/*include_volatile=*/false);
  EXPECT_NE(full.find("wall_speedup 250\n"), std::string::npos);
  EXPECT_EQ(det.find("wall_speedup"), std::string::npos);
  EXPECT_NE(det.find("sim_events 3\n"), std::string::npos);
}

TEST(PrometheusTest, NamesAreSanitizedToTheExpositionCharset) {
  MetricsRegistry reg;
  // Slashes, dots and dashes flatten to '_'; a leading digit is prefixed.
  reg.counter("9weird-name.x").increment();
  const std::string out = reg.to_prometheus();
  EXPECT_NE(out.find("# TYPE _9weird_name_x counter\n"), std::string::npos);
  EXPECT_NE(out.find("_9weird_name_x 1\n"), std::string::npos);
}

}  // namespace
}  // namespace stash::telemetry
