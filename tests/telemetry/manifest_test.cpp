// Golden-file checks for the machine-readable outputs: every JSON document
// the telemetry layer emits must parse as strict JSON, stall percentages
// must round-trip bit-exactly, and identical runs must snapshot
// byte-identically. The checker below is a minimal recursive-descent
// validator written for the test — the repo deliberately ships no JSON
// parser dependency.
#include "telemetry/manifest.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <string>

#include "dnn/zoo.h"
#include "stash/profiler.h"
#include "telemetry/metrics.h"
#include "util/json.h"
#include "util/trace.h"

namespace stash::telemetry {
namespace {

// Strict JSON validator (RFC 8259 grammar, no extensions: no trailing
// commas, no NaN/Infinity literals, no comments).
class JsonChecker {
 public:
  static bool valid(const std::string& s) {
    JsonChecker c(s);
    c.ws();
    if (!c.value()) return false;
    c.ws();
    return c.pos_ == s.size();
  }

 private:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  bool eat(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  void ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r'))
      ++pos_;
  }

  bool literal(const char* word) {
    std::size_t n = std::string(word).size();
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  bool string() {
    if (!eat('"')) return false;
    while (pos_ < s_.size()) {
      unsigned char c = static_cast<unsigned char>(s_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return false;  // raw control character
      if (c == '\\') {
        ++pos_;
        char e = peek();
        if (e == 'u') {
          ++pos_;
          for (int i = 0; i < 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(peek()))) return false;
            ++pos_;
          }
        } else if (e == '"' || e == '\\' || e == '/' || e == 'b' || e == 'f' ||
                   e == 'n' || e == 'r' || e == 't') {
          ++pos_;
        } else {
          return false;
        }
      } else {
        ++pos_;
      }
    }
    return false;  // unterminated
  }

  bool digits() {
    if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    return true;
  }

  bool number() {
    eat('-');
    if (peek() == '0') {
      ++pos_;
    } else if (!digits()) {
      return false;
    }
    if (eat('.') && !digits()) return false;
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digits()) return false;
    }
    return true;
  }

  bool object() {
    if (!eat('{')) return false;
    ws();
    if (eat('}')) return true;
    while (true) {
      ws();
      if (!string()) return false;
      ws();
      if (!eat(':')) return false;
      ws();
      if (!value()) return false;
      ws();
      if (eat('}')) return true;
      if (!eat(',')) return false;
    }
  }

  bool array() {
    if (!eat('[')) return false;
    ws();
    if (eat(']')) return true;
    while (true) {
      ws();
      if (!value()) return false;
      ws();
      if (eat(']')) return true;
      if (!eat(',')) return false;
    }
  }

  bool value() {
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// Extracts the numeric value following "key": in a JSON document via strtod
// (shortest-round-trip doubles make this exact).
double number_after(const std::string& json, const std::string& key) {
  std::string needle = "\"" + key + "\":";
  std::size_t at = json.find(needle);
  EXPECT_NE(at, std::string::npos) << "missing key " << key;
  if (at == std::string::npos) return 0.0;
  return std::strtod(json.c_str() + at + needle.size(), nullptr);
}

TEST(JsonChecker, AcceptsAndRejectsAsStrictJson) {
  EXPECT_TRUE(JsonChecker::valid("{}"));
  EXPECT_TRUE(JsonChecker::valid(R"({"a":[1,-2.5e3,"x\n",true,null]})"));
  EXPECT_FALSE(JsonChecker::valid(""));
  EXPECT_FALSE(JsonChecker::valid("{"));
  EXPECT_FALSE(JsonChecker::valid("{'a':1}"));
  EXPECT_FALSE(JsonChecker::valid("[1,]"));
  EXPECT_FALSE(JsonChecker::valid("{\"a\":01}"));
  EXPECT_FALSE(JsonChecker::valid("{\"a\":nan}"));
  EXPECT_FALSE(JsonChecker::valid("{} extra"));
  EXPECT_FALSE(JsonChecker::valid("{\"a\":\"\x01\"}"));
}

TEST(JsonDouble, RoundTripsThroughStrtod) {
  for (double v : {0.0, 1.0 / 3.0, 97.39646745599968, 9.642200741509247e-14,
                   -2.5e-300, 1.7976931348623157e308}) {
    std::string s = util::json_double(v);
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
  }
  EXPECT_EQ(util::json_double(std::nan("")), "null");
}

class ManifestFixture : public ::testing::Test {
 protected:
  static profiler::ProfileOptions options(util::TraceRecorder* trace,
                                          MetricsRegistry* metrics) {
    profiler::ProfileOptions opt;
    opt.trace = trace;
    opt.metrics = metrics;
    return opt;
  }

  static profiler::ClusterSpec spec() {
    profiler::ClusterSpec s;
    s.instance = "p3.8xlarge";  // 4 V100s, NVLink — the paper's workhorse
    s.count = 1;
    return s;
  }
};

TEST_F(ManifestFixture, ManifestAndTraceAreValidJson) {
  util::TraceRecorder trace;
  MetricsRegistry metrics;
  profiler::StashProfiler prof(dnn::make_zoo_model("resnet18"),
                               dnn::dataset_for("resnet18"),
                               options(&trace, &metrics));
  profiler::StallReport r = prof.profile(spec(), 32);

  RunManifest man;
  man.command = "profile";
  man.add_config("model", "resnet18");
  man.add_config("weird \"key\"\n", "value with \\ and \x01 control");
  man.stall_report = r;
  man.metrics = &metrics;

  EXPECT_TRUE(JsonChecker::valid(man.to_json()));
  EXPECT_TRUE(JsonChecker::valid(trace.to_json()));
  EXPECT_TRUE(JsonChecker::valid(metrics.to_json()));
  EXPECT_TRUE(JsonChecker::valid(metrics.to_json(false)));
}

TEST_F(ManifestFixture, StallPercentagesRoundTripExactly) {
  MetricsRegistry metrics;
  profiler::StashProfiler prof(dnn::make_zoo_model("resnet18"),
                               dnn::dataset_for("resnet18"),
                               options(nullptr, &metrics));
  profiler::StallReport r = prof.profile(spec(), 32);

  RunManifest man;
  man.command = "profile";
  man.stall_report = r;
  man.metrics = &metrics;
  std::string json = man.to_json();

  // The manifest's numbers are the report's numbers, bit for bit.
  EXPECT_EQ(number_after(json, "ic_stall_pct"), r.ic_stall_pct);
  EXPECT_EQ(number_after(json, "nw_stall_pct"), r.nw_stall_pct);
  EXPECT_EQ(number_after(json, "prep_stall_pct"), r.prep_stall_pct);
  EXPECT_EQ(number_after(json, "fetch_stall_pct"), r.fetch_stall_pct);
  EXPECT_EQ(number_after(json, "t1_s"), r.t1);
  EXPECT_EQ(number_after(json, "epoch_seconds"), r.epoch_seconds);

  // And the registry mirrors the same decomposition under profiler/.
  const Gauge* g = metrics.find_gauge("profiler/ic_stall_pct");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->value(), r.ic_stall_pct);
}

TEST_F(ManifestFixture, IdenticalRunsSnapshotByteIdentically) {
  auto snapshot = [this] {
    MetricsRegistry metrics;
    profiler::StashProfiler prof(dnn::make_zoo_model("resnet18"),
                                 dnn::dataset_for("resnet18"),
                                 options(nullptr, &metrics));
    prof.profile(spec(), 32);
    // Exclude volatile instruments (wall-clock derived); everything else is
    // a pure function of the simulated run.
    return metrics.to_json(false);
  };
  std::string a = snapshot();
  std::string b = snapshot();
  EXPECT_EQ(a, b);
  EXPECT_GT(a.size(), 1000u);  // non-trivial snapshot, not two empty docs
}

// The ISSUE's acceptance criteria for `stash profile --json --trace
// --metrics`, checked at the library layer: one span track per GPU worker,
// at least two counter tracks, per-GPU utilization, per-link bytes, and
// iteration-phase histograms with ordered percentiles.
TEST_F(ManifestFixture, InstrumentedProfileMeetsAcceptanceCriteria) {
  util::TraceRecorder trace;
  MetricsRegistry metrics;
  profiler::StashProfiler prof(dnn::make_zoo_model("resnet18"),
                               dnn::dataset_for("resnet18"),
                               options(&trace, &metrics));
  prof.profile(spec(), 32);

  // p3.8xlarge has 4 GPUs: >= 4 worker span tracks plus H2D/comm tracks.
  EXPECT_GE(trace.num_span_tracks(), 4u);
  EXPECT_GE(trace.num_counter_tracks(), 2u);

  for (int g = 0; g < 4; ++g) {
    std::string base = "machine0/gpu" + std::to_string(g) + "/";
    const Gauge* util = metrics.find_gauge(base + "util_pct");
    ASSERT_NE(util, nullptr) << base;
    EXPECT_GT(util->value(), 0.0);
    EXPECT_LE(util->value(), 100.0);
    EXPECT_NE(metrics.find_counter(base + "busy_s"), nullptr);
  }

  bool saw_link_bytes = false;
  for (const std::string& name : metrics.names())
    if (name.rfind("hw/", 0) == 0 &&
        name.find("/bytes_carried") != std::string::npos)
      saw_link_bytes = true;
  EXPECT_TRUE(saw_link_bytes);

  for (const char* h : {"ddl/iter/total_s", "ddl/iter/data_wait_s",
                        "ddl/iter/h2d_s", "ddl/iter/compute_s",
                        "ddl/iter/comm_tail_s"}) {
    const Histogram* hist = metrics.find_histogram(h);
    ASSERT_NE(hist, nullptr) << h;
    EXPECT_GT(hist->count(), 0u) << h;
    EXPECT_LE(hist->percentile(50), hist->percentile(95)) << h;
    EXPECT_LE(hist->percentile(95), hist->percentile(99)) << h;
  }

  // Collective and simulator instrumentation made it into the registry.
  ASSERT_NE(metrics.find_counter("coll/ring/bytes_sent"), nullptr);
  EXPECT_GT(metrics.find_counter("coll/ring/bytes_sent")->value(), 0.0);
  ASSERT_NE(metrics.find_gauge("sim/events_executed"), nullptr);
  EXPECT_GT(metrics.find_gauge("sim/events_executed")->value(), 0.0);
}

TEST_F(ManifestFixture, ProvenanceStampsSchemaV2) {
  RunManifest man;
  man.command = "profile";

  // Injected provenance serializes verbatim — the archive's byte-stable
  // golden records depend on this override.
  BuildInfo fixed;
  fixed.git_sha = "abc123def456";
  fixed.git_dirty = false;
  fixed.compiler_id = "TestCC";
  fixed.compiler_version = "1.0";
  fixed.build_type = "Release";
  man.provenance = &fixed;

  std::string json = man.to_json();
  EXPECT_TRUE(JsonChecker::valid(json));
  EXPECT_NE(json.find("\"schema\":\"stash.run_manifest/2\""),
            std::string::npos);
  EXPECT_NE(json.find("\"git_sha\":\"abc123def456\""), std::string::npos);
  EXPECT_NE(json.find("\"git_dirty\":false"), std::string::npos);
  EXPECT_NE(json.find("\"compiler_id\":\"TestCC\""), std::string::npos);
  EXPECT_NE(json.find("\"build_type\":\"Release\""), std::string::npos);
  // The emitted-schemas list names the record and runs documents too.
  EXPECT_NE(json.find("\"stash.run_record/1\""), std::string::npos);
  EXPECT_NE(json.find("\"stash.runs/1\""), std::string::npos);

  // Same manifest, same bytes: provenance must not break determinism.
  EXPECT_EQ(man.to_json(), json);

  // Default provenance (the binary's own build_info) still yields a valid
  // /2 document with a populated provenance block.
  man.provenance = nullptr;
  std::string dflt = man.to_json();
  EXPECT_TRUE(JsonChecker::valid(dflt));
  EXPECT_NE(dflt.find("\"provenance\":{"), std::string::npos);
  EXPECT_NE(dflt.find("\"compiler_id\":\"" ), std::string::npos);
}

TEST_F(ManifestFixture, EstimateSerializes) {
  profiler::TrainingEstimate est;
  est.config_label = "p3.8xlarge";
  est.model_name = "resnet18";
  est.epochs = 3;
  est.per_gpu_batch = 32;
  est.total_seconds = 1234.5;
  RunManifest man;
  man.command = "estimate";
  man.estimate = est;
  std::string json = man.to_json();
  EXPECT_TRUE(JsonChecker::valid(json));
  EXPECT_EQ(number_after(json, "total_seconds"), 1234.5);
  EXPECT_NE(json.find("\"command\":\"estimate\""), std::string::npos);
}

}  // namespace
}  // namespace stash::telemetry
