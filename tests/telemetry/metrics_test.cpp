#include "telemetry/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace stash::telemetry {
namespace {

TEST(Counter, AccumulatesAndIncrements) {
  Counter c;
  EXPECT_EQ(c.value(), 0.0);
  c.add(2.5);
  c.increment();
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
}

TEST(Gauge, LastWriteWins) {
  Gauge g;
  g.set(1.0);
  g.set(-4.0);
  EXPECT_DOUBLE_EQ(g.value(), -4.0);
}

TEST(TimeWeightedGauge, MeanWeightsByDuration) {
  TimeWeightedGauge g;
  // Value 2 over [0, 1), value 10 over [1, 3): mean = (2*1 + 10*2) / 3.
  g.set(0.0, 2.0);
  g.set(1.0, 10.0);
  g.set(3.0, 10.0);  // close the window
  EXPECT_DOUBLE_EQ(g.time_weighted_mean(), 22.0 / 3.0);
  EXPECT_DOUBLE_EQ(g.max(), 10.0);
  EXPECT_DOUBLE_EQ(g.current(), 10.0);
  EXPECT_DOUBLE_EQ(g.observed_span(), 3.0);
}

TEST(TimeWeightedGauge, RejectsTimeRunningBackwards) {
  TimeWeightedGauge g;
  g.set(1.0, 5.0);
  EXPECT_THROW(g.set(0.5, 6.0), std::invalid_argument);
}

TEST(TimeWeightedGauge, EmptyIsZero) {
  TimeWeightedGauge g;
  EXPECT_EQ(g.time_weighted_mean(), 0.0);
  EXPECT_EQ(g.max(), 0.0);
  EXPECT_EQ(g.observed_span(), 0.0);
}

TEST(Histogram, TracksExactMoments) {
  Histogram h;
  for (double v : {0.001, 0.002, 0.003, 0.004}) h.observe(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.010);
  EXPECT_DOUBLE_EQ(h.min(), 0.001);
  EXPECT_DOUBLE_EQ(h.max(), 0.004);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0025);
}

TEST(Histogram, PercentilesMonotoneAndClamped) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.observe(i * 1e-4);  // 0.1 ms .. 100 ms
  double p50 = h.percentile(50), p95 = h.percentile(95), p99 = h.percentile(99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // Interpolated values stay within the observed range and land in the
  // right decade (the buckets are 4-per-decade, so tolerances are loose).
  EXPECT_GE(p50, h.min());
  EXPECT_LE(p99, h.max());
  EXPECT_NEAR(p50, 0.05, 0.03);
  EXPECT_GT(p99, 0.08);
}

TEST(Histogram, SingleValueCollapsesPercentiles) {
  Histogram h;
  h.observe(0.25);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.25);
  EXPECT_DOUBLE_EQ(h.percentile(99), 0.25);
}

TEST(Histogram, EmptyPercentileIsZero) {
  Histogram h;
  EXPECT_EQ(h.percentile(50), 0.0);
}

TEST(Histogram, RejectsNonFinite) {
  Histogram h;
  EXPECT_THROW(h.observe(std::nan("")), std::invalid_argument);
  EXPECT_THROW(h.observe(HUGE_VAL), std::invalid_argument);
}

TEST(Histogram, CustomBoundsRouteToBuckets) {
  Histogram h({1.0, 10.0});
  h.observe(0.5);   // bucket 0
  h.observe(5.0);   // bucket 1
  h.observe(50.0);  // overflow
  ASSERT_EQ(h.bucket_counts().size(), 3u);
  EXPECT_EQ(h.bucket_counts()[0], 1u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
}

TEST(MetricsRegistry, CreatesOnFirstUseAndReturnsStableRefs) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x/bytes");
  a.add(7.0);
  EXPECT_DOUBLE_EQ(reg.counter("x/bytes").value(), 7.0);
  EXPECT_EQ(&reg.counter("x/bytes"), &a);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistry, KindCollisionThrows) {
  MetricsRegistry reg;
  reg.counter("name");
  EXPECT_THROW(reg.gauge("name"), std::logic_error);
  EXPECT_THROW(reg.histogram("name"), std::logic_error);
  EXPECT_THROW(reg.time_gauge("name"), std::logic_error);
}

TEST(MetricsRegistry, FindersReturnNullOnAbsentOrWrongKind) {
  MetricsRegistry reg;
  reg.counter("c");
  EXPECT_NE(reg.find_counter("c"), nullptr);
  EXPECT_EQ(reg.find_gauge("c"), nullptr);
  EXPECT_EQ(reg.find_counter("absent"), nullptr);
}

TEST(MetricsRegistry, NamesAreSorted) {
  MetricsRegistry reg;
  reg.counter("z");
  reg.counter("a");
  reg.counter("m");
  auto names = reg.names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "m");
  EXPECT_EQ(names[2], "z");
}

TEST(MetricsRegistry, JsonSnapshotContainsAllKinds) {
  MetricsRegistry reg;
  reg.counter("c").add(3.0);
  reg.gauge("g").set(0.5);
  reg.time_gauge("t").set(0.0, 1.0);
  reg.time_gauge("t").set(2.0, 1.0);
  reg.histogram("h").observe(0.01);
  std::string json = reg.to_json();
  EXPECT_NE(json.find("\"schema\":\"stash.metrics/1\""), std::string::npos);
  EXPECT_NE(json.find("\"c\":{\"type\":\"counter\",\"value\":3}"), std::string::npos);
  EXPECT_NE(json.find("\"g\":{\"type\":\"gauge\",\"value\":0.5}"), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"time_weighted_gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
}

TEST(MetricsRegistry, VolatileMetricsExcludedFromDeterministicSnapshot) {
  MetricsRegistry reg;
  reg.gauge("stable").set(1.0);
  reg.gauge("wall_time", /*volatile_metric=*/true).set(123.456);
  std::string full = reg.to_json(true);
  std::string stable = reg.to_json(false);
  EXPECT_NE(full.find("wall_time"), std::string::npos);
  EXPECT_EQ(stable.find("wall_time"), std::string::npos);
  EXPECT_NE(stable.find("stable"), std::string::npos);
}

TEST(MetricsRegistry, SnapshotIsByteStableAcrossIdenticalUpdates) {
  auto build = [] {
    auto reg = std::make_unique<MetricsRegistry>();
    reg->counter("b/bytes").add(1e9 / 3.0);
    reg->histogram("a/lat").observe(0.0123456789);
    reg->gauge("c/util").set(99.99999999);
    return reg;
  };
  auto r1 = build();
  auto r2 = build();
  EXPECT_EQ(r1->to_json(), r2->to_json());
}

// Populates one instrument of every kind, the way a worker-private registry
// fills up during one profiler step.
void populate(MetricsRegistry& r) {
  r.counter("bytes").add(100.0);
  r.gauge("util").set(0.75);
  r.gauge("wall", /*volatile_metric=*/true).set(3.25);
  TimeWeightedGauge& tg = r.time_gauge("depth");
  tg.set(0.0, 1.0);
  tg.set(2.0, 3.0);
  Histogram& h = r.histogram("iter_s");
  h.observe(0.01);
  h.observe(0.1);
}

TEST(MetricsMerge, IntoEmptyReproducesSourceByteForByte) {
  // The property the deterministic parallel merge stands on: workers record
  // into private registries, and merging one into an untouched registry must
  // reproduce its snapshot exactly — volatile flags included.
  MetricsRegistry src, dst;
  populate(src);
  dst.merge_from(src);
  EXPECT_EQ(dst.to_json(true), src.to_json(true));
  EXPECT_EQ(dst.to_json(false), src.to_json(false));
}

TEST(MetricsMerge, CountersAddAndGaugesLastWriteWins) {
  MetricsRegistry a, b;
  a.counter("n").add(3.0);
  b.counter("n").add(4.0);
  a.gauge("g").set(1.0);
  b.gauge("g").set(2.0);
  a.merge_from(b);
  EXPECT_DOUBLE_EQ(a.find_counter("n")->value(), 7.0);
  EXPECT_DOUBLE_EQ(a.find_gauge("g")->value(), 2.0);
}

TEST(MetricsMerge, TimeGaugeSplicesSpans) {
  MetricsRegistry a, b;
  TimeWeightedGauge& ga = a.time_gauge("q");
  ga.set(0.0, 2.0);
  ga.set(1.0, 2.0);  // span 1, mean 2
  TimeWeightedGauge& gb = b.time_gauge("q");
  gb.set(10.0, 4.0);
  gb.set(13.0, 4.0);  // span 3, mean 4
  a.merge_from(b);
  const TimeWeightedGauge* m = a.find_time_gauge("q");
  ASSERT_NE(m, nullptr);
  EXPECT_DOUBLE_EQ(m->observed_span(), 4.0);
  EXPECT_DOUBLE_EQ(m->time_weighted_mean(), (2.0 * 1.0 + 4.0 * 3.0) / 4.0);
  EXPECT_DOUBLE_EQ(m->max(), 4.0);
  EXPECT_DOUBLE_EQ(m->current(), 4.0);
}

TEST(MetricsMerge, HistogramsAddBucketwise) {
  MetricsRegistry a, b;
  a.histogram("h").observe(0.5);
  b.histogram("h").observe(2.0);
  b.histogram("h").observe(8.0);
  a.merge_from(b);
  const Histogram* h = a.find_histogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 3u);
  EXPECT_DOUBLE_EQ(h->sum(), 10.5);
  EXPECT_DOUBLE_EQ(h->min(), 0.5);
  EXPECT_DOUBLE_EQ(h->max(), 8.0);
}

TEST(MetricsMerge, HistogramBoundsMismatchThrows) {
  Histogram a(std::vector<double>{1.0, 2.0});
  Histogram b(std::vector<double>{1.0, 3.0});
  a.observe(0.5);
  b.observe(0.5);
  EXPECT_THROW(a.merge_from(b), std::logic_error);
}

TEST(MetricsMerge, KindConflictThrows) {
  MetricsRegistry a, b;
  a.counter("x");
  b.gauge("x");
  EXPECT_THROW(a.merge_from(b), std::logic_error);
}

TEST(MetricsMerge, MergeOrderOfDisjointRegistriesIsIrrelevant) {
  // Instruments serialize sorted by name, so folding disjoint worker
  // registries in any order yields one snapshot.
  MetricsRegistry ab, ba, a1, a2, b1, b2;
  a1.counter("step1/events").add(5.0);
  a2.counter("step1/events").add(5.0);
  b1.gauge("step2/util").set(0.5);
  b2.gauge("step2/util").set(0.5);
  ab.merge_from(a1);
  ab.merge_from(b1);
  ba.merge_from(b2);
  ba.merge_from(a2);
  EXPECT_EQ(ab.to_json(), ba.to_json());
}

}  // namespace
}  // namespace stash::telemetry
