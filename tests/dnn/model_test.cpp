#include "dnn/model.h"

#include <gtest/gtest.h>

#include "util/units.h"

namespace stash::dnn {
namespace {

Model tiny_model() {
  std::vector<Layer> layers{
      Layer{"conv", LayerKind::kConv, 100.0, 1000.0, 400.0},
      Layer{"act", LayerKind::kOther, 0.0, 10.0, 400.0},
      Layer{"fc", LayerKind::kFullyConnected, 50.0, 500.0, 200.0},
  };
  return Model("tiny", std::move(layers), 1000.0);
}

TEST(Model, AggregatesTotals) {
  Model m = tiny_model();
  EXPECT_DOUBLE_EQ(m.total_params(), 150.0);
  EXPECT_DOUBLE_EQ(m.gradient_bytes(), 600.0);
  EXPECT_DOUBLE_EQ(m.fwd_flops_per_sample(), 1510.0);
  EXPECT_DOUBLE_EQ(m.bwd_flops_per_sample(), 3020.0);
  EXPECT_DOUBLE_EQ(m.activation_bytes_per_sample(), 1000.0);
  EXPECT_EQ(m.num_layers(), 3u);
  EXPECT_EQ(m.num_param_tensors(), 2u);
}

TEST(Model, GradientTensorsInBackwardOrder) {
  Model m = tiny_model();
  auto grads = m.gradient_tensors_backward();
  ASSERT_EQ(grads.size(), 2u);
  EXPECT_DOUBLE_EQ(grads[0], 200.0);  // fc first (backward pass order)
  EXPECT_DOUBLE_EQ(grads[1], 400.0);
}

TEST(Model, TrainMemoryGrowsWithBatch) {
  Model m = tiny_model();
  double m1 = m.train_memory_bytes(1);
  double m32 = m.train_memory_bytes(32);
  EXPECT_GT(m32, m1);
  EXPECT_NEAR(m32 - m1, 31.0 * m.activation_bytes_per_sample(), 1e-6);
}

TEST(Model, TrainMemoryIncludesParamState) {
  Model m = tiny_model();
  // weights+grads+momentum: 12 bytes/param.
  EXPECT_GE(m.train_memory_bytes(1), 150.0 * 12.0);
}

TEST(Model, InvalidBatchThrows) {
  Model m = tiny_model();
  EXPECT_THROW(m.train_memory_bytes(0), std::invalid_argument);
}

TEST(Model, EmptyModelThrows) {
  EXPECT_THROW(Model("empty", {}, 0.0), std::invalid_argument);
}

TEST(Model, ParamFreeModelThrows) {
  std::vector<Layer> layers{Layer{"pool", LayerKind::kOther, 0.0, 1.0, 1.0}};
  EXPECT_THROW(Model("pool-only", std::move(layers), 1.0), std::invalid_argument);
}

TEST(Layer, GradientBytesFp32) {
  Layer l{"x", LayerKind::kConv, 25.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(l.gradient_bytes(), 100.0);
  EXPECT_TRUE(l.has_params());
  Layer p{"pool", LayerKind::kOther, 0.0, 0.0, 0.0};
  EXPECT_FALSE(p.has_params());
}

}  // namespace
}  // namespace stash::dnn
