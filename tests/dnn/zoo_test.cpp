#include "dnn/zoo.h"

#include <gtest/gtest.h>

#include "dnn/bert.h"
#include "dnn/resnet.h"
#include "dnn/vgg.h"
#include "util/units.h"

namespace stash::dnn {
namespace {

// Table II check: every zoo model's parameter count must match the paper's
// reported gradient size. Real generators are allowed ~10% drift (the paper
// itself rounds differently from torchvision); profile models must be exact
// by construction.
class TableTwo : public ::testing::TestWithParam<std::string> {};

TEST_P(TableTwo, GradientSizeMatchesPaper) {
  const std::string name = GetParam();
  Model m = make_zoo_model(name);
  double paper = paper_gradient_millions(name) * 1e6;
  double tolerance = 0.10 * paper;
  EXPECT_NEAR(m.total_params(), paper, tolerance) << name;
}

TEST_P(TableTwo, ModelIsWellFormed) {
  Model m = make_zoo_model(GetParam());
  EXPECT_GT(m.num_param_tensors(), 0u);
  EXPECT_GT(m.fwd_flops_per_sample(), 0.0);
  EXPECT_GT(m.input_tensor_bytes(), 0.0);
  auto grads = m.gradient_tensors_backward();
  EXPECT_EQ(grads.size(), m.num_param_tensors());
  double sum = 0.0;
  for (double g : grads) {
    EXPECT_GT(g, 0.0);
    sum += g;
  }
  EXPECT_NEAR(sum, m.gradient_bytes(), 1e-6 * m.gradient_bytes());
}

INSTANTIATE_TEST_SUITE_P(AllModels, TableTwo,
                         ::testing::Values("alexnet", "mobilenet-v2", "squeezenet",
                                           "shufflenet", "resnet18", "resnet50",
                                           "vgg11", "bert-large"));

TEST(Zoo, UnknownModelThrows) {
  EXPECT_THROW(make_zoo_model("gpt-7"), std::invalid_argument);
  EXPECT_THROW(paper_gradient_millions("gpt-7"), std::invalid_argument);
}

TEST(Zoo, SmallAndLargeClassification) {
  auto small = small_vision_models();
  auto large = large_vision_models();
  EXPECT_EQ(small.size(), 5u);
  EXPECT_EQ(large.size(), 2u);
  for (const auto& n : small) EXPECT_NO_THROW(make_zoo_model(n));
  for (const auto& n : large) EXPECT_NO_THROW(make_zoo_model(n));
}

TEST(Zoo, DatasetBindings) {
  EXPECT_EQ(dataset_for("resnet18").name, "imagenet-1k");
  EXPECT_EQ(dataset_for("bert-large").name, "squad-2.0");
}

TEST(Datasets, TableTwoSizes) {
  Dataset in = imagenet_1k();
  EXPECT_NEAR(in.total_bytes, util::gb(133), 1.0);
  EXPECT_NEAR(in.num_samples, 1'281'167.0, 1.0);
  EXPECT_NEAR(in.bytes_per_sample(), util::gb(133) / 1'281'167.0, 1.0);
  Dataset sq = squad_v2();
  EXPECT_NEAR(sq.total_bytes, util::mb(45), 1.0);
}

TEST(ResNet, RealParamCounts) {
  // torchvision reference: resnet18 11.69M, resnet34 21.80M, resnet50
  // 25.56M, resnet101 44.55M, resnet152 60.19M.
  EXPECT_NEAR(make_resnet(18).total_params(), 11.69e6, 0.3e6);
  EXPECT_NEAR(make_resnet(34).total_params(), 21.80e6, 0.5e6);
  EXPECT_NEAR(make_resnet(50).total_params(), 25.56e6, 0.8e6);
  EXPECT_NEAR(make_resnet(101).total_params(), 44.55e6, 1.2e6);
  EXPECT_NEAR(make_resnet(152).total_params(), 60.19e6, 1.5e6);
}

TEST(ResNet, DepthIncreasesLayersAndParams) {
  Model r18 = make_resnet(18);
  Model r50 = make_resnet(50);
  Model r152 = make_resnet(152);
  EXPECT_LT(r18.num_param_tensors(), r50.num_param_tensors());
  EXPECT_LT(r50.num_param_tensors(), r152.num_param_tensors());
  EXPECT_LT(r18.total_params(), r50.total_params());
  EXPECT_LT(r50.total_params(), r152.total_params());
}

TEST(ResNet, RemovingBatchNormDropsTensors) {
  Model with_bn = make_resnet(18);
  Model without = make_resnet(18, ResNetOptions{.batch_norm = false});
  EXPECT_LT(without.num_param_tensors(), with_bn.num_param_tensors());
  // BN carries few parameters: totals barely move.
  EXPECT_NEAR(without.total_params(), with_bn.total_params(),
              0.01 * with_bn.total_params());
}

TEST(ResNet, RemovingResidualBarelyChangesModel) {
  Model with_res = make_resnet(18);
  Model without = make_resnet(18, ResNetOptions{.residual = false});
  // Only the 1x1 downsample projections disappear.
  EXPECT_LT(without.num_param_tensors(), with_res.num_param_tensors());
  EXPECT_NEAR(without.total_params(), with_res.total_params(),
              0.1 * with_res.total_params());
}

TEST(ResNet, InvalidDepthThrows) {
  EXPECT_THROW(make_resnet(20), std::invalid_argument);
}

TEST(Vgg, RealParamCounts) {
  // torchvision: vgg11 132.86M, vgg13 133.05M, vgg16 138.36M, vgg19 143.67M.
  EXPECT_NEAR(make_vgg(11).total_params(), 132.86e6, 0.5e6);
  EXPECT_NEAR(make_vgg(13).total_params(), 133.05e6, 0.5e6);
  EXPECT_NEAR(make_vgg(16).total_params(), 138.36e6, 0.5e6);
  EXPECT_NEAR(make_vgg(19).total_params(), 143.67e6, 0.5e6);
}

TEST(Vgg, FarFewerTensorsThanResNet) {
  // The paper's §VI contrast: VGG has few layers with huge gradients,
  // ResNet many layers with small gradients.
  Model vgg16 = make_vgg(16);
  Model r152 = make_resnet(152);
  EXPECT_LT(vgg16.num_param_tensors(), 40u);
  EXPECT_GT(r152.num_param_tensors(), 300u);
  EXPECT_GT(vgg16.total_params(), r152.total_params());
}

TEST(Vgg, InvalidDepthThrows) {
  EXPECT_THROW(make_vgg(12), std::invalid_argument);
}

TEST(Bert, LargeConfigParams) {
  Model bert = make_bert_large();
  // BERT-large: ~335M from this generator, 340-345M reported.
  EXPECT_NEAR(bert.total_params(), 340e6, 10e6);
  // 8 fused weight+bias tensors per encoder block x 24 blocks + embeddings.
  EXPECT_GT(bert.num_param_tensors(), 150u);
}

TEST(Bert, SeqLenScalesFlopsNotParams) {
  BertConfig short_cfg;
  short_cfg.seq_len = 128;
  BertConfig long_cfg;
  long_cfg.seq_len = 512;
  Model a = make_bert(short_cfg);
  Model b = make_bert(long_cfg);
  EXPECT_DOUBLE_EQ(a.total_params(), b.total_params());
  EXPECT_LT(a.fwd_flops_per_sample(), b.fwd_flops_per_sample());
}

TEST(Bert, InvalidConfigThrows) {
  BertConfig bad;
  bad.seq_len = 0;
  EXPECT_THROW(make_bert(bad), std::invalid_argument);
}

TEST(Bert, MemoryFitsBatch4OnV100) {
  // The paper trains BERT-large with batch 4 on 16 GB V100s.
  Model bert = make_bert_large();
  EXPECT_LT(bert.train_memory_bytes(4), util::gib(16));
}

}  // namespace
}  // namespace stash::dnn
