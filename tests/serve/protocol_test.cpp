#include "serve/protocol.h"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <string>
#include <thread>

#include "util/json.h"

namespace stash::serve {
namespace {

// Paired sockets so read_frame/write_frame exercise real socket fds (the
// MSG_NOSIGNAL path) without a listener.
struct SocketPair {
  int a = -1;
  int b = -1;
  SocketPair() { EXPECT_EQ(0, socketpair(AF_UNIX, SOCK_STREAM, 0, fds_)); }
  ~SocketPair() {
    if (fds_[0] >= 0) close(fds_[0]);
    if (fds_[1] >= 0) close(fds_[1]);
  }
  int writer() const { return fds_[0]; }
  int reader() const { return fds_[1]; }
  void close_writer() {
    close(fds_[0]);
    fds_[0] = -1;
  }

 private:
  int fds_[2] = {-1, -1};
};

TEST(Framing, RoundTripsPayloadBytes) {
  SocketPair sp;
  const std::string payload = "{\"hello\":\"\\u0000 world\",\"n\":42}";
  ASSERT_TRUE(write_frame(sp.writer(), payload));
  std::string got, err;
  ASSERT_EQ(ReadStatus::kOk, read_frame(sp.reader(), got, err)) << err;
  EXPECT_EQ(payload, got);
}

TEST(Framing, RoundTripsEmptyAndLargePayloads) {
  SocketPair sp;
  const std::string big(1 << 20, 'x');
  std::thread writer([&] {
    ASSERT_TRUE(write_frame(sp.writer(), ""));
    ASSERT_TRUE(write_frame(sp.writer(), big));
  });
  std::string got, err;
  ASSERT_EQ(ReadStatus::kOk, read_frame(sp.reader(), got, err)) << err;
  EXPECT_TRUE(got.empty());
  ASSERT_EQ(ReadStatus::kOk, read_frame(sp.reader(), got, err)) << err;
  EXPECT_EQ(big, got);
  writer.join();
}

TEST(Framing, CleanEofAtBoundaryIsClosed) {
  SocketPair sp;
  sp.close_writer();
  std::string got, err;
  EXPECT_EQ(ReadStatus::kClosed, read_frame(sp.reader(), got, err));
}

TEST(Framing, TruncatedFrameIsError) {
  SocketPair sp;
  // Header promises 100 bytes; deliver 3 and hang up.
  const unsigned char header[4] = {0, 0, 0, 100};
  ASSERT_EQ(4, send(sp.writer(), header, 4, 0));
  ASSERT_EQ(3, send(sp.writer(), "abc", 3, 0));
  sp.close_writer();
  std::string got, err;
  EXPECT_EQ(ReadStatus::kError, read_frame(sp.reader(), got, err));
  EXPECT_FALSE(err.empty());
}

TEST(Framing, OversizedLengthIsRejectedBeforeAllocation) {
  SocketPair sp;
  const std::uint32_t huge = kMaxFrameBytes + 1;
  const unsigned char header[4] = {
      static_cast<unsigned char>(huge >> 24),
      static_cast<unsigned char>(huge >> 16),
      static_cast<unsigned char>(huge >> 8),
      static_cast<unsigned char>(huge)};
  ASSERT_EQ(4, send(sp.writer(), header, 4, 0));
  std::string got, err;
  EXPECT_EQ(ReadStatus::kError, read_frame(sp.reader(), got, err));
  EXPECT_NE(err.find("frame"), std::string::npos) << err;
}

TEST(ParseRequest, AcceptsWellFormedRequest) {
  Request req;
  std::string err;
  ASSERT_TRUE(parse_request(
      R"({"schema":"stash.serve_request/1","id":"t1","command":"profile",)"
      R"("params":{"model":"resnet18","batch":32}})",
      req, err))
      << err;
  EXPECT_EQ("t1", req.id);
  EXPECT_EQ("profile", req.command);
  ASSERT_TRUE(req.params.is_object());
  EXPECT_EQ("resnet18", req.params.get("model").as_string());
  EXPECT_EQ(32, req.params.get("batch").as_int());
}

TEST(ParseRequest, MissingParamsBecomesEmptyObject) {
  Request req;
  std::string err;
  ASSERT_TRUE(parse_request(
      R"({"schema":"stash.serve_request/1","command":"ping"})", req, err))
      << err;
  ASSERT_TRUE(req.params.is_object());
  EXPECT_EQ(0u, req.params.size());
}

TEST(ParseRequest, RejectsBadInputsWithReason) {
  Request req;
  std::string err;
  EXPECT_FALSE(parse_request("{torn", req, err));
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(parse_request(R"({"schema":"wrong/9","command":"ping"})", req, err));
  EXPECT_FALSE(parse_request(R"({"schema":"stash.serve_request/1"})", req, err));
  EXPECT_FALSE(parse_request(
      R"({"schema":"stash.serve_request/1","command":""})", req, err));
  EXPECT_FALSE(parse_request(
      R"({"schema":"stash.serve_request/1","command":"x","params":[1]})", req,
      err));
}

Request must_parse(const std::string& payload) {
  Request req;
  std::string err;
  EXPECT_TRUE(parse_request(payload, req, err)) << err;
  return req;
}

TEST(RequestKey, IgnoresParamMemberOrder) {
  const Request a = must_parse(
      R"({"schema":"stash.serve_request/1","command":"profile",)"
      R"("params":{"model":"resnet18","batch":32,"instance":"p3.8xlarge"}})");
  const Request b = must_parse(
      R"({"schema":"stash.serve_request/1","command":"profile",)"
      R"("params":{"instance":"p3.8xlarge","batch":32,"model":"resnet18"}})");
  EXPECT_EQ(request_key(a).hash, request_key(b).hash);
  EXPECT_EQ(request_key(a).canonical, request_key(b).canonical);
}

TEST(RequestKey, DistinguishesCommandAndParamValues) {
  const Request base = must_parse(
      R"({"schema":"stash.serve_request/1","command":"profile",)"
      R"("params":{"model":"resnet18"}})");
  const Request other_value = must_parse(
      R"({"schema":"stash.serve_request/1","command":"profile",)"
      R"("params":{"model":"resnet50"}})");
  const Request other_cmd = must_parse(
      R"({"schema":"stash.serve_request/1","command":"estimate",)"
      R"("params":{"model":"resnet18"}})");
  EXPECT_NE(request_key(base).canonical, request_key(other_value).canonical);
  EXPECT_NE(request_key(base).canonical, request_key(other_cmd).canonical);
}

TEST(RequestKey, ClientIdDoesNotSplitTheCache) {
  const Request a = must_parse(
      R"({"schema":"stash.serve_request/1","id":"client-a","command":"profile",)"
      R"("params":{"model":"resnet18"}})");
  const Request b = must_parse(
      R"({"schema":"stash.serve_request/1","id":"client-b","command":"profile",)"
      R"("params":{"model":"resnet18"}})");
  EXPECT_EQ(request_key(a).canonical, request_key(b).canonical);
}

TEST(Responses, OkEnvelopeCarriesResultVerbatim) {
  Request req;
  req.id = "t9";
  req.command = "profile";
  const util::JsonValue doc =
      util::json_parse(ok_response(req, R"({"x":1.5})", true, 3.25));
  EXPECT_EQ("stash.serve_response/1", doc.get("schema").as_string());
  EXPECT_EQ("t9", doc.get("id").as_string());
  EXPECT_EQ("profile", doc.get("command").as_string());
  EXPECT_EQ("ok", doc.get("status").as_string());
  EXPECT_TRUE(doc.get("cached").as_bool());
  EXPECT_DOUBLE_EQ(3.25, doc.get("elapsed_ms").as_double());
  EXPECT_DOUBLE_EQ(1.5, doc.get("result").get("x").as_double());
}

TEST(Responses, ErrorAndOverloadedEnvelopes) {
  Request req;
  req.command = "plan";
  const util::JsonValue err = util::json_parse(error_response(req, "boom \"q\""));
  EXPECT_EQ("error", err.get("status").as_string());
  EXPECT_EQ("boom \"q\"", err.get("error").as_string());
  EXPECT_FALSE(err.has("result"));
  const util::JsonValue ovl = util::json_parse(overloaded_response(req));
  EXPECT_EQ("overloaded", ovl.get("status").as_string());
  EXPECT_FALSE(ovl.get("error").as_string().empty());
}

}  // namespace
}  // namespace stash::serve
