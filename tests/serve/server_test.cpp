#include "serve/server.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.h"
#include "serve/protocol.h"
#include "util/json.h"

namespace stash::serve {
namespace {

std::string make_request(const std::string& command,
                         const std::string& params_json = "{}",
                         const std::string& id = "test") {
  return std::string("{\"schema\":\"stash.serve_request/1\",\"id\":\"") + id +
         "\",\"command\":\"" + command + "\",\"params\":" + params_json + "}";
}

util::JsonValue query(int port, const std::string& command,
                      const std::string& params_json = "{}") {
  Client client = Client::connect_tcp(port);
  return util::json_parse(client.roundtrip(make_request(command, params_json)));
}

class ServerTest : public ::testing::Test {
 protected:
  ServeOptions base_options() {
    ServeOptions opt;
    opt.tcp_port = 0;  // ephemeral
    opt.jobs = 2;
    opt.enable_test_commands = true;
    return opt;
  }
};

TEST_F(ServerTest, PingRoundTripsAndEchoesId) {
  Server server(base_options());
  server.start();
  Client client = Client::connect_tcp(server.tcp_port());
  const util::JsonValue doc = util::json_parse(
      client.roundtrip(make_request("ping", "{}", "client-7")));
  EXPECT_EQ("stash.serve_response/1", doc.get("schema").as_string());
  EXPECT_EQ("client-7", doc.get("id").as_string());
  EXPECT_EQ("ok", doc.get("status").as_string());
  EXPECT_TRUE(doc.get("result").get("pong").as_bool());
}

TEST_F(ServerTest, WarmRepeatAnswersFromCacheUnder10ms) {
  Server server(base_options());
  server.start();
  const std::string params = R"({"model":"resnet18","batch":32})";
  const util::JsonValue cold = query(server.tcp_port(), "profile", params);
  ASSERT_EQ("ok", cold.get("status").as_string());
  EXPECT_FALSE(cold.get("cached").as_bool());
  ASSERT_TRUE(cold.get("result").is_object());

  const util::JsonValue warm = query(server.tcp_port(), "profile", params);
  ASSERT_EQ("ok", warm.get("status").as_string());
  EXPECT_TRUE(warm.get("cached").as_bool());
  EXPECT_LT(warm.get("elapsed_ms").as_double(), 10.0);
  // The memoized result fragment is byte-identical; only the envelope
  // (cached / elapsed_ms) differs between cold and warm.
  EXPECT_EQ(cold.get("result").dump(), warm.get("result").dump());
}

TEST_F(ServerTest, ParamOrderDoesNotSplitTheResponseCache) {
  Server server(base_options());
  server.start();
  ASSERT_EQ("ok", query(server.tcp_port(), "profile",
                        R"({"model":"resnet18","batch":32})")
                      .get("status")
                      .as_string());
  const util::JsonValue reordered = query(
      server.tcp_port(), "profile", R"({"batch":32,"model":"resnet18"})");
  EXPECT_TRUE(reordered.get("cached").as_bool());
  EXPECT_EQ(1u, server.response_memo().misses());
}

TEST_F(ServerTest, ThousandConcurrentIdenticalQueriesComputeOnce) {
  ServeOptions opt = base_options();
  opt.max_inflight = 0;  // admission control off: everyone must coalesce
  Server server(opt);
  server.start();

  constexpr int kThreads = 100;
  constexpr int kPerThread = 10;  // 1000 identical queries total
  std::atomic<int> computed{0};
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&] {
      Client client = Client::connect_tcp(server.tcp_port());
      for (int i = 0; i < kPerThread; ++i) {
        const util::JsonValue doc = util::json_parse(client.roundtrip(
            make_request("profile", R"({"model":"resnet18","batch":32})")));
        if (doc.get("status").as_string() == "ok") ++ok;
        if (!doc.get("cached").as_bool()) ++computed;
      }
    });
  }
  for (auto& c : clients) c.join();

  EXPECT_EQ(kThreads * kPerThread, ok.load());
  // Exactly one request computed; 999 were coalesced onto it or served from
  // the completed memo entry afterwards.
  EXPECT_EQ(1, computed.load());
  EXPECT_EQ(1u, server.response_memo().misses());
  EXPECT_EQ(static_cast<std::uint64_t>(kThreads * kPerThread - 1),
            server.response_memo().hits());
}

TEST_F(ServerTest, SaturatedServerRespondsOverloadedNotQueued) {
  ServeOptions opt = base_options();
  opt.max_inflight = 1;
  Server server(opt);
  server.start();

  std::thread slow([&] {
    const util::JsonValue doc =
        query(server.tcp_port(), "sleep", R"({"ms":2000})");
    EXPECT_EQ("ok", doc.get("status").as_string());
  });
  // Wait until the slow request is inside the handler before poking it.
  for (int i = 0; i < 400; ++i) {
    const util::JsonValue stats = util::json_parse(server.stats_json());
    if (stats.get("in_flight").as_int() >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const util::JsonValue doc =
      query(server.tcp_port(), "sleep", R"({"ms":2001})");
  EXPECT_EQ("overloaded", doc.get("status").as_string());
  slow.join();
}

TEST_F(ServerTest, StatsExposesBothCachesAndInFlight) {
  Server server(base_options());
  server.start();
  ASSERT_EQ("ok", query(server.tcp_port(), "profile",
                        R"({"model":"resnet18","batch":32})")
                      .get("status")
                      .as_string());
  const util::JsonValue doc = query(server.tcp_port(), "stats");
  const util::JsonValue& stats = doc.get("result");
  EXPECT_EQ("stash.serve_stats/1", stats.get("schema").as_string());
  EXPECT_GE(stats.get("sim_cache").get("misses").as_int(), 1);
  EXPECT_GE(stats.get("responses").get("misses").as_int(), 1);
  EXPECT_EQ(0, stats.get("in_flight").as_int());
  // Prometheus exposition carries the same counters as scrape-time gauges.
  const std::string prom = server.prometheus_snapshot();
  EXPECT_NE(prom.find("serve_sim_cache_misses"), std::string::npos) << prom;
  EXPECT_NE(prom.find("serve_requests"), std::string::npos) << prom;
}

TEST_F(ServerTest, EntryCapBoundsResidentScenariosUnderSweep) {
  ServeOptions opt = base_options();
  opt.cache_entries = 4;
  Server server(opt);
  server.start();
  // Sweep more distinct scenarios than the cap; residency must stay bounded.
  for (int batch : {8, 16, 24, 32, 40, 48, 56, 64})
    ASSERT_EQ("ok", query(server.tcp_port(), "profile",
                          R"({"model":"resnet18","batch":)" +
                              std::to_string(batch) + "}")
                        .get("status")
                        .as_string());
  EXPECT_LE(server.sim_cache().size(), 4u);
  EXPECT_GT(server.sim_cache().evictions(), 0u);
}

TEST_F(ServerTest, MalformedPayloadGetsErrorWithoutKillingConnection) {
  Server server(base_options());
  server.start();
  Client client = Client::connect_tcp(server.tcp_port());
  const util::JsonValue err = util::json_parse(client.roundtrip("{torn"));
  EXPECT_EQ("error", err.get("status").as_string());
  EXPECT_FALSE(err.get("error").as_string().empty());
  // Same connection still serves well-formed requests afterwards.
  const util::JsonValue ping = util::json_parse(client.roundtrip(make_request("ping")));
  EXPECT_EQ("ok", ping.get("status").as_string());
}

TEST_F(ServerTest, UnknownCommandIsAnErrorResponse) {
  Server server(base_options());
  server.start();
  const util::JsonValue doc = query(server.tcp_port(), "frobnicate");
  EXPECT_EQ("error", doc.get("status").as_string());
  EXPECT_NE(doc.get("error").as_string().find("frobnicate"), std::string::npos);
}

TEST_F(ServerTest, ShutdownCommandUnblocksWaiters) {
  Server server(base_options());
  server.start();
  const util::JsonValue doc = query(server.tcp_port(), "shutdown");
  EXPECT_EQ("ok", doc.get("status").as_string());
  server.wait_for_shutdown();  // must return promptly, not block forever
  server.stop();
}

TEST_F(ServerTest, GracefulStopDrainsInFlightRequest) {
  Server server(base_options());
  server.start();
  std::atomic<bool> got_ok{false};
  std::thread slow([&] {
    const util::JsonValue doc =
        query(server.tcp_port(), "sleep", R"({"ms":500})");
    got_ok = doc.get("status").as_string() == "ok";
  });
  for (int i = 0; i < 400; ++i) {
    const util::JsonValue stats = util::json_parse(server.stats_json());
    if (stats.get("in_flight").as_int() >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  server.stop();  // half-closes the connection; the sleep must still answer
  slow.join();
  EXPECT_TRUE(got_ok.load());
}

class ServePersistTest : public ServerTest {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("stash_serve_persist_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(ServePersistTest, RestartedDaemonAnswersFromDiskWithoutSimulating) {
  const std::string params = R"({"model":"resnet18","batch":32})";
  std::string cold_result;
  {
    ServeOptions opt = base_options();
    opt.persist_dir = dir_.string();
    Server server(opt);
    server.start();
    const util::JsonValue doc = query(server.tcp_port(), "profile", params);
    ASSERT_EQ("ok", doc.get("status").as_string());
    cold_result = doc.get("result").dump();
    EXPECT_GT(server.sim_cache().misses(), 0u);
    EXPECT_EQ(0u, server.sim_cache().disk_hits());
    server.stop();
  }
  ServeOptions opt = base_options();
  opt.persist_dir = dir_.string();
  Server server(opt);
  server.start();
  const util::JsonValue doc = query(server.tcp_port(), "profile", params);
  ASSERT_EQ("ok", doc.get("status").as_string());
  EXPECT_EQ(cold_result, doc.get("result").dump());
  // Every scenario the profile needed came back from disk: the memory cache
  // records them as misses, all of which the persisted store satisfied.
  EXPECT_GT(server.sim_cache().disk_hits(), 0u);
  EXPECT_EQ(server.sim_cache().misses(), server.sim_cache().disk_hits());
}

TEST_F(ServerTest, UnixSocketListenerServesRequests) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("stash_serve_" + std::to_string(::getpid()) + ".sock"))
          .string();
  ServeOptions opt = base_options();
  opt.tcp_port = -1;
  opt.unix_path = path;
  Server server(opt);
  server.start();
  Client client = Client::connect_unix(path);
  const util::JsonValue doc =
      util::json_parse(client.roundtrip(make_request("ping")));
  EXPECT_EQ("ok", doc.get("status").as_string());
  server.stop();
  EXPECT_FALSE(std::filesystem::exists(path)) << "stale socket not unlinked";
}

}  // namespace
}  // namespace stash::serve
