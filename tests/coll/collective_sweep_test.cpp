// Parameterized sweeps of the simulated ring all-reduce against the closed
// form, across payload sizes and cluster shapes where the analytic model
// is exact (uncontended, disjoint hops or a single known bottleneck).
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "cloud/builder.h"
#include "cloud/instance.h"
#include "coll/ring_allreduce.h"
#include "sim/simulator.h"
#include "util/units.h"

namespace stash::coll {
namespace {

using util::gb_per_s;
using util::gbps;
using util::mib;

double simulate_ring(const std::string& instance_name, int count, double bytes) {
  sim::Simulator sim;
  hw::FlowNetwork net(sim);
  hw::Cluster cluster(net, sim,
                      cloud::cluster_configs_for(cloud::instance(instance_name), count),
                      cloud::fabric_bandwidth());
  CollectiveContext ctx{sim, net, cluster, CollectiveConfig{}};
  double done = -1;
  auto proc = [&]() -> sim::Task<void> {
    co_await ring_allreduce(ctx, bytes);
    done = sim.now();
  };
  sim.spawn(proc());
  sim.run();
  return done;
}

class NvlinkBytesSweep : public ::testing::TestWithParam<double> {};

TEST_P(NvlinkBytesSweep, MatchesClosedForm) {
  double bytes = GetParam();
  double t = simulate_ring("p3.16xlarge", 1, bytes);
  CollectiveConfig cfg;
  double expect =
      ring_allreduce_analytic(bytes, 8, gb_per_s(22), cfg.intra_round_latency);
  EXPECT_NEAR(t, expect, 1e-6 * expect + 1e-12) << bytes;
}

INSTANTIATE_TEST_SUITE_P(Payloads, NvlinkBytesSweep,
                         ::testing::Values(mib(1), mib(4), mib(16), mib(64),
                                           mib(256), mib(1024)));

class NicBytesSweep : public ::testing::TestWithParam<double> {};

TEST_P(NicBytesSweep, NicBoundRingMatchesClosedForm) {
  double bytes = GetParam();
  double t = simulate_ring("p3.8xlarge", 2, bytes);
  CollectiveConfig cfg;
  double expect = ring_allreduce_analytic(bytes, 8, gbps(10),
                                          cfg.inter_round_latency);
  // The NIC hop dominates each round; small slack for intra-hop rounding.
  EXPECT_NEAR(t, expect, 0.03 * expect + 1e-9) << bytes;
}

INSTANTIATE_TEST_SUITE_P(Payloads, NicBytesSweep,
                         ::testing::Values(mib(8), mib(32), mib(128), mib(512)));

// Doubling the payload at zero latency doubles the time on every shape.
class LinearityShape
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(LinearityShape, BytesLinear) {
  auto [name, count] = GetParam();
  auto run_zero_latency = [&](double bytes) {
    sim::Simulator sim;
    hw::FlowNetwork net(sim);
    hw::Cluster cluster(net, sim,
                        cloud::cluster_configs_for(cloud::instance(name), count),
                        cloud::fabric_bandwidth());
    CollectiveContext ctx{sim, net, cluster, CollectiveConfig{0.0, 0.0, 0.0}};
    double done = -1;
    auto proc = [&]() -> sim::Task<void> {
      co_await ring_allreduce(ctx, bytes);
      done = sim.now();
    };
    sim.spawn(proc());
    sim.run();
    return done;
  };
  double t1 = run_zero_latency(mib(32));
  double t2 = run_zero_latency(mib(64));
  EXPECT_NEAR(t2, 2.0 * t1, 1e-6 * t2);
}

INSTANTIATE_TEST_SUITE_P(Shapes, LinearityShape,
                         ::testing::Values(std::tuple{"p2.8xlarge", 1},
                                           std::tuple{"p2.16xlarge", 1},
                                           std::tuple{"p3.8xlarge", 1},
                                           std::tuple{"p3.16xlarge", 1},
                                           std::tuple{"p3.16xlarge", 2}));

}  // namespace
}  // namespace stash::coll
