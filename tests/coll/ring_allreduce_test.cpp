#include "coll/ring_allreduce.h"

#include <gtest/gtest.h>

#include "cloud/builder.h"
#include "cloud/instance.h"
#include "sim/simulator.h"
#include "util/units.h"

namespace stash::coll {
namespace {

using util::gb_per_s;
using util::mib;

struct Fixture {
  sim::Simulator sim;
  hw::FlowNetwork net{sim};
  std::unique_ptr<hw::Cluster> cluster;
  CollectiveConfig config;

  explicit Fixture(const std::string& instance_name, int count = 1,
                   cloud::CrossbarSlice slice = cloud::CrossbarSlice::kFragmented) {
    cluster = std::make_unique<hw::Cluster>(
        net, sim,
        cloud::cluster_configs_for(cloud::instance(instance_name), count, slice),
        cloud::fabric_bandwidth());
  }

  CollectiveContext ctx() { return CollectiveContext{sim, net, *cluster, config}; }

  // Runs one collective, returns the simulated duration.
  template <typename Fn>
  double run(Fn&& fn) {
    double done = -1;
    auto ctx_obj = std::make_shared<CollectiveContext>(ctx());
    auto proc = [](CollectiveContext& c, Fn fn2, sim::Simulator& s,
                   double& out) -> sim::Task<void> {
      co_await fn2(c);
      out = s.now();
    };
    sim.spawn(proc(*ctx_obj, std::forward<Fn>(fn), sim, done));
    sim.run();
    return done;
  }
};

TEST(RingAllreduce, AnalyticFormula) {
  // 2(k-1) * (lat + B/(k*bw))
  EXPECT_NEAR(ring_allreduce_analytic(800.0, 4, 100.0, 0.5), 6 * (0.5 + 2.0), 1e-12);
  EXPECT_NEAR(ring_allreduce_analytic(1000.0, 1, 100.0, 0.25), 0.25, 1e-12);
  EXPECT_THROW(ring_allreduce_analytic(1.0, 0, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(ring_allreduce_analytic(1.0, 2, 0.0, 0.0), std::invalid_argument);
}

TEST(RingAllreduce, SingleGpuIsLaunchLatencyOnly) {
  Fixture f("p3.2xlarge");
  double t = f.run([](CollectiveContext& c) { return ring_allreduce(c, mib(100)); });
  EXPECT_NEAR(t, f.config.intra_round_latency, 1e-9);
}

TEST(RingAllreduce, NvlinkRingMatchesAnalytic) {
  // p3.16xlarge: full NVLink ring, disjoint 22 GB/s hops. The simulated
  // time must match the closed form exactly (rounds are synchronous and
  // hops are uncontended).
  Fixture f("p3.16xlarge");
  double bytes = mib(256);
  double t = f.run([&](CollectiveContext& c) { return ring_allreduce(c, bytes); });
  double expect =
      ring_allreduce_analytic(bytes, 8, gb_per_s(22), f.config.intra_round_latency);
  EXPECT_NEAR(t, expect, 1e-6 * expect);
}

TEST(RingAllreduce, PcieRingThrottledByBridge) {
  // p2.8xlarge: 8 GPUs ring over a 24 GB/s bridge crossed twice per hop.
  // Each round moves 8 chunks x 2 traversals through the bridge:
  // round = 2 * bytes / (8 * 24 GB/s) * 8 = bytes/12e9... i.e. the
  // effective per-round time is 16*(bytes/8)/24e9.
  Fixture f("p2.8xlarge");
  double bytes = mib(96);
  double t = f.run([&](CollectiveContext& c) { return ring_allreduce(c, bytes); });
  double round = 16.0 * (bytes / 8.0) / gb_per_s(24);
  double expect = 14.0 * (f.config.intra_round_latency + round);
  EXPECT_NEAR(t, expect, 1e-6 * expect);
}

TEST(RingAllreduce, SixteenXlargeSlowerThanEightXlarge) {
  // Same payload, same family: the 16xlarge ring is slower than the
  // 8xlarge ring because the bridge is shared by twice the GPUs
  // (paper Fig 5a / §V-A1).
  Fixture f8("p2.8xlarge");
  Fixture f16("p2.16xlarge");
  double bytes = mib(64);
  double t8 = f8.run([&](CollectiveContext& c) { return ring_allreduce(c, bytes); });
  double t16 = f16.run([&](CollectiveContext& c) { return ring_allreduce(c, bytes); });
  EXPECT_GT(t16, 1.5 * t8);
}

TEST(RingAllreduce, FragmentedSliceSlowerThanFullQuad) {
  // §V-B1: the fragmented p3.8xlarge ring crosses PCIe once and loses the
  // crossbar benefit.
  Fixture good("p3.8xlarge", 1, cloud::CrossbarSlice::kFullQuad);
  Fixture bad("p3.8xlarge", 1, cloud::CrossbarSlice::kFragmented);
  double bytes = mib(128);
  double tg = good.run([&](CollectiveContext& c) { return ring_allreduce(c, bytes); });
  double tb = bad.run([&](CollectiveContext& c) { return ring_allreduce(c, bytes); });
  EXPECT_GT(tb, tg);
}

TEST(RingAllreduce, NetworkRingThrottledByNic) {
  // Two p3.8xlarge over a 10 Gbps NIC: the crossing hop paces every round.
  Fixture f("p3.8xlarge", 2);
  double bytes = mib(128);
  double t = f.run([&](CollectiveContext& c) { return ring_allreduce(c, bytes); });
  double expect = ring_allreduce_analytic(bytes, 8, util::gbps(10),
                                          f.config.inter_round_latency);
  // NIC-paced rounds; intra hops are faster and hide inside the round.
  EXPECT_NEAR(t, expect, 0.02 * expect);
}

TEST(RingAllreduce, NetworkMuchSlowerThanNvlink) {
  // The paper's headline: crossing the network can be ~5x+ worse than the
  // single 8-GPU machine.
  Fixture one("p3.16xlarge");
  Fixture two("p3.8xlarge", 2);
  double bytes = mib(512);  // VGG-scale gradients
  double t1 = one.run([&](CollectiveContext& c) { return ring_allreduce(c, bytes); });
  double t2 = two.run([&](CollectiveContext& c) { return ring_allreduce(c, bytes); });
  EXPECT_GT(t2, 5.0 * t1);
}

TEST(RingAllreduce, ZeroBytesCostsOnlyLatency) {
  Fixture f("p3.16xlarge");
  double t = f.run([](CollectiveContext& c) { return ring_allreduce(c, 0.0); });
  EXPECT_NEAR(t, 14.0 * f.config.intra_round_latency, 1e-9);
}

TEST(RingAllreduce, CostScalesLinearlyInBytes) {
  Fixture f("p3.16xlarge");
  CollectiveConfig no_latency{0.0, 0.0};
  f.config = no_latency;
  double t1 = f.run([&](CollectiveContext& c) { return ring_allreduce(c, mib(64)); });
  Fixture f2("p3.16xlarge");
  f2.config = no_latency;
  double t2 = f2.run([&](CollectiveContext& c) { return ring_allreduce(c, mib(128)); });
  EXPECT_NEAR(t2, 2.0 * t1, 1e-6 * t2);
}

// The completion-time equivalence the hierarchical collective relies on:
// with no background traffic (static contention), aggregated pacing lands
// on the same simulated duration as the lock-step per-round schedule —
// R*(L + chunk/rate) vs R*L + (R*chunk)/rate — on both a single-machine
// NVLink ring and a NIC-paced cross-machine ring. Tolerance covers only
// the floating-point difference between summing R round durations and one
// multiply.
TEST(RingAllreduce, AggregatedPacingMatchesPerRoundWhenStatic) {
  for (int count : {1, 2}) {
    double bytes = mib(128);
    Fixture per_round("p3.8xlarge", count);
    double lat = per_round.ctx().round_latency();
    double tp = per_round.run([&](CollectiveContext& c) {
      return ring_allreduce_over(c, c.cluster.ring_order(), bytes, lat,
                                 RingPacing::kPerRound);
    });
    Fixture aggregated("p3.8xlarge", count);
    double ta = aggregated.run([&](CollectiveContext& c) {
      return ring_allreduce_over(c, c.cluster.ring_order(), bytes, lat,
                                 RingPacing::kAggregated);
    });
    EXPECT_NEAR(ta, tp, 1e-9 * tp) << count << " machine(s)";
  }
}

// Property sweep over cluster shapes: simulated ring time is within 30% of
// the analytic bound computed from the slowest hop (contention-free rings
// should sit right on it).
class RingShapeSweep
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(RingShapeSweep, MatchesAnalyticBound) {
  auto [name, count] = GetParam();
  Fixture f(name, count);
  double bytes = mib(100);
  double t = f.run([&](CollectiveContext& c) { return ring_allreduce(c, bytes); });
  int k = f.cluster->total_gpus();
  if (k == 1) return;
  // Upper bound: slowest possible hop is the NIC (multi-machine) or the
  // doubly-crossed bridge shared by all ring flows.
  EXPECT_GT(t, 0.0);
  double latency = f.cluster->multi_machine() ? f.config.inter_round_latency
                                              : f.config.intra_round_latency;
  EXPECT_GE(t, 2.0 * (k - 1) * latency);
}

INSTANTIATE_TEST_SUITE_P(Shapes, RingShapeSweep,
                         ::testing::Values(std::tuple{"p2.8xlarge", 1},
                                           std::tuple{"p2.16xlarge", 1},
                                           std::tuple{"p3.8xlarge", 1},
                                           std::tuple{"p3.16xlarge", 1},
                                           std::tuple{"p3.8xlarge", 2},
                                           std::tuple{"p3.16xlarge", 2},
                                           std::tuple{"p2.8xlarge", 2}));

}  // namespace
}  // namespace stash::coll
