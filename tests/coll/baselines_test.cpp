#include "coll/baselines.h"

#include <gtest/gtest.h>

#include "cloud/builder.h"
#include "cloud/instance.h"
#include "coll/ring_allreduce.h"
#include "sim/simulator.h"
#include "util/units.h"

namespace stash::coll {
namespace {

using util::mib;

struct Fixture {
  sim::Simulator sim;
  hw::FlowNetwork net{sim};
  std::unique_ptr<hw::Cluster> cluster;
  CollectiveConfig config;

  explicit Fixture(const std::string& name, int count = 1) {
    cluster = std::make_unique<hw::Cluster>(
        net, sim, cloud::cluster_configs_for(cloud::instance(name), count),
        cloud::fabric_bandwidth());
  }

  template <typename Fn>
  double run(Fn&& fn) {
    CollectiveContext ctx{sim, net, *cluster, config};
    double done = -1;
    auto proc = [&ctx, &fn, this, &done]() -> sim::Task<void> {
      co_await fn(ctx);
      done = sim.now();
    };
    sim.spawn(proc());
    sim.run();
    return done;
  }
};

TEST(TreeAllreduce, SingleGpuDegenerates) {
  Fixture f("p3.2xlarge");
  double t = f.run([](CollectiveContext& c) { return tree_allreduce(c, mib(10)); });
  EXPECT_NEAR(t, f.config.intra_round_latency, 1e-9);
}

TEST(TreeAllreduce, CompletesOnMultiGpu) {
  Fixture f("p3.16xlarge");
  double t = f.run([](CollectiveContext& c) { return tree_allreduce(c, mib(64)); });
  EXPECT_GT(t, 0.0);
  EXPECT_TRUE(f.sim.all_processes_done());
}

TEST(TreeAllreduce, SlowerThanRingForLargePayloads) {
  // Tree moves the full payload per edge; ring moves 1/k chunks. For
  // bandwidth-bound payloads ring wins.
  Fixture ring_f("p3.16xlarge");
  Fixture tree_f("p3.16xlarge");
  double bytes = mib(512);
  double tr = ring_f.run([&](CollectiveContext& c) { return ring_allreduce(c, bytes); });
  double tt = tree_f.run([&](CollectiveContext& c) { return tree_allreduce(c, bytes); });
  EXPECT_GT(tt, tr);
}

TEST(ParameterServer, SingleGpuDegenerates) {
  Fixture f("p2.xlarge");
  double t = f.run([](CollectiveContext& c) {
    auto server = PsServer::create(c.net);
    return parameter_server_exchange(c, server, mib(10));
  });
  EXPECT_NEAR(t, f.config.intra_round_latency, 1e-9);
}

TEST(ParameterServer, UninitializedServerThrows) {
  Fixture f("p2.8xlarge");
  bool threw = false;
  CollectiveContext ctx{f.sim, f.net, *f.cluster, f.config};
  try {
    auto task = parameter_server_exchange(ctx, PsServer{}, mib(1));
    (void)task;
  } catch (const std::invalid_argument&) {
    threw = true;
  }
  EXPECT_TRUE(threw);
}

TEST(ParameterServer, StrictlyWorseThanRingAllreduce) {
  // §IV: PS performance "has been shown to be strictly less than
  // allreduce". The server's reduction bandwidth funnels k payloads.
  for (const char* name : {"p2.8xlarge", "p3.16xlarge"}) {
    Fixture ps_f(name);
    Fixture ring_f(name);
    double bytes = mib(128);
    double tp = ps_f.run([&](CollectiveContext& c) {
      auto server = PsServer::create(c.net);
      return parameter_server_exchange(c, server, bytes);
    });
    double tr =
        ring_f.run([&](CollectiveContext& c) { return ring_allreduce(c, bytes); });
    EXPECT_GT(tp, tr) << name;
  }
}

TEST(ParameterServer, CrossMachinePushesShareNic) {
  Fixture f("p3.8xlarge", 2);
  double bytes = mib(64);
  double t = f.run([&](CollectiveContext& c) {
    auto server = PsServer::create(c.net);
    return parameter_server_exchange(c, server, bytes);
  });
  // Four remote workers push 64 MiB each through one 10 Gbps NIC, then the
  // pulls go back out: >= 2 * 4*64MiB / 1.25 GB/s.
  EXPECT_GT(t, 2.0 * 4.0 * bytes / util::gbps(10) * 0.99);
}

TEST(Hierarchical, SingleMachineEqualsRing) {
  Fixture h_f("p3.16xlarge");
  Fixture r_f("p3.16xlarge");
  double bytes = mib(100);
  double th =
      h_f.run([&](CollectiveContext& c) { return hierarchical_allreduce(c, bytes); });
  double tr = r_f.run([&](CollectiveContext& c) { return ring_allreduce(c, bytes); });
  EXPECT_NEAR(th, tr, 1e-9);
}

TEST(Hierarchical, OverSubsetThrowsOnEmptySet) {
  Fixture f("p3.16xlarge");
  CollectiveContext ctx{f.sim, f.net, *f.cluster, f.config};
  bool threw = false;
  try {
    auto task = hierarchical_allreduce_over(ctx, {}, mib(1));
    (void)task;
  } catch (const std::invalid_argument&) {
    threw = true;
  }
  EXPECT_TRUE(threw);
}

TEST(Hierarchical, OverSubsetCompletesAcrossMachines) {
  // An explicit participant subset spanning two machines (e.g. the trainer
  // after a shrink) runs the full three-phase schedule and drains.
  Fixture f("p3.16xlarge", 2);
  std::vector<hw::GpuRef> gpus;
  for (int m = 0; m < 2; ++m)
    for (int g = 0; g < 4; ++g) gpus.push_back(hw::GpuRef{m, g});
  double t = f.run([&](CollectiveContext& c) {
    return hierarchical_allreduce_over(c, gpus, mib(64));
  });
  EXPECT_GT(t, 0.0);
  EXPECT_TRUE(f.sim.all_processes_done());
  EXPECT_EQ(f.net.active_flows(), 0u);
}

TEST(Hierarchical, AnalyticMatchesShape) {
  // Closed form: single machine degenerates to the intra ring; multi
  // machine adds the leader ring plus one pipelined broadcast payload.
  const double bytes = mib(100);
  const double intra_bw = 20e9, inter_bw = 1.25e9;
  const double intra_lat = 2e-6, inter_lat = 20e-6;
  EXPECT_DOUBLE_EQ(
      hierarchical_allreduce_analytic(bytes, 1, 8, intra_bw, inter_bw, intra_lat,
                                      inter_lat),
      ring_allreduce_analytic(bytes, 8, intra_bw, intra_lat));
  double multi = hierarchical_allreduce_analytic(bytes, 16, 8, intra_bw, inter_bw,
                                                 intra_lat, inter_lat);
  EXPECT_DOUBLE_EQ(multi, ring_allreduce_analytic(bytes, 16, inter_bw, inter_lat) +
                              ring_allreduce_analytic(bytes, 8, intra_bw, intra_lat) +
                              intra_lat + bytes / intra_bw);
  // The hierarchical schedule's NIC traffic is independent of per-machine
  // GPU count; the flat ring's is not. At 1024 machines the flat ring's
  // 2(8191) rounds dwarf the hierarchical 2(1023) + 2(7).
  double flat = ring_allreduce_analytic(bytes, 1024 * 8, inter_bw, inter_lat);
  double hier = hierarchical_allreduce_analytic(bytes, 1024, 8, intra_bw, inter_bw,
                                                intra_lat, inter_lat);
  EXPECT_LT(hier, flat);
}

TEST(Hierarchical, BeatsFlatRingAcrossNetwork) {
  // Extension ablation: hierarchical sends one payload per machine across
  // the NIC instead of one chunk stream per round; for large payloads over
  // slow NICs it wins.
  Fixture h_f("p3.16xlarge", 2);
  Fixture r_f("p3.16xlarge", 2);
  double bytes = mib(512);
  double th =
      h_f.run([&](CollectiveContext& c) { return hierarchical_allreduce(c, bytes); });
  double tr = r_f.run([&](CollectiveContext& c) { return ring_allreduce(c, bytes); });
  EXPECT_LT(th, tr);
}

}  // namespace
}  // namespace stash::coll
