#include "coll/comm_stream.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace stash::coll {
namespace {

sim::Task<void> spawn_op(sim::Simulator& sim, CommStream& stream, double duration,
                         int id, std::vector<std::pair<int, double>>& completions) {
  co_await stream.enqueue([&sim, duration]() -> sim::Task<void> {
    co_await sim.delay(duration);
  });
  completions.emplace_back(id, sim.now());
}

TEST(CommStream, SerializesInEnqueueOrder) {
  sim::Simulator sim;
  CommStream stream(sim);
  std::vector<std::pair<int, double>> completions;
  sim.spawn(spawn_op(sim, stream, 3.0, 0, completions));
  sim.spawn(spawn_op(sim, stream, 1.0, 1, completions));
  sim.spawn(spawn_op(sim, stream, 2.0, 2, completions));
  sim.run();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_EQ(completions[0].first, 0);
  EXPECT_DOUBLE_EQ(completions[0].second, 3.0);
  EXPECT_EQ(completions[1].first, 1);
  EXPECT_DOUBLE_EQ(completions[1].second, 4.0);
  EXPECT_EQ(completions[2].first, 2);
  EXPECT_DOUBLE_EQ(completions[2].second, 6.0);
  EXPECT_EQ(stream.enqueued(), 3u);
}

TEST(CommStream, LateEnqueueRunsAfterInFlightOp) {
  sim::Simulator sim;
  CommStream stream(sim);
  std::vector<std::pair<int, double>> completions;
  sim.spawn(spawn_op(sim, stream, 5.0, 0, completions));
  sim.schedule(1.0, [&] { sim.spawn(spawn_op(sim, stream, 1.0, 1, completions)); });
  sim.run();
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_DOUBLE_EQ(completions[1].second, 6.0);  // waits for op 0 at t=5
}

TEST(CommStream, IdleStreamRunsImmediately) {
  sim::Simulator sim;
  CommStream stream(sim);
  std::vector<std::pair<int, double>> completions;
  sim.schedule(2.0, [&] { sim.spawn(spawn_op(sim, stream, 1.0, 0, completions)); });
  sim.run();
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_DOUBLE_EQ(completions[0].second, 3.0);
}

TEST(CommStream, ManyOpsNoStarvation) {
  sim::Simulator sim;
  CommStream stream(sim);
  std::vector<std::pair<int, double>> completions;
  for (int i = 0; i < 100; ++i) sim.spawn(spawn_op(sim, stream, 0.5, i, completions));
  sim.run();
  ASSERT_EQ(completions.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(completions[static_cast<std::size_t>(i)].first, i);
    EXPECT_DOUBLE_EQ(completions[static_cast<std::size_t>(i)].second, 0.5 * (i + 1));
  }
}

}  // namespace
}  // namespace stash::coll
