#include "faults/injector.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cloud/builder.h"
#include "cloud/instance.h"
#include "hw/flow_network.h"
#include "hw/topology.h"
#include "sim/simulator.h"

namespace stash::faults {
namespace {

struct Harness {
  sim::Simulator sim;
  hw::FlowNetwork net{sim};
  std::unique_ptr<hw::Cluster> cluster;

  explicit Harness(int machines = 2) {
    cluster = std::make_unique<hw::Cluster>(
        net, sim,
        cloud::cluster_configs_for(cloud::instance("p3.8xlarge"), machines,
                                   cloud::CrossbarSlice::kFragmented),
        cloud::fabric_bandwidth());
  }

  hw::Link* nic_tx(int m) { return cluster->machine(m).nic_tx(); }
};

sim::Task<void> timed_transfer(sim::Simulator& sim, hw::FlowNetwork& net,
                               double bytes, std::vector<hw::Link*> path,
                               double& done_at) {
  co_await net.transfer(bytes, std::move(path), 0.0);
  done_at = sim.now();
}

TEST(FaultInjector, DegradeWindowSlowsTransferDeterministically) {
  Harness h;
  hw::Link* nic = h.nic_tx(0);
  const double cap = nic->capacity();

  FaultPlan plan = FaultPlan::parse("link@1+2:m0:x0.5");
  FaultInjector inj(h.sim, h.net, *h.cluster, plan);
  inj.arm();
  EXPECT_EQ(inj.scheduled_events(), 2u);  // window start + end

  // 2*cap bytes: one healthy second moves cap, then the half-speed window
  // needs two more seconds for the rest -> finish at t=3 instead of t=2.
  double done = -1;
  h.sim.spawn(timed_transfer(h.sim, h.net, 2.0 * cap, {nic}, done));
  h.sim.run();
  EXPECT_NEAR(done, 3.0, 1e-6);
  // The window closed: capacity is restored exactly.
  EXPECT_DOUBLE_EQ(nic->capacity(), cap);
}

TEST(FaultInjector, RunUntilMidWindowThenDisarmRestoresCapacity) {
  Harness h;
  hw::Link* nic = h.nic_tx(0);
  const double cap = nic->capacity();

  FaultPlan plan = FaultPlan::parse("link@1+2:m0:x0.5");
  FaultInjector inj(h.sim, h.net, *h.cluster, plan);
  inj.arm();

  // Stop the clock inside the degradation window: the capacity is scaled
  // and the window-end event is still pending.
  h.sim.run_until(2.0);
  EXPECT_DOUBLE_EQ(nic->capacity(), 0.5 * cap);
  EXPECT_EQ(inj.scheduled_events(), 2u);

  // Tearing the injector down mid-plan cancels the pending end event and
  // restores the base capacity immediately.
  inj.disarm();
  EXPECT_FALSE(inj.armed());
  EXPECT_EQ(inj.scheduled_events(), 0u);
  EXPECT_DOUBLE_EQ(nic->capacity(), cap);

  // Draining the queue must not resurrect the window (its events were
  // cancelled, not just ignored).
  h.sim.run();
  EXPECT_DOUBLE_EQ(nic->capacity(), cap);
}

TEST(FaultInjector, DestructorDisarmsMidPlan) {
  Harness h;
  hw::Link* nic = h.nic_tx(0);
  const double cap = nic->capacity();
  {
    FaultPlan plan = FaultPlan::parse("link@1+5:m0:x0.25");
    FaultInjector inj(h.sim, h.net, *h.cluster, plan);
    inj.arm();
    h.sim.run_until(2.0);
    EXPECT_DOUBLE_EQ(nic->capacity(), 0.25 * cap);
  }
  EXPECT_DOUBLE_EQ(nic->capacity(), cap);
  h.sim.run();
  EXPECT_DOUBLE_EQ(nic->capacity(), cap);
}

TEST(FaultInjector, FullFlapClampsToPositiveFloor) {
  Harness h;
  hw::Link* nic = h.nic_tx(0);
  const double cap = nic->capacity();

  FaultPlan plan = FaultPlan::parse("link@1+2:m0:x0");
  FaultInjector inj(h.sim, h.net, *h.cluster, plan);
  inj.arm();
  h.sim.run_until(1.5);
  EXPECT_GT(nic->capacity(), 0.0);  // links must stay positive
  EXPECT_LT(nic->capacity(), 1.0);  // ...but effectively dead
  h.sim.run();
  EXPECT_DOUBLE_EQ(nic->capacity(), cap);
}

TEST(FaultInjector, OverlappingWindowsComposeMultiplicatively) {
  Harness h;
  hw::Link* nic = h.nic_tx(0);
  const double cap = nic->capacity();

  FaultPlan plan = FaultPlan::parse("link@1+4:m0:x0.5;link@2+1:m0:x0.5");
  FaultInjector inj(h.sim, h.net, *h.cluster, plan);
  inj.arm();
  h.sim.run_until(1.5);
  EXPECT_DOUBLE_EQ(nic->capacity(), 0.5 * cap);
  h.sim.run_until(2.5);  // both windows active
  EXPECT_DOUBLE_EQ(nic->capacity(), 0.25 * cap);
  h.sim.run_until(3.5);  // inner window closed
  EXPECT_DOUBLE_EQ(nic->capacity(), 0.5 * cap);
  h.sim.run();
  EXPECT_DOUBLE_EQ(nic->capacity(), cap);
}

TEST(FaultInjector, SlowDiskScalesStorageLink) {
  Harness h;
  hw::Link* ssd = h.cluster->machine(0).storage().link();
  const double cap = ssd->capacity();

  FaultPlan plan = FaultPlan::parse("disk@1+2:m0:x0.25");
  FaultInjector inj(h.sim, h.net, *h.cluster, plan);
  inj.arm();
  h.sim.run_until(1.5);
  EXPECT_DOUBLE_EQ(ssd->capacity(), 0.25 * cap);
  h.sim.run();
  EXPECT_DOUBLE_EQ(ssd->capacity(), cap);
}

TEST(FaultInjector, FabricTargetScalesFabricLink) {
  Harness h;
  ASSERT_NE(h.cluster->fabric(), nullptr);
  const double cap = h.cluster->fabric()->capacity();

  FaultPlan plan = FaultPlan::parse("link@1+2:fabric:x0.5");
  FaultInjector inj(h.sim, h.net, *h.cluster, plan);
  inj.arm();
  h.sim.run_until(1.5);
  EXPECT_DOUBLE_EQ(h.cluster->fabric()->capacity(), 0.5 * cap);
  h.sim.run();
  EXPECT_DOUBLE_EQ(h.cluster->fabric()->capacity(), cap);
}

TEST(FaultInjector, EventsOutsideClusterAreIgnored) {
  Harness h(1);  // single machine: no machine 1, no fabric degradation target
  FaultPlan plan = FaultPlan::parse("link@1+2:m5:x0.5;disk@1+2:m3:x0.5");
  FaultInjector inj(h.sim, h.net, *h.cluster, plan);
  inj.arm();
  EXPECT_EQ(inj.scheduled_events(), 0u);
  h.sim.run();  // nothing scheduled, nothing breaks
}

TEST(FaultInjector, ArmIsIdempotentAndPastEventsDrop) {
  Harness h;
  hw::Link* nic = h.nic_tx(0);
  const double cap = nic->capacity();

  FaultPlan plan = FaultPlan::parse("link@1+2:m0:x0.5");
  h.sim.run_until(5.0);  // the whole window is already in the past
  FaultInjector inj(h.sim, h.net, *h.cluster, plan);
  inj.arm();
  inj.arm();
  EXPECT_EQ(inj.scheduled_events(), 0u);
  h.sim.run();
  EXPECT_DOUBLE_EQ(nic->capacity(), cap);
}

}  // namespace
}  // namespace stash::faults
