#include "faults/fault_plan.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/rng.h"

namespace stash::faults {
namespace {

TEST(FaultPlan, ParsesEveryKind) {
  FaultPlan plan = FaultPlan::parse(
      "straggler@2+5:w1:x2.5;link@4+3:m0:x0.1;disk@1+2:m0:x0.25;crash@6:m1:r30");
  ASSERT_EQ(plan.events.size(), 4u);

  const FaultEvent& s = plan.events[0];
  EXPECT_EQ(s.kind, FaultKind::kGpuStraggler);
  EXPECT_DOUBLE_EQ(s.start_s, 2.0);
  EXPECT_DOUBLE_EQ(s.duration_s, 5.0);
  EXPECT_DOUBLE_EQ(s.end_s(), 7.0);
  EXPECT_EQ(s.worker, 1);
  EXPECT_DOUBLE_EQ(s.factor, 2.5);

  const FaultEvent& l = plan.events[1];
  EXPECT_EQ(l.kind, FaultKind::kLinkDegrade);
  EXPECT_EQ(l.machine, 0);
  EXPECT_DOUBLE_EQ(l.factor, 0.1);

  const FaultEvent& d = plan.events[2];
  EXPECT_EQ(d.kind, FaultKind::kSlowDisk);
  EXPECT_DOUBLE_EQ(d.duration_s, 2.0);

  const FaultEvent& c = plan.events[3];
  EXPECT_EQ(c.kind, FaultKind::kCrash);
  EXPECT_EQ(c.machine, 1);
  EXPECT_DOUBLE_EQ(c.reprovision_s, 30.0);
}

TEST(FaultPlan, SpecRoundTrips) {
  const std::string spec =
      "straggler@2+5:w1:x2.5;link@4+3:fabric:x0.1;disk@1+2:m0:x0.25;"
      "crash@6:m1:r30";
  FaultPlan plan = FaultPlan::parse(spec);
  EXPECT_EQ(plan.to_spec(), spec);
  // And parsing the serialization again yields the same events.
  FaultPlan again = FaultPlan::parse(plan.to_spec());
  ASSERT_EQ(again.events.size(), plan.events.size());
  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    EXPECT_EQ(again.events[i].kind, plan.events[i].kind);
    EXPECT_DOUBLE_EQ(again.events[i].start_s, plan.events[i].start_s);
    EXPECT_DOUBLE_EQ(again.events[i].duration_s, plan.events[i].duration_s);
    EXPECT_EQ(again.events[i].machine, plan.events[i].machine);
    EXPECT_EQ(again.events[i].worker, plan.events[i].worker);
    EXPECT_DOUBLE_EQ(again.events[i].factor, plan.events[i].factor);
  }
}

TEST(FaultPlan, FabricTargetParses) {
  FaultPlan plan = FaultPlan::parse("link@0+1:fabric:x0.5");
  ASSERT_EQ(plan.events.size(), 1u);
  EXPECT_EQ(plan.events[0].machine, -1);
}

TEST(FaultPlan, EmptySpecYieldsEmptyPlan) {
  EXPECT_TRUE(FaultPlan::parse("").empty());
  EXPECT_TRUE(FaultPlan::parse(";;").empty());
}

TEST(FaultPlan, ParseRejectsMalformedSpecs) {
  EXPECT_THROW(FaultPlan::parse("meteor@1+1:m0:x0.5"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("link4+3:m0:x0.1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("link@abc+3:m0:x0.1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("link@4+3:m0:q0.1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("link@4+3::x0.1"), std::invalid_argument);
}

TEST(FaultPlan, ValidateRejectsBadEvents) {
  {  // straggler factor must be > 1 (it is a slowdown)
    FaultPlan p;
    FaultEvent e;
    e.kind = FaultKind::kGpuStraggler;
    e.worker = 0;
    e.duration_s = 1.0;
    e.factor = 0.5;
    p.events.push_back(e);
    EXPECT_THROW(p.validate(), std::invalid_argument);
  }
  {  // straggler needs a worker target
    FaultPlan p;
    FaultEvent e;
    e.kind = FaultKind::kGpuStraggler;
    e.duration_s = 1.0;
    e.factor = 2.0;
    p.events.push_back(e);
    EXPECT_THROW(p.validate(), std::invalid_argument);
  }
  {  // bandwidth factor above 1 is not a degradation
    FaultPlan p;
    FaultEvent e;
    e.kind = FaultKind::kLinkDegrade;
    e.machine = 0;
    e.duration_s = 1.0;
    e.factor = 1.5;
    p.events.push_back(e);
    EXPECT_THROW(p.validate(), std::invalid_argument);
  }
  {  // zero-length degrade window
    FaultPlan p;
    FaultEvent e;
    e.kind = FaultKind::kSlowDisk;
    e.machine = 0;
    e.duration_s = 0.0;
    e.factor = 0.5;
    p.events.push_back(e);
    EXPECT_THROW(p.validate(), std::invalid_argument);
  }
  {  // crash needs a machine
    FaultPlan p;
    FaultEvent e;
    e.kind = FaultKind::kCrash;
    p.events.push_back(e);
    EXPECT_THROW(p.validate(), std::invalid_argument);
  }
  {  // negative start time
    FaultPlan p;
    FaultEvent e;
    e.kind = FaultKind::kCrash;
    e.machine = 0;
    e.start_s = -1.0;
    p.events.push_back(e);
    EXPECT_THROW(p.validate(), std::invalid_argument);
  }
}

TEST(FaultPlan, ZeroFactorFlapIsValid) {
  FaultPlan plan = FaultPlan::parse("link@1+1:m0:x0");
  EXPECT_NO_THROW(plan.validate());
  EXPECT_DOUBLE_EQ(plan.events[0].factor, 0.0);
}

TEST(RevocationPlan, DeterministicGivenSeed) {
  util::Rng a(1234), b(1234);
  FaultPlan pa = make_revocation_plan(7200.0, 2, 4.0, 30.0, a);
  FaultPlan pb = make_revocation_plan(7200.0, 2, 4.0, 30.0, b);
  ASSERT_EQ(pa.events.size(), pb.events.size());
  EXPECT_FALSE(pa.empty());
  for (std::size_t i = 0; i < pa.events.size(); ++i) {
    EXPECT_EQ(pa.events[i].kind, FaultKind::kCrash);
    EXPECT_DOUBLE_EQ(pa.events[i].start_s, pb.events[i].start_s);
    EXPECT_EQ(pa.events[i].machine, pb.events[i].machine);
  }
  // Victims rotate round-robin over the machines.
  for (std::size_t i = 0; i < pa.events.size(); ++i)
    EXPECT_EQ(pa.events[i].machine, static_cast<int>(i % 2));
  // Consecutive crashes are separated by at least the reprovision delay.
  for (std::size_t i = 1; i < pa.events.size(); ++i)
    EXPECT_GE(pa.events[i].start_s - pa.events[i - 1].start_s, 30.0);
  EXPECT_NO_THROW(pa.validate());
}

TEST(RevocationPlan, ZeroRateYieldsEmptyPlan) {
  util::Rng rng(1);
  EXPECT_TRUE(make_revocation_plan(3600.0, 2, 0.0, 30.0, rng).empty());
}

TEST(RevocationPlan, RejectsBadArguments) {
  util::Rng rng(1);
  EXPECT_THROW(make_revocation_plan(-1.0, 2, 1.0, 30.0, rng),
               std::invalid_argument);
  EXPECT_THROW(make_revocation_plan(10.0, 0, 1.0, 30.0, rng),
               std::invalid_argument);
  EXPECT_THROW(make_revocation_plan(10.0, 2, -1.0, 30.0, rng),
               std::invalid_argument);
}

TEST(FaultState, ComputeScaleCoversWindow) {
  FaultPlan plan = FaultPlan::parse("straggler@2+5:w1:x2.5");
  FaultState st(plan);
  EXPECT_DOUBLE_EQ(st.compute_scale(1, 1.9), 1.0);
  EXPECT_DOUBLE_EQ(st.compute_scale(1, 2.0), 2.5);   // inclusive start
  EXPECT_DOUBLE_EQ(st.compute_scale(1, 6.99), 2.5);
  EXPECT_DOUBLE_EQ(st.compute_scale(1, 7.0), 1.0);   // exclusive end
  EXPECT_DOUBLE_EQ(st.compute_scale(0, 3.0), 1.0);   // other workers untouched
}

TEST(FaultState, OverlappingStragglersCompose) {
  FaultPlan plan =
      FaultPlan::parse("straggler@0+10:w0:x2;straggler@5+10:w0:x3");
  FaultState st(plan);
  EXPECT_DOUBLE_EQ(st.compute_scale(0, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(st.compute_scale(0, 7.0), 6.0);
  EXPECT_DOUBLE_EQ(st.compute_scale(0, 12.0), 3.0);
}

TEST(FaultState, CrashAndRepairWindows) {
  FaultPlan plan = FaultPlan::parse("crash@6:m1:r30");
  FaultState st(plan);
  EXPECT_TRUE(st.has_crashes());
  EXPECT_FALSE(st.crashed(1, 5.9));
  EXPECT_TRUE(st.crashed(1, 6.0));
  EXPECT_TRUE(st.crashed(1, 35.9));
  EXPECT_FALSE(st.crashed(1, 36.0));  // replacement is up
  EXPECT_FALSE(st.crashed(0, 10.0));  // other machine healthy
  EXPECT_DOUBLE_EQ(st.repair_time(1, 10.0), 36.0);
  EXPECT_DOUBLE_EQ(st.repair_time(1, 50.0), 50.0);  // healthy => now
  EXPECT_DOUBLE_EQ(st.next_crash_after(0.0), 6.0);
  EXPECT_EQ(st.next_crash_after(6.0),
            std::numeric_limits<double>::infinity());
}

}  // namespace
}  // namespace stash::faults
