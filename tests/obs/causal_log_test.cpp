#include "obs/causal_log.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace stash::obs {
namespace {

TEST(CausalLogTest, CategoryNamesAreStableAndDistinct) {
  for (std::size_t a = 0; a < kNumCategories; ++a) {
    SCOPED_TRACE(a);
    const char* name = category_name(static_cast<Category>(a));
    ASSERT_NE(name, nullptr);
    EXPECT_GT(std::string(name).size(), 0u);
    for (std::size_t b = a + 1; b < kNumCategories; ++b)
      EXPECT_STRNE(name, category_name(static_cast<Category>(b)));
  }
}

TEST(CausalLogTest, IdsAreSequentialAndEdgesRecorded) {
  CausalLog log;
  int a = log.add_activity(Category::kCompute, "fwd", 0, 1, 3, 0.0, 1.0, -1);
  int b = log.add_activity(Category::kH2D, "h2d", 1, 2, 4, 1.0, 2.0, a);
  int c = log.add_wait(Category::kPipeline, "data_wait", 0, 0, 4, 2.0, 3.0, b, a);
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(c, 2);
  ASSERT_EQ(log.size(), 3u);

  const CausalEdge& ea = log.edges()[0];
  EXPECT_FALSE(ea.wait);
  EXPECT_EQ(ea.category, Category::kCompute);
  EXPECT_STREQ(ea.phase, "fwd");
  EXPECT_EQ(ea.machine, 0);
  EXPECT_EQ(ea.gpu, 1);
  EXPECT_EQ(ea.iteration, 3);
  EXPECT_EQ(ea.prev, -1);
  EXPECT_EQ(ea.cause, -1);  // activity: cause mirrors prev

  const CausalEdge& ec = log.edges()[2];
  EXPECT_TRUE(ec.wait);
  EXPECT_EQ(ec.prev, b);
  EXPECT_EQ(ec.cause, a);
}

TEST(CausalLogTest, RejectsNegativeIntervalsAndForwardLinks) {
  CausalLog log;
  EXPECT_THROW(log.add_activity(Category::kCompute, "x", 0, 0, 0, 2.0, 1.0, -1),
               std::invalid_argument);
  // prev/cause must reference an already-recorded edge.
  EXPECT_THROW(log.add_activity(Category::kCompute, "x", 0, 0, 0, 0.0, 1.0, 0),
               std::invalid_argument);
  int a = log.add_activity(Category::kCompute, "x", 0, 0, 0, 0.0, 1.0, -1);
  EXPECT_THROW(
      log.add_wait(Category::kBarrier, "w", 0, 0, 0, 1.0, 2.0, a, a + 1),
      std::invalid_argument);
}

TEST(CausalLogTest, IterationMarksValidateAnchor) {
  CausalLog log;
  EXPECT_THROW(log.mark_iteration(0, true, false, 0.0, 1.0, 0),
               std::invalid_argument);
  int a = log.add_activity(Category::kCompute, "x", 0, 0, 0, 0.0, 1.0, -1);
  log.mark_iteration(0, true, false, 0.0, 1.0, a);
  ASSERT_EQ(log.iterations().size(), 1u);
  EXPECT_EQ(log.iterations()[0].anchor, a);
  EXPECT_TRUE(log.iterations()[0].measured);
}

TEST(CausalLogTest, AmbientStateAndClear) {
  CausalLog log;
  EXPECT_EQ(log.iteration(), -1);
  EXPECT_EQ(log.comm_chain(), -1);
  log.set_iteration(7);
  int a = log.add_activity(Category::kInterconnect, "ring_round", 0, 0,
                           log.iteration(), 0.0, 1.0, log.comm_chain());
  log.set_comm_chain(a);
  EXPECT_EQ(log.comm_chain(), a);
  log.add_fault_window(1.0, 3.0, "restart");
  ASSERT_EQ(log.fault_windows().size(), 1u);
  EXPECT_EQ(log.fault_windows()[0].end_s, 3.0);

  log.clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_TRUE(log.iterations().empty());
  EXPECT_TRUE(log.fault_windows().empty());
  EXPECT_EQ(log.iteration(), -1);
  EXPECT_EQ(log.comm_chain(), -1);
}

}  // namespace
}  // namespace stash::obs
