#include "obs/progress.h"

#include <chrono>
#include <sstream>
#include <string>
#include <thread>

#include <gtest/gtest.h>

namespace stash::obs {
namespace {

TEST(ProgressReporter, NonCerrStreamIsNeverInteractive) {
  std::ostringstream os;
  ProgressReporter rep(&os);
  EXPECT_FALSE(rep.interactive());
}

TEST(ProgressReporter, LineModeStatusHasNoCarriageReturns) {
  std::ostringstream os;
  ProgressReporter rep(&os);
  rep.begin("monitor", 4);
  rep.status("frame one", /*force=*/true);
  rep.status("frame two", /*force=*/true);
  rep.clear_status();
  const std::string out = os.str();
  EXPECT_EQ(out.find('\r'), std::string::npos)
      << "redirected logs must stay line-buffered";
  EXPECT_NE(out.find("frame one\n"), std::string::npos);
  EXPECT_NE(out.find("frame two\n"), std::string::npos);
}

TEST(ProgressReporter, InteractiveStatusRewritesInPlace) {
  std::ostringstream os;
  ProgressReporter rep(&os);
  rep.set_interactive(true);
  rep.status("frame one", /*force=*/true);
  rep.status("frame two", /*force=*/true);
  const std::string out = os.str();
  // Each frame starts with \r + erase-to-EOL and ends without a newline.
  EXPECT_NE(out.find("\r\033[Kframe one"), std::string::npos);
  EXPECT_NE(out.find("\r\033[Kframe two"), std::string::npos);
  EXPECT_EQ(out.find('\n'), std::string::npos);
}

TEST(ProgressReporter, ClearStatusErasesInteractiveLine) {
  std::ostringstream os;
  ProgressReporter rep(&os);
  rep.set_interactive(true);
  rep.status("transient", /*force=*/true);
  rep.clear_status();
  const std::string out = os.str();
  // The erase sequence must come after the frame, leaving a clean line.
  EXPECT_GT(out.rfind("\r\033[K"), out.find("transient"));
}

TEST(ProgressReporter, PermanentLinesEraseActiveStatusFirst) {
  std::ostringstream os;
  ProgressReporter rep(&os);
  rep.set_interactive(true);
  rep.begin("monitor", 2);
  rep.status("frame", /*force=*/true);
  rep.note("ALERT straggler_onset");
  const std::string out = os.str();
  const std::size_t frame = out.find("frame");
  const std::size_t note = out.find("ALERT");
  ASSERT_NE(frame, std::string::npos);
  ASSERT_NE(note, std::string::npos);
  EXPECT_LT(frame, note);
  // The note lands on its own fresh line, not appended to the frame.
  const std::size_t erase = out.find("\r\033[K", frame + 1);
  ASSERT_NE(erase, std::string::npos);
  EXPECT_LT(erase, note);
  EXPECT_NE(out.find("ALERT straggler_onset\n"), std::string::npos);
}

TEST(ProgressReporter, ThrottleDropsRapidFrames) {
  std::ostringstream os;
  ProgressReporter rep(&os);
  rep.status("first", /*force=*/true);
  // Immediately after a draw, unforced frames are dropped for >= 50 ms.
  rep.status("dropped");
  EXPECT_EQ(os.str().find("dropped"), std::string::npos);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  rep.status("second");
  EXPECT_NE(os.str().find("second"), std::string::npos);
}

TEST(ProgressReporter, ForceBypassesThrottle) {
  std::ostringstream os;
  ProgressReporter rep(&os);
  rep.status("first", /*force=*/true);
  rep.status("final", /*force=*/true);
  EXPECT_NE(os.str().find("final"), std::string::npos);
}

TEST(ProgressReporter, SetInteractiveOffErasesActiveStatus) {
  std::ostringstream os;
  ProgressReporter rep(&os);
  rep.set_interactive(true);
  rep.status("transient", /*force=*/true);
  rep.set_interactive(false);
  rep.status("plain", /*force=*/true);
  const std::string out = os.str();
  EXPECT_NE(out.find("plain\n"), std::string::npos);
}

TEST(ProgressReporter, StepCountsUnits) {
  std::ostringstream os;
  ProgressReporter rep(&os);
  rep.begin("profile", 2);
  rep.step("T1");
  rep.step("T2");
  EXPECT_EQ(rep.done(), 2);
  const std::string out = os.str();
  EXPECT_NE(out.find("1/2"), std::string::npos);
  EXPECT_NE(out.find("2/2"), std::string::npos);
}

}  // namespace
}  // namespace stash::obs
