// Walker semantics on hand-built causal logs: each test constructs a tiny
// edge graph whose critical path is known by inspection and checks the
// blame, the partition property, and the exporters.
#include "obs/critical_path.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/causal_log.h"
#include "util/trace.h"

namespace stash::obs {
namespace {

double cat_s(const IterationBlame& ib, Category c) {
  return ib.by_category[static_cast<std::size_t>(c)];
}
double cat_s(const BlameReport& r, Category c) {
  return r.totals_s[static_cast<std::size_t>(c)];
}

// Segments must tile [start_s, end_s] exactly: ascending, contiguous at
// shared boundaries (bitwise — boundaries are reused walker positions), and
// flush with the window ends.
void expect_exact_partition(const IterationBlame& ib) {
  ASSERT_FALSE(ib.segments.empty());
  EXPECT_EQ(ib.segments.front().start_s, ib.start_s);
  EXPECT_EQ(ib.segments.back().end_s, ib.end_s);
  for (std::size_t i = 0; i + 1 < ib.segments.size(); ++i)
    EXPECT_EQ(ib.segments[i].end_s, ib.segments[i + 1].start_s);
  double sum = 0.0;
  for (std::size_t c = 0; c < kBlameCategories; ++c) sum += ib.by_category[c];
  EXPECT_NEAR(sum, ib.end_s - ib.start_s, 1e-12);
}

TEST(CriticalPathTest, ActivityChainPartitionsWindow) {
  CausalLog log;
  int e0 = log.add_activity(Category::kCompute, "forward", 0, 0, 0, 0.0, 4.0, -1);
  int e1 = log.add_activity(Category::kInterconnect, "flush", 0, 0, 0, 4.0, 6.0, e0);
  int e2 = log.add_activity(Category::kCompute, "backward", 0, 0, 0, 6.0, 9.0, e1);
  int e3 = log.add_wait(Category::kBarrier, "end_barrier", 0, 0, 0, 9.0, 10.0,
                        e2, -1);
  log.mark_iteration(0, true, false, 0.0, 10.0, e3);

  BlameReport r = analyze_critical_path(log);
  ASSERT_EQ(r.iterations.size(), 1u);
  const IterationBlame& ib = r.iterations[0];
  expect_exact_partition(ib);
  ASSERT_EQ(ib.segments.size(), 4u);
  EXPECT_DOUBLE_EQ(cat_s(ib, Category::kCompute), 7.0);
  EXPECT_DOUBLE_EQ(cat_s(ib, Category::kInterconnect), 2.0);
  // The causeless barrier wait is blamed on its fallback category.
  EXPECT_DOUBLE_EQ(cat_s(ib, Category::kBarrier), 1.0);
  EXPECT_DOUBLE_EQ(cat_s(ib, Category::kUnattributed), 0.0);
  EXPECT_EQ(r.measured_iterations, 1);
  EXPECT_DOUBLE_EQ(r.measured_window_s, 10.0);
}

TEST(CriticalPathTest, WaitWithCauseBlamesTheProducer) {
  CausalLog log;
  // A loader's disk fetch ends at t=7 and wakes a worker that has been
  // waiting since t=2; the wait itself must vanish behind the producer.
  int disk = log.add_activity(Category::kDisk, "disk_fetch", 0, 0, 0, 0.0, 7.0, -1);
  int wait = log.add_wait(Category::kPipeline, "data_wait", 0, 1, 0, 2.0, 7.0,
                          -1, disk);
  int comp = log.add_activity(Category::kCompute, "forward", 0, 1, 0, 7.0, 10.0,
                              wait);
  log.mark_iteration(0, true, false, 0.0, 10.0, comp);

  BlameReport r = analyze_critical_path(log);
  const IterationBlame& ib = r.iterations[0];
  expect_exact_partition(ib);
  EXPECT_DOUBLE_EQ(cat_s(ib, Category::kCompute), 3.0);
  EXPECT_DOUBLE_EQ(cat_s(ib, Category::kDisk), 7.0);
  EXPECT_DOUBLE_EQ(cat_s(ib, Category::kPipeline), 0.0);
}

TEST(CriticalPathTest, UncoveredIntervalBecomesUnattributed) {
  CausalLog log;
  int e0 = log.add_activity(Category::kCompute, "forward", 0, 0, 0, 0.0, 3.0, -1);
  // Program order jumps from t=3 to t=5 with nothing recorded in between.
  int e1 = log.add_activity(Category::kCompute, "backward", 0, 0, 0, 5.0, 10.0, e0);
  log.mark_iteration(0, true, false, 0.0, 10.0, e1);

  BlameReport r = analyze_critical_path(log);
  const IterationBlame& ib = r.iterations[0];
  expect_exact_partition(ib);
  EXPECT_DOUBLE_EQ(cat_s(ib, Category::kCompute), 8.0);
  EXPECT_DOUBLE_EQ(cat_s(ib, Category::kUnattributed), 2.0);
}

TEST(CriticalPathTest, ZeroLengthWaitIsPureProgramOrder) {
  CausalLog log;
  int prod = log.add_activity(Category::kDisk, "disk_fetch", 0, 0, 0, 0.0, 2.0, -1);
  int comp1 = log.add_activity(Category::kCompute, "forward", 0, 0, 0, 0.0, 6.0, -1);
  // Data was already buffered: the wait has zero duration, so the walk must
  // follow program order (comp1), never jump to the producer.
  int wait = log.add_wait(Category::kPipeline, "data_wait", 0, 0, 0, 6.0, 6.0,
                          comp1, prod);
  int comp2 = log.add_activity(Category::kCompute, "backward", 0, 0, 0, 6.0, 10.0,
                               wait);
  log.mark_iteration(0, true, false, 0.0, 10.0, comp2);

  BlameReport r = analyze_critical_path(log);
  const IterationBlame& ib = r.iterations[0];
  expect_exact_partition(ib);
  EXPECT_DOUBLE_EQ(cat_s(ib, Category::kCompute), 10.0);
  EXPECT_DOUBLE_EQ(cat_s(ib, Category::kDisk), 0.0);
}

TEST(CriticalPathTest, WarmupAndReworkExcludedFromAggregates) {
  CausalLog log;
  int w = log.add_activity(Category::kCompute, "forward", 0, 0, 0, 0.0, 5.0, -1);
  log.mark_iteration(0, /*measured=*/false, false, 0.0, 5.0, w);
  int m = log.add_activity(Category::kCompute, "forward", 0, 0, 1, 5.0, 8.0, w);
  log.mark_iteration(1, /*measured=*/true, false, 5.0, 8.0, m);
  int rw = log.add_activity(Category::kCompute, "forward", 0, 0, 1, 8.0, 12.0, m);
  log.mark_iteration(1, /*measured=*/false, /*rework=*/true, 8.0, 12.0, rw);

  BlameReport r = analyze_critical_path(log);
  EXPECT_EQ(r.iterations.size(), 3u);
  EXPECT_EQ(r.measured_iterations, 1);
  EXPECT_DOUBLE_EQ(r.measured_window_s, 3.0);
  EXPECT_DOUBLE_EQ(cat_s(r, Category::kCompute), 3.0);
  EXPECT_TRUE(r.iterations[2].rework);
}

TEST(CriticalPathTest, OffPathCollectiveCountsAsHidden) {
  CausalLog log;
  // A ring round overlaps entirely with compute: recorded, but never on the
  // critical path — it must show up as hidden communication.
  log.add_activity(Category::kInterconnect, "ring_round", 0, 0, 0, 1.0, 3.0, -1);
  int c = log.add_activity(Category::kCompute, "backward", 0, 0, 0, 0.0, 10.0, -1);
  log.mark_iteration(0, true, false, 0.0, 10.0, c);

  BlameReport r = analyze_critical_path(log);
  EXPECT_DOUBLE_EQ(r.comm_activity_s, 2.0);
  EXPECT_DOUBLE_EQ(r.comm_on_path_s, 0.0);
  EXPECT_DOUBLE_EQ(r.comm_hidden_s, 2.0);
}

TEST(CriticalPathTest, FaultWindowsAggregate) {
  CausalLog log;
  int c = log.add_activity(Category::kCompute, "forward", 0, 0, 0, 0.0, 1.0, -1);
  log.mark_iteration(0, true, false, 0.0, 1.0, c);
  log.add_fault_window(1.0, 4.0, "restart");
  log.add_fault_window(6.0, 7.5, "shrink");

  BlameReport r = analyze_critical_path(log);
  EXPECT_EQ(r.fault_windows, 2);
  EXPECT_DOUBLE_EQ(r.fault_window_s, 4.5);
}

TEST(CriticalPathTest, ExportersAreConsistent) {
  CausalLog log;
  int e0 = log.add_activity(Category::kCompute, "forward", 1, 2, 0, 0.0, 4.0, -1);
  int e1 = log.add_activity(Category::kNetwork, "ring_round", 1, 2, 0, 4.0, 10.0,
                            e0);
  log.mark_iteration(0, true, false, 0.0, 10.0, e1);
  BlameReport r = analyze_critical_path(log);
  r.scenario = "unit";
  r.model_name = "toy";
  r.config_label = "test*1";

  std::string json = blame_to_json(r);
  EXPECT_NE(json.find("\"schema\":\"stash.blame/1\""), std::string::npos);
  EXPECT_NE(json.find("\"scenario\":\"unit\""), std::string::npos);
  EXPECT_NE(json.find("\"network\""), std::string::npos);

  std::string folded = blame_to_folded(r);
  EXPECT_NE(folded.find("machine1;gpu2;forward;compute 4000000\n"),
            std::string::npos);
  EXPECT_NE(folded.find("machine1;gpu2;ring_round;network 6000000\n"),
            std::string::npos);

  util::TraceRecorder trace;
  annotate_trace(r, trace);
  std::string tj = trace.to_json();
  EXPECT_NE(tj.find("critical path"), std::string::npos);
  EXPECT_NE(tj.find("network:ring_round"), std::string::npos);
}

}  // namespace
}  // namespace stash::obs
