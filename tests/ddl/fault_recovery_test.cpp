#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>

#include "cloud/builder.h"
#include "cloud/instance.h"
#include "ddl/trainer.h"
#include "dnn/zoo.h"
#include "faults/fault_plan.h"
#include "obs/causal_log.h"
#include "obs/critical_path.h"
#include "telemetry/metrics.h"

namespace stash::ddl {
namespace {

struct Harness {
  sim::Simulator sim;
  hw::FlowNetwork net{sim};
  std::unique_ptr<hw::Cluster> cluster;

  explicit Harness(const std::string& instance_name, int count = 1) {
    cluster = std::make_unique<hw::Cluster>(
        net, sim,
        cloud::cluster_configs_for(cloud::instance(instance_name), count,
                                   cloud::CrossbarSlice::kFragmented),
        cloud::fabric_bandwidth());
  }

  TrainResult train(const dnn::Model& model, TrainConfig cfg) {
    Trainer t(sim, net, *cluster, model, dnn::dataset_for(model.name()), cfg);
    return t.run();
  }
};

TrainConfig synthetic_cfg() {
  TrainConfig cfg;
  cfg.per_gpu_batch = 32;
  cfg.iterations = 6;
  cfg.warmup_iterations = 2;
  cfg.synthetic_data = true;
  return cfg;
}

// Healthy per-iteration time for this model on 2x p3.8xlarge — used to
// place crashes mid-run regardless of the model's absolute speed.
double healthy_iteration_s(const dnn::Model& model) {
  Harness h("p3.8xlarge", 2);
  return h.train(model, synthetic_cfg()).per_iteration;
}

TrainConfig fault_cfg(const faults::FaultState& fs, RecoveryPolicy policy,
                      double iter_s) {
  TrainConfig cfg = synthetic_cfg();
  cfg.fault_tolerance.faults = &fs;
  cfg.fault_tolerance.policy = policy;
  cfg.fault_tolerance.barrier_timeout_s = 2.0 * iter_s;
  return cfg;
}

faults::FaultPlan crash_plan(double at_s, int machine, double reprovision_s) {
  faults::FaultEvent e;
  e.kind = faults::FaultKind::kCrash;
  e.start_s = at_s;
  e.machine = machine;
  e.reprovision_s = reprovision_s;
  faults::FaultPlan plan;
  plan.events.push_back(e);
  return plan;
}

TEST(FaultRecovery, CrashMidTrainingRecoversViaCheckpointRestart) {
  dnn::Model model = dnn::make_alexnet();
  const double iter_s = healthy_iteration_s(model);

  faults::FaultPlan plan = crash_plan(2.5 * iter_s, 1, 4.0 * iter_s);
  faults::FaultState fs(plan);

  Harness h("p3.8xlarge", 2);
  TrainResult r =
      h.train(model, fault_cfg(fs, RecoveryPolicy::kCheckpointRestart, iter_s));

  // The run completed the full measurement window despite the revocation.
  EXPECT_EQ(r.measured_iterations, 4);
  EXPECT_GT(r.per_iteration, 0.0);
  ASSERT_EQ(r.recoveries.size(), 1u);
  const RecoveryRecord& rec = r.recoveries[0];
  EXPECT_EQ(rec.policy, RecoveryPolicy::kCheckpointRestart);
  EXPECT_EQ(rec.workers_before, 8);
  EXPECT_EQ(rec.workers_after, 8);  // restart keeps the full worker set
  EXPECT_GT(rec.wait_seconds, 0.0);
  EXPECT_GE(rec.rework_iterations, 1);  // no checkpoint yet: replay from 0
  EXPECT_EQ(r.gpus_at_end, 8);
  // The fault stall covers detection, reprovision wait, and rework.
  EXPECT_GT(r.fault_stall, 0.0);
  EXPECT_GE(r.fault_stall, rec.wait_seconds);
}

TEST(FaultRecovery, CrashMidTrainingRecoversViaShrink) {
  dnn::Model model = dnn::make_alexnet();
  const double iter_s = healthy_iteration_s(model);

  faults::FaultPlan plan = crash_plan(2.5 * iter_s, 1, 100.0);
  faults::FaultState fs(plan);

  Harness h("p3.8xlarge", 2);
  TrainResult r = h.train(model, fault_cfg(fs, RecoveryPolicy::kShrink, iter_s));

  EXPECT_EQ(r.measured_iterations, 4);
  ASSERT_EQ(r.recoveries.size(), 1u);
  const RecoveryRecord& rec = r.recoveries[0];
  EXPECT_EQ(rec.policy, RecoveryPolicy::kShrink);
  EXPECT_EQ(rec.workers_before, 8);
  EXPECT_EQ(rec.workers_after, 4);  // machine 1's workers are dropped
  EXPECT_EQ(rec.rework_iterations, 0);  // shrink resumes at last commit
  EXPECT_EQ(r.gpus_at_end, 4);
  EXPECT_GT(r.fault_stall, 0.0);
  // Shrink never waits for the 100 s reprovision.
  EXPECT_LT(rec.wait_seconds, 100.0);
}

TEST(FaultRecovery, DeterministicAcrossRuns) {
  dnn::Model model = dnn::make_alexnet();
  const double iter_s = healthy_iteration_s(model);
  faults::FaultPlan plan = crash_plan(2.5 * iter_s, 1, 4.0 * iter_s);
  plan.events.push_back(faults::FaultPlan::parse(
      "straggler@0+1000:w2:x1.5").events[0]);
  faults::FaultState fs(plan);

  auto run_once = [&](RecoveryPolicy policy) {
    Harness h("p3.8xlarge", 2);
    return h.train(model, fault_cfg(fs, policy, iter_s));
  };
  for (RecoveryPolicy policy :
       {RecoveryPolicy::kCheckpointRestart, RecoveryPolicy::kShrink}) {
    TrainResult a = run_once(policy);
    TrainResult b = run_once(policy);
    // Bit-identical: same plan + same seedless deterministic sim.
    EXPECT_EQ(a.measured_iterations, b.measured_iterations);
    EXPECT_EQ(a.window_time, b.window_time);
    EXPECT_EQ(a.per_iteration, b.per_iteration);
    EXPECT_EQ(a.data_wait, b.data_wait);
    EXPECT_EQ(a.h2d_time, b.h2d_time);
    EXPECT_EQ(a.compute_time, b.compute_time);
    EXPECT_EQ(a.comm_tail, b.comm_tail);
    EXPECT_EQ(a.fault_stall, b.fault_stall);
    EXPECT_EQ(a.checkpoint_seconds, b.checkpoint_seconds);
    EXPECT_EQ(a.checkpoints_written, b.checkpoints_written);
    EXPECT_EQ(a.gpus_at_end, b.gpus_at_end);
    ASSERT_EQ(a.recoveries.size(), b.recoveries.size());
    for (std::size_t i = 0; i < a.recoveries.size(); ++i) {
      EXPECT_EQ(a.recoveries[i].time_s, b.recoveries[i].time_s);
      EXPECT_EQ(a.recoveries[i].at_iteration, b.recoveries[i].at_iteration);
      EXPECT_EQ(a.recoveries[i].wait_seconds, b.recoveries[i].wait_seconds);
      EXPECT_EQ(a.recoveries[i].rework_iterations,
                b.recoveries[i].rework_iterations);
    }
  }
}

TEST(FaultRecovery, PeriodicCheckpointsBoundRework) {
  dnn::Model model = dnn::make_alexnet();
  const double iter_s = healthy_iteration_s(model);

  faults::FaultPlan plan = crash_plan(4.5 * iter_s, 1, 2.0 * iter_s);
  faults::FaultState fs(plan);

  Harness h("p3.8xlarge", 2);
  TrainConfig cfg = fault_cfg(fs, RecoveryPolicy::kCheckpointRestart, iter_s);
  cfg.fault_tolerance.checkpoint_interval_s = 2.0 * iter_s;
  cfg.fault_tolerance.checkpoint_write_s = 0.1 * iter_s;
  TrainResult r = h.train(model, cfg);

  EXPECT_GE(r.checkpoints_written, 1);
  EXPECT_GT(r.checkpoint_seconds, 0.0);
  ASSERT_EQ(r.recoveries.size(), 1u);
  // The checkpoint caps the rollback below "everything since iteration 0".
  EXPECT_LT(r.recoveries[0].rework_iterations, r.recoveries[0].at_iteration);
}

TEST(FaultRecovery, StragglerWindowSlowsMeasuredIterations) {
  dnn::Model model = dnn::make_resnet18();
  const double healthy = healthy_iteration_s(model);

  // Worker 3 at half speed across the whole run.
  faults::FaultPlan plan = faults::FaultPlan::parse("straggler@0+100000:w3:x2");
  faults::FaultState fs(plan);

  Harness h("p3.8xlarge", 2);
  TrainConfig cfg = synthetic_cfg();
  cfg.fault_tolerance.faults = &fs;
  cfg.fault_tolerance.barrier_timeout_s = 1e6;  // watchdog never fires
  TrainResult r = h.train(model, cfg);
  EXPECT_GT(r.per_iteration, healthy);
  EXPECT_TRUE(r.recoveries.empty());
  EXPECT_DOUBLE_EQ(r.fault_stall, 0.0);
}

TEST(FaultRecovery, EmptyPlanMatchesHealthyRun) {
  dnn::Model model = dnn::make_alexnet();
  const double healthy = healthy_iteration_s(model);

  faults::FaultPlan empty;
  faults::FaultState fs(empty);
  Harness h("p3.8xlarge", 2);
  TrainConfig cfg = synthetic_cfg();
  cfg.fault_tolerance.faults = &fs;
  cfg.fault_tolerance.barrier_timeout_s = 30.0;
  TrainResult r = h.train(model, cfg);

  // The fault-aware path with nothing to inject reproduces the healthy
  // timeline exactly (watchdogs are armed but never fire).
  EXPECT_DOUBLE_EQ(r.per_iteration, healthy);
  EXPECT_TRUE(r.recoveries.empty());
  EXPECT_DOUBLE_EQ(r.fault_stall, 0.0);
  EXPECT_EQ(r.gpus_at_end, r.gpus_used);
}

// Fleet-below-k edge: a shrink that would leave fewer workers than the
// configured floor degrades to checkpoint-restart instead of building an
// undefined ring or aborting.
TEST(FaultRecovery, ShrinkBelowFloorDegradesToCheckpointRestart) {
  dnn::Model model = dnn::make_alexnet();
  const double iter_s = healthy_iteration_s(model);
  faults::FaultPlan plan = crash_plan(2.5 * iter_s, 1, 4.0 * iter_s);
  faults::FaultState fs(plan);

  Harness h("p3.8xlarge", 2);
  telemetry::MetricsRegistry metrics;
  TrainConfig cfg = fault_cfg(fs, RecoveryPolicy::kShrink, iter_s);
  cfg.fault_tolerance.min_shrink_workers = 8;  // survivors (4) fall below
  cfg.metrics = &metrics;
  TrainResult r = h.train(model, cfg);

  EXPECT_EQ(r.measured_iterations, 4);
  ASSERT_EQ(r.recoveries.size(), 1u);
  const RecoveryRecord& rec = r.recoveries[0];
  // The episode ran as a restart: full worker set kept, reprovision waited.
  EXPECT_EQ(rec.policy, RecoveryPolicy::kCheckpointRestart);
  EXPECT_EQ(rec.workers_after, rec.workers_before);
  EXPECT_EQ(r.gpus_at_end, 8);
  EXPECT_DOUBLE_EQ(metrics.counter("faults/shrink_floor_degradations").value(),
                   1.0);
}

// Robustness property: a second revocation lands while the checkpoint
// restart of the first is still waiting for its replacement. The run must
// converge, recovery counters must match the episodes exactly, and the
// causal blame segments must still tile every iteration window.
TEST(FaultRecovery, SecondRevocationDuringRecoveryConverges) {
  dnn::Model model = dnn::make_alexnet();
  const double iter_s = healthy_iteration_s(model);

  faults::FaultPlan plan = crash_plan(2.5 * iter_s, 1, 4.0 * iter_s);
  plan.events.push_back(crash_plan(3.5 * iter_s, 0, 4.0 * iter_s).events[0]);
  faults::FaultState fs(plan);

  Harness h("p3.8xlarge", 2);
  telemetry::MetricsRegistry metrics;
  obs::CausalLog causal;
  TrainConfig cfg = fault_cfg(fs, RecoveryPolicy::kCheckpointRestart, iter_s);
  cfg.metrics = &metrics;
  cfg.causal = &causal;
  TrainResult r = h.train(model, cfg);

  // Convergence: the full measurement window completes despite both hits.
  EXPECT_EQ(r.measured_iterations, 4);
  // One episode if the watchdog sees both machines down together, two if
  // the second hit lands after the first recovery resumed.
  ASSERT_GE(r.recoveries.size(), 1u);
  ASSERT_LE(r.recoveries.size(), 2u);
  for (const RecoveryRecord& rec : r.recoveries) {
    EXPECT_EQ(rec.policy, RecoveryPolicy::kCheckpointRestart);
    EXPECT_EQ(rec.workers_after, rec.workers_before);
    EXPECT_GT(rec.wait_seconds, 0.0);
  }
  const double episodes = static_cast<double>(r.recoveries.size());
  EXPECT_DOUBLE_EQ(metrics.counter("faults/detections").value(), episodes);
  EXPECT_DOUBLE_EQ(metrics.counter("faults/recovery_episodes").value(),
                   episodes);
  // Each crashed machine takes its 4 GPU workers with it.
  EXPECT_GE(metrics.counter("faults/worker_deaths").value(), 4.0);

  obs::BlameReport blame = obs::analyze_critical_path(causal);
  ASSERT_FALSE(blame.iterations.empty());
  for (const obs::IterationBlame& it : blame.iterations) {
    ASSERT_FALSE(it.segments.empty()) << "iteration " << it.iteration;
    EXPECT_DOUBLE_EQ(it.segments.front().start_s, it.start_s);
    EXPECT_DOUBLE_EQ(it.segments.back().end_s, it.end_s);
    for (std::size_t i = 1; i < it.segments.size(); ++i)
      EXPECT_DOUBLE_EQ(it.segments[i].start_s, it.segments[i - 1].end_s);
  }
}

TEST(FaultRecovery, ValidationRejectsBadFaultToleranceConfig) {
  dnn::Model model = dnn::make_alexnet();
  faults::FaultPlan empty;
  faults::FaultState fs(empty);

  {
    Harness h("p3.8xlarge", 2);
    TrainConfig cfg = synthetic_cfg();
    cfg.fault_tolerance.faults = &fs;
    cfg.fault_tolerance.barrier_timeout_s = 0.0;
    EXPECT_THROW(h.train(model, cfg), std::invalid_argument);
  }
  {
    Harness h("p3.8xlarge", 2);
    TrainConfig cfg = synthetic_cfg();
    cfg.fault_tolerance.faults = &fs;
    cfg.fault_tolerance.checkpoint_interval_s = 0.0;
    EXPECT_THROW(h.train(model, cfg), std::invalid_argument);
  }
  {
    Harness h("p3.8xlarge", 2);
    TrainConfig cfg = synthetic_cfg();
    cfg.fault_tolerance.faults = &fs;
    cfg.fault_tolerance.checkpoint_write_s = -1.0;
    EXPECT_THROW(h.train(model, cfg), std::invalid_argument);
  }
}

}  // namespace
}  // namespace stash::ddl
