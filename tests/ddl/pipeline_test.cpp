#include "ddl/pipeline.h"

#include <gtest/gtest.h>

#include <memory>

#include "cloud/builder.h"
#include "cloud/instance.h"
#include "ddl/trainer.h"
#include "dnn/bert.h"
#include "dnn/resnet.h"
#include "dnn/zoo.h"

namespace stash::ddl {
namespace {

PipelineResult run_pipeline(const std::string& instance_name, int count,
                            const dnn::Model& model, PipelineConfig cfg) {
  sim::Simulator sim;
  hw::FlowNetwork net(sim);
  hw::Cluster cluster(net, sim,
                      cloud::cluster_configs_for(cloud::instance(instance_name), count),
                      cloud::fabric_bandwidth());
  PipelineTrainer trainer(sim, net, cluster, model, cfg);
  return trainer.run();
}

TEST(Partition, CoversAllLayersContiguously) {
  dnn::Model model = dnn::make_bert_large();
  PipelinePlan plan = partition_model(model, 8);
  ASSERT_EQ(plan.num_stages(), 8u);
  EXPECT_EQ(plan.stages.front().first_layer, 0u);
  EXPECT_EQ(plan.stages.back().last_layer, model.num_layers() - 1);
  for (std::size_t s = 1; s < plan.num_stages(); ++s)
    EXPECT_EQ(plan.stages[s].first_layer, plan.stages[s - 1].last_layer + 1);
  double params = 0.0, flops = 0.0;
  for (const auto& s : plan.stages) {
    params += s.params;
    flops += s.fwd_flops_per_sample;
  }
  EXPECT_NEAR(params, model.total_params(), 1.0);
  EXPECT_NEAR(flops, model.fwd_flops_per_sample(), 1.0);
}

TEST(Partition, BalancedForUniformModels) {
  // BERT's 24 identical blocks partition almost perfectly across 8 stages.
  dnn::Model model = dnn::make_bert_large();
  PipelinePlan plan = partition_model(model, 8);
  EXPECT_LT(plan.imbalance(), 1.5);
}

TEST(Partition, SingleStageIsWholeModel) {
  dnn::Model model = dnn::make_resnet18();
  PipelinePlan plan = partition_model(model, 1);
  ASSERT_EQ(plan.num_stages(), 1u);
  EXPECT_DOUBLE_EQ(plan.stages[0].boundary_activation_bytes, 0.0);
}

TEST(Partition, InvalidArgsThrow) {
  dnn::Model model = dnn::make_resnet18();
  EXPECT_THROW(partition_model(model, 0), std::invalid_argument);
  EXPECT_THROW(partition_model(model, 10'000), std::invalid_argument);
}

TEST(Bubble, GpipeFormula) {
  EXPECT_DOUBLE_EQ(gpipe_bubble_fraction(1, 8), 0.0);
  EXPECT_DOUBLE_EQ(gpipe_bubble_fraction(4, 1), 0.75);
  EXPECT_NEAR(gpipe_bubble_fraction(8, 8), 7.0 / 15.0, 1e-12);
  EXPECT_THROW(gpipe_bubble_fraction(0, 1), std::invalid_argument);
}

PipelineConfig pipe_cfg(int micros, int mini = 32) {
  PipelineConfig cfg;
  cfg.micro_batches = micros;
  cfg.mini_batch = mini;
  cfg.iterations = 5;
  cfg.warmup_iterations = 1;
  return cfg;
}

TEST(PipelineTrainer, MoreMicroBatchesShrinkBubble) {
  dnn::Model bert = dnn::make_bert_large();
  PipelineResult m2 = run_pipeline("p3.16xlarge", 1, bert, pipe_cfg(2, 32));
  PipelineResult m8 = run_pipeline("p3.16xlarge", 1, bert, pipe_cfg(8, 32));
  PipelineResult m32 = run_pipeline("p3.16xlarge", 1, bert, pipe_cfg(32, 32));
  EXPECT_GT(m2.bubble_fraction, m8.bubble_fraction);
  EXPECT_GT(m8.bubble_fraction, m32.bubble_fraction);
  EXPECT_LT(m2.per_iteration * 0.999, m2.ideal_per_iteration /
                                          (1.0 - gpipe_bubble_fraction(8, 2)) * 1.5);
}

TEST(PipelineTrainer, BubbleTracksGpipeFormula) {
  // With near-balanced stages and cheap NVLink transfers, the measured
  // bubble should sit near (S-1)/(M+S-1).
  dnn::Model bert = dnn::make_bert_large();
  PipelineResult r = run_pipeline("p3.16xlarge", 1, bert, pipe_cfg(8, 32));
  double expected = gpipe_bubble_fraction(8, 8);
  EXPECT_NEAR(r.bubble_fraction, expected, 0.15);
}

TEST(PipelineTrainer, SingleGpuHasNoBubble) {
  dnn::Model model = dnn::make_resnet50();
  PipelineResult r = run_pipeline("p3.2xlarge", 1, model, pipe_cfg(4, 32));
  EXPECT_EQ(r.stages, 1u);
  EXPECT_NEAR(r.bubble_fraction, 0.0, 0.02);
}

TEST(PipelineTrainer, DeterministicAcrossRuns) {
  dnn::Model bert = dnn::make_bert_large();
  PipelineResult a = run_pipeline("p3.16xlarge", 1, bert, pipe_cfg(8, 32));
  PipelineResult b = run_pipeline("p3.16xlarge", 1, bert, pipe_cfg(8, 32));
  EXPECT_DOUBLE_EQ(a.per_iteration, b.per_iteration);
}

TEST(PipelineTrainer, BeatsDataParallelismAcrossSlowNics) {
  // The pipeline's promise for big models on slow networks: per iteration
  // it ships a handful of activation tensors across the NIC instead of
  // 1.3 GB of gradients.
  dnn::Model bert = dnn::make_bert_large();

  sim::Simulator sim;
  hw::FlowNetwork net(sim);
  hw::Cluster cluster(net, sim,
                      cloud::cluster_configs_for(cloud::instance("p3.8xlarge"), 2),
                      cloud::fabric_bandwidth());
  TrainConfig ddp_cfg;
  ddp_cfg.per_gpu_batch = 4;  // 32 samples across 8 GPUs
  ddp_cfg.iterations = 5;
  ddp_cfg.warmup_iterations = 1;
  Trainer ddp(sim, net, cluster, bert, dnn::squad_v2(), ddp_cfg);
  double t_ddp = ddp.run().per_iteration;

  PipelineResult pipe =
      run_pipeline("p3.8xlarge", 2, bert, pipe_cfg(8, 32));
  EXPECT_LT(pipe.per_iteration, t_ddp);
}

TEST(PipelineTrainer, InvalidConfigsThrow) {
  dnn::Model model = dnn::make_bert_large();
  PipelineConfig cfg = pipe_cfg(8, 4);  // mini_batch < micro_batches
  EXPECT_THROW(run_pipeline("p3.16xlarge", 1, model, cfg), std::invalid_argument);
  cfg = pipe_cfg(0);
  EXPECT_THROW(run_pipeline("p3.16xlarge", 1, model, cfg), std::invalid_argument);
}

TEST(HybridParallelism, TwoReplicasOfFourStages) {
  // 8 GPUs as 2 data-parallel replicas of a 4-stage pipeline. Each replica
  // processes its own mini-batch; per-sample throughput doubles if the
  // stage-gradient all-reduce is cheap.
  dnn::Model bert = dnn::make_bert_large();
  PipelineConfig cfg = pipe_cfg(8, 32);
  cfg.replicas = 2;
  PipelineResult hybrid = run_pipeline("p3.16xlarge", 1, bert, cfg);
  EXPECT_EQ(hybrid.stages, 4u);
  EXPECT_EQ(hybrid.replicas, 2);

  PipelineResult pure = run_pipeline("p3.16xlarge", 1, bert, pipe_cfg(8, 32));
  // Hybrid processes 2x the samples per iteration; its iteration is longer
  // than a pure pipeline's (4 deeper stages each do 2x the work per
  // micro-batch) but throughput must be competitive.
  double hybrid_throughput = 2.0 * 32 / hybrid.per_iteration;
  double pure_throughput = 32 / pure.per_iteration;
  EXPECT_GT(hybrid_throughput, pure_throughput);
}

TEST(HybridParallelism, GradientSyncCostsShowUp) {
  // Same hybrid layout with and without the gradient exchange priced in:
  // compare replicas=2 against an unsynchronized bound (each replica is an
  // independent 4-stage pipeline on 4 GPUs).
  dnn::Model bert = dnn::make_bert_large();
  PipelineConfig cfg = pipe_cfg(8, 32);
  cfg.replicas = 2;
  PipelineResult hybrid = run_pipeline("p3.16xlarge", 1, bert, cfg);
  PipelineResult solo = run_pipeline("p3.8xlarge", 1, bert, pipe_cfg(8, 32));
  // The hybrid pays an extra all-reduce of stage gradients.
  EXPECT_GE(hybrid.per_iteration, solo.per_iteration * 0.99);
}

TEST(HybridParallelism, IndivisibleReplicasThrow) {
  dnn::Model bert = dnn::make_bert_large();
  PipelineConfig cfg = pipe_cfg(8, 32);
  cfg.replicas = 3;  // 8 GPUs not divisible by 3
  sim::Simulator sim;
  hw::FlowNetwork net(sim);
  hw::Cluster cluster(net, sim,
                      cloud::cluster_configs_for(cloud::instance("p3.16xlarge"), 1),
                      cloud::fabric_bandwidth());
  EXPECT_THROW(PipelineTrainer(sim, net, cluster, bert, cfg), std::invalid_argument);
}

// Property sweep: bubble fraction decreases monotonically in micro-batch
// count and stays in [0, 1).
class MicroBatchSweep : public ::testing::TestWithParam<int> {};

TEST_P(MicroBatchSweep, BubbleWithinBounds) {
  int micros = GetParam();
  dnn::Model bert = dnn::make_bert_large();
  PipelineResult r = run_pipeline("p3.16xlarge", 1, bert, pipe_cfg(micros, 64));
  EXPECT_GE(r.bubble_fraction, 0.0);
  EXPECT_LT(r.bubble_fraction, 1.0);
  EXPECT_GT(r.per_iteration, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Micros, MicroBatchSweep, ::testing::Values(1, 2, 4, 8, 16, 32));

}  // namespace
}  // namespace stash::ddl
