#include "ddl/trainer.h"

#include <gtest/gtest.h>

#include <memory>

#include "cloud/builder.h"
#include "cloud/instance.h"
#include "coll/ring_allreduce.h"
#include "dnn/bert.h"
#include "dnn/zoo.h"
#include "util/units.h"

namespace stash::ddl {
namespace {

using util::gib;

struct Harness {
  sim::Simulator sim;
  hw::FlowNetwork net{sim};
  std::unique_ptr<hw::Cluster> cluster;

  explicit Harness(const std::string& instance_name, int count = 1,
                   cloud::CrossbarSlice slice = cloud::CrossbarSlice::kFragmented) {
    cluster = std::make_unique<hw::Cluster>(
        net, sim,
        cloud::cluster_configs_for(cloud::instance(instance_name), count, slice),
        cloud::fabric_bandwidth());
  }

  TrainResult train(const dnn::Model& model, TrainConfig cfg) {
    Trainer t(sim, net, *cluster, model, dnn::dataset_for(model.name()), cfg);
    return t.run();
  }
};

TrainConfig synthetic_cfg(int batch = 32) {
  TrainConfig cfg;
  cfg.per_gpu_batch = batch;
  cfg.iterations = 6;
  cfg.warmup_iterations = 2;
  cfg.synthetic_data = true;
  return cfg;
}

TEST(Trainer, SingleGpuSyntheticMatchesComputeModel) {
  Harness h("p3.2xlarge");
  dnn::Model model = dnn::make_resnet18();
  TrainConfig cfg = synthetic_cfg();
  cfg.use_gpus = {hw::GpuRef{0, 0}};
  TrainResult r = h.train(model, cfg);

  double flops = (model.fwd_flops_per_sample() + model.bwd_flops_per_sample()) * 32;
  double compute = flops / h.cluster->machine(0).gpu().effective_flops;
  double expected = compute * 1.02;  // optimizer overhead
  EXPECT_NEAR(r.per_iteration, expected, 1e-9);
  EXPECT_EQ(r.measured_iterations, 4);
  EXPECT_DOUBLE_EQ(r.comm_tail, 0.0);
  EXPECT_DOUBLE_EQ(r.data_wait, 0.0);
}

TEST(Trainer, MultiGpuSlowerThanSingleGpu) {
  // The interconnect stall: same per-GPU batch, distributed training pays
  // for gradient synchronization (Stash step 2 vs step 1).
  Harness h1("p3.16xlarge");
  dnn::Model model = dnn::make_resnet18();
  TrainConfig single = synthetic_cfg();
  single.use_gpus = {hw::GpuRef{0, 0}};
  double t1 = h1.train(model, single).per_iteration;

  Harness h8("p3.16xlarge");
  double t8 = h8.train(model, synthetic_cfg()).per_iteration;
  EXPECT_GT(t8, t1);
}

TEST(Trainer, CommTailPositiveOnSlowInterconnect) {
  Harness h("p2.16xlarge");
  dnn::Model model = dnn::make_alexnet();
  TrainResult r = h.train(model, synthetic_cfg());
  EXPECT_GT(r.comm_tail, 0.0);
}

TEST(Trainer, OverlapNeverWorseThanSerial) {
  // Total iteration time <= compute + full collective time (overlap helps,
  // never hurts).
  Harness h("p3.16xlarge");
  dnn::Model model = dnn::make_vgg11();
  TrainResult r = h.train(model, synthetic_cfg());
  double serial_comm = 0.0;
  for (const auto& s : model.backward_steps())
    serial_comm += coll::ring_allreduce_analytic(s.grad_bytes, 8, util::gb_per_s(22),
                                                 8e-6);
  EXPECT_LE(r.per_iteration, r.compute_time + serial_comm + 1e-6);
}

TEST(Trainer, NetworkStallDwarfsInterconnect) {
  // Stash step 5 vs step 2 (paper Fig 13): same GPU count, but the ring
  // crosses a 10 Gbps NIC.
  dnn::Model model = dnn::make_vgg11();
  Harness one("p3.16xlarge");
  double t_one = one.train(model, synthetic_cfg()).per_iteration;
  Harness two("p3.8xlarge", 2);
  double t_two = two.train(model, synthetic_cfg()).per_iteration;
  EXPECT_GT(t_two, 2.0 * t_one);
}

TEST(Trainer, WarmCacheFasterThanCold) {
  Harness cold_h("p2.8xlarge");
  dnn::Model model = dnn::make_alexnet();
  TrainConfig cfg = synthetic_cfg();
  cfg.synthetic_data = false;
  cfg.cold_cache = true;
  double t_cold = cold_h.train(model, cfg).per_iteration;

  Harness warm_h("p2.8xlarge");
  cfg.cold_cache = false;
  double t_warm = warm_h.train(model, cfg).per_iteration;
  EXPECT_GT(t_cold, t_warm);
}

TEST(Trainer, WarmCacheHidesPipelineBehindCompute) {
  // On a machine whose DRAM holds the dataset, prep is fully overlapped:
  // warm-cache real-data time equals synthetic time (negligible CPU stall,
  // paper Fig 4a/8a).
  dnn::Model model = dnn::make_resnet18();
  Harness synth_h("p3.16xlarge");
  double t_synth = synth_h.train(model, synthetic_cfg()).per_iteration;

  Harness warm_h("p3.16xlarge");
  TrainConfig cfg = synthetic_cfg();
  cfg.synthetic_data = false;
  double t_warm = warm_h.train(model, cfg).per_iteration;
  EXPECT_LT((t_warm - t_synth) / t_synth, 0.25);
}

TEST(Trainer, ColdCacheDiskBoundOn16xlarge) {
  // Sixteen loaders hammer one SSD: data wait dominates (paper Fig 4b).
  dnn::Model model = dnn::make_alexnet();
  Harness h("p2.16xlarge");
  TrainConfig cfg = synthetic_cfg();
  cfg.synthetic_data = false;
  cfg.cold_cache = true;
  TrainResult r = h.train(model, cfg);
  EXPECT_GT(r.data_wait, 0.0);
}

TEST(Trainer, BucketingReducesLatencyCost) {
  // Ablation A3: 25 MiB buckets amortize per-collective launch latency.
  // The win is largest in the latency-dominated regime — many tiny
  // gradient tensors on a slow, high-round-count interconnect (ShuffleNet's
  // 170 tensors on the 16-GPU PCIe box). On NVLink with bandwidth-heavy
  // models the effect is a wash (bucketing trades away overlap
  // granularity), which bench_ablation_bucketing quantifies.
  dnn::Model model = dnn::make_shufflenet();
  Harness per_tensor("p2.16xlarge");
  TrainConfig cfg = synthetic_cfg();
  double t_tensor = per_tensor.train(model, cfg).per_iteration;

  Harness bucketed("p2.16xlarge");
  cfg.bucket_bytes = util::mib(25);
  double t_bucket = bucketed.train(model, cfg).per_iteration;
  EXPECT_LT(t_bucket, t_tensor);
}

TEST(Trainer, MemoryEnforcement) {
  Harness h("p2.xlarge");  // 12 GiB K80
  dnn::Model bert = dnn::make_bert_large();
  TrainConfig cfg = synthetic_cfg(32);
  cfg.use_gpus = {hw::GpuRef{0, 0}};
  EXPECT_THROW(h.train(bert, cfg), ModelDoesNotFit);

  Harness h2("p2.xlarge");
  cfg.enforce_memory = false;
  EXPECT_NO_THROW(h2.train(bert, cfg));
}

TEST(Trainer, MaxBatchThatFits) {
  dnn::Model bert = dnn::make_bert_large();
  int on_v100 = Trainer::max_batch_that_fits(bert, hw::v100_spec());
  EXPECT_GE(on_v100, 4);   // the paper trains batch 4 on 16 GiB
  EXPECT_LE(on_v100, 16);
  int on_v100_32 = Trainer::max_batch_that_fits(bert, hw::v100_spec(32));
  EXPECT_GT(on_v100_32, on_v100);  // §V-B: 24xlarge can double the batch
  dnn::Model shuffle = dnn::make_shufflenet();
  EXPECT_GE(Trainer::max_batch_that_fits(shuffle, hw::k80_spec()), 128);
}

TEST(Trainer, EpochTimeScalesWindow) {
  Harness h("p3.16xlarge");
  dnn::Model model = dnn::make_resnet18();
  TrainResult r = h.train(model, synthetic_cfg());
  double epoch = r.epoch_time(1'281'167.0, 32);
  EXPECT_NEAR(epoch, r.per_iteration * 1'281'167.0 / (32.0 * 8.0), 1e-6 * epoch);
}

TEST(Trainer, InvalidConfigsThrow) {
  Harness h("p2.xlarge");
  dnn::Model model = dnn::make_alexnet();
  TrainConfig cfg = synthetic_cfg();
  cfg.iterations = 2;
  cfg.warmup_iterations = 2;
  EXPECT_THROW(h.train(model, cfg), std::invalid_argument);

  TrainConfig bad_gpu = synthetic_cfg();
  bad_gpu.use_gpus = {hw::GpuRef{0, 5}};
  Harness h2("p2.xlarge");
  EXPECT_THROW(h2.train(model, bad_gpu), std::out_of_range);

  TrainConfig bad_batch = synthetic_cfg(0);
  Harness h3("p2.xlarge");
  EXPECT_THROW(h3.train(model, bad_batch), std::invalid_argument);
}

TEST(Trainer, TraceRecordsIterationTimeline) {
  Harness h("p3.16xlarge");
  dnn::Model model = dnn::make_resnet18();
  TrainConfig cfg = synthetic_cfg();
  cfg.synthetic_data = false;  // exercise data_wait + h2d spans too
  util::TraceRecorder trace;
  cfg.trace = &trace;
  h.train(model, cfg);
  EXPECT_GT(trace.size(), 0u);
  bool saw_forward = false, saw_backward = false, saw_allreduce = false,
       saw_h2d = false;
  for (const auto& s : trace.spans()) {
    EXPECT_GE(s.duration_s, 0.0);
    if (s.name == "forward") saw_forward = true;
    if (s.name == "backward+flush") saw_backward = true;
    if (s.name == "allreduce") saw_allreduce = true;
    if (s.name == "h2d") saw_h2d = true;
  }
  EXPECT_TRUE(saw_forward);
  EXPECT_TRUE(saw_backward);
  EXPECT_TRUE(saw_allreduce);
  EXPECT_TRUE(saw_h2d);
  // Serializes to parseable-looking chrome trace JSON.
  std::string json = trace.to_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("traceEvents"), std::string::npos);
}

TEST(Trainer, DeterministicAcrossRuns) {
  dnn::Model model = dnn::make_resnet18();
  Harness a("p3.16xlarge");
  Harness b("p3.16xlarge");
  double ta = a.train(model, synthetic_cfg()).per_iteration;
  double tb = b.train(model, synthetic_cfg()).per_iteration;
  EXPECT_DOUBLE_EQ(ta, tb);
}

// Batch-size sweep property: per-iteration time grows monotonically with
// batch size; communication volume does not change, so stall fraction
// shrinks (larger batches amortize the all-reduce).
class BatchSweep : public ::testing::TestWithParam<int> {};

TEST_P(BatchSweep, IterationTimeMonotoneInBatch) {
  int batch = GetParam();
  dnn::Model model = dnn::make_resnet18();
  Harness small("p3.16xlarge");
  Harness large("p3.16xlarge");
  double t_small = small.train(model, synthetic_cfg(batch)).per_iteration;
  double t_large = large.train(model, synthetic_cfg(batch * 2)).per_iteration;
  EXPECT_GT(t_large, t_small);
}

INSTANTIATE_TEST_SUITE_P(Batches, BatchSweep, ::testing::Values(8, 16, 32, 64));

}  // namespace
}  // namespace stash::ddl
