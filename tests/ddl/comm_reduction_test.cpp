#include <gtest/gtest.h>

#include <memory>

#include "cloud/builder.h"
#include "cloud/instance.h"
#include "ddl/trainer.h"
#include "dnn/zoo.h"
#include "util/units.h"

namespace stash::ddl {
namespace {

double run_iteration(const std::string& instance_name, int count,
                     const dnn::Model& model, TrainConfig cfg) {
  sim::Simulator sim;
  hw::FlowNetwork net(sim);
  hw::Cluster cluster(net, sim,
                      cloud::cluster_configs_for(cloud::instance(instance_name), count),
                      cloud::fabric_bandwidth());
  Trainer trainer(sim, net, cluster, model, dnn::dataset_for(model.name()), cfg);
  return trainer.run().per_iteration;
}

TrainConfig base_cfg() {
  TrainConfig cfg;
  cfg.per_gpu_batch = 32;
  cfg.iterations = 8;
  cfg.warmup_iterations = 2;
  return cfg;
}

TEST(CommReductionConfig, BytesFactor) {
  CommReductionConfig c;
  EXPECT_DOUBLE_EQ(c.bytes_factor(), 1.0);
  c.kind = CommReduction::kFp16;
  EXPECT_DOUBLE_EQ(c.bytes_factor(), 0.5);
  c.kind = CommReduction::kTopK;
  c.topk_ratio = 0.01;
  EXPECT_DOUBLE_EQ(c.bytes_factor(), 0.02);
  c.topk_ratio = 0.9;  // dense enough that value+index exceeds fp32: capped
  EXPECT_DOUBLE_EQ(c.bytes_factor(), 1.0);
  c.kind = CommReduction::kLocalSgd;
  EXPECT_DOUBLE_EQ(c.bytes_factor(), 1.0);
}

TEST(CommReductionConfig, LocalSgdSyncSchedule) {
  CommReductionConfig c;
  c.kind = CommReduction::kLocalSgd;
  c.local_steps = 3;
  EXPECT_FALSE(c.syncs_on(0));
  EXPECT_FALSE(c.syncs_on(1));
  EXPECT_TRUE(c.syncs_on(2));
  EXPECT_FALSE(c.syncs_on(3));
  EXPECT_TRUE(c.syncs_on(5));
  c.kind = CommReduction::kNone;
  EXPECT_TRUE(c.syncs_on(0));
}

TEST(CommReduction, Fp16HalvesNetworkPain) {
  // On a NIC-bound pair, halving the gradient bytes nearly halves the
  // communication stall.
  dnn::Model vgg = dnn::make_vgg11();
  TrainConfig cfg = base_cfg();
  double full = run_iteration("p3.8xlarge", 2, vgg, cfg);
  cfg.comm_reduction.kind = CommReduction::kFp16;
  double fp16 = run_iteration("p3.8xlarge", 2, vgg, cfg);
  EXPECT_LT(fp16, full);
  // Compute floor: fp16 can't be better than half, but must recover a
  // large share of the comm-bound gap.
  EXPECT_LT(fp16, 0.75 * full);
}

TEST(CommReduction, TopKNearlyEliminatesNetworkStall) {
  dnn::Model vgg = dnn::make_vgg11();
  TrainConfig cfg = base_cfg();
  double full = run_iteration("p3.8xlarge", 2, vgg, cfg);
  cfg.comm_reduction.kind = CommReduction::kTopK;
  cfg.comm_reduction.topk_ratio = 0.01;
  double topk = run_iteration("p3.8xlarge", 2, vgg, cfg);
  EXPECT_LT(topk, 0.3 * full);
}

TEST(CommReduction, LocalSgdAmortizesSync) {
  dnn::Model vgg = dnn::make_vgg11();
  TrainConfig cfg = base_cfg();
  cfg.iterations = 10;
  cfg.warmup_iterations = 2;
  double every = run_iteration("p3.8xlarge", 2, vgg, cfg);
  cfg.comm_reduction.kind = CommReduction::kLocalSgd;
  cfg.comm_reduction.local_steps = 4;
  double local = run_iteration("p3.8xlarge", 2, vgg, cfg);
  // Three of four iterations skip the exchange entirely.
  EXPECT_LT(local, 0.6 * every);
}

TEST(CommReduction, NoEffectOnSingleGpu) {
  dnn::Model model = dnn::make_resnet18();
  TrainConfig cfg = base_cfg();
  cfg.use_gpus = {hw::GpuRef{0, 0}};
  double none = run_iteration("p3.2xlarge", 1, model, cfg);
  cfg.comm_reduction.kind = CommReduction::kTopK;
  cfg.comm_reduction.topk_ratio = 0.01;
  double topk = run_iteration("p3.2xlarge", 1, model, cfg);
  EXPECT_DOUBLE_EQ(none, topk);
}

TEST(CommReduction, InvalidConfigsThrow) {
  dnn::Model model = dnn::make_resnet18();
  TrainConfig cfg = base_cfg();
  cfg.comm_reduction.kind = CommReduction::kTopK;
  cfg.comm_reduction.topk_ratio = 0.0;
  EXPECT_THROW(run_iteration("p3.16xlarge", 1, model, cfg), std::invalid_argument);
  cfg = base_cfg();
  cfg.comm_reduction.kind = CommReduction::kLocalSgd;
  cfg.comm_reduction.local_steps = 0;
  EXPECT_THROW(run_iteration("p3.16xlarge", 1, model, cfg), std::invalid_argument);
}

TEST(Straggler, SlowWorkerPacesEveryIteration) {
  dnn::Model model = dnn::make_resnet18();
  TrainConfig cfg = base_cfg();
  double uniform = run_iteration("p3.16xlarge", 1, model, cfg);
  cfg.straggler.worker_index = 5;
  cfg.straggler.slowdown = 2.0;
  double straggling = run_iteration("p3.16xlarge", 1, model, cfg);
  EXPECT_GT(straggling, 1.4 * uniform);
}

TEST(Straggler, LeadStragglerAlsoCounts) {
  dnn::Model model = dnn::make_resnet18();
  TrainConfig cfg = base_cfg();
  cfg.straggler.worker_index = 0;
  cfg.straggler.slowdown = 1.5;
  double lead_slow = run_iteration("p3.16xlarge", 1, model, cfg);
  cfg.straggler.worker_index = -1;
  double uniform = run_iteration("p3.16xlarge", 1, model, cfg);
  EXPECT_GT(lead_slow, uniform);
}

TEST(Straggler, DisabledByDefault) {
  StragglerConfig s;
  EXPECT_FALSE(s.enabled());
  EXPECT_DOUBLE_EQ(s.scale_for(3), 1.0);
  s.worker_index = 3;
  s.slowdown = 1.5;
  EXPECT_TRUE(s.enabled());
  EXPECT_DOUBLE_EQ(s.scale_for(3), 1.5);
  EXPECT_DOUBLE_EQ(s.scale_for(2), 1.0);
}

TEST(Straggler, InvalidSlowdownThrows) {
  dnn::Model model = dnn::make_resnet18();
  TrainConfig cfg = base_cfg();
  cfg.straggler.worker_index = 1;
  cfg.straggler.slowdown = 0.5;
  EXPECT_THROW(run_iteration("p3.16xlarge", 1, model, cfg), std::invalid_argument);
}

// Sweep: amplification is bounded by the slowdown itself.
class StragglerSweep : public ::testing::TestWithParam<double> {};

TEST_P(StragglerSweep, AmplificationBounded) {
  double slowdown = GetParam();
  dnn::Model model = dnn::make_alexnet();
  TrainConfig cfg = base_cfg();
  double uniform = run_iteration("p3.16xlarge", 1, model, cfg);
  cfg.straggler.worker_index = 3;
  cfg.straggler.slowdown = slowdown;
  double straggling = run_iteration("p3.16xlarge", 1, model, cfg);
  EXPECT_GE(straggling, uniform - 1e-12);
  EXPECT_LE(straggling, slowdown * uniform * 1.05);
}

INSTANTIATE_TEST_SUITE_P(Slowdowns, StragglerSweep,
                         ::testing::Values(1.1, 1.25, 1.5, 2.0, 3.0));

}  // namespace
}  // namespace stash::ddl
