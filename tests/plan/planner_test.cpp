#include "plan/planner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "dnn/zoo.h"
#include "exec/exec_context.h"
#include "stash/session.h"

namespace stash::plan {
namespace {

// The paper's P3 candidate ladder (the acceptance set for the planner).
std::vector<profiler::ClusterSpec> p3_candidates() {
  std::vector<profiler::ClusterSpec> specs;
  for (const char* name :
       {"p3.2xlarge", "p3.8xlarge", "p3.16xlarge", "p3.24xlarge"})
    specs.push_back(profiler::ClusterSpec{name});
  specs.push_back(profiler::ClusterSpec{"p3.8xlarge", 2});
  return specs;
}

PlanOptions fast_options(exec::ExecContext* exec) {
  PlanOptions opt;
  opt.epochs = 4;
  opt.trials = 10;
  opt.candidates = p3_candidates();
  opt.profile.exec = exec;
  return opt;
}

const CandidatePlan& cheapest_of_kind(const PlanReport& r, AllocKind kind) {
  const CandidatePlan* best = nullptr;
  for (const CandidatePlan& p : r.plans)
    if (p.kind == kind &&
        (best == nullptr || p.expected_cost_usd < best->expected_cost_usd))
      best = &p;
  EXPECT_NE(best, nullptr);
  return *best;
}

// Acceptance criterion: for resnet50 on the P3 set with default spot
// parameters, at least one spot-using plan strictly dominates the pure
// on-demand cost-optimal plan on expected cost at equal or better wall time.
TEST(Planner, SpotPlanDominatesOnDemandCostOptimal) {
  exec::ExecContext exec(8);
  PlanOptions opt = fast_options(&exec);
  PlanReport r = plan(dnn::make_zoo_model("resnet50"),
                      dnn::dataset_for("resnet50"), opt);
  ASSERT_FALSE(r.plans.empty());

  const CandidatePlan& od_best = cheapest_of_kind(r, AllocKind::kOnDemand);
  bool dominated = false;
  for (const CandidatePlan& p : r.plans)
    if (p.spot_machines > 0 &&
        p.expected_cost_usd < od_best.expected_cost_usd &&
        p.expected_wall_s <= od_best.expected_wall_s)
      dominated = true;
  EXPECT_TRUE(dominated)
      << "no spot plan beats " << od_best.label() << " ($"
      << od_best.expected_cost_usd << ", " << od_best.expected_wall_s << " s)";
  // A dominated on-demand optimum can never sit on the frontier.
  EXPECT_FALSE(od_best.on_frontier);
}

TEST(Planner, EnumeratesAllTiersPerCandidate) {
  exec::ExecContext exec(8);
  PlanOptions opt = fast_options(&exec);
  PlanReport r = plan(dnn::make_zoo_model("resnet18"),
                      dnn::dataset_for("resnet18"), opt);

  // Single-machine specs yield on-demand + spot; the 2-machine spec adds the
  // DeepVM-style 1-spot/1-on-demand tier: 4*2 + 3 = 11 allocations.
  EXPECT_EQ(r.plans.size(), 11u);
  int mixed = 0;
  for (const CandidatePlan& p : r.plans) {
    EXPECT_EQ(p.spot_machines + p.ondemand_machines, p.spec.count);
    if (p.kind == AllocKind::kMixed) {
      ++mixed;
      EXPECT_EQ(p.spec.count, 2);
      EXPECT_EQ(p.spot_machines, 1);
      EXPECT_EQ(p.ondemand_machines, 1);
      // The mixed bill sits strictly between all-on-demand and all-spot.
      const CandidatePlan* od = nullptr;
      const CandidatePlan* spot = nullptr;
      for (const CandidatePlan& q : r.plans) {
        if (q.spec.label() != p.spec.label()) continue;
        if (q.kind == AllocKind::kOnDemand) od = &q;
        if (q.kind == AllocKind::kSpot) spot = &q;
      }
      ASSERT_NE(od, nullptr);
      ASSERT_NE(spot, nullptr);
      EXPECT_LT(p.expected_cost_usd, od->expected_cost_usd);
      EXPECT_GT(p.expected_cost_usd, spot->expected_cost_usd);
    }
  }
  EXPECT_EQ(mixed, 1);
}

// The report must be byte-identical for every jobs value (the CLI promise).
TEST(Planner, JobsInvarianceByteIdenticalJson) {
  dnn::Model model = dnn::make_zoo_model("resnet18");
  dnn::Dataset dataset = dnn::dataset_for("resnet18");

  exec::ExecContext serial(1);
  PlanOptions o1 = fast_options(&serial);
  std::string j1 = to_json(plan(model, dataset, o1));

  exec::ExecContext wide(8);
  PlanOptions o8 = fast_options(&wide);
  std::string j8 = to_json(plan(model, dataset, o8));

  EXPECT_EQ(j1, j8);
}

TEST(Planner, FrontierIsNondominatedAndSorted) {
  exec::ExecContext exec(8);
  PlanOptions opt = fast_options(&exec);
  PlanReport r = plan(dnn::make_zoo_model("resnet18"),
                      dnn::dataset_for("resnet18"), opt);
  ASSERT_FALSE(r.frontier.empty());

  // Plans are sorted by expected cost; frontier indices are ascending and
  // agree with the on_frontier flags.
  for (std::size_t i = 1; i < r.plans.size(); ++i)
    EXPECT_LE(r.plans[i - 1].expected_cost_usd, r.plans[i].expected_cost_usd);
  std::vector<int> flagged;
  for (std::size_t i = 0; i < r.plans.size(); ++i)
    if (r.plans[i].on_frontier) flagged.push_back(static_cast<int>(i));
  EXPECT_EQ(flagged, r.frontier);

  // No frontier member is dominated by any plan.
  for (int fi : r.frontier) {
    const CandidatePlan& f = r.plans[fi];
    for (const CandidatePlan& q : r.plans) {
      bool dominates = q.expected_wall_s <= f.expected_wall_s &&
                       q.expected_cost_usd <= f.expected_cost_usd &&
                       q.p95_cost_usd <= f.p95_cost_usd &&
                       (q.expected_wall_s < f.expected_wall_s ||
                        q.expected_cost_usd < f.expected_cost_usd ||
                        q.p95_cost_usd < f.p95_cost_usd);
      EXPECT_FALSE(dominates) << q.label() << " dominates frontier member "
                              << f.label();
    }
  }
}

// The on-demand allocation must price exactly what estimate_training says
// the run takes: same steps, same cache, no spot machinery in the way.
TEST(Planner, OnDemandPlanMatchesTrainingEstimate) {
  dnn::Model model = dnn::make_zoo_model("resnet18");
  dnn::Dataset dataset = dnn::dataset_for("resnet18");
  exec::ExecContext exec(8);

  PlanOptions opt = fast_options(&exec);
  opt.candidates = {profiler::ClusterSpec{"p3.8xlarge"}};
  PlanReport r = plan(model, dataset, opt);

  profiler::ProfileOptions popt;
  popt.exec = &exec;
  profiler::StashProfiler prof(model, dataset, popt);
  auto est = profiler::estimate_training(prof, profiler::ClusterSpec{"p3.8xlarge"},
                                         opt.per_gpu_batch, opt.epochs);

  const CandidatePlan& od = cheapest_of_kind(r, AllocKind::kOnDemand);
  EXPECT_DOUBLE_EQ(od.expected_wall_s, est.total_seconds);
  EXPECT_DOUBLE_EQ(od.expected_cost_usd, est.total_cost_usd);
  EXPECT_DOUBLE_EQ(od.p95_cost_usd, od.expected_cost_usd);
  EXPECT_DOUBLE_EQ(od.expected_interruptions, 0.0);
}

TEST(Planner, BudgetAndDeadlineFeasibility) {
  dnn::Model model = dnn::make_zoo_model("resnet18");
  dnn::Dataset dataset = dnn::dataset_for("resnet18");
  exec::ExecContext exec(8);

  // Impossible budget: nothing feasible, but the frontier still answers.
  PlanOptions opt = fast_options(&exec);
  opt.candidates = {profiler::ClusterSpec{"p3.8xlarge"}};
  opt.budget_usd = 0.0001;
  PlanReport r = plan(model, dataset, opt);
  EXPECT_FALSE(r.any_feasible);
  EXPECT_FALSE(r.frontier.empty());
  for (const CandidatePlan& p : r.plans) EXPECT_FALSE(p.meets_budget);

  // Unconstrained (the default): everything is feasible.
  opt.budget_usd = 0.0;
  PlanReport r2 = plan(model, dataset, opt);
  EXPECT_TRUE(r2.any_feasible);
  for (const CandidatePlan& p : r2.plans) {
    EXPECT_TRUE(p.meets_budget);
    EXPECT_TRUE(p.meets_deadline);
  }
}

TEST(Planner, CalibrationMeasuresRecoveryCost) {
  dnn::Model model = dnn::make_zoo_model("resnet18");
  dnn::Dataset dataset = dnn::dataset_for("resnet18");
  exec::ExecContext exec(8);

  PlanOptions opt = fast_options(&exec);
  opt.candidates = {profiler::ClusterSpec{"p3.8xlarge"}};
  PlanReport calibrated = plan(model, dataset, opt);
  opt.calibrate_recovery = false;
  PlanReport assumed = plan(model, dataset, opt);

  const CandidatePlan& c = cheapest_of_kind(calibrated, AllocKind::kSpot);
  const CandidatePlan& a = cheapest_of_kind(assumed, AllocKind::kSpot);
  // The calibrated cost is a measurement (reprovision wait plus detection
  // gap, minus the partial iteration already under way), not the assumed
  // constant: positive and in the reprovision wait's neighbourhood.
  EXPECT_GT(c.recovery_fixed_cost_s, 0.5 * opt.spot.restart_overhead_s);
  EXPECT_LT(c.recovery_fixed_cost_s, 3.0 * opt.spot.restart_overhead_s);
  EXPECT_DOUBLE_EQ(a.recovery_fixed_cost_s, opt.spot.restart_overhead_s);
  EXPECT_GT(c.calibration_fault_stall_pct, 0.0);
  EXPECT_DOUBLE_EQ(a.calibration_fault_stall_pct, 0.0);
}

TEST(Planner, ValidatesOptions) {
  PlanOptions opt;
  opt.epochs = 0;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  opt = PlanOptions{};
  opt.trials = 0;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  opt = PlanOptions{};
  opt.budget_usd = -1.0;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  opt = PlanOptions{};
  opt.deadline_hours = -2.0;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  opt = PlanOptions{};
  opt.spot.price_factor = 1.5;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  opt = PlanOptions{};
  EXPECT_NO_THROW(opt.validate());
}

}  // namespace
}  // namespace stash::plan
