// Core archive behavior: content addressing, the append/index contract,
// crash-window recovery, run-reference resolution, and a byte-stable golden
// for the stash.run_record/1 wire format (regenerate with
// STASH_REGEN_GOLDEN=1 after an intentional format change).
#include "archive/archive.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "archive_test_util.h"
#include "util/json.h"

namespace stash::archive {
namespace {

namespace fs = std::filesystem;

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

TEST(BuildRecord, IsPureAndContentAddressed) {
  BuiltRecord a = build_record(inputs_for(3.0));
  BuiltRecord b = build_record(inputs_for(3.0));
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.json, b.json);
  EXPECT_EQ(a.id.size(), 16u);
  EXPECT_EQ(a.id.find_first_not_of("0123456789abcdef"), std::string::npos);

  // Any input change moves the id: manifest bytes, config values, command.
  EXPECT_NE(build_record(inputs_for(3.5)).id, a.id);
  EXPECT_NE(build_record(inputs_for(3.0, "1")).id, a.id);
  RecordInputs other = inputs_for(3.0);
  other.command = "stalls";
  EXPECT_NE(build_record(other).id, a.id);
}

TEST(BuildRecord, DocumentParsesAndRoundTrips) {
  RecordInputs in = inputs_for(3.0);
  in.blame_json = R"({"schema":"stash.blame/1","rows":[]})";
  in.folded = "machine0;gpu0;forward;compute 100\n";
  in.payload_json = R"({"k":1})";
  in.events_jsonl = "{\"iter\":1}\n{\"iter\":2}\n";
  BuiltRecord rec = build_record(in);

  util::JsonValue doc = util::json_parse(rec.json);
  EXPECT_EQ(doc.dump(), rec.json);  // parse/dump round-trip, byte-exact
  EXPECT_EQ(doc.get("schema").as_string(), "stash.run_record/1");
  EXPECT_EQ(doc.get("id").as_string(), rec.id);
  EXPECT_EQ(doc.get("command").as_string(), "profile");
  EXPECT_EQ(doc.get("group").get("model").as_string(), "resnet18");
  EXPECT_EQ(doc.get("group").get("batch").as_int(), 32);
  EXPECT_EQ(doc.get("group_key").as_string(),
            group_key("resnet18", "imagenet-1k", "p3.2xlarge", 1, 32));
  EXPECT_EQ(doc.get("manifest").get("schema").as_string(),
            "stash.run_manifest/1");
  EXPECT_EQ(doc.get("blame").get("schema").as_string(), "stash.blame/1");
  EXPECT_EQ(doc.get("folded").as_string(),
            "machine0;gpu0;forward;compute 100\n");
  EXPECT_EQ(doc.get("payload").get("k").as_int(), 1);
  EXPECT_EQ(doc.get("events_jsonl").as_string(),
            "{\"iter\":1}\n{\"iter\":2}\n");
}

TEST(BuildRecord, MatchesCommittedGolden) {
  RecordInputs in = inputs_for(3.0);
  in.folded = "machine0;gpu0;forward;compute 100\n";
  BuiltRecord rec = build_record(in);

  const std::string golden_path =
      std::string(STASH_TEST_DATA_DIR) + "/run_record_golden.json";
  if (std::getenv("STASH_REGEN_GOLDEN") != nullptr) {
    std::ofstream os(golden_path, std::ios::binary);
    os << rec.json << "\n";
  }
  // The golden pins the wire format: a byte change here is a schema change
  // and must be intentional (regen + bump stash.run_record).
  EXPECT_EQ(rec.json + "\n", read_file(golden_path));
}

TEST(Archive, AppendListAndContentDedup) {
  TempDir td;
  Archive ar(td.sub("arch"));

  IndexEntry e1 = ar.append(inputs_for(3.0));
  IndexEntry e2 = ar.append(inputs_for(3.0));  // identical content
  IndexEntry e3 = ar.append(inputs_for(9.0));

  EXPECT_EQ(e1.seq, 1u);
  EXPECT_EQ(e2.seq, 2u);
  EXPECT_EQ(e3.seq, 3u);
  EXPECT_EQ(e1.id, e2.id);  // content-addressed
  EXPECT_NE(e1.id, e3.id);

  // Two distinct record files, three index lines.
  std::size_t files = 0;
  for (const auto& p : fs::directory_iterator(td.sub("arch") + "/records"))
    if (p.path().extension() == ".json") ++files;
  EXPECT_EQ(files, 2u);

  std::vector<IndexEntry> entries = ar.list();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].seq, 1u);
  EXPECT_EQ(entries[1].id, e1.id);
  EXPECT_EQ(entries[2].model, "resnet18");
  EXPECT_EQ(entries[2].group_key, e1.group_key);

  // read_raw/load agree with the built record.
  EXPECT_EQ(ar.read_raw(e1.id), build_record(inputs_for(3.0)).json + "\n");
  EXPECT_EQ(ar.load(e3.id).get("id").as_string(), e3.id);
}

TEST(Archive, IdenticalAppendSequencesAreByteIdentical) {
  // The unit-level form of the --jobs guarantee: two archives built from
  // the same append sequence hold identical bytes, file for file.
  TempDir td;
  for (const char* name : {"a", "b"}) {
    Archive ar(td.sub(name));
    ar.append(inputs_for(3.0));
    ar.append(inputs_for(9.0));
    ar.append(inputs_for(3.0));
  }
  EXPECT_EQ(read_file(td.sub("a") + "/index.jsonl"),
            read_file(td.sub("b") + "/index.jsonl"));
  for (const auto& p : fs::directory_iterator(td.sub("a") + "/records")) {
    const std::string name = p.path().filename().string();
    EXPECT_EQ(read_file(p.path().string()),
              read_file(td.sub("b") + "/records/" + name))
        << name;
  }
}

TEST(Archive, SkipsTornTrailingIndexLine) {
  TempDir td;
  Archive ar(td.sub("arch"));
  ar.append(inputs_for(3.0));
  IndexEntry e2 = ar.append(inputs_for(9.0));

  // Simulate the documented crash window: a torn final line (no newline,
  // truncated JSON).
  {
    std::ofstream os(td.sub("arch") + "/index.jsonl",
                     std::ios::binary | std::ios::app);
    os << "{\"seq\":3,\"id\":\"dead";
  }
  std::vector<IndexEntry> entries = ar.list();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[1].id, e2.id);

  // The next append recovers: seq continues from the surviving entries.
  IndexEntry e3 = ar.append(inputs_for(12.0));
  EXPECT_EQ(e3.seq, 3u);
  EXPECT_EQ(ar.list().size(), 3u);
}

TEST(Archive, SkipsCorruptMidIndexLineAndKeepsTheRest) {
  TempDir td;
  Archive ar(td.sub("arch"));
  IndexEntry e1 = ar.append(inputs_for(3.0));
  IndexEntry e2 = ar.append(inputs_for(9.0));

  // Corrupt the middle of the index by hand: line 2 becomes garbage.
  const std::string path = td.sub("arch") + "/index.jsonl";
  std::string index = read_file(path);
  const std::size_t first_eol = index.find('\n');
  ASSERT_NE(first_eol, std::string::npos);
  std::string mangled = index.substr(0, first_eol + 1) + "not json at all\n" +
                        index.substr(first_eol + 1);
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << mangled;
  }
  std::vector<IndexEntry> entries = ar.list();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].id, e1.id);
  EXPECT_EQ(entries[1].id, e2.id);
}

TEST(Archive, ResolvesSeqAndIdPrefix) {
  TempDir td;
  Archive ar(td.sub("arch"));
  IndexEntry e1 = ar.append(inputs_for(3.0));
  IndexEntry e2 = ar.append(inputs_for(9.0));

  EXPECT_EQ(ar.resolve("1").id, e1.id);
  EXPECT_EQ(ar.resolve("2").id, e2.id);
  EXPECT_EQ(ar.resolve(e1.id).seq, 1u);
  EXPECT_EQ(ar.resolve(e2.id.substr(0, 6)).id, e2.id);

  EXPECT_THROW(ar.resolve("7"), std::runtime_error);       // unknown seq
  EXPECT_THROW(ar.resolve("zzzz9999"), std::runtime_error);  // unknown prefix
  EXPECT_THROW(ar.resolve(e1.id.substr(0, 3)), std::runtime_error);  // short
  EXPECT_THROW(ar.resolve(""), std::runtime_error);

  // A prefix shared by two *identical* ids (the dedup case) is not
  // ambiguous — it names one record.
  ar.append(inputs_for(3.0));
  EXPECT_EQ(ar.resolve(e1.id.substr(0, 4)).id, e1.id);
}

TEST(Archive, ResolveRejectsOverflowingSeqWithUsableError) {
  TempDir td;
  Archive ar(td.sub("arch"));
  ar.append(inputs_for(3.0));

  // All-digit refs wider than uint64 used to escape as std::out_of_range
  // from std::stoull ("stash_cli runs show 99999999999999999999999" crashed
  // with an uncaught exception). They must fail like any other unknown run.
  const std::string huge = "99999999999999999999999";
  try {
    ar.resolve(huge);
    FAIL() << "expected resolve('" << huge << "') to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("no archived run"), std::string::npos)
        << e.what();
  }
  // Exactly UINT64_MAX parses but names no run: same clean error.
  EXPECT_THROW(ar.resolve("18446744073709551615"), std::runtime_error);
  // Mixed digit/letter refs are id prefixes, never seq lookups.
  EXPECT_THROW(ar.resolve("99999999999999999999999x"), std::runtime_error);
}

TEST(Archive, AppendRequiresManifest) {
  TempDir td;
  Archive ar(td.sub("arch"));
  RecordInputs in = inputs_for(3.0);
  in.manifest_json.clear();
  EXPECT_THROW(ar.append(in), std::runtime_error);
}

TEST(MetricUnit, InfersFromSuffix) {
  EXPECT_EQ(metric_unit("fetch_stall_pct"), "percent");
  EXPECT_EQ(metric_unit("epoch_seconds"), "seconds");
  EXPECT_EQ(metric_unit("ddl/iter/total_s"), "seconds");
  EXPECT_EQ(metric_unit("epoch_cost_usd"), "usd");
  EXPECT_EQ(metric_unit("coll/ring/bytes_sent"), "count");
  EXPECT_EQ(metric_unit("hw/link/bytes_carried"), "count");
  EXPECT_EQ(metric_unit("link_bytes"), "bytes");
  EXPECT_EQ(metric_unit("sim/events_executed"), "count");
}

TEST(PrimaryStallReport, PrefersDirectThenFaultedThenNull) {
  util::JsonValue direct = util::json_parse(
      R"({"manifest":{"stall_report":{"fetch_stall_pct":3},)"
      R"("fault_report":{"faulted":{"fetch_stall_pct":9}}}})");
  EXPECT_EQ(primary_stall_report(direct).get("fetch_stall_pct").as_double(),
            3.0);

  util::JsonValue faulted = util::json_parse(
      R"({"manifest":{"fault_report":{"faulted":{"fetch_stall_pct":9}}}})");
  EXPECT_EQ(primary_stall_report(faulted).get("fetch_stall_pct").as_double(),
            9.0);

  util::JsonValue neither = util::json_parse(R"({"manifest":{}})");
  EXPECT_TRUE(primary_stall_report(neither).is_null());
}

}  // namespace
}  // namespace stash::archive
