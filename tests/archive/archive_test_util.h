// Shared fixtures for the run-archive tests: a self-cleaning temp
// directory (every gtest instance runs as its own ctest process, so each
// needs its own archive dir) and hand-authored manifest documents whose
// bytes are stable forever — unlike profiler output, they can never drift
// under model changes, which is what makes the golden tests golden.
#pragma once

#include <stdlib.h>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "archive/archive.h"
#include "util/json.h"

namespace stash::archive {

class TempDir {
 public:
  TempDir() {
    std::string tmpl =
        (std::filesystem::temp_directory_path() / "stash_archive.XXXXXX")
            .string();
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    char* p = ::mkdtemp(buf.data());
    path_ = p != nullptr ? p : tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::string& path() const { return path_; }
  std::string sub(const std::string& name) const { return path_ + "/" + name; }

 private:
  std::string path_;
};

// A stash.run_manifest/1 document (pre-provenance schema): the archive must
// keep reading records written before the /2 bump.
inline std::string manifest_v1(double fetch_pct, double epoch_s = 100.0) {
  util::JsonWriter w;
  w.begin_object();
  w.key("schema").value("stash.run_manifest/1");
  w.key("tool").value("stash");
  w.key("command").value("profile");
  w.key("config").begin_object();
  w.key("model").value("resnet18");
  w.key("instance").value("p3.2xlarge");
  w.key("batch").value("32");
  w.end_object();
  w.key("stall_report").begin_object();
  w.key("has_network_step").value(false);
  w.key("ic_stall_pct").value(1.5);
  w.key("nw_stall_pct").value(0.0);
  w.key("prep_stall_pct").value(2.0);
  w.key("fetch_stall_pct").value(fetch_pct);
  w.key("fault_stall_pct").value(0.0);
  w.key("epoch_seconds").value(epoch_s);
  w.key("epoch_cost_usd").value(epoch_s * 0.01);
  w.end_object();
  w.end_object();
  return w.str();
}

// Inputs for one synthetic profile record in the default test group.
inline RecordInputs inputs_for(double fetch_pct,
                               const std::string& prefetch = "4") {
  RecordInputs in;
  in.command = "profile";
  in.model = "resnet18";
  in.dataset = "imagenet-1k";
  in.instance = "p3.2xlarge";
  in.count = 1;
  in.batch = 32;
  in.config = {{"model", "resnet18"},
               {"instance", "p3.2xlarge"},
               {"batch", "32"},
               {"prefetch", prefetch}};
  in.manifest_json = manifest_v1(fetch_pct);
  return in;
}

}  // namespace stash::archive
