// Cross-run drift scan: a mid-series fetch-stall regression must be
// flagged with the right signal, direction, and onset run; a quiet archive
// must stay quiet; reports must be byte-deterministic; and records written
// under both manifest schema versions must scan together.
#include "archive/drift.h"

#include <string>

#include <gtest/gtest.h>

#include "archive_test_util.h"
#include "util/json.h"

namespace stash::archive {
namespace {

// 3 baseline runs + 2 regressed runs in one group: the acceptance-criteria
// series shape (regression introduced before run 4).
void fill_step_archive(Archive& ar) {
  for (int i = 0; i < 3; ++i) ar.append(inputs_for(3.0));
  for (int i = 0; i < 2; ++i) ar.append(inputs_for(25.0));
}

TEST(ScanArchive, FlagsInjectedFetchRegressionWithOnsetRun) {
  TempDir td;
  Archive ar(td.sub("arch"));
  fill_step_archive(ar);

  DriftReport r = scan_archive(ar);
  ASSERT_EQ(r.groups.size(), 1u);
  EXPECT_EQ(r.groups[0].runs, 5u);
  EXPECT_EQ(r.groups[0].model, "resnet18");

  // Exactly the injected category, nothing else.
  ASSERT_EQ(r.findings.size(), 1u);
  const DriftFinding& f = r.findings[0];
  EXPECT_EQ(f.signal, "fetch_stall_pct");
  EXPECT_EQ(f.unit, "percent");
  EXPECT_TRUE(f.increase);
  EXPECT_EQ(f.detectors, "cusum+ewma");  // both detectors, merged
  EXPECT_EQ(f.onset_seq, 4u);
  EXPECT_EQ(f.detect_seq, 4u);
  EXPECT_EQ(f.onset_id, ar.resolve("4").id);
  EXPECT_EQ(f.baseline_mean, 3.0);
  EXPECT_EQ(f.observed, 25.0);
  EXPECT_EQ(f.delta, 22.0);
  EXPECT_GT(f.magnitude_sigma, 3.0);
}

TEST(ScanArchive, QuietArchiveReportsNoFindings) {
  TempDir td;
  Archive ar(td.sub("arch"));
  for (int i = 0; i < 5; ++i) ar.append(inputs_for(3.0));

  DriftReport r = scan_archive(ar);
  ASSERT_EQ(r.groups.size(), 1u);
  EXPECT_EQ(r.groups[0].runs, 5u);
  EXPECT_TRUE(r.findings.empty());
  // Constant-but-present signals were still scanned...
  bool scanned_fetch = false, scanned_nw = false;
  for (const auto& s : r.groups[0].signals) {
    if (s == "fetch_stall_pct") scanned_fetch = true;
    if (s == "nw_stall_pct") scanned_nw = true;
  }
  EXPECT_TRUE(scanned_fetch);
  // ...but N/W is gated off when the report has no network step.
  EXPECT_FALSE(scanned_nw);
}

TEST(ScanArchive, ShortGroupsCannotAlarm) {
  TempDir td;
  Archive ar(td.sub("arch"));
  // 3 runs = baseline only: the whole series is swallowed by the baseline.
  ar.append(inputs_for(3.0));
  ar.append(inputs_for(3.0));
  ar.append(inputs_for(25.0));

  DriftReport r = scan_archive(ar);
  ASSERT_EQ(r.groups.size(), 1u);
  EXPECT_TRUE(r.findings.empty());
  EXPECT_TRUE(r.groups[0].signals.empty());  // nothing had > baseline runs
}

TEST(ScanArchive, GroupsAreIndependentTimeSeries) {
  TempDir td;
  Archive ar(td.sub("arch"));
  // Interleave a second, quiet group with the regressing one.
  RecordInputs other = inputs_for(3.0);
  other.instance = "p3.16xlarge";
  for (int i = 0; i < 3; ++i) {
    ar.append(inputs_for(3.0));
    ar.append(other);
  }
  ar.append(inputs_for(25.0));
  ar.append(other);
  ar.append(inputs_for(25.0));

  DriftReport r = scan_archive(ar);
  ASSERT_EQ(r.groups.size(), 2u);  // first-seen order
  EXPECT_EQ(r.groups[0].instance, "p3.2xlarge");
  EXPECT_EQ(r.groups[0].runs, 5u);
  EXPECT_EQ(r.groups[1].instance, "p3.16xlarge");
  EXPECT_EQ(r.groups[1].runs, 4u);

  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].instance, "p3.2xlarge");
  // Onset in *archive* seq: the 4th run of the regressing group is the
  // interleaved archive's seq 7.
  EXPECT_EQ(r.findings[0].onset_seq, 7u);
}

TEST(ScanArchive, MixedManifestSchemasScanTogether) {
  TempDir td;
  Archive ar(td.sub("arch"));
  // Three /1-manifest baseline records, then two /2-manifest regressed
  // records: the reader must treat both schema versions as one series.
  for (int i = 0; i < 3; ++i) ar.append(inputs_for(3.0));
  for (int i = 0; i < 2; ++i) {
    RecordInputs in = inputs_for(25.0);
    in.manifest_json =
        R"({"schema":"stash.run_manifest/2","tool":"stash",)"
        R"("provenance":{"git_sha":"abc123def456","git_dirty":false,)"
        R"("compiler_id":"GNU","compiler_version":"12.2.0",)"
        R"("build_type":"Release","schemas":["stash.run_manifest/2"]},)"
        R"("command":"profile","config":{"model":"resnet18"},)"
        R"("stall_report":{"has_network_step":false,"ic_stall_pct":1.5,)"
        R"("nw_stall_pct":0,"prep_stall_pct":2,"fetch_stall_pct":25,)"
        R"("fault_stall_pct":0,"epoch_seconds":100,"epoch_cost_usd":1}})";
    ar.append(in);
  }

  DriftReport r = scan_archive(ar);
  ASSERT_EQ(r.groups.size(), 1u);
  EXPECT_EQ(r.groups[0].runs, 5u);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].signal, "fetch_stall_pct");
  EXPECT_EQ(r.findings[0].onset_seq, 4u);
}

TEST(DriftToJson, IsValidDeterministicStashRunsDocument) {
  TempDir td;
  Archive ar(td.sub("arch"));
  fill_step_archive(ar);

  const std::string json = drift_to_json(scan_archive(ar));
  EXPECT_EQ(drift_to_json(scan_archive(ar)), json);  // byte-deterministic

  util::JsonValue doc = util::json_parse(json);
  EXPECT_EQ(doc.get("schema").as_string(), "stash.runs/1");
  EXPECT_EQ(doc.get("mode").as_string(), "drift");
  EXPECT_EQ(doc.get("detector").get("baseline_runs").as_int(), 3);
  ASSERT_EQ(doc.get("groups").size(), 1u);
  EXPECT_EQ(doc.get("groups").at(0).get("runs").as_int(), 5);
  ASSERT_EQ(doc.get("findings").size(), 1u);
  const util::JsonValue& f = doc.get("findings").at(0);
  EXPECT_EQ(f.get("signal").as_string(), "fetch_stall_pct");
  EXPECT_EQ(f.get("direction").as_string(), "increase");
  EXPECT_EQ(f.get("onset_seq").as_int(), 4);

  // No filesystem paths leak into the document (portable across archives).
  EXPECT_EQ(json.find(td.path()), std::string::npos);
}

TEST(DriftToOpenMetrics, EmitsLabeledGauges) {
  TempDir td;
  Archive ar(td.sub("arch"));
  fill_step_archive(ar);

  const std::string om = drift_to_openmetrics(scan_archive(ar));
  EXPECT_NE(om.find("# TYPE stash_runs_archive_runs gauge\n"),
            std::string::npos);
  EXPECT_NE(
      om.find("stash_runs_archive_runs{model=\"resnet18\","
              "dataset=\"imagenet-1k\",instance=\"p3.2xlarge\","
              "count=\"1\",batch=\"32\"} 5\n"),
      std::string::npos);
  EXPECT_NE(om.find("signal=\"fetch_stall_pct\",direction=\"increase\","
                    "detectors=\"cusum+ewma\"} 1\n"),
            std::string::npos);
  EXPECT_NE(om.find("stash_runs_drift_onset_seq{"), std::string::npos);
  EXPECT_NE(om.find("} 4\n"), std::string::npos);
  EXPECT_NE(om.find("stash_runs_drift_delta{"), std::string::npos);
  EXPECT_NE(om.find("} 22\n"), std::string::npos);
}

}  // namespace
}  // namespace stash::archive
