// Structural run-diff tests: stall deltas, config joins, metric joins with
// absent sides, and the folded-stack differential format.
#include "archive/diff.h"

#include <string>

#include <gtest/gtest.h>

#include "archive_test_util.h"
#include "util/json.h"

namespace stash::archive {
namespace {

struct LoadedPair {
  IndexEntry ea, eb;
  util::JsonValue a, b;
};

LoadedPair load_pair(const RecordInputs& ia, const RecordInputs& ib) {
  TempDir td;
  Archive ar(td.sub("arch"));
  LoadedPair p;
  p.ea = ar.append(ia);
  p.eb = ar.append(ib);
  p.a = ar.load(p.ea.id);
  p.b = ar.load(p.eb.id);
  return p;
}

TEST(DiffRecords, StallDeltasAndConfigChanges) {
  LoadedPair p = load_pair(inputs_for(3.0), inputs_for(9.5, "1"));
  RunDiff d = diff_records(p.ea, p.a, p.eb, p.b);

  EXPECT_TRUE(d.same_group);
  ASSERT_TRUE(d.has_stalls);
  ASSERT_EQ(d.stalls.size(), 5u);  // ic, nw, prep, fetch, fault — in order
  EXPECT_EQ(d.stalls[0].category, "ic");
  EXPECT_EQ(d.stalls[3].category, "fetch");
  EXPECT_EQ(d.stalls[3].a_pct, 3.0);
  EXPECT_EQ(d.stalls[3].b_pct, 9.5);
  EXPECT_EQ(d.stalls[3].delta_pct, 6.5);
  EXPECT_EQ(d.stalls[0].delta_pct, 0.0);

  // Only the differing config key surfaces. (The archived manifest config
  // here omits prefetch, but the record-level config still feeds the
  // config_key, so the two records are distinct.)
  EXPECT_NE(p.ea.id, p.eb.id);

  // epoch scalars joined from the stall reports.
  bool saw_epoch = false;
  for (const auto& m : d.metrics) {
    if (m.name != "epoch_seconds") continue;
    saw_epoch = true;
    EXPECT_EQ(m.unit, "seconds");
    EXPECT_TRUE(m.a_present);
    EXPECT_TRUE(m.b_present);
    EXPECT_EQ(m.delta, 0.0);
  }
  EXPECT_TRUE(saw_epoch);
}

TEST(DiffRecords, ManifestConfigJoin) {
  RecordInputs ia = inputs_for(3.0);
  RecordInputs ib = inputs_for(3.0);
  // Differing + one-sided manifest config keys.
  ia.manifest_json =
      R"({"schema":"stash.run_manifest/1","config":)"
      R"({"model":"resnet18","prefetch":"4","only_a":"x"}})";
  ib.manifest_json =
      R"({"schema":"stash.run_manifest/1","config":)"
      R"({"model":"resnet18","prefetch":"1"}})";
  LoadedPair p = load_pair(ia, ib);
  RunDiff d = diff_records(p.ea, p.a, p.eb, p.b);

  EXPECT_FALSE(d.has_stalls);  // neither manifest carries a stall report
  ASSERT_EQ(d.config_changes.size(), 2u);  // sorted by key
  EXPECT_EQ(d.config_changes[0].key, "only_a");
  EXPECT_TRUE(d.config_changes[0].a_present);
  EXPECT_FALSE(d.config_changes[0].b_present);
  EXPECT_EQ(d.config_changes[1].key, "prefetch");
  EXPECT_EQ(d.config_changes[1].a, "4");
  EXPECT_EQ(d.config_changes[1].b, "1");
}

TEST(DiffRecords, FoldedStackUnionAndText) {
  RecordInputs ia = inputs_for(3.0);
  ia.folded = "m0;gpu0;forward;compute 100\nm0;gpu0;h2d;pcie 40\n";
  RecordInputs ib = inputs_for(9.0);
  ib.folded = "m0;gpu0;forward;compute 65\nm0;gpu0;fetch;storage 25\n";
  LoadedPair p = load_pair(ia, ib);
  RunDiff d = diff_records(p.ea, p.a, p.eb, p.b);

  ASSERT_TRUE(d.has_folded);
  ASSERT_EQ(d.folded.size(), 3u);  // union, sorted by stack
  EXPECT_EQ(d.folded[0].stack, "m0;gpu0;fetch;storage");
  EXPECT_EQ(d.folded[0].a_us, 0.0);
  EXPECT_EQ(d.folded[0].b_us, 25.0);
  EXPECT_EQ(d.folded[1].stack, "m0;gpu0;forward;compute");
  EXPECT_EQ(d.folded[1].delta_us, -35.0);
  EXPECT_EQ(d.folded[2].stack, "m0;gpu0;h2d;pcie");
  EXPECT_EQ(d.folded[2].delta_us, -40.0);

  EXPECT_EQ(diff_to_folded(d),
            "m0;gpu0;fetch;storage 25 +25\n"
            "m0;gpu0;forward;compute 65 -35\n"
            "m0;gpu0;h2d;pcie 0 -40\n");
}

TEST(DiffToJson, IsValidDeterministicStashRunsDocument) {
  RecordInputs ia = inputs_for(3.0);
  ia.folded = "m0;x 10\n";
  RecordInputs ib = inputs_for(9.0, "1");
  ib.folded = "m0;x 30\n";
  LoadedPair p = load_pair(ia, ib);
  RunDiff d = diff_records(p.ea, p.a, p.eb, p.b);

  const std::string json = diff_to_json(d);
  util::JsonValue doc = util::json_parse(json);
  EXPECT_EQ(doc.get("schema").as_string(), "stash.runs/1");
  EXPECT_EQ(doc.get("mode").as_string(), "diff");
  EXPECT_TRUE(doc.get("same_group").as_bool());
  EXPECT_EQ(doc.get("a").get("seq").as_int(), 1);
  EXPECT_EQ(doc.get("b").get("seq").as_int(), 2);
  ASSERT_TRUE(doc.has("stalls"));
  EXPECT_EQ(doc.get("stalls").at(3).get("delta_pct").as_double(), 6.0);
  ASSERT_TRUE(doc.has("folded_diff"));
  EXPECT_EQ(doc.get("folded_diff").at(0).get("delta_us").as_double(), 20.0);

  // Same inputs, same bytes — the determinism the CI smoke cmp relies on.
  EXPECT_EQ(diff_to_json(diff_records(p.ea, p.a, p.eb, p.b)), json);
}

TEST(DiffRecords, AbsentMetricSidesSerializeAsNull) {
  RecordInputs ia = inputs_for(3.0);
  RecordInputs ib = inputs_for(3.0);
  ib.manifest_json =
      R"({"schema":"stash.run_manifest/1","config":{},)"
      R"("estimate":{"total_seconds":1200,"total_cost_usd":4.5}})";
  LoadedPair p = load_pair(ia, ib);
  RunDiff d = diff_records(p.ea, p.a, p.eb, p.b);

  util::JsonValue doc = util::json_parse(diff_to_json(d));
  bool saw_total = false;
  for (const auto& m : doc.get("metrics").items()) {
    if (m.get("name").as_string() != "total_seconds") continue;
    saw_total = true;
    EXPECT_TRUE(m.get("a").is_null());
    EXPECT_EQ(m.get("b").as_double(), 1200.0);
    EXPECT_EQ(m.get("delta").as_double(), 0.0);  // one-sided: no delta
  }
  EXPECT_TRUE(saw_total);
}

}  // namespace
}  // namespace stash::archive
