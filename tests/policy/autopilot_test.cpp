#include "policy/autopilot.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "dnn/zoo.h"
#include "exec/exec_context.h"
#include "faults/fault_plan.h"

namespace stash::policy {
namespace {

// Small pinned configuration: two spot machines of one instance type, a
// two-point candidate ladder for migrate targets, few epochs/trials. The
// engine measures every shape through the SimCache, so the suite stays fast.
AutopilotOptions fast_options(exec::ExecContext* exec) {
  AutopilotOptions opt;
  opt.epochs = 3;
  opt.trials = 2;
  opt.plan_trials = 6;
  opt.initial_spec = profiler::ClusterSpec{"p3.8xlarge", 2};
  opt.initial_spot_machines = 2;
  opt.candidates = {profiler::ClusterSpec{"p3.8xlarge", 1},
                    profiler::ClusterSpec{"p3.8xlarge", 2}};
  opt.profile.exec = exec;
  return opt;
}

TEST(Autopilot, ValidatesOptions) {
  AutopilotOptions opt;
  opt.epochs = 0;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  opt = AutopilotOptions{};
  opt.trials = 0;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  opt = AutopilotOptions{};
  opt.floor_machines = 0;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  opt = AutopilotOptions{};
  opt.max_retries = 0;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  opt = AutopilotOptions{};
  opt.watchdog_timeout_s = -1.0;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  opt = AutopilotOptions{};
  opt.watchdog_timeout_s = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  opt = AutopilotOptions{};
  opt.watchdog_timeout_s = std::numeric_limits<double>::infinity();
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  opt = AutopilotOptions{};
  opt.nw_blame_threshold = 1.5;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  opt = AutopilotOptions{};
  opt.backoff_base_s = 0.0;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  opt = AutopilotOptions{};
  EXPECT_NO_THROW(opt.validate());
}

TEST(Autopilot, ParsePolicyRoundTrip) {
  for (PolicyKind k :
       {PolicyKind::kHold, PolicyKind::kShrink, PolicyKind::kFallback,
        PolicyKind::kMigrate, PolicyKind::kAdaptive})
    EXPECT_EQ(parse_policy(to_string(k)), k);
  EXPECT_THROW(parse_policy("panic"), std::invalid_argument);
}

// The no-replan baseline IS the hold policy: running the autopilot with
// policy=hold must reproduce the baseline numbers bit-for-bit (same trace,
// same decisions — regret bookkeeping must not perturb the run).
TEST(Autopilot, HoldPolicyMatchesBaseline) {
  exec::ExecContext exec(4);
  AutopilotOptions opt = fast_options(&exec);
  opt.policy = PolicyKind::kHold;
  opt.spot.interruptions_per_hour = 3.0;
  AutopilotReport r = run_autopilot(dnn::make_zoo_model("resnet18"),
                                    dnn::dataset_for("resnet18"), opt);
  ASSERT_EQ(r.trials.size(), 2u);
  int revocations = 0;
  for (const TrialResult& tr : r.trials) {
    EXPECT_DOUBLE_EQ(tr.achieved_wall_s, tr.baseline_wall_s);
    EXPECT_DOUBLE_EQ(tr.achieved_cost_usd, tr.baseline_cost_usd);
    revocations += tr.revocations;
  }
  // A storm rate over a multi-hour run must actually revoke machines.
  EXPECT_GT(revocations, 0);
  EXPECT_EQ(r.trials_beating_baseline_wall, 0);
  EXPECT_EQ(r.trials_beating_baseline_cost, 0);
}

// Acceptance criterion: in a stormy market the adaptive policy beats the
// no-replan baseline on cost in at least one trial, and its per-decision
// regret against the trace-aware oracle is recorded and non-negative.
TEST(Autopilot, AdaptiveBeatsHoldBaselineInStorm) {
  exec::ExecContext exec(4);
  AutopilotOptions opt = fast_options(&exec);
  opt.policy = PolicyKind::kAdaptive;
  opt.trials = 3;
  opt.spot.interruptions_per_hour = 3.0;
  AutopilotReport r = run_autopilot(dnn::make_zoo_model("resnet18"),
                                    dnn::dataset_for("resnet18"), opt);
  EXPECT_GE(r.trials_beating_baseline_cost, 1)
      << "adaptive mean $" << r.mean_achieved_cost_usd << " vs baseline $"
      << r.mean_baseline_cost_usd;
  int decisions = 0;
  for (const TrialResult& tr : r.trials) {
    EXPECT_GE(tr.total_regret, 0.0);
    EXPECT_GT(tr.oracle_cost_usd, 0.0);
    for (const Decision& d : tr.decisions) {
      ++decisions;
      EXPECT_GE(d.regret, 0.0);
      if (d.trigger == Trigger::kRevocation && !d.forced_floor)
        // Every revocation decision weighed hold plus at least one
        // alternative, each with a finite rollout objective.
        EXPECT_GE(d.candidates.size(), 2u);
      for (const CandidateEval& c : d.candidates)
        EXPECT_TRUE(std::isfinite(c.objective));
    }
  }
  EXPECT_GT(decisions, 0);
  EXPECT_GE(r.mean_regret, 0.0);
}

// Fleet-below-k edge: a scripted revocation that would shrink below
// min_machines forces the graceful-degradation floor instead of aborting.
TEST(Autopilot, ShrinkBelowMinMachinesForcesFloor) {
  exec::ExecContext exec(4);
  AutopilotOptions opt = fast_options(&exec);
  opt.policy = PolicyKind::kShrink;
  opt.spot.interruptions_per_hour = 0.0;
  opt.min_machines = 2;
  opt.scripted_faults = faults::FaultPlan::parse("crash@1200:m1:r600");
  AutopilotReport r = run_autopilot(dnn::make_zoo_model("resnet18"),
                                    dnn::dataset_for("resnet18"), opt);
  for (const TrialResult& tr : r.trials) {
    EXPECT_EQ(tr.scheduled_crashes, 1);
    EXPECT_TRUE(tr.degraded_to_floor);
    ASSERT_FALSE(tr.decisions.empty());
    const Decision& d = tr.decisions.front();
    EXPECT_TRUE(d.forced_floor);
    EXPECT_EQ(d.action, Action::kFloor);
    // The floor is pure on-demand: no spot exposure in the final fleet.
    EXPECT_NE(tr.final_fleet.find("[od]"), std::string::npos) << tr.final_fleet;
  }
  EXPECT_EQ(r.trials_degraded_to_floor, static_cast<int>(r.trials.size()));
}

// Bounded retry: back-to-back scripted revocations escalate the exponential
// backoff and, past max_retries, force the floor — the run still terminates
// with every machine revocation accounted for.
TEST(Autopilot, RepeatedRevocationsEscalateBackoffThenFloor) {
  exec::ExecContext exec(4);
  AutopilotOptions opt = fast_options(&exec);
  opt.policy = PolicyKind::kHold;
  opt.spot.interruptions_per_hour = 0.0;
  opt.max_retries = 2;
  opt.backoff_base_s = 60.0;
  opt.backoff_window_s = 3600.0;
  opt.scripted_faults = faults::FaultPlan::parse(
      "crash@900:m0:r300;crash@1000:m1:r300;crash@1100:m0:r300;"
      "crash@1200:m1:r300");
  AutopilotReport r = run_autopilot(dnn::make_zoo_model("resnet18"),
                                    dnn::dataset_for("resnet18"), opt);
  for (const TrialResult& tr : r.trials) {
    EXPECT_TRUE(tr.degraded_to_floor);
    bool backoff_seen = false;
    bool floor_seen = false;
    int max_consecutive = 0;
    for (const Decision& d : tr.decisions) {
      backoff_seen |= d.backoff_s > 0.0;
      floor_seen |= d.forced_floor;
      max_consecutive = std::max(max_consecutive, d.consecutive_revocations);
    }
    EXPECT_TRUE(backoff_seen);
    EXPECT_TRUE(floor_seen);
    EXPECT_GT(max_consecutive, opt.max_retries);
    // Once on the floor there is no spot exposure left, so the remaining
    // scripted crashes cannot fire: decisions stop at the forced floor.
    EXPECT_TRUE(tr.decisions.back().forced_floor);
  }
}

// A scripted straggler window fires its own trigger (and, like every
// scenario, completes).
TEST(Autopilot, StragglerWindowTriggersDecision) {
  exec::ExecContext exec(4);
  AutopilotOptions opt = fast_options(&exec);
  opt.policy = PolicyKind::kAdaptive;
  opt.spot.interruptions_per_hour = 0.0;
  opt.scripted_faults = faults::FaultPlan::parse("straggler@600+1800:w0:x2.0");
  AutopilotReport r = run_autopilot(dnn::make_zoo_model("resnet18"),
                                    dnn::dataset_for("resnet18"), opt);
  for (const TrialResult& tr : r.trials) {
    bool straggler = false;
    for (const Decision& d : tr.decisions)
      straggler |= d.trigger == Trigger::kStraggler;
    EXPECT_TRUE(straggler);
    EXPECT_GT(tr.achieved_wall_s, 0.0);
  }
}

TEST(Autopilot, ParseTriggerModeRoundTrip) {
  EXPECT_EQ(parse_trigger_mode("threshold"), TriggerMode::kThreshold);
  EXPECT_EQ(parse_trigger_mode("detector"), TriggerMode::kDetector);
  EXPECT_THROW(parse_trigger_mode("oracle"), std::invalid_argument);
  EXPECT_EQ(std::string(to_string(TriggerMode::kDetector)), "detector");
}

// Detector mode delays the straggler announcement by the monitor CUSUM's
// detection latency — the decision fires after the window opens, carries
// the latency, and the run still completes with non-negative regret across
// the whole policy suite.
TEST(Autopilot, DetectorTriggersDelayStragglerAndKeepRegretNonNegative) {
  for (PolicyKind policy :
       {PolicyKind::kHold, PolicyKind::kShrink, PolicyKind::kFallback,
        PolicyKind::kMigrate, PolicyKind::kAdaptive}) {
    exec::ExecContext exec(4);
    AutopilotOptions opt = fast_options(&exec);
    opt.policy = policy;
    opt.spot.interruptions_per_hour = policy == PolicyKind::kShrink ? 1.0 : 0.0;
    opt.trigger_mode = TriggerMode::kDetector;
    opt.scripted_faults = faults::FaultPlan::parse("straggler@600+1800:w0:x2.0");
    AutopilotReport r = run_autopilot(dnn::make_zoo_model("resnet18"),
                                      dnn::dataset_for("resnet18"), opt);
    for (const TrialResult& tr : r.trials) {
      EXPECT_GE(tr.total_regret, 0.0) << to_string(policy);
      EXPECT_GT(tr.achieved_wall_s, 0.0) << to_string(policy);
      for (const Decision& d : tr.decisions)
        if (d.trigger == Trigger::kStraggler) {
          EXPECT_GT(d.time_s, 600.0) << to_string(policy);
          EXPECT_GT(d.detect_latency_iters, 0) << to_string(policy);
          EXPECT_NEAR(d.time_s, 600.0 + d.detect_delay_s, 1.0)
              << to_string(policy);
        }
    }
  }
}

// Threshold mode (the default) must announce the window the instant it
// opens and never stamp a detection latency — the pre-detector behavior.
TEST(Autopilot, ThresholdTriggersAnnounceImmediately) {
  exec::ExecContext exec(4);
  AutopilotOptions opt = fast_options(&exec);
  opt.policy = PolicyKind::kAdaptive;
  opt.spot.interruptions_per_hour = 0.0;
  opt.scripted_faults = faults::FaultPlan::parse("straggler@600+1800:w0:x2.0");
  AutopilotReport r = run_autopilot(dnn::make_zoo_model("resnet18"),
                                    dnn::dataset_for("resnet18"), opt);
  for (const TrialResult& tr : r.trials)
    for (const Decision& d : tr.decisions)
      if (d.trigger == Trigger::kStraggler) {
        EXPECT_NEAR(d.time_s, 600.0, 1e-6);
        EXPECT_EQ(d.detect_latency_iters, 0);
        EXPECT_EQ(d.detect_delay_s, 0.0);
      }
}

// A window shorter than the detector's latency is a blip the monitor never
// confirms: detector mode must not announce it at all.
TEST(Autopilot, DetectorModeSkipsWindowsShorterThanLatency) {
  exec::ExecContext exec(4);
  AutopilotOptions opt = fast_options(&exec);
  opt.policy = PolicyKind::kAdaptive;
  opt.spot.interruptions_per_hour = 0.0;
  opt.trigger_mode = TriggerMode::kDetector;
  // Tiny shift (x1.01) over a short window: the CUSUM needs many shifted
  // iterations to accumulate past h, more than the window holds.
  opt.scripted_faults = faults::FaultPlan::parse("straggler@600+2:w0:x1.01");
  AutopilotReport r = run_autopilot(dnn::make_zoo_model("resnet18"),
                                    dnn::dataset_for("resnet18"), opt);
  for (const TrialResult& tr : r.trials)
    for (const Decision& d : tr.decisions)
      EXPECT_NE(d.trigger, Trigger::kStraggler);
}

// Detector mode keeps the jobs-invariance promise.
TEST(Autopilot, DetectorModeJobsInvariant) {
  dnn::Model model = dnn::make_zoo_model("resnet18");
  dnn::Dataset dataset = dnn::dataset_for("resnet18");
  auto run_with = [&](int jobs) {
    exec::ExecContext exec(jobs);
    AutopilotOptions opt = fast_options(&exec);
    opt.trigger_mode = TriggerMode::kDetector;
    opt.spot.interruptions_per_hour = 2.0;
    opt.scripted_faults = faults::FaultPlan::parse("straggler@600+900:w0:x2.0");
    return to_json(run_autopilot(model, dataset, opt));
  };
  EXPECT_EQ(run_with(1), run_with(8));
}

// The CLI promise: byte-identical JSON for every jobs value, and for
// repeated runs with the same seed.
TEST(Autopilot, JobsInvarianceByteIdenticalJson) {
  dnn::Model model = dnn::make_zoo_model("resnet18");
  dnn::Dataset dataset = dnn::dataset_for("resnet18");

  exec::ExecContext serial(1);
  AutopilotOptions o1 = fast_options(&serial);
  o1.spot.interruptions_per_hour = 2.0;
  o1.scripted_faults = faults::FaultPlan::parse("straggler@600+900:w0:x2.0");
  std::string j1 = to_json(run_autopilot(model, dataset, o1));

  exec::ExecContext wide(8);
  AutopilotOptions o8 = fast_options(&wide);
  o8.spot.interruptions_per_hour = 2.0;
  o8.scripted_faults = faults::FaultPlan::parse("straggler@600+900:w0:x2.0");
  std::string j8 = to_json(run_autopilot(model, dataset, o8));
  EXPECT_EQ(j1, j8);

  std::string j8b = to_json(run_autopilot(model, dataset, o8));
  EXPECT_EQ(j8, j8b);
}

}  // namespace
}  // namespace stash::policy
