#include "cloud/network_qos.h"

#include <gtest/gtest.h>

#include "cloud/builder.h"
#include "cloud/instance.h"
#include "sim/simulator.h"
#include "util/units.h"

namespace stash::cloud {
namespace {

using util::gbps;

struct Fixture {
  sim::Simulator sim;
  hw::FlowNetwork net{sim};
  std::unique_ptr<hw::Cluster> cluster;

  explicit Fixture(int machines) {
    cluster = std::make_unique<hw::Cluster>(
        net, sim, cluster_configs_for(instance("p3.8xlarge"), machines),
        fabric_bandwidth());
  }
};

TEST(UpdateCapacity, ResharesInFlightFlows) {
  sim::Simulator sim;
  hw::FlowNetwork net(sim);
  hw::Link* l = net.add_link("l", 100.0);
  double done = -1;
  std::vector<hw::Link*> path{l};
  auto proc = [&]() -> sim::Task<void> {
    co_await net.transfer(1000.0, path);
    done = sim.now();
  };
  sim.spawn(proc());
  // Halve the capacity at t=5: 500 B done, remaining 500 B at 50 B/s.
  sim.schedule(5.0, [&] { net.update_capacity(l, 50.0); });
  sim.run();
  EXPECT_NEAR(done, 15.0, 1e-9);
}

TEST(UpdateCapacity, RaisingCapacitySpeedsFlow) {
  sim::Simulator sim;
  hw::FlowNetwork net(sim);
  hw::Link* l = net.add_link("l", 100.0);
  double done = -1;
  std::vector<hw::Link*> path{l};
  auto proc = [&]() -> sim::Task<void> {
    co_await net.transfer(1000.0, path);
    done = sim.now();
  };
  sim.spawn(proc());
  sim.schedule(5.0, [&] { net.update_capacity(l, 500.0); });
  sim.run();
  EXPECT_NEAR(done, 6.0, 1e-9);
}

TEST(UpdateCapacity, InvalidArgsThrow) {
  sim::Simulator sim;
  hw::FlowNetwork net(sim);
  hw::Link* l = net.add_link("l", 100.0);
  EXPECT_THROW(net.update_capacity(nullptr, 10.0), std::invalid_argument);
  EXPECT_THROW(net.update_capacity(l, 0.0), std::invalid_argument);
}

TEST(NetworkQos, ShapesNicCapacityWithinBounds) {
  Fixture f(2);
  NetworkQosConfig cfg;
  cfg.horizon = 5.0;
  cfg.update_interval = 0.1;
  cfg.min_fraction = 0.4;
  cfg.max_fraction = 0.9;
  apply_network_qos(f.sim, f.net, *f.cluster, cfg);
  double nominal = instance("p3.8xlarge").network_bw;
  hw::Link* nic = f.cluster->machine(0).nic_tx();
  bool observed_change = false;
  for (int i = 1; i <= 40; ++i) {
    f.sim.schedule(i * 0.125, [&, nominal] {
      double c = nic->capacity();
      EXPECT_GE(c, 0.4 * nominal - 1.0);
      EXPECT_LE(c, 0.9 * nominal + 1.0);
      if (c < 0.95 * nominal) observed_change = true;
    });
  }
  f.sim.run();
  EXPECT_TRUE(observed_change);
  // Restored after the horizon.
  EXPECT_NEAR(nic->capacity(), nominal, 1.0);
}

TEST(NetworkQos, DeterministicPerSeed) {
  auto trajectory = [](std::uint64_t seed) {
    Fixture f(2);
    NetworkQosConfig cfg;
    cfg.horizon = 2.0;
    cfg.update_interval = 0.1;
    cfg.seed = seed;
    apply_network_qos(f.sim, f.net, *f.cluster, cfg);
    std::vector<double> caps;
    hw::Link* nic = f.cluster->machine(1).nic_rx();
    for (int i = 1; i <= 15; ++i)
      f.sim.schedule(i * 0.11, [&] { caps.push_back(nic->capacity()); });
    f.sim.run();
    return caps;
  };
  EXPECT_EQ(trajectory(7), trajectory(7));
  EXPECT_NE(trajectory(7), trajectory(8));
}

TEST(NetworkQos, SingleMachineWithNicStillShaped) {
  Fixture f(1);
  NetworkQosConfig cfg;
  cfg.horizon = 1.0;
  EXPECT_NO_THROW(apply_network_qos(f.sim, f.net, *f.cluster, cfg));
  f.sim.run();
  EXPECT_TRUE(f.sim.all_processes_done());
}

TEST(NetworkQos, InvalidConfigsThrow) {
  Fixture f(2);
  NetworkQosConfig cfg;
  cfg.mean_fraction = 0.0;
  EXPECT_THROW(apply_network_qos(f.sim, f.net, *f.cluster, cfg),
               std::invalid_argument);
  cfg = NetworkQosConfig{};
  cfg.update_interval = 0.0;
  EXPECT_THROW(apply_network_qos(f.sim, f.net, *f.cluster, cfg),
               std::invalid_argument);
  cfg = NetworkQosConfig{};
  cfg.min_fraction = 0.9;
  cfg.max_fraction = 0.5;
  EXPECT_THROW(apply_network_qos(f.sim, f.net, *f.cluster, cfg),
               std::invalid_argument);
}

}  // namespace
}  // namespace stash::cloud
