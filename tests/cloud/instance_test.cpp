#include "cloud/instance.h"

#include <gtest/gtest.h>

#include "util/units.h"

namespace stash::cloud {
namespace {

using util::gbps;
using util::gib;

TEST(Catalog, HasAllTableOneRows) {
  const auto& cat = instance_catalog();
  EXPECT_EQ(cat.size(), 8u);
  for (const char* name :
       {"p2.xlarge", "p2.8xlarge", "p2.16xlarge", "p3.2xlarge", "p3.8xlarge",
        "p3.16xlarge", "p3.24xlarge", "p4d.24xlarge"})
    EXPECT_NO_THROW(instance(name)) << name;
}

TEST(Catalog, UnknownThrows) {
  EXPECT_THROW(instance("g4dn.xlarge"), std::invalid_argument);
}

// Table I spot checks: GPUs, vCPUs, memory, network, price.
TEST(Catalog, P2SpecsMatchTableOne) {
  const auto& x = instance("p2.xlarge");
  EXPECT_EQ(x.num_gpus, 1);
  EXPECT_EQ(x.vcpus, 4);
  EXPECT_DOUBLE_EQ(x.price_per_hour, 0.90);
  EXPECT_EQ(x.gpu.name, "K80");

  const auto& big = instance("p2.16xlarge");
  EXPECT_EQ(big.num_gpus, 16);
  EXPECT_EQ(big.vcpus, 64);
  EXPECT_NEAR(big.main_memory, gib(732), 1.0);
  EXPECT_NEAR(big.network_bw, gbps(25), 1.0);
  EXPECT_DOUBLE_EQ(big.price_per_hour, 14.40);
}

TEST(Catalog, P3SpecsMatchTableOne) {
  const auto& two = instance("p3.2xlarge");
  EXPECT_EQ(two.num_gpus, 1);
  EXPECT_DOUBLE_EQ(two.price_per_hour, 3.06);
  EXPECT_NEAR(two.gpu_memory_total, gib(16), 1.0);

  const auto& eight = instance("p3.8xlarge");
  EXPECT_EQ(eight.num_gpus, 4);
  EXPECT_DOUBLE_EQ(eight.price_per_hour, 12.24);
  EXPECT_EQ(eight.interconnect, hw::InterconnectKind::kPcieNvlink);

  const auto& sixteen = instance("p3.16xlarge");
  EXPECT_EQ(sixteen.num_gpus, 8);
  EXPECT_DOUBLE_EQ(sixteen.price_per_hour, 24.48);
  EXPECT_NEAR(sixteen.network_bw, gbps(25), 1.0);

  const auto& twentyfour = instance("p3.24xlarge");
  EXPECT_EQ(twentyfour.num_gpus, 8);
  EXPECT_DOUBLE_EQ(twentyfour.price_per_hour, 31.218);
  EXPECT_NEAR(twentyfour.network_bw, gbps(100), 1.0);
  EXPECT_TRUE(twentyfour.dedicated);
  // 32 GiB V100s: twice the per-GPU memory of the 16xlarge.
  EXPECT_NEAR(twentyfour.gpu.memory_bytes, gib(32), 1.0);
}

TEST(Catalog, SameHostBridgeAcrossP2Sizes) {
  // The paper's Fig 7 explanation: 8xlarge and 16xlarge share the same
  // aggregate PCIe bandwidth.
  EXPECT_DOUBLE_EQ(instance("p2.8xlarge").host_bridge_bw,
                   instance("p2.16xlarge").host_bridge_bw);
}

TEST(Catalog, SameNvlinkAcross16And24xlarge) {
  // §V-B1: "both the 16xlarge and the 24xlarge use the same NVLink
  // interconnect hardware".
  EXPECT_DOUBLE_EQ(instance("p3.16xlarge").nvlink_bw,
                   instance("p3.24xlarge").nvlink_bw);
}

TEST(Cost, PerSecondBilling) {
  const auto& t = instance("p3.16xlarge");
  EXPECT_NEAR(cost_usd(t, 3600.0), 24.48, 1e-9);
  EXPECT_NEAR(cost_usd(t, 1800.0, 2), 24.48, 1e-9);
  EXPECT_NEAR(cost_usd(t, 0.0), 0.0, 1e-12);
}

TEST(Cost, InvalidArgsThrow) {
  const auto& t = instance("p2.xlarge");
  EXPECT_THROW(cost_usd(t, -1.0), std::invalid_argument);
  EXPECT_THROW(cost_usd(t, 10.0, 0), std::invalid_argument);
}

TEST(Catalog, PriceOrderingWithinFamilies) {
  EXPECT_LT(instance("p2.xlarge").price_per_hour, instance("p2.8xlarge").price_per_hour);
  EXPECT_LT(instance("p2.8xlarge").price_per_hour,
            instance("p2.16xlarge").price_per_hour);
  EXPECT_LT(instance("p3.2xlarge").price_per_hour, instance("p3.8xlarge").price_per_hour);
  EXPECT_LT(instance("p3.16xlarge").price_per_hour,
            instance("p3.24xlarge").price_per_hour);
}

}  // namespace
}  // namespace stash::cloud
