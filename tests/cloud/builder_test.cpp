#include "cloud/builder.h"

#include <gtest/gtest.h>

#include "cloud/allocation.h"
#include "sim/simulator.h"

namespace stash::cloud {
namespace {

TEST(Builder, ConfigCarriesSpecs) {
  auto cfg = machine_config_for(instance("p2.16xlarge"));
  EXPECT_EQ(cfg.num_gpus, 16);
  EXPECT_EQ(cfg.vcpus, 64);
  EXPECT_EQ(cfg.interconnect, hw::InterconnectKind::kPcieOnly);
  EXPECT_GT(cfg.ssd_bw, 0.0);
}

TEST(Builder, FragmentedSliceHasPcieHop) {
  sim::Simulator sim;
  hw::FlowNetwork net(sim);
  auto cfg = machine_config_for(instance("p3.8xlarge"), CrossbarSlice::kFragmented);
  hw::Machine m(net, sim, cfg, 0);
  EXPECT_EQ(m.ring_pcie_hops(), 1);
}

TEST(Builder, FullQuadSliceHasNvlinkRing) {
  sim::Simulator sim;
  hw::FlowNetwork net(sim);
  auto cfg = machine_config_for(instance("p3.8xlarge"), CrossbarSlice::kFullQuad);
  hw::Machine m(net, sim, cfg, 0);
  EXPECT_EQ(m.ring_pcie_hops(), 0);
}

TEST(Builder, SixteenXlargeAlwaysFullMesh) {
  sim::Simulator sim;
  hw::FlowNetwork net(sim);
  auto cfg = machine_config_for(instance("p3.16xlarge"), CrossbarSlice::kFragmented);
  hw::Machine m(net, sim, cfg, 0);
  EXPECT_EQ(m.ring_pcie_hops(), 0);  // slice only affects 4-GPU types
}

TEST(Builder, ClusterConfigsReplicate) {
  auto configs = cluster_configs_for(instance("p3.8xlarge"), 2);
  ASSERT_EQ(configs.size(), 2u);
  EXPECT_EQ(configs[0].num_gpus, configs[1].num_gpus);
}

TEST(Builder, InvalidCountThrows) {
  EXPECT_THROW(cluster_configs_for(instance("p2.xlarge"), 0), std::invalid_argument);
}

TEST(Allocation, SliceAdjacencyShapes) {
  auto full = slice_nvlink_pairs(CrossbarSlice::kFullQuad);
  EXPECT_EQ(full.size(), 6u);  // complete K4
  auto frag = slice_nvlink_pairs(CrossbarSlice::kFragmented);
  EXPECT_EQ(frag.size(), 4u);  // triangle + pendant
}

TEST(Allocation, PolicyIsProbabilistic) {
  AllocationPolicy policy;
  policy.full_quad_probability = 0.5;
  util::Rng rng(1234);
  int full = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i)
    if (policy.sample(rng) == CrossbarSlice::kFullQuad) ++full;
  EXPECT_NEAR(static_cast<double>(full) / trials, 0.5, 0.05);
}

TEST(Allocation, ExtremePolicies) {
  util::Rng rng(1);
  AllocationPolicy never{0.0};
  AllocationPolicy always{1.0};
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(never.sample(rng), CrossbarSlice::kFragmented);
    EXPECT_EQ(always.sample(rng), CrossbarSlice::kFullQuad);
  }
}

TEST(Builder, FabricFasterThanAnyNic) {
  for (const auto& t : instance_catalog()) EXPECT_GE(fabric_bandwidth(), t.network_bw);
}

}  // namespace
}  // namespace stash::cloud
