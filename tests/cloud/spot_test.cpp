#include "cloud/spot.h"

#include <gtest/gtest.h>

namespace stash::cloud {
namespace {

const InstanceType& p3_16() { return instance("p3.16xlarge"); }

SpotConfig no_interruptions() {
  SpotConfig cfg;
  cfg.interruptions_per_hour = 0.0;
  return cfg;
}

TEST(Spot, ZeroRateMatchesOnDemandTimeAtSpotPrice) {
  util::Rng rng(1);
  SpotConfig cfg = no_interruptions();
  double work = 3600.0;
  SpotOutcome o = simulate_spot_run(work, p3_16(), 1, cfg, rng);
  // Only checkpoint writes inflate wall time: 3 full intervals of 900 s
  // inside one hour of work -> 3 writes of 20 s.
  EXPECT_NEAR(o.wall_seconds, work + 3 * cfg.checkpoint_write_s, 1e-9);
  EXPECT_EQ(o.interruptions, 0);
  EXPECT_NEAR(o.cost_usd,
              cost_usd(p3_16(), o.wall_seconds, 1) * cfg.price_factor, 1e-9);
}

TEST(Spot, InterruptionsInflateWallTime) {
  SpotConfig calm = no_interruptions();
  SpotConfig stormy;
  stormy.interruptions_per_hour = 2.0;
  util::Rng r1(7), r2(7);
  double work = 4.0 * 3600.0;
  SpotOutcome quiet = simulate_spot_run(work, p3_16(), 1, calm, r1);
  SpotOutcome rough = simulate_spot_run(work, p3_16(), 1, stormy, r2);
  EXPECT_GT(rough.wall_seconds, quiet.wall_seconds);
  EXPECT_GT(rough.interruptions, 0);
  EXPECT_GT(rough.lost_work_seconds, 0.0);
}

TEST(Spot, CheaperThanOnDemandAtTypicalRates) {
  SpotConfig cfg;  // defaults: 0.3 price factor, 0.2 interruptions/hour
  SpotOutcome o = mean_spot_outcome(6.0 * 3600.0, p3_16(), 1, cfg, 42);
  double on_demand = cost_usd(p3_16(), 6.0 * 3600.0, 1);
  EXPECT_LT(o.cost_usd, on_demand);
}

TEST(Spot, FrequentCheckpointsBoundLoss) {
  SpotConfig coarse;
  coarse.interruptions_per_hour = 1.0;
  coarse.checkpoint_interval_s = 3600.0;
  SpotConfig fine = coarse;
  fine.checkpoint_interval_s = 300.0;
  SpotOutcome o_coarse = mean_spot_outcome(8 * 3600.0, p3_16(), 1, coarse, 9, 40);
  SpotOutcome o_fine = mean_spot_outcome(8 * 3600.0, p3_16(), 1, fine, 9, 40);
  EXPECT_LT(o_fine.lost_work_seconds, o_coarse.lost_work_seconds);
}

TEST(Spot, DeterministicPerSeed) {
  SpotConfig cfg;
  SpotOutcome a = mean_spot_outcome(3600.0, p3_16(), 2, cfg, 5, 10);
  SpotOutcome b = mean_spot_outcome(3600.0, p3_16(), 2, cfg, 5, 10);
  EXPECT_DOUBLE_EQ(a.wall_seconds, b.wall_seconds);
  EXPECT_DOUBLE_EQ(a.cost_usd, b.cost_usd);
}

TEST(Spot, ZeroWorkCompletesInstantly) {
  util::Rng rng(3);
  SpotOutcome o = simulate_spot_run(0.0, p3_16(), 1, SpotConfig{}, rng);
  EXPECT_DOUBLE_EQ(o.wall_seconds, 0.0);
  EXPECT_DOUBLE_EQ(o.cost_usd, 0.0);
}

TEST(Spot, InvalidArgsThrow) {
  util::Rng rng(1);
  SpotConfig cfg;
  EXPECT_THROW(simulate_spot_run(-1.0, p3_16(), 1, cfg, rng), std::invalid_argument);
  EXPECT_THROW(simulate_spot_run(1.0, p3_16(), 0, cfg, rng), std::invalid_argument);
  cfg.price_factor = 0.0;
  EXPECT_THROW(simulate_spot_run(1.0, p3_16(), 1, cfg, rng), std::invalid_argument);
  cfg = SpotConfig{};
  cfg.checkpoint_interval_s = 0.0;
  EXPECT_THROW(simulate_spot_run(1.0, p3_16(), 1, cfg, rng), std::invalid_argument);
  EXPECT_THROW(mean_spot_outcome(1.0, p3_16(), 1, SpotConfig{}, 1, 0),
               std::invalid_argument);
}

// Rate sweep: wall time grows monotonically (in expectation) with the
// interruption rate.
class RateSweep : public ::testing::TestWithParam<double> {};

TEST_P(RateSweep, WallTimeAtLeastWork) {
  SpotConfig cfg;
  cfg.interruptions_per_hour = GetParam();
  SpotOutcome o = mean_spot_outcome(2 * 3600.0, p3_16(), 1, cfg, 11, 30);
  EXPECT_GE(o.wall_seconds, 2 * 3600.0);
}

INSTANTIATE_TEST_SUITE_P(Rates, RateSweep, ::testing::Values(0.0, 0.1, 0.5, 1.0, 3.0));

// Fleet-below-k edge: when revocations outpace checkpoint progress the run
// must degrade to the on-demand floor and terminate, never spin forever.
TEST(Spot, ExtremeRateDegradesToOnDemandFloor) {
  SpotConfig cfg;
  cfg.interruptions_per_hour = 3600.0;  // mean gap 1 s vs a 900 s interval
  util::Rng rng(17);
  SpotOutcome o = simulate_spot_run(3600.0, p3_16(), 1, cfg, rng);
  EXPECT_TRUE(o.degraded_to_floor);
  EXPECT_GE(o.interruptions, 8);
  EXPECT_GT(o.floor_wall_seconds, 0.0);
  EXPECT_LE(o.floor_wall_seconds, o.wall_seconds);
  // The degraded tail is billed at the on-demand price, the spot portion
  // keeps the discount.
  double spot_wall = o.wall_seconds - o.floor_wall_seconds;
  EXPECT_NEAR(o.cost_usd,
              cost_usd(p3_16(), spot_wall, 1) * cfg.price_factor +
                  cost_usd(p3_16(), o.floor_wall_seconds, 1),
              1e-9);
}

TEST(Spot, TypicalRateNeverDegrades) {
  SpotConfig cfg;  // defaults: 0.2 interruptions/hour
  SpotOutcome o = mean_spot_outcome(6.0 * 3600.0, p3_16(), 1, cfg, 21, 20);
  EXPECT_FALSE(o.degraded_to_floor);
  EXPECT_DOUBLE_EQ(o.floor_wall_seconds, 0.0);
}

TEST(SpotConfig, DefaultsAreValid) { EXPECT_NO_THROW(SpotConfig{}.validate()); }

TEST(SpotConfig, ValidateRejectsNonsense) {
  util::Rng rng(1);
  auto run = [&rng](const SpotConfig& cfg) {
    return simulate_spot_run(100.0, p3_16(), 1, cfg, rng);
  };

  SpotConfig bad_price;
  bad_price.price_factor = 0.0;
  EXPECT_THROW(bad_price.validate(), std::invalid_argument);
  EXPECT_THROW(run(bad_price), std::invalid_argument);
  bad_price.price_factor = 1.5;
  EXPECT_THROW(bad_price.validate(), std::invalid_argument);

  SpotConfig bad_rate;
  bad_rate.interruptions_per_hour = -1.0;
  EXPECT_THROW(bad_rate.validate(), std::invalid_argument);
  EXPECT_THROW(run(bad_rate), std::invalid_argument);

  SpotConfig bad_restart;
  bad_restart.restart_overhead_s = -5.0;
  EXPECT_THROW(bad_restart.validate(), std::invalid_argument);

  SpotConfig bad_interval;
  bad_interval.checkpoint_interval_s = 0.0;
  EXPECT_THROW(bad_interval.validate(), std::invalid_argument);

  SpotConfig bad_write;
  bad_write.checkpoint_write_s = -1.0;
  EXPECT_THROW(bad_write.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace stash::cloud
