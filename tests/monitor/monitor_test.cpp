#include "monitor/monitor.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dnn/zoo.h"
#include "monitor/dashboard.h"
#include "monitor/driver.h"
#include "util/rng.h"
#include "util/trace.h"

namespace stash::monitor {
namespace {

MonitorConfig small_config() {
  MonitorConfig cfg;
  cfg.window = 16;
  cfg.detector.baseline_iters = 8;
  return cfg;
}

ddl::IterationSample make_sample(int iter, double total, double barrier,
                                 double data_wait = 0.0) {
  ddl::IterationSample s;
  s.iteration = iter;
  s.measured = true;
  s.start_s = iter * 0.1;
  s.end_s = iter * 0.1 + total;
  s.total_s = total;
  s.compute_s = total - barrier - data_wait;
  s.barrier_s = barrier;
  s.data_wait_s = data_wait;
  s.workers = 4;
  return s;
}

TEST(StallMonitor, BarrierStepChangeEmitsOneStragglerOnsetEvent) {
  StallMonitor mon(small_config());
  util::Rng rng(3);
  const int onset = 20;
  for (int i = 0; i < 40; ++i) {
    const double barrier =
        (i < onset ? 0.002 : 0.05) + rng.normal(0.0, 0.0002);
    mon.on_iteration(make_sample(i, 0.1 + barrier, barrier));
  }
  std::vector<MonitorEvent> straggler;
  for (const auto& ev : mon.events())
    if (ev.kind == EventKind::kStragglerOnset) straggler.push_back(ev);
  ASSERT_EQ(straggler.size(), 1u) << "cooldown should dedup the shift";
  EXPECT_EQ(straggler[0].signal, "barrier_s");
  EXPECT_NEAR(straggler[0].onset_iteration, onset, 2);
  EXPECT_LE(straggler[0].detect_iteration, onset + 5);
  EXPECT_EQ(straggler[0].latency_iterations,
            straggler[0].detect_iteration - straggler[0].onset_iteration);
}

TEST(StallMonitor, StationarySamplesProduceNoEvents) {
  StallMonitor mon(small_config());
  util::Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const double jitter = rng.normal(0.0, 0.001);
    mon.on_iteration(make_sample(i, 0.1 + jitter, 0.002));
  }
  EXPECT_TRUE(mon.events().empty());
}

TEST(StallMonitor, FoldBlameDetectsCommShareShift) {
  StallMonitor mon(small_config());
  // The comm-share stream needs a live sample stream too (snapshot sanity);
  // feed matching stationary samples.
  for (int i = 0; i < 60; ++i) {
    mon.on_iteration(make_sample(i, 0.1, 0.002));
    obs::IterationBlame b;
    b.iteration = i;
    b.measured = true;
    b.start_s = i * 0.1;
    b.end_s = i * 0.1 + 0.1;
    const double comm = i < 30 ? 0.01 : 0.05;  // share jumps 10% -> 50%
    b.by_category[static_cast<std::size_t>(obs::Category::kNetwork)] = comm;
    b.by_category[static_cast<std::size_t>(obs::Category::kCompute)] =
        0.1 - comm;
    mon.fold_blame(b);
  }
  bool shift = false;
  for (const auto& ev : mon.events())
    if (ev.kind == EventKind::kCommBlameShift && ev.signal == "comm_blame_share")
      shift = true;
  EXPECT_TRUE(shift);
  EXPECT_GT(mon.snapshot().comm_blame_share, 0.3);
}

TEST(StallMonitor, SnapshotSummarizesWindow) {
  StallMonitor mon(small_config());
  for (int i = 0; i < 32; ++i) mon.on_iteration(make_sample(i, 0.2, 0.01));
  const Snapshot snap = mon.snapshot();
  EXPECT_EQ(snap.iterations_seen, 32);
  EXPECT_EQ(snap.last_iteration, 31);
  EXPECT_NEAR(snap.total.mean, 0.2, 1e-9);
  EXPECT_NEAR(snap.total.p95, 0.2, 1e-9);
  EXPECT_NEAR(snap.barrier.mean, 0.01, 1e-9);
  // 16 retained ends spaced 0.1 s apart -> 10 it/s.
  EXPECT_NEAR(snap.window_iters_per_s, 10.0, 0.5);
}

TEST(Sparkline, MapsRangeOntoBlocks) {
  EXPECT_EQ(sparkline({}, 8), "");
  EXPECT_EQ(sparkline({1.0}, 8), "");
  const std::string s = sparkline({0.0, 1.0}, 8);
  EXPECT_EQ(s, "▁█");  // min block, max block
  // Constant series renders at the floor, one glyph per value.
  EXPECT_EQ(sparkline({2.0, 2.0, 2.0}, 8), "▁▁▁");
}

// --- driver-level tests (real training simulations; the slow part) -------

class MonitorDriverTest : public ::testing::Test {
 protected:
  MonitorOptions base_options() {
    MonitorOptions opts;
    opts.spec.instance = "p3.8xlarge";
    opts.per_gpu_batch = 16;
    opts.iterations = 48;
    opts.warmup_iterations = 2;
    opts.monitor = small_config();
    return opts;
  }
};

TEST_F(MonitorDriverTest, StragglerFaultYieldsOnsetEventWithinTwentyIters) {
  MonitorOptions opts = base_options();
  opts.faults_spec = "straggler@2+5:w1:x2.5";
  StallMonitor mon(opts.monitor);
  dnn::Model model = dnn::make_zoo_model("resnet50");
  MonitorRunReport report = run_monitor(model, dnn::dataset_for("resnet50"),
                                        opts, mon);
  ASSERT_FALSE(report.samples.empty());

  // The injected onset in iteration coordinates: the first committed sample
  // whose window reaches past t=2 s.
  int injected = -1;
  for (const auto& s : report.samples)
    if (s.end_s >= 2.0) {
      injected = s.iteration;
      break;
    }
  ASSERT_GE(injected, 0) << "run too short to reach the fault";

  const MonitorEvent* onset_ev = nullptr;
  for (const auto& ev : report.events)
    if (ev.kind == EventKind::kStragglerOnset) {
      onset_ev = &ev;
      break;
    }
  ASSERT_NE(onset_ev, nullptr) << "no straggler onset detected";
  EXPECT_GE(onset_ev->detect_iteration, injected - 1);
  EXPECT_LE(onset_ev->detect_iteration, injected + 20)
      << "detection latency exceeds the acceptance bound";
  EXPECT_NEAR(onset_ev->onset_iteration, injected, 3);
}

TEST_F(MonitorDriverTest, HealthyRunIsQuietAndJsonlWellFormed) {
  MonitorOptions opts = base_options();
  opts.iterations = 32;
  StallMonitor mon(opts.monitor);
  dnn::Model model = dnn::make_zoo_model("resnet50");
  MonitorRunReport report = run_monitor(model, dnn::dataset_for("resnet50"),
                                        opts, mon);
  // A healthy steady-state run must not raise throughput/straggler alarms
  // on the live signals (the zero-false-positive property end to end).
  EXPECT_EQ(report.live_events, 0u);

  const std::string jsonl = monitor_to_jsonl(report);
  std::size_t lines = 0, pos = 0;
  while (pos < jsonl.size()) {
    std::size_t nl = jsonl.find('\n', pos);
    ASSERT_NE(nl, std::string::npos) << "unterminated final line";
    const std::string line = jsonl.substr(pos, nl - pos);
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    ++lines;
    pos = nl + 1;
  }
  // header + one line per sample + events + recoveries + summary.
  EXPECT_EQ(lines, 1 + report.samples.size() + report.events.size() +
                       report.recoveries.size() + 1);
  EXPECT_NE(jsonl.find("\"schema\":\"stash.monitor/1\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"type\":\"summary\""), std::string::npos);
}

TEST_F(MonitorDriverTest, JsonlByteIdenticalAcrossRepeatedRuns) {
  MonitorOptions opts = base_options();
  opts.iterations = 24;
  opts.faults_spec = "straggler@1+2:w1:x2";
  dnn::Model model = dnn::make_zoo_model("resnet50");
  auto run_once = [&] {
    StallMonitor mon(opts.monitor);
    return monitor_to_jsonl(
        run_monitor(model, dnn::dataset_for("resnet50"), opts, mon));
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST_F(MonitorDriverTest, ExportersEmitWindowsInstantsAndMetrics) {
  MonitorOptions opts = base_options();
  opts.iterations = 36;
  opts.faults_spec = "straggler@2+4:w1:x2.5";
  StallMonitor mon(opts.monitor);
  dnn::Model model = dnn::make_zoo_model("resnet50");
  MonitorRunReport report = run_monitor(model, dnn::dataset_for("resnet50"),
                                        opts, mon);

  // Streaming OpenMetrics: one block per full window.
  const std::size_t expect_windows = report.samples.size() / opts.monitor.window;
  std::size_t blocks = 0, pos = 0;
  while ((pos = report.openmetrics.find("# window ", pos)) != std::string::npos) {
    ++blocks;
    pos += 9;
  }
  EXPECT_EQ(blocks, expect_windows);
  EXPECT_NE(report.openmetrics.find("# TYPE monitor_iter_total_mean_s gauge"),
            std::string::npos);

  // Chrome-trace instants: one per event.
  util::TraceRecorder trace;
  annotate_monitor_trace(report, trace);
  EXPECT_EQ(trace.instants().size(), report.events.size());

  // Registry summary.
  telemetry::MetricsRegistry reg;
  record_monitor_metrics(report, reg);
  const auto* c = reg.find_counter("monitor/events/straggler_onset");
  ASSERT_NE(c, nullptr);
  EXPECT_GE(c->value(), 1.0);
}

}  // namespace
}  // namespace stash::monitor
