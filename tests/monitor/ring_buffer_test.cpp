#include "monitor/ring_buffer.h"

#include <gtest/gtest.h>

namespace stash::monitor {
namespace {

TEST(RingBuffer, RejectsZeroCapacity) {
  EXPECT_THROW(RingBuffer<int>(0), std::invalid_argument);
}

TEST(RingBuffer, FillsThenEvictsOldestFirst) {
  RingBuffer<int> rb(3);
  EXPECT_TRUE(rb.empty());
  EXPECT_FALSE(rb.push(1));
  EXPECT_FALSE(rb.push(2));
  EXPECT_FALSE(rb.push(3));
  EXPECT_TRUE(rb.full());
  EXPECT_EQ(rb.front(), 1);
  EXPECT_EQ(rb.back(), 3);

  int evicted = 0;
  EXPECT_TRUE(rb.push(4, &evicted));
  EXPECT_EQ(evicted, 1);
  EXPECT_EQ(rb.size(), 3u);
  EXPECT_EQ(rb.at(0), 2);
  EXPECT_EQ(rb.at(1), 3);
  EXPECT_EQ(rb.at(2), 4);
}

TEST(RingBuffer, WraparoundKeepsOldestFirstOrderOverManyLaps) {
  RingBuffer<int> rb(5);
  // 4 full laps around the ring plus a partial one.
  for (int i = 0; i < 23; ++i) rb.push(i);
  ASSERT_EQ(rb.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_EQ(rb.at(i), 18 + static_cast<int>(i));
  EXPECT_EQ(rb.front(), 18);
  EXPECT_EQ(rb.back(), 22);
}

TEST(RingBuffer, EvictionSequenceMatchesInsertionOrder) {
  RingBuffer<int> rb(2);
  rb.push(10);
  rb.push(20);
  int e = -1;
  rb.push(30, &e);
  EXPECT_EQ(e, 10);
  rb.push(40, &e);
  EXPECT_EQ(e, 20);
  rb.push(50, &e);
  EXPECT_EQ(e, 30);
}

TEST(RingBuffer, AtOutOfRangeThrows) {
  RingBuffer<int> rb(4);
  rb.push(1);
  EXPECT_THROW(rb.at(1), std::out_of_range);
}

TEST(RingBuffer, ClearResets) {
  RingBuffer<int> rb(2);
  rb.push(1);
  rb.push(2);
  rb.push(3);  // wrapped
  rb.clear();
  EXPECT_TRUE(rb.empty());
  rb.push(7);
  EXPECT_EQ(rb.front(), 7);
  EXPECT_EQ(rb.size(), 1u);
}

}  // namespace
}  // namespace stash::monitor
