#include "monitor/detectors.h"

#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace stash::monitor {
namespace {

DetectorConfig quick_config() {
  DetectorConfig cfg;
  cfg.baseline_iters = 8;
  return cfg;
}

// A baseline regime with small seeded jitter followed by a step to a new
// level — the synthetic analogue of a straggler joining the ring.
std::vector<double> step_stream(int baseline_n, int shifted_n, double level0,
                                double level1, double jitter,
                                std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> out;
  for (int i = 0; i < baseline_n; ++i)
    out.push_back(level0 + rng.normal(0.0, jitter));
  for (int i = 0; i < shifted_n; ++i)
    out.push_back(level1 + rng.normal(0.0, jitter));
  return out;
}

TEST(DetectorConfig, Validates) {
  DetectorConfig cfg;
  EXPECT_NO_THROW(cfg.validate());
  cfg.baseline_iters = 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = DetectorConfig{};
  cfg.cusum_h = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = DetectorConfig{};
  cfg.ewma_lambda = 1.5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(CusumDetector, DetectsStepWithinFourSamplesAndEstimatesOnset) {
  CusumDetector det(quick_config());
  const int onset = 20;
  auto xs = step_stream(onset, 30, 1.0, 1.5, 0.02, 17);
  int fired_at = -1;
  Detection d;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    d = det.push(xs[i]);
    if (d.fired) {
      fired_at = static_cast<int>(i);
      break;
    }
  }
  ASSERT_GE(fired_at, onset) << "fired before the shift";
  EXPECT_LE(fired_at, onset + 4) << "detection latency too high";
  // Onset estimate: the sample after the last zero of the statistic.
  EXPECT_NEAR(static_cast<double>(d.onset_index), onset, 2.0);
  EXPECT_GT(d.magnitude_sigma, 0.0);
  EXPECT_NEAR(d.baseline_mean, 1.0, 0.05);
}

TEST(CusumDetector, NoFalsePositivesOnStationaryNoise) {
  // A genuinely noisy stream needs a baseline long enough to estimate sigma
  // honestly (the simulator's near-deterministic streams get by with 8) and
  // an alarm threshold matched to the desired in-control run length: h=6
  // puts the expected false-alarm spacing in the thousands of samples.
  DetectorConfig cfg = quick_config();
  cfg.baseline_iters = 32;
  cfg.cusum_h = 6.0;
  CusumDetector det(cfg);
  util::Rng rng(23);
  for (int i = 0; i < 400; ++i)
    EXPECT_FALSE(det.push(1.0 + rng.normal(0.0, 0.05)).fired)
        << "false alarm at sample " << i;
}

TEST(CusumDetector, ZeroVarianceBaselineUsesSigmaFloorAndStillFires) {
  CusumDetector det(quick_config());
  for (int i = 0; i < 8; ++i) EXPECT_FALSE(det.push(1.0).fired);
  EXPECT_GT(det.baseline_sigma(), 0.0);
  // A 10% jump over a perfectly flat baseline: min_sigma_frac (2% of the
  // mean) makes that a 5-sigma-per-step excursion.
  bool fired = false;
  for (int i = 0; i < 10 && !fired; ++i) fired = det.push(1.1).fired;
  EXPECT_TRUE(fired);
}

TEST(CusumDetector, ReArmsAndCatchesSecondShiftAgainstNewRegime) {
  CusumDetector det(quick_config());
  util::Rng rng(29);
  auto feed = [&](double level, int n, bool* fired, std::size_t* at) {
    for (int i = 0; i < n; ++i) {
      Detection d = det.push(level + rng.normal(0.0, 0.01));
      if (d.fired) {
        if (fired != nullptr) *fired = true;
        if (at != nullptr) *at = d.detect_index;
        return;
      }
    }
  };
  bool first = false, second = false;
  std::size_t at1 = 0, at2 = 0;
  feed(1.0, 20, nullptr, nullptr);
  feed(2.0, 20, &first, &at1);
  ASSERT_TRUE(first);
  // After the alarm the detector re-baselines on the 2.0 regime...
  feed(2.0, 20, nullptr, nullptr);
  // ...so a further shift to 3.0 is detected relative to 2.0.
  feed(3.0, 20, &second, &at2);
  EXPECT_TRUE(second);
  EXPECT_GT(at2, at1);
}

TEST(EwmaDrift, DetectsSlowDriftCusumAllowanceWouldAbsorbSlowly) {
  DetectorConfig cfg = quick_config();
  EwmaDrift det(cfg);
  util::Rng rng(31);
  for (int i = 0; i < 8; ++i)
    EXPECT_FALSE(det.push(1.0 + rng.normal(0.0, 0.05)).fired);
  // Slow upward creep: +0.3 sigma per step.
  bool fired = false;
  int fired_at = -1;
  for (int i = 0; i < 60 && !fired; ++i) {
    Detection d = det.push(1.0 + 0.015 * i + rng.normal(0.0, 0.05));
    fired = d.fired;
    fired_at = static_cast<int>(d.detect_index);
  }
  EXPECT_TRUE(fired);
  EXPECT_GT(fired_at, 8);
}

TEST(EwmaDrift, NoFalsePositivesOnStationaryNoise) {
  DetectorConfig cfg = quick_config();
  cfg.baseline_iters = 32;
  EwmaDrift det(cfg);
  util::Rng rng(37);
  for (int i = 0; i < 400; ++i)
    EXPECT_FALSE(det.push(1.0 + rng.normal(0.0, 0.05)).fired)
        << "false alarm at sample " << i;
}

TEST(Detectors, DeterministicAcrossRuns) {
  auto run = [] {
    CusumDetector det(quick_config());
    auto xs = step_stream(16, 16, 1.0, 1.4, 0.03, 41);
    std::vector<std::size_t> fires;
    for (std::size_t i = 0; i < xs.size(); ++i)
      if (det.push(xs[i]).fired) fires.push_back(i);
    return fires;
  };
  EXPECT_EQ(run(), run());
}

// ---------------------------------------------------------------------------
// Run-axis replay: the archive drift scanner feeds one sample per run.

TEST(ScanSeries, RunAxisConfigIsValidAndShortBaselined) {
  DetectorConfig cfg = run_axis_config();
  EXPECT_NO_THROW(cfg.validate());
  EXPECT_EQ(cfg.baseline_iters, 3u);  // archives are short series
}

TEST(ScanSeries, FlagsUpwardStepWithOnsetAtFirstShiftedSample) {
  // Three baseline runs at 10, then a regime at 25: the first shifted
  // sample (index 3) is both the onset and the alarm, and CUSUM + EWMA
  // agree on it.
  std::vector<double> xs = {10.0, 10.0, 10.0, 25.0, 25.0};
  auto findings = scan_series(xs, run_axis_config());
  ASSERT_FALSE(findings.empty());
  const SeriesFinding& f = findings.front();
  EXPECT_EQ(f.detector, SeriesFinding::Detector::kCusum);
  EXPECT_TRUE(f.increase);
  EXPECT_EQ(f.detection.onset_index, 3u);
  EXPECT_EQ(f.detection.detect_index, 3u);
  EXPECT_EQ(f.detection.baseline_mean, 10.0);
  EXPECT_EQ(f.detection.observed, 25.0);
  bool ewma_agrees = false;
  for (const auto& g : findings)
    if (g.detector == SeriesFinding::Detector::kEwma && g.increase &&
        g.detection.onset_index == 3u)
      ewma_agrees = true;
  EXPECT_TRUE(ewma_agrees);
}

TEST(ScanSeries, FlagsDownwardStepInRawUnits) {
  std::vector<double> xs = {25.0, 25.0, 25.0, 10.0, 10.0};
  auto findings = scan_series(xs, run_axis_config());
  ASSERT_FALSE(findings.empty());
  const SeriesFinding& f = findings.front();
  EXPECT_FALSE(f.increase);
  EXPECT_EQ(f.detection.onset_index, 3u);
  // The decrease CUSUM runs on the negated series; the detection must be
  // mapped back to raw units before callers see it.
  EXPECT_EQ(f.detection.baseline_mean, 25.0);
  EXPECT_EQ(f.detection.observed, 10.0);
}

TEST(ScanSeries, QuietSeriesYieldsNoFindings) {
  std::vector<double> xs(8, 10.0);
  EXPECT_TRUE(scan_series(xs, run_axis_config()).empty());
  // Shorter than baseline + 1: nothing can alarm either.
  EXPECT_TRUE(scan_series({10.0, 25.0}, run_axis_config()).empty());
}

TEST(ScanSeries, OrderIsDeterministic) {
  std::vector<double> xs = {10.0, 10.0, 10.0, 25.0, 25.0, 10.0, 10.0};
  auto a = scan_series(xs, run_axis_config());
  auto b = scan_series(xs, run_axis_config());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].detector, b[i].detector);
    EXPECT_EQ(a[i].increase, b[i].increase);
    EXPECT_EQ(a[i].detection.detect_index, b[i].detection.detect_index);
  }
  // Findings arrive sorted by detection index.
  for (std::size_t i = 1; i < a.size(); ++i)
    EXPECT_LE(a[i - 1].detection.detect_index, a[i].detection.detect_index);
}

}  // namespace
}  // namespace stash::monitor
