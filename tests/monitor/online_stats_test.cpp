#include "monitor/online_stats.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace stash::monitor {
namespace {

// Exact nearest-rank-with-interpolation-free oracle used by the P^2 checks:
// sort and index, the same convention P2Quantile::value uses under five
// samples.
double exact_quantile(std::vector<double> v, double q) {
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

TEST(RollingStats, MatchesDirectComputationAcrossWraparound) {
  const std::size_t window = 8;
  RollingStats stats(window);
  util::Rng rng(7);
  std::vector<double> all;
  for (int i = 0; i < 50; ++i) {
    const double x = rng.uniform(-5.0, 5.0);
    all.push_back(x);
    stats.push(x);

    const std::size_t first = all.size() > window ? all.size() - window : 0;
    double sum = 0.0, sum_sq = 0.0, mn = all[first], mx = all[first];
    for (std::size_t j = first; j < all.size(); ++j) {
      sum += all[j];
      sum_sq += all[j] * all[j];
      mn = std::min(mn, all[j]);
      mx = std::max(mx, all[j]);
    }
    const double n = static_cast<double>(all.size() - first);
    const double mean = sum / n;
    EXPECT_NEAR(stats.mean(), mean, 1e-12);
    if (n >= 2)
      EXPECT_NEAR(stats.variance(), sum_sq / n - mean * mean, 1e-9);
    EXPECT_DOUBLE_EQ(stats.min(), mn);
    EXPECT_DOUBLE_EQ(stats.max(), mx);
  }
  EXPECT_EQ(stats.count(), window);
}

TEST(RollingStats, VarianceClampedNonNegative) {
  RollingStats stats(4);
  for (int i = 0; i < 10; ++i) stats.push(1e9);  // cancellation territory
  EXPECT_GE(stats.variance(), 0.0);
}

TEST(P2Quantile, ExactUnderFiveSamples) {
  P2Quantile p50(0.5);
  p50.push(3.0);
  EXPECT_DOUBLE_EQ(p50.value(), 3.0);
  p50.push(1.0);
  p50.push(2.0);
  EXPECT_DOUBLE_EQ(p50.value(), 2.0);
}

TEST(P2Quantile, RejectsDegenerateQuantile) {
  EXPECT_THROW(P2Quantile(0.0), std::invalid_argument);
  EXPECT_THROW(P2Quantile(1.0), std::invalid_argument);
}

// The headline accuracy claim: the streaming estimate lands within a small
// tolerance of the exact-sort oracle on smooth distributions. Seeded, so
// these are fixed inputs, not a statistical test.
TEST(P2Quantile, TracksUniformOracle) {
  P2Quantile p50(0.5), p95(0.95);
  util::Rng rng(11);
  std::vector<double> all;
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.uniform(0.0, 1.0);
    all.push_back(x);
    p50.push(x);
    p95.push(x);
  }
  EXPECT_NEAR(p50.value(), exact_quantile(all, 0.5), 0.03);
  EXPECT_NEAR(p95.value(), exact_quantile(all, 0.95), 0.03);
}

TEST(P2Quantile, TracksNormalOracle) {
  P2Quantile p50(0.5), p95(0.95);
  util::Rng rng(13);
  std::vector<double> all;
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.normal(10.0, 2.0);
    all.push_back(x);
    p50.push(x);
    p95.push(x);
  }
  EXPECT_NEAR(p50.value(), exact_quantile(all, 0.5), 0.2);
  EXPECT_NEAR(p95.value(), exact_quantile(all, 0.95), 0.3);
}

TEST(P2Quantile, ShiftedStreamMovesEstimate) {
  P2Quantile p50(0.5);
  for (int i = 0; i < 100; ++i) p50.push(1.0);
  for (int i = 0; i < 300; ++i) p50.push(2.0);
  EXPECT_GT(p50.value(), 1.5);
}

TEST(Ewma, ConvergesToConstant) {
  Ewma e(0.2);
  for (int i = 0; i < 100; ++i) e.push(4.0);
  EXPECT_DOUBLE_EQ(e.value(), 4.0);
  // Startup correction approaches 1 as t grows.
  EXPECT_NEAR(e.limit_correction(), 1.0, 1e-9);
}

TEST(Ewma, FirstSampleSeedsValue) {
  Ewma e(0.1);
  e.push(7.0);
  EXPECT_DOUBLE_EQ(e.value(), 7.0);
}

}  // namespace
}  // namespace stash::monitor
