// Determinism of the parallel profiling engine: every user-visible artifact
// (stall report, metrics snapshot, run manifest) must be byte-identical
// whether the five steps run serially or fanned across a pool — the
// --jobs knob may change wall time, never results.
#include <gtest/gtest.h>

#include <string>

#include "dnn/zoo.h"
#include "exec/exec_context.h"
#include "stash/profiler.h"
#include "stash/recommend.h"
#include "telemetry/manifest.h"
#include "telemetry/metrics.h"

namespace stash::profiler {
namespace {

struct ProfileArtifacts {
  StallReport report;
  std::string metrics_json;
  std::string manifest_json;
};

ProfileArtifacts profile_with_jobs(int jobs) {
  // Private cache per run: a shared cache would let the second run coast on
  // the first's results and hide divergence in the compute path.
  exec::SimCache cache;
  exec::ExecContext ctx(jobs, &cache);
  telemetry::MetricsRegistry metrics;
  ProfileOptions opt;
  opt.iterations = 4;
  opt.warmup_iterations = 1;
  opt.exec = &ctx;
  opt.metrics = &metrics;
  StashProfiler prof(dnn::make_zoo_model("resnet18"), dnn::dataset_for("resnet18"),
                     opt);
  ClusterSpec spec;
  spec.instance = "p3.8xlarge";

  ProfileArtifacts out;
  out.report = prof.profile(spec, 32);
  // Volatile instruments (wall-clock derived) are legitimately jobs-
  // dependent; everything else must match to the byte.
  out.metrics_json = metrics.to_json(/*include_volatile=*/false);
  telemetry::RunManifest man;
  man.command = "profile";
  man.add_config("model", "resnet18");
  man.add_config("instance", spec.instance);
  man.metrics = &metrics;
  man.include_volatile_metrics = false;
  man.stall_report = out.report;
  out.manifest_json = man.to_json();
  return out;
}

TEST(ParallelProfile, ReportMetricsAndManifestAreJobsInvariant) {
  ProfileArtifacts serial = profile_with_jobs(1);
  ProfileArtifacts parallel = profile_with_jobs(8);

  // Bit-exact doubles, not just approximately equal: the steps simulate the
  // same scenarios with the same seeds regardless of which thread runs them.
  EXPECT_EQ(telemetry::to_json(serial.report), telemetry::to_json(parallel.report));
  EXPECT_EQ(serial.metrics_json, parallel.metrics_json);
  EXPECT_EQ(serial.manifest_json, parallel.manifest_json);
  EXPECT_GT(serial.report.epoch_seconds, 0.0);
  EXPECT_FALSE(serial.metrics_json.empty());
}

TEST(ParallelProfile, RepeatProfileIsServedFromCache) {
  exec::SimCache cache;
  exec::ExecContext ctx(2, &cache);
  ProfileOptions opt;
  opt.iterations = 4;
  opt.warmup_iterations = 1;
  opt.exec = &ctx;
  StashProfiler prof(dnn::make_zoo_model("alexnet"), dnn::dataset_for("alexnet"),
                     opt);
  ClusterSpec spec;
  spec.instance = "p3.2xlarge";

  StallReport first = prof.profile(spec, 32);
  std::uint64_t misses_after_first = cache.misses();
  EXPECT_GT(misses_after_first, 0u);

  StallReport again = prof.profile(spec, 32);
  EXPECT_EQ(cache.misses(), misses_after_first);  // nothing re-simulated
  EXPECT_GT(cache.hits(), 0u);
  EXPECT_EQ(telemetry::to_json(first), telemetry::to_json(again));
}

TEST(ParallelProfile, InstrumentedStepBypassesCache) {
  // A metrics-sinked run's side effects are the point: the instrumented
  // step must re-run even when its scenario is already cached.
  exec::SimCache cache;
  exec::ExecContext ctx(2, &cache);
  telemetry::MetricsRegistry metrics;
  ProfileOptions opt;
  opt.iterations = 4;
  opt.warmup_iterations = 1;
  opt.exec = &ctx;
  StashProfiler plain(dnn::make_zoo_model("alexnet"), dnn::dataset_for("alexnet"),
                      opt);
  ClusterSpec spec;
  spec.instance = "p3.2xlarge";
  plain.run_step(spec, Step::kRealWarm, 32);
  EXPECT_EQ(cache.misses(), 1u);

  opt.metrics = &metrics;
  StashProfiler sinked(dnn::make_zoo_model("alexnet"), dnn::dataset_for("alexnet"),
                       opt);
  sinked.run_step(spec, Step::kRealWarm, 32);
  // The sinked run neither consulted nor polluted the cache...
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.size(), 1u);
  // ...but really did run: the registry saw the simulation.
  EXPECT_FALSE(metrics.names().empty());
}

TEST(ParallelRecommend, RankingIsJobsInvariant) {
  auto run = [](int jobs) {
    exec::SimCache cache;
    exec::ExecContext ctx(jobs, &cache);
    RecommendOptions opt;
    opt.per_gpu_batch = 32;
    opt.profile.iterations = 4;
    opt.profile.warmup_iterations = 1;
    opt.profile.exec = &ctx;
    // A small candidate set keeps the test fast while still fanning out.
    opt.candidates = {ClusterSpec{"p3.2xlarge"}, ClusterSpec{"p3.8xlarge"},
                      ClusterSpec{"p3.16xlarge"}};
    return recommend(dnn::make_zoo_model("resnet18"), dnn::dataset_for("resnet18"),
                     opt);
  };
  auto serial = run(1);
  auto parallel = run(6);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].spec.label(), parallel[i].spec.label());
    EXPECT_EQ(serial[i].by_time, parallel[i].by_time);
    EXPECT_EQ(serial[i].by_cost, parallel[i].by_cost);
    EXPECT_EQ(telemetry::to_json(serial[i].report),
              telemetry::to_json(parallel[i].report));
  }
}

}  // namespace
}  // namespace stash::profiler
