#include "stash/session.h"

#include <gtest/gtest.h>

#include "dnn/zoo.h"

namespace stash::profiler {
namespace {

ProfileOptions fast_options() {
  ProfileOptions opt;
  opt.iterations = 3;
  opt.warmup_iterations = 1;
  return opt;
}

TEST(Session, FirstEpochSlowerThanSteady) {
  StashProfiler prof(dnn::make_zoo_model("alexnet"), dnn::imagenet_1k(),
                     fast_options());
  TrainingEstimate e = estimate_training(prof, ClusterSpec{"p2.16xlarge"}, 128, 10);
  EXPECT_GT(e.first_epoch_seconds, e.steady_epoch_seconds);
  EXPECT_NEAR(e.total_seconds,
              e.first_epoch_seconds + 9 * e.steady_epoch_seconds, 1e-6);
  EXPECT_GT(e.cold_start_overhead_pct, 0.0);
  EXPECT_GT(e.total_cost_usd, 0.0);
}

TEST(Session, ColdStartAmortizesWithEpochs) {
  StashProfiler prof(dnn::make_zoo_model("shufflenet"), dnn::imagenet_1k(),
                     fast_options());
  ClusterSpec spec{"p2.16xlarge"};
  TrainingEstimate e2 = estimate_training(prof, spec, 128, 2);
  TrainingEstimate e50 = estimate_training(prof, spec, 128, 50);
  EXPECT_GT(e2.cold_start_overhead_pct, e50.cold_start_overhead_pct);
}

TEST(Session, SingleEpochIsJustColdEpoch) {
  StashProfiler prof(dnn::make_zoo_model("resnet18"), dnn::imagenet_1k(),
                     fast_options());
  TrainingEstimate e = estimate_training(prof, ClusterSpec{"p3.8xlarge"}, 32, 1);
  EXPECT_NEAR(e.total_seconds, e.first_epoch_seconds, 1e-9);
}

TEST(Session, LabelsAndCostConsistent) {
  StashProfiler prof(dnn::make_zoo_model("resnet18"), dnn::imagenet_1k(),
                     fast_options());
  ClusterSpec spec{"p3.8xlarge", 2};
  TrainingEstimate e = estimate_training(prof, spec, 32, 3);
  EXPECT_EQ(e.config_label, "p3.8xlarge*2");
  EXPECT_NEAR(e.total_cost_usd,
              cloud::cost_usd(cloud::instance("p3.8xlarge"), e.total_seconds, 2),
              1e-9);
}

TEST(Session, InvalidEpochsThrow) {
  StashProfiler prof(dnn::make_zoo_model("resnet18"), dnn::imagenet_1k(),
                     fast_options());
  EXPECT_THROW(estimate_training(prof, ClusterSpec{"p3.8xlarge"}, 32, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace stash::profiler
