// Integration sweep: the Stash methodology's structural invariants must
// hold for every (model, configuration) cell the paper's macro
// characterization visits.
#include <gtest/gtest.h>

#include <cmath>

#include "dnn/zoo.h"
#include "stash/profiler.h"

namespace stash::profiler {
namespace {

ProfileOptions sweep_options() {
  ProfileOptions opt;
  opt.iterations = 3;
  opt.warmup_iterations = 1;
  return opt;
}

struct Cell {
  const char* model;
  const char* instance;
  int count;
  int batch;
};

class MacroSweep : public ::testing::TestWithParam<Cell> {};

TEST_P(MacroSweep, MethodologyInvariants) {
  const Cell& cell = GetParam();
  ClusterSpec spec{cell.instance, cell.count};
  StashProfiler profiler(dnn::make_zoo_model(cell.model),
                         dnn::dataset_for(cell.model), sweep_options());
  StallReport r = profiler.profile(spec, cell.batch);

  // Step ordering: communication and pipeline overheads only ever add.
  EXPECT_GE(r.t2, r.t1 - 1e-12) << "distributed must not beat single GPU";
  EXPECT_GE(r.t4, r.t2 - 1e-12) << "real data must not beat synthetic";
  EXPECT_GE(r.t3, r.t4 - 1e-12) << "cold cache must not beat warm";
  // Note: t5 >= t2 is deliberately NOT asserted. The paper's own headline
  // finding (Fig 6a) is that two NIC-connected p2.8xlarge beat one
  // p2.16xlarge: the network step can be FASTER than the single machine
  // when the machine's interconnect is the real bottleneck.
  if (r.has_network_step) {
    EXPECT_GT(r.t5, 0.0);
    EXPECT_TRUE(std::isfinite(r.t5));
  }

  // Stall percentages well-formed.
  for (double pct : {r.ic_stall_pct, r.nw_stall_pct, r.prep_stall_pct,
                     r.fetch_stall_pct}) {
    EXPECT_GE(pct, 0.0);
    EXPECT_TRUE(std::isfinite(pct));
  }
  EXPECT_LT(r.prep_stall_pct, 100.0);
  EXPECT_LT(r.fetch_stall_pct, 100.0);

  // Projections consistent and positive.
  EXPECT_GT(r.epoch_seconds, 0.0);
  EXPECT_GT(r.epoch_cost_usd, 0.0);
  EXPECT_EQ(r.gpus, spec.gpus_used());
}

INSTANTIATE_TEST_SUITE_P(
    PaperGrid, MacroSweep,
    ::testing::Values(
        // P2 family, small models (Figs 4-6).
        Cell{"alexnet", "p2.xlarge", 1, 32}, Cell{"alexnet", "p2.8xlarge", 1, 128},
        Cell{"alexnet", "p2.16xlarge", 1, 32}, Cell{"alexnet", "p2.8xlarge", 2, 32},
        Cell{"mobilenet-v2", "p2.16xlarge", 1, 64},
        Cell{"squeezenet", "p2.8xlarge", 1, 96},
        Cell{"shufflenet", "p2.16xlarge", 1, 128},
        Cell{"resnet18", "p2.8xlarge", 2, 32},
        // P3 family, small + large models (Figs 8-12).
        Cell{"resnet18", "p3.2xlarge", 1, 32}, Cell{"resnet18", "p3.8xlarge", 1, 32},
        Cell{"resnet18", "p3.16xlarge", 1, 128},
        Cell{"shufflenet", "p3.16xlarge", 1, 32},
        Cell{"resnet50", "p3.16xlarge", 1, 16}, Cell{"resnet50", "p3.24xlarge", 1, 64},
        Cell{"vgg11", "p3.8xlarge", 1, 16}, Cell{"vgg11", "p3.8xlarge", 2, 32},
        Cell{"bert-large", "p3.16xlarge", 1, 4},
        Cell{"bert-large", "p3.24xlarge", 1, 8}));

}  // namespace
}  // namespace stash::profiler
