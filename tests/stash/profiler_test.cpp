#include "stash/profiler.h"

#include <gtest/gtest.h>

#include <cmath>

#include "dnn/zoo.h"

namespace stash::profiler {
namespace {

ProfileOptions fast_options() {
  ProfileOptions opt;
  opt.iterations = 5;
  opt.warmup_iterations = 2;
  return opt;
}

StallReport profile_model(const std::string& model, const ClusterSpec& spec,
                          int batch = 32) {
  StashProfiler profiler(dnn::make_zoo_model(model), dnn::dataset_for(model),
                         fast_options());
  return profiler.profile(spec, batch);
}

TEST(NetworkSplit, SixteenXlargeSplitsToTwoEightXlarge) {
  auto split = network_split(ClusterSpec{"p2.16xlarge"});
  ASSERT_TRUE(split.has_value());
  EXPECT_EQ(split->instance, "p2.8xlarge");
  EXPECT_EQ(split->count, 2);
  EXPECT_EQ(split->gpus_per_machine, -1);
  EXPECT_EQ(split->gpus_used(), 16);
}

TEST(NetworkSplit, P3SixteenXlargeSplits) {
  auto split = network_split(ClusterSpec{"p3.16xlarge"});
  ASSERT_TRUE(split.has_value());
  EXPECT_EQ(split->instance, "p3.8xlarge");
  EXPECT_EQ(split->gpus_used(), 8);
}

TEST(NetworkSplit, EightXlargeSplitsToHalfUsed) {
  auto split = network_split(ClusterSpec{"p3.8xlarge"});
  ASSERT_TRUE(split.has_value());
  EXPECT_EQ(split->count, 2);
  EXPECT_EQ(split->gpus_per_machine, 2);
  EXPECT_EQ(split->gpus_used(), 4);
}

TEST(NetworkSplit, SingleGpuHasNoSplit) {
  EXPECT_FALSE(network_split(ClusterSpec{"p2.xlarge"}).has_value());
  EXPECT_FALSE(network_split(ClusterSpec{"p3.2xlarge"}).has_value());
}

TEST(NetworkSplit, MultiMachineSpecHasNoSplit) {
  EXPECT_FALSE(network_split(ClusterSpec{"p3.8xlarge", 2}).has_value());
}

TEST(ClusterSpecLabel, Formats) {
  EXPECT_EQ(ClusterSpec{"p3.16xlarge"}.label(), "p3.16xlarge");
  EXPECT_EQ((ClusterSpec{"p3.8xlarge", 2}.label()), "p3.8xlarge*2");
  EXPECT_EQ((ClusterSpec{"p3.8xlarge", 2, 2}.label()), "p3.8xlarge*2[2gpu]");
}

TEST(StashProfiler, StepTimesAreOrdered) {
  // Structural invariants of the methodology: distributed synthetic (T2) is
  // at least single-GPU (T1); cold cache (T3) at least warm (T4); warm real
  // data (T4) at least synthetic (T2).
  StallReport r = profile_model("resnet18", ClusterSpec{"p3.16xlarge"});
  EXPECT_GE(r.t2, r.t1);
  EXPECT_GE(r.t3, r.t4 - 1e-12);
  EXPECT_GE(r.t4, r.t2 - 1e-12);
  EXPECT_GE(r.t5, r.t2);
  EXPECT_TRUE(r.has_network_step);
  EXPECT_EQ(r.gpus, 8);
}

TEST(StashProfiler, StallPercentagesNonNegative) {
  StallReport r = profile_model("alexnet", ClusterSpec{"p2.8xlarge"});
  EXPECT_GE(r.ic_stall_pct, 0.0);
  EXPECT_GE(r.nw_stall_pct, 0.0);
  EXPECT_GE(r.prep_stall_pct, 0.0);
  EXPECT_GE(r.fetch_stall_pct, 0.0);
}

TEST(StashProfiler, SingleGpuSpecHasNoCommStalls) {
  StallReport r = profile_model("resnet18", ClusterSpec{"p3.2xlarge"});
  EXPECT_NEAR(r.ic_stall_pct, 0.0, 1e-9);
  EXPECT_FALSE(r.has_network_step);
  EXPECT_TRUE(std::isnan(r.t5));
}

TEST(StashProfiler, P2SixteenXlargeWorstInterconnect) {
  // Paper Fig 5a: the 16xlarge has the worst I/C stalls of the P2 family.
  StallReport r8 = profile_model("alexnet", ClusterSpec{"p2.8xlarge"});
  StallReport r16 = profile_model("alexnet", ClusterSpec{"p2.16xlarge"});
  EXPECT_GT(r16.ic_stall_pct, r8.ic_stall_pct);
  EXPECT_GT(r16.ic_stall_pct, 40.0);  // "up to 90%" territory
}

TEST(StashProfiler, FragmentedEightXlargeWorseThanSixteen) {
  // Paper §V-B1: p3.8xlarge does not have strictly lower interconnect
  // stalls than p3.16xlarge because of crossbar fragmentation — visible
  // "especially for smaller models or while using smaller batch sizes",
  // where the PCIe-hop transfer time pokes out past the short backward.
  StallReport r8 = profile_model("alexnet", ClusterSpec{"p3.8xlarge"}, 4);
  StallReport r16 = profile_model("alexnet", ClusterSpec{"p3.16xlarge"}, 4);
  EXPECT_GT(r8.ic_stall_pct, r16.ic_stall_pct);
}

TEST(StashProfiler, FullQuadEightXlargeBeatsFragmented) {
  ClusterSpec frag{"p3.8xlarge"};
  ClusterSpec full{"p3.8xlarge"};
  full.slice = cloud::CrossbarSlice::kFullQuad;
  StallReport rf = profile_model("resnet18", frag);
  StallReport rq = profile_model("resnet18", full);
  EXPECT_LT(rq.ic_stall_pct, rf.ic_stall_pct);
}

TEST(StashProfiler, NetworkStallLarge) {
  // Paper Fig 13: network stalls up to 500% for large-gradient models.
  StallReport r = profile_model("vgg11", ClusterSpec{"p3.16xlarge"}, 16);
  EXPECT_GT(r.nw_stall_pct, 100.0);
}

TEST(StashProfiler, VggVsResnetAsymmetry) {
  // Paper §VI/Fig 16: VGG (few layers, huge gradients) has lower I/C stall
  // but far higher N/W stall than ResNet (many layers, small gradients).
  StallReport vgg = profile_model("vgg11", ClusterSpec{"p3.16xlarge"});
  StallReport res = profile_model("resnet50", ClusterSpec{"p3.16xlarge"});
  EXPECT_LT(vgg.ic_stall_pct, res.ic_stall_pct);
  EXPECT_GT(vgg.nw_stall_pct, res.nw_stall_pct);
}

TEST(StashProfiler, CpuStallNegligibleOnAws) {
  // Paper Figs 4a/8a: vCPUs are sufficient, prep stalls ~0.
  for (const char* inst : {"p2.8xlarge", "p3.16xlarge"}) {
    StallReport r = profile_model("resnet18", ClusterSpec{inst});
    EXPECT_LT(r.prep_stall_pct, 10.0) << inst;
  }
}

TEST(StashProfiler, DiskStallScalesWithGpusPerInstance) {
  // Paper Fig 4b: more loader workers per SSD -> more fetch stall.
  StallReport r8 = profile_model("alexnet", ClusterSpec{"p2.8xlarge"}, 128);
  StallReport r16 = profile_model("alexnet", ClusterSpec{"p2.16xlarge"}, 128);
  EXPECT_GT(r16.fetch_stall_pct, r8.fetch_stall_pct);
  EXPECT_GT(r16.fetch_stall_pct, 10.0);
}

TEST(StashProfiler, TwentyFourXlargeNoBetterThanSixteen) {
  // Paper §V-B1: same NVLink, same stalls, no meaningful speedup.
  StallReport r16 = profile_model("resnet50", ClusterSpec{"p3.16xlarge"});
  StallReport r24 = profile_model("resnet50", ClusterSpec{"p3.24xlarge"});
  EXPECT_NEAR(r24.t2, r16.t2, 0.10 * r16.t2);
  // ...but it is strictly more expensive.
  EXPECT_GT(r24.epoch_cost_usd, r16.epoch_cost_usd * 1.1);
}

TEST(StashProfiler, EpochProjectionConsistent) {
  StallReport r = profile_model("resnet18", ClusterSpec{"p3.16xlarge"});
  // 1.28M samples / (32*8) per iteration.
  double iters = 1'281'167.0 / (32.0 * 8.0);
  EXPECT_NEAR(r.epoch_seconds, r.t4 * iters, 0.01 * r.epoch_seconds);
  EXPECT_GT(r.epoch_cost_usd, 0.0);
}

}  // namespace
}  // namespace stash::profiler
