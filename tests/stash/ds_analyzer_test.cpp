#include "stash/ds_analyzer.h"

#include <gtest/gtest.h>

#include "dnn/zoo.h"

namespace stash::profiler {
namespace {

ProfileOptions fast_options() {
  ProfileOptions opt;
  opt.iterations = 5;
  opt.warmup_iterations = 2;
  return opt;
}

TEST(DsAnalyzer, MatchesStashOnSharedSteps) {
  // Steps 2-4 are identical methodology; the two profilers must agree.
  auto model = dnn::make_alexnet();
  auto data = dnn::imagenet_1k();
  ClusterSpec spec{"p2.8xlarge"};
  DsAnalyzerReport ds = DsAnalyzer(model, data, fast_options()).profile(spec, 32);
  StallReport st = StashProfiler(model, data, fast_options()).profile(spec, 32);
  EXPECT_DOUBLE_EQ(ds.t2, st.t2);
  EXPECT_DOUBLE_EQ(ds.t3, st.t3);
  EXPECT_DOUBLE_EQ(ds.t4, st.t4);
  EXPECT_DOUBLE_EQ(ds.prep_stall_pct, st.prep_stall_pct);
  EXPECT_DOUBLE_EQ(ds.fetch_stall_pct, st.fetch_stall_pct);
}

TEST(DsAnalyzer, MissesCommunicationStalls) {
  // On a communication-bound configuration, DS-Analyzer's two stall
  // categories explain almost nothing, while the unattributed share (what
  // Stash calls the interconnect stall) is large. This is the paper's §I
  // motivation, quantified.
  auto model = dnn::make_alexnet();
  ClusterSpec spec{"p2.16xlarge"};
  DsAnalyzerReport ds =
      DsAnalyzer(model, dnn::imagenet_1k(), fast_options()).profile(spec, 32);
  EXPECT_LT(ds.prep_stall_pct, 10.0);
  EXPECT_GT(ds.unattributed_pct, ds.prep_stall_pct);
  EXPECT_GT(ds.unattributed_pct, 20.0);
}

TEST(DsAnalyzer, ReportCarriesLabels) {
  auto model = dnn::make_squeezenet();
  DsAnalyzerReport ds = DsAnalyzer(model, dnn::imagenet_1k(), fast_options())
                            .profile(ClusterSpec{"p3.8xlarge"}, 64);
  EXPECT_EQ(ds.config_label, "p3.8xlarge");
  EXPECT_EQ(ds.model_name, "squeezenet");
  EXPECT_EQ(ds.per_gpu_batch, 64);
}

}  // namespace
}  // namespace stash::profiler
