// End-to-end attribution: the causal critical-path engine against the
// five-step differencing methodology on real profiler runs. Three
// properties are pinned: the two decompositions agree (the paper's
// acceptance bound), the per-iteration blame exactly partitions iteration
// wall time, and every attribution artifact is --jobs invariant.
#include "stash/attribute.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "dnn/zoo.h"
#include "exec/exec_context.h"
#include "obs/causal_log.h"
#include "stash/profiler.h"
#include "telemetry/metrics.h"

namespace stash::profiler {
namespace {

double cat_s(const obs::BlameReport& r, obs::Category c) {
  return r.totals_s[static_cast<std::size_t>(c)];
}

TEST(AttributeAcceptance, CriticalPathAgreesWithDifferencingWithinTenPercent) {
  // The paper's headline scenario: ResNet-50 on a two-machine-splittable
  // p3.16xlarge, so every stall coordinate (including network) is exercised.
  exec::SimCache cache;
  exec::ExecContext ctx(4, &cache);
  ProfileOptions opt;
  opt.iterations = 4;
  opt.warmup_iterations = 1;
  opt.exec = &ctx;
  StashProfiler prof(dnn::make_zoo_model("resnet50"), dnn::dataset_for("resnet50"),
                     opt);
  ClusterSpec spec;
  spec.instance = "p3.16xlarge";

  BlameProfile bp = attribute(prof, spec, 32);
  ASSERT_TRUE(bp.has_network);
  ASSERT_TRUE(bp.ic.available);
  ASSERT_TRUE(bp.nw.available);
  ASSERT_TRUE(bp.prep.available);
  ASSERT_TRUE(bp.fetch.available);

  // Acceptance bound: I/C and N/W causal blame within 10% (relative) of the
  // differencing estimate.
  ASSERT_GT(bp.ic.differencing_s, 0.0);
  EXPECT_NEAR(bp.ic.blame_s, bp.ic.differencing_s, 0.10 * bp.ic.differencing_s);
  ASSERT_GT(bp.nw.differencing_s, 0.0);
  EXPECT_NEAR(bp.nw.blame_s, bp.nw.differencing_s, 0.10 * bp.nw.differencing_s);

  // The primary (two-machine) run saw real network traffic on the path, and
  // nothing was left unexplained by the instrumentation.
  const obs::BlameReport& primary = bp.primary();
  EXPECT_GT(cat_s(primary, obs::Category::kNetwork), 0.0);
  EXPECT_NEAR(cat_s(primary, obs::Category::kUnattributed), 0.0, 1e-9);
  EXPECT_EQ(primary.measured_iterations, opt.iterations - opt.warmup_iterations);

  // The JSON carries all three sections of the cross-checked document.
  std::string json = blame_profile_to_json(bp);
  EXPECT_NE(json.find("\"schema\":\"stash.blame/1\""), std::string::npos);
  EXPECT_NE(json.find("\"differencing\":"), std::string::npos);
  EXPECT_NE(json.find("\"crosscheck\":"), std::string::npos);
}

TEST(AttributeProperty, BlameSegmentsExactlyPartitionIterationWallTime) {
  exec::SimCache cache;
  exec::ExecContext ctx(2, &cache);
  ProfileOptions opt;
  opt.iterations = 4;
  opt.warmup_iterations = 1;
  opt.exec = &ctx;
  StashProfiler prof(dnn::make_zoo_model("resnet18"), dnn::dataset_for("resnet18"),
                     opt);
  ClusterSpec spec;
  spec.instance = "p3.8xlarge";

  obs::BlameReport r = attribute_step(prof, spec, Step::kRealWarm, 32);
  ASSERT_FALSE(r.iterations.empty());
  for (const obs::IterationBlame& ib : r.iterations) {
    SCOPED_TRACE(ib.iteration);
    ASSERT_FALSE(ib.segments.empty());
    // Boundaries are reused walker positions: flush with the window ends and
    // bitwise-contiguous at every interior boundary.
    EXPECT_EQ(ib.segments.front().start_s, ib.start_s);
    EXPECT_EQ(ib.segments.back().end_s, ib.end_s);
    for (std::size_t i = 0; i + 1 < ib.segments.size(); ++i)
      EXPECT_EQ(ib.segments[i].end_s, ib.segments[i + 1].start_s);
    // No gaps, no double counting: category sums reproduce the wall time.
    double sum = 0.0;
    for (double v : ib.by_category) sum += v;
    EXPECT_NEAR(sum, ib.end_s - ib.start_s, 1e-12);
  }
  EXPECT_NEAR(cat_s(r, obs::Category::kUnattributed), 0.0, 1e-9);
}

TEST(AttributeDeterminism, AllArtifactsAreJobsInvariant) {
  auto run = [](int jobs) {
    struct Artifacts {
      std::string blame_json;
      std::string folded;
      std::string prom;
    } out;
    exec::SimCache cache;
    exec::ExecContext ctx(jobs, &cache);
    telemetry::MetricsRegistry metrics;
    ProfileOptions opt;
    opt.iterations = 4;
    opt.warmup_iterations = 1;
    opt.exec = &ctx;
    StashProfiler prof(dnn::make_zoo_model("resnet18"),
                       dnn::dataset_for("resnet18"), opt);
    ClusterSpec spec;
    spec.instance = "p3.16xlarge";
    BlameProfile bp = attribute(prof, spec, 32);
    out.blame_json = blame_profile_to_json(bp);
    out.folded = blame_to_folded(bp.primary());

    // A separately metrics-sinked profile feeds the Prometheus dump.
    ProfileOptions mopt = opt;
    mopt.metrics = &metrics;
    StashProfiler sinked(dnn::make_zoo_model("resnet18"),
                         dnn::dataset_for("resnet18"), mopt);
    sinked.profile(spec, 32);
    out.prom = metrics.to_prometheus(/*include_volatile=*/false);
    return out;
  };

  auto serial = run(1);
  auto parallel = run(8);
  EXPECT_EQ(serial.blame_json, parallel.blame_json);
  EXPECT_EQ(serial.folded, parallel.folded);
  EXPECT_EQ(serial.prom, parallel.prom);
  EXPECT_FALSE(serial.blame_json.empty());
  EXPECT_FALSE(serial.folded.empty());
  EXPECT_FALSE(serial.prom.empty());
}

}  // namespace
}  // namespace stash::profiler
