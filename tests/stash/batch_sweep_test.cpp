// Property sweeps over batch size: communication volume per iteration is
// batch-independent while compute scales linearly, so every communication
// stall percentage must decrease monotonically with batch size — the
// gradient visible across all of the paper's "smallest vs largest batch"
// figure pairs.
#include <gtest/gtest.h>

#include <cmath>

#include "dnn/zoo.h"
#include "stash/profiler.h"

namespace stash::profiler {
namespace {

ProfileOptions fast_options() {
  ProfileOptions opt;
  opt.iterations = 3;
  opt.warmup_iterations = 1;
  return opt;
}

struct SweepCase {
  const char* model;
  const char* instance;
};

class BatchStallSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(BatchStallSweep, IcStallDecreasesWithBatch) {
  const SweepCase& c = GetParam();
  StashProfiler prof(dnn::make_zoo_model(c.model), dnn::dataset_for(c.model),
                     fast_options());
  ClusterSpec spec{c.instance};
  double prev = std::numeric_limits<double>::infinity();
  for (int batch : {8, 32, 128}) {
    double t1 = prof.run_step(spec, Step::kSingleGpuSynthetic, batch).per_iteration;
    double t2 = prof.run_step(spec, Step::kAllGpuSynthetic, batch).per_iteration;
    double stall = (t2 - t1) / t1 * 100.0;
    EXPECT_LT(stall, prev * 1.001) << c.model << " on " << c.instance << " at batch "
                                   << batch;
    prev = stall;
  }
}

TEST_P(BatchStallSweep, IterationTimeIncreasesWithBatch) {
  const SweepCase& c = GetParam();
  StashProfiler prof(dnn::make_zoo_model(c.model), dnn::dataset_for(c.model),
                     fast_options());
  ClusterSpec spec{c.instance};
  double prev = 0.0;
  for (int batch : {8, 32, 128}) {
    double t2 = prof.run_step(spec, Step::kAllGpuSynthetic, batch).per_iteration;
    EXPECT_GT(t2, prev) << c.model << " on " << c.instance << " at batch " << batch;
    prev = t2;
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, BatchStallSweep,
                         ::testing::Values(SweepCase{"alexnet", "p2.8xlarge"},
                                           SweepCase{"alexnet", "p2.16xlarge"},
                                           SweepCase{"resnet18", "p3.8xlarge"},
                                           SweepCase{"resnet18", "p3.16xlarge"},
                                           SweepCase{"shufflenet", "p2.16xlarge"},
                                           SweepCase{"squeezenet", "p3.16xlarge"}));

// Network stall also decreases with batch (Fig 13's x-axis trend) for
// bandwidth-heavy models.
TEST(BatchSweepNetwork, Fig13TrendHoldsForVgg) {
  StashProfiler prof(dnn::make_zoo_model("vgg11"), dnn::imagenet_1k(),
                     fast_options());
  ClusterSpec spec{"p3.16xlarge"};
  auto split = network_split(spec);
  ASSERT_TRUE(split.has_value());
  double prev = std::numeric_limits<double>::infinity();
  for (int batch : {4, 8, 16, 32}) {
    double t2 = prof.run_step(spec, Step::kAllGpuSynthetic, batch).per_iteration;
    double t5 =
        prof.run_step(*split, Step::kNetworkSynthetic, batch).per_iteration;
    double stall = (t5 - t2) / t2 * 100.0;
    EXPECT_LT(stall, prev) << "batch " << batch;
    prev = stall;
  }
}

}  // namespace
}  // namespace stash::profiler
