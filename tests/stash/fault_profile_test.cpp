#include "stash/profiler.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "dnn/zoo.h"
#include "stash/spot_replay.h"

namespace stash::profiler {
namespace {

StashProfiler make_profiler(const char* model = "alexnet") {
  return StashProfiler(dnn::make_zoo_model(model), dnn::dataset_for(model));
}

ClusterSpec two_machine_spec() {
  ClusterSpec spec;
  spec.instance = "p3.8xlarge";
  spec.count = 2;
  return spec;
}

TEST(FaultProfile, EndToEndCrashDegradation) {
  StashProfiler prof = make_profiler();
  ClusterSpec spec = two_machine_spec();

  // Place the crash mid-window using the measured warm iteration time.
  double iter_s = prof.run_step(spec, Step::kRealWarm, 32).per_iteration;
  ASSERT_GT(iter_s, 0.0);

  faults::FaultPlan plan;
  {
    faults::FaultEvent e;
    e.kind = faults::FaultKind::kCrash;
    e.start_s = 2.5 * iter_s;
    e.machine = 1;
    e.reprovision_s = 4.0 * iter_s;
    plan.events.push_back(e);
  }
  FaultProfileOptions fopt;
  fopt.policy = ddl::RecoveryPolicy::kCheckpointRestart;
  fopt.barrier_timeout_s = 2.0 * iter_s;

  FaultProfileReport rep = prof.profile_under_faults(spec, 32, plan, fopt);

  // Healthy side is fault-free; faulted side recorded the revocation.
  EXPECT_DOUBLE_EQ(rep.healthy.fault_stall_pct, 0.0);
  EXPECT_GT(rep.fault_stall_seconds, 0.0);
  EXPECT_GT(rep.faulted.fault_stall_pct, 0.0);
  EXPECT_LE(rep.faulted.fault_stall_pct, 100.0);
  ASSERT_GE(rep.recoveries.size(), 1u);
  EXPECT_EQ(rep.recoveries[0].workers_after, 8);
  EXPECT_EQ(rep.gpus_at_end, 8);
  // The faulted profile keeps a full stall decomposition (no NaNs).
  for (double pct : {rep.faulted.ic_stall_pct, rep.faulted.prep_stall_pct,
                     rep.faulted.fetch_stall_pct, rep.faulted.fault_stall_pct}) {
    EXPECT_TRUE(std::isfinite(pct));
    EXPECT_GE(pct, 0.0);
  }
  EXPECT_GT(rep.epoch_slowdown, 0.0);
}

TEST(FaultProfile, ShrinkPolicyEndsWithFewerGpus) {
  StashProfiler prof = make_profiler();
  ClusterSpec spec = two_machine_spec();
  double iter_s = prof.run_step(spec, Step::kRealWarm, 32).per_iteration;

  faults::FaultPlan plan;
  {
    faults::FaultEvent e;
    e.kind = faults::FaultKind::kCrash;
    e.start_s = 2.5 * iter_s;
    e.machine = 1;
    e.reprovision_s = 1000.0;  // shrink should never wait for this
    plan.events.push_back(e);
  }
  FaultProfileOptions fopt;
  fopt.policy = ddl::RecoveryPolicy::kShrink;
  fopt.barrier_timeout_s = 2.0 * iter_s;

  FaultProfileReport rep = prof.profile_under_faults(spec, 32, plan, fopt);
  ASSERT_GE(rep.recoveries.size(), 1u);
  EXPECT_EQ(rep.gpus_at_end, 4);
  EXPECT_LT(rep.recoveries[0].wait_seconds, 1000.0);
}

TEST(FaultProfile, HealthyProfileHasCleanPercentages) {
  StashProfiler prof = make_profiler();
  StallReport r = prof.profile(two_machine_spec(), 32);
  EXPECT_FALSE(r.degenerate_pcts);
  for (double pct : {r.ic_stall_pct, r.nw_stall_pct, r.prep_stall_pct,
                     r.fetch_stall_pct, r.fault_stall_pct}) {
    EXPECT_TRUE(std::isfinite(pct));
    EXPECT_GE(pct, 0.0);
  }
}

TEST(ProfileOptions, ValidationRejectsNonsense) {
  dnn::Model model = dnn::make_zoo_model("alexnet");
  dnn::Dataset data = dnn::dataset_for("alexnet");

  ProfileOptions bad_iters;
  bad_iters.iterations = 0;
  EXPECT_THROW(StashProfiler(model, data, bad_iters), std::invalid_argument);

  ProfileOptions bad_warmup;
  bad_warmup.warmup_iterations = -1;
  EXPECT_THROW(StashProfiler(model, data, bad_warmup), std::invalid_argument);

  ProfileOptions warmup_eats_window;
  warmup_eats_window.iterations = 4;
  warmup_eats_window.warmup_iterations = 4;
  EXPECT_THROW(StashProfiler(model, data, warmup_eats_window),
               std::invalid_argument);

  ProfileOptions bad_loaders;
  bad_loaders.loader_workers_per_gpu = 0;
  EXPECT_THROW(StashProfiler(model, data, bad_loaders), std::invalid_argument);

  ProfileOptions bad_prefetch;
  bad_prefetch.prefetch_depth = 0;
  EXPECT_THROW(StashProfiler(model, data, bad_prefetch), std::invalid_argument);

  ProfileOptions bad_bucket;
  bad_bucket.bucket_bytes = std::nan("");
  EXPECT_THROW(StashProfiler(model, data, bad_bucket), std::invalid_argument);
}

TEST(SpotReplay, DeterministicAndMeasured) {
  StashProfiler prof = make_profiler();
  ClusterSpec spec = two_machine_spec();
  cloud::SpotConfig cfg;
  cfg.interruptions_per_hour = 2.0;
  cfg.checkpoint_interval_s = 600.0;
  cfg.restart_overhead_s = 120.0;

  SpotReplayResult a = replay_spot_run(prof, spec, 32, 3600.0, cfg, 99);
  SpotReplayResult b = replay_spot_run(prof, spec, 32, 3600.0, cfg, 99);

  EXPECT_GT(a.healthy_iteration_s, 0.0);
  EXPECT_GT(a.recovery_fixed_cost_s, 0.0);
  EXPECT_EQ(a.trainer_runs, 2);  // healthy + crash calibration
  // Wall time covers at least the useful work.
  EXPECT_GE(a.outcome.wall_seconds, 3600.0);
  EXPECT_GT(a.outcome.cost_usd, 0.0);

  // Bit-identical across runs with the same seed.
  EXPECT_EQ(a.outcome.wall_seconds, b.outcome.wall_seconds);
  EXPECT_EQ(a.outcome.cost_usd, b.outcome.cost_usd);
  EXPECT_EQ(a.outcome.interruptions, b.outcome.interruptions);
  EXPECT_EQ(a.recovery_fixed_cost_s, b.recovery_fixed_cost_s);

  // A different seed reshuffles the interruption arrivals.
  SpotReplayResult c = replay_spot_run(prof, spec, 32, 3600.0, cfg, 100);
  EXPECT_NE(a.outcome.wall_seconds, c.outcome.wall_seconds);
}

TEST(SpotReplay, RejectsNegativeWork) {
  StashProfiler prof = make_profiler();
  EXPECT_THROW(
      replay_spot_run(prof, two_machine_spec(), 32, -1.0, cloud::SpotConfig{}, 1),
      std::invalid_argument);
}

}  // namespace
}  // namespace stash::profiler
