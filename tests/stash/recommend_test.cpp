#include "stash/recommend.h"

#include <gtest/gtest.h>

#include "dnn/zoo.h"

namespace stash::profiler {
namespace {

RecommendOptions fast_options(int batch = 32) {
  RecommendOptions opt;
  opt.per_gpu_batch = batch;
  opt.profile.iterations = 4;
  opt.profile.warmup_iterations = 1;
  return opt;
}

TEST(Recommend, DefaultCandidatesCoverTableOne) {
  auto c = default_candidates();
  EXPECT_EQ(c.size(), 9u);  // 7 single-machine + 2 network pairs
}

TEST(Recommend, RanksAreAPermutation) {
  auto recs = recommend(dnn::make_shufflenet(), dnn::imagenet_1k(), fast_options());
  ASSERT_FALSE(recs.empty());
  std::vector<bool> seen_time(recs.size(), false), seen_cost(recs.size(), false);
  for (const auto& r : recs) {
    ASSERT_LT(static_cast<std::size_t>(r.by_time), recs.size());
    ASSERT_LT(static_cast<std::size_t>(r.by_cost), recs.size());
    seen_time[static_cast<std::size_t>(r.by_time)] = true;
    seen_cost[static_cast<std::size_t>(r.by_cost)] = true;
  }
  for (std::size_t i = 0; i < recs.size(); ++i) {
    EXPECT_TRUE(seen_time[i]);
    EXPECT_TRUE(seen_cost[i]);
  }
  // Primary listing is sorted by time rank.
  for (std::size_t i = 1; i < recs.size(); ++i)
    EXPECT_LT(recs[i - 1].by_time, recs[i].by_time);
}

TEST(Recommend, SingleGpuMostCostOptimal) {
  // Paper §V-B3: the smallest instance (no communication stalls) wins on
  // cost; a big NVLink machine wins on time.
  auto recs = recommend(dnn::make_resnet18(), dnn::imagenet_1k(), fast_options());
  ASSERT_FALSE(recs.empty());
  const Recommendation* cheapest = nullptr;
  const Recommendation* fastest = nullptr;
  for (const auto& r : recs) {
    if (r.by_cost == 0) cheapest = &r;
    if (r.by_time == 0) fastest = &r;
  }
  ASSERT_NE(cheapest, nullptr);
  ASSERT_NE(fastest, nullptr);
  EXPECT_EQ(cloud::instance(cheapest->spec.instance).num_gpus, 1);
  EXPECT_GE(cloud::instance(fastest->spec.instance).num_gpus, 8);
}

TEST(Recommend, SkipsConfigurationsThatDontFit) {
  // BERT-large at batch 32 fits no catalog GPU: every candidate is skipped.
  auto recs = recommend(dnn::make_zoo_model("bert-large"), dnn::squad_v2(),
                        fast_options(32));
  EXPECT_TRUE(recs.empty());
  // At batch 4 all V100 instances qualify but the 12 GiB K80s do not.
  auto recs4 = recommend(dnn::make_zoo_model("bert-large"), dnn::squad_v2(),
                         fast_options(4));
  ASSERT_GT(recs4.size(), 1u);
  for (const auto& r : recs4)
    EXPECT_EQ(cloud::instance(r.spec.instance).family, "P3") << r.spec.label();
}

TEST(Recommend, CustomCandidateList) {
  RecommendOptions opt = fast_options();
  opt.candidates = {ClusterSpec{"p3.2xlarge"}, ClusterSpec{"p3.16xlarge"}};
  auto recs = recommend(dnn::make_resnet18(), dnn::imagenet_1k(), opt);
  EXPECT_EQ(recs.size(), 2u);
}

TEST(Recommend, NetworkPairsRankLast) {
  // Paper §V-B2: "network connected instances are the least cost optimal".
  RecommendOptions opt = fast_options();
  opt.candidates = {ClusterSpec{"p3.16xlarge"}, ClusterSpec{"p3.8xlarge", 2}};
  auto recs = recommend(dnn::make_vgg11(), dnn::imagenet_1k(), opt);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs.front().spec.count, 1);  // single machine wins on time
}

}  // namespace
}  // namespace stash::profiler
