#include "hw/storage.h"

#include <gtest/gtest.h>

#include "hw/cpu.h"
#include "sim/simulator.h"
#include "util/units.h"

namespace stash::hw {
namespace {

using util::mb;
using util::mb_per_s;

sim::Task<void> timed_read(sim::Simulator& sim, StorageDevice& dev, double bytes,
                           double& done_at) {
  co_await dev.read(bytes);
  done_at = sim.now();
}

TEST(StorageDevice, SequentialReadTime) {
  sim::Simulator sim;
  FlowNetwork net(sim);
  StorageDevice ssd(net, "ssd", mb_per_s(250), 0.001);
  double done = -1;
  sim.spawn(timed_read(sim, ssd, mb(250), done));
  sim.run();
  EXPECT_NEAR(done, 1.001, 1e-9);
}

TEST(StorageDevice, ConcurrentReadersContend) {
  sim::Simulator sim;
  FlowNetwork net(sim);
  StorageDevice ssd(net, "ssd", mb_per_s(100), 0.0);
  double a = -1, b = -1, c = -1, d = -1;
  for (double* out : {&a, &b, &c, &d}) sim.spawn(timed_read(sim, ssd, mb(100), *out));
  sim.run();
  // Four 100 MB reads over a 100 MB/s device drain together at t=4.
  for (double t : {a, b, c, d}) EXPECT_NEAR(t, 4.0, 1e-6);
}

TEST(SampleCache, ColdMissesThenHits) {
  SampleCache cache(1000.0, 1.0);  // 1000 samples
  EXPECT_FALSE(cache.access(1));
  EXPECT_FALSE(cache.access(2));
  EXPECT_TRUE(cache.access(1));
  EXPECT_TRUE(cache.access(2));
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.5);
}

TEST(SampleCache, FifoEvictionWhenFull) {
  SampleCache cache(3.0, 1.0);  // 3 samples
  cache.access(1);
  cache.access(2);
  cache.access(3);
  cache.access(4);                // evicts 1
  EXPECT_FALSE(cache.access(1));  // 1 gone, evicts 2
  EXPECT_TRUE(cache.access(3));
  EXPECT_TRUE(cache.access(4));
  EXPECT_EQ(cache.resident_samples(), 3u);
}

TEST(SampleCache, ZeroCapacityNeverHits) {
  SampleCache cache(0.5, 1.0);  // capacity rounds to zero samples
  EXPECT_FALSE(cache.access(1));
  EXPECT_FALSE(cache.access(1));
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(SampleCache, ClearDropsResidency) {
  SampleCache cache(10.0, 1.0);
  cache.access(1);
  cache.clear();
  EXPECT_FALSE(cache.access(1));
  EXPECT_EQ(cache.resident_samples(), 1u);
}

TEST(SampleCache, ResetCountersKeepsResidency) {
  SampleCache cache(10.0, 1.0);
  cache.access(1);
  cache.reset_counters();
  EXPECT_TRUE(cache.access(1));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 0u);
}

TEST(SampleCache, InvalidSampleSizeThrows) {
  EXPECT_THROW(SampleCache(100.0, 0.0), std::invalid_argument);
}

sim::Task<void> timed_cpu(sim::Simulator& sim, CpuPool& pool, double secs, double& done_at) {
  co_await pool.run(secs);
  done_at = sim.now();
}

TEST(CpuPool, ParallelUpToVcpus) {
  sim::Simulator sim;
  CpuPool pool(sim, 2);
  double a = -1, b = -1, c = -1;
  sim.spawn(timed_cpu(sim, pool, 1.0, a));
  sim.spawn(timed_cpu(sim, pool, 1.0, b));
  sim.spawn(timed_cpu(sim, pool, 1.0, c));
  sim.run();
  EXPECT_NEAR(a, 1.0, 1e-9);
  EXPECT_NEAR(b, 1.0, 1e-9);
  EXPECT_NEAR(c, 2.0, 1e-9);  // queued behind the first two
}

TEST(CpuPool, ZeroVcpusThrows) {
  sim::Simulator sim;
  EXPECT_THROW(CpuPool(sim, 0), std::invalid_argument);
}

TEST(CpuPool, IdleCoresTrack) {
  sim::Simulator sim;
  CpuPool pool(sim, 4);
  EXPECT_EQ(pool.idle_cores(), 4u);
  double a = -1;
  sim.spawn(timed_cpu(sim, pool, 1.0, a));
  EXPECT_EQ(pool.idle_cores(), 3u);
  sim.run();
  EXPECT_EQ(pool.idle_cores(), 4u);
}

}  // namespace
}  // namespace stash::hw
