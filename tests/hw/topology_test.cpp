#include "hw/topology.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "util/units.h"

namespace stash::hw {
namespace {

using util::gb_per_s;
using util::gbps;
using util::gib;
using util::mb_per_s;

MachineConfig pcie_config(int gpus) {
  MachineConfig c;
  c.name = "pcie_box";
  c.num_gpus = gpus;
  c.gpu = k80_spec();
  c.interconnect = InterconnectKind::kPcieOnly;
  c.pcie_lane_bw = gb_per_s(10);
  c.host_bridge_bw = gb_per_s(24);
  c.nic_bw = gbps(10);
  c.vcpus = 32;
  c.dram_bytes = gib(488);
  c.ssd_bw = mb_per_s(250);
  c.ssd_latency = 0.0005;
  return c;
}

MachineConfig nvlink_config(int gpus) {
  MachineConfig c = pcie_config(gpus);
  c.name = "nvlink_box";
  c.gpu = v100_spec();
  c.interconnect = InterconnectKind::kPcieNvlink;
  c.nvlink_bw = gb_per_s(22);
  return c;
}

TEST(Machine, PcieOnlyPathGoesThroughHostBridge) {
  sim::Simulator sim;
  FlowNetwork net(sim);
  Machine m(net, sim, pcie_config(4), 0);
  auto path = m.gpu_to_gpu_path(0, 3);
  // Staged through host memory: the bridge is traversed twice.
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path[0], m.pcie_up(0));
  EXPECT_EQ(path[1], m.host_bridge());
  EXPECT_EQ(path[2], m.host_bridge());
  EXPECT_EQ(path[3], m.pcie_down(3));
}

TEST(Machine, SameGpuPathIsEmpty) {
  sim::Simulator sim;
  FlowNetwork net(sim);
  Machine m(net, sim, pcie_config(4), 0);
  EXPECT_TRUE(m.gpu_to_gpu_path(2, 2).empty());
}

TEST(Machine, OutOfRangeGpuThrows) {
  sim::Simulator sim;
  FlowNetwork net(sim);
  Machine m(net, sim, pcie_config(2), 0);
  EXPECT_THROW(m.gpu_to_gpu_path(0, 2), std::out_of_range);
  EXPECT_THROW(m.h2d_path(-1), std::out_of_range);
}

TEST(Machine, CubeMesh8Adjacency) {
  sim::Simulator sim;
  FlowNetwork net(sim);
  Machine m(net, sim, nvlink_config(8), 0);
  // Within quads: fully connected.
  EXPECT_TRUE(m.nvlink_connected(0, 1));
  EXPECT_TRUE(m.nvlink_connected(2, 3));
  EXPECT_TRUE(m.nvlink_connected(4, 7));
  // Cross edges i <-> i+4 only.
  EXPECT_TRUE(m.nvlink_connected(1, 5));
  EXPECT_FALSE(m.nvlink_connected(0, 5));
  EXPECT_FALSE(m.nvlink_connected(3, 4));
  EXPECT_FALSE(m.nvlink_connected(0, 0));
}

TEST(Machine, NvlinkPathIsSingleHop) {
  sim::Simulator sim;
  FlowNetwork net(sim);
  Machine m(net, sim, nvlink_config(8), 0);
  auto path = m.gpu_to_gpu_path(0, 1);
  EXPECT_EQ(path.size(), 1u);
}

TEST(Machine, NonAdjacentNvlinkFallsBackToPcie) {
  sim::Simulator sim;
  FlowNetwork net(sim);
  Machine m(net, sim, nvlink_config(8), 0);
  auto path = m.gpu_to_gpu_path(0, 5);  // not adjacent in cube mesh
  EXPECT_EQ(path.size(), 4u);
}

TEST(Machine, CubeMesh8HasFullNvlinkRing) {
  sim::Simulator sim;
  FlowNetwork net(sim);
  Machine m(net, sim, nvlink_config(8), 0);
  EXPECT_EQ(m.ring_pcie_hops(), 0);
  EXPECT_EQ(m.ring_order().size(), 8u);
}

TEST(Machine, FullQuadHasNvlinkRing) {
  sim::Simulator sim;
  FlowNetwork net(sim);
  Machine m(net, sim, nvlink_config(4), 0);
  EXPECT_EQ(m.ring_pcie_hops(), 0);
}

TEST(Machine, BadSliceForcesPcieHops) {
  // Allocation {0,1,2,4} of the cube mesh relabelled to 0..3: edges
  // 0-1, 0-2, 1-2 (quad remnant) and 0-3 (cross edge). Best ring has
  // exactly one non-NVLink hop.
  sim::Simulator sim;
  FlowNetwork net(sim);
  MachineConfig c = nvlink_config(4);
  c.nvlink_pairs = {{0, 1}, {0, 2}, {1, 2}, {0, 3}};
  Machine m(net, sim, c, 0);
  EXPECT_EQ(m.ring_pcie_hops(), 1);
}

TEST(Machine, RingOrderIsPermutation) {
  sim::Simulator sim;
  FlowNetwork net(sim);
  Machine m(net, sim, nvlink_config(8), 0);
  std::vector<int> sorted = m.ring_order();
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 8; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
}

TEST(Machine, H2dPathUsesBridgeAndLane) {
  sim::Simulator sim;
  FlowNetwork net(sim);
  Machine m(net, sim, pcie_config(4), 0);
  auto path = m.h2d_path(2);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0], m.host_bridge());
  EXPECT_EQ(path[1], m.pcie_down(2));
}

TEST(Machine, InvalidConfigsThrow) {
  sim::Simulator sim;
  FlowNetwork net(sim);
  MachineConfig c = pcie_config(0);
  EXPECT_THROW(Machine(net, sim, c, 0), std::invalid_argument);
  c = pcie_config(2);
  c.pcie_lane_bw = 0;
  EXPECT_THROW(Machine(net, sim, c, 0), std::invalid_argument);
  c = nvlink_config(5);  // no built-in mesh for 5 GPUs
  EXPECT_THROW(Machine(net, sim, c, 0), std::invalid_argument);
}

TEST(Machine, CacheSizedFromDram) {
  sim::Simulator sim;
  FlowNetwork net(sim);
  Machine m(net, sim, pcie_config(2), 0);
  SampleCache& cache = m.cache(util::kib(110));  // ~ImageNet JPEG avg
  EXPECT_GT(cache.capacity_samples(), 1'000'000u);  // 488 GB holds ImageNet
}

TEST(Cluster, SingleMachineNeedsNoFabric) {
  sim::Simulator sim;
  FlowNetwork net(sim);
  Cluster cl(net, sim, {pcie_config(4)}, gbps(100));
  EXPECT_FALSE(cl.multi_machine());
  EXPECT_EQ(cl.total_gpus(), 4);
  EXPECT_EQ(cl.fabric(), nullptr);
}

TEST(Cluster, CrossMachinePathCrossesNicsAndFabric) {
  sim::Simulator sim;
  FlowNetwork net(sim);
  Cluster cl(net, sim, {nvlink_config(4), nvlink_config(4)}, gbps(100));
  auto path = cl.path(GpuRef{0, 1}, GpuRef{1, 2});
  ASSERT_EQ(path.size(), 7u);
  EXPECT_EQ(path[1], cl.machine(0).host_bridge());
  EXPECT_EQ(path[2], cl.machine(0).nic_tx());
  EXPECT_EQ(path[3], cl.fabric());
  EXPECT_EQ(path[4], cl.machine(1).nic_rx());
  EXPECT_EQ(path[5], cl.machine(1).host_bridge());
}

TEST(Cluster, IntraMachinePathDelegates) {
  sim::Simulator sim;
  FlowNetwork net(sim);
  Cluster cl(net, sim, {nvlink_config(4), nvlink_config(4)}, gbps(100));
  auto path = cl.path(GpuRef{1, 0}, GpuRef{1, 1});
  EXPECT_EQ(path.size(), 1u);  // NVLink hop
}

TEST(Cluster, RingOrderCoversAllGpus) {
  sim::Simulator sim;
  FlowNetwork net(sim);
  Cluster cl(net, sim, {nvlink_config(4), nvlink_config(4)}, gbps(100));
  auto ring = cl.ring_order();
  ASSERT_EQ(ring.size(), 8u);
  EXPECT_EQ(ring[0].machine, 0);
  EXPECT_EQ(ring[4].machine, 1);
}

TEST(Cluster, MultiMachineWithoutNicThrows) {
  sim::Simulator sim;
  FlowNetwork net(sim);
  MachineConfig c = pcie_config(2);
  c.nic_bw = 0;
  EXPECT_THROW(Cluster(net, sim, {c, c}, gbps(100)), std::invalid_argument);
}

TEST(Cluster, EmptyThrows) {
  sim::Simulator sim;
  FlowNetwork net(sim);
  EXPECT_THROW(Cluster(net, sim, {}, gbps(100)), std::invalid_argument);
}

TEST(GpuSpecs, CatalogValues) {
  EXPECT_EQ(k80_spec().name, "K80");
  EXPECT_NEAR(k80_spec().memory_bytes, gib(12), 1.0);
  EXPECT_EQ(v100_spec().name, "V100");
  EXPECT_NEAR(v100_spec().memory_bytes, gib(16), 1.0);
  EXPECT_NEAR(v100_spec(32).memory_bytes, gib(32), 1.0);
  EXPECT_GT(v100_spec().effective_flops, k80_spec().effective_flops);
  EXPECT_GT(a100_spec().effective_flops, v100_spec().effective_flops);
}

TEST(GpuSpecs, ComputeTime) {
  GpuSpec g{"X", 2e12, gib(16)};
  EXPECT_NEAR(g.compute_time(4e12), 2.0, 1e-12);
  GpuSpec bad{"Y", 0.0, 0.0};
  EXPECT_THROW(bad.compute_time(1.0), std::logic_error);
}

}  // namespace
}  // namespace stash::hw
