// Randomized property tests for the max-min fair flow network: across
// seeded random topologies and arrival patterns, every flow completes, no
// link ever exceeds its capacity, and accounting is conserved.
#include <gtest/gtest.h>

#include <vector>

#include "hw/flow_network.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace stash::hw {
namespace {

struct FuzzCase {
  std::uint64_t seed;
  int num_links;
  int num_flows;
};

class FlowNetworkFuzz : public ::testing::TestWithParam<FuzzCase> {};

// A free coroutine function, not a lambda: a coroutine lambda's captures
// live in the closure object, which would die with the spawn loop's scope
// while the coroutine is still suspended; by-value parameters are copied
// into the coroutine frame and survive.
sim::Task<void> fuzz_transfer(hw::FlowNetwork& net, double bytes,
                              std::vector<Link*> path, double latency,
                              int& completed) {
  co_await net.transfer(bytes, std::move(path), latency);
  ++completed;
}

TEST_P(FlowNetworkFuzz, InvariantsHold) {
  const FuzzCase& fc = GetParam();
  util::Rng rng(fc.seed);
  sim::Simulator sim;
  FlowNetwork net(sim);

  std::vector<Link*> links;
  for (int i = 0; i < fc.num_links; ++i)
    links.push_back(net.add_link("l" + std::to_string(i), rng.uniform(10.0, 1000.0)));

  double total_bytes = 0.0;
  int completed = 0;
  std::vector<double> expected_link_bytes(links.size(), 0.0);

  for (int f = 0; f < fc.num_flows; ++f) {
    // Random path of 1..4 distinct-ish links (duplicates allowed: the
    // double-traversal case is part of the contract).
    std::vector<Link*> path;
    int hops = static_cast<int>(rng.uniform_int(1, 4));
    for (int h = 0; h < hops; ++h) {
      auto idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(links.size()) - 1));
      path.push_back(links[idx]);
      expected_link_bytes[idx] += 0.0;  // filled below once bytes known
    }
    double bytes = rng.uniform(1.0, 5000.0);
    double latency = rng.uniform(0.0, 2.0);
    total_bytes += bytes;
    for (Link* l : path) {
      for (std::size_t i = 0; i < links.size(); ++i)
        if (links[i] == l) expected_link_bytes[i] += bytes;
    }
    sim.spawn(fuzz_transfer(net, bytes, std::move(path), latency, completed));
  }

  // Capacity invariant sampled on a fine grid while flows drain.
  for (int i = 1; i <= 200; ++i) {
    sim.schedule(i * 0.5, [&] {
      for (Link* l : links)
        EXPECT_LE(net.link_throughput(l), l->capacity() * (1.0 + 1e-9)) << l->name();
    });
  }

  sim.run();
  EXPECT_EQ(completed, fc.num_flows);
  EXPECT_TRUE(sim.all_processes_done());
  EXPECT_EQ(net.active_flows(), 0u);
  for (std::size_t i = 0; i < links.size(); ++i)
    EXPECT_NEAR(links[i]->bytes_carried(), expected_link_bytes[i],
                1e-6 * std::max(1.0, expected_link_bytes[i]))
        << links[i]->name();
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, FlowNetworkFuzz,
    ::testing::Values(FuzzCase{1, 3, 10}, FuzzCase{2, 5, 25}, FuzzCase{3, 8, 50},
                      FuzzCase{4, 2, 40}, FuzzCase{5, 10, 100}, FuzzCase{6, 1, 30},
                      FuzzCase{7, 6, 75}, FuzzCase{8, 4, 60}));

}  // namespace
}  // namespace stash::hw
