#include "hw/flow_network.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"
#include "sim/sync.h"
#include "util/units.h"

namespace stash::hw {
namespace {

using util::gb_per_s;
using util::mb;

// Helper: run a transfer and record its completion time.
sim::Task<void> timed_transfer(sim::Simulator& sim, FlowNetwork& net, double bytes,
                               std::vector<Link*> path, double latency, double& done_at) {
  co_await net.transfer(bytes, std::move(path), latency);
  done_at = sim.now();
}

TEST(FlowNetwork, SingleFlowUsesFullCapacity) {
  sim::Simulator sim;
  FlowNetwork net(sim);
  Link* l = net.add_link("l", 100.0);  // 100 B/s
  double done = -1;
  sim.spawn(timed_transfer(sim, net, 1000.0, {l}, 0.0, done));
  sim.run();
  EXPECT_NEAR(done, 10.0, 1e-9);
}

TEST(FlowNetwork, LatencyDelaysStart) {
  sim::Simulator sim;
  FlowNetwork net(sim);
  Link* l = net.add_link("l", 100.0);
  double done = -1;
  sim.spawn(timed_transfer(sim, net, 1000.0, {l}, 2.5, done));
  sim.run();
  EXPECT_NEAR(done, 12.5, 1e-9);
}

TEST(FlowNetwork, EmptyPathCompletesAfterLatency) {
  sim::Simulator sim;
  FlowNetwork net(sim);
  double done = -1;
  sim.spawn(timed_transfer(sim, net, mb(100), {}, 3.0, done));
  sim.run();
  EXPECT_NEAR(done, 3.0, 1e-9);
}

TEST(FlowNetwork, ZeroBytesCompletesAfterLatency) {
  sim::Simulator sim;
  FlowNetwork net(sim);
  Link* l = net.add_link("l", 100.0);
  double done = -1;
  sim.spawn(timed_transfer(sim, net, 0.0, {l}, 1.0, done));
  sim.run();
  EXPECT_NEAR(done, 1.0, 1e-9);
}

TEST(FlowNetwork, TwoFlowsShareFairly) {
  sim::Simulator sim;
  FlowNetwork net(sim);
  Link* l = net.add_link("l", 100.0);
  double a = -1, b = -1;
  sim.spawn(timed_transfer(sim, net, 1000.0, {l}, 0.0, a));
  sim.spawn(timed_transfer(sim, net, 1000.0, {l}, 0.0, b));
  sim.run();
  // Both share 50 B/s, finishing together at t=20.
  EXPECT_NEAR(a, 20.0, 1e-9);
  EXPECT_NEAR(b, 20.0, 1e-9);
}

TEST(FlowNetwork, ShortFlowFinishesThenLongSpeedsUp) {
  sim::Simulator sim;
  FlowNetwork net(sim);
  Link* l = net.add_link("l", 100.0);
  double small = -1, big = -1;
  sim.spawn(timed_transfer(sim, net, 500.0, {l}, 0.0, small));
  sim.spawn(timed_transfer(sim, net, 1500.0, {l}, 0.0, big));
  sim.run();
  // Shared until the small flow drains at t=10 (500 B at 50 B/s); the big
  // flow then has 1000 B left at full rate -> finishes at t=20.
  EXPECT_NEAR(small, 10.0, 1e-9);
  EXPECT_NEAR(big, 20.0, 1e-9);
}

TEST(FlowNetwork, LateArrivalSlowsExistingFlow) {
  sim::Simulator sim;
  FlowNetwork net(sim);
  Link* l = net.add_link("l", 100.0);
  double a = -1, b = -1;
  sim.spawn(timed_transfer(sim, net, 1000.0, {l}, 0.0, a));
  sim.spawn(timed_transfer(sim, net, 500.0, {l}, 5.0, b));
  sim.run();
  // Flow A alone for 5 s (500 B done), then shares: A has 500 B at 50 B/s
  // -> t=15; B has 500 B at 50 B/s -> t=15.
  EXPECT_NEAR(a, 15.0, 1e-9);
  EXPECT_NEAR(b, 15.0, 1e-9);
}

TEST(FlowNetwork, BottleneckLinkGovernsPath) {
  sim::Simulator sim;
  FlowNetwork net(sim);
  Link* fast = net.add_link("fast", 1000.0);
  Link* slow = net.add_link("slow", 10.0);
  double done = -1;
  sim.spawn(timed_transfer(sim, net, 100.0, {fast, slow}, 0.0, done));
  sim.run();
  EXPECT_NEAR(done, 10.0, 1e-9);
}

TEST(FlowNetwork, MaxMinUnevenShare) {
  // Two links: A (cap 100) carries flows 1 and 2; B (cap 30) carries flow 2
  // only. Max-min: flow 2 is capped at 30 by B; flow 1 gets the remaining
  // 70 of A.
  sim::Simulator sim;
  FlowNetwork net(sim);
  Link* la = net.add_link("A", 100.0);
  Link* lb = net.add_link("B", 30.0);
  double f1 = -1, f2 = -1;
  sim.spawn(timed_transfer(sim, net, 700.0, {la}, 0.0, f1));
  sim.spawn(timed_transfer(sim, net, 300.0, {la, lb}, 0.0, f2));
  sim.run();
  EXPECT_NEAR(f1, 10.0, 1e-9);
  EXPECT_NEAR(f2, 10.0, 1e-9);
}

TEST(FlowNetwork, LinkThroughputReflectsActiveFlows) {
  sim::Simulator sim;
  FlowNetwork net(sim);
  Link* l = net.add_link("l", 100.0);
  double a = -1;
  sim.spawn(timed_transfer(sim, net, 1000.0, {l}, 0.0, a));
  sim.schedule(1.0, [&] { EXPECT_NEAR(net.link_throughput(l), 100.0, 1e-9); });
  sim.run();
  EXPECT_NEAR(net.link_throughput(l), 0.0, 1e-12);  // all drained
}

TEST(FlowNetwork, BytesAccounted) {
  sim::Simulator sim;
  FlowNetwork net(sim);
  Link* l = net.add_link("l", 100.0);
  double a = -1, b = -1;
  sim.spawn(timed_transfer(sim, net, 250.0, {l}, 0.0, a));
  sim.spawn(timed_transfer(sim, net, 750.0, {l}, 0.0, b));
  sim.run();
  EXPECT_NEAR(l->bytes_carried(), 1000.0, 1e-9);
}

TEST(FlowNetwork, NegativeBytesThrows) {
  sim::Simulator sim;
  FlowNetwork net(sim);
  Link* l = net.add_link("l", 100.0);
  bool threw = false;
  std::vector<Link*> path{l};
  auto proc = [&]() -> sim::Task<void> {
    try {
      co_await net.transfer(-1.0, path);
    } catch (const std::invalid_argument&) {
      threw = true;
    }
  };
  sim.spawn(proc());
  sim.run();
  EXPECT_TRUE(threw);
}

TEST(FlowNetwork, DuplicateLinkInPathChargedPerTraversal) {
  // A path crossing the same link twice (PCIe peer-to-peer staged through
  // host memory) gets at most half the link's capacity.
  sim::Simulator sim;
  FlowNetwork net(sim);
  Link* bridge = net.add_link("bridge", 100.0);
  double done = -1;
  sim.spawn(timed_transfer(sim, net, 1000.0, {bridge, bridge}, 0.0, done));
  sim.run();
  EXPECT_NEAR(done, 20.0, 1e-9);  // 50 B/s effective
}

// Property-style sweep: N equal flows on one link each get capacity/N and
// all finish at N * bytes / capacity.
class FairShareSweep : public ::testing::TestWithParam<int> {};

TEST_P(FairShareSweep, EqualFlowsFinishTogether) {
  const int n = GetParam();
  sim::Simulator sim;
  FlowNetwork net(sim);
  Link* l = net.add_link("l", 100.0);
  std::vector<double> done(static_cast<std::size_t>(n), -1);
  for (int i = 0; i < n; ++i)
    sim.spawn(timed_transfer(sim, net, 100.0, {l}, 0.0, done[static_cast<std::size_t>(i)]));
  sim.run();
  for (double d : done) EXPECT_NEAR(d, static_cast<double>(n), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Counts, FairShareSweep, ::testing::Values(1, 2, 3, 4, 8, 16, 32));

// Invariant: total rate through a link never exceeds its capacity, sampled
// while a random mix of flows is in flight.
TEST(FlowNetwork, CapacityNeverExceeded) {
  sim::Simulator sim;
  FlowNetwork net(sim);
  Link* shared = net.add_link("shared", 50.0);
  Link* side = net.add_link("side", 20.0);
  std::vector<double> done(6, -1);
  sim.spawn(timed_transfer(sim, net, 100.0, {shared}, 0.0, done[0]));
  sim.spawn(timed_transfer(sim, net, 200.0, {shared, side}, 0.5, done[1]));
  sim.spawn(timed_transfer(sim, net, 300.0, {side}, 1.0, done[2]));
  sim.spawn(timed_transfer(sim, net, 150.0, {shared}, 1.5, done[3]));
  sim.spawn(timed_transfer(sim, net, 50.0, {shared, side}, 2.0, done[4]));
  sim.spawn(timed_transfer(sim, net, 75.0, {side}, 2.5, done[5]));
  for (int i = 1; i <= 40; ++i) {
    sim.schedule(i * 0.25, [&] {
      EXPECT_LE(net.link_throughput(shared), 50.0 + 1e-9);
      EXPECT_LE(net.link_throughput(side), 20.0 + 1e-9);
    });
  }
  sim.run();
  for (double d : done) EXPECT_GT(d, 0.0);
  EXPECT_TRUE(sim.all_processes_done());
}

}  // namespace
}  // namespace stash::hw
