// Tests for the incremental max-min engine: the incrementally maintained
// rates must bitwise-match a from-scratch per-component oracle across
// randomized arrival/departure/capacity-change sequences, refills must stay
// local to the touched component, and the shared-bottleneck fairness the
// figure suite depends on must be unchanged.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "hw/flow_network.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace stash::hw {
namespace {

// Free coroutine functions, not lambdas: a coroutine lambda's captures live
// in the closure object, which dies with the enclosing scope; by-value
// parameters are copied into the coroutine frame and survive suspension.
sim::Task<void> counted_transfer(FlowNetwork& net, double bytes,
                                 std::vector<Link*> path, double latency,
                                 int& done) {
  co_await net.transfer(bytes, std::move(path), latency);
  ++done;
}

sim::Task<void> timed_transfer(sim::Simulator& sim, FlowNetwork& net, double bytes,
                               std::vector<Link*> path, double& done_at) {
  co_await net.transfer(bytes, std::move(path));
  done_at = sim.now();
}

// Randomized sequences of flow arrivals (staggered latencies), natural
// departures and mid-flight capacity changes, with the oracle cross-check
// enabled: verify_against_oracle() throws std::logic_error inside
// rebalance() on any bitwise rate or throughput divergence, so the test
// passes iff the incremental engine tracked the oracle exactly throughout.
struct OracleCase {
  std::uint64_t seed;
  int num_links;
  int num_flows;
  int num_capacity_changes;
};

class IncrementalOracle : public ::testing::TestWithParam<OracleCase> {};

TEST_P(IncrementalOracle, BitwiseMatchesFullRecompute) {
  const OracleCase& oc = GetParam();
  util::Rng rng(oc.seed);
  sim::Simulator sim;
  FlowNetwork net(sim);
  net.set_verify(true);

  std::vector<Link*> links;
  for (int i = 0; i < oc.num_links; ++i)
    links.push_back(net.add_link("l" + std::to_string(i), rng.uniform(10.0, 1000.0)));

  int completed = 0;
  for (int f = 0; f < oc.num_flows; ++f) {
    std::vector<Link*> path;
    int hops = static_cast<int>(rng.uniform_int(1, 4));
    for (int h = 0; h < hops; ++h)
      path.push_back(links[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(links.size()) - 1))]);
    double bytes = rng.uniform(1.0, 5000.0);
    double latency = rng.uniform(0.0, 2.0);
    sim.spawn(counted_transfer(net, bytes, std::move(path), latency, completed));
  }
  for (int c = 0; c < oc.num_capacity_changes; ++c) {
    Link* l = links[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(links.size()) - 1))];
    double cap = rng.uniform(10.0, 1000.0);
    sim.schedule(rng.uniform(0.1, 3.0), [&net, l, cap] { net.update_capacity(l, cap); });
  }

  sim.run();
  EXPECT_EQ(completed, oc.num_flows);
  EXPECT_EQ(net.active_flows(), 0u);
  EXPECT_GT(net.refills(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, IncrementalOracle,
    ::testing::Values(OracleCase{11, 3, 12, 4}, OracleCase{12, 6, 40, 8},
                      OracleCase{13, 10, 80, 12}, OracleCase{14, 1, 25, 5},
                      OracleCase{15, 8, 120, 0}, OracleCase{16, 4, 60, 20},
                      OracleCase{17, 12, 150, 10}, OracleCase{18, 2, 30, 6}));

// Locality: disjoint components must not be revisited when another
// component transitions. Two independent links each carry their own flows;
// the per-refill flow-visit telemetry stays far below "every refill scans
// every active flow".
TEST(IncrementalRefill, DisjointComponentsStayUntouched) {
  sim::Simulator sim;
  FlowNetwork net(sim);
  Link* a = net.add_link("a", 100.0);
  Link* b = net.add_link("b", 100.0);

  int done = 0;
  // One long-lived flow on `a`; a stream of ten short flows on `b` arriving
  // at distinct timestamps, each triggering its own refill of component {b}.
  sim.spawn(counted_transfer(net, 10000.0, {a}, 0.0, done));
  for (int i = 0; i < 10; ++i)
    sim.spawn(counted_transfer(net, 50.0, {b}, 0.3 * i, done));
  sim.run();

  EXPECT_EQ(done, 11);
  // Every refill visits the flows of one component only. With component {a}
  // holding one flow and component {b} at most a handful, the average visit
  // count per refill must stay near component size, not total flow count.
  EXPECT_GT(net.refills(), 0u);
  EXPECT_LT(net.refill_flow_visits(), net.refills() * 6);
}

// Shared-bottleneck fairness across two network tiers, the regression the
// figure suite depends on: a fast "NVLink" tier link and a slow "NIC" tier
// link, with one flow on each tier plus one flow crossing both. Max-min:
// the crossing flow is capped by the NIC share, the NVLink-only flow soaks
// up the slack.
TEST(IncrementalRefill, TwoTierSharedBottleneckFairness) {
  sim::Simulator sim;
  FlowNetwork net(sim);
  net.set_verify(true);
  Link* nvlink = net.add_link("nvlink", 1000.0);
  Link* nic = net.add_link("nic", 100.0);

  double t_nv = -1, t_nic = -1, t_cross = -1;
  sim.spawn(timed_transfer(sim, net, 9500.0, {nvlink}, t_nv));
  sim.spawn(timed_transfer(sim, net, 500.0, {nic}, t_nic));
  sim.spawn(timed_transfer(sim, net, 500.0, {nvlink, nic}, t_cross));

  // At t=0: nic splits 50/50 between its two flows; the crossing flow is
  // frozen at 50, so the nvlink-only flow takes the remaining 950.
  sim.schedule(1.0, [&] {
    EXPECT_NEAR(net.link_throughput(nic), 100.0, 1e-9);
    EXPECT_NEAR(net.link_throughput(nvlink), 1000.0, 1e-9);
  });
  sim.run();

  // Both nic flows drain 500 B at 50 B/s -> t=10; the nvlink flow runs at
  // 950 B/s until it drains its 9500 B: 9500 = 950*10 exactly -> t=10.
  EXPECT_NEAR(t_nic, 10.0, 1e-9);
  EXPECT_NEAR(t_cross, 10.0, 1e-9);
  EXPECT_NEAR(t_nv, 10.0, 1e-9);
}

// A capacity change on a shared link re-shares in-flight flows after
// settling progress at the old rates, and the oracle agrees throughout.
TEST(IncrementalRefill, CapacityChangeResharesMidFlight) {
  sim::Simulator sim;
  FlowNetwork net(sim);
  net.set_verify(true);
  Link* l = net.add_link("l", 100.0);
  double a = -1, b = -1;
  sim.spawn(timed_transfer(sim, net, 1000.0, {l}, a));
  sim.spawn(timed_transfer(sim, net, 1000.0, {l}, b));
  sim.schedule(10.0, [&] { net.update_capacity(l, 50.0); });
  sim.run();
  // 50 B/s each for 10 s (500 B left each), then 25 B/s each -> +20 s.
  EXPECT_NEAR(a, 30.0, 1e-9);
  EXPECT_NEAR(b, 30.0, 1e-9);
}

}  // namespace
}  // namespace stash::hw
