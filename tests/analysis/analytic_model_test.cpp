#include "analysis/analytic_model.h"

#include <gtest/gtest.h>

#include "dnn/resnet.h"
#include "dnn/vgg.h"
#include "dnn/zoo.h"
#include "util/units.h"

namespace stash::analysis {
namespace {

using util::gb_per_s;
using util::mib;

TEST(TransferTime, MatchesPaperFormula) {
  TransferModel m{1e-4, 1e9};
  // (tau + G/(L*B)) * L = tau*L + G/B
  EXPECT_NEAR(per_layer_transfer_time(1e9, 100, m), 1e-4 * 100 + 1.0, 1e-12);
  EXPECT_THROW(per_layer_transfer_time(1.0, 0, m), std::invalid_argument);
  EXPECT_THROW(per_layer_transfer_time(1.0, 1, TransferModel{0, 0}),
               std::invalid_argument);
}

TEST(Regime, FastLinkIsLatencyBound) {
  // NVLink: G/B negligible, tau*L dominates (paper: T ~ tau*L).
  TransferModel nvlink{5e-4, gb_per_s(22)};
  dnn::Model resnet = dnn::make_resnet(152);
  Regime r = classify_regime(resnet.gradient_bytes(),
                             static_cast<int>(resnet.num_param_tensors()), nvlink);
  EXPECT_EQ(r, Regime::kLatencyBound);
}

TEST(Regime, SlowLinkIsBandwidthBound) {
  // 10 Gbps NIC: G/B dominates (paper: T ~ G/B).
  TransferModel nic{1e-4, util::gbps(10)};
  dnn::Model vgg = dnn::make_vgg(16);
  Regime r = classify_regime(vgg.gradient_bytes(),
                             static_cast<int>(vgg.num_param_tensors()), nic);
  EXPECT_EQ(r, Regime::kBandwidthBound);
}

TEST(Regime, Names) {
  EXPECT_EQ(regime_name(Regime::kLatencyBound), "latency-bound");
  EXPECT_EQ(regime_name(Regime::kBandwidthBound), "bandwidth-bound");
  EXPECT_EQ(regime_name(Regime::kMixed), "mixed");
}

TEST(PaperArgument, DeeperModelSlowerOnFastLink) {
  // §VI-A2: L_res > L_vgg => T_res > T_vgg on NVLink...
  TransferModel nvlink{1e-4, gb_per_s(22)};
  dnn::Model res = dnn::make_resnet(152);
  dnn::Model vgg = dnn::make_vgg(16);
  double t_res = per_layer_transfer_time(
      res.gradient_bytes(), static_cast<int>(res.num_param_tensors()), nvlink);
  double t_vgg = per_layer_transfer_time(
      vgg.gradient_bytes(), static_cast<int>(vgg.num_param_tensors()), nvlink);
  EXPECT_GT(t_res, t_vgg);
}

TEST(PaperArgument, HeavierModelSlowerOnSlowLink) {
  // ...and G_vgg > G_res => T_vgg > T_res on the network.
  TransferModel nic{1e-4, util::gbps(10)};
  dnn::Model res = dnn::make_resnet(152);
  dnn::Model vgg = dnn::make_vgg(16);
  double t_res = per_layer_transfer_time(
      res.gradient_bytes(), static_cast<int>(res.num_param_tensors()), nic);
  double t_vgg = per_layer_transfer_time(
      vgg.gradient_bytes(), static_cast<int>(vgg.num_param_tensors()), nic);
  EXPECT_GT(t_vgg, t_res);
}

TEST(RingBottleneck, ByInterconnectKind) {
  using profiler::ClusterSpec;
  // PCIe: bridge shared by 2 traversals x k flows.
  double p2_16 = ring_bottleneck_bw(ClusterSpec{"p2.16xlarge"});
  double p2_8 = ring_bottleneck_bw(ClusterSpec{"p2.8xlarge"});
  EXPECT_LT(p2_16, p2_8);
  // NVLink full mesh.
  EXPECT_NEAR(ring_bottleneck_bw(ClusterSpec{"p3.16xlarge"}), gb_per_s(22), 1.0);
  // Fragmented quad: PCIe hop.
  EXPECT_LT(ring_bottleneck_bw(ClusterSpec{"p3.8xlarge"}), gb_per_s(22));
  ClusterSpec full{"p3.8xlarge"};
  full.slice = cloud::CrossbarSlice::kFullQuad;
  EXPECT_NEAR(ring_bottleneck_bw(full), gb_per_s(22), 1.0);
  // Multi-machine: the NIC.
  EXPECT_NEAR(ring_bottleneck_bw(ClusterSpec{"p3.8xlarge", 2}), util::gbps(10), 1.0);
}

TEST(EffectiveTau, ScalesWithRingSize) {
  coll::CollectiveConfig cfg;
  using profiler::ClusterSpec;
  double tau8 = effective_tau(ClusterSpec{"p3.16xlarge"}, cfg);
  double tau16 = effective_tau(ClusterSpec{"p2.16xlarge"}, cfg);
  EXPECT_NEAR(tau8, 14 * cfg.intra_round_latency, 1e-12);
  EXPECT_NEAR(tau16, 30 * cfg.intra_round_latency, 1e-12);
  double tau1 = effective_tau(ClusterSpec{"p2.xlarge"}, cfg);
  EXPECT_DOUBLE_EQ(tau1, 0.0);
}

TEST(PredictComm, ZeroForSingleGpu) {
  coll::CollectiveConfig cfg;
  EXPECT_DOUBLE_EQ(
      predict_comm_seconds(dnn::make_resnet18(), profiler::ClusterSpec{"p3.2xlarge"},
                           cfg),
      0.0);
}

TEST(PredictComm, NetworkCostsMoreThanNvlink) {
  coll::CollectiveConfig cfg;
  dnn::Model vgg = dnn::make_vgg11();
  double nv = predict_comm_seconds(vgg, profiler::ClusterSpec{"p3.16xlarge"}, cfg);
  double nw = predict_comm_seconds(vgg, profiler::ClusterSpec{"p3.8xlarge", 2}, cfg);
  EXPECT_GT(nw, 5.0 * nv);
}

TEST(PredictStall, VggResnetAsymmetry) {
  coll::CollectiveConfig cfg;
  dnn::Model vgg = dnn::make_vgg11();
  dnn::Model res = dnn::make_resnet50();
  using profiler::ClusterSpec;
  // Interconnect: ResNet stalls more; network: VGG stalls more.
  double ic_vgg = predict_comm_stall_pct(vgg, ClusterSpec{"p3.16xlarge"}, 32, cfg);
  double ic_res = predict_comm_stall_pct(res, ClusterSpec{"p3.16xlarge"}, 32, cfg);
  double nw_vgg = predict_comm_stall_pct(vgg, ClusterSpec{"p3.8xlarge", 2}, 32, cfg);
  double nw_res = predict_comm_stall_pct(res, ClusterSpec{"p3.8xlarge", 2}, 32, cfg);
  EXPECT_LE(ic_vgg, ic_res);
  EXPECT_GT(nw_vgg, nw_res);
}

TEST(PredictStall, InvalidBatchThrows) {
  coll::CollectiveConfig cfg;
  EXPECT_THROW(predict_comm_stall_pct(dnn::make_resnet18(),
                                      profiler::ClusterSpec{"p3.16xlarge"}, 0, cfg),
               std::invalid_argument);
}

}  // namespace
}  // namespace stash::analysis
