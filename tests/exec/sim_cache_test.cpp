#include "exec/sim_cache.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <optional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "dnn/zoo.h"
#include "exec/thread_pool.h"

namespace stash::exec {
namespace {

ScenarioKey key_with(const std::function<void(ddl::TrainConfig&)>& tweak,
                     int step = 1, std::uint64_t seed = 0,
                     const std::string& instance = "p3.8xlarge", int count = 1) {
  dnn::Model model = dnn::make_zoo_model("resnet18");
  dnn::Dataset data = dnn::dataset_for("resnet18");
  profiler::ClusterSpec spec;
  spec.instance = instance;
  spec.count = count;
  ddl::TrainConfig cfg;
  tweak(cfg);
  return scenario_key(model, data, spec, step, cfg, seed);
}

TEST(KeyBuilder, OrderAndTagsAreContent) {
  KeyBuilder a, b, c;
  a.add("x", 1).add("y", 2);
  b.add("y", 2).add("x", 1);
  c.add("x", 1).add("y", 2);
  EXPECT_NE(a.canonical(), b.canonical());
  EXPECT_EQ(a.canonical(), c.canonical());
  EXPECT_EQ(a.hash(), c.hash());
}

TEST(KeyBuilder, DoublesUseRoundTripEncoding) {
  KeyBuilder a, b;
  a.add("v", 0.1);
  b.add("v", 0.1 + 1e-18);  // same double after rounding
  EXPECT_EQ(a.canonical(), b.canonical());
  KeyBuilder c;
  c.add("v", 0.2);
  EXPECT_NE(a.canonical(), c.canonical());
}

TEST(ScenarioKeyTest, IdenticalInputsProduceIdenticalKeys) {
  ScenarioKey a = key_with([](ddl::TrainConfig&) {});
  ScenarioKey b = key_with([](ddl::TrainConfig&) {});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash, b.hash);
}

TEST(ScenarioKeyTest, EverySemanticFieldChangesTheKey) {
  const ScenarioKey base = key_with([](ddl::TrainConfig&) {});
  auto differs = [&](const ScenarioKey& k) { return !(k == base); };

  EXPECT_TRUE(differs(key_with([](ddl::TrainConfig&) {}, /*step=*/2)));
  EXPECT_TRUE(differs(key_with([](ddl::TrainConfig&) {}, 1, /*seed=*/7)));
  EXPECT_TRUE(differs(key_with([](ddl::TrainConfig&) {}, 1, 0, "p2.8xlarge")));
  EXPECT_TRUE(differs(key_with([](ddl::TrainConfig&) {}, 1, 0, "p3.8xlarge", 2)));
  EXPECT_TRUE(differs(key_with([](ddl::TrainConfig& c) { c.per_gpu_batch = 64; })));
  EXPECT_TRUE(differs(key_with([](ddl::TrainConfig& c) { c.iterations = 16; })));
  EXPECT_TRUE(differs(key_with([](ddl::TrainConfig& c) { c.warmup_iterations = 0; })));
  EXPECT_TRUE(differs(key_with([](ddl::TrainConfig& c) { c.bucket_bytes = 25e6; })));
  EXPECT_TRUE(differs(key_with([](ddl::TrainConfig& c) { c.synthetic_data = false; })));
  EXPECT_TRUE(differs(key_with([](ddl::TrainConfig& c) { c.cold_cache = true; })));
  EXPECT_TRUE(differs(key_with([](ddl::TrainConfig& c) { c.loader_workers_per_gpu = 5; })));
  EXPECT_TRUE(differs(key_with([](ddl::TrainConfig& c) { c.prefetch_depth = 2; })));
  EXPECT_TRUE(differs(key_with([](ddl::TrainConfig& c) {
    c.use_gpus.push_back(hw::GpuRef{0, 0});
  })));
  EXPECT_TRUE(differs(key_with([](ddl::TrainConfig& c) {
    c.comm_reduction.kind = ddl::CommReduction::kFp16;
  })));
  EXPECT_TRUE(differs(key_with([](ddl::TrainConfig& c) {
    c.straggler.worker_index = 1;
    c.straggler.slowdown = 2.0;
  })));
  EXPECT_TRUE(differs(key_with([](ddl::TrainConfig& c) { c.optimizer_overhead = 0.05; })));
  EXPECT_TRUE(differs(key_with([](ddl::TrainConfig& c) { c.enforce_memory = false; })));
}

TEST(ScenarioKeyTest, ModelAndDatasetAreContent) {
  profiler::ClusterSpec spec;
  spec.instance = "p3.8xlarge";
  ddl::TrainConfig cfg;
  ScenarioKey r18 = scenario_key(dnn::make_zoo_model("resnet18"),
                                 dnn::dataset_for("resnet18"), spec, 1, cfg);
  ScenarioKey r50 = scenario_key(dnn::make_zoo_model("resnet50"),
                                 dnn::dataset_for("resnet50"), spec, 1, cfg);
  EXPECT_FALSE(r18 == r50);
}

TEST(Cacheable, SinkAndFaultRunsAreNot) {
  ddl::TrainConfig cfg;
  EXPECT_TRUE(cacheable(cfg));

  util::TraceRecorder trace;
  cfg.trace = &trace;
  EXPECT_FALSE(cacheable(cfg));
  cfg.trace = nullptr;

  telemetry::MetricsRegistry reg;
  cfg.metrics = &reg;
  EXPECT_FALSE(cacheable(cfg));
  cfg.metrics = nullptr;

  faults::FaultState state{faults::FaultPlan{}};
  cfg.fault_tolerance.faults = &state;
  EXPECT_FALSE(cacheable(cfg));
  cfg.fault_tolerance.faults = nullptr;
  EXPECT_TRUE(cacheable(cfg));
}

ScenarioKey toy_key(int i) {
  KeyBuilder kb;
  kb.add("toy", i);
  return ScenarioKey{kb.hash(), kb.canonical()};
}

TEST(SimCache, MemoizesAndCountsHits) {
  SimCache cache;
  int runs = 0;
  auto fn = [&] {
    ++runs;
    ddl::TrainResult r;
    r.per_iteration = 1.5;
    return r;
  };
  EXPECT_DOUBLE_EQ(cache.get_or_run(toy_key(1), fn).per_iteration, 1.5);
  EXPECT_DOUBLE_EQ(cache.get_or_run(toy_key(1), fn).per_iteration, 1.5);
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);

  cache.get_or_run(toy_key(2), fn);
  EXPECT_EQ(runs, 2);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(SimCache, FindPeeksWithoutComputing) {
  SimCache cache;
  EXPECT_FALSE(cache.find(toy_key(1)).has_value());
  cache.get_or_run(toy_key(1), [] {
    ddl::TrainResult r;
    r.per_iteration = 2.0;
    return r;
  });
  std::optional<ddl::TrainResult> hit = cache.find(toy_key(1));
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->per_iteration, 2.0);
}

TEST(SimCache, ExactlyOnceUnderConcurrency) {
  SimCache cache;
  std::atomic<int> runs{0};
  auto fn = [&] {
    runs.fetch_add(1);
    // Widen the in-flight window so waiters really do block on the slot.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ddl::TrainResult r;
    r.per_iteration = 3.0;
    return r;
  };
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int t = 0; t < 8; ++t)
    threads.emplace_back([&] {
      if (cache.get_or_run(toy_key(42), fn).per_iteration == 3.0) ok.fetch_add(1);
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(runs.load(), 1);
  EXPECT_EQ(ok.load(), 8);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 7u);
}

TEST(SimCache, MemoizesExceptions) {
  SimCache cache;
  int runs = 0;
  auto fn = [&]() -> ddl::TrainResult {
    ++runs;
    throw std::runtime_error("does not fit");
  };
  EXPECT_THROW(cache.get_or_run(toy_key(9), fn), std::runtime_error);
  EXPECT_THROW(cache.get_or_run(toy_key(9), fn), std::runtime_error);
  EXPECT_EQ(runs, 1);  // deterministic failures fail deterministically
  EXPECT_FALSE(cache.find(toy_key(9)).has_value());  // errors are not results
}

ddl::TrainResult result_with(double per_iteration) {
  ddl::TrainResult r;
  r.per_iteration = per_iteration;
  return r;
}

TEST(SimCache, LruEvictsOldestCompletedEntry) {
  SimCacheConfig cfg;
  cfg.max_entries = 2;
  SimCache cache(cfg);
  cache.get_or_run(toy_key(1), [] { return result_with(1.0); });
  cache.get_or_run(toy_key(2), [] { return result_with(2.0); });
  cache.get_or_run(toy_key(3), [] { return result_with(3.0); });  // evicts 1
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_FALSE(cache.find(toy_key(1)).has_value());
  EXPECT_TRUE(cache.find(toy_key(2)).has_value());
  EXPECT_TRUE(cache.find(toy_key(3)).has_value());
}

TEST(SimCache, HitRefreshesRecency) {
  SimCacheConfig cfg;
  cfg.max_entries = 2;
  SimCache cache(cfg);
  cache.get_or_run(toy_key(1), [] { return result_with(1.0); });
  cache.get_or_run(toy_key(2), [] { return result_with(2.0); });
  // Touch 1 so 2 becomes the LRU victim.
  cache.get_or_run(toy_key(1), [] { return result_with(-1.0); });
  cache.get_or_run(toy_key(3), [] { return result_with(3.0); });  // evicts 2
  EXPECT_TRUE(cache.find(toy_key(1)).has_value());
  EXPECT_FALSE(cache.find(toy_key(2)).has_value());
  EXPECT_TRUE(cache.find(toy_key(3)).has_value());
}

TEST(SimCache, EvictedKeyCountsAsMissAndReruns) {
  SimCacheConfig cfg;
  cfg.max_entries = 1;
  SimCache cache(cfg);
  int runs = 0;
  auto fn = [&] {
    ++runs;
    return result_with(1.0);
  };
  cache.get_or_run(toy_key(1), fn);
  cache.get_or_run(toy_key(2), fn);  // evicts 1
  cache.get_or_run(toy_key(1), fn);  // miss again: really re-runs
  EXPECT_EQ(runs, 3);
  EXPECT_EQ(cache.misses(), 3u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.evictions(), 2u);
  // hits + misses always equals total get_or_run calls.
  EXPECT_EQ(cache.hits() + cache.misses(), 3u);
}

TEST(SimCache, ByteCapBoundsResidency) {
  SimCacheConfig cfg;
  // Each entry weighs at least sizeof(TrainResult) + key bytes; a cap of
  // three sizeofs keeps at most ~2 entries resident regardless of count.
  cfg.max_bytes = 3 * sizeof(ddl::TrainResult);
  SimCache cache(cfg);
  for (int i = 0; i < 32; ++i)
    cache.get_or_run(toy_key(i), [] { return result_with(1.0); });
  EXPECT_LE(cache.size(), 2u);
  EXPECT_LE(cache.bytes(), cfg.max_bytes);
  EXPECT_GE(cache.evictions(), 30u);
}

TEST(SimCache, SizeTracksEvictions) {
  SimCacheConfig cfg;
  cfg.max_entries = 4;
  SimCache cache(cfg);
  for (int i = 0; i < 100; ++i)
    cache.get_or_run(toy_key(i), [] { return result_with(1.0); });
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.evictions(), 96u);
}

TEST(TrainResultJson, RoundTripsAllFields) {
  ddl::TrainResult r;
  r.measured_iterations = 12;
  r.window_time = 34.5;
  r.per_iteration = 2.875;
  r.data_wait = 0.25;
  r.h2d_time = 0.125;
  r.compute_time = 1.5;
  r.comm_tail = 1.0;
  r.gpus_used = 8;
  r.fault_stall = 3.25;
  r.checkpoint_seconds = 0.5;
  r.checkpoints_written = 2;
  r.gpus_at_end = 7;
  ddl::RecoveryRecord rec;
  rec.time_s = 10.0;
  rec.at_iteration = 5;
  rec.policy = ddl::RecoveryPolicy::kShrink;
  rec.workers_before = 8;
  rec.workers_after = 7;
  rec.wait_seconds = 1.5;
  rec.rework_iterations = 3;
  r.recoveries.push_back(rec);

  std::optional<ddl::TrainResult> back =
      train_result_from_json(train_result_to_json(r));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->measured_iterations, 12);
  EXPECT_DOUBLE_EQ(back->window_time, 34.5);
  EXPECT_DOUBLE_EQ(back->per_iteration, 2.875);
  EXPECT_DOUBLE_EQ(back->data_wait, 0.25);
  EXPECT_DOUBLE_EQ(back->h2d_time, 0.125);
  EXPECT_DOUBLE_EQ(back->compute_time, 1.5);
  EXPECT_DOUBLE_EQ(back->comm_tail, 1.0);
  EXPECT_EQ(back->gpus_used, 8);
  EXPECT_DOUBLE_EQ(back->fault_stall, 3.25);
  EXPECT_DOUBLE_EQ(back->checkpoint_seconds, 0.5);
  EXPECT_EQ(back->checkpoints_written, 2);
  EXPECT_EQ(back->gpus_at_end, 7);
  ASSERT_EQ(back->recoveries.size(), 1u);
  EXPECT_EQ(back->recoveries[0].policy, ddl::RecoveryPolicy::kShrink);
  EXPECT_EQ(back->recoveries[0].workers_after, 7);
  EXPECT_DOUBLE_EQ(back->recoveries[0].wait_seconds, 1.5);
}

TEST(TrainResultJson, RejectsGarbage) {
  EXPECT_FALSE(train_result_from_json("not json").has_value());
  EXPECT_FALSE(train_result_from_json("{}").has_value());
  EXPECT_FALSE(train_result_from_json("[1,2,3]").has_value());
}

class SimCachePersistTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/sim_cache_persist_" +
           std::to_string(::getpid()) + "_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

TEST_F(SimCachePersistTest, RestartAnswersFromDiskWithoutRerunning) {
  SimCacheConfig cfg;
  cfg.persist_dir = dir_;
  int runs = 0;
  auto fn = [&] {
    ++runs;
    return result_with(4.25);
  };
  {
    SimCache first(cfg);
    first.get_or_run(toy_key(1), fn);
    EXPECT_EQ(first.disk_hits(), 0u);
  }
  // A fresh cache (new process, same directory) must not re-simulate.
  SimCache second(cfg);
  EXPECT_DOUBLE_EQ(second.get_or_run(toy_key(1), fn).per_iteration, 4.25);
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(second.disk_hits(), 1u);
  EXPECT_EQ(second.misses(), 1u);  // a disk hit is still a memory miss
}

TEST_F(SimCachePersistTest, ExceptionsAreNeverPersisted) {
  SimCacheConfig cfg;
  cfg.persist_dir = dir_;
  int runs = 0;
  auto fn = [&]() -> ddl::TrainResult {
    ++runs;
    throw std::runtime_error("does not fit");
  };
  {
    SimCache first(cfg);
    EXPECT_THROW(first.get_or_run(toy_key(9), fn), std::runtime_error);
  }
  SimCache second(cfg);
  EXPECT_THROW(second.get_or_run(toy_key(9), fn), std::runtime_error);
  EXPECT_EQ(runs, 2);  // the failure re-ran: only results persist
  EXPECT_EQ(second.disk_hits(), 0u);
}

TEST_F(SimCachePersistTest, CorruptFileIsJustAMiss) {
  SimCacheConfig cfg;
  cfg.persist_dir = dir_;
  SimCache first(cfg);
  first.get_or_run(toy_key(1), [] { return result_with(1.0); });
  // Truncate every persisted file to simulate a torn write.
  for (const auto& e : std::filesystem::directory_iterator(dir_))
    std::ofstream(e.path(), std::ios::trunc) << "{torn";
  int runs = 0;
  SimCache second(cfg);
  second.get_or_run(toy_key(1), [&] {
    ++runs;
    return result_with(1.0);
  });
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(second.disk_hits(), 0u);
}

TEST_F(SimCachePersistTest, DiskHitVerifiesCanonicalKey) {
  SimCacheConfig cfg;
  cfg.persist_dir = dir_;
  SimCache first(cfg);
  const ScenarioKey a{777, "scenario-a"};
  const ScenarioKey b{777, "scenario-b"};  // same hash → same file name
  first.get_or_run(a, [] { return result_with(1.0); });
  int runs = 0;
  SimCache second(cfg);
  // b's file exists (shared hash) but holds a's canonical: must re-run.
  EXPECT_DOUBLE_EQ(second
                       .get_or_run(b,
                                   [&] {
                                     ++runs;
                                     return result_with(2.0);
                                   })
                       .per_iteration,
                   2.0);
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(second.disk_hits(), 0u);
}

TEST(SimCache, HashCollisionServedByCanonicalComparison) {
  // Two keys with the SAME hash but different canonical strings must get
  // distinct slots — the canonical string is the real identity.
  SimCache cache;
  ScenarioKey a{1234, "scenario-a"};
  ScenarioKey b{1234, "scenario-b"};
  auto make = [](double v) {
    return [v] {
      ddl::TrainResult r;
      r.per_iteration = v;
      return r;
    };
  };
  EXPECT_DOUBLE_EQ(cache.get_or_run(a, make(1.0)).per_iteration, 1.0);
  EXPECT_DOUBLE_EQ(cache.get_or_run(b, make(2.0)).per_iteration, 2.0);
  EXPECT_EQ(cache.size(), 2u);
}

}  // namespace
}  // namespace stash::exec
