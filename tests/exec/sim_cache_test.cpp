#include "exec/sim_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "dnn/zoo.h"
#include "exec/thread_pool.h"

namespace stash::exec {
namespace {

ScenarioKey key_with(const std::function<void(ddl::TrainConfig&)>& tweak,
                     int step = 1, std::uint64_t seed = 0,
                     const std::string& instance = "p3.8xlarge", int count = 1) {
  dnn::Model model = dnn::make_zoo_model("resnet18");
  dnn::Dataset data = dnn::dataset_for("resnet18");
  profiler::ClusterSpec spec;
  spec.instance = instance;
  spec.count = count;
  ddl::TrainConfig cfg;
  tweak(cfg);
  return scenario_key(model, data, spec, step, cfg, seed);
}

TEST(KeyBuilder, OrderAndTagsAreContent) {
  KeyBuilder a, b, c;
  a.add("x", 1).add("y", 2);
  b.add("y", 2).add("x", 1);
  c.add("x", 1).add("y", 2);
  EXPECT_NE(a.canonical(), b.canonical());
  EXPECT_EQ(a.canonical(), c.canonical());
  EXPECT_EQ(a.hash(), c.hash());
}

TEST(KeyBuilder, DoublesUseRoundTripEncoding) {
  KeyBuilder a, b;
  a.add("v", 0.1);
  b.add("v", 0.1 + 1e-18);  // same double after rounding
  EXPECT_EQ(a.canonical(), b.canonical());
  KeyBuilder c;
  c.add("v", 0.2);
  EXPECT_NE(a.canonical(), c.canonical());
}

TEST(ScenarioKeyTest, IdenticalInputsProduceIdenticalKeys) {
  ScenarioKey a = key_with([](ddl::TrainConfig&) {});
  ScenarioKey b = key_with([](ddl::TrainConfig&) {});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash, b.hash);
}

TEST(ScenarioKeyTest, EverySemanticFieldChangesTheKey) {
  const ScenarioKey base = key_with([](ddl::TrainConfig&) {});
  auto differs = [&](const ScenarioKey& k) { return !(k == base); };

  EXPECT_TRUE(differs(key_with([](ddl::TrainConfig&) {}, /*step=*/2)));
  EXPECT_TRUE(differs(key_with([](ddl::TrainConfig&) {}, 1, /*seed=*/7)));
  EXPECT_TRUE(differs(key_with([](ddl::TrainConfig&) {}, 1, 0, "p2.8xlarge")));
  EXPECT_TRUE(differs(key_with([](ddl::TrainConfig&) {}, 1, 0, "p3.8xlarge", 2)));
  EXPECT_TRUE(differs(key_with([](ddl::TrainConfig& c) { c.per_gpu_batch = 64; })));
  EXPECT_TRUE(differs(key_with([](ddl::TrainConfig& c) { c.iterations = 16; })));
  EXPECT_TRUE(differs(key_with([](ddl::TrainConfig& c) { c.warmup_iterations = 0; })));
  EXPECT_TRUE(differs(key_with([](ddl::TrainConfig& c) { c.bucket_bytes = 25e6; })));
  EXPECT_TRUE(differs(key_with([](ddl::TrainConfig& c) { c.synthetic_data = false; })));
  EXPECT_TRUE(differs(key_with([](ddl::TrainConfig& c) { c.cold_cache = true; })));
  EXPECT_TRUE(differs(key_with([](ddl::TrainConfig& c) { c.loader_workers_per_gpu = 5; })));
  EXPECT_TRUE(differs(key_with([](ddl::TrainConfig& c) { c.prefetch_depth = 2; })));
  EXPECT_TRUE(differs(key_with([](ddl::TrainConfig& c) {
    c.use_gpus.push_back(hw::GpuRef{0, 0});
  })));
  EXPECT_TRUE(differs(key_with([](ddl::TrainConfig& c) {
    c.comm_reduction.kind = ddl::CommReduction::kFp16;
  })));
  EXPECT_TRUE(differs(key_with([](ddl::TrainConfig& c) {
    c.straggler.worker_index = 1;
    c.straggler.slowdown = 2.0;
  })));
  EXPECT_TRUE(differs(key_with([](ddl::TrainConfig& c) { c.optimizer_overhead = 0.05; })));
  EXPECT_TRUE(differs(key_with([](ddl::TrainConfig& c) { c.enforce_memory = false; })));
}

TEST(ScenarioKeyTest, ModelAndDatasetAreContent) {
  profiler::ClusterSpec spec;
  spec.instance = "p3.8xlarge";
  ddl::TrainConfig cfg;
  ScenarioKey r18 = scenario_key(dnn::make_zoo_model("resnet18"),
                                 dnn::dataset_for("resnet18"), spec, 1, cfg);
  ScenarioKey r50 = scenario_key(dnn::make_zoo_model("resnet50"),
                                 dnn::dataset_for("resnet50"), spec, 1, cfg);
  EXPECT_FALSE(r18 == r50);
}

TEST(Cacheable, SinkAndFaultRunsAreNot) {
  ddl::TrainConfig cfg;
  EXPECT_TRUE(cacheable(cfg));

  util::TraceRecorder trace;
  cfg.trace = &trace;
  EXPECT_FALSE(cacheable(cfg));
  cfg.trace = nullptr;

  telemetry::MetricsRegistry reg;
  cfg.metrics = &reg;
  EXPECT_FALSE(cacheable(cfg));
  cfg.metrics = nullptr;

  faults::FaultState state{faults::FaultPlan{}};
  cfg.fault_tolerance.faults = &state;
  EXPECT_FALSE(cacheable(cfg));
  cfg.fault_tolerance.faults = nullptr;
  EXPECT_TRUE(cacheable(cfg));
}

ScenarioKey toy_key(int i) {
  KeyBuilder kb;
  kb.add("toy", i);
  return ScenarioKey{kb.hash(), kb.canonical()};
}

TEST(SimCache, MemoizesAndCountsHits) {
  SimCache cache;
  int runs = 0;
  auto fn = [&] {
    ++runs;
    ddl::TrainResult r;
    r.per_iteration = 1.5;
    return r;
  };
  EXPECT_DOUBLE_EQ(cache.get_or_run(toy_key(1), fn).per_iteration, 1.5);
  EXPECT_DOUBLE_EQ(cache.get_or_run(toy_key(1), fn).per_iteration, 1.5);
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);

  cache.get_or_run(toy_key(2), fn);
  EXPECT_EQ(runs, 2);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(SimCache, FindPeeksWithoutComputing) {
  SimCache cache;
  EXPECT_EQ(cache.find(toy_key(1)), nullptr);
  cache.get_or_run(toy_key(1), [] {
    ddl::TrainResult r;
    r.per_iteration = 2.0;
    return r;
  });
  const ddl::TrainResult* hit = cache.find(toy_key(1));
  ASSERT_NE(hit, nullptr);
  EXPECT_DOUBLE_EQ(hit->per_iteration, 2.0);
}

TEST(SimCache, ExactlyOnceUnderConcurrency) {
  SimCache cache;
  std::atomic<int> runs{0};
  auto fn = [&] {
    runs.fetch_add(1);
    // Widen the in-flight window so waiters really do block on the slot.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ddl::TrainResult r;
    r.per_iteration = 3.0;
    return r;
  };
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int t = 0; t < 8; ++t)
    threads.emplace_back([&] {
      if (cache.get_or_run(toy_key(42), fn).per_iteration == 3.0) ok.fetch_add(1);
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(runs.load(), 1);
  EXPECT_EQ(ok.load(), 8);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 7u);
}

TEST(SimCache, MemoizesExceptions) {
  SimCache cache;
  int runs = 0;
  auto fn = [&]() -> ddl::TrainResult {
    ++runs;
    throw std::runtime_error("does not fit");
  };
  EXPECT_THROW(cache.get_or_run(toy_key(9), fn), std::runtime_error);
  EXPECT_THROW(cache.get_or_run(toy_key(9), fn), std::runtime_error);
  EXPECT_EQ(runs, 1);  // deterministic failures fail deterministically
  EXPECT_EQ(cache.find(toy_key(9)), nullptr);  // errors are not results
}

TEST(SimCache, HashCollisionServedByCanonicalComparison) {
  // Two keys with the SAME hash but different canonical strings must get
  // distinct slots — the canonical string is the real identity.
  SimCache cache;
  ScenarioKey a{1234, "scenario-a"};
  ScenarioKey b{1234, "scenario-b"};
  auto make = [](double v) {
    return [v] {
      ddl::TrainResult r;
      r.per_iteration = v;
      return r;
    };
  };
  EXPECT_DOUBLE_EQ(cache.get_or_run(a, make(1.0)).per_iteration, 1.0);
  EXPECT_DOUBLE_EQ(cache.get_or_run(b, make(2.0)).per_iteration, 2.0);
  EXPECT_EQ(cache.size(), 2u);
}

}  // namespace
}  // namespace stash::exec
