#include "exec/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

namespace stash::exec {
namespace {

TEST(DefaultJobs, AtLeastOne) { EXPECT_GE(default_jobs(), 1); }

TEST(ThreadPool, ZeroWorkersRunsPostInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0);
  bool ran = false;
  pool.post([&] { ran = true; });
  // With no workers post() must execute before returning — nothing else
  // could ever drain the queue.
  EXPECT_TRUE(ran);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  constexpr std::size_t kN = 500;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(&pool, kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, NullPoolIsSerialInOrder) {
  std::vector<std::size_t> order;
  parallel_for(nullptr, 5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, ZeroItemsIsANoOp) {
  ThreadPool pool(2);
  parallel_for(&pool, 0, [&](std::size_t) { FAIL() << "body must not run"; });
}

TEST(ParallelFor, NestedRegionsDoNotDeadlock) {
  // recommend() fans candidates out, each candidate's profile() fans its
  // five steps out on the SAME pool. Caller-helps must keep both levels
  // progressing even with fewer workers than outer items.
  ThreadPool pool(2);
  constexpr std::size_t kOuter = 8, kInner = 8;
  std::atomic<int> total{0};
  parallel_for(&pool, kOuter, [&](std::size_t) {
    parallel_for(&pool, kInner, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), static_cast<int>(kOuter * kInner));
}

TEST(ParallelFor, RethrowsLowestIndexException) {
  ThreadPool pool(4);
  for (int attempt = 0; attempt < 5; ++attempt) {
    try {
      parallel_for(&pool, 64, [&](std::size_t i) {
        if (i % 7 == 3) throw std::runtime_error("item " + std::to_string(i));
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      // A serial loop would fail at i=3 first; the parallel region must
      // surface that same exception no matter which item failed first in
      // wall-clock order.
      EXPECT_STREQ(e.what(), "item 3");
    }
  }
}

TEST(ParallelFor, CompletesAllItemsDespiteExceptions) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  EXPECT_THROW(parallel_for(&pool, 32,
                            [&](std::size_t i) {
                              ran.fetch_add(1);
                              if (i == 0) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
  // wait_and_rethrow blocks until every claimed item finished, and the
  // cursor hands out all items regardless of failures.
  EXPECT_EQ(ran.load(), 32);
}

}  // namespace
}  // namespace stash::exec
