#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace stash::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
}

TEST(Simulator, ExecutesEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(2.0, [&] { order.push_back(2); });
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(3.0, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, EqualTimesFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) sim.schedule(1.0, [&, i] { order.push_back(i); });
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, NestedSchedulingFromCallback) {
  Simulator sim;
  double fired_at = -1;
  sim.schedule(1.0, [&] {
    sim.schedule(0.5, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 1.5);
}

TEST(Simulator, ZeroDelayRunsAtCurrentTime) {
  Simulator sim;
  double t = -1;
  sim.schedule(5.0, [&] {
    sim.schedule(0.0, [&] { t = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(t, 5.0);
}

TEST(Simulator, NegativeDelayThrows) {
  Simulator sim;
  EXPECT_THROW(sim.schedule(-1.0, [] {}), std::invalid_argument);
}

TEST(Simulator, ScheduleAtPastThrows) {
  Simulator sim;
  sim.schedule(2.0, [&] {
    EXPECT_THROW(sim.schedule_at(1.0, [] {}), std::invalid_argument);
  });
  sim.run();
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  EventId id = sim.schedule(1.0, [&] { fired = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(Simulator, CancelIsIdempotentAndSafeAfterFire) {
  Simulator sim;
  int count = 0;
  EventId id = sim.schedule(1.0, [&] { ++count; });
  sim.run();
  sim.cancel(id);  // already fired; must be a no-op
  sim.cancel(id);
  EXPECT_EQ(count, 1);
}

TEST(Simulator, RunUntilStopsAtHorizon) {
  Simulator sim;
  std::vector<double> fired;
  sim.schedule(1.0, [&] { fired.push_back(1.0); });
  sim.schedule(5.0, [&] { fired.push_back(5.0); });
  sim.run_until(2.0);
  EXPECT_EQ(fired, std::vector<double>{1.0});
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  sim.run();
  EXPECT_EQ(fired, (std::vector<double>{1.0, 5.0}));
}

TEST(Simulator, RunUntilAdvancesClockWithEmptyQueue) {
  Simulator sim;
  sim.run_until(10.0);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(Simulator, EventsExecutedCounts) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule(i, [] {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 7u);
}

TEST(Simulator, ManyEventsStressOrdering) {
  Simulator sim;
  double last = -1.0;
  bool monotone = true;
  for (int i = 0; i < 10000; ++i) {
    double t = static_cast<double>((i * 7919) % 1000);
    sim.schedule(t, [&, t] {
      if (t < last) monotone = false;
      last = t;
    });
  }
  sim.run();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(sim.events_executed(), 10000u);
}

}  // namespace
}  // namespace stash::sim
