#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <utility>
#include <vector>

namespace stash::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
}

TEST(Simulator, ExecutesEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(2.0, [&] { order.push_back(2); });
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(3.0, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, EqualTimesFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) sim.schedule(1.0, [&, i] { order.push_back(i); });
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, NestedSchedulingFromCallback) {
  Simulator sim;
  double fired_at = -1;
  sim.schedule(1.0, [&] {
    sim.schedule(0.5, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 1.5);
}

TEST(Simulator, ZeroDelayRunsAtCurrentTime) {
  Simulator sim;
  double t = -1;
  sim.schedule(5.0, [&] {
    sim.schedule(0.0, [&] { t = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(t, 5.0);
}

TEST(Simulator, NegativeDelayThrows) {
  Simulator sim;
  EXPECT_THROW(sim.schedule(-1.0, [] {}), std::invalid_argument);
}

TEST(Simulator, ScheduleAtPastThrows) {
  Simulator sim;
  sim.schedule(2.0, [&] {
    EXPECT_THROW(sim.schedule_at(1.0, [] {}), std::invalid_argument);
  });
  sim.run();
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  EventId id = sim.schedule(1.0, [&] { fired = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(Simulator, CancelIsIdempotentAndSafeAfterFire) {
  Simulator sim;
  int count = 0;
  EventId id = sim.schedule(1.0, [&] { ++count; });
  sim.run();
  sim.cancel(id);  // already fired; must be a no-op
  sim.cancel(id);
  EXPECT_EQ(count, 1);
}

TEST(Simulator, RunUntilStopsAtHorizon) {
  Simulator sim;
  std::vector<double> fired;
  sim.schedule(1.0, [&] { fired.push_back(1.0); });
  sim.schedule(5.0, [&] { fired.push_back(5.0); });
  sim.run_until(2.0);
  EXPECT_EQ(fired, std::vector<double>{1.0});
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  sim.run();
  EXPECT_EQ(fired, (std::vector<double>{1.0, 5.0}));
}

TEST(Simulator, RunUntilAdvancesClockWithEmptyQueue) {
  Simulator sim;
  sim.run_until(10.0);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(Simulator, EventsExecutedCounts) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule(i, [] {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 7u);
}

TEST(Simulator, ManyEventsStressOrdering) {
  Simulator sim;
  double last = -1.0;
  bool monotone = true;
  for (int i = 0; i < 10000; ++i) {
    double t = static_cast<double>((i * 7919) % 1000);
    sim.schedule(t, [&, t] {
      if (t < last) monotone = false;
      last = t;
    });
  }
  sim.run();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(sim.events_executed(), 10000u);
}

TEST(Simulator, StaleIdCannotCancelSlotReusedAfterCancel) {
  // Regression: with free-list slot reuse, an EventId held across its
  // event's cancellation must not be able to cancel whatever event reuses
  // the slot. The generation check makes the second cancel a no-op.
  Simulator sim;
  bool survivor_fired = false;
  EventId stale = sim.schedule(1.0, [] {});
  sim.cancel(stale);  // frees the slot
  EventId reused = sim.schedule(2.0, [&] { survivor_fired = true; });
  EXPECT_EQ(reused.slot, stale.slot);  // the slab really did reuse the slot
  EXPECT_NE(reused.gen, stale.gen);
  sim.cancel(stale);  // checked no-op: generation mismatch
  sim.run();
  EXPECT_TRUE(survivor_fired);
}

TEST(Simulator, StaleIdCannotCancelSlotReusedAfterFire) {
  Simulator sim;
  int second = 0;
  EventId first = sim.schedule(1.0, [] {});
  sim.run();  // fires; slot returns to the free list
  EventId reused = sim.schedule(1.0, [&] { ++second; });
  EXPECT_EQ(reused.slot, first.slot);
  sim.cancel(first);  // stale id from the fired event: must not touch `reused`
  sim.run();
  EXPECT_EQ(second, 1);
}

TEST(Simulator, DefaultEventIdIsInvalidAndCancelSafe) {
  Simulator sim;
  EventId none;
  EXPECT_FALSE(none.valid());
  sim.cancel(none);  // no-op
  bool fired = false;
  EventId id = sim.schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(id.valid());
  sim.run();
  EXPECT_TRUE(fired);
}

TEST(Simulator, QueueDepthCountsLiveNotStaleEntries) {
  Simulator sim;
  std::vector<EventId> ids;
  for (int i = 0; i < 10; ++i) ids.push_back(sim.schedule(1.0 + i, [] {}));
  EXPECT_EQ(sim.queue_depth(), 10u);
  for (int i = 0; i < 5; ++i) sim.cancel(ids[static_cast<std::size_t>(i)]);
  EXPECT_EQ(sim.queue_depth(), 5u);
  sim.run();
  EXPECT_EQ(sim.queue_depth(), 0u);
  EXPECT_EQ(sim.events_executed(), 5u);
}

TEST(Simulator, CompactionDropsStaleHeapEntries) {
  // Cancel far more events than remain live: lazy deletion must trigger an
  // in-place compaction instead of letting stale entries accumulate.
  Simulator sim;
  std::vector<EventId> ids;
  constexpr int kN = 1000;
  for (int i = 0; i < kN; ++i)
    ids.push_back(sim.schedule(1.0 + i, [] {}));
  int cancelled = 0;
  for (int i = 0; i < kN; ++i)
    if (i % 10 != 0) {
      sim.cancel(ids[static_cast<std::size_t>(i)]);
      ++cancelled;
    }
  EXPECT_GE(sim.compactions(), 1u);
  // After compaction the stale backlog is bounded by the live count.
  EXPECT_LE(sim.stale_entries(), sim.queue_depth());
  sim.run();
  EXPECT_EQ(sim.events_executed(), static_cast<std::uint64_t>(kN - cancelled));
  EXPECT_EQ(sim.stale_entries(), 0u);
}

TEST(Simulator, SlotReuseStressKeepsOrderAndCounts) {
  // Interleave schedule/cancel/fire so slots cycle through the free list
  // many times; ordering and counts must be unaffected by reuse.
  Simulator sim;
  std::uint64_t expected = 0;
  double last = -1.0;
  bool monotone = true;
  for (int round = 0; round < 50; ++round) {
    std::vector<EventId> ids;
    for (int i = 0; i < 40; ++i) {
      double t = static_cast<double>((round * 40 + i) % 97) + round * 100.0;
      ids.push_back(sim.schedule_at(sim.now() + t, [&, t] {
        double at = t;
        if (at < 0) return;  // keep the lambda non-trivial
        if (sim.now() < last) monotone = false;
        last = sim.now();
      }));
    }
    for (std::size_t i = 0; i < ids.size(); i += 3) sim.cancel(ids[i]);
    expected += 40 - (ids.size() + 2) / 3;
    sim.run();
  }
  EXPECT_TRUE(monotone);
  EXPECT_EQ(sim.events_executed(), expected);
}

TEST(InlineCallbackTest, LargeCallablesFallBackToHeap) {
  // A callable bigger than the inline buffer must still schedule and fire
  // correctly (heap fallback path).
  Simulator sim;
  struct Big {
    double payload[16];  // 128 bytes > kInlineSize
    double* out;
    void operator()() { *out = payload[15]; }
  };
  double result = 0.0;
  Big big{};
  big.payload[15] = 42.0;
  big.out = &result;
  sim.schedule(1.0, big);
  static_assert(sizeof(Big) > InlineCallback::kInlineSize);
  sim.run();
  EXPECT_DOUBLE_EQ(result, 42.0);
}

TEST(Simulator, SameTimestampSchedulesBypassHeap) {
  // Work scheduled for the current timestamp while a batch drains goes to
  // the FIFO batch queue, not the heap; cross-timestamp work still heaps.
  Simulator sim;
  int fired = 0;
  sim.schedule(1.0, [&] {
    for (int i = 0; i < 5; ++i) sim.schedule(0.0, [&] { ++fired; });
    sim.schedule(1.0, [&] { ++fired; });  // future: must take the heap
  });
  sim.run();
  EXPECT_EQ(fired, 6);
  EXPECT_EQ(sim.heap_bypasses(), 5u);
}

TEST(Simulator, BatchPreservesSeqOrderWithinTimestamp) {
  // Heap entries for time t all predate batch entries created while t
  // drains, so heap-then-FIFO equals global (time, seq) order.
  Simulator sim;
  std::vector<int> order;
  sim.schedule(1.0, [&] {
    order.push_back(0);
    sim.schedule(0.0, [&] {
      order.push_back(2);
      sim.schedule(0.0, [&] { order.push_back(4); });
    });
    sim.schedule(0.0, [&] { order.push_back(3); });
  });
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, CancelledBatchEntryDoesNotFire) {
  Simulator sim;
  int fired = 0;
  sim.schedule(1.0, [&] {
    EventId id = sim.schedule(0.0, [&] { ++fired; });
    sim.schedule(0.0, [&] { ++fired; });
    sim.cancel(id);
  });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.stale_entries(), 0u);
}

TEST(Simulator, FlushHookRunsOncePerTimestampAtBatchEnd) {
  // A flush hook armed repeatedly during a timestamp runs once, after every
  // same-timestamp event has executed.
  Simulator sim;
  int events = 0;
  std::vector<int> events_at_flush;
  std::size_t hook = sim.add_flush_hook([&] { events_at_flush.push_back(events); });
  sim.schedule(1.0, [&] {
    ++events;
    sim.request_flush(hook);
    sim.schedule(0.0, [&] {
      ++events;
      sim.request_flush(hook);
    });
  });
  sim.schedule(2.0, [&] {
    ++events;
    sim.request_flush(hook);
  });
  sim.run();
  EXPECT_EQ(events_at_flush, (std::vector<int>{2, 3}));
}

TEST(Simulator, FlushHookMayScheduleMoreSameTimestampWork) {
  // A hook that schedules same-timestamp work re-enters the batch loop; the
  // new work (and any re-armed flush) runs before time advances.
  Simulator sim;
  std::vector<std::pair<double, int>> log;
  int round = 0;
  std::size_t hook = 0;
  hook = sim.add_flush_hook([&] {
    log.emplace_back(sim.now(), ++round);
    if (round == 1) {
      sim.schedule(0.0, [&] { sim.request_flush(hook); });
    }
  });
  sim.schedule(1.0, [&] { sim.request_flush(hook); });
  sim.run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_DOUBLE_EQ(log[0].first, 1.0);
  EXPECT_DOUBLE_EQ(log[1].first, 1.0);
}

TEST(Simulator, ArmedHookFlushesBeforeRunAdvancesTime) {
  // A hook armed outside run() (e.g. a transfer started before the event
  // loop) must flush at its own timestamp, before the first heap pop
  // advances now().
  Simulator sim;
  double flushed_at = -1.0;
  std::size_t hook = sim.add_flush_hook([&] { flushed_at = sim.now(); });
  sim.request_flush(hook);
  sim.schedule(5.0, [] {});
  sim.run();
  EXPECT_DOUBLE_EQ(flushed_at, 0.0);
}

}  // namespace
}  // namespace stash::sim
