#include "sim/sync.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"
#include "sim/task.h"

namespace stash::sim {
namespace {

Task<void> wait_event(Simulator& sim, Event& ev, double& resumed_at) {
  co_await ev.wait();
  resumed_at = sim.now();
}

Task<void> trigger_later(Simulator& sim, Event& ev, double at) {
  co_await sim.delay(at);
  ev.trigger();
}

TEST(Event, WaitersResumeAtTriggerTime) {
  Simulator sim;
  Event ev(sim);
  double a = -1, b = -1;
  sim.spawn(wait_event(sim, ev, a));
  sim.spawn(wait_event(sim, ev, b));
  sim.spawn(trigger_later(sim, ev, 3.0));
  sim.run();
  EXPECT_DOUBLE_EQ(a, 3.0);
  EXPECT_DOUBLE_EQ(b, 3.0);
  EXPECT_TRUE(sim.all_processes_done());
}

TEST(Event, WaitAfterTriggerCompletesImmediately) {
  Simulator sim;
  Event ev(sim);
  ev.trigger();
  double a = -1;
  sim.spawn(wait_event(sim, ev, a));
  sim.run();
  EXPECT_DOUBLE_EQ(a, 0.0);
}

TEST(Event, TriggerIsIdempotent) {
  Simulator sim;
  Event ev(sim);
  double a = -1;
  sim.spawn(wait_event(sim, ev, a));
  ev.trigger();
  ev.trigger();
  sim.run();
  EXPECT_DOUBLE_EQ(a, 0.0);
}

Task<void> count_down_later(Simulator& sim, Latch& latch, double at) {
  co_await sim.delay(at);
  latch.count_down();
}

Task<void> wait_latch(Simulator& sim, Latch& latch, double& resumed_at) {
  co_await latch.wait();
  resumed_at = sim.now();
}

TEST(Latch, CompletesWhenAllCountsArrive) {
  Simulator sim;
  Latch latch(sim, 3);
  double at = -1;
  sim.spawn(wait_latch(sim, latch, at));
  sim.spawn(count_down_later(sim, latch, 1.0));
  sim.spawn(count_down_later(sim, latch, 2.0));
  sim.spawn(count_down_later(sim, latch, 5.0));
  sim.run();
  EXPECT_DOUBLE_EQ(at, 5.0);
}

TEST(Latch, ZeroCountIsAlreadyDone) {
  Simulator sim;
  Latch latch(sim, 0);
  double at = -1;
  sim.spawn(wait_latch(sim, latch, at));
  sim.run();
  EXPECT_DOUBLE_EQ(at, 0.0);
}

TEST(Latch, CountBelowZeroThrows) {
  Simulator sim;
  Latch latch(sim, 1);
  latch.count_down();
  EXPECT_THROW(latch.count_down(), std::logic_error);
}

Task<void> use_resource(Simulator& sim, Semaphore& sem, double hold,
                        std::vector<double>& acquire_times) {
  co_await sem.acquire();
  acquire_times.push_back(sim.now());
  co_await sim.delay(hold);
  sem.release();
}

TEST(Semaphore, LimitsConcurrency) {
  Simulator sim;
  Semaphore sem(sim, 2);
  std::vector<double> acquire_times;
  for (int i = 0; i < 4; ++i) sim.spawn(use_resource(sim, sem, 1.0, acquire_times));
  sim.run();
  // Two enter at t=0, the next two at t=1.
  ASSERT_EQ(acquire_times.size(), 4u);
  EXPECT_DOUBLE_EQ(acquire_times[0], 0.0);
  EXPECT_DOUBLE_EQ(acquire_times[1], 0.0);
  EXPECT_DOUBLE_EQ(acquire_times[2], 1.0);
  EXPECT_DOUBLE_EQ(acquire_times[3], 1.0);
}

TEST(Semaphore, FifoOrderAmongWaiters) {
  Simulator sim;
  Semaphore sem(sim, 1);
  std::vector<int> order;
  auto proc = [&](int id) -> Task<void> {
    co_await sem.acquire();
    order.push_back(id);
    co_await sim.delay(1.0);
    sem.release();
  };
  for (int i = 0; i < 5; ++i) sim.spawn(proc(i));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Semaphore, ReleaseWithoutWaitersRestoresPermit) {
  Simulator sim;
  Semaphore sem(sim, 0);
  sem.release();
  EXPECT_EQ(sem.available(), 1u);
}

Task<void> barrier_worker(Simulator& sim, Barrier& bar, double work,
                          std::vector<double>& out) {
  co_await sim.delay(work);
  co_await bar.arrive_and_wait();
  out.push_back(sim.now());
}

TEST(Barrier, AllPartiesLeaveAtLastArrival) {
  Simulator sim;
  Barrier bar(sim, 3);
  std::vector<double> out;
  sim.spawn(barrier_worker(sim, bar, 1.0, out));
  sim.spawn(barrier_worker(sim, bar, 2.0, out));
  sim.spawn(barrier_worker(sim, bar, 7.0, out));
  sim.run();
  ASSERT_EQ(out.size(), 3u);
  for (double t : out) EXPECT_DOUBLE_EQ(t, 7.0);
}

Task<void> barrier_loop(Simulator& sim, Barrier& bar, double step, int iters,
                        std::vector<double>& out) {
  for (int i = 0; i < iters; ++i) {
    co_await sim.delay(step);
    co_await bar.arrive_and_wait();
  }
  out.push_back(sim.now());
}

TEST(Barrier, ReusableAcrossGenerations) {
  Simulator sim;
  Barrier bar(sim, 2);
  std::vector<double> out;
  sim.spawn(barrier_loop(sim, bar, 1.0, 3, out));
  sim.spawn(barrier_loop(sim, bar, 2.0, 3, out));
  sim.run();
  // Each iteration is paced by the slower worker: 2, 4, 6.
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], 6.0);
  EXPECT_DOUBLE_EQ(out[1], 6.0);
  EXPECT_EQ(bar.generation(), 3u);
}

TEST(Barrier, SinglePartyNeverBlocks) {
  Simulator sim;
  Barrier bar(sim, 1);
  std::vector<double> out;
  sim.spawn(barrier_worker(sim, bar, 1.0, out));
  sim.run();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0], 1.0);
}

TEST(Barrier, ZeroPartiesThrows) {
  Simulator sim;
  EXPECT_THROW(Barrier(sim, 0), std::invalid_argument);
}

Task<void> sleep_for(Simulator& sim, double t) { co_await sim.delay(t); }

TEST(JoinAll, CompletesAtSlowestTask) {
  Simulator sim;
  std::vector<Task<void>> tasks;
  tasks.push_back(sleep_for(sim, 1.0));
  tasks.push_back(sleep_for(sim, 9.0));
  tasks.push_back(sleep_for(sim, 4.0));
  double done_at = -1;
  auto waiter = [&]() -> Task<void> {
    co_await join_all(sim, std::move(tasks));
    done_at = sim.now();
  };
  sim.spawn(waiter());
  sim.run();
  EXPECT_DOUBLE_EQ(done_at, 9.0);
}

Task<void> abortable_worker(Simulator& sim, AbortableBarrier& bar, double work,
                            std::vector<AbortableBarrier::Result>& results,
                            std::vector<double>& times) {
  co_await sim.delay(work);
  AbortableBarrier::Result r = co_await bar.arrive_and_wait();
  results.push_back(r);
  times.push_back(sim.now());
}

TEST(AbortableBarrier, BehavesLikeBarrierWhenHealthy) {
  Simulator sim;
  AbortableBarrier bar(sim, 3, 100.0);
  std::vector<AbortableBarrier::Result> results;
  std::vector<double> times;
  sim.spawn(abortable_worker(sim, bar, 1.0, results, times));
  sim.spawn(abortable_worker(sim, bar, 2.0, results, times));
  sim.spawn(abortable_worker(sim, bar, 7.0, results, times));
  sim.run();
  ASSERT_EQ(results.size(), 3u);
  for (auto r : results) EXPECT_EQ(r, AbortableBarrier::Result::kOk);
  for (double t : times) EXPECT_DOUBLE_EQ(t, 7.0);
  EXPECT_FALSE(bar.aborted());
  EXPECT_EQ(bar.generation(), 1u);
  EXPECT_TRUE(sim.all_processes_done());
}

TEST(AbortableBarrier, WatchdogFiresWhenPartyNeverArrives) {
  Simulator sim;
  AbortableBarrier bar(sim, 3, 5.0);
  std::vector<AbortableBarrier::Result> results;
  std::vector<double> times;
  // Only two of three parties arrive: the watchdog releases them kTimeout
  // 5 s after the first waiter suspended.
  sim.spawn(abortable_worker(sim, bar, 1.0, results, times));
  sim.spawn(abortable_worker(sim, bar, 2.0, results, times));
  sim.run();
  ASSERT_EQ(results.size(), 2u);
  for (auto r : results) EXPECT_EQ(r, AbortableBarrier::Result::kTimeout);
  for (double t : times) EXPECT_DOUBLE_EQ(t, 6.0);  // first wait at t=1
  EXPECT_TRUE(bar.aborted());
  EXPECT_TRUE(bar.timed_out());
}

TEST(AbortableBarrier, TimeoutCancelledWhenAllArrive) {
  Simulator sim;
  AbortableBarrier bar(sim, 2, 5.0);
  std::vector<AbortableBarrier::Result> results;
  std::vector<double> times;
  sim.spawn(abortable_worker(sim, bar, 1.0, results, times));
  sim.spawn(abortable_worker(sim, bar, 2.0, results, times));
  double end = sim.run();
  // No stray watchdog event keeps the clock running to t=6.
  EXPECT_DOUBLE_EQ(end, 2.0);
  for (auto r : results) EXPECT_EQ(r, AbortableBarrier::Result::kOk);
}

TEST(AbortableBarrier, AbortWakesWaitersAndPoisonsFutureArrivals) {
  Simulator sim;
  AbortableBarrier bar(sim, 3);
  std::vector<AbortableBarrier::Result> results;
  std::vector<double> times;
  sim.spawn(abortable_worker(sim, bar, 1.0, results, times));
  sim.spawn(abortable_worker(sim, bar, 2.0, results, times));
  sim.schedule(4.0, [&bar] { bar.abort(); });
  sim.run();
  ASSERT_EQ(results.size(), 2u);
  for (auto r : results) EXPECT_EQ(r, AbortableBarrier::Result::kAborted);
  for (double t : times) EXPECT_DOUBLE_EQ(t, 4.0);

  // A late arrival on the dead barrier returns kAborted without waiting.
  sim.spawn(abortable_worker(sim, bar, 1.0, results, times));
  sim.run();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results.back(), AbortableBarrier::Result::kAborted);
  EXPECT_DOUBLE_EQ(times.back(), 5.0);  // its own delay only
}

TEST(AbortableBarrier, AbortIsIdempotent) {
  Simulator sim;
  AbortableBarrier bar(sim, 2);
  bar.abort();
  bar.abort();
  EXPECT_TRUE(bar.aborted());
  EXPECT_FALSE(bar.timed_out());
}

TEST(AbortableBarrier, InvalidConstructionThrows) {
  Simulator sim;
  EXPECT_THROW(AbortableBarrier(sim, 0), std::invalid_argument);
  EXPECT_THROW(AbortableBarrier(sim, 2, -1.0), std::invalid_argument);
}

Task<void> token_worker(Simulator& sim, Barrier& bar, double work, int token) {
  co_await sim.delay(work);
  co_await bar.arrive_and_wait(token);
}

TEST(Barrier, LastTokenIsTheStragglersAfterRelease) {
  Simulator sim;
  Barrier bar(sim, 3);
  sim.spawn(token_worker(sim, bar, 1.0, 10));
  sim.spawn(token_worker(sim, bar, 7.0, 30));
  sim.spawn(token_worker(sim, bar, 2.0, 20));
  sim.run();
  // Arrivals overwrite in order, so the slowest worker's token survives.
  EXPECT_EQ(bar.last_token(), 30);
}

TEST(Barrier, SinglePartyRecordsItsOwnToken) {
  Simulator sim;
  Barrier bar(sim, 1);
  sim.spawn(token_worker(sim, bar, 1.0, 5));
  sim.run();
  EXPECT_EQ(bar.last_token(), 5);
}

Task<void> abortable_token_worker(Simulator& sim, AbortableBarrier& bar,
                                  double work, int token) {
  co_await sim.delay(work);
  co_await bar.arrive_and_wait(token);
}

TEST(AbortableBarrier, LastTokenIsTheStragglersAfterRelease) {
  Simulator sim;
  AbortableBarrier bar(sim, 2);
  sim.spawn(abortable_token_worker(sim, bar, 1.0, 41));
  sim.spawn(abortable_token_worker(sim, bar, 3.0, 42));
  sim.run();
  EXPECT_EQ(bar.last_token(), 42);
}

TEST(AbortableBarrier, DeadBarrierStopsRecordingTokens) {
  Simulator sim;
  AbortableBarrier bar(sim, 3);
  sim.spawn(abortable_token_worker(sim, bar, 1.0, 7));
  sim.schedule(2.0, [&bar] { bar.abort(); });
  sim.run();
  EXPECT_EQ(bar.last_token(), 7);
  // Arrivals after the abort return immediately and leave no provenance:
  // there is no straggler on a dead barrier.
  sim.spawn(abortable_token_worker(sim, bar, 1.0, 99));
  sim.run();
  EXPECT_EQ(bar.last_token(), 7);
}

TEST(JoinAll, EmptyVectorCompletesImmediately) {
  Simulator sim;
  double done_at = -1;
  auto waiter = [&]() -> Task<void> {
    co_await join_all(sim, {});
    done_at = sim.now();
  };
  sim.spawn(waiter());
  sim.run();
  EXPECT_DOUBLE_EQ(done_at, 0.0);
}

}  // namespace
}  // namespace stash::sim
