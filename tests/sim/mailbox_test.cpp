#include "sim/mailbox.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"
#include "sim/task.h"

namespace stash::sim {
namespace {

Task<void> producer(Simulator& sim, Mailbox<int>& box, int n, double period,
                    std::vector<double>& put_times) {
  for (int i = 0; i < n; ++i) {
    if (period > 0) co_await sim.delay(period);
    co_await box.put(i);
    put_times.push_back(sim.now());
  }
}

Task<void> consumer(Simulator& sim, Mailbox<int>& box, int n, double service,
                    std::vector<int>& got, std::vector<double>& get_times) {
  for (int i = 0; i < n; ++i) {
    int v = co_await box.get();
    got.push_back(v);
    get_times.push_back(sim.now());
    if (service > 0) co_await sim.delay(service);
  }
}

TEST(Mailbox, FifoDelivery) {
  Simulator sim;
  Mailbox<int> box(sim, 4);
  std::vector<double> put_times, get_times;
  std::vector<int> got;
  sim.spawn(producer(sim, box, 5, 0.0, put_times));
  sim.spawn(consumer(sim, box, 5, 0.0, got, get_times));
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_TRUE(sim.all_processes_done());
}

TEST(Mailbox, ProducerBlocksWhenFull) {
  Simulator sim;
  Mailbox<int> box(sim, 2);
  std::vector<double> put_times, get_times;
  std::vector<int> got;
  // Producer is instantaneous; consumer takes 1s per item. Puts 0 and 1
  // land at t=0, the consumer's first get at t=0 frees a slot for put 2,
  // and put 3 must wait for the consumer's next get at t=1.
  sim.spawn(producer(sim, box, 4, 0.0, put_times));
  sim.spawn(consumer(sim, box, 4, 1.0, got, get_times));
  sim.run();
  ASSERT_EQ(put_times.size(), 4u);
  EXPECT_DOUBLE_EQ(put_times[0], 0.0);
  EXPECT_DOUBLE_EQ(put_times[1], 0.0);
  EXPECT_DOUBLE_EQ(put_times[2], 0.0);
  EXPECT_DOUBLE_EQ(put_times[3], 1.0);
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Mailbox, ConsumerBlocksWhenEmpty) {
  Simulator sim;
  Mailbox<int> box(sim, 2);
  std::vector<double> put_times, get_times;
  std::vector<int> got;
  sim.spawn(consumer(sim, box, 3, 0.0, got, get_times));
  sim.spawn(producer(sim, box, 3, 2.0, put_times));
  sim.run();
  ASSERT_EQ(get_times.size(), 3u);
  EXPECT_DOUBLE_EQ(get_times[0], 2.0);
  EXPECT_DOUBLE_EQ(get_times[1], 4.0);
  EXPECT_DOUBLE_EQ(get_times[2], 6.0);
}

TEST(Mailbox, CapacityBoundsQueueDepth) {
  Simulator sim;
  Mailbox<int> box(sim, 3);
  std::vector<double> put_times;
  sim.spawn(producer(sim, box, 3, 0.0, put_times));
  sim.run();
  EXPECT_EQ(box.size(), 3u);
  EXPECT_EQ(box.capacity(), 3u);
}

TEST(Mailbox, ZeroCapacityThrows) {
  Simulator sim;
  EXPECT_THROW(Mailbox<int>(sim, 0), std::invalid_argument);
}

TEST(Mailbox, MultipleProducersSingleConsumer) {
  Simulator sim;
  Mailbox<int> box(sim, 1);
  std::vector<double> pa, pb, get_times;
  std::vector<int> got;
  sim.spawn(producer(sim, box, 10, 0.0, pa));
  sim.spawn(producer(sim, box, 10, 0.0, pb));
  sim.spawn(consumer(sim, box, 20, 0.1, got, get_times));
  sim.run();
  EXPECT_EQ(got.size(), 20u);
  EXPECT_TRUE(sim.all_processes_done());
}

TEST(Mailbox, MoveOnlyPayload) {
  Simulator sim;
  Mailbox<std::unique_ptr<int>> box(sim, 1);
  int result = 0;
  auto prod = [&]() -> Task<void> { co_await box.put(std::make_unique<int>(7)); };
  auto cons = [&]() -> Task<void> {
    auto p = co_await box.get();
    result = *p;
  };
  sim.spawn(prod());
  sim.spawn(cons());
  sim.run();
  EXPECT_EQ(result, 7);
}

}  // namespace
}  // namespace stash::sim
