#include "sim/task.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/simulator.h"

namespace stash::sim {
namespace {

Task<void> record_times(Simulator& sim, std::vector<double>& out) {
  out.push_back(sim.now());
  co_await sim.delay(1.5);
  out.push_back(sim.now());
  co_await sim.delay(2.5);
  out.push_back(sim.now());
}

TEST(Task, DelaysAdvanceSimulatedTime) {
  Simulator sim;
  std::vector<double> times;
  sim.spawn(record_times(sim, times));
  sim.run();
  EXPECT_EQ(times, (std::vector<double>{0.0, 1.5, 4.0}));
  EXPECT_TRUE(sim.all_processes_done());
}

Task<int> answer(Simulator& sim) {
  co_await sim.delay(1.0);
  co_return 42;
}

Task<void> awaits_child(Simulator& sim, int& out) {
  out = co_await answer(sim);
}

TEST(Task, ChildTaskReturnsValue) {
  Simulator sim;
  int out = 0;
  sim.spawn(awaits_child(sim, out));
  sim.run();
  EXPECT_EQ(out, 42);
}

Task<void> thrower(Simulator& sim) {
  co_await sim.delay(1.0);
  throw std::runtime_error("model bug");
}

TEST(Task, RootExceptionPropagatesFromRun) {
  Simulator sim;
  sim.spawn(thrower(sim));
  EXPECT_THROW(sim.run(), std::runtime_error);
}

Task<void> catches_child(Simulator& sim, bool& caught) {
  try {
    co_await thrower(sim);
  } catch (const std::runtime_error&) {
    caught = true;
  }
}

TEST(Task, ChildExceptionRethrownAtAwait) {
  Simulator sim;
  bool caught = false;
  sim.spawn(catches_child(sim, caught));
  sim.run();
  EXPECT_TRUE(caught);
}

Task<void> nested_inner(Simulator& sim, std::vector<int>& log) {
  log.push_back(1);
  co_await sim.delay(1.0);
  log.push_back(2);
}

Task<void> nested_outer(Simulator& sim, std::vector<int>& log) {
  log.push_back(0);
  co_await nested_inner(sim, log);
  log.push_back(3);
}

TEST(Task, NestedAwaitRunsInOrder) {
  Simulator sim;
  std::vector<int> log;
  sim.spawn(nested_outer(sim, log));
  sim.run();
  EXPECT_EQ(log, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Task, SpawnRunsUpToFirstSuspension) {
  Simulator sim;
  std::vector<double> times;
  sim.spawn(record_times(sim, times));
  // Before run(), the process has executed to its first co_await.
  ASSERT_EQ(times.size(), 1u);
  EXPECT_DOUBLE_EQ(times[0], 0.0);
  sim.run();
}

TEST(Task, UnfinishedProcessDetected) {
  Simulator sim;
  // A process waiting on a delay that is cancelled can never finish; we
  // emulate a stuck process by never running the simulator.
  std::vector<double> times;
  sim.spawn(record_times(sim, times));
  EXPECT_FALSE(sim.all_processes_done());
  sim.run();
  EXPECT_TRUE(sim.all_processes_done());
}

TEST(Task, AbandonedProcessTreeIsReclaimed) {
  // Destroying a Simulator with suspended processes must not leak or crash.
  std::vector<double> times;
  {
    Simulator sim;
    sim.spawn(record_times(sim, times));
  }
  EXPECT_EQ(times.size(), 1u);
}

Task<void> spawn_many(Simulator& sim, int n, int& done) {
  for (int i = 0; i < n; ++i) co_await sim.delay(0.001);
  ++done;
}

TEST(Task, ManyConcurrentProcesses) {
  Simulator sim;
  int done = 0;
  for (int i = 0; i < 500; ++i) sim.spawn(spawn_many(sim, 20, done));
  sim.run();
  EXPECT_EQ(done, 500);
  EXPECT_TRUE(sim.all_processes_done());
}

}  // namespace
}  // namespace stash::sim
