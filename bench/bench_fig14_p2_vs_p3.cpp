// Figure 14: P2 vs P3 training time and cost per epoch for small models.
#include <iostream>
#include <map>
#include <memory>
#include <vector>

#include "bench/bench_common.h"

int main() {
  using namespace stash;
  using profiler::ClusterSpec;

  std::vector<ClusterSpec> configs{ClusterSpec{"p2.xlarge"},   ClusterSpec{"p2.8xlarge"},
                                   ClusterSpec{"p2.16xlarge"}, ClusterSpec{"p3.2xlarge"},
                                   ClusterSpec{"p3.8xlarge"},  ClusterSpec{"p3.16xlarge"}};
  std::vector<std::string> models{"shufflenet", "squeezenet", "mobilenet-v2",
                                  "alexnet", "resnet18"};
  const int batch = 64;
  if (bench::fast_mode()) models = {"shufflenet", "resnet18"};

  std::map<std::string, std::unique_ptr<bench::StepRunner>> runners;
  for (const auto& m : models) runners.emplace(m, std::make_unique<bench::StepRunner>(m));

  std::vector<std::string> headers{"model"};
  for (const auto& c : configs) headers.push_back(c.label());

  bench::print_header("Figure 14(a) — training time per epoch (s), P2 vs P3",
                      "P3 is generally faster; tiny models cannot exploit V100s.");
  {
    util::Table t(headers);
    for (const auto& model : models) {
      t.row().cell(model);
      for (const auto& c : configs)
        t.cell(bench::cell_or_blank(runners.at(model)->epoch_seconds(c, batch), 0));
    }
    t.print(std::cout);
  }

  bench::print_header(
      "Figure 14(b) — training cost per epoch ($), P2 vs P3",
      "P3 is generally more cost-optimal despite ~3.5x pricier hours — "
      "except very small models like ShuffleNet, cheapest on P2.");
  {
    util::Table t(headers);
    for (const auto& model : models) {
      t.row().cell(model);
      for (const auto& c : configs)
        t.cell(bench::cell_or_blank(runners.at(model)->epoch_cost_usd(c, batch), 2));
    }
    t.print(std::cout);
  }
  return 0;
}
