// Figure 7: per-GPU PCIe bandwidth measured in P2 — all GPUs run the
// bandwidth probe concurrently (the CUDA bandwidthTest methodology) and the
// per-device throughput is reported.
#include <iostream>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "cloud/builder.h"
#include "hw/flow_network.h"
#include "hw/topology.h"
#include "sim/simulator.h"
#include "sim/sync.h"
#include "util/units.h"

namespace {

// Concurrent H2D copies of `bytes` to every GPU; returns per-GPU GB/s.
double probe_per_gpu_bandwidth(const std::string& instance_name) {
  using namespace stash;
  sim::Simulator sim;
  hw::FlowNetwork net(sim);
  hw::Machine machine(net, sim,
                      cloud::machine_config_for(cloud::instance(instance_name)), 0);

  const double bytes = util::gib(1);
  std::vector<double> done(static_cast<std::size_t>(machine.num_gpus()), 0.0);
  auto copy = [&](int g, double& out) -> sim::Task<void> {
    co_await net.transfer(bytes, machine.h2d_path(g));
    out = sim.now();
  };
  for (int g = 0; g < machine.num_gpus(); ++g)
    sim.spawn(copy(g, done[static_cast<std::size_t>(g)]));
  sim.run();

  double worst = 0.0;
  for (double t : done) worst = std::max(worst, t);
  return util::to_gb_per_s(bytes / worst);
}

}  // namespace

int main() {
  using namespace stash;
  bench::print_header(
      "Figure 7 — per-GPU PCIe bandwidth measured in P2",
      "GPUs in 16xlarge receive significantly less bandwidth than all other "
      "P2 types; the shared bus does not grow with the instance.");

  util::Table t({"instance", "GPUs probing", "per-GPU H2D bandwidth (GB/s)"});
  for (const char* name : {"p2.xlarge", "p2.8xlarge", "p2.16xlarge"}) {
    t.row()
        .cell(name)
        .cell(cloud::instance(name).num_gpus)
        .cell(probe_per_gpu_bandwidth(name), 2);
  }
  t.print(std::cout);
  return 0;
}
