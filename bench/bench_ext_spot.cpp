// Extension E6: what a full training run costs — cold first epoch, warm
// steady epochs, and the on-demand vs spot decision.
//
// Combines the Stash profile (steps 3/4 scaled over epochs, §IV's
// linear-scaling observation) with a Poisson interruption model for
// transient instances (related-work territory the paper points at). The
// answer tenants want: spot is ~60-70% cheaper if the job checkpoints.
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "cloud/spot.h"
#include "stash/session.h"
#include "util/units.h"

int main() {
  using namespace stash;
  bench::print_header(
      "Extension E6 — 90-epoch training runs: on-demand vs spot",
      "first epoch pays the cold SSD read; spot pays interruptions and "
      "checkpoints but bills at ~30% of on-demand.");

  struct Job {
    const char* model;
    const char* instance;
    int batch;
    int epochs;
  };
  std::vector<Job> jobs{{"resnet18", "p3.16xlarge", 32, 90},
                        {"resnet50", "p3.16xlarge", 32, 90},
                        {"alexnet", "p2.8xlarge", 128, 90}};
  if (bench::fast_mode()) jobs = {{"resnet18", "p3.16xlarge", 32, 90}};

  cloud::SpotConfig spot;  // defaults: 0.3 price, 0.2 interruptions/h

  util::Table t({"job", "config", "cold epoch (s)", "steady epoch (s)",
                 "on-demand total (h)", "on-demand ($)", "spot total (h)",
                 "spot ($)", "interruptions", "saving %"});
  for (const Job& j : jobs) {
    profiler::StashProfiler prof(dnn::make_zoo_model(j.model),
                                 dnn::dataset_for(j.model),
                                 bench::bench_profile_options());
    profiler::ClusterSpec spec{j.instance};
    auto est = profiler::estimate_training(prof, spec, j.batch, j.epochs);
    auto spot_run = cloud::mean_spot_outcome(est.total_seconds,
                                             cloud::instance(j.instance), 1, spot,
                                             2026);
    t.row()
        .cell(std::string(j.model) + " x" + std::to_string(j.epochs))
        .cell(est.config_label)
        .cell(est.first_epoch_seconds, 0)
        .cell(est.steady_epoch_seconds, 0)
        .cell(util::to_hours(est.total_seconds), 2)
        .cell(est.total_cost_usd, 2)
        .cell(util::to_hours(spot_run.wall_seconds), 2)
        .cell(spot_run.cost_usd, 2)
        .cell(spot_run.interruptions)
        .cell((est.total_cost_usd - spot_run.cost_usd) / est.total_cost_usd * 100.0,
              1);
  }
  t.print(std::cout);
  return 0;
}
