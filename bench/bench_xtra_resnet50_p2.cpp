// §V-A anecdote (X1): training a large model on P2 is ruinous — for
// ResNet50 on p2.16xlarge the paper observed ~750% interconnect stall and
// ~$41 for a single epoch, ~2000% more than P3.
#include <iostream>

#include "bench/bench_common.h"

int main() {
  using namespace stash;
  using profiler::ClusterSpec;

  bench::print_header(
      "§V-A (X1) — ResNet50 on p2.16xlarge vs p3.16xlarge",
      "interconnect stall ~750% and ~$41/epoch on P2; P3 is ~20x cheaper.");

  bench::StepRunner runner("resnet50");
  const int batch = 32;
  util::Table t({"config", "I/C stall %", "epoch time (s)", "epoch cost ($)"});
  for (const char* name : {"p2.16xlarge", "p3.16xlarge"}) {
    ClusterSpec spec{name};
    t.row()
        .cell(name)
        .cell(bench::cell_or_blank(runner.ic_stall_pct(spec, batch)))
        .cell(bench::cell_or_blank(runner.epoch_seconds(spec, batch), 0))
        .cell(bench::cell_or_blank(runner.epoch_cost_usd(spec, batch), 2));
  }
  t.print(std::cout);
  return 0;
}
