// Figure 11: interconnect stall on P3 — small models (a) and large models
// including BERT (b). The 16xlarge (complete crossbar) has the lowest
// stalls; the 24xlarge matches it (same NVLink hardware).
#include <iostream>
#include <map>
#include <memory>
#include <vector>

#include "bench/bench_common.h"

int main() {
  using namespace stash;
  using profiler::ClusterSpec;

  std::vector<ClusterSpec> configs{ClusterSpec{"p3.8xlarge"},
                                   ClusterSpec{"p3.8xlarge", 2},
                                   ClusterSpec{"p3.16xlarge"},
                                   ClusterSpec{"p3.24xlarge"}};

  std::map<std::string, std::unique_ptr<bench::StepRunner>> runners;
  auto runner = [&](const std::string& m) -> bench::StepRunner& {
    if (!runners.contains(m)) runners.emplace(m, std::make_unique<bench::StepRunner>(m));
    return *runners.at(m);
  };

  std::vector<std::string> headers{"batch", "model"};
  for (const auto& c : configs) headers.push_back(c.label());

  bench::print_header("Figure 11(a) — I/C stall %, P3, small models",
                      "16xlarge has the lowest stall; the fragmented 8xlarge is "
                      "not strictly better despite having fewer GPUs.");
  {
    std::vector<std::string> models = dnn::small_vision_models();
    std::vector<int> batches{32, 128};
    if (bench::fast_mode()) {
      models = {"alexnet", "resnet18"};
      batches = {32};
    }
    util::Table t(headers);
    for (int batch : batches)
      for (const auto& model : models) {
        t.row().cell(batch).cell(model);
        for (const auto& c : configs)
          t.cell(bench::cell_or_blank(runner(model).ic_stall_pct(c, batch)));
      }
    t.print(std::cout);
  }

  bench::print_header("Figure 11(b) — I/C stall %, P3, large models + BERT",
                      "VGG shows low I/C stall (few layers); the 24xlarge is no "
                      "better than the 16xlarge — same NVLink interconnect.");
  {
    struct Workload {
      std::string model;
      int batch;
    };
    std::vector<Workload> workloads{{"resnet50", 16}, {"vgg11", 16}, {"resnet50", 64},
                                    {"vgg11", 64},    {"bert-large", 4}};
    if (bench::fast_mode()) workloads = {{"resnet50", 16}, {"vgg11", 16}};
    util::Table t(headers);
    for (const auto& w : workloads) {
      t.row().cell(w.batch).cell(w.model);
      for (const auto& c : configs)
        t.cell(bench::cell_or_blank(runner(w.model).ic_stall_pct(c, w.batch)));
    }
    t.print(std::cout);
  }
  return 0;
}
