// Extension E2: network-QoS variance and its effect on network stalls.
//
// §III: AWS network QoS "is subject to high temporal... and spatial...
// variations and is hard to definitively characterize" — the paper's
// argument against Srifty-style bandwidth tables. Under an AR(1) QoS
// process the network stall of a p3.8xlarge pair becomes a distribution;
// this bench reports it across seeds.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "cloud/builder.h"
#include "cloud/network_qos.h"
#include "ddl/trainer.h"
#include "util/stats.h"

namespace {

using namespace stash;

double iteration_seconds(const dnn::Model& model, const std::string& instance_name,
                         int machines, bool with_qos, std::uint64_t seed) {
  sim::Simulator sim;
  hw::FlowNetwork net(sim);
  hw::Cluster cluster(net, sim,
                      cloud::cluster_configs_for(cloud::instance(instance_name),
                                                 machines),
                      cloud::fabric_bandwidth());
  if (with_qos) {
    cloud::NetworkQosConfig qos;
    qos.seed = seed;
    qos.horizon = 30.0;
    cloud::apply_network_qos(sim, net, cluster, qos);
  }
  ddl::TrainConfig cfg;
  cfg.per_gpu_batch = 32;
  cfg.iterations = 10;
  cfg.warmup_iterations = 2;
  ddl::Trainer trainer(sim, net, cluster, model, dnn::dataset_for(model.name()), cfg);
  return trainer.run().per_iteration;
}

}  // namespace

int main() {
  bench::print_header(
      "Extension E2 — network stall under time-varying QoS (p3.8xlarge*2)",
      "AWS bandwidth varies temporally; a single probe misleads. Stall "
      "becomes a distribution across QoS draws.");

  const int seeds = bench::fast_mode() ? 5 : 15;
  std::vector<std::string> models{"resnet50", "vgg11"};

  util::Table t({"model", "nominal NW stall %", "QoS p10 %", "QoS median %",
                 "QoS p90 %", "QoS max %"});
  for (const auto& model_name : models) {
    dnn::Model model = dnn::make_zoo_model(model_name);
    // Stash step 2: same 8 GPUs inside one machine (p3.16xlarge).
    double t2 = iteration_seconds(model, "p3.16xlarge", 1, false, 0);
    double nominal5 = iteration_seconds(model, "p3.8xlarge", 2, false, 0);
    double nominal_stall = (nominal5 - t2) / t2 * 100.0;

    util::SampleSet stalls;
    for (int s = 0; s < seeds; ++s) {
      double t5 = iteration_seconds(model, "p3.8xlarge", 2, true, 1000 + s);
      stalls.add((t5 - t2) / t2 * 100.0);
    }
    t.row()
        .cell(model_name)
        .cell(nominal_stall, 1)
        .cell(stalls.percentile(10), 1)
        .cell(stalls.median(), 1)
        .cell(stalls.percentile(90), 1)
        .cell(stalls.percentile(100), 1);
  }
  t.print(std::cout);
  return 0;
}
