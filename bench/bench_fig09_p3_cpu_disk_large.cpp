// Figure 9: CPU and disk stall % on P3, large models (ResNet50, VGG11 at
// batches 16/64; BERT-large at batch 4).
#include <iostream>
#include <map>
#include <memory>
#include <vector>

#include "bench/bench_common.h"

int main() {
  using namespace stash;
  using profiler::ClusterSpec;

  std::vector<ClusterSpec> configs{ClusterSpec{"p3.2xlarge"}, ClusterSpec{"p3.8xlarge"},
                                   ClusterSpec{"p3.8xlarge", 2},
                                   ClusterSpec{"p3.16xlarge"},
                                   ClusterSpec{"p3.24xlarge"}};
  struct Workload {
    std::string model;
    int batch;
  };
  std::vector<Workload> workloads{{"resnet50", 16}, {"vgg11", 16}, {"resnet50", 64},
                                  {"vgg11", 64},    {"bert-large", 4}};
  if (bench::fast_mode()) workloads = {{"resnet50", 16}, {"bert-large", 4}};

  std::map<std::string, std::unique_ptr<bench::StepRunner>> runners;
  for (const auto& w : workloads)
    if (!runners.contains(w.model))
      runners.emplace(w.model, std::make_unique<bench::StepRunner>(w.model));

  std::vector<std::string> headers{"batch", "model"};
  for (const auto& c : configs) headers.push_back(c.label());

  bench::print_header("Figure 9(a) — CPU stall %, P3, large models + BERT",
                      "CPU stall is negligible.");
  {
    util::Table t(headers);
    for (const auto& w : workloads) {
      t.row().cell(w.batch).cell(w.model);
      for (const auto& c : configs)
        t.cell(bench::cell_or_blank(runners.at(w.model)->prep_stall_pct(c, w.batch)));
    }
    t.print(std::cout);
  }

  bench::print_header("Figure 9(b) — disk stall %, P3, large models + BERT",
                      "disk stall high for experiments with 8 GPUs; BERT's SQuAD "
                      "dataset caches entirely, so it sees none.");
  {
    util::Table t(headers);
    for (const auto& w : workloads) {
      t.row().cell(w.batch).cell(w.model);
      for (const auto& c : configs)
        t.cell(bench::cell_or_blank(runners.at(w.model)->fetch_stall_pct(c, w.batch)));
    }
    t.print(std::cout);
  }
  return 0;
}
