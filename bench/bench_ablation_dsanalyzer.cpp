// Ablation A4: DS-Analyzer vs Stash — what the prior work's profile misses.
// DS-Analyzer measures prep and fetch stalls only; on communication-bound
// configurations the dominant slowdown goes unattributed.
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "stash/ds_analyzer.h"

int main() {
  using namespace stash;
  using profiler::ClusterSpec;

  bench::print_header(
      "Ablation A4 — DS-Analyzer (steps 2-4) vs Stash (steps 1-5)",
      "DS-Analyzer has 'a key omission of not profiling communication "
      "stalls' (§I); its prep+fetch attribution misses the dominant cost.");

  const int batch = 32;
  std::vector<std::pair<std::string, ClusterSpec>> cases{
      {"resnet18", ClusterSpec{"p2.16xlarge"}},
      {"resnet18", ClusterSpec{"p3.16xlarge"}},
      {"vgg11", ClusterSpec{"p3.16xlarge"}},
  };

  util::Table t({"model", "config", "DS-A prep %", "DS-A fetch %",
                 "DS-A unattributed %", "Stash I/C %", "Stash N/W %"});
  for (const auto& [model_name, spec] : cases) {
    dnn::Model model = dnn::make_zoo_model(model_name);
    dnn::Dataset data = dnn::dataset_for(model_name);
    profiler::DsAnalyzer ds(model, data, bench::bench_profile_options());
    profiler::StashProfiler st(model, data, bench::bench_profile_options());
    auto dsr = ds.profile(spec, batch);
    auto str = st.profile(spec, batch);
    t.row()
        .cell(model_name)
        .cell(spec.label())
        .cell(dsr.prep_stall_pct, 1)
        .cell(dsr.fetch_stall_pct, 1)
        .cell(dsr.unattributed_pct, 1)
        .cell(str.ic_stall_pct, 1)
        .cell(str.has_network_step ? util::format_double(str.nw_stall_pct, 1) : "-");
  }
  t.print(std::cout);
  return 0;
}
