// Figure 10: training time and cost per epoch on P3, small models.
#include <iostream>
#include <map>
#include <memory>
#include <vector>

#include "bench/bench_common.h"

int main() {
  using namespace stash;
  using profiler::ClusterSpec;

  std::vector<ClusterSpec> configs{ClusterSpec{"p3.2xlarge"}, ClusterSpec{"p3.8xlarge"},
                                   ClusterSpec{"p3.8xlarge", 2},
                                   ClusterSpec{"p3.16xlarge"}};
  std::vector<std::string> models = dnn::small_vision_models();
  std::vector<int> batches{32, 128};
  if (bench::fast_mode()) {
    models = {"alexnet", "shufflenet"};
    batches = {32};
  }

  std::map<std::string, std::unique_ptr<bench::StepRunner>> runners;
  for (const auto& m : models) runners.emplace(m, std::make_unique<bench::StepRunner>(m));

  std::vector<std::string> headers{"batch", "model"};
  for (const auto& c : configs) headers.push_back(c.label());

  bench::print_header("Figure 10(a) — training time per epoch (s), P3, small models",
                      "the 16xlarge is the most performant P3 configuration.");
  {
    util::Table t(headers);
    for (int batch : batches)
      for (const auto& model : models) {
        t.row().cell(batch).cell(model);
        for (const auto& c : configs)
          t.cell(bench::cell_or_blank(runners.at(model)->epoch_seconds(c, batch), 0));
      }
    t.print(std::cout);
  }

  bench::print_header("Figure 10(b) — training cost per epoch ($), P3, small models",
                      "the single-GPU 2xlarge is the most cost-optimal; "
                      "network-connected pairs are the least.");
  {
    util::Table t(headers);
    for (int batch : batches)
      for (const auto& model : models) {
        t.row().cell(batch).cell(model);
        for (const auto& c : configs)
          t.cell(bench::cell_or_blank(runners.at(model)->epoch_cost_usd(c, batch), 2));
      }
    t.print(std::cout);
  }
  return 0;
}
