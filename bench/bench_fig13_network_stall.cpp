// Figure 13: network stall of two network-connected p3.8xlarge instances,
// swept over batch size. N/W stall % = (T5 - T2) / T2 * 100, where T2 is
// the single p3.16xlarge (same 8 GPUs, NVLink only).
#include <iostream>
#include <vector>

#include "bench/bench_common.h"

int main() {
  using namespace stash;
  using profiler::ClusterSpec;

  bench::print_header(
      "Figure 13 — network stall % of two p3.8xlarge vs one 8-GPU machine",
      "network stall is as high as ~500%: once the all-reduce ring contains "
      "a network link, training throttles on it.");

  std::vector<int> batches{4, 8, 16, 32};
  std::vector<std::string> models{"resnet50", "vgg11"};
  if (bench::fast_mode()) batches = {4, 32};

  ClusterSpec single{"p3.16xlarge"};
  util::Table t({"batch", "model", "T2 16xlarge (ms)", "T5 8xlarge*2 (ms)",
                 "N/W stall %"});
  for (const auto& model : models) {
    bench::StepRunner runner(model);
    {
      std::vector<bench::StepRunner::Point> grid;
      for (int b : batches)
        for (auto step : {profiler::Step::kAllGpuSynthetic,
                          profiler::Step::kNetworkSynthetic})
          grid.push_back({single, step, b});
      runner.prefetch(grid);
    }
    for (int batch : batches) {
      double t2 = runner.time(single, profiler::Step::kAllGpuSynthetic, batch);
      double t5 = runner.time(single, profiler::Step::kNetworkSynthetic, batch);
      t.row()
          .cell(batch)
          .cell(model)
          .cell(t2 * 1e3, 1)
          .cell(t5 * 1e3, 1)
          .cell(bench::cell_or_blank(bench::pct(t5 - t2, t2)));
    }
  }
  t.print(std::cout);
  return 0;
}
