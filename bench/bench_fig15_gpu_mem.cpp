// Figure 15: GPU memory utilization of P2 vs P3 for ShuffleNet and
// ResNet18 across batch sizes. Utilization = training footprint / device
// memory; ShuffleNet cannot fill a V100.
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "ddl/trainer.h"
#include "hw/gpu.h"
#include "util/units.h"

int main() {
  using namespace stash;
  bench::print_header(
      "Figure 15 — GPU memory utilization (%), P2 (K80 12 GiB) vs P3 (V100 16 GiB)",
      "ShuffleNet has low GPU utilization in P3: small models cannot exploit "
      "the V100's memory and compute, so they are cheapest on P2.");

  struct GpuCol {
    const char* label;
    hw::GpuSpec spec;
  };
  std::vector<GpuCol> gpus{{"P2 (K80)", hw::k80_spec()}, {"P3 (V100)", hw::v100_spec()}};
  std::vector<int> batches{32, 64, 128};
  std::vector<std::string> models{"shufflenet", "resnet18"};

  util::Table t({"model", "batch", "footprint (GiB)", "P2 (K80) util %",
                 "P3 (V100) util %", "max batch K80", "max batch V100"});
  for (const auto& model_name : models) {
    dnn::Model model = dnn::make_zoo_model(model_name);
    for (int batch : batches) {
      double need = model.train_memory_bytes(batch);
      t.row()
          .cell(model_name)
          .cell(batch)
          .cell(util::to_gib(need), 2)
          .cell(bench::pct(need, gpus[0].spec.memory_bytes), 1)
          .cell(bench::pct(need, gpus[1].spec.memory_bytes), 1)
          .cell(ddl::Trainer::max_batch_that_fits(model, gpus[0].spec))
          .cell(ddl::Trainer::max_batch_that_fits(model, gpus[1].spec));
    }
  }
  t.print(std::cout);
  return 0;
}
