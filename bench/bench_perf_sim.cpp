// Micro-benchmarks of the simulation substrate itself: event-queue
// throughput, flow-network rebalance cost, and end-to-end ring all-reduce
// simulation speed (google-benchmark), plus a figure-suite sweep that times
// the parallel profiling engine end to end at --jobs 1 and --jobs nproc.
// These bound how large a characterization sweep the harness can afford.
//
// Besides the usual console output, the binary writes BENCH_perf_sim.json
// (schema stash.bench_perf_sim/1, documented in EXPERIMENTS.md) so CI and
// EXPERIMENTS.md comparisons are machine-readable. STASH_BENCH_FAST=1 skips
// the google-benchmark suite and shrinks the sweep to a smoke test.
#include <benchmark/benchmark.h>

#include <stdlib.h>

#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "archive/archive.h"
#include "bench/bench_common.h"
#include "cloud/builder.h"
#include "coll/ring_allreduce.h"
#include "ddl/trainer.h"
#include "dnn/zoo.h"
#include "exec/exec_context.h"
#include "hw/flow_network.h"
#include "monitor/monitor.h"
#include "sim/simulator.h"
#include "telemetry/manifest.h"
#include "util/json.h"
#include "util/units.h"

namespace {

using namespace stash;

void BM_EventQueueThroughput(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < n; ++i) sim.schedule((i * 7919) % 1000, [] {});
    sim.run();
    benchmark::DoNotOptimize(sim.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueThroughput)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_EventScheduleCancel(benchmark::State& state) {
  // Exercises the slab free list and the lazy-deletion path: half the
  // scheduled events are cancelled before they fire.
  const int n = static_cast<int>(state.range(0));
  std::vector<sim::EventId> ids(static_cast<std::size_t>(n));
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < n; ++i)
      ids[static_cast<std::size_t>(i)] = sim.schedule((i * 7919) % 1000, [] {});
    for (int i = 0; i < n; i += 2) sim.cancel(ids[static_cast<std::size_t>(i)]);
    sim.run();
    benchmark::DoNotOptimize(sim.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventScheduleCancel)->Arg(10000)->Arg(100000);

// Steady-state event-loop churn: `depth` live events, each firing
// reschedules itself until the run's budget is spent. This is the regime
// real simulations live in — bounded queue depth, constant schedule/fire
// traffic. The callback captures 24 bytes, past std::function's 16-byte
// inline buffer, so the pre-slab implementation paid one heap allocation
// per event here; the slab's 48-byte inline storage does not.
struct ChurnEvent {
  sim::Simulator* sim;
  long long* remaining;
  unsigned* rng;
  void operator()() {
    if (--*remaining <= 0) return;
    *rng = *rng * 1664525u + 1013904223u;
    sim->schedule(1.0 + (*rng >> 20) * 1e-3, *this);
  }
};

long long run_churn(sim::Simulator& sim, int depth, long long events) {
  long long remaining = events;
  unsigned rng = 12345;
  for (int i = 0; i < depth; ++i)
    sim.schedule(1.0 + i * 1e-3, ChurnEvent{&sim, &remaining, &rng});
  sim.run();
  return events - remaining;
}

void BM_EventSteadyStateChurn(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const long long events = 200000;
  for (auto _ : state) {
    sim::Simulator sim;
    run_churn(sim, depth, events);
    benchmark::DoNotOptimize(sim.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EventSteadyStateChurn)->Arg(256)->Arg(1000);

void BM_FlowNetworkFairShare(benchmark::State& state) {
  const int flows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    hw::FlowNetwork net(sim);
    hw::Link* link = net.add_link("l", 1e9);
    std::vector<hw::Link*> path{link};
    auto run_flow = [&](double bytes) -> sim::Task<void> {
      co_await net.transfer(bytes, path);
    };
    for (int i = 0; i < flows; ++i) sim.spawn(run_flow(1e6 * (1 + i % 7)));
    sim.run();
    benchmark::DoNotOptimize(link->bytes_carried());
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_FlowNetworkFairShare)->Arg(8)->Arg(64)->Arg(256);

void BM_RingAllreduceSim(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    hw::FlowNetwork net(sim);
    hw::Cluster cluster(net, sim,
                        cloud::cluster_configs_for(cloud::instance("p3.16xlarge"), 1),
                        cloud::fabric_bandwidth());
    coll::CollectiveContext ctx{sim, net, cluster, coll::CollectiveConfig{}};
    double done = -1;
    auto proc = [&]() -> sim::Task<void> {
      co_await coll::ring_allreduce(ctx, util::mib(100));
      done = sim.now();
    };
    sim.spawn(proc());
    sim.run();
    benchmark::DoNotOptimize(done);
  }
}
BENCHMARK(BM_RingAllreduceSim);

void BM_TrainerIteration(benchmark::State& state) {
  dnn::Model model = dnn::make_resnet18();
  dnn::Dataset data = dnn::imagenet_1k();
  for (auto _ : state) {
    sim::Simulator sim;
    hw::FlowNetwork net(sim);
    hw::Cluster cluster(net, sim,
                        cloud::cluster_configs_for(cloud::instance("p3.16xlarge"), 1),
                        cloud::fabric_bandwidth());
    ddl::TrainConfig cfg;
    cfg.iterations = 3;
    cfg.warmup_iterations = 1;
    ddl::Trainer trainer(sim, net, cluster, model, data, cfg);
    benchmark::DoNotOptimize(trainer.run().per_iteration);
  }
}
BENCHMARK(BM_TrainerIteration);

double wall_seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// The headline events/sec number in BENCH_perf_sim.json: best-of-`reps`
// wall time of the steady-state churn workload above.
struct EventQueueResult {
  int depth = 0;
  long long events = 0;
  double wall_seconds = 0.0;
  double events_per_second = 0.0;
};

// Machine-speed calibration: a fixed pointer-chase + LCG loop over a
// heap-sized working set, measured in the same process as every other
// number in the report. Its throughput tracks the core + memory resources
// the event loop spends its time in, so CI's regression gate compares
// events/s *normalized by this number* — a slower runner generation, or a
// noisy-neighbor window on the single-core reference container (observed
// drifting ~2x over minutes), moves both numbers together and does not
// read as a code regression.
struct CalibrationResult {
  double wall_seconds = 0.0;
  double mops = 0.0;
};

CalibrationResult measure_calibration(int reps) {
  constexpr std::uint32_t kSlots = 4096;  // 16 KiB of chase targets
  constexpr long long kOps = 20000000;
  // Deterministic single-cycle permutation (Sattolo), LCG-driven.
  std::vector<std::uint32_t> perm(kSlots);
  for (std::uint32_t i = 0; i < kSlots; ++i) perm[i] = i;
  std::uint32_t rng = 9u;
  for (std::uint32_t i = kSlots - 1; i > 0; --i) {
    rng = rng * 1664525u + 1013904223u;
    std::swap(perm[i], perm[rng % i]);
  }
  std::vector<std::uint32_t> next(kSlots);
  for (std::uint32_t i = 0; i < kSlots; ++i)
    next[perm[i]] = perm[(i + 1) % kSlots];

  CalibrationResult best;
  for (int r = 0; r < reps; ++r) {
    std::uint32_t idx = 0;
    std::uint64_t acc = 0;
    auto t0 = std::chrono::steady_clock::now();
    for (long long op = 0; op < kOps; ++op) {
      idx = next[idx];
      acc = acc * 1664525u + idx;
    }
    double secs = wall_seconds_since(t0);
    benchmark::DoNotOptimize(acc);
    if (best.wall_seconds == 0.0 || secs < best.wall_seconds)
      best.wall_seconds = secs;
  }
  best.mops = best.wall_seconds > 0.0
                  ? static_cast<double>(kOps) / best.wall_seconds / 1e6
                  : 0.0;
  return best;
}

EventQueueResult measure_event_queue(int depth, long long events, int reps) {
  EventQueueResult best;
  best.depth = depth;
  best.events = events;
  for (int r = 0; r < reps; ++r) {
    sim::Simulator sim;
    auto t0 = std::chrono::steady_clock::now();
    run_churn(sim, depth, events);
    double secs = wall_seconds_since(t0);
    if (best.wall_seconds == 0.0 || secs < best.wall_seconds)
      best.wall_seconds = secs;
  }
  best.events_per_second = best.wall_seconds > 0.0
                               ? static_cast<double>(events) / best.wall_seconds
                               : 0.0;
  return best;
}

// One figure-suite run: the five-step profile of each (model, config, batch)
// grid point, fanned across a `jobs`-wide pool into a run-private SimCache
// (private so the jobs=1 and jobs=nproc runs both do full work).
struct SuiteResult {
  int jobs = 1;
  int scenarios = 0;
  double wall_seconds = 0.0;
  unsigned long long cache_hits = 0;
  unsigned long long cache_misses = 0;
};

SuiteResult run_figure_suite(int jobs, const std::vector<std::string>& models,
                             const std::vector<profiler::ClusterSpec>& specs,
                             const std::vector<int>& batches) {
  exec::SimCache cache;
  exec::ExecContext ctx(jobs, &cache);
  profiler::ProfileOptions opt;
  opt.iterations = 4;
  opt.warmup_iterations = 1;
  opt.exec = &ctx;

  struct Point {
    profiler::StashProfiler* prof;
    profiler::ClusterSpec spec;
    profiler::Step step;
    int batch;
  };
  std::vector<std::unique_ptr<profiler::StashProfiler>> profilers;
  std::vector<Point> grid;
  for (const auto& m : models) {
    profilers.push_back(std::make_unique<profiler::StashProfiler>(
        dnn::make_zoo_model(m), dnn::dataset_for(m), opt));
    for (const auto& s : specs)
      for (int b : batches)
        for (profiler::Step st :
             {profiler::Step::kSingleGpuSynthetic, profiler::Step::kAllGpuSynthetic,
              profiler::Step::kRealCold, profiler::Step::kRealWarm,
              profiler::Step::kNetworkSynthetic})
          grid.push_back(Point{profilers.back().get(), s, st, b});
  }

  auto t0 = std::chrono::steady_clock::now();
  exec::parallel_for(ctx.pool(), grid.size(), [&](std::size_t i) {
    const Point& p = grid[i];
    try {
      if (p.step == profiler::Step::kNetworkSynthetic && p.spec.count == 1) {
        if (auto split = profiler::network_split(p.spec))
          p.prof->run_step(*split, p.step, p.batch);
        return;
      }
      p.prof->run_step(p.spec, p.step, p.batch);
    } catch (const ddl::ModelDoesNotFit&) {
      // the figure simply has no bar for this combination
    }
  });

  SuiteResult res;
  res.jobs = jobs;
  res.scenarios = static_cast<int>(grid.size());
  res.wall_seconds = wall_seconds_since(t0);
  res.cache_hits = cache.hits();
  res.cache_misses = cache.misses();
  return res;
}

// Monitoring overhead: the identical warm-data training simulation with and
// without the streaming stall monitor attached as the live iteration
// observer. The monitor's per-sample work is O(1) (rolling moments, P^2
// markers, two detectors per signal), so the delta must stay small — the
// budget asserted in EXPERIMENTS.md is < 5% of the unmonitored run.
struct MonitorOverheadResult {
  int iterations = 0;
  double off_seconds = 0.0;
  double on_seconds = 0.0;
  double overhead_pct = 0.0;
};

double run_training_once(const dnn::Model& model, const dnn::Dataset& data,
                         int iterations, monitor::StallMonitor* mon) {
  sim::Simulator sim;
  hw::FlowNetwork net(sim);
  hw::Cluster cluster(
      net, sim, cloud::cluster_configs_for(cloud::instance("p3.8xlarge"), 1),
      cloud::fabric_bandwidth());
  ddl::TrainConfig cfg;
  cfg.iterations = iterations;
  cfg.warmup_iterations = 1;
  cfg.synthetic_data = false;
  cfg.cold_cache = false;
  cfg.observer = mon;
  ddl::Trainer trainer(sim, net, cluster, model, data, cfg);
  auto t0 = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(trainer.run().per_iteration);
  return wall_seconds_since(t0);
}

MonitorOverheadResult measure_monitor_overhead(int iterations, int reps) {
  dnn::Model model = dnn::make_zoo_model("resnet50");
  dnn::Dataset data = dnn::dataset_for("resnet50");
  MonitorOverheadResult res;
  res.iterations = iterations;
  for (int r = 0; r < reps; ++r) {
    const double off = run_training_once(model, data, iterations, nullptr);
    monitor::StallMonitor mon{monitor::MonitorConfig{}};
    const double on = run_training_once(model, data, iterations, &mon);
    if (res.off_seconds == 0.0 || off < res.off_seconds) res.off_seconds = off;
    if (res.on_seconds == 0.0 || on < res.on_seconds) res.on_seconds = on;
  }
  res.overhead_pct =
      res.off_seconds > 0.0
          ? (res.on_seconds - res.off_seconds) / res.off_seconds * 100.0
          : 0.0;
  return res;
}

// Flow-rebalance churn: many disjoint two-link components, each carrying a
// stream of flows with staggered arrivals. Every arrival and departure is a
// transition; the incremental engine refills only the touched component, so
// avg_flows_per_refill stays near the per-component flow count no matter
// how many components exist.
struct FlowRebalanceResult {
  int links = 0;
  int flows = 0;
  double wall_seconds = 0.0;
  double transitions_per_second = 0.0;
  unsigned long long refills = 0;
  unsigned long long refill_flow_visits = 0;
  double avg_flows_per_refill = 0.0;
};

FlowRebalanceResult measure_flow_rebalance(int components, int flows_per_component,
                                           int reps) {
  FlowRebalanceResult res;
  res.links = components * 2;
  res.flows = components * flows_per_component;
  for (int r = 0; r < reps; ++r) {
    sim::Simulator sim;
    hw::FlowNetwork net(sim);
    std::vector<hw::Link*> up, down;
    for (int c = 0; c < components; ++c) {
      up.push_back(net.add_link("up" + std::to_string(c), 1e9));
      down.push_back(net.add_link("down" + std::to_string(c), 1e9));
    }
    auto run_flow = [&net](std::vector<hw::Link*> path, double bytes,
                           double latency) -> sim::Task<void> {
      co_await net.transfer(bytes, std::move(path), latency);
    };
    for (int c = 0; c < components; ++c)
      for (int f = 0; f < flows_per_component; ++f)
        sim.spawn(run_flow({up[static_cast<std::size_t>(c)],
                            down[static_cast<std::size_t>(c)]},
                           1e6 * (1 + f % 7), 1e-3 * f));
    auto t0 = std::chrono::steady_clock::now();
    sim.run();
    double secs = wall_seconds_since(t0);
    if (res.wall_seconds == 0.0 || secs < res.wall_seconds) {
      res.wall_seconds = secs;
      res.refills = net.refills();
      res.refill_flow_visits = net.refill_flow_visits();
    }
  }
  res.transitions_per_second =
      res.wall_seconds > 0.0 ? 2.0 * res.flows / res.wall_seconds : 0.0;
  res.avg_flows_per_refill =
      res.refills > 0 ? static_cast<double>(res.refill_flow_visits) /
                            static_cast<double>(res.refills)
                      : 0.0;
  return res;
}

// Archive-append overhead: the durable write path (serialize + hash +
// temp/rename/fsync record + O_APPEND/fsync index line) relative to the
// producing run it rides on. `--archive` must be free to leave on; the
// budget asserted in EXPERIMENTS.md is < 2% of the baseline run.
struct ArchiveAppendResult {
  int appends = 0;
  double run_seconds = 0.0;       // best-of-reps producing run (no archive)
  double append_seconds = 0.0;    // wall for all appends
  double per_append_ms = 0.0;
  double record_bytes = 0.0;
  double overhead_pct = 0.0;      // one append vs one producing run
};

ArchiveAppendResult measure_archive_append(int iterations, int appends,
                                           int reps) {
  dnn::Model model = dnn::make_zoo_model("resnet50");
  dnn::Dataset data = dnn::dataset_for("resnet50");
  ArchiveAppendResult res;
  res.appends = appends;
  for (int r = 0; r < reps; ++r) {
    const double secs = run_training_once(model, data, iterations, nullptr);
    if (res.run_seconds == 0.0 || secs < res.run_seconds)
      res.run_seconds = secs;
  }

  // A representative record: the real manifest serializer (with a stall
  // report and provenance) plus a folded blame payload. Each append gets a
  // distinct manifest so content addressing cannot dedup the record write.
  auto inputs_for_append = [](int i) {
    telemetry::RunManifest man;
    man.command = "profile";
    man.add_config("model", "resnet50");
    man.add_config("instance", "p3.8xlarge");
    man.add_config("batch", "32");
    profiler::StallReport sr;
    sr.config_label = "p3.8xlarge";
    sr.model_name = "resnet50";
    sr.per_gpu_batch = 32;
    sr.gpus = 4;
    sr.t1 = 0.1;
    sr.t2 = 0.12;
    sr.t3 = 0.13;
    sr.t4 = 0.14 + 1e-6 * i;  // per-append variation
    sr.fetch_stall_pct = 3.0;
    sr.epoch_seconds = 1800.0;
    sr.epoch_cost_usd = 6.12;
    man.stall_report = sr;

    archive::RecordInputs in;
    in.command = "profile";
    in.model = "resnet50";
    in.dataset = "imagenet-1k";
    in.instance = "p3.8xlarge";
    in.count = 1;
    in.batch = 32;
    in.config = man.config;
    in.manifest_json = man.to_json();
    for (int s = 0; s < 48; ++s)
      in.folded += "machine0;gpu" + std::to_string(s % 4) +
                   ";phase" + std::to_string(s / 4) + ";compute " +
                   std::to_string(1000 + s) + "\n";
    return in;
  };
  res.record_bytes =
      static_cast<double>(archive::build_record(inputs_for_append(0)).json.size());

  std::string dir =
      (std::filesystem::temp_directory_path() / "stash_bench_archive.XXXXXX")
          .string();
  std::vector<char> tmpl(dir.begin(), dir.end());
  tmpl.push_back('\0');
  if (::mkdtemp(tmpl.data()) == nullptr) return res;
  dir.assign(tmpl.data());
  {
    archive::Archive ar(dir + "/arch");
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < appends; ++i) ar.append(inputs_for_append(i));
    res.append_seconds = wall_seconds_since(t0);
  }
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);

  res.per_append_ms = res.append_seconds / appends * 1e3;
  res.overhead_pct = res.run_seconds > 0.0
                         ? (res.append_seconds / appends) / res.run_seconds *
                               100.0
                         : 0.0;
  return res;
}

// The tentpole scale case: a full training iteration sweep (warmup +
// measured iterations) of ResNet-18 DDP on 1024 x p3.16xlarge = 8192 GPUs.
// The kAuto collective switches to the hierarchical schedule at this size,
// so each gradient flush costs 2(M-1) NIC rounds + 2(g-1) NVLink rounds
// instead of the flat ring's 2(Mg-1) global rounds.
struct HierAllreduceResult {
  int machines = 0;
  int gpus = 0;
  int iterations = 0;
  double wall_seconds = 0.0;
  unsigned long long events = 0;
  double events_per_second = 0.0;
  double sim_seconds_per_iteration = 0.0;
};

HierAllreduceResult measure_hier_allreduce(int machines, int iterations) {
  dnn::Model model = dnn::make_resnet18();
  dnn::Dataset data = dnn::imagenet_1k();
  sim::Simulator sim;
  hw::FlowNetwork net(sim);
  hw::Cluster cluster(net, sim,
                      cloud::cluster_configs_for(cloud::instance("p3.16xlarge"),
                                                 machines),
                      cloud::fabric_bandwidth());
  ddl::TrainConfig cfg;
  cfg.iterations = iterations;
  cfg.warmup_iterations = 1;
  // One gradient flush per iteration: the sweep times the collective
  // schedule, not DDP bucketing granularity.
  cfg.bucket_bytes = util::mib(64);
  ddl::Trainer trainer(sim, net, cluster, model, data, cfg);
  auto t0 = std::chrono::steady_clock::now();
  ddl::TrainResult tr = trainer.run();
  HierAllreduceResult res;
  res.machines = machines;
  res.gpus = cluster.total_gpus();
  res.iterations = iterations;
  res.wall_seconds = wall_seconds_since(t0);
  res.events = sim.events_executed();
  res.events_per_second = res.wall_seconds > 0.0
                              ? static_cast<double>(res.events) / res.wall_seconds
                              : 0.0;
  res.sim_seconds_per_iteration = tr.per_iteration;
  return res;
}

int write_report(const std::string& path, bool fast,
                 const CalibrationResult& cal,
                 const EventQueueResult& eq,
                 const FlowRebalanceResult& fr,
                 const HierAllreduceResult& ha,
                 const MonitorOverheadResult& mo,
                 const ArchiveAppendResult& aa,
                 const std::vector<SuiteResult>& suites) {
  util::JsonWriter w;
  w.begin_object();
  w.key("schema").value("stash.bench_perf_sim/3");
  w.key("fast_mode").value(fast);
  w.key("hardware_concurrency").value(exec::default_jobs());
  w.key("calibration").begin_object();
  w.key("workload").value("pointer_chase_lcg");
  w.key("wall_seconds").value(cal.wall_seconds);
  w.key("mops").value(cal.mops);
  w.end_object();
  w.key("event_queue").begin_object();
  w.key("workload").value("steady_state_churn");
  w.key("depth").value(eq.depth);
  w.key("events").value(static_cast<long long>(eq.events));
  w.key("wall_seconds").value(eq.wall_seconds);
  w.key("events_per_second").value(eq.events_per_second);
  w.end_object();
  w.key("flow_rebalance").begin_object();
  w.key("workload").value("disjoint_component_churn");
  w.key("links").value(fr.links);
  w.key("flows").value(fr.flows);
  w.key("wall_seconds").value(fr.wall_seconds);
  w.key("transitions_per_second").value(fr.transitions_per_second);
  w.key("refills").value(static_cast<unsigned long long>(fr.refills));
  w.key("refill_flow_visits")
      .value(static_cast<unsigned long long>(fr.refill_flow_visits));
  w.key("avg_flows_per_refill").value(fr.avg_flows_per_refill);
  w.end_object();
  w.key("hier_allreduce").begin_object();
  w.key("workload").value("hier_allreduce_1024x8");
  w.key("machines").value(ha.machines);
  w.key("gpus").value(ha.gpus);
  w.key("iterations").value(ha.iterations);
  w.key("wall_seconds").value(ha.wall_seconds);
  w.key("events").value(static_cast<unsigned long long>(ha.events));
  w.key("events_per_second").value(ha.events_per_second);
  w.key("sim_seconds_per_iteration").value(ha.sim_seconds_per_iteration);
  w.key("budget_wall_seconds").value(10.0);
  w.end_object();
  w.key("monitor_overhead").begin_object();
  w.key("workload").value("resnet50_warm_training");
  w.key("iterations").value(mo.iterations);
  w.key("monitor_off_seconds").value(mo.off_seconds);
  w.key("monitor_on_seconds").value(mo.on_seconds);
  w.key("overhead_pct").value(mo.overhead_pct);
  w.key("budget_pct").value(5.0);
  w.end_object();
  w.key("archive_append").begin_object();
  w.key("workload").value("run_record_append");
  w.key("appends").value(aa.appends);
  w.key("record_bytes").value(aa.record_bytes);
  w.key("baseline_run_seconds").value(aa.run_seconds);
  w.key("append_seconds").value(aa.append_seconds);
  w.key("per_append_ms").value(aa.per_append_ms);
  w.key("overhead_pct").value(aa.overhead_pct);
  w.key("budget_pct").value(2.0);
  w.end_object();
  w.key("figure_suite").begin_object();
  w.key("scenarios").value(suites.empty() ? 0 : suites.front().scenarios);
  w.key("runs").begin_array();
  double base = suites.empty() ? 0.0 : suites.front().wall_seconds;
  for (const SuiteResult& s : suites) {
    w.begin_object();
    w.key("jobs").value(s.jobs);
    w.key("wall_seconds").value(s.wall_seconds);
    w.key("speedup_vs_jobs1")
        .value(s.wall_seconds > 0.0 ? base / s.wall_seconds : 0.0);
    w.key("cache_hits").value(static_cast<unsigned long long>(s.cache_hits));
    w.key("cache_misses").value(static_cast<unsigned long long>(s.cache_misses));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.end_object();

  std::ofstream os(path, std::ios::binary);
  os << w.str() << "\n";
  os.flush();
  if (!os) {
    std::cerr << "error: cannot write " << path << "\n";
    return 1;
  }
  std::cout << "wrote " << path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool fast = bench::fast_mode();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (!fast)
    benchmark::RunSpecifiedBenchmarks();
  else
    std::cout << "STASH_BENCH_FAST: skipping google-benchmark suite\n";

  CalibrationResult cal = measure_calibration(3);
  std::cout << "calibration (pointer-chase + LCG): "
            << util::format_double(cal.mops, 1) << " Mops\n";

  // The event count and rep count stay at full size even in fast mode: CI
  // compares this number against the checked-in full-mode baseline (the
  // calibration-normalized 20% regression gate), and a smaller churn run
  // measures mostly warm-up and window noise, not throughput.
  EventQueueResult eq = measure_event_queue(1000, 2000000, 3);
  std::cout << "event queue (churn, depth " << eq.depth << "): " << eq.events
            << " events in " << util::format_double(eq.wall_seconds * 1e3, 1)
            << " ms (" << util::format_double(eq.events_per_second / 1e6, 2)
            << " M/s)\n";

  FlowRebalanceResult fr =
      measure_flow_rebalance(fast ? 64 : 256, 32, fast ? 2 : 3);
  std::cout << "flow rebalance (" << fr.links << " links, " << fr.flows
            << " flows): "
            << util::format_double(fr.transitions_per_second / 1e3, 1)
            << " K transitions/s, "
            << util::format_double(fr.avg_flows_per_refill, 1)
            << " flows visited per refill\n";

  HierAllreduceResult ha = measure_hier_allreduce(1024, fast ? 2 : 3);
  std::cout << "hier_allreduce_1024x8 (" << ha.gpus << " GPUs, "
            << ha.iterations << " iters): " << ha.events << " events in "
            << util::format_double(ha.wall_seconds, 2) << " s ("
            << util::format_double(ha.events_per_second / 1e6, 2)
            << " M/s, sim "
            << util::format_double(ha.sim_seconds_per_iteration, 2)
            << " s/iter)\n";

  MonitorOverheadResult mo =
      measure_monitor_overhead(fast ? 64 : 256, fast ? 2 : 3);
  std::cout << "monitor overhead (resnet50, " << mo.iterations
            << " iters): off " << util::format_double(mo.off_seconds * 1e3, 1)
            << " ms, on " << util::format_double(mo.on_seconds * 1e3, 1)
            << " ms (" << util::format_double(mo.overhead_pct, 2)
            << "% — budget 5%)\n";

  ArchiveAppendResult aa =
      measure_archive_append(fast ? 64 : 256, fast ? 20 : 50, fast ? 2 : 3);
  std::cout << "archive append (" << aa.appends << " records of "
            << util::format_double(aa.record_bytes / 1024.0, 1) << " KiB): "
            << util::format_double(aa.per_append_ms, 2) << " ms/append ("
            << util::format_double(aa.overhead_pct, 2)
            << "% of a producing run — budget 2%)\n";

  std::vector<std::string> models{"alexnet", "resnet18", "resnet50", "vgg11"};
  std::vector<profiler::ClusterSpec> specs{
      profiler::ClusterSpec{"p2.8xlarge"}, profiler::ClusterSpec{"p2.16xlarge"},
      profiler::ClusterSpec{"p3.8xlarge"}, profiler::ClusterSpec{"p3.16xlarge"}};
  std::vector<int> batches{32};
  if (fast) {
    models = {"alexnet", "resnet18"};
    specs = {profiler::ClusterSpec{"p3.8xlarge"}};
  }

  std::vector<int> job_counts{1};
  if (exec::default_jobs() > 1) job_counts.push_back(exec::default_jobs());
  std::vector<SuiteResult> suites;
  for (int jobs : job_counts) {
    SuiteResult s = run_figure_suite(jobs, models, specs, batches);
    suites.push_back(s);
    std::cout << "figure suite (jobs=" << s.jobs << "): " << s.scenarios
              << " scenarios in " << util::format_double(s.wall_seconds, 2)
              << " s (" << s.cache_misses << " simulated, " << s.cache_hits
              << " cache hits)\n";
  }
  if (suites.size() > 1 && suites.back().wall_seconds > 0.0)
    std::cout << "speedup jobs=" << suites.back().jobs << " vs jobs=1: "
              << util::format_double(
                     suites.front().wall_seconds / suites.back().wall_seconds, 2)
              << "x\n";

  return write_report("BENCH_perf_sim.json", fast, cal, eq, fr, ha, mo, aa,
                      suites);
}
