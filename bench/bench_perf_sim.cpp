// Micro-benchmarks of the simulation substrate itself: event-queue
// throughput, flow-network rebalance cost, and end-to-end ring all-reduce
// simulation speed (google-benchmark), plus a figure-suite sweep that times
// the parallel profiling engine end to end at --jobs 1 and --jobs nproc.
// These bound how large a characterization sweep the harness can afford.
//
// Besides the usual console output, the binary writes BENCH_perf_sim.json
// (schema stash.bench_perf_sim/1, documented in EXPERIMENTS.md) so CI and
// EXPERIMENTS.md comparisons are machine-readable. STASH_BENCH_FAST=1 skips
// the google-benchmark suite and shrinks the sweep to a smoke test.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "cloud/builder.h"
#include "coll/ring_allreduce.h"
#include "ddl/trainer.h"
#include "dnn/zoo.h"
#include "exec/exec_context.h"
#include "hw/flow_network.h"
#include "monitor/monitor.h"
#include "sim/simulator.h"
#include "util/json.h"
#include "util/units.h"

namespace {

using namespace stash;

void BM_EventQueueThroughput(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < n; ++i) sim.schedule((i * 7919) % 1000, [] {});
    sim.run();
    benchmark::DoNotOptimize(sim.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueThroughput)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_EventScheduleCancel(benchmark::State& state) {
  // Exercises the slab free list and the lazy-deletion path: half the
  // scheduled events are cancelled before they fire.
  const int n = static_cast<int>(state.range(0));
  std::vector<sim::EventId> ids(static_cast<std::size_t>(n));
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < n; ++i)
      ids[static_cast<std::size_t>(i)] = sim.schedule((i * 7919) % 1000, [] {});
    for (int i = 0; i < n; i += 2) sim.cancel(ids[static_cast<std::size_t>(i)]);
    sim.run();
    benchmark::DoNotOptimize(sim.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventScheduleCancel)->Arg(10000)->Arg(100000);

// Steady-state event-loop churn: `depth` live events, each firing
// reschedules itself until the run's budget is spent. This is the regime
// real simulations live in — bounded queue depth, constant schedule/fire
// traffic. The callback captures 24 bytes, past std::function's 16-byte
// inline buffer, so the pre-slab implementation paid one heap allocation
// per event here; the slab's 48-byte inline storage does not.
struct ChurnEvent {
  sim::Simulator* sim;
  long long* remaining;
  unsigned* rng;
  void operator()() {
    if (--*remaining <= 0) return;
    *rng = *rng * 1664525u + 1013904223u;
    sim->schedule(1.0 + (*rng >> 20) * 1e-3, *this);
  }
};

long long run_churn(sim::Simulator& sim, int depth, long long events) {
  long long remaining = events;
  unsigned rng = 12345;
  for (int i = 0; i < depth; ++i)
    sim.schedule(1.0 + i * 1e-3, ChurnEvent{&sim, &remaining, &rng});
  sim.run();
  return events - remaining;
}

void BM_EventSteadyStateChurn(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const long long events = 200000;
  for (auto _ : state) {
    sim::Simulator sim;
    run_churn(sim, depth, events);
    benchmark::DoNotOptimize(sim.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EventSteadyStateChurn)->Arg(256)->Arg(1000);

void BM_FlowNetworkFairShare(benchmark::State& state) {
  const int flows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    hw::FlowNetwork net(sim);
    hw::Link* link = net.add_link("l", 1e9);
    std::vector<hw::Link*> path{link};
    auto run_flow = [&](double bytes) -> sim::Task<void> {
      co_await net.transfer(bytes, path);
    };
    for (int i = 0; i < flows; ++i) sim.spawn(run_flow(1e6 * (1 + i % 7)));
    sim.run();
    benchmark::DoNotOptimize(link->bytes_carried());
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_FlowNetworkFairShare)->Arg(8)->Arg(64)->Arg(256);

void BM_RingAllreduceSim(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    hw::FlowNetwork net(sim);
    hw::Cluster cluster(net, sim,
                        cloud::cluster_configs_for(cloud::instance("p3.16xlarge"), 1),
                        cloud::fabric_bandwidth());
    coll::CollectiveContext ctx{sim, net, cluster, coll::CollectiveConfig{}};
    double done = -1;
    auto proc = [&]() -> sim::Task<void> {
      co_await coll::ring_allreduce(ctx, util::mib(100));
      done = sim.now();
    };
    sim.spawn(proc());
    sim.run();
    benchmark::DoNotOptimize(done);
  }
}
BENCHMARK(BM_RingAllreduceSim);

void BM_TrainerIteration(benchmark::State& state) {
  dnn::Model model = dnn::make_resnet18();
  dnn::Dataset data = dnn::imagenet_1k();
  for (auto _ : state) {
    sim::Simulator sim;
    hw::FlowNetwork net(sim);
    hw::Cluster cluster(net, sim,
                        cloud::cluster_configs_for(cloud::instance("p3.16xlarge"), 1),
                        cloud::fabric_bandwidth());
    ddl::TrainConfig cfg;
    cfg.iterations = 3;
    cfg.warmup_iterations = 1;
    ddl::Trainer trainer(sim, net, cluster, model, data, cfg);
    benchmark::DoNotOptimize(trainer.run().per_iteration);
  }
}
BENCHMARK(BM_TrainerIteration);

double wall_seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// The headline events/sec number in BENCH_perf_sim.json: best-of-`reps`
// wall time of the steady-state churn workload above.
struct EventQueueResult {
  int depth = 0;
  long long events = 0;
  double wall_seconds = 0.0;
  double events_per_second = 0.0;
};

EventQueueResult measure_event_queue(int depth, long long events, int reps) {
  EventQueueResult best;
  best.depth = depth;
  best.events = events;
  for (int r = 0; r < reps; ++r) {
    sim::Simulator sim;
    auto t0 = std::chrono::steady_clock::now();
    run_churn(sim, depth, events);
    double secs = wall_seconds_since(t0);
    if (best.wall_seconds == 0.0 || secs < best.wall_seconds)
      best.wall_seconds = secs;
  }
  best.events_per_second = best.wall_seconds > 0.0
                               ? static_cast<double>(events) / best.wall_seconds
                               : 0.0;
  return best;
}

// One figure-suite run: the five-step profile of each (model, config, batch)
// grid point, fanned across a `jobs`-wide pool into a run-private SimCache
// (private so the jobs=1 and jobs=nproc runs both do full work).
struct SuiteResult {
  int jobs = 1;
  int scenarios = 0;
  double wall_seconds = 0.0;
  unsigned long long cache_hits = 0;
  unsigned long long cache_misses = 0;
};

SuiteResult run_figure_suite(int jobs, const std::vector<std::string>& models,
                             const std::vector<profiler::ClusterSpec>& specs,
                             const std::vector<int>& batches) {
  exec::SimCache cache;
  exec::ExecContext ctx(jobs, &cache);
  profiler::ProfileOptions opt;
  opt.iterations = 4;
  opt.warmup_iterations = 1;
  opt.exec = &ctx;

  struct Point {
    profiler::StashProfiler* prof;
    profiler::ClusterSpec spec;
    profiler::Step step;
    int batch;
  };
  std::vector<std::unique_ptr<profiler::StashProfiler>> profilers;
  std::vector<Point> grid;
  for (const auto& m : models) {
    profilers.push_back(std::make_unique<profiler::StashProfiler>(
        dnn::make_zoo_model(m), dnn::dataset_for(m), opt));
    for (const auto& s : specs)
      for (int b : batches)
        for (profiler::Step st :
             {profiler::Step::kSingleGpuSynthetic, profiler::Step::kAllGpuSynthetic,
              profiler::Step::kRealCold, profiler::Step::kRealWarm,
              profiler::Step::kNetworkSynthetic})
          grid.push_back(Point{profilers.back().get(), s, st, b});
  }

  auto t0 = std::chrono::steady_clock::now();
  exec::parallel_for(ctx.pool(), grid.size(), [&](std::size_t i) {
    const Point& p = grid[i];
    try {
      if (p.step == profiler::Step::kNetworkSynthetic && p.spec.count == 1) {
        if (auto split = profiler::network_split(p.spec))
          p.prof->run_step(*split, p.step, p.batch);
        return;
      }
      p.prof->run_step(p.spec, p.step, p.batch);
    } catch (const ddl::ModelDoesNotFit&) {
      // the figure simply has no bar for this combination
    }
  });

  SuiteResult res;
  res.jobs = jobs;
  res.scenarios = static_cast<int>(grid.size());
  res.wall_seconds = wall_seconds_since(t0);
  res.cache_hits = cache.hits();
  res.cache_misses = cache.misses();
  return res;
}

// Monitoring overhead: the identical warm-data training simulation with and
// without the streaming stall monitor attached as the live iteration
// observer. The monitor's per-sample work is O(1) (rolling moments, P^2
// markers, two detectors per signal), so the delta must stay small — the
// budget asserted in EXPERIMENTS.md is < 5% of the unmonitored run.
struct MonitorOverheadResult {
  int iterations = 0;
  double off_seconds = 0.0;
  double on_seconds = 0.0;
  double overhead_pct = 0.0;
};

double run_training_once(const dnn::Model& model, const dnn::Dataset& data,
                         int iterations, monitor::StallMonitor* mon) {
  sim::Simulator sim;
  hw::FlowNetwork net(sim);
  hw::Cluster cluster(
      net, sim, cloud::cluster_configs_for(cloud::instance("p3.8xlarge"), 1),
      cloud::fabric_bandwidth());
  ddl::TrainConfig cfg;
  cfg.iterations = iterations;
  cfg.warmup_iterations = 1;
  cfg.synthetic_data = false;
  cfg.cold_cache = false;
  cfg.observer = mon;
  ddl::Trainer trainer(sim, net, cluster, model, data, cfg);
  auto t0 = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(trainer.run().per_iteration);
  return wall_seconds_since(t0);
}

MonitorOverheadResult measure_monitor_overhead(int iterations, int reps) {
  dnn::Model model = dnn::make_zoo_model("resnet50");
  dnn::Dataset data = dnn::dataset_for("resnet50");
  MonitorOverheadResult res;
  res.iterations = iterations;
  for (int r = 0; r < reps; ++r) {
    const double off = run_training_once(model, data, iterations, nullptr);
    monitor::StallMonitor mon{monitor::MonitorConfig{}};
    const double on = run_training_once(model, data, iterations, &mon);
    if (res.off_seconds == 0.0 || off < res.off_seconds) res.off_seconds = off;
    if (res.on_seconds == 0.0 || on < res.on_seconds) res.on_seconds = on;
  }
  res.overhead_pct =
      res.off_seconds > 0.0
          ? (res.on_seconds - res.off_seconds) / res.off_seconds * 100.0
          : 0.0;
  return res;
}

int write_report(const std::string& path, bool fast,
                 const EventQueueResult& eq,
                 const MonitorOverheadResult& mo,
                 const std::vector<SuiteResult>& suites) {
  util::JsonWriter w;
  w.begin_object();
  w.key("schema").value("stash.bench_perf_sim/1");
  w.key("fast_mode").value(fast);
  w.key("hardware_concurrency").value(exec::default_jobs());
  w.key("event_queue").begin_object();
  w.key("workload").value("steady_state_churn");
  w.key("depth").value(eq.depth);
  w.key("events").value(static_cast<long long>(eq.events));
  w.key("wall_seconds").value(eq.wall_seconds);
  w.key("events_per_second").value(eq.events_per_second);
  w.end_object();
  w.key("monitor_overhead").begin_object();
  w.key("workload").value("resnet50_warm_training");
  w.key("iterations").value(mo.iterations);
  w.key("monitor_off_seconds").value(mo.off_seconds);
  w.key("monitor_on_seconds").value(mo.on_seconds);
  w.key("overhead_pct").value(mo.overhead_pct);
  w.key("budget_pct").value(5.0);
  w.end_object();
  w.key("figure_suite").begin_object();
  w.key("scenarios").value(suites.empty() ? 0 : suites.front().scenarios);
  w.key("runs").begin_array();
  double base = suites.empty() ? 0.0 : suites.front().wall_seconds;
  for (const SuiteResult& s : suites) {
    w.begin_object();
    w.key("jobs").value(s.jobs);
    w.key("wall_seconds").value(s.wall_seconds);
    w.key("speedup_vs_jobs1")
        .value(s.wall_seconds > 0.0 ? base / s.wall_seconds : 0.0);
    w.key("cache_hits").value(static_cast<unsigned long long>(s.cache_hits));
    w.key("cache_misses").value(static_cast<unsigned long long>(s.cache_misses));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.end_object();

  std::ofstream os(path, std::ios::binary);
  os << w.str() << "\n";
  os.flush();
  if (!os) {
    std::cerr << "error: cannot write " << path << "\n";
    return 1;
  }
  std::cout << "wrote " << path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool fast = bench::fast_mode();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (!fast)
    benchmark::RunSpecifiedBenchmarks();
  else
    std::cout << "STASH_BENCH_FAST: skipping google-benchmark suite\n";

  EventQueueResult eq =
      measure_event_queue(1000, fast ? 100000 : 2000000, fast ? 2 : 3);
  std::cout << "event queue (churn, depth " << eq.depth << "): " << eq.events
            << " events in " << util::format_double(eq.wall_seconds * 1e3, 1)
            << " ms (" << util::format_double(eq.events_per_second / 1e6, 2)
            << " M/s)\n";

  MonitorOverheadResult mo =
      measure_monitor_overhead(fast ? 64 : 256, fast ? 2 : 3);
  std::cout << "monitor overhead (resnet50, " << mo.iterations
            << " iters): off " << util::format_double(mo.off_seconds * 1e3, 1)
            << " ms, on " << util::format_double(mo.on_seconds * 1e3, 1)
            << " ms (" << util::format_double(mo.overhead_pct, 2)
            << "% — budget 5%)\n";

  std::vector<std::string> models{"alexnet", "resnet18", "resnet50", "vgg11"};
  std::vector<profiler::ClusterSpec> specs{
      profiler::ClusterSpec{"p2.8xlarge"}, profiler::ClusterSpec{"p2.16xlarge"},
      profiler::ClusterSpec{"p3.8xlarge"}, profiler::ClusterSpec{"p3.16xlarge"}};
  std::vector<int> batches{32};
  if (fast) {
    models = {"alexnet", "resnet18"};
    specs = {profiler::ClusterSpec{"p3.8xlarge"}};
  }

  std::vector<int> job_counts{1};
  if (exec::default_jobs() > 1) job_counts.push_back(exec::default_jobs());
  std::vector<SuiteResult> suites;
  for (int jobs : job_counts) {
    SuiteResult s = run_figure_suite(jobs, models, specs, batches);
    suites.push_back(s);
    std::cout << "figure suite (jobs=" << s.jobs << "): " << s.scenarios
              << " scenarios in " << util::format_double(s.wall_seconds, 2)
              << " s (" << s.cache_misses << " simulated, " << s.cache_hits
              << " cache hits)\n";
  }
  if (suites.size() > 1 && suites.back().wall_seconds > 0.0)
    std::cout << "speedup jobs=" << suites.back().jobs << " vs jobs=1: "
              << util::format_double(
                     suites.front().wall_seconds / suites.back().wall_seconds, 2)
              << "x\n";

  return write_report("BENCH_perf_sim.json", fast, eq, mo, suites);
}
