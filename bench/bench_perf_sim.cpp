// Micro-benchmarks of the simulation substrate itself (google-benchmark):
// event-queue throughput, flow-network rebalance cost, and end-to-end ring
// all-reduce simulation speed. These bound how large a characterization
// sweep the harness can afford.
#include <benchmark/benchmark.h>

#include <memory>

#include "cloud/builder.h"
#include "coll/ring_allreduce.h"
#include "ddl/trainer.h"
#include "dnn/zoo.h"
#include "hw/flow_network.h"
#include "sim/simulator.h"
#include "util/units.h"

namespace {

using namespace stash;

void BM_EventQueueThroughput(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < n; ++i) sim.schedule((i * 7919) % 1000, [] {});
    sim.run();
    benchmark::DoNotOptimize(sim.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueThroughput)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_FlowNetworkFairShare(benchmark::State& state) {
  const int flows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    hw::FlowNetwork net(sim);
    hw::Link* link = net.add_link("l", 1e9);
    std::vector<hw::Link*> path{link};
    auto run_flow = [&](double bytes) -> sim::Task<void> {
      co_await net.transfer(bytes, path);
    };
    for (int i = 0; i < flows; ++i) sim.spawn(run_flow(1e6 * (1 + i % 7)));
    sim.run();
    benchmark::DoNotOptimize(link->bytes_carried());
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_FlowNetworkFairShare)->Arg(8)->Arg(64)->Arg(256);

void BM_RingAllreduceSim(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    hw::FlowNetwork net(sim);
    hw::Cluster cluster(net, sim,
                        cloud::cluster_configs_for(cloud::instance("p3.16xlarge"), 1),
                        cloud::fabric_bandwidth());
    coll::CollectiveContext ctx{sim, net, cluster, coll::CollectiveConfig{}};
    double done = -1;
    auto proc = [&]() -> sim::Task<void> {
      co_await coll::ring_allreduce(ctx, util::mib(100));
      done = sim.now();
    };
    sim.spawn(proc());
    sim.run();
    benchmark::DoNotOptimize(done);
  }
}
BENCHMARK(BM_RingAllreduceSim);

void BM_TrainerIteration(benchmark::State& state) {
  dnn::Model model = dnn::make_resnet18();
  dnn::Dataset data = dnn::imagenet_1k();
  for (auto _ : state) {
    sim::Simulator sim;
    hw::FlowNetwork net(sim);
    hw::Cluster cluster(net, sim,
                        cloud::cluster_configs_for(cloud::instance("p3.16xlarge"), 1),
                        cloud::fabric_bandwidth());
    ddl::TrainConfig cfg;
    cfg.iterations = 3;
    cfg.warmup_iterations = 1;
    ddl::Trainer trainer(sim, net, cluster, model, data, cfg);
    benchmark::DoNotOptimize(trainer.run().per_iteration);
  }
}
BENCHMARK(BM_TrainerIteration);

}  // namespace

BENCHMARK_MAIN();
