// Extension E4 (§VI-B): the monetary cost of characterization itself —
// Stash's five steps per configuration vs a Srifty-style grid probe.
//
// The paper argues the cost of building an automated recommender is often
// ignored: Srifty took ~40K unique bandwidth measurements over clusters of
// up to 64 VMs, which must be repeated when the network, region, or
// offering changes. Stash needs five short training runs per
// (model, configuration) pair. This bench prices both on the Table-I
// catalog.
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "cloud/instance.h"

int main() {
  using namespace stash;
  bench::print_header(
      "Extension E4 — cost of the characterization itself (§VI-B)",
      "Srifty needs ~40K probe measurements over up to 64 VMs, re-run per "
      "region/network change; Stash runs five short steps per config.");

  // Stash: five steps, each ~2 minutes of instance time (a handful of
  // iterations plus setup), per configuration of interest.
  const double stash_step_minutes = 2.0;
  const int stash_steps = 5;

  util::Table stash_t({"configuration", "instances billed", "minutes billed",
                       "cost ($)"});
  double stash_total = 0.0;
  for (const auto& spec :
       {profiler::ClusterSpec{"p2.8xlarge"}, profiler::ClusterSpec{"p2.16xlarge"},
        profiler::ClusterSpec{"p3.8xlarge"}, profiler::ClusterSpec{"p3.16xlarge"},
        profiler::ClusterSpec{"p3.8xlarge", 2}}) {
    double minutes = stash_step_minutes * stash_steps;
    double cost = spec.hourly_price() * minutes / 60.0;
    stash_total += cost;
    stash_t.row()
        .cell(spec.label())
        .cell(spec.count)
        .cell(minutes, 0)
        .cell(cost, 2);
  }
  stash_t.row().cell("TOTAL (one model)").cell("-").cell("-").cell(stash_total, 2);
  stash_t.print(std::cout);

  // Srifty-style probe: 40K measurements; assume 1 s each amortized across
  // a mean probe cluster of 8 VMs at the P3 blended rate, plus cold-start
  // provisioning of the largest (64-VM) clusters.
  const double probe_measurements = 40'000.0;
  const double seconds_per_measurement = 1.0;
  const double mean_probe_vms = 8.0;
  const double blended_rate = cloud::instance("p3.8xlarge").price_per_hour;
  double probe_hours = probe_measurements * seconds_per_measurement / 3600.0;
  double probe_cost = probe_hours * mean_probe_vms * blended_rate;
  const double coldstart_hours = 64 * 0.25;  // 15 min provisioning x 64 VMs
  double coldstart_cost = coldstart_hours * blended_rate;

  util::Table srifty_t({"component", "hours billed", "cost ($)"});
  srifty_t.row().cell("40K grid probes (8 VM avg)").cell(probe_hours * mean_probe_vms, 1)
      .cell(probe_cost, 2);
  srifty_t.row().cell("64-VM cluster cold starts").cell(coldstart_hours, 1)
      .cell(coldstart_cost, 2);
  srifty_t.row().cell("TOTAL (per region/network epoch)").cell("-").cell(
      probe_cost + coldstart_cost, 2);
  srifty_t.print(std::cout);

  std::cout << "\nStash characterization for one model: $"
            << util::format_double(stash_total, 2)
            << " vs Srifty-style probe table: $"
            << util::format_double(probe_cost + coldstart_cost, 2)
            << " (and the probe table expires with the network).\n";
  return 0;
}
