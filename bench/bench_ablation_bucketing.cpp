// Ablation A3: DDP gradient bucketing — per-tensor flushes (the paper's
// §VI granularity, our default) vs PyTorch's 25 MiB buckets. Bucketing
// amortizes the per-collective launch overhead (big win for many-tensor
// models on slow interconnects) but coarsens overlap.
#include <iostream>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "cloud/builder.h"
#include "ddl/trainer.h"
#include "util/units.h"

namespace {

using namespace stash;

double iteration_time(const std::string& instance_name, const dnn::Model& model,
                      int batch, double bucket_bytes) {
  sim::Simulator sim;
  hw::FlowNetwork net(sim);
  hw::Cluster cluster(net, sim,
                      cloud::cluster_configs_for(cloud::instance(instance_name), 1),
                      cloud::fabric_bandwidth());
  ddl::TrainConfig cfg;
  cfg.per_gpu_batch = batch;
  cfg.iterations = 4;
  cfg.warmup_iterations = 1;
  cfg.bucket_bytes = bucket_bytes;
  ddl::Trainer trainer(sim, net, cluster, model, dnn::dataset_for(model.name()), cfg);
  return trainer.run().per_iteration;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation A3 — per-tensor all-reduce vs 25 MiB DDP buckets (iteration ms)",
      "per-tensor pays tau per layer; buckets amortize it at the cost of "
      "coarser compute/communication overlap.");

  const int batch = 32;
  std::vector<std::string> models{"shufflenet", "resnet18", "resnet50", "vgg11"};
  std::vector<std::string> instances{"p2.16xlarge", "p3.16xlarge"};
  if (bench::fast_mode()) models = {"shufflenet", "vgg11"};

  util::Table t({"instance", "model", "per-tensor (ms)", "25 MiB buckets (ms)",
                 "bucketing speedup (%)"});
  for (const auto& inst : instances) {
    for (const auto& name : models) {
      dnn::Model model = dnn::make_zoo_model(name);
      double per_tensor = iteration_time(inst, model, batch, 0.0);
      double bucketed = iteration_time(inst, model, batch, util::mib(25));
      t.row()
          .cell(inst)
          .cell(name)
          .cell(per_tensor * 1e3, 2)
          .cell(bucketed * 1e3, 2)
          .cell((per_tensor - bucketed) / per_tensor * 100.0, 1);
    }
  }
  t.print(std::cout);
  return 0;
}
