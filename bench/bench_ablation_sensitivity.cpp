// Ablation A5: calibration sensitivity. The reproduction leans on two
// fitted constants — the per-flush launch overhead tau and the overlap
// fraction f (DESIGN.md §6). This bench perturbs both and checks whether
// the paper's four qualitative conclusions survive:
//   C1  p2.16xlarge has worse interconnect stalls than p2.8xlarge;
//   C2  two NIC-connected p2.8xlarge beat one p2.16xlarge end to end;
//   C3  VGG11 has lower I/C stall time than ResNet152 on NVLink;
//   C4  VGG11 has higher N/W stall than ResNet152 across the NIC.
// A reproduction whose conclusions flip inside the plausible constant
// range would be fit, not explained; this shows they do not.
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "dnn/resnet.h"
#include "dnn/vgg.h"

namespace {

using namespace stash;

struct Setting {
  double tau;      // launch_blocking_latency
  double overlap;  // overlap_fraction
};

profiler::ProfileOptions options_for(const Setting& s) {
  profiler::ProfileOptions opt = bench::bench_profile_options();
  opt.collective.launch_blocking_latency = s.tau;
  opt.collective.overlap_fraction = s.overlap;
  return opt;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation A5 — sensitivity of the paper's conclusions to tau and overlap",
      "C1: 16xl worse I/C than 8xl (P2); C2: 8xl*2 beats 16xl (P2); "
      "C3: VGG11 < ResNet152 I/C time (NVLink); C4: VGG11 > ResNet152 N/W.");

  std::vector<Setting> settings{{50e-6, 0.5}, {100e-6, 0.5}, {200e-6, 0.5},
                                {100e-6, 0.25}, {100e-6, 0.75}};
  if (bench::fast_mode()) settings = {{100e-6, 0.5}, {50e-6, 0.25}};

  util::Table t({"tau (us)", "overlap", "C1 16xl/8xl I/C ratio", "C2 16xl/8xl*2 time",
                 "C3 vgg/res I/C time", "C4 vgg/res N/W stall", "all hold?"});
  for (const Setting& s : settings) {
    auto opt = options_for(s);

    // C1 + C2: alexnet on the P2 family.
    dnn::Model alexnet = dnn::make_zoo_model("alexnet");
    profiler::StashProfiler pa(alexnet, dnn::imagenet_1k(), opt);
    auto r8 = pa.profile(profiler::ClusterSpec{"p2.8xlarge"}, 32);
    auto r16 = pa.profile(profiler::ClusterSpec{"p2.16xlarge"}, 32);
    double c1 = r16.ic_stall_pct / std::max(1e-9, r8.ic_stall_pct);
    double c2 = std::isnan(r16.t5) ? 0.0 : r16.t2 / r16.t5;  // >1: pair wins

    // C3 + C4: vgg11 vs resnet152 on P3.
    profiler::ClusterSpec p3{"p3.16xlarge"};
    dnn::Model vgg = dnn::make_vgg(11);
    dnn::Model res = dnn::make_resnet(152);
    profiler::StashProfiler pv(vgg, dnn::imagenet_1k(), opt);
    profiler::StashProfiler pr(res, dnn::imagenet_1k(), opt);
    auto rv = pv.profile(p3, 32);
    auto rr = pr.profile(p3, 32);
    double c3 = (rv.t2 - rv.t1) / std::max(1e-9, rr.t2 - rr.t1);  // <1 holds
    double c4 = rv.nw_stall_pct / std::max(1e-9, rr.nw_stall_pct);  // >1 holds

    bool all = c1 > 1.0 && c2 > 1.0 && c3 < 1.0 && c4 > 1.0;
    t.row()
        .cell(s.tau * 1e6, 0)
        .cell(s.overlap, 2)
        .cell(c1, 2)
        .cell(c2, 2)
        .cell(c3, 2)
        .cell(c4, 2)
        .cell(all ? "yes" : "NO");
  }
  t.print(std::cout);
  return 0;
}
