// Extension E1: measuring communication-reduction efficacy with Stash.
//
// §III motivates Stash with exactly this use case: "several distributed
// DNN algorithms have been proposed to reduce communication overhead...
// however, there is a lack of a profiling tool to measure the real world
// efficacy". Here Stash profiles fp32 vs fp16 vs top-1% sparsification vs
// local SGD on both the NVLink machine and the NIC-bound pair.
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "cloud/builder.h"
#include "ddl/trainer.h"

namespace {

using namespace stash;

double iteration_seconds(const std::string& instance_name, int count,
                         const dnn::Model& model, ddl::CommReductionConfig red) {
  sim::Simulator sim;
  hw::FlowNetwork net(sim);
  hw::Cluster cluster(net, sim,
                      cloud::cluster_configs_for(cloud::instance(instance_name), count),
                      cloud::fabric_bandwidth());
  ddl::TrainConfig cfg;
  cfg.per_gpu_batch = 32;
  cfg.iterations = 10;
  cfg.warmup_iterations = 2;
  cfg.comm_reduction = red;
  ddl::Trainer trainer(sim, net, cluster, model, dnn::dataset_for(model.name()), cfg);
  return trainer.run().per_iteration;
}

}  // namespace

int main() {
  bench::print_header(
      "Extension E1 — communication-reduction efficacy, measured by Stash",
      "§III: comm-reduction algorithms lacked a profiler to measure real "
      "efficacy; sparsification all but removes network stalls, local SGD "
      "amortizes them, fp16 halves the wire volume.");

  struct Method {
    const char* label;
    ddl::CommReductionConfig cfg;
  };
  std::vector<Method> methods{
      {"fp32 all-reduce", {}},
      {"fp16 gradients", {ddl::CommReduction::kFp16}},
      {"top-1% sparsification", {ddl::CommReduction::kTopK, 0.01}},
      {"local SGD (H=4)", {ddl::CommReduction::kLocalSgd, 0.01, 4}},
  };
  std::vector<std::string> models{"resnet50", "vgg11"};

  util::Table t({"model", "method", "p3.16xlarge iter (ms)", "vs fp32 %",
                 "p3.8xlarge*2 iter (ms)", "vs fp32 %"});
  for (const auto& model_name : models) {
    dnn::Model model = dnn::make_zoo_model(model_name);
    double base_nv = 0.0, base_nw = 0.0;
    for (const auto& m : methods) {
      double nv = iteration_seconds("p3.16xlarge", 1, model, m.cfg);
      double nw = iteration_seconds("p3.8xlarge", 2, model, m.cfg);
      if (m.cfg.kind == ddl::CommReduction::kNone) {
        base_nv = nv;
        base_nw = nw;
      }
      t.row()
          .cell(model_name)
          .cell(m.label)
          .cell(nv * 1e3, 1)
          .cell((base_nv - nv) / base_nv * 100.0, 1)
          .cell(nw * 1e3, 1)
          .cell((base_nw - nw) / base_nw * 100.0, 1);
    }
  }
  t.print(std::cout);
  return 0;
}
