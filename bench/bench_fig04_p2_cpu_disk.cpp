// Figure 4: CPU (prep) and disk (fetch) stall % of total training time on
// the P2 family, small models, batch sizes 32 and 128.
#include <iostream>
#include <map>
#include <memory>
#include <vector>

#include "bench/bench_common.h"

int main() {
  using namespace stash;
  using profiler::ClusterSpec;

  std::vector<ClusterSpec> configs{ClusterSpec{"p2.xlarge"}, ClusterSpec{"p2.8xlarge"},
                                   ClusterSpec{"p2.8xlarge", 2},
                                   ClusterSpec{"p2.16xlarge"}};
  std::vector<std::string> models = dnn::small_vision_models();
  std::vector<int> batches{32, 128};
  if (bench::fast_mode()) {
    models = {"alexnet", "resnet18"};
    batches = {32};
  }

  // One runner per model over the shared SimCache: T2/T3/T4 feed both
  // tables. Prefetch fans the full grid across the bench pool up front so
  // the table loops below are pure cache hits.
  std::map<std::string, std::unique_ptr<bench::StepRunner>> runners;
  for (const auto& m : models) runners.emplace(m, std::make_unique<bench::StepRunner>(m));
  for (auto& [m, runner] : runners) {
    std::vector<bench::StepRunner::Point> grid;
    for (const auto& c : configs)
      for (int b : batches)
        for (auto step : {profiler::Step::kAllGpuSynthetic, profiler::Step::kRealCold,
                          profiler::Step::kRealWarm})
          grid.push_back({c, step, b});
    runner->prefetch(grid);
  }

  std::vector<std::string> headers{"batch", "model"};
  for (const auto& c : configs) headers.push_back(c.label());

  bench::print_header("Figure 4(a) — CPU stall % of training time, P2, small models",
                      "CPU stalls are negligible: AWS vCPUs are sufficient for "
                      "pre-processing (unlike the private cluster of DS-Analyzer).");
  {
    util::Table t(headers);
    for (int batch : batches)
      for (const auto& model : models) {
        t.row().cell(batch).cell(model);
        for (const auto& c : configs)
          t.cell(bench::cell_or_blank(runners.at(model)->prep_stall_pct(c, batch)));
      }
    t.print(std::cout);
  }

  bench::print_header("Figure 4(b) — disk stall % of training time, P2, small models",
                      "disk stall scales with #GPUs per instance: 16 loader workers "
                      "contend on one SSD, so the 16xlarge fares worst.");
  {
    util::Table t(headers);
    for (int batch : batches)
      for (const auto& model : models) {
        t.row().cell(batch).cell(model);
        for (const auto& c : configs)
          t.cell(bench::cell_or_blank(runners.at(model)->fetch_stall_pct(c, batch)));
      }
    t.print(std::cout);
  }
  return 0;
}
