// Figure 5: interconnect stall % for small models on multi-GPU P2 and P3
// instances. I/C stall % = (T2 - T1) / T1 * 100.
#include <iostream>
#include <map>
#include <memory>
#include <vector>

#include "bench/bench_common.h"

namespace {

void run_family(const std::string& title, const std::string& claim,
                const std::vector<stash::profiler::ClusterSpec>& configs,
                const std::vector<std::string>& models,
                const std::vector<int>& batches) {
  using namespace stash;
  bench::print_header(title, claim);

  std::map<std::string, std::unique_ptr<bench::StepRunner>> runners;
  for (const auto& m : models) runners.emplace(m, std::make_unique<bench::StepRunner>(m));
  // Fan the whole T1/T2 grid across the bench pool before rendering.
  for (auto& [m, runner] : runners) {
    std::vector<bench::StepRunner::Point> grid;
    for (const auto& c : configs)
      for (int b : batches)
        for (auto step : {profiler::Step::kSingleGpuSynthetic,
                          profiler::Step::kAllGpuSynthetic})
          grid.push_back({c, step, b});
    runner->prefetch(grid);
  }

  std::vector<std::string> headers{"batch", "model"};
  for (const auto& c : configs) headers.push_back(c.label());
  util::Table t(headers);
  for (int batch : batches)
    for (const auto& model : models) {
      t.row().cell(batch).cell(model);
      for (const auto& c : configs)
        t.cell(bench::cell_or_blank(runners.at(model)->ic_stall_pct(c, batch)));
    }
  t.print(std::cout);
}

}  // namespace

int main() {
  using namespace stash;
  using profiler::ClusterSpec;

  std::vector<std::string> models = dnn::small_vision_models();
  std::vector<int> p2_batches{32, 128};
  std::vector<int> p3_batches{32, 128};
  if (bench::fast_mode()) {
    models = {"alexnet", "resnet18"};
    p2_batches = {32};
    p3_batches = {32};
  }

  run_family("Figure 5(a) — I/C stall % of single-GPU time, small models, P2",
             "p2.16xlarge has the worst stalls due to PCIe contention "
             "(communication overheads up to ~90% of training time).",
             {ClusterSpec{"p2.8xlarge"}, ClusterSpec{"p2.8xlarge", 2},
              ClusterSpec{"p2.16xlarge"}},
             models, p2_batches);

  run_family("Figure 5(b) — I/C stall % of single-GPU time, small models, P3",
             "p3.8xlarge suffers from sub-optimal (fragmented) crossbar "
             "allocation and is not strictly better than the 16xlarge, "
             "especially at small batch sizes.",
             {ClusterSpec{"p3.8xlarge"}, ClusterSpec{"p3.8xlarge", 2},
              ClusterSpec{"p3.16xlarge"}},
             models, p3_batches);
  return 0;
}
