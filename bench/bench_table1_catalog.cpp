// Table I: AWS GPU instance types with prices (N. Virginia).
#include <iostream>

#include "bench/bench_common.h"
#include "cloud/instance.h"
#include "util/units.h"

int main() {
  using namespace stash;
  bench::print_header("Table I — AWS GPU instance types with prices (N. Virginia)",
                      "P4: 8xA100 NVSwitch; P3: V100 PCIe/NVLink; P2: K80 PCIe.");

  util::Table t({"instance", "family", "GPUs", "GPU", "vCPUs", "interconnect",
                 "GPU mem (GB)", "main mem (GB)", "network (Gbps)", "price/hr ($)"});
  for (const auto& i : cloud::instance_catalog()) {
    const char* ic = i.interconnect == hw::InterconnectKind::kPcieOnly ? "PCIe"
                     : i.interconnect == hw::InterconnectKind::kPcieNvlink
                         ? "PCIe + NVLink"
                         : "NVSwitch";
    t.row()
        .cell(i.name)
        .cell(i.family)
        .cell(i.num_gpus)
        .cell(i.gpu.name)
        .cell(i.vcpus)
        .cell(ic)
        .cell(util::to_gib(i.gpu_memory_total), 0)
        .cell(util::to_gib(i.main_memory), 0)
        .cell(util::to_gbps(i.network_bw), 0)
        .cell(i.price_per_hour, 4);
  }
  t.print(std::cout);
  return 0;
}
