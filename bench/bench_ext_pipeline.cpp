// Extension E5: pipeline parallelism (the paper's declared future work).
//
// GPipe-style pipeline vs synchronous data parallelism for BERT-large:
// (a) bubble fraction vs micro-batch count against the analytic
//     (S-1)/(M+S-1) law;
// (b) per-iteration time, pipeline vs DDP, on the NVLink machine and the
//     NIC-bound pair — the pipeline ships activation tensors across the
//     wire instead of 1.3 GB of gradients.
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "cloud/builder.h"
#include "ddl/pipeline.h"
#include "ddl/trainer.h"
#include "dnn/bert.h"

namespace {

using namespace stash;

ddl::PipelineResult run_pipeline(const std::string& instance_name, int count,
                                 const dnn::Model& model, int micros, int mini,
                                 int replicas = 1) {
  sim::Simulator sim;
  hw::FlowNetwork net(sim);
  hw::Cluster cluster(net, sim,
                      cloud::cluster_configs_for(cloud::instance(instance_name), count),
                      cloud::fabric_bandwidth());
  ddl::PipelineConfig cfg;
  cfg.micro_batches = micros;
  cfg.mini_batch = mini;
  cfg.iterations = 5;
  cfg.warmup_iterations = 1;
  cfg.replicas = replicas;
  ddl::PipelineTrainer trainer(sim, net, cluster, model, cfg);
  return trainer.run();
}

double run_ddp(const std::string& instance_name, int count, const dnn::Model& model,
               int per_gpu_batch) {
  sim::Simulator sim;
  hw::FlowNetwork net(sim);
  hw::Cluster cluster(net, sim,
                      cloud::cluster_configs_for(cloud::instance(instance_name), count),
                      cloud::fabric_bandwidth());
  ddl::TrainConfig cfg;
  cfg.per_gpu_batch = per_gpu_batch;
  cfg.iterations = 5;
  cfg.warmup_iterations = 1;
  ddl::Trainer trainer(sim, net, cluster, model, dnn::dataset_for(model.name()), cfg);
  return trainer.run().per_iteration;
}

}  // namespace

int main() {
  dnn::Model bert = dnn::make_bert_large();

  bench::print_header(
      "Extension E5(a) — GPipe bubble vs micro-batches, BERT-large on p3.16xlarge",
      "measured bubble should track (S-1)/(M+S-1) for 8 balanced stages.");
  {
    util::Table t({"micro-batches", "iteration (ms)", "measured bubble %",
                   "analytic bubble %"});
    for (int m : {1, 2, 4, 8, 16, 32}) {
      auto r = run_pipeline("p3.16xlarge", 1, bert, m, 32);
      t.row()
          .cell(m)
          .cell(r.per_iteration * 1e3, 1)
          .cell(r.bubble_fraction * 100.0, 1)
          .cell(ddl::gpipe_bubble_fraction(static_cast<int>(r.stages), m) * 100.0, 1);
    }
    t.print(std::cout);
  }

  bench::print_header(
      "Extension E5(b) — pipeline vs data parallelism, BERT-large, mini-batch 32",
      "across a 10 Gbps NIC the pipeline wins: activations, not 1.3 GB of "
      "gradients, cross the wire.");
  {
    util::Table t({"cluster", "DDP iter (ms)", "pipeline iter (ms)",
                   "pipeline advantage %"});
    struct Case {
      const char* name;
      int count;
    };
    for (const Case& c : {Case{"p3.16xlarge", 1}, Case{"p3.8xlarge", 2}}) {
      double ddp = run_ddp(c.name, c.count, bert, 4);  // 4 x 8 GPUs = 32
      auto pipe = run_pipeline(c.name, c.count, bert, 8, 32);
      std::string label = std::string(c.name) + (c.count > 1 ? "*2" : "");
      t.row()
          .cell(label)
          .cell(ddp * 1e3, 1)
          .cell(pipe.per_iteration * 1e3, 1)
          .cell((ddp - pipe.per_iteration) / ddp * 100.0, 1);
    }
    t.print(std::cout);
  }

  bench::print_header(
      "Extension E5(c) — hybrid (data x pipeline) parallelism, BERT-large on "
      "p3.16xlarge",
      "replicas split the 8 GPUs into parallel pipelines; per-sample "
      "throughput trades bubble against stage-gradient all-reduce.");
  {
    util::Table t({"layout", "stages", "samples/iter", "iteration (ms)",
                   "throughput (samples/s)"});
    for (int replicas : {1, 2, 4}) {
      auto r = run_pipeline("p3.16xlarge", 1, bert, 8, 32, replicas);
      double samples = 32.0 * replicas;
      t.row()
          .cell(std::to_string(replicas) + "x" + std::to_string(r.stages) +
                "-stage")
          .cell(r.stages)
          .cell(samples, 0)
          .cell(r.per_iteration * 1e3, 1)
          .cell(samples / r.per_iteration, 1);
    }
    t.print(std::cout);
  }
  return 0;
}
