// Ablation A2: collective strategy comparison — ring all-reduce vs the
// parameter-server baseline (the paper's §IV rationale: PS is strictly
// worse) plus tree and hierarchical all-reduce as extensions.
#include <iostream>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "cloud/builder.h"
#include "coll/baselines.h"
#include "util/units.h"
#include "coll/ring_allreduce.h"
#include "sim/simulator.h"

namespace {

using namespace stash;

// Time one collective exchange of `bytes` on a fresh cluster.
template <typename MakeOp>
double run_collective(const std::string& instance_name, int count, MakeOp&& make_op) {
  sim::Simulator sim;
  hw::FlowNetwork net(sim);
  hw::Cluster cluster(net, sim,
                      cloud::cluster_configs_for(cloud::instance(instance_name), count),
                      cloud::fabric_bandwidth());
  coll::CollectiveContext ctx{sim, net, cluster, coll::CollectiveConfig{}};
  double done = -1;
  auto proc = [&]() -> sim::Task<void> {
    co_await make_op(ctx);
    done = sim.now();
  };
  sim.spawn(proc());
  sim.run();
  return done;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation A2 — gradient exchange strategies (time per 100 MiB exchange, ms)",
      "parameter-server performance is strictly less than all-reduce (§IV); "
      "hierarchical all-reduce helps across slow networks.");

  const double bytes = util::mib(100);
  struct Config {
    const char* name;
    int count;
  };
  std::vector<Config> configs{{"p2.8xlarge", 1}, {"p3.16xlarge", 1}, {"p3.8xlarge", 2},
                              {"p3.16xlarge", 2}};

  util::Table t({"cluster", "ring all-reduce", "tree all-reduce", "parameter server",
                 "hierarchical"});
  for (const auto& c : configs) {
    double ring = run_collective(c.name, c.count, [&](coll::CollectiveContext& ctx) {
      return coll::ring_allreduce(ctx, bytes);
    });
    double tree = run_collective(c.name, c.count, [&](coll::CollectiveContext& ctx) {
      return coll::tree_allreduce(ctx, bytes);
    });
    double ps = run_collective(c.name, c.count, [&](coll::CollectiveContext& ctx) {
      auto server = coll::PsServer::create(ctx.net);
      return coll::parameter_server_exchange(ctx, server, bytes);
    });
    double hier = run_collective(c.name, c.count, [&](coll::CollectiveContext& ctx) {
      return coll::hierarchical_allreduce(ctx, bytes);
    });
    std::string label = std::string(c.name) + (c.count > 1 ? "*2" : "");
    t.row()
        .cell(label)
        .cell(ring * 1e3, 2)
        .cell(tree * 1e3, 2)
        .cell(ps * 1e3, 2)
        .cell(hier * 1e3, 2);
  }
  t.print(std::cout);
  return 0;
}
