// Shared harness for the paper-reproduction benches.
//
// Each bench binary regenerates one table or figure: it runs the Stash
// profiler steps it needs on the simulated hardware and prints the same
// rows/series the paper reports, with the paper's qualitative claim quoted
// in the header so the output is self-checking by eye. EXPERIMENTS.md
// records paper-vs-measured for every artifact.
#pragma once

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <tuple>

#include "dnn/zoo.h"
#include "stash/profiler.h"
#include "util/table.h"

namespace stash::bench {

inline profiler::ProfileOptions bench_profile_options() {
  profiler::ProfileOptions opt;
  opt.iterations = 4;
  opt.warmup_iterations = 1;
  return opt;
}

// STASH_BENCH_FAST=1 trims sweeps for smoke runs.
inline bool fast_mode() {
  const char* env = std::getenv("STASH_BENCH_FAST");
  return env != nullptr && std::string(env) != "0";
}

inline void print_header(const std::string& artifact, const std::string& claim) {
  std::cout << "\n=== " << artifact << " ===\n";
  if (!claim.empty()) std::cout << "paper: " << claim << "\n";
}

inline double pct(double num, double den) {
  return den > 0.0 ? std::max(0.0, num / den * 100.0) : 0.0;
}

// Memoizing step runner: benches often need the same step time in several
// tables (e.g. T2 feeds both the CPU-stall and the I/C-stall columns).
class StepRunner {
 public:
  explicit StepRunner(std::string model_name)
      : model_(dnn::make_zoo_model(model_name)),
        profiler_(model_, dnn::dataset_for(model_name), bench_profile_options()) {}

  StepRunner(dnn::Model model, dnn::Dataset dataset)
      : model_(std::move(model)), profiler_(model_, std::move(dataset),
                                            bench_profile_options()) {}

  const dnn::Model& model() const { return model_; }
  const profiler::StashProfiler& profiler() const { return profiler_; }

  // Per-iteration time of one profiler step; NaN if the configuration
  // cannot run it (batch does not fit / no network split).
  double time(const profiler::ClusterSpec& spec, profiler::Step step, int batch) {
    auto key = std::make_tuple(spec.label(), static_cast<int>(step), batch);
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
    double t = std::nan("");
    try {
      if (step == profiler::Step::kNetworkSynthetic && spec.count == 1) {
        if (auto split = profiler::network_split(spec))
          t = profiler_.run_step(*split, step, batch).per_iteration;
      } else {
        t = profiler_.run_step(spec, step, batch).per_iteration;
      }
    } catch (const ddl::ModelDoesNotFit&) {
      // leave NaN: the paper simply has no bar for this combination
    }
    cache_.emplace(key, t);
    return t;
  }

  double ic_stall_pct(const profiler::ClusterSpec& spec, int batch) {
    double t1 = time(spec, profiler::Step::kSingleGpuSynthetic, batch);
    double t2 = time(spec, profiler::Step::kAllGpuSynthetic, batch);
    return pct(t2 - t1, t1);
  }
  double nw_stall_pct(const profiler::ClusterSpec& spec, int batch) {
    double t2 = time(spec, profiler::Step::kAllGpuSynthetic, batch);
    double t5 = time(spec, profiler::Step::kNetworkSynthetic, batch);
    if (std::isnan(t5)) return std::nan("");
    return pct(t5 - t2, t2);
  }
  double prep_stall_pct(const profiler::ClusterSpec& spec, int batch) {
    double t2 = time(spec, profiler::Step::kAllGpuSynthetic, batch);
    double t4 = time(spec, profiler::Step::kRealWarm, batch);
    return pct(t4 - t2, t4);
  }
  double fetch_stall_pct(const profiler::ClusterSpec& spec, int batch) {
    double t3 = time(spec, profiler::Step::kRealCold, batch);
    double t4 = time(spec, profiler::Step::kRealWarm, batch);
    return pct(t3 - t4, t3);
  }

  // Steady-state epoch time/cost from the warm-cache step.
  double epoch_seconds(const profiler::ClusterSpec& spec, int batch) {
    double t4 = time(spec, profiler::Step::kRealWarm, batch);
    if (std::isnan(t4)) return std::nan("");
    double samples = profiler_.dataset().num_samples;
    return t4 * samples / (static_cast<double>(batch) * spec.gpus_used());
  }
  double epoch_cost_usd(const profiler::ClusterSpec& spec, int batch) {
    double secs = epoch_seconds(spec, batch);
    if (std::isnan(secs)) return std::nan("");
    return cloud::cost_usd(cloud::instance(spec.instance), secs, spec.count);
  }

 private:
  dnn::Model model_;
  profiler::StashProfiler profiler_;
  std::map<std::tuple<std::string, int, int>, double> cache_;
};

// Formats possibly-NaN cells the way the paper leaves absent bars blank.
inline std::string cell_or_blank(double v, int precision = 1) {
  return std::isnan(v) ? "-" : util::format_double(v, precision);
}

}  // namespace stash::bench
