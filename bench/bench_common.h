// Shared harness for the paper-reproduction benches.
//
// Each bench binary regenerates one table or figure: it runs the Stash
// profiler steps it needs on the simulated hardware and prints the same
// rows/series the paper reports, with the paper's qualitative claim quoted
// in the header so the output is self-checking by eye. EXPERIMENTS.md
// records paper-vs-measured for every artifact.
//
// Execution: every StepRunner shares one process-wide exec::ExecContext —
// a thread pool sized by STASH_BENCH_JOBS (default: all cores) plus the
// process-wide SimCache — so a step time that several tables need (T2
// feeds both the CPU-stall and the I/C-stall columns) simulates exactly
// once, and prefetch() can fan a whole figure grid across the pool before
// the table is rendered. Output is identical for any jobs value: tables
// read results by key, never by completion order.
#pragma once

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>
#include <tuple>
#include <vector>

#include "dnn/zoo.h"
#include "exec/exec_context.h"
#include "stash/profiler.h"
#include "util/table.h"

namespace stash::bench {

// Concurrent simulations for bench sweeps: STASH_BENCH_JOBS, defaulting to
// the machine's core count (jobs never change results, only wall time).
inline int bench_jobs() {
  const char* env = std::getenv("STASH_BENCH_JOBS");
  if (env != nullptr && *env != '\0') {
    int v = std::atoi(env);
    if (v >= 1) return v;
  }
  return exec::default_jobs();
}

// The process-wide execution context every bench harness object shares.
inline exec::ExecContext& bench_exec() {
  static exec::ExecContext ctx(bench_jobs());
  return ctx;
}

inline profiler::ProfileOptions bench_profile_options() {
  profiler::ProfileOptions opt;
  opt.iterations = 4;
  opt.warmup_iterations = 1;
  opt.exec = &bench_exec();
  return opt;
}

// STASH_BENCH_FAST=1 trims sweeps for smoke runs. Unset, "0", "false",
// "off" and "no" (any case) disable it; anything else enables it.
inline bool fast_mode() {
  const char* env = std::getenv("STASH_BENCH_FAST");
  if (env == nullptr) return false;
  std::string v(env);
  for (char& c : v) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return v != "0" && v != "false" && v != "off" && v != "no";
}

inline void print_header(const std::string& artifact, const std::string& claim) {
  std::cout << "\n=== " << artifact << " ===\n";
  if (!claim.empty()) std::cout << "paper: " << claim << "\n";
}

inline double pct(double num, double den) {
  return den > 0.0 ? std::max(0.0, num / den * 100.0) : 0.0;
}

// Step runner over the shared SimCache: benches often need the same step
// time in several tables, and several benches need the same step time as
// each other — the memo lives in exec::process_cache(), not here.
class StepRunner {
 public:
  // One grid point of a sweep, for prefetch().
  struct Point {
    profiler::ClusterSpec spec;
    profiler::Step step;
    int batch;
  };

  explicit StepRunner(std::string model_name)
      : model_(dnn::make_zoo_model(model_name)),
        profiler_(model_, dnn::dataset_for(model_name), bench_profile_options()) {}

  StepRunner(dnn::Model model, dnn::Dataset dataset)
      : model_(std::move(model)), profiler_(model_, std::move(dataset),
                                            bench_profile_options()) {}

  const dnn::Model& model() const { return model_; }
  const profiler::StashProfiler& profiler() const { return profiler_; }

  // Runs (or cache-fills) every grid point across the shared pool. Tables
  // rendered afterwards hit the cache and print in their own order, so a
  // bench's output never depends on the jobs count.
  void prefetch(const std::vector<Point>& points) {
    exec::parallel_for(bench_exec().pool(), points.size(),
                       [&](std::size_t i) { time(points[i].spec, points[i].step,
                                                 points[i].batch); });
  }

  // Every (config, step) pair of the five-step methodology at each batch —
  // what a full stall-decomposition figure needs.
  void prefetch_profile_grid(const std::vector<profiler::ClusterSpec>& specs,
                             const std::vector<int>& batches) {
    std::vector<Point> pts;
    for (const auto& s : specs)
      for (int b : batches)
        for (profiler::Step st :
             {profiler::Step::kSingleGpuSynthetic, profiler::Step::kAllGpuSynthetic,
              profiler::Step::kRealCold, profiler::Step::kRealWarm,
              profiler::Step::kNetworkSynthetic})
          pts.push_back(Point{s, st, b});
    prefetch(pts);
  }

  // Per-iteration time of one profiler step; NaN if the configuration
  // cannot run it (batch does not fit / no network split). Memoized in the
  // process-wide SimCache (failures too: deterministic scenarios fail
  // deterministically).
  double time(const profiler::ClusterSpec& spec, profiler::Step step, int batch) {
    try {
      if (step == profiler::Step::kNetworkSynthetic && spec.count == 1) {
        if (auto split = profiler::network_split(spec))
          return profiler_.run_step(*split, step, batch).per_iteration;
        return std::nan("");
      }
      return profiler_.run_step(spec, step, batch).per_iteration;
    } catch (const ddl::ModelDoesNotFit&) {
      // leave NaN: the paper simply has no bar for this combination
      return std::nan("");
    }
  }

  double ic_stall_pct(const profiler::ClusterSpec& spec, int batch) {
    double t1 = time(spec, profiler::Step::kSingleGpuSynthetic, batch);
    double t2 = time(spec, profiler::Step::kAllGpuSynthetic, batch);
    return pct(t2 - t1, t1);
  }
  double nw_stall_pct(const profiler::ClusterSpec& spec, int batch) {
    double t2 = time(spec, profiler::Step::kAllGpuSynthetic, batch);
    double t5 = time(spec, profiler::Step::kNetworkSynthetic, batch);
    if (std::isnan(t5)) return std::nan("");
    return pct(t5 - t2, t2);
  }
  double prep_stall_pct(const profiler::ClusterSpec& spec, int batch) {
    double t2 = time(spec, profiler::Step::kAllGpuSynthetic, batch);
    double t4 = time(spec, profiler::Step::kRealWarm, batch);
    return pct(t4 - t2, t4);
  }
  double fetch_stall_pct(const profiler::ClusterSpec& spec, int batch) {
    double t3 = time(spec, profiler::Step::kRealCold, batch);
    double t4 = time(spec, profiler::Step::kRealWarm, batch);
    return pct(t3 - t4, t3);
  }

  // Steady-state epoch time/cost from the warm-cache step.
  double epoch_seconds(const profiler::ClusterSpec& spec, int batch) {
    double t4 = time(spec, profiler::Step::kRealWarm, batch);
    if (std::isnan(t4)) return std::nan("");
    double samples = profiler_.dataset().num_samples;
    return t4 * samples / (static_cast<double>(batch) * spec.gpus_used());
  }
  double epoch_cost_usd(const profiler::ClusterSpec& spec, int batch) {
    double secs = epoch_seconds(spec, batch);
    if (std::isnan(secs)) return std::nan("");
    return cloud::cost_usd(cloud::instance(spec.instance), secs, spec.count);
  }

 private:
  dnn::Model model_;
  profiler::StashProfiler profiler_;
};

// Formats possibly-NaN cells the way the paper leaves absent bars blank.
inline std::string cell_or_blank(double v, int precision = 1) {
  return std::isnan(v) ? "-" : util::format_double(v, precision);
}

}  // namespace stash::bench
