// Figure 8: CPU and disk stall % on P3, small models.
#include <iostream>
#include <map>
#include <memory>
#include <vector>

#include "bench/bench_common.h"

int main() {
  using namespace stash;
  using profiler::ClusterSpec;

  std::vector<ClusterSpec> configs{ClusterSpec{"p3.2xlarge"}, ClusterSpec{"p3.8xlarge"},
                                   ClusterSpec{"p3.8xlarge", 2},
                                   ClusterSpec{"p3.16xlarge"}};
  std::vector<std::string> models = dnn::small_vision_models();
  std::vector<int> batches{32, 128};
  if (bench::fast_mode()) {
    models = {"alexnet", "resnet18"};
    batches = {32};
  }

  std::map<std::string, std::unique_ptr<bench::StepRunner>> runners;
  for (const auto& m : models) runners.emplace(m, std::make_unique<bench::StepRunner>(m));

  std::vector<std::string> headers{"batch", "model"};
  for (const auto& c : configs) headers.push_back(c.label());

  bench::print_header("Figure 8(a) — CPU stall % of training time, P3, small models",
                      "CPU stall is negligible.");
  {
    util::Table t(headers);
    for (int batch : batches)
      for (const auto& model : models) {
        t.row().cell(batch).cell(model);
        for (const auto& c : configs)
          t.cell(bench::cell_or_blank(runners.at(model)->prep_stall_pct(c, batch)));
      }
    t.print(std::cout);
  }

  bench::print_header("Figure 8(b) — disk stall % of training time, P3, small models",
                      "disk stall highest for the 16xlarge (eight fast V100 "
                      "pipelines against one SSD).");
  {
    util::Table t(headers);
    for (int batch : batches)
      for (const auto& model : models) {
        t.row().cell(batch).cell(model);
        for (const auto& c : configs)
          t.cell(bench::cell_or_blank(runners.at(model)->fetch_stall_pct(c, batch)));
      }
    t.print(std::cout);
  }
  return 0;
}
