// Table II: DDL models used — generator parameter counts vs the paper's
// reported gradient sizes, plus the dataset bindings.
#include <iostream>

#include "bench/bench_common.h"
#include "dnn/zoo.h"
#include "util/units.h"

int main() {
  using namespace stash;
  bench::print_header("Table II — DDL models used",
                      "gradient sizes 0.73M (squeezenet) to 345M (bert-large); "
                      "ImageNet-1k 133 GB, SQuAD 2.0 45 MB.");

  util::Table t({"model", "domain/type", "paper grads (M)", "built grads (M)",
                 "drift %", "param tensors", "fwd GFLOPs/sample", "dataset"});
  struct Row {
    const char* name;
    const char* klass;
  };
  for (const Row& r : {Row{"alexnet", "vision/small"}, Row{"mobilenet-v2", "vision/small"},
                       Row{"squeezenet", "vision/small"}, Row{"shufflenet", "vision/small"},
                       Row{"resnet18", "vision/small"}, Row{"resnet50", "vision/large"},
                       Row{"vgg11", "vision/large"}, Row{"bert-large", "nlp"}}) {
    dnn::Model m = dnn::make_zoo_model(r.name);
    double paper = dnn::paper_gradient_millions(r.name);
    double built = m.total_params() / 1e6;
    dnn::Dataset d = dnn::dataset_for(r.name);
    t.row()
        .cell(r.name)
        .cell(r.klass)
        .cell(paper, 2)
        .cell(built, 2)
        .cell((built - paper) / paper * 100.0, 1)
        .cell(m.num_param_tensors())
        .cell(m.fwd_flops_per_sample() / 1e9, 2)
        .cell(d.name + " (" + util::format_double(d.total_bytes / 1e9, 1) + " GB)");
  }
  t.print(std::cout);
  return 0;
}
