// Ablation A1: the §VI closed-form stall model vs the discrete-event
// simulation, across the latency-bound (NVLink) and bandwidth-bound (NIC)
// regimes. The analytic model should track the simulated shape.
#include <iostream>
#include <vector>

#include "analysis/analytic_model.h"
#include "bench/bench_common.h"
#include "dnn/resnet.h"
#include "dnn/vgg.h"

int main() {
  using namespace stash;
  using profiler::ClusterSpec;

  bench::print_header(
      "Ablation A1 — analytic (tau*L + G/B) vs simulated communication stalls",
      "T ~ tau*L on fast links (depth hurts), T ~ G/B on slow links "
      "(gradient volume hurts).");

  coll::CollectiveConfig coll_cfg;  // same constants the trainer uses
  const int batch = 32;

  struct Case {
    std::string label;
    dnn::Model model;
  };
  std::vector<Case> cases;
  for (int d : {18, 50, 152}) cases.push_back({"resnet" + std::to_string(d),
                                               dnn::make_resnet(d)});
  for (int d : {11, 19}) cases.push_back({"vgg" + std::to_string(d), dnn::make_vgg(d)});

  util::Table t({"model", "regime on NVLink", "I/C sim %", "I/C analytic %",
                 "regime on NIC", "N/W-config sim %", "N/W-config analytic %"});
  ClusterSpec nvlink{"p3.16xlarge"};
  ClusterSpec network{"p3.8xlarge", 2};
  for (auto& c : cases) {
    bench::StepRunner runner(c.model, dnn::imagenet_1k());
    double t1 = runner.time(nvlink, profiler::Step::kSingleGpuSynthetic, batch);
    double t2 = runner.time(nvlink, profiler::Step::kAllGpuSynthetic, batch);
    double t5 = runner.time(nvlink, profiler::Step::kNetworkSynthetic, batch);

    double sim_ic = bench::pct(t2 - t1, t1);
    double sim_nw_cfg = bench::pct(t5 - t1, t1);  // total comm stall of the pair
    double ana_ic =
        analysis::predict_comm_stall_pct(c.model, nvlink, batch, coll_cfg);
    double ana_nw =
        analysis::predict_comm_stall_pct(c.model, network, batch, coll_cfg);

    auto regime = [&](const ClusterSpec& spec) {
      analysis::TransferModel m{coll_cfg.launch_blocking_latency,
                                analysis::ring_bottleneck_bw(spec)};
      return analysis::regime_name(analysis::classify_regime(
          c.model.gradient_bytes(), static_cast<int>(c.model.num_param_tensors()), m));
    };

    t.row()
        .cell(c.label)
        .cell(regime(nvlink))
        .cell(sim_ic, 1)
        .cell(ana_ic, 1)
        .cell(regime(network))
        .cell(bench::cell_or_blank(sim_nw_cfg))
        .cell(ana_nw, 1);
  }
  t.print(std::cout);
  return 0;
}
