// Figure 12: training time and cost per epoch on P3, large models + BERT,
// including the §V-B BERT-on-24xlarge batch-doubling experiment (X2).
#include <iostream>
#include <map>
#include <memory>
#include <vector>

#include "bench/bench_common.h"

int main() {
  using namespace stash;
  using profiler::ClusterSpec;

  std::vector<ClusterSpec> configs{ClusterSpec{"p3.2xlarge"}, ClusterSpec{"p3.8xlarge"},
                                   ClusterSpec{"p3.8xlarge", 2},
                                   ClusterSpec{"p3.16xlarge"},
                                   ClusterSpec{"p3.24xlarge"}};
  struct Workload {
    std::string model;
    int batch;
  };
  std::vector<Workload> workloads{{"resnet50", 16}, {"vgg11", 16}, {"resnet50", 64},
                                  {"vgg11", 64},    {"bert-large", 4}};
  if (bench::fast_mode()) workloads = {{"resnet50", 16}, {"bert-large", 4}};

  std::map<std::string, std::unique_ptr<bench::StepRunner>> runners;
  auto runner = [&](const std::string& m) -> bench::StepRunner& {
    if (!runners.contains(m)) runners.emplace(m, std::make_unique<bench::StepRunner>(m));
    return *runners.at(m);
  };

  std::vector<std::string> headers{"batch", "model"};
  for (const auto& c : configs) headers.push_back(c.label());

  bench::print_header("Figure 12(a) — training time per epoch (s), P3, large models",
                      "16xlarge and 24xlarge are equally performant (same NVLink); "
                      "network pairs are the slowest.");
  {
    util::Table t(headers);
    for (const auto& w : workloads) {
      t.row().cell(w.batch).cell(w.model);
      for (const auto& c : configs)
        t.cell(bench::cell_or_blank(runner(w.model).epoch_seconds(c, w.batch), 0));
    }
    t.print(std::cout);
  }

  bench::print_header("Figure 12(b) — training cost per epoch ($), P3, large models",
                      "the 24xlarge is the least cost-optimal in most experiments.");
  {
    util::Table t(headers);
    for (const auto& w : workloads) {
      t.row().cell(w.batch).cell(w.model);
      for (const auto& c : configs)
        t.cell(bench::cell_or_blank(runner(w.model).epoch_cost_usd(c, w.batch), 2));
    }
    t.print(std::cout);
  }

  // §V-B (X2): BERT on the 24xlarge with its 32 GiB GPUs can double the
  // batch to 8 — the paper measures ~12.8% faster but more expensive
  // ($2.37 vs $2.10 on the 16xlarge at batch 4).
  bench::print_header("§V-B — BERT batch doubling on p3.24xlarge (X2)",
                      "doubling the batch improved training time ~12.8% but cost "
                      "$2.37/epoch vs $2.10 on the 16xlarge at batch 4.");
  {
    bench::StepRunner& r = runner("bert-large");
    double t16_b4 = r.epoch_seconds(ClusterSpec{"p3.16xlarge"}, 4);
    double c16_b4 = r.epoch_cost_usd(ClusterSpec{"p3.16xlarge"}, 4);
    double t24_b4 = r.epoch_seconds(ClusterSpec{"p3.24xlarge"}, 4);
    double t24_b8 = r.epoch_seconds(ClusterSpec{"p3.24xlarge"}, 8);
    double c24_b8 = r.epoch_cost_usd(ClusterSpec{"p3.24xlarge"}, 8);
    util::Table t({"config", "batch", "epoch time (s)", "epoch cost ($)",
                   "vs 24xlarge@4 (%)"});
    t.row().cell("p3.16xlarge").cell(4).cell(t16_b4, 0).cell(c16_b4, 2).cell("-");
    t.row().cell("p3.24xlarge").cell(4).cell(t24_b4, 0).cell(
        r.epoch_cost_usd(ClusterSpec{"p3.24xlarge"}, 4), 2).cell("0.0");
    t.row().cell("p3.24xlarge").cell(8).cell(t24_b8, 0).cell(c24_b8, 2).cell(
        (t24_b4 - t24_b8) / t24_b4 * 100.0, 1);
    t.print(std::cout);
  }
  return 0;
}
