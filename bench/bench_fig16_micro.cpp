// Figure 16: micro characterization — communication stalls vs model depth.
// ResNet {18,34,50,101,152} and VGG {11,13,16,19} plus the ResNet
// architecture ablations (no batch-norm, no residual projections), batch 32
// on p3.16xlarge (I/C) and its two-machine split (N/W).
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "dnn/resnet.h"
#include "dnn/vgg.h"

int main() {
  using namespace stash;
  using profiler::ClusterSpec;

  bench::print_header(
      "Figure 16 — I/C and N/W stall vs number of layers (batch 32, p3.16xlarge)",
      "both stalls grow with depth; VGG has LOW I/C stall but HIGH N/W stall "
      "while ResNet is the reverse (T ~ tau*L on NVLink, T ~ G/B on the NIC). "
      "Removing BN lowers the layer count and with it the stalls; removing "
      "residual projections barely changes anything.");

  struct Variant {
    std::string label;
    dnn::Model model;
  };
  std::vector<Variant> variants;
  std::vector<int> resnet_depths{18, 34, 50, 101, 152};
  std::vector<int> vgg_depths{11, 13, 16, 19};
  if (bench::fast_mode()) {
    resnet_depths = {18, 152};
    vgg_depths = {11, 19};
  }
  for (int d : resnet_depths) variants.push_back({"resnet" + std::to_string(d),
                                                  dnn::make_resnet(d)});
  for (int d : vgg_depths) variants.push_back({"vgg" + std::to_string(d),
                                               dnn::make_vgg(d)});
  variants.push_back({"resnet50-nobn",
                      dnn::make_resnet(50, dnn::ResNetOptions{.batch_norm = false})});
  variants.push_back({"resnet50-nores",
                      dnn::make_resnet(50, dnn::ResNetOptions{.residual = false})});

  const int batch = 32;
  ClusterSpec spec{"p3.16xlarge"};
  util::Table t({"model", "param tensors", "grads (MB)", "I/C stall (ms)",
                 "I/C stall %", "N/W stall (ms)", "N/W stall %"});
  for (auto& v : variants) {
    bench::StepRunner runner(v.model, dnn::imagenet_1k());
    double t1 = runner.time(spec, profiler::Step::kSingleGpuSynthetic, batch);
    double t2 = runner.time(spec, profiler::Step::kAllGpuSynthetic, batch);
    double t5 = runner.time(spec, profiler::Step::kNetworkSynthetic, batch);
    t.row()
        .cell(v.label)
        .cell(v.model.num_param_tensors())
        .cell(v.model.gradient_bytes() / 1e6, 1)
        .cell((t2 - t1) * 1e3, 1)  // the §VI text argues in stall *time*
        .cell(bench::pct(t2 - t1, t1), 1)
        .cell(bench::cell_or_blank((t5 - t2) * 1e3))
        .cell(bench::cell_or_blank(bench::pct(t5 - t2, t2)));
  }
  t.print(std::cout);
  return 0;
}
