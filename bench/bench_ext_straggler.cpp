// Extension E3: straggler amplification under synchronous data parallelism.
//
// Failure-injection study: one slow GPU paces every barrier, so a single
// degraded device taxes the whole machine. Complements the paper's
// homogeneous-hardware characterization with the QoS-failure angle.
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "cloud/builder.h"
#include "ddl/trainer.h"

namespace {

using namespace stash;

double iteration_seconds(const std::string& instance_name, const dnn::Model& model,
                         ddl::StragglerConfig straggler) {
  sim::Simulator sim;
  hw::FlowNetwork net(sim);
  hw::Cluster cluster(net, sim,
                      cloud::cluster_configs_for(cloud::instance(instance_name), 1),
                      cloud::fabric_bandwidth());
  ddl::TrainConfig cfg;
  cfg.per_gpu_batch = 32;
  cfg.iterations = 8;
  cfg.warmup_iterations = 2;
  cfg.straggler = straggler;
  ddl::Trainer trainer(sim, net, cluster, model, dnn::dataset_for(model.name()), cfg);
  return trainer.run().per_iteration;
}

}  // namespace

int main() {
  bench::print_header(
      "Extension E3 — straggler amplification on p3.16xlarge (8 GPUs)",
      "one slow GPU paces all eight through the synchronization barrier; "
      "the whole-machine slowdown approaches the straggler's own.");

  std::vector<double> slowdowns{1.0, 1.1, 1.25, 1.5, 2.0};
  std::vector<std::string> models{"resnet50", "vgg11"};

  util::Table t({"model", "straggler slowdown", "iteration (ms)",
                 "machine slowdown %", "efficiency lost %"});
  for (const auto& model_name : models) {
    dnn::Model model = dnn::make_zoo_model(model_name);
    double base = 0.0;
    for (double s : slowdowns) {
      ddl::StragglerConfig cfg;
      if (s > 1.0) {
        cfg.worker_index = 3;
        cfg.slowdown = s;
      }
      double ti = iteration_seconds("p3.16xlarge", model, cfg);
      if (s == 1.0) base = ti;
      t.row()
          .cell(model_name)
          .cell(s, 2)
          .cell(ti * 1e3, 1)
          .cell((ti - base) / base * 100.0, 1)
          .cell((1.0 - base / ti) * 100.0, 1);
    }
  }
  t.print(std::cout);
  return 0;
}
