// stash_serve — the profiling-as-a-service daemon (src/serve/server.h).
//
//   stash_serve --socket /tmp/stash.sock [--jobs 4] [--metrics-port 9464]
//   stash_serve --port 7457 --persist-dir /var/lib/stash/results
//               --cache-entries 4096 --cache-bytes 268435456
//
// Query it with `stash_cli query` (or any client speaking the 4-byte
// length-prefixed stash.serve_request/1 protocol). SIGINT/SIGTERM drain
// gracefully: in-flight requests finish and get their responses before the
// process exits.
#include <csignal>
#include <iostream>
#include <string>
#include <thread>

#include "exec/thread_pool.h"
#include "serve/server.h"
#include "util/args.h"

namespace {

int usage() {
  std::cout <<
      "usage: stash_serve [--socket PATH] [--port P] [options]\n"
      "  --socket PATH      listen on a Unix socket at PATH\n"
      "  --port P           listen on 127.0.0.1:P (0 = ephemeral; the bound\n"
      "                     port is printed on startup)\n"
      "  --metrics-port P   serve Prometheus text on 127.0.0.1:P\n"
      "  --jobs N           concurrent simulations per request (default: cores)\n"
      "  --max-inflight N   pure requests beyond N get status=overloaded\n"
      "                     (default 32, 0 = unlimited)\n"
      "  --cache-entries N  max completed scenarios kept in memory (0 = all)\n"
      "  --cache-bytes N    approximate in-memory result cache cap (0 = none)\n"
      "  --persist-dir DIR  persist completed results; a restarted daemon\n"
      "                     answers previously seen queries without simulating\n"
      "at least one of --socket/--port is required\n";
  return 2;
}

std::size_t size_flag(const stash::util::Args& args, const std::string& key) {
  if (!args.has(key)) return 0;
  auto v = stash::util::parse_u64(args.get(key));
  if (!v)
    throw std::invalid_argument("option --" + key +
                                " expects a non-negative integer, got '" +
                                args.get(key) + "'");
  return static_cast<std::size_t>(*v);
}

}  // namespace

int main(int argc, char** argv) {
  // A client that vanishes mid-response must cost us an EPIPE on that one
  // socket, never a process-killing SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);
  try {
    stash::util::Args args(argc, argv);
    stash::serve::ServeOptions opt;
    opt.unix_path = args.get("socket");
    opt.tcp_port = args.has("port") ? args.get_int("port", 0) : -1;
    opt.metrics_port =
        args.has("metrics-port") ? args.get_int("metrics-port", 0) : -1;
    opt.jobs = args.get_int("jobs", stash::exec::default_jobs());
    opt.max_inflight = args.get_int("max-inflight", opt.max_inflight);
    opt.cache_entries = size_flag(args, "cache-entries");
    opt.cache_bytes = size_flag(args, "cache-bytes");
    opt.persist_dir = args.get("persist-dir");
    if (opt.unix_path.empty() && opt.tcp_port < 0) return usage();

    // Route SIGINT/SIGTERM through a sigwait thread instead of a handler:
    // request_shutdown() takes locks, which a signal handler must not.
    sigset_t sigs;
    sigemptyset(&sigs);
    sigaddset(&sigs, SIGINT);
    sigaddset(&sigs, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

    stash::serve::Server server(opt);
    server.start();

    std::thread([&server, sigs] {
      int sig = 0;
      sigwait(&sigs, &sig);
      std::cerr << "stash_serve: received signal " << sig << ", draining\n";
      server.request_shutdown();
    }).detach();

    if (!opt.unix_path.empty())
      std::cerr << "stash_serve: listening on " << opt.unix_path << "\n";
    if (server.tcp_port() >= 0)
      std::cerr << "stash_serve: listening on 127.0.0.1:" << server.tcp_port()
                << "\n";
    if (server.metrics_port() >= 0)
      std::cerr << "stash_serve: metrics on http://127.0.0.1:"
                << server.metrics_port() << "/metrics\n";

    server.wait_for_shutdown();
    server.stop();
    std::cerr << "stash_serve: drained, exiting\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
