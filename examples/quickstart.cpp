// Quickstart: profile one model on one instance type with Stash.
//
//   $ quickstart [model] [instance] [batch] [trace.json]
//   $ quickstart resnet18 p3.8xlarge 32
//
// Runs the five-step Stash methodology on the simulated instance and
// prints the four stalls plus the projected epoch time and cost. With a
// fourth argument, also writes a chrome://tracing timeline of the
// warm-cache run to that file.
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "cloud/builder.h"
#include "ddl/trainer.h"
#include "dnn/zoo.h"
#include "stash/profiler.h"
#include "util/args.h"
#include "util/table.h"
#include "util/trace.h"

namespace {

int usage() {
  std::cerr << "usage: quickstart [model] [instance] [batch] [trace.json]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace stash;

  util::Args args(argc, argv);
  std::string model_name = args.positional(0, "resnet18");
  std::string instance = args.positional(1, "p3.8xlarge");
  std::optional<int> batch_arg = util::parse_int(args.positional(2, "32"));
  if (!batch_arg) {
    std::cerr << "bad batch '" << args.positional(2) << "': expected an integer\n";
    return usage();
  }
  int batch = *batch_arg;
  std::string trace_path = args.positional(3);

  dnn::Model model = dnn::make_zoo_model(model_name);
  dnn::Dataset dataset = dnn::dataset_for(model_name);
  std::cout << "Profiling " << model.name() << " (" << model.total_params() / 1e6
            << "M params, " << model.num_param_tensors() << " gradient tensors) on "
            << instance << ", per-GPU batch " << batch << "\n";

  profiler::StashProfiler stash_profiler(model, dataset);
  profiler::StallReport report =
      stash_profiler.profile(profiler::ClusterSpec{instance}, batch);

  util::Table steps({"step", "configuration", "per-iteration (ms)"});
  steps.row().cell("1").cell("synthetic, single GPU").cell(report.t1 * 1e3, 2);
  steps.row().cell("2").cell("synthetic, all GPUs").cell(report.t2 * 1e3, 2);
  steps.row().cell("3").cell("real data, cold cache").cell(report.t3 * 1e3, 2);
  steps.row().cell("4").cell("real data, warm cache").cell(report.t4 * 1e3, 2);
  steps.row().cell("5").cell("synthetic, network split").cell(
      report.has_network_step ? util::format_double(report.t5 * 1e3, 2) : "n/a");
  steps.print(std::cout);

  util::Table stalls({"stall", "definition", "value (%)"});
  stalls.row().cell("interconnect").cell("(T2-T1)/T1").cell(report.ic_stall_pct, 1);
  stalls.row().cell("network").cell("(T5-T2)/T2").cell(
      report.has_network_step ? util::format_double(report.nw_stall_pct, 1) : "n/a");
  stalls.row().cell("CPU (prep)").cell("(T4-T2)/T4").cell(report.prep_stall_pct, 1);
  stalls.row().cell("disk (fetch)").cell("(T3-T4)/T3").cell(report.fetch_stall_pct, 1);
  stalls.print(std::cout);

  std::cout << "steady-state epoch: " << util::format_double(report.epoch_seconds, 0)
            << " s,  $" << util::format_double(report.epoch_cost_usd, 2)
            << " per epoch on " << report.config_label << "\n";

  if (!trace_path.empty()) {
    // Re-run the warm-cache configuration with a timeline recorder attached.
    sim::Simulator sim;
    hw::FlowNetwork net(sim);
    hw::Cluster cluster(net, sim,
                        cloud::cluster_configs_for(cloud::instance(instance), 1),
                        cloud::fabric_bandwidth());
    ddl::TrainConfig cfg;
    cfg.per_gpu_batch = batch;
    cfg.iterations = 6;
    cfg.warmup_iterations = 2;
    cfg.synthetic_data = false;
    util::TraceRecorder trace;
    cfg.trace = &trace;
    ddl::Trainer trainer(sim, net, cluster, model, dataset, cfg);
    trainer.run();
    std::ofstream out(trace_path);
    trace.write(out);
    std::cout << "wrote " << trace.size() << " timeline spans to " << trace_path
              << " (open in chrome://tracing)\n";
  }
  return 0;
}
