// Model architect: how architecture choices drive communication stalls
// (the paper's §VI micro-characterization as a design tool).
//
// Sweeps ResNet depth and the batch-norm/residual ablations on a chosen
// instance, comparing the simulated interconnect stall with the closed-form
// tau*L + G/B prediction, and prints the regime each variant lands in.
//
//   $ model_architect [instance] [batch]
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "analysis/analytic_model.h"
#include "dnn/resnet.h"
#include "dnn/vgg.h"
#include "dnn/zoo.h"
#include "stash/profiler.h"
#include "util/args.h"
#include "util/table.h"

namespace {

int usage() {
  std::cerr << "usage: model_architect [instance] [batch]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace stash;

  util::Args args(argc, argv);
  std::string instance = args.positional(0, "p3.16xlarge");
  std::optional<int> batch_arg = util::parse_int(args.positional(1, "32"));
  if (!batch_arg) {
    std::cerr << "bad batch '" << args.positional(1) << "': expected an integer\n";
    return usage();
  }
  int batch = *batch_arg;
  profiler::ClusterSpec spec{instance};
  coll::CollectiveConfig coll_cfg;

  std::cout << "Architecture sweep on " << instance << ", per-GPU batch " << batch
            << " — what should you change in your model to reduce stalls?\n";

  struct Variant {
    std::string label;
    dnn::Model model;
  };
  std::vector<Variant> variants;
  for (int d : {18, 34, 50, 101, 152})
    variants.push_back({"resnet" + std::to_string(d), dnn::make_resnet(d)});
  variants.push_back(
      {"resnet50 w/o batch-norm",
       dnn::make_resnet(50, dnn::ResNetOptions{.batch_norm = false})});
  variants.push_back(
      {"resnet50 w/o residual",
       dnn::make_resnet(50, dnn::ResNetOptions{.residual = false})});
  for (int d : {11, 19})
    variants.push_back({"vgg" + std::to_string(d), dnn::make_vgg(d)});

  util::Table t({"variant", "tensors", "grads (MB)", "regime", "I/C sim %",
                 "I/C analytic %"});
  for (auto& v : variants) {
    profiler::StashProfiler p(v.model, dnn::imagenet_1k());
    double t1 = 0.0, t2 = 0.0;
    try {
      t1 = p.run_step(spec, profiler::Step::kSingleGpuSynthetic, batch)
               .per_iteration;
      t2 = p.run_step(spec, profiler::Step::kAllGpuSynthetic, batch)
               .per_iteration;
    } catch (const ddl::ModelDoesNotFit&) {
      t.row().cell(v.label).cell(v.model.num_param_tensors())
          .cell(v.model.gradient_bytes() / 1e6, 1)
          .cell("does not fit at this batch").cell("-").cell("-");
      continue;
    }
    analysis::TransferModel tm{coll_cfg.launch_blocking_latency,
                               analysis::ring_bottleneck_bw(spec)};
    t.row()
        .cell(v.label)
        .cell(v.model.num_param_tensors())
        .cell(v.model.gradient_bytes() / 1e6, 1)
        .cell(analysis::regime_name(analysis::classify_regime(
            v.model.gradient_bytes(),
            static_cast<int>(v.model.num_param_tensors()), tm)))
        .cell(std::max(0.0, (t2 - t1) / t1 * 100.0), 1)
        .cell(analysis::predict_comm_stall_pct(v.model, spec, batch, coll_cfg), 1);
  }
  t.print(std::cout);

  std::cout << "\nGuidance (paper §VI-A4): shallow networks with large gradients "
               "want the best interconnect; very deep networks with small "
               "per-layer gradients tolerate weaker interconnects, and batch-norm "
               "removal shrinks the per-layer launch bill.\n";
  return 0;
}
