// Instance advisor: rank every catalog configuration for a model by
// projected epoch time and cost — the paper's §V recommendations computed
// for *your* model instead of asserted.
//
//   $ instance_advisor [model] [batch]
//   $ instance_advisor vgg11 32
#include <iostream>
#include <optional>
#include <string>

#include "dnn/zoo.h"
#include "stash/recommend.h"
#include "util/args.h"
#include "util/table.h"

namespace {

int usage() {
  std::cerr << "usage: instance_advisor [model] [batch]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace stash;

  util::Args args(argc, argv);
  std::string model_name = args.positional(0, "resnet18");
  std::optional<int> batch_arg = util::parse_int(args.positional(1, "32"));
  if (!batch_arg) {
    std::cerr << "bad batch '" << args.positional(1) << "': expected an integer\n";
    return usage();
  }
  int batch = *batch_arg;

  dnn::Model model = dnn::make_zoo_model(model_name);
  profiler::RecommendOptions options;
  options.per_gpu_batch = batch;

  std::cout << "Ranking cluster configurations for " << model.name()
            << " at per-GPU batch " << batch << " (listed fastest first)\n";
  auto recs = profiler::recommend(model, dnn::dataset_for(model_name), options);
  if (recs.empty()) {
    std::cout << "No configuration fits this model at batch " << batch
              << "; try a smaller batch.\n";
    return 1;
  }

  util::Table t({"config", "GPUs", "epoch time (s)", "epoch cost ($)", "I/C stall %",
                 "N/W stall %", "disk stall %", "time rank", "cost rank"});
  for (const auto& r : recs) {
    t.row()
        .cell(r.spec.label())
        .cell(r.report.gpus)
        .cell(r.report.epoch_seconds, 0)
        .cell(r.report.epoch_cost_usd, 2)
        .cell(r.report.ic_stall_pct, 1)
        .cell(r.report.has_network_step ? util::format_double(r.report.nw_stall_pct, 1)
                                        : "-")
        .cell(r.report.fetch_stall_pct, 1)
        .cell(r.by_time)
        .cell(r.by_cost);
  }
  t.print(std::cout);

  const auto* fastest = &recs.front();
  const profiler::Recommendation* cheapest = nullptr;
  for (const auto& r : recs)
    if (r.by_cost == 0) cheapest = &r;
  std::cout << "\nFastest: " << fastest->spec.label() << ".  Cheapest: "
            << (cheapest ? cheapest->spec.label() : "?")
            << ".  (The paper's rule of thumb: single-GPU instances minimize cost, "
               "full-crossbar NVLink machines minimize time; avoid network pairs.)\n";
  return 0;
}
