// Cluster sweep: scale-out study across network-connected instances — how
// throughput, cost, and parallel efficiency evolve as machines are added,
// how much a hierarchical collective recovers (extension beyond the paper's
// flat-ring setup), and which mixed spot/on-demand deployment of the same
// scale-out ladder is actually worth buying (stash::plan frontier).
//
//   $ cluster_sweep [model] [instance] [max_machines] [epochs]
#include <algorithm>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "cloud/builder.h"
#include "coll/baselines.h"
#include "coll/ring_allreduce.h"
#include "ddl/trainer.h"
#include "dnn/zoo.h"
#include "exec/exec_context.h"
#include "faults/fault_plan.h"
#include "plan/planner.h"
#include "policy/autopilot.h"
#include "util/args.h"
#include "util/table.h"
#include "util/units.h"

namespace {

using namespace stash;

double iteration_seconds(const std::string& instance, int count,
                         const dnn::Model& model, int batch) {
  sim::Simulator sim;
  hw::FlowNetwork net(sim);
  hw::Cluster cluster(net, sim,
                      cloud::cluster_configs_for(cloud::instance(instance), count),
                      cloud::fabric_bandwidth());
  ddl::TrainConfig cfg;
  cfg.per_gpu_batch = batch;
  cfg.iterations = 4;
  cfg.warmup_iterations = 1;
  ddl::Trainer trainer(sim, net, cluster, model, dnn::dataset_for(model.name()), cfg);
  return trainer.run().per_iteration;
}

double collective_seconds(const std::string& instance, int count, double bytes,
                          bool hierarchical) {
  sim::Simulator sim;
  hw::FlowNetwork net(sim);
  hw::Cluster cluster(net, sim,
                      cloud::cluster_configs_for(cloud::instance(instance), count),
                      cloud::fabric_bandwidth());
  coll::CollectiveContext ctx{sim, net, cluster, coll::CollectiveConfig{}};
  double done = -1;
  auto proc = [&]() -> sim::Task<void> {
    if (hierarchical)
      co_await coll::hierarchical_allreduce(ctx, bytes);
    else
      co_await coll::ring_allreduce(ctx, bytes);
    done = sim.now();
  };
  sim.spawn(proc());
  sim.run();
  return done;
}

int usage() {
  std::cerr << "usage: cluster_sweep [model] [instance] [max_machines] [epochs]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace stash;

  util::Args args(argc, argv);
  std::string model_name = args.positional(0, "resnet50");
  std::string instance = args.positional(1, "p3.8xlarge");
  std::optional<int> machines_arg = util::parse_int(args.positional(2, "4"));
  std::optional<int> epochs_arg = util::parse_int(args.positional(3, "90"));
  if (!machines_arg || *machines_arg < 1) {
    std::cerr << "bad max_machines '" << args.positional(2)
              << "': expected a positive integer\n";
    return usage();
  }
  if (!epochs_arg || *epochs_arg < 1) {
    std::cerr << "bad epochs '" << args.positional(3)
              << "': expected a positive integer\n";
    return usage();
  }
  int max_machines = *machines_arg;
  int epochs = *epochs_arg;
  const int batch = 32;

  dnn::Model model = dnn::make_zoo_model(model_name);
  const auto& type = cloud::instance(instance);
  dnn::Dataset data = dnn::dataset_for(model_name);

  std::cout << "Scaling " << model.name() << " across 1.." << max_machines << " x "
            << instance << " (per-GPU batch " << batch << ")\n";

  double t1 = iteration_seconds(instance, 1, model, batch);
  util::Table t({"machines", "GPUs", "iteration (ms)", "samples/s", "scaling eff. %",
                 "epoch cost ($)"});
  for (int n = 1; n <= max_machines; ++n) {
    double ti = iteration_seconds(instance, n, model, batch);
    int gpus = type.num_gpus * n;
    double throughput = batch * gpus / ti;
    double ideal = batch * type.num_gpus / t1 * n;
    double epoch_s = data.num_samples / throughput;
    t.row()
        .cell(n)
        .cell(gpus)
        .cell(ti * 1e3, 1)
        .cell(throughput, 0)
        .cell(throughput / ideal * 100.0, 1)
        .cell(cloud::cost_usd(type, epoch_s, n), 2);
  }
  t.print(std::cout);

  std::cout << "\nCollective comparison at this model's gradient size ("
            << util::format_double(model.gradient_bytes() / 1e6, 0) << " MB):\n";
  util::Table c({"machines", "flat ring (ms)", "hierarchical (ms)", "improvement %"});
  for (int n = 2; n <= max_machines; ++n) {
    double ring = collective_seconds(instance, n, model.gradient_bytes(), false);
    double hier = collective_seconds(instance, n, model.gradient_bytes(), true);
    c.row().cell(n).cell(ring * 1e3, 1).cell(hier * 1e3, 1).cell(
        (ring - hier) / ring * 100.0, 1);
  }
  c.print(std::cout);

  std::cout << "\nThe paper's takeaway holds: adding NIC-connected machines "
               "collapses scaling efficiency (Fig 13); hierarchical all-reduce "
               "recovers part of it by crossing the NIC once per machine.\n";

  // Which point on the ladder should you actually buy, and at what spot mix?
  // Plan the same 1..max_machines candidates through the mixed
  // spot/on-demand planner and print the Pareto frontier.
  std::cout << "\nDeployment frontier for a " << epochs << "-epoch run "
               "(expected wall vs expected/p95 cost under revocation risk):\n";
  exec::ExecContext exec_ctx(1);
  plan::PlanOptions popt;
  popt.epochs = epochs;
  popt.per_gpu_batch = batch;
  popt.profile.exec = &exec_ctx;
  for (int n = 1; n <= max_machines; ++n)
    popt.candidates.push_back(profiler::ClusterSpec{instance, n});
  plan::PlanReport plan_report = plan::plan(model, data, popt);

  util::Table p({"plan", "E[wall] (h)", "E[cost] ($)", "p95 cost ($)",
                 "E[interrupts]", "frontier"});
  for (const auto& cp : plan_report.plans)
    p.row().cell(cp.label()).cell(util::to_hours(cp.expected_wall_s), 2)
        .cell(cp.expected_cost_usd, 2).cell(cp.p95_cost_usd, 2)
        .cell(cp.expected_interruptions, 1).cell(cp.on_frontier ? "*" : "");
  p.print(std::cout);
  if (const auto* best = plan_report.cheapest_on_frontier())
    std::cout << "cheapest frontier plan: " << best->label() << " at $"
              << util::format_double(best->expected_cost_usd, 2)
              << " expected; pure on-demand pays the certainty premium, "
                 "spot tiers trade p95 cost risk for the discount.\n";

  // The frontier plan is only optimal until the first revocation. Replay
  // four canonical revocation scenarios under each autopilot policy and
  // compare achieved cost against the no-replan baseline (pure hold) and
  // the trace-aware oracle.
  int ap_machines = std::min(2, max_machines);
  int ap_epochs = std::min(epochs, 4);
  std::cout << "\nAutopilot policy comparison (" << ap_machines << " x "
            << instance << " all-spot start, " << ap_epochs
            << " epochs, 2 trials each):\n";
  struct Scenario {
    const char* name;
    double rate;         // spot interruptions per machine-hour
    const char* faults;  // scripted events layered on the Poisson process
    int min_machines;    // fleet-below-k threshold
  };
  const Scenario scenarios[] = {
      // Calm market: revocations are rare, re-planning should stay cheap.
      {"calm", 0.2, "", 1},
      // Storm: holding for replacements bleeds money; leave the market.
      {"storm", 3.0, "", 1},
      // Fleet-below-k: the one scripted crash would shrink below
      // min_machines, exercising the graceful-degradation floor.
      {"below-k", 0.0, "crash@1200:m1:r600", 2},
      // Second revocation lands while the first is still recovering,
      // exercising bounded retry + exponential backoff.
      {"double-hit", 0.0, "crash@1200:m1:r900;crash@1300:m0:r900", 1},
  };
  const policy::PolicyKind kinds[] = {
      policy::PolicyKind::kHold, policy::PolicyKind::kShrink,
      policy::PolicyKind::kFallback, policy::PolicyKind::kMigrate,
      policy::PolicyKind::kAdaptive};
  util::Table a({"scenario", "policy", "E[wall] (h)", "E[cost] ($)",
                 "baseline ($)", "oracle ($)", "regret ($)", "floored"});
  for (const auto& sc : scenarios) {
    for (auto kind : kinds) {
      policy::AutopilotOptions aopt;
      aopt.policy = kind;
      aopt.epochs = ap_epochs;
      aopt.per_gpu_batch = batch;
      aopt.trials = 2;
      aopt.plan_trials = 8;
      aopt.spot.interruptions_per_hour = sc.rate;
      aopt.min_machines = sc.min_machines;
      aopt.initial_spec = profiler::ClusterSpec{instance, ap_machines};
      aopt.initial_spot_machines = ap_machines;
      if (*sc.faults) aopt.scripted_faults = faults::FaultPlan::parse(sc.faults);
      aopt.profile.exec = &exec_ctx;
      policy::AutopilotReport rep = policy::run_autopilot(model, data, aopt);
      a.row().cell(sc.name).cell(policy::to_string(kind))
          .cell(util::to_hours(rep.mean_achieved_wall_s), 2)
          .cell(rep.mean_achieved_cost_usd, 2)
          .cell(rep.mean_baseline_cost_usd, 2)
          .cell(rep.mean_oracle_cost_usd, 2)
          .cell(rep.mean_regret, 2)
          .cell(rep.trials_degraded_to_floor);
    }
  }
  a.print(std::cout);
  std::cout << "Every scenario terminates — bounded retries and the "
               "on-demand floor guarantee progress; adaptive tracks the "
               "oracle where fixed policies overpay.\n";
  return 0;
}
