// Cluster sweep: scale-out study across network-connected instances — how
// throughput, cost, and parallel efficiency evolve as machines are added,
// and how much a hierarchical collective recovers (extension beyond the
// paper's flat-ring setup).
//
//   $ cluster_sweep [model] [instance] [max_machines]
#include <iostream>
#include <memory>
#include <string>

#include "cloud/builder.h"
#include "coll/baselines.h"
#include "coll/ring_allreduce.h"
#include "ddl/trainer.h"
#include "dnn/zoo.h"
#include "util/table.h"
#include "util/units.h"

namespace {

using namespace stash;

double iteration_seconds(const std::string& instance, int count,
                         const dnn::Model& model, int batch) {
  sim::Simulator sim;
  hw::FlowNetwork net(sim);
  hw::Cluster cluster(net, sim,
                      cloud::cluster_configs_for(cloud::instance(instance), count),
                      cloud::fabric_bandwidth());
  ddl::TrainConfig cfg;
  cfg.per_gpu_batch = batch;
  cfg.iterations = 4;
  cfg.warmup_iterations = 1;
  ddl::Trainer trainer(sim, net, cluster, model, dnn::dataset_for(model.name()), cfg);
  return trainer.run().per_iteration;
}

double collective_seconds(const std::string& instance, int count, double bytes,
                          bool hierarchical) {
  sim::Simulator sim;
  hw::FlowNetwork net(sim);
  hw::Cluster cluster(net, sim,
                      cloud::cluster_configs_for(cloud::instance(instance), count),
                      cloud::fabric_bandwidth());
  coll::CollectiveContext ctx{sim, net, cluster, coll::CollectiveConfig{}};
  double done = -1;
  auto proc = [&]() -> sim::Task<void> {
    if (hierarchical)
      co_await coll::hierarchical_allreduce(ctx, bytes);
    else
      co_await coll::ring_allreduce(ctx, bytes);
    done = sim.now();
  };
  sim.spawn(proc());
  sim.run();
  return done;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace stash;

  std::string model_name = argc > 1 ? argv[1] : "resnet50";
  std::string instance = argc > 2 ? argv[2] : "p3.8xlarge";
  int max_machines = argc > 3 ? std::stoi(argv[3]) : 4;
  const int batch = 32;

  dnn::Model model = dnn::make_zoo_model(model_name);
  const auto& type = cloud::instance(instance);
  dnn::Dataset data = dnn::dataset_for(model_name);

  std::cout << "Scaling " << model.name() << " across 1.." << max_machines << " x "
            << instance << " (per-GPU batch " << batch << ")\n";

  double t1 = iteration_seconds(instance, 1, model, batch);
  util::Table t({"machines", "GPUs", "iteration (ms)", "samples/s", "scaling eff. %",
                 "epoch cost ($)"});
  for (int n = 1; n <= max_machines; ++n) {
    double ti = iteration_seconds(instance, n, model, batch);
    int gpus = type.num_gpus * n;
    double throughput = batch * gpus / ti;
    double ideal = batch * type.num_gpus / t1 * n;
    double epoch_s = data.num_samples / throughput;
    t.row()
        .cell(n)
        .cell(gpus)
        .cell(ti * 1e3, 1)
        .cell(throughput, 0)
        .cell(throughput / ideal * 100.0, 1)
        .cell(cloud::cost_usd(type, epoch_s, n), 2);
  }
  t.print(std::cout);

  std::cout << "\nCollective comparison at this model's gradient size ("
            << util::format_double(model.gradient_bytes() / 1e6, 0) << " MB):\n";
  util::Table c({"machines", "flat ring (ms)", "hierarchical (ms)", "improvement %"});
  for (int n = 2; n <= max_machines; ++n) {
    double ring = collective_seconds(instance, n, model.gradient_bytes(), false);
    double hier = collective_seconds(instance, n, model.gradient_bytes(), true);
    c.row().cell(n).cell(ring * 1e3, 1).cell(hier * 1e3, 1).cell(
        (ring - hier) / ring * 100.0, 1);
  }
  c.print(std::cout);

  std::cout << "\nThe paper's takeaway holds: adding NIC-connected machines "
               "collapses scaling efficiency (Fig 13); hierarchical all-reduce "
               "recovers part of it by crossing the NIC once per machine.\n";
  return 0;
}
