// stash — command-line front-end for the profiler (the tool the paper's
// tenants would actually run).
//
//   stash catalog
//   stash models
//   stash profile  <model> [--instance p3.8xlarge] [--count N] [--batch B]
//                  [--full-quad] [--csv]
//   stash recommend <model> [--batch B] [--csv]
//   stash estimate <model> [--instance T] [--epochs E] [--csv]
//   stash stalls   <model> --instance <type> [--batch B]   (single line)
//
// Every subcommand prints an ASCII table by default or CSV with --csv.
// profile, estimate and stalls additionally accept:
//   --json          print a stash.run_manifest/1 JSON document instead of
//                   the table (report + config + metrics snapshot)
//   --trace=FILE    write a chrome://tracing timeline of the instrumented
//                   (warm-data) profiler step
//   --metrics=FILE  write the metrics registry snapshot as JSON
#include <fstream>
#include <iostream>
#include <string>

#include "cloud/spot.h"
#include "dnn/zoo.h"
#include "exec/exec_context.h"
#include "faults/fault_plan.h"
#include "stash/recommend.h"
#include "stash/session.h"
#include "stash/spot_replay.h"
#include "telemetry/manifest.h"
#include "telemetry/metrics.h"
#include "util/args.h"
#include "util/table.h"
#include "util/trace.h"
#include "util/units.h"

namespace {

using namespace stash;

int usage() {
  std::cout <<
      "usage: stash_cli <command> [args]\n"
      "  catalog                          list Table-I instance types\n"
      "  models                           list the Table-II model zoo\n"
      "  profile <model> [--instance T] [--count N] [--batch B]\n"
      "          [--full-quad] [--csv]    run the five-step Stash profile\n"
      "          [--jobs N]               run profiler steps on N threads\n"
      "          [--faults=SPEC] [--recovery=restart|shrink] [--timeout S]\n"
      "                                   ...and again with SPEC injected,\n"
      "                                   reporting the fault degradation\n"
      "  recommend <model> [--batch B] [--jobs N] [--csv]\n"
      "                                   rank every configuration\n"
      "  estimate <model> [--instance T] [--count N] [--batch B]\n"
      "           [--epochs E] [--jobs N] [--spot]\n"
      "           [--spot-mode analytic|replay] [--csv]\n"
      "                                   whole-run time & cost estimate\n"
      "  stalls <model> --instance T [--count N] [--batch B] [--jobs N] [--csv]\n"
      "                                   one-line stall decomposition\n"
      "\n"
      "--jobs N runs up to N simulations concurrently (default 1 = serial);\n"
      "output is byte-identical for every N.\n"
      "\n"
      "profile, estimate and stalls also accept:\n"
      "  --json          print a stash.run_manifest/1 JSON document instead\n"
      "                  of the table\n"
      "  --trace=FILE    write a chrome://tracing timeline of the warm step\n"
      "  --metrics=FILE  write the metrics registry snapshot as JSON\n"
      "\n"
      "fault SPEC: ';'-separated events, e.g.\n"
      "  straggler@2+5:w1:x2.5  worker 1 at half speed for t=[2,7)\n"
      "  link@4+3:m0:x0.1       machine 0 NIC at 10%% for t=[4,7)\n"
      "  disk@1+2:m0:x0.25      machine 0 SSD at 25%% for t=[1,3)\n"
      "  crash@6:m1:r30         machine 1 revoked at t=6, replaced after 30 s\n";
  return 2;
}

// A stall report whose percentages were clamped (degenerate denominators) is
// flagged in the row label; explain the marker once, on stderr, so tables
// and CSV stay machine-splittable.
std::string degenerate_mark(const profiler::StallReport& r) {
  return r.degenerate_pcts ? " [!]" : "";
}

void warn_if_degenerate(const profiler::StallReport& r) {
  if (r.degenerate_pcts)
    std::cerr << "warning: [!] stall percentages are degenerate (a profiler "
                 "step's measured window collapsed); affected values were "
                 "clamped to 0 and are not trustworthy\n";
}

// Shared --trace/--metrics/--json plumbing for profile, estimate and stalls.
struct TelemetrySinks {
  explicit TelemetrySinks(const util::Args& args)
      : trace_path(args.get("trace")),
        metrics_path(args.get("metrics")),
        json(args.has("json")) {}

  bool want_trace() const { return !trace_path.empty(); }
  bool want_metrics() const { return !metrics_path.empty() || json; }

  void attach(profiler::ProfileOptions& opt) {
    if (want_trace()) opt.trace = &trace;
    if (want_metrics()) opt.metrics = &metrics;
  }

  telemetry::RunManifest manifest(const std::string& command,
                                  const util::Args& args,
                                  const std::string& model,
                                  const profiler::ClusterSpec& spec) const {
    telemetry::RunManifest man;
    man.command = command;
    man.add_config("model", model);
    man.add_config("instance", spec.instance);
    man.add_config("count", std::to_string(spec.count));
    man.add_config("batch", std::to_string(args.get_int("batch", 32)));
    if (want_metrics()) man.metrics = &metrics;
    return man;
  }

  // Writes the side files and, under --json, the manifest to stdout.
  // Returns 0, or 1 if a file could not be written.
  int flush(const telemetry::RunManifest& man) const {
    if (want_trace() && !write_file(trace_path, trace.to_json())) return 1;
    if (!metrics_path.empty() &&
        !write_file(metrics_path, metrics.to_json() + "\n"))
      return 1;
    if (json) std::cout << man.to_json() << "\n";
    return 0;
  }

  std::string trace_path;
  std::string metrics_path;
  bool json = false;
  util::TraceRecorder trace;
  telemetry::MetricsRegistry metrics;

 private:
  static bool write_file(const std::string& path, const std::string& content) {
    std::ofstream os(path, std::ios::binary);
    os << content;
    os.flush();
    if (!os) {
      std::cerr << "error: cannot write " << path << "\n";
      return false;
    }
    return true;
  }
};

void emit(const util::Table& t, bool csv) {
  if (csv)
    std::cout << t.to_csv();
  else
    t.print(std::cout);
}

int cmd_catalog(const util::Args& args) {
  util::Table t({"instance", "GPUs", "GPU", "interconnect", "network (Gbps)",
                 "price/hr ($)"});
  for (const auto& i : cloud::instance_catalog()) {
    const char* ic = i.interconnect == hw::InterconnectKind::kPcieOnly ? "PCIe"
                     : i.interconnect == hw::InterconnectKind::kPcieNvlink
                         ? "PCIe+NVLink"
                         : "NVSwitch";
    t.row().cell(i.name).cell(i.num_gpus).cell(i.gpu.name).cell(ic).cell(
        util::to_gbps(i.network_bw), 0).cell(i.price_per_hour, 4);
  }
  emit(t, args.has("csv"));
  return 0;
}

int cmd_models(const util::Args& args) {
  util::Table t({"model", "params (M)", "grad tensors", "fwd GFLOPs", "dataset"});
  for (const char* name : {"alexnet", "mobilenet-v2", "squeezenet", "shufflenet",
                           "resnet18", "resnet50", "vgg11", "bert-large"}) {
    dnn::Model m = dnn::make_zoo_model(name);
    t.row().cell(name).cell(m.total_params() / 1e6, 2).cell(m.num_param_tensors())
        .cell(m.fwd_flops_per_sample() / 1e9, 2).cell(dnn::dataset_for(name).name);
  }
  emit(t, args.has("csv"));
  return 0;
}

int cmd_profile(const util::Args& args) {
  std::string model_name = args.positional(1);
  if (model_name.empty()) return usage();
  profiler::ClusterSpec spec;
  spec.instance = args.get("instance", "p3.8xlarge");
  spec.count = args.get_int("count", 1);
  if (args.has("full-quad")) spec.slice = cloud::CrossbarSlice::kFullQuad;
  int batch = args.get_int("batch", 32);

  TelemetrySinks sinks(args);
  exec::ExecContext exec(args.get_int("jobs", 1));
  profiler::ProfileOptions opt;
  opt.exec = &exec;
  sinks.attach(opt);

  dnn::Model model = dnn::make_zoo_model(model_name);
  profiler::StashProfiler prof(model, dnn::dataset_for(model_name), opt);

  if (args.has("faults")) {
    faults::FaultPlan plan = faults::FaultPlan::parse(args.get("faults"));
    profiler::FaultProfileOptions fopt;
    std::string recovery = args.get("recovery", "restart");
    if (recovery == "restart")
      fopt.policy = ddl::RecoveryPolicy::kCheckpointRestart;
    else if (recovery == "shrink")
      fopt.policy = ddl::RecoveryPolicy::kShrink;
    else {
      std::cerr << "unknown --recovery '" << recovery
                << "' (expected restart|shrink)\n";
      return 2;
    }
    fopt.barrier_timeout_s = args.get_double("timeout", fopt.barrier_timeout_s);
    fopt.checkpoint_interval_s =
        args.get_double("ckpt-interval", fopt.checkpoint_interval_s);
    fopt.checkpoint_write_s =
        args.get_double("ckpt-write", fopt.checkpoint_write_s);

    profiler::FaultProfileReport fr =
        prof.profile_under_faults(spec, batch, plan, fopt);
    if (sinks.json) {
      telemetry::RunManifest man =
          sinks.manifest("profile", args, model_name, spec);
      man.add_config("faults", args.get("faults"));
      man.add_config("recovery", recovery);
      man.fault_report = fr;
      return sinks.flush(man);
    }
    util::Table t({"run", "I/C %", "N/W %", "prep %", "fetch %", "fault %",
                   "epoch (s)", "epoch ($)"});
    auto row = [&t](const char* label, const profiler::StallReport& r) {
      t.row().cell(label + degenerate_mark(r)).cell(r.ic_stall_pct, 1)
          .cell(r.has_network_step ? util::format_double(r.nw_stall_pct, 1) : "-")
          .cell(r.prep_stall_pct, 1).cell(r.fetch_stall_pct, 1)
          .cell(r.fault_stall_pct, 1)
          .cell(r.epoch_seconds, 0).cell(r.epoch_cost_usd, 2);
    };
    row("healthy", fr.healthy);
    row("faulted", fr.faulted);
    emit(t, args.has("csv"));
    warn_if_degenerate(fr.healthy);
    warn_if_degenerate(fr.faulted);
    if (int rc = sinks.flush({}); rc != 0) return rc;
    if (!args.has("csv")) {
      std::cout << "epoch slowdown: " << util::format_double(fr.epoch_slowdown, 2)
                << "x   fault stall: "
                << util::format_double(fr.fault_stall_seconds, 1)
                << " s   checkpoints: " << fr.checkpoints_written << " ("
                << util::format_double(fr.checkpoint_seconds, 1)
                << " s)   gpus at end: " << fr.gpus_at_end << "\n";
      for (const auto& rec : fr.recoveries)
        std::cout << "recovery @" << util::format_double(rec.time_s, 1)
                  << " s iter " << rec.at_iteration << ": "
                  << (rec.policy == ddl::RecoveryPolicy::kCheckpointRestart
                          ? "restart"
                          : "shrink")
                  << ", workers " << rec.workers_before << "->"
                  << rec.workers_after << ", waited "
                  << util::format_double(rec.wait_seconds, 1) << " s, reworked "
                  << rec.rework_iterations << " iters\n";
    }
    return 0;
  }

  profiler::StallReport r = prof.profile(spec, batch);

  if (sinks.json) {
    telemetry::RunManifest man = sinks.manifest("profile", args, model_name, spec);
    man.stall_report = r;
    return sinks.flush(man);
  }

  util::Table t({"config", "model", "batch", "I/C %", "N/W %", "prep %", "fetch %",
                 "epoch (s)", "epoch ($)"});
  t.row().cell(r.config_label + degenerate_mark(r)).cell(r.model_name)
      .cell(r.per_gpu_batch)
      .cell(r.ic_stall_pct, 1)
      .cell(r.has_network_step ? util::format_double(r.nw_stall_pct, 1) : "-")
      .cell(r.prep_stall_pct, 1).cell(r.fetch_stall_pct, 1)
      .cell(r.epoch_seconds, 0).cell(r.epoch_cost_usd, 2);
  emit(t, args.has("csv"));
  warn_if_degenerate(r);
  return sinks.flush({});
}

// The one-line summary promised in the header: the five stall percentages
// for one model on one configuration, nothing else. Scripts can grep it;
// --csv/--json give the structured forms.
int cmd_stalls(const util::Args& args) {
  std::string model_name = args.positional(1);
  if (model_name.empty() || !args.has("instance")) return usage();
  profiler::ClusterSpec spec;
  spec.instance = args.get("instance");
  spec.count = args.get_int("count", 1);
  if (args.has("full-quad")) spec.slice = cloud::CrossbarSlice::kFullQuad;
  int batch = args.get_int("batch", 32);

  TelemetrySinks sinks(args);
  exec::ExecContext exec(args.get_int("jobs", 1));
  profiler::ProfileOptions opt;
  opt.exec = &exec;
  sinks.attach(opt);
  profiler::StashProfiler prof(dnn::make_zoo_model(model_name),
                               dnn::dataset_for(model_name), opt);
  profiler::StallReport r = prof.profile(spec, batch);

  if (sinks.json) {
    telemetry::RunManifest man = sinks.manifest("stalls", args, model_name, spec);
    man.stall_report = r;
    return sinks.flush(man);
  }
  if (args.has("csv")) {
    util::Table t({"config", "model", "batch", "I/C %", "N/W %", "prep %",
                   "fetch %", "fault %"});
    t.row().cell(r.config_label + degenerate_mark(r)).cell(r.model_name)
        .cell(r.per_gpu_batch).cell(r.ic_stall_pct, 1)
        .cell(r.has_network_step ? util::format_double(r.nw_stall_pct, 1) : "-")
        .cell(r.prep_stall_pct, 1).cell(r.fetch_stall_pct, 1)
        .cell(r.fault_stall_pct, 1);
    std::cout << t.to_csv();
  } else {
    std::cout << r.model_name << " on " << r.config_label << " (batch "
              << r.per_gpu_batch << "): I/C "
              << util::format_double(r.ic_stall_pct, 1) << "%  N/W "
              << (r.has_network_step
                      ? util::format_double(r.nw_stall_pct, 1) + "%"
                      : "-")
              << "  prep " << util::format_double(r.prep_stall_pct, 1)
              << "%  fetch " << util::format_double(r.fetch_stall_pct, 1)
              << "%  fault " << util::format_double(r.fault_stall_pct, 1) << "%"
              << degenerate_mark(r) << "\n";
  }
  warn_if_degenerate(r);
  return sinks.flush({});
}

int cmd_recommend(const util::Args& args) {
  std::string model_name = args.positional(1);
  if (model_name.empty()) return usage();
  exec::ExecContext exec(args.get_int("jobs", 1));
  profiler::RecommendOptions opt;
  opt.per_gpu_batch = args.get_int("batch", 32);
  opt.profile.exec = &exec;
  auto recs =
      profiler::recommend(dnn::make_zoo_model(model_name),
                          dnn::dataset_for(model_name), opt);
  if (recs.empty()) {
    std::cerr << "no configuration fits " << model_name << " at batch "
              << opt.per_gpu_batch << "\n";
    return 1;
  }
  util::Table t({"config", "epoch (s)", "epoch ($)", "time rank", "cost rank"});
  for (const auto& r : recs)
    t.row().cell(r.spec.label()).cell(r.report.epoch_seconds, 0)
        .cell(r.report.epoch_cost_usd, 2).cell(r.by_time).cell(r.by_cost);
  emit(t, args.has("csv"));
  return 0;
}

int cmd_estimate(const util::Args& args) {
  std::string model_name = args.positional(1);
  if (model_name.empty()) return usage();
  profiler::ClusterSpec spec;
  spec.instance = args.get("instance", "p3.8xlarge");
  spec.count = args.get_int("count", 1);
  int batch = args.get_int("batch", 32);
  int epochs = args.get_int("epochs", 90);

  TelemetrySinks sinks(args);
  exec::ExecContext exec(args.get_int("jobs", 1));
  profiler::ProfileOptions opt;
  opt.exec = &exec;
  sinks.attach(opt);
  profiler::StashProfiler prof(dnn::make_zoo_model(model_name),
                               dnn::dataset_for(model_name), opt);
  auto est = profiler::estimate_training(prof, spec, batch, epochs);

  if (sinks.json) {
    telemetry::RunManifest man = sinks.manifest("estimate", args, model_name, spec);
    man.add_config("epochs", std::to_string(epochs));
    man.estimate = est;
    return sinks.flush(man);
  }

  util::Table t({"config", "epochs", "cold epoch (s)", "steady epoch (s)",
                 "total (h)", "cost ($)", "pricing"});
  t.row().cell(est.config_label).cell(est.epochs).cell(est.first_epoch_seconds, 0)
      .cell(est.steady_epoch_seconds, 0).cell(util::to_hours(est.total_seconds), 2)
      .cell(est.total_cost_usd, 2).cell("on-demand");
  if (args.has("spot")) {
    std::string mode = args.get("spot-mode", "analytic");
    if (mode == "replay") {
      // Event-driven estimate: measure iteration time and the per-revocation
      // recovery cost by running an actual crash through the trainer.
      auto replay = profiler::replay_spot_run(prof, spec, batch,
                                              est.total_seconds,
                                              cloud::SpotConfig{}, 2026);
      t.row().cell(est.config_label).cell(est.epochs).cell("-").cell("-")
          .cell(util::to_hours(replay.outcome.wall_seconds), 2)
          .cell(replay.outcome.cost_usd, 2).cell("spot (event-driven replay)");
    } else if (mode == "analytic") {
      auto spot = cloud::mean_spot_outcome(est.total_seconds,
                                           cloud::instance(spec.instance),
                                           spec.count, cloud::SpotConfig{}, 2026);
      t.row().cell(est.config_label).cell(est.epochs).cell("-").cell("-")
          .cell(util::to_hours(spot.wall_seconds), 2).cell(spot.cost_usd, 2)
          .cell("spot (mean of 25 draws)");
    } else {
      std::cerr << "unknown --spot-mode '" << mode
                << "' (expected analytic|replay)\n";
      return 2;
    }
  }
  emit(t, args.has("csv"));
  return sinks.flush({});
}

}  // namespace

int main(int argc, char** argv) {
  try {
    util::Args args(argc, argv);
    std::string cmd = args.positional(0);
    if (cmd == "catalog") return cmd_catalog(args);
    if (cmd == "models") return cmd_models(args);
    if (cmd == "profile") return cmd_profile(args);
    if (cmd == "recommend") return cmd_recommend(args);
    if (cmd == "estimate") return cmd_estimate(args);
    if (cmd == "stalls") return cmd_stalls(args);
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
