// stash — command-line front-end for the profiler (the tool the paper's
// tenants would actually run).
//
//   stash catalog
//   stash models
//   stash profile  <model> [--instance p3.8xlarge] [--count N] [--batch B]
//                  [--full-quad] [--csv]
//   stash recommend <model> [--batch B] [--csv]
//   stash stalls   <model> --instance <type> [--batch B]   (single line)
//
// Every subcommand prints an ASCII table by default or CSV with --csv.
#include <iostream>
#include <string>

#include "cloud/spot.h"
#include "dnn/zoo.h"
#include "stash/recommend.h"
#include "stash/session.h"
#include "util/args.h"
#include "util/table.h"
#include "util/units.h"

namespace {

using namespace stash;

int usage() {
  std::cout <<
      "usage: stash_cli <command> [args]\n"
      "  catalog                          list Table-I instance types\n"
      "  models                           list the Table-II model zoo\n"
      "  profile <model> [--instance T] [--count N] [--batch B]\n"
      "          [--full-quad] [--csv]    run the five-step Stash profile\n"
      "  recommend <model> [--batch B] [--csv]\n"
      "                                   rank every configuration\n"
      "  estimate <model> [--instance T] [--count N] [--batch B]\n"
      "           [--epochs E] [--spot] [--csv]\n"
      "                                   whole-run time & cost estimate\n";
  return 2;
}

void emit(const util::Table& t, bool csv) {
  if (csv)
    std::cout << t.to_csv();
  else
    t.print(std::cout);
}

int cmd_catalog(const util::Args& args) {
  util::Table t({"instance", "GPUs", "GPU", "interconnect", "network (Gbps)",
                 "price/hr ($)"});
  for (const auto& i : cloud::instance_catalog()) {
    const char* ic = i.interconnect == hw::InterconnectKind::kPcieOnly ? "PCIe"
                     : i.interconnect == hw::InterconnectKind::kPcieNvlink
                         ? "PCIe+NVLink"
                         : "NVSwitch";
    t.row().cell(i.name).cell(i.num_gpus).cell(i.gpu.name).cell(ic).cell(
        util::to_gbps(i.network_bw), 0).cell(i.price_per_hour, 4);
  }
  emit(t, args.has("csv"));
  return 0;
}

int cmd_models(const util::Args& args) {
  util::Table t({"model", "params (M)", "grad tensors", "fwd GFLOPs", "dataset"});
  for (const char* name : {"alexnet", "mobilenet-v2", "squeezenet", "shufflenet",
                           "resnet18", "resnet50", "vgg11", "bert-large"}) {
    dnn::Model m = dnn::make_zoo_model(name);
    t.row().cell(name).cell(m.total_params() / 1e6, 2).cell(m.num_param_tensors())
        .cell(m.fwd_flops_per_sample() / 1e9, 2).cell(dnn::dataset_for(name).name);
  }
  emit(t, args.has("csv"));
  return 0;
}

int cmd_profile(const util::Args& args) {
  std::string model_name = args.positional(1);
  if (model_name.empty()) return usage();
  profiler::ClusterSpec spec;
  spec.instance = args.get("instance", "p3.8xlarge");
  spec.count = args.get_int("count", 1);
  if (args.has("full-quad")) spec.slice = cloud::CrossbarSlice::kFullQuad;
  int batch = args.get_int("batch", 32);

  dnn::Model model = dnn::make_zoo_model(model_name);
  profiler::StashProfiler prof(model, dnn::dataset_for(model_name));
  profiler::StallReport r = prof.profile(spec, batch);

  util::Table t({"config", "model", "batch", "I/C %", "N/W %", "prep %", "fetch %",
                 "epoch (s)", "epoch ($)"});
  t.row().cell(r.config_label).cell(r.model_name).cell(r.per_gpu_batch)
      .cell(r.ic_stall_pct, 1)
      .cell(r.has_network_step ? util::format_double(r.nw_stall_pct, 1) : "-")
      .cell(r.prep_stall_pct, 1).cell(r.fetch_stall_pct, 1)
      .cell(r.epoch_seconds, 0).cell(r.epoch_cost_usd, 2);
  emit(t, args.has("csv"));
  return 0;
}

int cmd_recommend(const util::Args& args) {
  std::string model_name = args.positional(1);
  if (model_name.empty()) return usage();
  profiler::RecommendOptions opt;
  opt.per_gpu_batch = args.get_int("batch", 32);
  auto recs =
      profiler::recommend(dnn::make_zoo_model(model_name),
                          dnn::dataset_for(model_name), opt);
  if (recs.empty()) {
    std::cerr << "no configuration fits " << model_name << " at batch "
              << opt.per_gpu_batch << "\n";
    return 1;
  }
  util::Table t({"config", "epoch (s)", "epoch ($)", "time rank", "cost rank"});
  for (const auto& r : recs)
    t.row().cell(r.spec.label()).cell(r.report.epoch_seconds, 0)
        .cell(r.report.epoch_cost_usd, 2).cell(r.by_time).cell(r.by_cost);
  emit(t, args.has("csv"));
  return 0;
}

int cmd_estimate(const util::Args& args) {
  std::string model_name = args.positional(1);
  if (model_name.empty()) return usage();
  profiler::ClusterSpec spec;
  spec.instance = args.get("instance", "p3.8xlarge");
  spec.count = args.get_int("count", 1);
  int batch = args.get_int("batch", 32);
  int epochs = args.get_int("epochs", 90);

  profiler::StashProfiler prof(dnn::make_zoo_model(model_name),
                               dnn::dataset_for(model_name));
  auto est = profiler::estimate_training(prof, spec, batch, epochs);

  util::Table t({"config", "epochs", "cold epoch (s)", "steady epoch (s)",
                 "total (h)", "cost ($)", "pricing"});
  t.row().cell(est.config_label).cell(est.epochs).cell(est.first_epoch_seconds, 0)
      .cell(est.steady_epoch_seconds, 0).cell(util::to_hours(est.total_seconds), 2)
      .cell(est.total_cost_usd, 2).cell("on-demand");
  if (args.has("spot")) {
    auto spot = cloud::mean_spot_outcome(est.total_seconds,
                                         cloud::instance(spec.instance), spec.count,
                                         cloud::SpotConfig{}, 2026);
    t.row().cell(est.config_label).cell(est.epochs).cell("-").cell("-")
        .cell(util::to_hours(spot.wall_seconds), 2).cell(spot.cost_usd, 2)
        .cell("spot (mean of 25 draws)");
  }
  emit(t, args.has("csv"));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    util::Args args(argc, argv);
    std::string cmd = args.positional(0);
    if (cmd == "catalog") return cmd_catalog(args);
    if (cmd == "models") return cmd_models(args);
    if (cmd == "profile") return cmd_profile(args);
    if (cmd == "recommend") return cmd_recommend(args);
    if (cmd == "estimate") return cmd_estimate(args);
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
