// stash — command-line front-end for the profiler (the tool the paper's
// tenants would actually run).
//
//   stash catalog
//   stash models
//   stash profile  <model> [--instance p3.8xlarge] [--count N] [--batch B]
//                  [--full-quad] [--csv]
//   stash recommend <model> [--batch B] [--csv]
//   stash estimate <model> [--instance T] [--epochs E] [--csv]
//   stash stalls   <model> --instance <type> [--batch B]   (single line)
//
// Every subcommand prints an ASCII table by default or CSV with --csv.
// profile, estimate and stalls additionally accept:
//   --json          print a stash.run_manifest/2 JSON document instead of
//                   the table (report + config + metrics snapshot)
//   --trace=FILE    write a chrome://tracing timeline of the instrumented
//                   (warm-data) profiler step
//   --metrics=FILE  write the metrics registry snapshot as JSON
#include <cerrno>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "archive/archive.h"
#include "archive/diff.h"
#include "archive/drift.h"
#include "cloud/spot.h"
#include "dnn/zoo.h"
#include "exec/exec_context.h"
#include "faults/fault_plan.h"
#include "monitor/dashboard.h"
#include "monitor/driver.h"
#include "obs/causal_log.h"
#include "obs/critical_path.h"
#include "obs/progress.h"
#include "plan/planner.h"
#include "policy/autopilot.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "stash/attribute.h"
#include "stash/recommend.h"
#include "stash/session.h"
#include "stash/spot_replay.h"
#include "telemetry/manifest.h"
#include "telemetry/metrics.h"
#include "util/args.h"
#include "util/table.h"
#include "util/trace.h"
#include "util/units.h"

namespace {

using namespace stash;

// Boolean options: registered so a bare flag never swallows the following
// positional (`stash_cli profile --progress resnet50` must keep resnet50).
constexpr std::initializer_list<const char*> kFlags = {
    "csv", "json", "full-quad", "spot", "progress", "no-calibrate", "live"};

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream os(path, std::ios::binary);
  os << content;
  os.flush();
  if (!os) {
    std::cerr << "error: cannot write " << path << "\n";
    return false;
  }
  return true;
}

int usage() {
  std::cout <<
      "usage: stash_cli <command> [args]\n"
      "  catalog                          list Table-I instance types\n"
      "  models                           list the Table-II model zoo\n"
      "  profile <model> [--instance T] [--count N] [--batch B]\n"
      "          [--full-quad] [--csv]    run the five-step Stash profile\n"
      "          [--jobs N]               run profiler steps on N threads\n"
      "          [--faults=SPEC] [--recovery=restart|shrink] [--timeout S]\n"
      "                                   ...and again with SPEC injected,\n"
      "                                   reporting the fault degradation\n"
      "  attribute <model> [--instance T] [--count N] [--batch B] [--jobs N]\n"
      "            [--flame=FILE] [--csv]  causal critical-path attribution\n"
      "                                   cross-checked against differencing\n"
      "  recommend <model> [--batch B] [--jobs N] [--csv]\n"
      "                                   rank every configuration\n"
      "  estimate <model> [--instance T] [--count N] [--batch B]\n"
      "           [--epochs E] [--jobs N] [--spot]\n"
      "           [--spot-mode analytic|replay] [--csv]\n"
      "                                   whole-run time & cost estimate\n"
      "  stalls <model> --instance T [--count N] [--batch B] [--jobs N] [--csv]\n"
      "                                   one-line stall decomposition\n"
      "  plan <model> [--epochs E] [--batch B] [--budget USD] [--deadline H]\n"
      "       [--spot-rate R] [--spot-price F] [--trials N] [--seed S]\n"
      "       [--instance T [--count N]] [--no-calibrate]\n"
      "       [--watchdog-timeout S] [--jobs N] [--csv]\n"
      "                                   Pareto frontier of mixed\n"
      "                                   spot/on-demand deployments\n"
      "  autopilot <model> [--policy hold|shrink|fallback|migrate|adaptive]\n"
      "            [--epochs E] [--batch B] [--budget USD] [--deadline H]\n"
      "            [--spot-rate R] [--spot-price F] [--trials N]\n"
      "            [--plan-trials N] [--seed S] [--instance T [--count N]\n"
      "            [--spot-machines K]] [--faults=SPEC] [--floor N]\n"
      "            [--min-machines N] [--max-retries N]\n"
      "            [--watchdog-timeout S] [--blame-threshold F]\n"
      "            [--triggers=threshold|detector] [--jobs N] [--csv]\n"
      "                                   simulate mid-training re-planning\n"
      "                                   under spot revocations: achieved vs\n"
      "                                   planned/baseline/oracle + regret\n"
      "  monitor <model> [--instance T] [--count N] [--batch B] [--iters N]\n"
      "          [--warmup N] [--window W] [--faults=SPEC]\n"
      "          [--recovery=restart|shrink] [--timeout S] [--live]\n"
      "          [--events=FILE] [--jobs N] [--csv]\n"
      "                                   stream a training simulation through\n"
      "                                   the online stall monitor: change-\n"
      "                                   point events + windowed live blame\n"
      "  query <command> (--socket PATH | --port P) [--key value ...]\n"
      "                                   send one request to a running\n"
      "                                   stash_serve daemon and print the\n"
      "                                   stash.serve_response/1 document;\n"
      "                                   options forward as request params\n"
      "                                   (e.g. --model resnet18 --batch 32)\n"
      "  runs <list|show|diff|drift> --archive DIR\n"
      "       list [--csv]                archived runs in append order\n"
      "       show <ref>                  print one stash.run_record/1 document\n"
      "       diff <refA> <refB> [--flame=FILE] [--json] [--csv]\n"
      "                                   structural comparison of two runs:\n"
      "                                   stall deltas, metric drift, config\n"
      "                                   changes, folded-stack blame diff\n"
      "       drift [--metrics=FILE] [--json] [--csv]\n"
      "                                   replay the CUSUM/EWMA detectors over\n"
      "                                   each run group's archive time series\n"
      "       (<ref> is an archive seq number or a record-id prefix)\n"
      "\n"
      "--jobs N runs up to N simulations concurrently (default 1 = serial);\n"
      "output is byte-identical for every N.\n"
      "\n"
      "profile, estimate, stalls, recommend, plan, autopilot and monitor\n"
      "also accept:\n"
      "  --json          print a stash.run_manifest/2 JSON document instead\n"
      "                  of the table (attribute prints stash.blame/1,\n"
      "                  plan stash.plan/1, autopilot stash.autopilot/1,\n"
      "                  monitor the stash.monitor/1 JSONL stream)\n"
      "  --trace=FILE    write a chrome://tracing timeline of the warm step\n"
      "                  (attribute: of the primary causal run, with the\n"
      "                  critical path as a highlighted track; monitor: of\n"
      "                  the monitored run, detections as instants)\n"
      "  --metrics=FILE  write the metrics registry snapshot\n"
      "  --metrics-format=json|prom\n"
      "                  snapshot format: stash.metrics/1 JSON (default) or\n"
      "                  Prometheus text exposition; monitor's prom output\n"
      "                  also carries the per-window streaming snapshots\n"
      "  --archive DIR   append this run as a stash.run_record/1 (manifest +\n"
      "                  metrics snapshot + blame when attribution ran) to\n"
      "                  the archive at DIR; query later with `runs`\n"
      "\n"
      "monitor also accepts:\n"
      "  --events=FILE   write the stash.monitor/1 JSONL stream to FILE\n"
      "                  (independent of --json)\n"
      "  --live          in-place stderr dashboard (sparkline + ALERT lines;\n"
      "                  degrades to plain lines when stderr is not a tty)\n"
      "\n"
      "profile also accepts:\n"
      "  --blame=FILE    write a stash.blame/1 critical-path report of the\n"
      "                  warm-data run (healthy profiles only)\n"
      "  --flame=FILE    write a folded-stack flamegraph of the same run\n"
      "  --prefetch N    loader prefetch depth (default 4)\n"
      "  --loader-workers N\n"
      "                  data-loader workers per GPU (default 3)\n"
      "\n"
      "profile and attribute accept --progress (or STASH_PROGRESS=1) for\n"
      "live step-completion reporting on stderr.\n"
      "\n"
      "fault SPEC: ';'-separated events, e.g.\n"
      "  straggler@2+5:w1:x2.5  worker 1 at half speed for t=[2,7)\n"
      "  link@4+3:m0:x0.1       machine 0 NIC at 10%% for t=[4,7)\n"
      "  disk@1+2:m0:x0.25      machine 0 SSD at 25%% for t=[1,3)\n"
      "  crash@6:m1:r30         machine 1 revoked at t=6, replaced after 30 s\n";
  return 2;
}

// A stall report whose percentages were clamped (degenerate denominators) is
// flagged in the row label; explain the marker once, on stderr, so tables
// and CSV stay machine-splittable.
std::string degenerate_mark(const profiler::StallReport& r) {
  return r.degenerate_pcts ? " [!]" : "";
}

void warn_if_degenerate(const profiler::StallReport& r) {
  if (r.degenerate_pcts)
    std::cerr << "warning: [!] stall percentages are degenerate (a profiler "
                 "step's measured window collapsed); affected values were "
                 "clamped to 0 and are not trustworthy\n";
}

// Returns the canonical dataset name for the archive grouping axis.
std::string dataset_name(const std::string& model) {
  return dnn::dataset_for(model).name;
}

// Shared --trace/--metrics/--json/--archive plumbing for profile, estimate,
// stalls, recommend and attribute.
struct TelemetrySinks {
  explicit TelemetrySinks(const util::Args& args)
      : trace_path(args.get("trace")),
        metrics_path(args.get("metrics")),
        metrics_format(args.get("metrics-format", "json")),
        archive_path(args.get("archive")),
        json(args.has("json")) {}

  // Validates the option values; returns 0 or the exit code to fail with.
  int check() const {
    if (metrics_format != "json" && metrics_format != "prom") {
      std::cerr << "unknown --metrics-format '" << metrics_format
                << "' (expected json|prom)\n";
      return 2;
    }
    return 0;
  }

  bool want_trace() const { return !trace_path.empty(); }
  // An archived record embeds a metrics snapshot, so --archive implies
  // metrics collection even without --metrics/--json.
  bool want_metrics() const {
    return !metrics_path.empty() || json || want_archive();
  }
  bool want_archive() const { return !archive_path.empty(); }

  void attach(profiler::ProfileOptions& opt) {
    if (want_trace()) opt.trace = &trace;
    if (want_metrics()) opt.metrics = &metrics;
  }

  telemetry::RunManifest manifest(const std::string& command,
                                  const util::Args& args,
                                  const std::string& model,
                                  const profiler::ClusterSpec& spec) const {
    telemetry::RunManifest man;
    man.command = command;
    man.add_config("model", model);
    man.add_config("instance", spec.instance);
    man.add_config("count", std::to_string(spec.count));
    man.add_config("batch", std::to_string(args.get_int("batch", 32)));
    if (want_metrics()) man.metrics = &metrics;
    return man;
  }

  std::string metrics_payload() const {
    return metrics_format == "prom" ? metrics.to_prometheus()
                                    : metrics.to_json() + "\n";
  }

  // Writes the --trace/--metrics side files. Returns 0, or 1 on a write
  // failure.
  int flush_files() const {
    if (want_trace() && !write_file(trace_path, trace.to_json())) return 1;
    if (!metrics_path.empty() && !write_file(metrics_path, metrics_payload()))
      return 1;
    return 0;
  }

  // flush_files() plus, under --json, the manifest to stdout.
  int flush(const telemetry::RunManifest& man) const {
    if (int rc = flush_files(); rc != 0) return rc;
    if (json) std::cout << man.to_json() << "\n";
    return 0;
  }

  // --archive: append one stash.run_record/1 built from the manifest (and,
  // when attribution ran, the blame report + folded stacks; plan/autopilot
  // attach their report as `payload`, monitor its event stream). The
  // archived manifest copy drops volatile metrics so identical runs yield
  // identical, content-addressed records; the notice goes to stderr so
  // stdout stays the machine-readable stream.
  int archive(const telemetry::RunManifest& man, const std::string& model,
              const std::string& dataset, const std::string& instance,
              int count, int batch, const obs::BlameReport* blame = nullptr,
              const std::string& payload_json = {},
              const std::string& events_jsonl = {}) const {
    if (!want_archive()) return 0;
    try {
      archive::RecordInputs in;
      in.command = man.command;
      in.model = model;
      in.dataset = dataset;
      in.instance = instance;
      in.count = count;
      in.batch = batch;
      in.config = man.config;
      telemetry::RunManifest copy = man;
      copy.include_volatile_metrics = false;
      in.manifest_json = copy.to_json();
      if (blame != nullptr) {
        in.blame_json = obs::blame_to_json(*blame);
        in.folded = obs::blame_to_folded(*blame);
      }
      in.payload_json = payload_json;
      in.events_jsonl = events_jsonl;
      archive::Archive ar(archive_path);
      archive::IndexEntry e = ar.append(in);
      std::cerr << "archived run " << e.seq << " (" << e.id << ")\n";
      return 0;
    } catch (const std::exception& e) {
      std::cerr << "error: archive append failed: " << e.what() << "\n";
      return 1;
    }
  }

  std::string trace_path;
  std::string metrics_path;
  std::string metrics_format;
  std::string archive_path;
  bool json = false;
  util::TraceRecorder trace;
  telemetry::MetricsRegistry metrics;
};

// --progress (or STASH_PROGRESS=1): live step-completion lines on stderr.
bool want_progress(const util::Args& args) {
  if (args.has("progress")) return true;
  const char* env = std::getenv("STASH_PROGRESS");
  return env != nullptr && std::string(env) == "1";
}

void emit(const util::Table& t, bool csv) {
  if (csv)
    std::cout << t.to_csv();
  else
    t.print(std::cout);
}

int cmd_catalog(const util::Args& args) {
  util::Table t({"instance", "GPUs", "GPU", "interconnect", "network (Gbps)",
                 "price/hr ($)"});
  for (const auto& i : cloud::instance_catalog()) {
    const char* ic = i.interconnect == hw::InterconnectKind::kPcieOnly ? "PCIe"
                     : i.interconnect == hw::InterconnectKind::kPcieNvlink
                         ? "PCIe+NVLink"
                         : "NVSwitch";
    t.row().cell(i.name).cell(i.num_gpus).cell(i.gpu.name).cell(ic).cell(
        util::to_gbps(i.network_bw), 0).cell(i.price_per_hour, 4);
  }
  emit(t, args.has("csv"));
  return 0;
}

int cmd_models(const util::Args& args) {
  util::Table t({"model", "params (M)", "grad tensors", "fwd GFLOPs", "dataset"});
  for (const char* name : {"alexnet", "mobilenet-v2", "squeezenet", "shufflenet",
                           "resnet18", "resnet50", "vgg11", "bert-large"}) {
    dnn::Model m = dnn::make_zoo_model(name);
    t.row().cell(name).cell(m.total_params() / 1e6, 2).cell(m.num_param_tensors())
        .cell(m.fwd_flops_per_sample() / 1e9, 2).cell(dnn::dataset_for(name).name);
  }
  emit(t, args.has("csv"));
  return 0;
}

int cmd_profile(const util::Args& args) {
  std::string model_name = args.positional(1);
  if (model_name.empty()) return usage();
  profiler::ClusterSpec spec;
  spec.instance = args.get("instance", "p3.8xlarge");
  spec.count = args.get_int("count", 1);
  if (args.has("full-quad")) spec.slice = cloud::CrossbarSlice::kFullQuad;
  int batch = args.get_int("batch", 32);

  TelemetrySinks sinks(args);
  if (int rc = sinks.check(); rc != 0) return rc;
  exec::ExecContext exec(args.get_int("jobs", 1));
  profiler::ProfileOptions opt;
  opt.exec = &exec;
  opt.prefetch_depth = args.get_int("prefetch", opt.prefetch_depth);
  opt.loader_workers_per_gpu =
      args.get_int("loader-workers", opt.loader_workers_per_gpu);
  sinks.attach(opt);
  obs::ProgressReporter progress;
  if (want_progress(args)) opt.progress = &progress;

  dnn::Model model = dnn::make_zoo_model(model_name);
  profiler::StashProfiler prof(model, dnn::dataset_for(model_name), opt);

  // Loader configuration is part of the archived config key, so perturbing
  // --prefetch between archived runs shows up in `runs diff`.
  auto profile_manifest = [&]() {
    telemetry::RunManifest man = sinks.manifest("profile", args, model_name, spec);
    man.add_config("prefetch", std::to_string(opt.prefetch_depth));
    man.add_config("loader_workers",
                   std::to_string(opt.loader_workers_per_gpu));
    return man;
  };

  if (args.has("faults")) {
    faults::FaultPlan plan = faults::FaultPlan::parse(args.get("faults"));
    profiler::FaultProfileOptions fopt;
    std::string recovery = args.get("recovery", "restart");
    if (recovery == "restart")
      fopt.policy = ddl::RecoveryPolicy::kCheckpointRestart;
    else if (recovery == "shrink")
      fopt.policy = ddl::RecoveryPolicy::kShrink;
    else {
      std::cerr << "unknown --recovery '" << recovery
                << "' (expected restart|shrink)\n";
      return 2;
    }
    fopt.barrier_timeout_s = args.get_double("timeout", fopt.barrier_timeout_s);
    fopt.checkpoint_interval_s =
        args.get_double("ckpt-interval", fopt.checkpoint_interval_s);
    fopt.checkpoint_write_s =
        args.get_double("ckpt-write", fopt.checkpoint_write_s);

    profiler::FaultProfileReport fr =
        prof.profile_under_faults(spec, batch, plan, fopt);
    if (sinks.json || sinks.want_archive()) {
      telemetry::RunManifest man = profile_manifest();
      man.add_config("faults", args.get("faults"));
      man.add_config("recovery", recovery);
      man.fault_report = fr;
      if (int rc = sinks.archive(man, model_name, dataset_name(model_name),
                                 spec.instance, spec.count, batch);
          rc != 0)
        return rc;
      if (sinks.json) return sinks.flush(man);
    }
    util::Table t({"run", "I/C %", "N/W %", "prep %", "fetch %", "fault %",
                   "epoch (s)", "epoch ($)"});
    auto row = [&t](const char* label, const profiler::StallReport& r) {
      t.row().cell(label + degenerate_mark(r)).cell(r.ic_stall_pct, 1)
          .cell(r.has_network_step ? util::format_double(r.nw_stall_pct, 1) : "-")
          .cell(r.prep_stall_pct, 1).cell(r.fetch_stall_pct, 1)
          .cell(r.fault_stall_pct, 1)
          .cell(r.epoch_seconds, 0).cell(r.epoch_cost_usd, 2);
    };
    row("healthy", fr.healthy);
    row("faulted", fr.faulted);
    emit(t, args.has("csv"));
    warn_if_degenerate(fr.healthy);
    warn_if_degenerate(fr.faulted);
    if (int rc = sinks.flush({}); rc != 0) return rc;
    if (!args.has("csv")) {
      std::cout << "epoch slowdown: " << util::format_double(fr.epoch_slowdown, 2)
                << "x   fault stall: "
                << util::format_double(fr.fault_stall_seconds, 1)
                << " s   checkpoints: " << fr.checkpoints_written << " ("
                << util::format_double(fr.checkpoint_seconds, 1)
                << " s)   gpus at end: " << fr.gpus_at_end << "\n";
      for (const auto& rec : fr.recoveries)
        std::cout << "recovery @" << util::format_double(rec.time_s, 1)
                  << " s iter " << rec.at_iteration << ": "
                  << (rec.policy == ddl::RecoveryPolicy::kCheckpointRestart
                          ? "restart"
                          : "shrink")
                  << ", workers " << rec.workers_before << "->"
                  << rec.workers_after << ", waited "
                  << util::format_double(rec.wait_seconds, 1) << " s, reworked "
                  << rec.rework_iterations << " iters\n";
    }
    return 0;
  }

  profiler::StallReport r = prof.profile(spec, batch);

  // --blame/--flame: one extra causally-instrumented warm run, walked for
  // its critical path. Kept out of the five differencing steps so the
  // profile itself stays cache-friendly.
  const std::string blame_path = args.get("blame");
  const std::string flame_path = args.get("flame");
  std::optional<obs::BlameReport> br;
  if (!blame_path.empty() || !flame_path.empty()) {
    br = profiler::attribute_step(prof, spec, profiler::Step::kRealWarm, batch);
    if (!blame_path.empty() &&
        !write_file(blame_path, obs::blame_to_json(*br) + "\n"))
      return 1;
    if (!flame_path.empty() && !write_file(flame_path, obs::blame_to_folded(*br)))
      return 1;
  }

  if (sinks.json || sinks.want_archive()) {
    telemetry::RunManifest man = profile_manifest();
    man.stall_report = r;
    if (int rc = sinks.archive(man, model_name, dataset_name(model_name),
                               spec.instance, spec.count, batch,
                               br ? &*br : nullptr);
        rc != 0)
      return rc;
    if (sinks.json) return sinks.flush(man);
  }

  util::Table t({"config", "model", "batch", "I/C %", "N/W %", "prep %", "fetch %",
                 "epoch (s)", "epoch ($)"});
  t.row().cell(r.config_label + degenerate_mark(r)).cell(r.model_name)
      .cell(r.per_gpu_batch)
      .cell(r.ic_stall_pct, 1)
      .cell(r.has_network_step ? util::format_double(r.nw_stall_pct, 1) : "-")
      .cell(r.prep_stall_pct, 1).cell(r.fetch_stall_pct, 1)
      .cell(r.epoch_seconds, 0).cell(r.epoch_cost_usd, 2);
  emit(t, args.has("csv"));
  warn_if_degenerate(r);
  return sinks.flush({});
}

// The one-line summary promised in the header: the five stall percentages
// for one model on one configuration, nothing else. Scripts can grep it;
// --csv/--json give the structured forms.
int cmd_stalls(const util::Args& args) {
  std::string model_name = args.positional(1);
  if (model_name.empty() || !args.has("instance")) return usage();
  profiler::ClusterSpec spec;
  spec.instance = args.get("instance");
  spec.count = args.get_int("count", 1);
  if (args.has("full-quad")) spec.slice = cloud::CrossbarSlice::kFullQuad;
  int batch = args.get_int("batch", 32);

  TelemetrySinks sinks(args);
  if (int rc = sinks.check(); rc != 0) return rc;
  exec::ExecContext exec(args.get_int("jobs", 1));
  profiler::ProfileOptions opt;
  opt.exec = &exec;
  sinks.attach(opt);
  profiler::StashProfiler prof(dnn::make_zoo_model(model_name),
                               dnn::dataset_for(model_name), opt);
  profiler::StallReport r = prof.profile(spec, batch);

  if (sinks.json || sinks.want_archive()) {
    telemetry::RunManifest man = sinks.manifest("stalls", args, model_name, spec);
    man.stall_report = r;
    if (int rc = sinks.archive(man, model_name, dataset_name(model_name),
                               spec.instance, spec.count, batch);
        rc != 0)
      return rc;
    if (sinks.json) return sinks.flush(man);
  }
  if (args.has("csv")) {
    util::Table t({"config", "model", "batch", "I/C %", "N/W %", "prep %",
                   "fetch %", "fault %"});
    t.row().cell(r.config_label + degenerate_mark(r)).cell(r.model_name)
        .cell(r.per_gpu_batch).cell(r.ic_stall_pct, 1)
        .cell(r.has_network_step ? util::format_double(r.nw_stall_pct, 1) : "-")
        .cell(r.prep_stall_pct, 1).cell(r.fetch_stall_pct, 1)
        .cell(r.fault_stall_pct, 1);
    std::cout << t.to_csv();
  } else {
    std::cout << r.model_name << " on " << r.config_label << " (batch "
              << r.per_gpu_batch << "): I/C "
              << util::format_double(r.ic_stall_pct, 1) << "%  N/W "
              << (r.has_network_step
                      ? util::format_double(r.nw_stall_pct, 1) + "%"
                      : "-")
              << "  prep " << util::format_double(r.prep_stall_pct, 1)
              << "%  fetch " << util::format_double(r.fetch_stall_pct, 1)
              << "%  fault " << util::format_double(r.fault_stall_pct, 1) << "%"
              << degenerate_mark(r) << "\n";
  }
  warn_if_degenerate(r);
  return sinks.flush({});
}

int cmd_recommend(const util::Args& args) {
  std::string model_name = args.positional(1);
  if (model_name.empty()) return usage();
  TelemetrySinks sinks(args);
  if (int rc = sinks.check(); rc != 0) return rc;
  exec::ExecContext exec(args.get_int("jobs", 1));
  profiler::RecommendOptions opt;
  opt.per_gpu_batch = args.get_int("batch", 32);
  opt.profile.exec = &exec;
  dnn::Model model = dnn::make_zoo_model(model_name);
  dnn::Dataset dataset = dnn::dataset_for(model_name);
  auto recs = profiler::recommend(model, dataset, opt);
  if (recs.empty()) {
    std::cerr << "no configuration fits " << model_name << " at batch "
              << opt.per_gpu_batch << "\n";
    return 1;
  }

  // recommend() strips telemetry sinks — overlaying every candidate's
  // counters in one registry would be meaningless — so the --trace/--metrics
  // payload comes from one more profile of the top-ranked configuration.
  // Cheap: its uninstrumented scenarios are already in the SimCache.
  if (sinks.want_trace() || sinks.want_metrics()) {
    profiler::ProfileOptions popt = opt.profile;
    sinks.attach(popt);
    profiler::StashProfiler winner(model, dataset, popt);
    winner.profile(recs.front().spec, opt.per_gpu_batch);
  }

  if (sinks.json || sinks.want_archive()) {
    telemetry::RunManifest man;
    man.command = "recommend";
    man.add_config("model", model_name);
    man.add_config("batch", std::to_string(opt.per_gpu_batch));
    man.add_config("winner", recs.front().spec.label());
    man.recommendations = recs;
    if (sinks.want_metrics()) man.metrics = &sinks.metrics;
    // Grouped under the winning configuration: that's the run the sweep
    // recommends and re-profiles for telemetry.
    if (int rc = sinks.archive(man, model_name, dataset.name,
                               recs.front().spec.instance,
                               recs.front().spec.count, opt.per_gpu_batch);
        rc != 0)
      return rc;
    if (sinks.json) return sinks.flush(man);
  }

  util::Table t({"config", "epoch (s)", "epoch ($)", "time rank", "cost rank"});
  for (const auto& r : recs)
    t.row().cell(r.spec.label()).cell(r.report.epoch_seconds, 0)
        .cell(r.report.epoch_cost_usd, 2).cell(r.by_time).cell(r.by_cost);
  emit(t, args.has("csv"));
  return sinks.flush_files();
}

// Causal critical-path attribution with the built-in differencing
// cross-check: the blame table is measured on one run's event graph, the
// crosscheck table shows how far each differencing estimate lands from it.
int cmd_attribute(const util::Args& args) {
  std::string model_name = args.positional(1);
  if (model_name.empty()) return usage();
  profiler::ClusterSpec spec;
  spec.instance = args.get("instance", "p3.8xlarge");
  spec.count = args.get_int("count", 1);
  if (args.has("full-quad")) spec.slice = cloud::CrossbarSlice::kFullQuad;
  int batch = args.get_int("batch", 32);

  TelemetrySinks sinks(args);
  if (int rc = sinks.check(); rc != 0) return rc;
  exec::ExecContext exec(args.get_int("jobs", 1));
  profiler::ProfileOptions opt;
  opt.exec = &exec;
  obs::ProgressReporter progress;
  if (want_progress(args)) opt.progress = &progress;

  profiler::StashProfiler prof(dnn::make_zoo_model(model_name),
                               dnn::dataset_for(model_name), opt);
  profiler::BlameProfile bp = profiler::attribute(
      prof, spec, batch, sinks.want_trace() ? &sinks.trace : nullptr);
  const obs::BlameReport& primary = bp.primary();

  const std::string flame_path = args.get("flame");
  if (!flame_path.empty() &&
      !write_file(flame_path, obs::blame_to_folded(primary)))
    return 1;
  if (int rc = sinks.flush_files(); rc != 0) return rc;

  if (sinks.want_archive()) {
    telemetry::RunManifest man =
        sinks.manifest("attribute", args, model_name, spec);
    if (int rc = sinks.archive(man, model_name, dataset_name(model_name),
                               spec.instance, spec.count, batch, &primary,
                               profiler::blame_profile_to_json(bp));
        rc != 0)
      return rc;
  }

  if (sinks.json) {
    std::cout << profiler::blame_profile_to_json(bp) << "\n";
    return 0;
  }

  const double iters = primary.measured_iterations > 0
                           ? static_cast<double>(primary.measured_iterations)
                           : 1.0;
  const double per_iter_total = primary.measured_window_s / iters;
  util::Table blame({"category", "path (ms/iter)", "share %"});
  for (std::size_t c = 0; c < obs::kBlameCategories; ++c) {
    double s = primary.per_iteration_s[c];
    if (s <= 0.0) continue;
    blame.row().cell(obs::category_name(static_cast<obs::Category>(c)))
        .cell(s * 1e3, 3)
        .cell(per_iter_total > 0.0 ? s / per_iter_total * 100.0 : 0.0, 1);
  }
  emit(blame, args.has("csv"));

  util::Table check({"stall", "differencing %", "critical path %", "delta (pp)",
                     "differencing (ms)", "path (ms)"});
  auto check_row = [&check](const char* label, const profiler::BlameCheck& c) {
    auto& row = check.row().cell(label);
    if (!c.available) {
      row.cell("-").cell("-").cell("-").cell("-").cell("-");
      return;
    }
    row.cell(c.differencing_pct, 1).cell(c.blame_pct, 1).cell(c.delta_pct(), 1)
        .cell(c.differencing_s * 1e3, 3).cell(c.blame_s * 1e3, 3);
  };
  check_row("I/C", bp.ic);
  check_row("N/W", bp.nw);
  check_row("prep", bp.prep);
  check_row("fetch", bp.fetch);
  emit(check, args.has("csv"));

  if (!args.has("csv")) {
    std::cout << "primary run: " << primary.scenario << " on "
              << primary.config_label << " ("
              << primary.measured_iterations << " measured iterations, "
              << util::format_double(per_iter_total * 1e3, 3) << " ms/iter)\n"
              << "communication: "
              << util::format_double(primary.comm_activity_s / iters * 1e3, 3)
              << " ms/iter recorded, "
              << util::format_double(primary.comm_on_path_s / iters * 1e3, 3)
              << " on the critical path, "
              << util::format_double(primary.comm_hidden_s / iters * 1e3, 3)
              << " hidden under compute\n";
    double unattrib =
        primary.per_iteration_s[static_cast<std::size_t>(
            obs::Category::kUnattributed)];
    if (unattrib > 0.0)
      std::cerr << "warning: "
                << util::format_double(unattrib * 1e3, 3)
                << " ms/iter of critical path is unattributed (instrumentation "
                   "gap)\n";
  }
  warn_if_degenerate(bp.differencing);
  return 0;
}

// Mixed spot/on-demand deployment planning: enumerate pure on-demand, pure
// spot, and k-of-n spot allocations over the candidate set, price each under
// the revocation process, and print the Pareto frontier of (expected wall,
// expected cost, p95 cost).
int cmd_plan(const util::Args& args) {
  std::string model_name = args.positional(1);
  if (model_name.empty()) return usage();

  TelemetrySinks sinks(args);
  if (int rc = sinks.check(); rc != 0) return rc;
  exec::ExecContext exec(args.get_int("jobs", 1));

  plan::PlanOptions opt;
  opt.per_gpu_batch = args.get_int("batch", 32);
  opt.epochs = args.get_int("epochs", 90);
  opt.budget_usd = args.get_double("budget", 0.0);
  opt.deadline_hours = args.get_double("deadline", 0.0);
  opt.spot.interruptions_per_hour =
      args.get_double("spot-rate", opt.spot.interruptions_per_hour);
  opt.spot.price_factor = args.get_double("spot-price", opt.spot.price_factor);
  opt.trials = args.get_int("trials", opt.trials);
  opt.seed = static_cast<std::uint64_t>(args.get_int("seed", 2026));
  opt.watchdog_timeout_s = args.get_double("watchdog-timeout", 0.0);
  if (args.has("no-calibrate")) opt.calibrate_recovery = false;
  opt.profile.exec = &exec;
  if (sinks.want_metrics()) opt.profile.metrics = &sinks.metrics;
  if (args.has("instance")) {
    profiler::ClusterSpec spec;
    spec.instance = args.get("instance");
    spec.count = args.get_int("count", 1);
    opt.candidates.push_back(spec);
  }

  dnn::Model model = dnn::make_zoo_model(model_name);
  dnn::Dataset dataset = dnn::dataset_for(model_name);
  plan::PlanReport report = plan::plan(model, dataset, opt);
  if (report.plans.empty()) {
    std::cerr << "no configuration fits " << model_name << " at batch "
              << opt.per_gpu_batch << "\n";
    return 1;
  }

  // --trace: the planner sweep runs sink-free (candidates would race one
  // registry), so the timeline comes from one instrumented warm-step run of
  // the frontier's cheapest plan — cheap, its uninstrumented twin is cached.
  if (sinks.want_trace()) {
    profiler::ProfileOptions popt = opt.profile;
    popt.metrics = nullptr;
    popt.trace = &sinks.trace;
    profiler::StashProfiler winner(model, dataset, popt);
    winner.run_step(report.cheapest_on_frontier()->spec,
                    profiler::Step::kRealWarm, opt.per_gpu_batch);
  }

  if (sinks.want_archive()) {
    telemetry::RunManifest man;
    man.command = "plan";
    man.add_config("model", model_name);
    man.add_config("batch", std::to_string(opt.per_gpu_batch));
    man.add_config("epochs", std::to_string(opt.epochs));
    man.add_config("trials", std::to_string(opt.trials));
    man.add_config("seed", std::to_string(opt.seed));
    if (sinks.want_metrics()) man.metrics = &sinks.metrics;
    // Grouped under the frontier's cheapest plan — the deployment the
    // planner would actually launch.
    const plan::CandidatePlan* best = report.cheapest_on_frontier();
    const profiler::ClusterSpec& gspec =
        best != nullptr ? best->spec : report.plans.front().spec;
    if (int rc = sinks.archive(man, model_name, dataset.name, gspec.instance,
                               gspec.count, opt.per_gpu_batch, nullptr,
                               plan::to_json(report));
        rc != 0)
      return rc;
  }

  if (sinks.json) {
    std::cout << plan::to_json(report, {},
                               sinks.want_metrics() ? &sinks.metrics : nullptr)
              << "\n";
    return sinks.flush_files();
  }

  util::Table t({"plan", "E[wall] (h)", "E[cost] ($)", "p95 cost ($)",
                 "E[interrupts]", "frontier", "feasible"});
  for (const auto& p : report.plans) {
    t.row().cell(p.label()).cell(util::to_hours(p.expected_wall_s), 2)
        .cell(p.expected_cost_usd, 2).cell(p.p95_cost_usd, 2)
        .cell(p.expected_interruptions, 1).cell(p.on_frontier ? "*" : "")
        .cell(p.meets_budget && p.meets_deadline ? "yes" : "no");
  }
  emit(t, args.has("csv"));
  if (!args.has("csv")) {
    if (!report.any_feasible)
      std::cerr << "warning: no plan meets the budget/deadline constraints; "
                   "the frontier below is the least-bad set\n";
    if (const auto* best = report.cheapest_on_frontier())
      std::cout << "frontier: " << report.frontier.size() << " of "
                << report.plans.size() << " plans; cheapest " << best->label()
                << " at $" << util::format_double(best->expected_cost_usd, 2)
                << " expected ($" << util::format_double(best->p95_cost_usd, 2)
                << " p95), " << util::format_double(util::to_hours(best->expected_wall_s), 2)
                << " h expected wall\n";
  }
  return sinks.flush_files();
}

// Elastic autopilot: simulate the whole run under sampled revocation traces
// and re-plan on every trigger; report achieved vs planned, the no-replan
// baseline, the trace-aware oracle, and per-decision regret.
int cmd_autopilot(const util::Args& args) {
  std::string model_name = args.positional(1);
  if (model_name.empty()) return usage();

  TelemetrySinks sinks(args);
  if (int rc = sinks.check(); rc != 0) return rc;
  exec::ExecContext exec(args.get_int("jobs", 1));

  policy::AutopilotOptions opt;
  try {
    opt.policy = policy::parse_policy(args.get("policy", "adaptive"));
  } catch (const std::invalid_argument& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  opt.epochs = args.get_int("epochs", opt.epochs);
  opt.per_gpu_batch = args.get_int("batch", 32);
  opt.budget_usd = args.get_double("budget", 0.0);
  opt.deadline_hours = args.get_double("deadline", 0.0);
  opt.spot.interruptions_per_hour =
      args.get_double("spot-rate", opt.spot.interruptions_per_hour);
  opt.spot.price_factor = args.get_double("spot-price", opt.spot.price_factor);
  opt.trials = args.get_int("trials", opt.trials);
  opt.plan_trials = args.get_int("plan-trials", opt.plan_trials);
  opt.seed = static_cast<std::uint64_t>(args.get_int("seed", 2026));
  opt.floor_machines = args.get_int("floor", opt.floor_machines);
  opt.min_machines = args.get_int("min-machines", opt.min_machines);
  opt.max_retries = args.get_int("max-retries", opt.max_retries);
  opt.watchdog_timeout_s = args.get_double("watchdog-timeout", 0.0);
  opt.nw_blame_threshold =
      args.get_double("blame-threshold", opt.nw_blame_threshold);
  try {
    opt.trigger_mode =
        policy::parse_trigger_mode(args.get("triggers", "threshold"));
  } catch (const std::invalid_argument& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  if (args.has("faults"))
    opt.scripted_faults = faults::FaultPlan::parse(args.get("faults"));
  if (args.has("instance")) {
    opt.initial_spec.instance = args.get("instance");
    opt.initial_spec.count = args.get_int("count", 1);
    opt.initial_spot_machines = args.get_int("spot-machines", -1);
  }
  opt.profile.exec = &exec;

  dnn::Model model = dnn::make_zoo_model(model_name);
  dnn::Dataset dataset = dnn::dataset_for(model_name);
  policy::AutopilotReport report = policy::run_autopilot(model, dataset, opt);
  policy::record_telemetry(report,
                           sinks.want_metrics() ? &sinks.metrics : nullptr,
                           sinks.want_trace() ? &sinks.trace : nullptr);

  if (sinks.want_archive()) {
    telemetry::RunManifest man;
    man.command = "autopilot";
    man.add_config("model", model_name);
    man.add_config("policy", args.get("policy", "adaptive"));
    man.add_config("batch", std::to_string(opt.per_gpu_batch));
    man.add_config("epochs", std::to_string(opt.epochs));
    man.add_config("trials", std::to_string(opt.trials));
    man.add_config("seed", std::to_string(opt.seed));
    if (sinks.want_metrics()) man.metrics = &sinks.metrics;
    const profiler::ClusterSpec& gspec = report.initial_fleet.spec;
    if (int rc = sinks.archive(man, model_name, dataset.name, gspec.instance,
                               gspec.count, opt.per_gpu_batch, nullptr,
                               policy::to_json(report));
        rc != 0)
      return rc;
  }

  if (sinks.json) {
    std::cout << policy::to_json(report, {},
                                 sinks.want_metrics() ? &sinks.metrics : nullptr)
              << "\n";
    return sinks.flush_files();
  }

  util::Table t({"trial", "revocs", "decisions", "achieved (h)", "achieved ($)",
                 "baseline (h)", "baseline ($)", "oracle ($)", "regret ($)",
                 "floor", "final fleet"});
  int i = 0;
  for (const auto& tr : report.trials)
    t.row().cell(i++).cell(tr.revocations)
        .cell(static_cast<int>(tr.decisions.size()))
        .cell(util::to_hours(tr.achieved_wall_s), 2).cell(tr.achieved_cost_usd, 2)
        .cell(util::to_hours(tr.baseline_wall_s), 2).cell(tr.baseline_cost_usd, 2)
        .cell(tr.oracle_cost_usd, 2).cell(tr.total_regret, 2)
        .cell(tr.degraded_to_floor ? "yes" : "no").cell(tr.final_fleet);
  emit(t, args.has("csv"));
  if (!args.has("csv")) {
    std::cout << "initial fleet " << report.initial_fleet.label()
              << "; planned "
              << util::format_double(util::to_hours(report.planned_wall_s), 2)
              << " h / $" << util::format_double(report.planned_cost_usd, 2)
              << "\nmean achieved "
              << util::format_double(util::to_hours(report.mean_achieved_wall_s), 2)
              << " h / $"
              << util::format_double(report.mean_achieved_cost_usd, 2)
              << " (baseline $"
              << util::format_double(report.mean_baseline_cost_usd, 2)
              << ", oracle $"
              << util::format_double(report.mean_oracle_cost_usd, 2)
              << ", mean regret $"
              << util::format_double(report.mean_regret, 2) << ")\n"
              << "beats the no-replan baseline on wall in "
              << report.trials_beating_baseline_wall << "/"
              << report.trials.size() << " trials, on cost in "
              << report.trials_beating_baseline_cost << "/"
              << report.trials.size() << "; "
              << report.trials_degraded_to_floor
              << " degraded to the on-demand floor\n";
  }
  return sinks.flush_files();
}

// Online observability: one warm-data training simulation with the
// streaming stall monitor attached live. stdout carries the table (or the
// stash.monitor/1 JSONL under --json); --live renders a stderr dashboard
// that never touches the machine-readable stream.
int cmd_monitor(const util::Args& args) {
  std::string model_name = args.positional(1);
  if (model_name.empty()) return usage();

  TelemetrySinks sinks(args);
  if (int rc = sinks.check(); rc != 0) return rc;
  // --jobs is accepted for interface uniformity: the monitored run is one
  // live serial simulation, so every N yields the same bytes by construction.
  (void)args.get_int("jobs", 1);

  monitor::MonitorOptions opt;
  opt.spec.instance = args.get("instance", "p3.8xlarge");
  opt.spec.count = args.get_int("count", 1);
  if (args.has("full-quad")) opt.spec.slice = cloud::CrossbarSlice::kFullQuad;
  opt.per_gpu_batch = args.get_int("batch", 32);
  opt.iterations = args.get_int("iters", opt.iterations);
  opt.warmup_iterations = args.get_int("warmup", opt.warmup_iterations);
  opt.monitor.window = static_cast<std::size_t>(
      args.get_int("window", static_cast<int>(opt.monitor.window)));
  opt.faults_spec = args.get("faults");
  std::string recovery = args.get("recovery", "restart");
  if (recovery == "restart")
    opt.recovery.policy = ddl::RecoveryPolicy::kCheckpointRestart;
  else if (recovery == "shrink")
    opt.recovery.policy = ddl::RecoveryPolicy::kShrink;
  else {
    std::cerr << "unknown --recovery '" << recovery
              << "' (expected restart|shrink)\n";
    return 2;
  }
  opt.recovery.barrier_timeout_s =
      args.get_double("timeout", opt.recovery.barrier_timeout_s);

  monitor::StallMonitor mon(opt.monitor);
  dnn::Model model = dnn::make_zoo_model(model_name);
  dnn::Dataset dataset = dnn::dataset_for(model_name);

  obs::ProgressReporter progress;
  std::optional<monitor::LiveDashboard> dash;
  if (args.has("live")) dash.emplace(mon, progress, opt.iterations);

  monitor::MonitorRunReport report = monitor::run_monitor(
      model, dataset, opt, mon, dash ? &*dash : nullptr,
      sinks.want_trace() ? &sinks.trace : nullptr,
      sinks.want_metrics() ? &sinks.metrics : nullptr);
  if (dash) dash->finish();

  if (sinks.want_trace()) monitor::annotate_monitor_trace(report, sinks.trace);
  if (sinks.want_metrics())
    monitor::record_monitor_metrics(report, sinks.metrics);

  const std::string jsonl = monitor::monitor_to_jsonl(report);
  const std::string events_path = args.get("events");
  if (!events_path.empty() && !write_file(events_path, jsonl)) return 1;
  if (sinks.want_trace() && !write_file(sinks.trace_path, sinks.trace.to_json()))
    return 1;
  if (!sinks.metrics_path.empty()) {
    // The prom snapshot is prefixed with the per-window streaming blocks —
    // the scrape-shaped view of the run as it unfolded.
    const std::string payload =
        sinks.metrics_format == "prom"
            ? report.openmetrics + sinks.metrics.to_prometheus()
            : sinks.metrics.to_json() + "\n";
    if (!write_file(sinks.metrics_path, payload)) return 1;
  }

  if (sinks.want_archive()) {
    telemetry::RunManifest man =
        sinks.manifest("monitor", args, model_name, opt.spec);
    man.add_config("iters", std::to_string(opt.iterations));
    man.add_config("window", std::to_string(opt.monitor.window));
    if (!opt.faults_spec.empty()) man.add_config("faults", opt.faults_spec);
    if (int rc = sinks.archive(man, model_name, dataset.name,
                               opt.spec.instance, opt.spec.count,
                               opt.per_gpu_batch, nullptr, {}, jsonl);
        rc != 0)
      return rc;
  }

  if (sinks.json) {
    std::cout << jsonl;
    return 0;
  }

  util::Table ev_table({"event", "detector", "signal", "onset it", "detect it",
                        "latency", "sigma"});
  for (const auto& ev : report.events)
    ev_table.row().cell(monitor::to_string(ev.kind))
        .cell(monitor::to_string(ev.detector)).cell(ev.signal)
        .cell(ev.onset_iteration).cell(ev.detect_iteration)
        .cell(ev.latency_iterations).cell(ev.magnitude_sigma, 1);
  emit(ev_table, args.has("csv"));
  if (!args.has("csv")) {
    const monitor::Snapshot& snap = report.final_snapshot;
    std::cout << report.model_name << " on " << report.config_label
              << " (batch " << report.per_gpu_batch << "): "
              << report.samples.size() << " samples, "
              << util::format_double(snap.window_iters_per_s, 2)
              << " it/s windowed, " << report.events.size() << " events ("
              << report.live_events << " live), " << report.recoveries.size()
              << " recoveries, comm blame share "
              << util::format_double(snap.comm_blame_share * 100.0, 1)
              << "%\n";
  }
  return 0;
}

// Query side of the archive: list the index, print a record, diff two runs
// structurally, or replay the drift detectors over each group's time
// series. All output is a pure function of the archive contents — no
// paths, no clocks — so archives with identical bytes report identically.
int cmd_runs(const util::Args& args) {
  const std::string sub = args.positional(1);
  if (sub.empty()) return usage();
  const std::string dir = args.get("archive");
  if (dir.empty()) {
    std::cerr << "runs " << sub << ": --archive DIR is required\n";
    return 2;
  }
  archive::Archive ar(dir);

  if (sub == "list") {
    util::Table t({"seq", "id", "command", "model", "dataset", "instance",
                   "count", "batch", "group"});
    for (const auto& e : ar.list())
      t.row().cell(static_cast<int>(e.seq)).cell(e.id).cell(e.command)
          .cell(e.model).cell(e.dataset).cell(e.instance).cell(e.count)
          .cell(e.batch).cell(e.group_key.substr(0, 8));
    emit(t, args.has("csv"));
    return 0;
  }

  if (sub == "show") {
    const std::string ref = args.positional(2);
    if (ref.empty()) return usage();
    std::cout << ar.read_raw(ar.resolve(ref).id);
    return 0;
  }

  if (sub == "diff") {
    const std::string ra = args.positional(2);
    const std::string rb = args.positional(3);
    if (ra.empty() || rb.empty()) return usage();
    const archive::IndexEntry ea = ar.resolve(ra);
    const archive::IndexEntry eb = ar.resolve(rb);
    const archive::RunDiff d =
        archive::diff_records(ea, ar.load(ea.id), eb, ar.load(eb.id));
    const std::string flame_path = args.get("flame");
    if (!flame_path.empty() &&
        !write_file(flame_path, archive::diff_to_folded(d)))
      return 1;
    if (args.has("json")) {
      std::cout << archive::diff_to_json(d) << "\n";
      return 0;
    }
    if (!d.config_changes.empty()) {
      util::Table ct({"config", "a", "b"});
      for (const auto& c : d.config_changes)
        ct.row().cell(c.key).cell(c.a_present ? c.a : "-")
            .cell(c.b_present ? c.b : "-");
      emit(ct, args.has("csv"));
    }
    if (d.has_stalls) {
      util::Table st({"stall", "a %", "b %", "delta (pp)"});
      for (const auto& s : d.stalls)
        st.row().cell(s.category).cell(s.a_pct, 1).cell(s.b_pct, 1)
            .cell(s.delta_pct, 1);
      emit(st, args.has("csv"));
    }
    if (!args.has("csv")) {
      std::size_t changed = 0;
      for (const auto& m : d.metrics)
        if (m.delta != 0.0 || !m.a_present || !m.b_present) ++changed;
      std::cout << "runs " << d.a.seq << " -> " << d.b.seq
                << (d.same_group ? "" : " (different groups)") << ": "
                << changed << "/" << d.metrics.size() << " metrics changed";
      if (d.has_folded) {
        std::size_t moved = 0;
        for (const auto& f : d.folded)
          if (f.delta_us != 0.0) ++moved;
        std::cout << ", " << moved << "/" << d.folded.size()
                  << " folded stacks moved";
      }
      std::cout << "\n";
    }
    return 0;
  }

  if (sub == "drift") {
    // --jobs accepted for interface uniformity; the scan is one serial
    // replay, so every N yields the same bytes by construction.
    (void)args.get_int("jobs", 1);
    const archive::DriftReport report = archive::scan_archive(ar);
    const std::string metrics_path = args.get("metrics");
    if (!metrics_path.empty() &&
        !write_file(metrics_path, archive::drift_to_openmetrics(report)))
      return 1;
    if (args.has("json")) {
      std::cout << archive::drift_to_json(report) << "\n";
      return 0;
    }
    util::Table t({"group", "signal", "dir", "detectors", "onset", "detect",
                   "baseline", "observed", "sigma"});
    for (const auto& f : report.findings) {
      std::string g = f.model + "@" + f.instance;
      if (f.count > 1) g += "*" + std::to_string(f.count);
      g += " b" + std::to_string(f.batch);
      t.row().cell(g).cell(f.signal).cell(f.increase ? "up" : "down")
          .cell(f.detectors).cell(static_cast<int>(f.onset_seq))
          .cell(static_cast<int>(f.detect_seq)).cell(f.baseline_mean, 2)
          .cell(f.observed, 2).cell(f.magnitude_sigma, 1);
    }
    emit(t, args.has("csv"));
    if (!args.has("csv")) {
      std::size_t runs = 0;
      for (const auto& g : report.groups) runs += g.runs;
      if (report.findings.empty())
        std::cout << "no drift detected across " << report.groups.size()
                  << " group(s), " << runs << " archived run(s)\n";
      else
        std::cout << report.findings.size() << " drift finding(s) across "
                  << report.groups.size() << " group(s), " << runs
                  << " archived run(s)\n";
    }
    return 0;
  }

  std::cerr << "unknown runs subcommand '" << sub
            << "' (expected list|show|diff|drift)\n";
  return 2;
}

int cmd_estimate(const util::Args& args) {
  std::string model_name = args.positional(1);
  if (model_name.empty()) return usage();
  profiler::ClusterSpec spec;
  spec.instance = args.get("instance", "p3.8xlarge");
  spec.count = args.get_int("count", 1);
  int batch = args.get_int("batch", 32);
  int epochs = args.get_int("epochs", 90);

  TelemetrySinks sinks(args);
  if (int rc = sinks.check(); rc != 0) return rc;
  exec::ExecContext exec(args.get_int("jobs", 1));
  profiler::ProfileOptions opt;
  opt.exec = &exec;
  sinks.attach(opt);
  profiler::StashProfiler prof(dnn::make_zoo_model(model_name),
                               dnn::dataset_for(model_name), opt);
  auto est = profiler::estimate_training(prof, spec, batch, epochs);

  if (sinks.json || sinks.want_archive()) {
    telemetry::RunManifest man = sinks.manifest("estimate", args, model_name, spec);
    man.add_config("epochs", std::to_string(epochs));
    man.estimate = est;
    if (int rc = sinks.archive(man, model_name, dataset_name(model_name),
                               spec.instance, spec.count, batch);
        rc != 0)
      return rc;
    if (sinks.json) return sinks.flush(man);
  }

  util::Table t({"config", "epochs", "cold epoch (s)", "steady epoch (s)",
                 "total (h)", "cost ($)", "pricing"});
  t.row().cell(est.config_label).cell(est.epochs).cell(est.first_epoch_seconds, 0)
      .cell(est.steady_epoch_seconds, 0).cell(util::to_hours(est.total_seconds), 2)
      .cell(est.total_cost_usd, 2).cell("on-demand");
  if (args.has("spot")) {
    std::string mode = args.get("spot-mode", "analytic");
    if (mode == "replay") {
      // Event-driven estimate: measure iteration time and the per-revocation
      // recovery cost by running an actual crash through the trainer.
      auto replay = profiler::replay_spot_run(prof, spec, batch,
                                              est.total_seconds,
                                              cloud::SpotConfig{}, 2026);
      t.row().cell(est.config_label).cell(est.epochs).cell("-").cell("-")
          .cell(util::to_hours(replay.outcome.wall_seconds), 2)
          .cell(replay.outcome.cost_usd, 2).cell("spot (event-driven replay)");
    } else if (mode == "analytic") {
      auto spot = cloud::mean_spot_outcome(est.total_seconds,
                                           cloud::instance(spec.instance),
                                           spec.count, cloud::SpotConfig{}, 2026);
      t.row().cell(est.config_label).cell(est.epochs).cell("-").cell("-")
          .cell(util::to_hours(spot.wall_seconds), 2).cell(spot.cost_usd, 2)
          .cell("spot (mean of 25 draws)");
    } else {
      std::cerr << "unknown --spot-mode '" << mode
                << "' (expected analytic|replay)\n";
      return 2;
    }
  }
  emit(t, args.has("csv"));
  return sinks.flush({});
}

// Client side of the stash_serve daemon: build a stash.serve_request/1 from
// the command line, send it over the daemon's socket, print the response
// JSON. Every option other than the connection ones forwards as a request
// param ('-' becomes '_'), typed by inference: bare flags become true,
// integers and decimals become numbers, everything else a string.
//
//   stash_cli query profile --socket /tmp/stash.sock --model resnet18
//   stash_cli query estimate --port 7457 --model vgg11 --epochs 30
int cmd_query(const util::Args& args) {
  const std::string command = args.positional(1);
  if (command.empty()) return usage();
  const std::string socket_path = args.get("socket");
  const bool have_port = args.has("port");
  if (socket_path.empty() && !have_port) {
    std::cerr << "query needs --socket PATH or --port P\n";
    return 2;
  }

  util::JsonWriter w;
  w.begin_object();
  w.key("schema").value("stash.serve_request/1");
  w.key("id").value("stash_cli");
  w.key("command").value(command);
  w.key("params").begin_object();
  for (const auto& [key, value] : args.options()) {
    if (key == "socket" || key == "port") continue;
    std::string name = key;
    for (char& c : name)
      if (c == '-') c = '_';
    w.key(name);
    if (value.empty())
      w.value(true);  // bare flag, e.g. --full-quad
    else if (auto i = util::parse_int(value))
      w.value(*i);
    else if (auto d = util::parse_double(value))
      w.value(*d);
    else if (value == "true" || value == "false")
      w.value(value == "true");
    else
      w.value(value);
  }
  w.end_object();
  w.end_object();

  serve::Client client = socket_path.empty()
                             ? serve::Client::connect_tcp(args.get_int("port", 0))
                             : serve::Client::connect_unix(socket_path);
  const std::string response = client.roundtrip(w.str());
  std::cout << response << "\n";

  // Exit code mirrors the response status so scripts can branch without
  // parsing: 0 ok, 1 error, 3 overloaded (retryable).
  util::JsonValue doc = util::json_parse(response);
  const std::string status = doc.get("status").as_string();
  if (status == "ok") return 0;
  if (status == "overloaded") return 3;
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  // Piping into `head` must end the program quietly, not kill it: ignore
  // SIGPIPE so a closed stdout surfaces as EPIPE on write instead.
  std::signal(SIGPIPE, SIG_IGN);
  int rc;
  try {
    util::Args args(argc, argv, kFlags);
    std::string cmd = args.positional(0);
    if (cmd == "catalog") rc = cmd_catalog(args);
    else if (cmd == "models") rc = cmd_models(args);
    else if (cmd == "profile") rc = cmd_profile(args);
    else if (cmd == "attribute") rc = cmd_attribute(args);
    else if (cmd == "recommend") rc = cmd_recommend(args);
    else if (cmd == "estimate") rc = cmd_estimate(args);
    else if (cmd == "stalls") rc = cmd_stalls(args);
    else if (cmd == "plan") rc = cmd_plan(args);
    else if (cmd == "autopilot") rc = cmd_autopilot(args);
    else if (cmd == "monitor") rc = cmd_monitor(args);
    else if (cmd == "runs") rc = cmd_runs(args);
    else if (cmd == "query") rc = cmd_query(args);
    else rc = usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  // EPIPE on stdout (the reader went away) is a clean early exit, not a
  // failure — the classic `stash_cli runs list | head -1` case.
  errno = 0;
  std::cout.flush();
  if (std::cout.fail() && errno == EPIPE) return 0;
  return rc;
}
