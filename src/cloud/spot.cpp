#include "cloud/spot.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include <cmath>

#include "util/log.h"

namespace stash::cloud {

void SpotConfig::validate() const {
  if (!(price_factor > 0.0) || price_factor > 1.0 || !std::isfinite(price_factor))
    throw std::invalid_argument("SpotConfig: price_factor must be in (0, 1]");
  if (interruptions_per_hour < 0.0 || !std::isfinite(interruptions_per_hour))
    throw std::invalid_argument(
        "SpotConfig: interruptions_per_hour must be finite and >= 0");
  if (restart_overhead_s < 0.0 || !std::isfinite(restart_overhead_s))
    throw std::invalid_argument("SpotConfig: restart_overhead_s must be >= 0");
  if (!(checkpoint_interval_s > 0.0) || !std::isfinite(checkpoint_interval_s))
    throw std::invalid_argument(
        "SpotConfig: checkpoint_interval_s must be positive");
  if (checkpoint_write_s < 0.0 || !std::isfinite(checkpoint_write_s))
    throw std::invalid_argument("SpotConfig: checkpoint_write_s must be >= 0");
}

SpotOutcome simulate_spot_run(double work_seconds, const InstanceType& type,
                              int count, const SpotConfig& config, util::Rng& rng) {
  if (work_seconds < 0.0) throw std::invalid_argument("negative work_seconds");
  if (count < 1) throw std::invalid_argument("count < 1");
  config.validate();

  SpotOutcome out;
  double remaining = work_seconds;
  double since_checkpoint = 0.0;
  // Fleet-below-k guard: at extreme interruption rates the expected
  // progress per revocation cycle goes negative (every interval's work is
  // lost before a checkpoint commits), so `remaining` grows without bound.
  // After this many consecutive revocations with no net progress the run
  // degrades to the on-demand floor instead of spinning forever.
  constexpr int kMaxBarrenInterruptions = 8;
  int barren = 0;
  double remaining_at_last_revocation = std::numeric_limits<double>::infinity();

  while (remaining > 0.0) {
    // Time to the next interruption (infinite when the rate is zero).
    double next_interruption =
        config.interruptions_per_hour > 0.0
            ? rng.exponential(3600.0 / config.interruptions_per_hour)
            : std::numeric_limits<double>::infinity();

    // Progress until we finish or get revoked, paying a checkpoint write
    // every interval.
    double until_checkpoint = config.checkpoint_interval_s - since_checkpoint;
    double step = std::min({remaining, next_interruption, until_checkpoint});

    out.wall_seconds += step;
    remaining -= step;
    since_checkpoint += step;

    if (remaining <= 0.0) break;

    if (step == next_interruption) {
      // Revoked: lose the work since the last checkpoint, pay reprovision.
      ++out.interruptions;
      out.lost_work_seconds += since_checkpoint;
      remaining += since_checkpoint;
      since_checkpoint = 0.0;
      out.wall_seconds += config.restart_overhead_s;
      barren = remaining >= remaining_at_last_revocation ? barren + 1 : 0;
      remaining_at_last_revocation = remaining;
      if (barren >= kMaxBarrenInterruptions) {
        util::log_warn("simulate_spot_run: ", barren,
                       " consecutive revocations without net progress; "
                       "degrading to the on-demand floor for the remaining ",
                       remaining, " s of work");
        out.degraded_to_floor = true;
        out.floor_wall_seconds = remaining;
        out.wall_seconds += remaining;
        remaining = 0.0;
      }
    } else if (since_checkpoint >= config.checkpoint_interval_s) {
      out.wall_seconds += config.checkpoint_write_s;
      out.lost_work_seconds += config.checkpoint_write_s;
      since_checkpoint = 0.0;
    }
  }

  // The degraded tail (if any) is billed at the on-demand price; the spot
  // portion keeps the discount.
  const double spot_wall = out.wall_seconds - out.floor_wall_seconds;
  out.cost_usd = cost_usd(type, spot_wall, count) * config.price_factor +
                 cost_usd(type, out.floor_wall_seconds, count);
  return out;
}

SpotOutcome mean_spot_outcome(double work_seconds, const InstanceType& type,
                              int count, const SpotConfig& config,
                              std::uint64_t seed, int trials) {
  if (trials < 1) throw std::invalid_argument("trials < 1");
  SpotOutcome mean;
  util::Rng root(seed);
  for (int t = 0; t < trials; ++t) {
    util::Rng rng = root.child(static_cast<std::uint64_t>(t));
    SpotOutcome o = simulate_spot_run(work_seconds, type, count, config, rng);
    mean.wall_seconds += o.wall_seconds;
    mean.cost_usd += o.cost_usd;
    mean.interruptions += o.interruptions;
    mean.lost_work_seconds += o.lost_work_seconds;
    mean.floor_wall_seconds += o.floor_wall_seconds;
    if (o.degraded_to_floor) mean.degraded_to_floor = true;
  }
  mean.wall_seconds /= trials;
  mean.cost_usd /= trials;
  mean.lost_work_seconds /= trials;
  mean.floor_wall_seconds /= trials;
  mean.interruptions = static_cast<int>(mean.interruptions / trials);
  return mean;
}

}  // namespace stash::cloud
