// Spot / transient instance cost model.
//
// The paper's cost analysis prices on-demand instances; its related work
// (§III, [48]) studies DDL on transient cloud instances that are cheaper
// but "frequently revoked". This Monte-Carlo model answers the tenant's
// follow-up question: given a job's on-demand wall time (from a Stash
// estimate), what do spot interruptions do to its wall time and bill?
//
// Interruptions arrive as a Poisson process; the job checkpoints
// periodically, loses the work since the last checkpoint on every
// interruption, and pays a reprovision delay before resuming.
#pragma once

#include <cstdint>

#include "cloud/instance.h"
#include "util/rng.h"

namespace stash::cloud {

struct SpotConfig {
  // Spot price as a fraction of on-demand (historical AWS spot ~0.3).
  double price_factor = 0.3;
  // Mean interruptions per hour of runtime (Poisson rate).
  double interruptions_per_hour = 0.2;
  // Time to get a replacement instance and reload state.
  double restart_overhead_s = 600.0;
  // Checkpoint cadence and the stall each checkpoint write causes.
  double checkpoint_interval_s = 900.0;
  double checkpoint_write_s = 20.0;

  // Throws std::invalid_argument with a field-specific message on nonsense
  // values (negative rates, zero intervals, out-of-range price factor).
  void validate() const;
};

struct SpotOutcome {
  double wall_seconds = 0.0;  // end-to-end, including restarts/rework
  double cost_usd = 0.0;      // billed at the spot price
  int interruptions = 0;
  double lost_work_seconds = 0.0;  // recomputed work + checkpoint writes
  // Set when the revocation process outpaced checkpoint progress (several
  // consecutive interruptions with no net work retained): instead of
  // looping forever the run degrades to an on-demand floor — interruptions
  // stop and the remaining work runs (and is billed) at the on-demand
  // price. floor_wall_seconds is that tail; it is included in wall_seconds.
  bool degraded_to_floor = false;
  double floor_wall_seconds = 0.0;
};

// One sampled run that needs `work_seconds` of useful compute on `count`
// instances of `type`. Deterministic given the Rng state.
//
// This is the closed-form rework model (lost work = time since the last
// checkpoint, restarts cost a flat overhead) — cheap enough for catalog
// sweeps. The event-driven counterpart, which runs actual revocations
// through the ddl::Trainer's crash-recovery machinery (barrier-watchdog
// detection, checkpoint replay at simulated speed), is
// stash::profiler::replay_spot_run in stash/spot_replay.h.
SpotOutcome simulate_spot_run(double work_seconds, const InstanceType& type,
                              int count, const SpotConfig& config, util::Rng& rng);

// Convenience: mean outcome over `trials` independent runs.
SpotOutcome mean_spot_outcome(double work_seconds, const InstanceType& type,
                              int count, const SpotConfig& config,
                              std::uint64_t seed, int trials = 25);

}  // namespace stash::cloud
