// Crossbar allocation policy for partial-machine instances.
//
// A p3.8xlarge is four V100s carved out of an eight-GPU crossbar machine
// (paper Fig 1). If AWS hands the tenant a full quad, the NVLink ring is
// complete; if other tenants already hold GPUs in both quads, the slice is
// fragmented and the ring must cross PCIe, raising interconnect stalls.
// The paper theorizes this is why p3.8xlarge does not have strictly lower
// interconnect stalls than p3.16xlarge (§V-B1) and calls the trait
// "probabilistic"; the policy models that coin flip.
#pragma once

#include <utility>
#include <vector>

#include "util/rng.h"

namespace stash::cloud {

enum class CrossbarSlice {
  kFullQuad,    // {0,1,2,3}: fully NVLink-connected ring
  kFragmented,  // {0,1,2,4}: one GPU from the far quad, ring crosses PCIe
};

// NVLink adjacency (relabelled to local ids 0..3) for a 4-GPU slice of the
// 8-GPU hybrid cube mesh.
std::vector<std::pair<int, int>> slice_nvlink_pairs(CrossbarSlice slice);

struct AllocationPolicy {
  // Probability that a 4-GPU request lands on an unfragmented quad. The
  // paper observed fragmented allocations in its measurements.
  double full_quad_probability = 0.3;

  CrossbarSlice sample(util::Rng& rng) const {
    return rng.bernoulli(full_quad_probability) ? CrossbarSlice::kFullQuad
                                                : CrossbarSlice::kFragmented;
  }
};

}  // namespace stash::cloud
