// Maps catalog instance types onto simulated hardware.
#pragma once

#include <string>
#include <vector>

#include "cloud/allocation.h"
#include "cloud/instance.h"
#include "hw/topology.h"

namespace stash::cloud {

// Hardware description of one instance. `slice` matters only for 4-GPU
// NVLink types (p3.8xlarge); the paper's measured behaviour corresponds to
// kFragmented, which is the default.
hw::MachineConfig machine_config_for(const InstanceType& type,
                                     CrossbarSlice slice = CrossbarSlice::kFragmented);

// `count` identical instances joined by the placement-group fabric.
std::vector<hw::MachineConfig> cluster_configs_for(
    const InstanceType& type, int count,
    CrossbarSlice slice = CrossbarSlice::kFragmented);

// Placement-group fabric bandwidth: generous enough that per-instance NICs
// are the constraint, like AWS cluster placement groups.
double fabric_bandwidth();

}  // namespace stash::cloud
