// AWS GPU instance catalog (paper Table I, N. Virginia pricing).
#pragma once

#include <string>
#include <vector>

#include "hw/gpu.h"
#include "hw/topology.h"

namespace stash::cloud {

struct InstanceType {
  std::string name;    // e.g. "p3.16xlarge"
  std::string family;  // "P2", "P3", "P4"
  int num_gpus = 0;
  hw::GpuSpec gpu;
  hw::InterconnectKind interconnect = hw::InterconnectKind::kPcieOnly;
  double network_bw = 0.0;      // bytes/s (Table I "Network Bandwidth")
  int vcpus = 0;
  double main_memory = 0.0;     // bytes
  double gpu_memory_total = 0.0;
  double price_per_hour = 0.0;  // USD
  bool dedicated = false;       // p3.24xlarge / P4 dedicated offerings

  // Hardware constants behind the spec sheet (DESIGN.md §6).
  double pcie_lane_bw = 0.0;    // per-GPU PCIe bandwidth
  double host_bridge_bw = 0.0;  // shared root complex; constant per family
  double nvlink_bw = 0.0;
  double ssd_bw = 0.0;
  double ssd_latency = 0.0;
};

// All Table I rows.
const std::vector<InstanceType>& instance_catalog();

// Lookup by name; throws std::invalid_argument for unknown instances.
const InstanceType& instance(const std::string& name);

// Billing: USD for running `count` instances for `seconds` (per-second
// billing, as AWS bills Linux instances).
double cost_usd(const InstanceType& type, double seconds, int count = 1);

}  // namespace stash::cloud
