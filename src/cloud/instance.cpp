#include "cloud/instance.h"

#include <stdexcept>

#include "util/units.h"

namespace stash::cloud {

using hw::InterconnectKind;
using util::gb_per_s;
using util::gbps;
using util::gib;
using util::mb_per_s;

namespace {

std::vector<InstanceType> build_catalog() {
  std::vector<InstanceType> catalog;

  auto add = [&](InstanceType t) { catalog.push_back(std::move(t)); };

  // ---- P2 family: K80 GPUs on a PCIe gen-3 tree. The host bridge is the
  // same 24 GB/s root complex for 8xlarge and 16xlarge — doubling the GPUs
  // "slices" the per-GPU share (paper Fig 7, §V-A1).
  InstanceType p2;
  p2.family = "P2";
  p2.gpu = hw::k80_spec();
  p2.interconnect = InterconnectKind::kPcieOnly;
  p2.pcie_lane_bw = gb_per_s(10);
  p2.ssd_bw = mb_per_s(200);  // gp2 EBS volume, sustained (post-burst) throughput
  p2.ssd_latency = 0.5e-3;

  p2.name = "p2.xlarge";
  p2.num_gpus = 1;
  p2.vcpus = 4;
  p2.main_memory = gib(61);
  p2.gpu_memory_total = gib(12);
  p2.network_bw = gbps(7);  // "up to 10 Gbps": sustained baseline is lower
  p2.price_per_hour = 0.90;
  p2.host_bridge_bw = gb_per_s(10);  // single GPU owns its lane
  add(p2);

  p2.name = "p2.8xlarge";
  p2.num_gpus = 8;
  p2.vcpus = 32;
  p2.main_memory = gib(488);
  p2.gpu_memory_total = gib(96);
  p2.network_bw = gbps(10);
  p2.price_per_hour = 7.20;
  p2.host_bridge_bw = gb_per_s(24);
  add(p2);

  p2.name = "p2.16xlarge";
  p2.num_gpus = 16;
  p2.vcpus = 64;
  p2.main_memory = gib(732);
  p2.gpu_memory_total = gib(192);
  p2.network_bw = gbps(25);
  p2.price_per_hour = 14.40;
  p2.host_bridge_bw = gb_per_s(24);  // same bridge as 8xlarge
  add(p2);

  // ---- P3 family: V100 GPUs; multi-GPU types add an NVLink crossbar.
  InstanceType p3;
  p3.family = "P3";
  p3.gpu = hw::v100_spec();
  p3.pcie_lane_bw = gb_per_s(12);
  p3.nvlink_bw = gb_per_s(22);
  p3.ssd_bw = mb_per_s(200);
  p3.ssd_latency = 0.5e-3;

  p3.name = "p3.2xlarge";
  p3.interconnect = InterconnectKind::kPcieOnly;
  p3.num_gpus = 1;
  p3.vcpus = 8;
  p3.main_memory = gib(61);
  p3.gpu_memory_total = gib(16);
  p3.network_bw = gbps(7);  // "up to 10"
  p3.price_per_hour = 3.06;
  p3.host_bridge_bw = gb_per_s(12);
  add(p3);

  p3.interconnect = InterconnectKind::kPcieNvlink;
  p3.name = "p3.8xlarge";
  p3.num_gpus = 4;
  p3.vcpus = 32;
  p3.main_memory = gib(244);
  p3.gpu_memory_total = gib(64);
  p3.network_bw = gbps(10);
  p3.price_per_hour = 12.24;
  p3.host_bridge_bw = gb_per_s(24);
  add(p3);

  p3.name = "p3.16xlarge";
  p3.num_gpus = 8;
  p3.vcpus = 64;
  p3.main_memory = gib(488);
  p3.gpu_memory_total = gib(128);
  p3.network_bw = gbps(25);
  p3.price_per_hour = 24.48;
  p3.host_bridge_bw = gb_per_s(48);
  add(p3);

  p3.name = "p3.24xlarge";  // p3dn.24xlarge: dedicated, 32 GiB V100s, NVMe
  p3.gpu = hw::v100_spec(32);
  p3.num_gpus = 8;
  p3.vcpus = 96;
  p3.main_memory = gib(768);
  p3.gpu_memory_total = gib(256);
  p3.network_bw = gbps(100);
  p3.price_per_hour = 31.218;
  p3.host_bridge_bw = gb_per_s(48);
  p3.ssd_bw = mb_per_s(2000);  // local NVMe
  p3.ssd_latency = 0.1e-3;
  p3.dedicated = true;
  add(p3);

  // ---- P4 (catalog completeness; out of the characterization's scope).
  InstanceType p4;
  p4.family = "P4";
  p4.name = "p4d.24xlarge";
  p4.num_gpus = 8;
  p4.gpu = hw::a100_spec();
  p4.interconnect = InterconnectKind::kNvswitch;
  p4.nvlink_bw = gb_per_s(50);  // NVSwitch per-GPU
  p4.pcie_lane_bw = gb_per_s(25);
  p4.host_bridge_bw = gb_per_s(64);
  p4.network_bw = gbps(400);
  p4.vcpus = 96;
  p4.main_memory = gib(1152);
  p4.gpu_memory_total = gib(320);
  p4.price_per_hour = 32.7726;
  p4.ssd_bw = mb_per_s(4000);
  p4.ssd_latency = 0.1e-3;
  p4.dedicated = true;
  add(p4);

  return catalog;
}

}  // namespace

const std::vector<InstanceType>& instance_catalog() {
  static const std::vector<InstanceType> catalog = build_catalog();
  return catalog;
}

const InstanceType& instance(const std::string& name) {
  for (const InstanceType& t : instance_catalog())
    if (t.name == name) return t;
  throw std::invalid_argument("unknown instance type: " + name);
}

double cost_usd(const InstanceType& type, double seconds, int count) {
  if (seconds < 0.0 || count < 1)
    throw std::invalid_argument("cost_usd: invalid duration or count");
  return type.price_per_hour / 3600.0 * seconds * count;
}

}  // namespace stash::cloud
