#include "cloud/network_qos.h"

#include <algorithm>
#include <stdexcept>

#include "sim/task.h"

namespace stash::cloud {

namespace {

sim::Task<void> shape_link(sim::Simulator& sim, hw::FlowNetwork& net, hw::Link* link,
                           NetworkQosConfig config, util::Rng rng) {
  const double nominal = link->capacity();
  double fraction = config.mean_fraction;
  double elapsed = 0.0;
  while (elapsed < config.horizon) {
    co_await sim.delay(config.update_interval);
    elapsed += config.update_interval;
    // AR(1) around the mean: x' = mu + rho*(x - mu) + eps.
    double innovation = rng.normal(0.0, config.sigma);
    fraction = config.mean_fraction +
               config.persistence * (fraction - config.mean_fraction) + innovation;
    fraction = std::clamp(fraction, config.min_fraction, config.max_fraction);
    net.update_capacity(link, nominal * fraction);
  }
  // Restore nominal capacity so later phases are unaffected.
  net.update_capacity(link, nominal);
}

}  // namespace

void apply_network_qos(sim::Simulator& sim, hw::FlowNetwork& net,
                       hw::Cluster& cluster, const NetworkQosConfig& config) {
  if (config.mean_fraction <= 0.0 || config.mean_fraction > 1.0)
    throw std::invalid_argument("NetworkQosConfig: mean_fraction in (0,1] required");
  if (config.update_interval <= 0.0 || config.horizon <= 0.0)
    throw std::invalid_argument("NetworkQosConfig: positive interval/horizon required");
  if (config.min_fraction <= 0.0 || config.min_fraction > config.max_fraction)
    throw std::invalid_argument("NetworkQosConfig: bad fraction bounds");

  util::Rng root(config.seed);
  std::uint64_t stream = 0;
  for (std::size_t m = 0; m < cluster.num_machines(); ++m) {
    hw::Machine& mach = cluster.machine(static_cast<int>(m));
    for (hw::Link* nic : {mach.nic_tx(), mach.nic_rx()}) {
      if (nic == nullptr) continue;
      sim.spawn(shape_link(sim, net, nic, config, root.child(stream++)));
    }
  }
}

}  // namespace stash::cloud
