#include "cloud/builder.h"

#include <stdexcept>

#include "util/units.h"

namespace stash::cloud {

std::vector<std::pair<int, int>> slice_nvlink_pairs(CrossbarSlice slice) {
  switch (slice) {
    case CrossbarSlice::kFullQuad:
      // {0,1,2,3} of the mesh: fully connected quad.
      return {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}};
    case CrossbarSlice::kFragmented:
      // {0,1,2,4} relabelled: quad remnant {0,1,2} plus cross edge 0-4 -> 0-3.
      return {{0, 1}, {0, 2}, {1, 2}, {0, 3}};
  }
  throw std::logic_error("unreachable");
}

hw::MachineConfig machine_config_for(const InstanceType& type, CrossbarSlice slice) {
  hw::MachineConfig c;
  c.name = type.name;
  c.num_gpus = type.num_gpus;
  c.gpu = type.gpu;
  c.interconnect = type.interconnect;
  c.pcie_lane_bw = type.pcie_lane_bw;
  c.host_bridge_bw = type.host_bridge_bw;
  c.nvlink_bw = type.nvlink_bw;
  c.nic_bw = type.network_bw;
  c.vcpus = type.vcpus;
  c.dram_bytes = type.main_memory;
  c.ssd_bw = type.ssd_bw;
  c.ssd_latency = type.ssd_latency;
  if (type.interconnect == hw::InterconnectKind::kPcieNvlink && type.num_gpus == 4)
    c.nvlink_pairs = slice_nvlink_pairs(slice);
  return c;
}

std::vector<hw::MachineConfig> cluster_configs_for(const InstanceType& type, int count,
                                                   CrossbarSlice slice) {
  if (count < 1) throw std::invalid_argument("cluster_configs_for: count must be >= 1");
  std::vector<hw::MachineConfig> configs;
  configs.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) configs.push_back(machine_config_for(type, slice));
  return configs;
}

double fabric_bandwidth() { return util::gbps(400); }

}  // namespace stash::cloud
