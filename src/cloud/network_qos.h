// Time-varying network QoS.
//
// The paper (§I, §III) notes that AWS network QoS "is subject to high
// temporal (up to months) and spatial (availability zones, regions)
// variations and is hard to definitively characterize" — one of its
// arguments for stall-based characterization over Srifty-style bandwidth
// tables. This module makes the simulated NICs live that reality: an AR(1)
// mean-reverting process modulates each NIC's capacity around a long-run
// utilization factor, so network stalls become a distribution rather than
// a point. The QoS bench reports that distribution across seeds.
#pragma once

#include "hw/flow_network.h"
#include "hw/topology.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace stash::cloud {

struct NetworkQosConfig {
  // Long-run mean fraction of nominal NIC bandwidth actually available.
  double mean_fraction = 0.8;
  // AR(1) mean-reversion coefficient per step (0 = iid, 1 = frozen).
  double persistence = 0.7;
  // Innovation standard deviation (fraction units).
  double sigma = 0.1;
  // Bandwidth is re-drawn this often (seconds of simulated time).
  double update_interval = 0.25;
  // Hard floor/ceiling as fractions of nominal capacity.
  double min_fraction = 0.25;
  double max_fraction = 1.0;
  // How long the shaper runs; pick comfortably past the training window.
  double horizon = 120.0;

  std::uint64_t seed = 1;
};

// Spawns a QoS shaper process for every NIC link of every machine in the
// cluster. Each NIC gets an independent RNG stream derived from the seed.
void apply_network_qos(sim::Simulator& sim, hw::FlowNetwork& net,
                       hw::Cluster& cluster, const NetworkQosConfig& config);

}  // namespace stash::cloud
