// Cross-run drift observatory: the archive as a time series.
//
// Runs are grouped by (model, dataset, instance, count, batch) — the
// group_key — and each group's records, in archive seq order, form one time
// series per signal: the five stall-category percentages, epoch
// time/cost, and estimate totals. The same CUSUM/EWMA machinery the online
// monitor applies per-iteration (src/monitor/detectors.h) is replayed with
// one sample per *run* (monitor::run_axis_config tunes the baseline down to
// 3 runs), so a regression introduced between archived runs is flagged with
// its onset run (archive seq), direction, and magnitude in baseline sigmas.
//
// A CUSUM firing and an EWMA firing with the same direction and onset merge
// into one finding ("cusum+ewma"); distinct onsets stay distinct findings.
// The scan is a pure function of the archive contents — reports over
// archives with identical bytes are byte-identical, whatever --jobs built
// them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "archive/archive.h"
#include "monitor/detectors.h"

namespace stash::archive {

struct DriftFinding {
  std::string group_key;
  std::string model;
  std::string dataset;
  std::string instance;
  int count = 0;
  int batch = 0;

  std::string signal;  // e.g. "fetch_stall_pct"
  std::string unit;
  bool increase = true;
  std::string detectors;  // "cusum", "ewma", or "cusum+ewma"

  // Archive seqs (1-based append order) and record ids of the estimated
  // first shifted run and the run that raised the alarm.
  std::uint64_t onset_seq = 0;
  std::uint64_t detect_seq = 0;
  std::string onset_id;
  std::string detect_id;

  double baseline_mean = 0.0;
  double observed = 0.0;         // the alarming sample
  double delta = 0.0;            // observed - baseline_mean
  double magnitude_sigma = 0.0;  // in frozen baseline sigmas
};

struct DriftGroupSummary {
  std::string group_key;
  std::string model;
  std::string dataset;
  std::string instance;
  int count = 0;
  int batch = 0;
  std::size_t runs = 0;
  std::vector<std::string> signals;  // signals with enough samples to scan
};

struct DriftReport {
  monitor::DetectorConfig config;
  std::vector<DriftGroupSummary> groups;  // first-seen order
  std::vector<DriftFinding> findings;     // group order, then signal order
};

// Scans every group of the archive. Groups (and signals within a group)
// shorter than baseline_iters + 1 runs cannot alarm and are reported in the
// summary only.
DriftReport scan_archive(const Archive& ar,
                         const monitor::DetectorConfig& cfg =
                             monitor::run_axis_config());

// stash.runs/1 document, mode "drift". No archive paths, no timestamps.
std::string drift_to_json(const DriftReport& r);

// OpenMetrics/Prometheus text exposition: per-group run counts plus one
// labeled gauge set per finding (flag, onset seq, delta, magnitude).
std::string drift_to_openmetrics(const DriftReport& r);

}  // namespace stash::archive
