#include "archive/archive.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>

#include "exec/scenario_key.h"
#include "util/args.h"
#include "util/fsio.h"

namespace stash::archive {

namespace {

namespace fs = std::filesystem;

std::string hex64(std::uint64_t h) {
  static const char kDigits[] = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i) {
    s[static_cast<std::size_t>(i)] = kDigits[h & 0xf];
    h >>= 4;
  }
  return s;
}

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = exec::KeyBuilder::kFnvOffset;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= exec::KeyBuilder::kFnvPrime;
  }
  return h;
}

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + " " + path + ": " + std::strerror(errno));
}

// Appends one line with a single write() so a crash tears at most the last
// line of the index — the recovery case list() handles.
void append_durable(const std::string& path, const std::string& content) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (fd < 0) fail("cannot open", path);
  // A file not ending in '\n' holds a torn line from a crashed append;
  // lead with a newline so the fragment becomes its own (skipped) line
  // instead of corrupting this entry too.
  std::string line = content;
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size > 0) {
    char last = '\n';
    if (::pread(fd, &last, 1, size - 1) == 1 && last != '\n')
      line.insert(line.begin(), '\n');
  }
  std::size_t off = 0;
  while (off < line.size()) {
    ssize_t n = ::write(fd, line.data() + off, line.size() - off);
    if (n < 0) {
      ::close(fd);
      fail("cannot append to", path);
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    fail("cannot fsync", path);
  }
  ::close(fd);
}

std::string index_line(const IndexEntry& e) {
  util::JsonWriter w;
  write_index_entry(w, e);
  return w.str() + "\n";
}

bool parse_index_line(const std::string& line, IndexEntry& e,
                      std::string& err) {
  util::JsonValue doc;
  try {
    doc = util::json_parse(line);
  } catch (const util::JsonParseError& ex) {
    err = ex.what();
    return false;
  }
  if (!doc.is_object() || !doc.has("seq") || !doc.has("id")) {
    err = "missing seq/id";
    return false;
  }
  e.seq = static_cast<std::uint64_t>(doc.get("seq").as_int());
  e.id = doc.get("id").as_string();
  e.command = doc.get("command").as_string();
  e.model = doc.get("model").as_string();
  e.dataset = doc.get("dataset").as_string();
  e.instance = doc.get("instance").as_string();
  e.count = static_cast<int>(doc.get("count").as_int());
  e.batch = static_cast<int>(doc.get("batch").as_int());
  e.group_key = doc.get("group_key").as_string();
  return true;
}

}  // namespace

void write_index_entry(util::JsonWriter& w, const IndexEntry& e) {
  w.begin_object();
  w.key("seq").value(static_cast<unsigned long long>(e.seq));
  w.key("id").value(e.id);
  w.key("command").value(e.command);
  w.key("model").value(e.model);
  w.key("dataset").value(e.dataset);
  w.key("instance").value(e.instance);
  w.key("count").value(e.count);
  w.key("batch").value(e.batch);
  w.key("group_key").value(e.group_key);
  w.end_object();
}

std::string group_key(const std::string& model, const std::string& dataset,
                      const std::string& instance, int count, int batch) {
  exec::KeyBuilder kb;
  kb.add("model", model)
      .add("dataset", dataset)
      .add("instance", instance)
      .add("count", count)
      .add("batch", batch);
  return hex64(kb.hash());
}

BuiltRecord build_record(const RecordInputs& in) {
  exec::KeyBuilder ck;
  ck.add("command", in.command);
  for (const auto& [k, v] : in.config) ck.add(k, v);

  // The body is serialized first and hashed into the id; the final document
  // prepends schema+id to the same bytes, so the id commits to everything
  // after it.
  util::JsonWriter w;
  w.begin_object();
  w.key("command").value(in.command);
  w.key("group").begin_object();
  w.key("model").value(in.model);
  w.key("dataset").value(in.dataset);
  w.key("instance").value(in.instance);
  w.key("count").value(in.count);
  w.key("batch").value(in.batch);
  w.end_object();
  w.key("group_key").value(
      group_key(in.model, in.dataset, in.instance, in.count, in.batch));
  w.key("config_key").value(hex64(ck.hash()));
  w.key("manifest").raw(in.manifest_json);
  if (!in.blame_json.empty()) w.key("blame").raw(in.blame_json);
  if (!in.folded.empty()) w.key("folded").value(in.folded);
  if (!in.payload_json.empty()) w.key("payload").raw(in.payload_json);
  if (!in.events_jsonl.empty()) w.key("events_jsonl").value(in.events_jsonl);
  w.end_object();

  const std::string& body = w.str();
  BuiltRecord rec;
  rec.id = hex64(fnv1a(body));
  rec.json = "{\"schema\":\"stash.run_record/1\",\"id\":\"" + rec.id + "\"," +
             body.substr(1);
  return rec;
}

Archive::Archive(std::string dir) : dir_(std::move(dir)) {
  records_dir_ = dir_ + "/records";
  index_path_ = dir_ + "/index.jsonl";
  std::error_code ec;
  fs::create_directories(records_dir_, ec);
  if (ec)
    throw std::runtime_error("cannot create archive directory " +
                             records_dir_ + ": " + ec.message());
}

IndexEntry Archive::append(const RecordInputs& in) {
  if (in.manifest_json.empty())
    throw std::runtime_error("archive append: manifest_json is required");
  BuiltRecord rec = build_record(in);

  IndexEntry e;
  e.seq = list().size() + 1;
  e.id = rec.id;
  e.command = in.command;
  e.model = in.model;
  e.dataset = in.dataset;
  e.instance = in.instance;
  e.count = in.count;
  e.batch = in.batch;
  e.group_key = group_key(in.model, in.dataset, in.instance, in.count, in.batch);

  // Content-addressed: a record file that already exists holds these exact
  // bytes, so re-appending an identical run only adds an index line (the
  // run *count* still matters to the drift time series).
  if (!fs::exists(records_dir_ + "/" + rec.id + ".json"))
    util::write_file_durable(records_dir_, rec.id + ".json", rec.json + "\n");
  append_durable(index_path_, index_line(e));
  return e;
}

std::vector<IndexEntry> Archive::list() const {
  std::vector<IndexEntry> out;
  std::ifstream is(index_path_);
  if (!is) return out;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    IndexEntry e;
    std::string err;
    if (parse_index_line(line, e, err)) {
      out.push_back(std::move(e));
    } else {
      std::cerr << "stash runs: warning: skipping corrupt index line "
                << lineno << " in " << index_path_ << " (" << err << ")\n";
    }
  }
  return out;
}

std::string Archive::read_raw(const std::string& id) const {
  const std::string path = records_dir_ + "/" + id + ".json";
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("archive record missing: " + path);
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

util::JsonValue Archive::load(const std::string& id) const {
  const std::string raw = read_raw(id);
  try {
    return util::json_parse(raw);
  } catch (const util::JsonParseError& ex) {
    throw std::runtime_error("archive record " + id +
                             " is corrupt: " + ex.what());
  }
}

IndexEntry Archive::resolve(const std::string& ref) const {
  if (ref.empty()) throw std::runtime_error("empty run reference");
  const std::vector<IndexEntry> entries = list();
  const bool numeric =
      ref.find_first_not_of("0123456789") == std::string::npos;
  if (numeric) {
    // parse_u64 treats overflow as a failed parse, so an absurdly long
    // all-digit ref reports "no archived run" instead of throwing
    // std::out_of_range out of the CLI.
    const std::optional<std::uint64_t> seq = util::parse_u64(ref);
    if (seq)
      for (const auto& e : entries)
        if (e.seq == *seq) return e;
    throw std::runtime_error("no archived run with seq " + ref);
  }
  if (ref.size() < 4)
    throw std::runtime_error("run id prefix '" + ref +
                             "' is too short (need >= 4 hex digits)");
  const IndexEntry* match = nullptr;
  for (const auto& e : entries) {
    if (e.id.compare(0, ref.size(), ref) != 0) continue;
    if (match != nullptr && match->id != e.id)
      throw std::runtime_error("run id prefix '" + ref + "' is ambiguous");
    if (match == nullptr) match = &e;
  }
  if (match == nullptr)
    throw std::runtime_error("no archived run matches id prefix '" + ref + "'");
  return *match;
}

const util::JsonValue& primary_stall_report(const util::JsonValue& record) {
  const util::JsonValue& manifest = record.get("manifest");
  const util::JsonValue& direct = manifest.get("stall_report");
  if (!direct.is_null()) return direct;
  return manifest.get("fault_report").get("faulted");
}

std::string metric_unit(const std::string& name) {
  auto ends_with = [&name](const char* suffix) {
    const std::size_t n = std::strlen(suffix);
    return name.size() >= n &&
           name.compare(name.size() - n, n, suffix) == 0;
  };
  if (ends_with("_pct")) return "percent";
  if (ends_with("_s") || ends_with("_seconds")) return "seconds";
  if (ends_with("_usd")) return "usd";
  if (ends_with("_bytes") || ends_with("bytes")) return "bytes";
  return "count";
}

}  // namespace stash::archive
