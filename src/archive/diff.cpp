#include "archive/diff.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>

namespace stash::archive {

namespace {

struct CategoryKey {
  const char* category;
  const char* key;
};

constexpr CategoryKey kStallCategories[] = {
    {"ic", "ic_stall_pct"},     {"nw", "nw_stall_pct"},
    {"prep", "prep_stall_pct"}, {"fetch", "fetch_stall_pct"},
    {"fault", "fault_stall_pct"},
};

// Numeric summary of one metrics-registry entry: the value for counters and
// gauges, the mean for time-weighted gauges and histograms.
std::optional<double> metric_value(const util::JsonValue& m) {
  const std::string type = m.get("type").as_string();
  if (type == "counter" || type == "gauge") {
    const util::JsonValue* v = m.find("value");
    if (v != nullptr && v->is_number()) return v->as_double();
    return std::nullopt;
  }
  const util::JsonValue* mean = m.find("mean");
  if (mean != nullptr && mean->is_number()) return mean->as_double();
  return std::nullopt;
}

// All comparable scalars of one record, keyed by name: the metrics snapshot
// plus the report-level scalars the drift scanner also tracks.
std::map<std::string, double> scalars(const util::JsonValue& record) {
  std::map<std::string, double> out;
  const util::JsonValue& metrics =
      record.get("manifest").get("metrics").get("metrics");
  for (const auto& [name, m] : metrics.members()) {
    std::optional<double> v = metric_value(m);
    if (v) out[name] = *v;
  }
  const util::JsonValue& stall = primary_stall_report(record);
  for (const char* key : {"epoch_seconds", "epoch_cost_usd"}) {
    const util::JsonValue* v = stall.find(key);
    if (v != nullptr && v->is_number()) out[key] = v->as_double();
  }
  const util::JsonValue& est = record.get("manifest").get("estimate");
  for (const char* key : {"total_seconds", "total_cost_usd"}) {
    const util::JsonValue* v = est.find(key);
    if (v != nullptr && v->is_number()) out[key] = v->as_double();
  }
  return out;
}

// Folded-stack text -> per-stack microseconds. Lines are `stack value`;
// anything unparseable is ignored (foreign folded files).
std::map<std::string, double> parse_folded(const std::string& text) {
  std::map<std::string, double> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    const std::size_t sp = line.rfind(' ');
    if (sp == std::string::npos || sp == 0) continue;
    try {
      out[line.substr(0, sp)] += std::stod(line.substr(sp + 1));
    } catch (const std::exception&) {
      // not a folded line; skip
    }
  }
  return out;
}

void write_null_or(util::JsonWriter& w, bool present, double v) {
  if (present)
    w.value(v);
  else
    w.null();
}

}  // namespace

RunDiff diff_records(const IndexEntry& ea, const util::JsonValue& a,
                     const IndexEntry& eb, const util::JsonValue& b) {
  RunDiff d;
  d.a = ea;
  d.b = eb;
  d.same_group = ea.group_key == eb.group_key;

  const util::JsonValue& sa = primary_stall_report(a);
  const util::JsonValue& sb = primary_stall_report(b);
  d.has_stalls = sa.is_object() && sb.is_object();
  if (d.has_stalls) {
    for (const auto& cat : kStallCategories) {
      StallDelta s;
      s.category = cat.category;
      s.a_pct = sa.get(cat.key).as_double();
      s.b_pct = sb.get(cat.key).as_double();
      s.delta_pct = s.b_pct - s.a_pct;
      d.stalls.push_back(std::move(s));
    }
  }

  const std::map<std::string, double> ma = scalars(a);
  const std::map<std::string, double> mb = scalars(b);
  std::map<std::string, MetricDelta> joined;
  for (const auto& [name, v] : ma) {
    MetricDelta& m = joined[name];
    m.name = name;
    m.a_present = true;
    m.a = v;
  }
  for (const auto& [name, v] : mb) {
    MetricDelta& m = joined[name];
    m.name = name;
    m.b_present = true;
    m.b = v;
  }
  for (auto& [name, m] : joined) {
    m.unit = metric_unit(name);
    if (m.a_present && m.b_present) m.delta = m.b - m.a;
    d.metrics.push_back(std::move(m));
  }

  const util::JsonValue& ca = a.get("manifest").get("config");
  const util::JsonValue& cb = b.get("manifest").get("config");
  std::map<std::string, ConfigChange> config;
  for (const auto& [k, v] : ca.members()) {
    ConfigChange& c = config[k];
    c.key = k;
    c.a_present = true;
    c.a = v.as_string();
  }
  for (const auto& [k, v] : cb.members()) {
    ConfigChange& c = config[k];
    c.key = k;
    c.b_present = true;
    c.b = v.as_string();
  }
  for (auto& [k, c] : config) {
    if (c.a_present && c.b_present && c.a == c.b) continue;
    d.config_changes.push_back(std::move(c));
  }

  const std::string fa = a.get("folded").as_string();
  const std::string fb = b.get("folded").as_string();
  d.has_folded = !fa.empty() && !fb.empty();
  if (d.has_folded) {
    const std::map<std::string, double> pa = parse_folded(fa);
    const std::map<std::string, double> pb = parse_folded(fb);
    std::map<std::string, FoldedDelta> stacks;
    for (const auto& [stack, us] : pa) {
      FoldedDelta& f = stacks[stack];
      f.stack = stack;
      f.a_us = us;
    }
    for (const auto& [stack, us] : pb) {
      FoldedDelta& f = stacks[stack];
      f.stack = stack;
      f.b_us = us;
    }
    for (auto& [stack, f] : stacks) {
      f.delta_us = f.b_us - f.a_us;
      d.folded.push_back(std::move(f));
    }
  }
  return d;
}

std::string diff_to_json(const RunDiff& d) {
  util::JsonWriter w;
  w.begin_object();
  w.key("schema").value("stash.runs/1");
  w.key("mode").value("diff");
  w.key("a");
  write_index_entry(w, d.a);
  w.key("b");
  write_index_entry(w, d.b);
  w.key("same_group").value(d.same_group);
  w.key("config_changes").begin_array();
  for (const auto& c : d.config_changes) {
    w.begin_object();
    w.key("key").value(c.key);
    w.key("a");
    if (c.a_present)
      w.value(c.a);
    else
      w.null();
    w.key("b");
    if (c.b_present)
      w.value(c.b);
    else
      w.null();
    w.end_object();
  }
  w.end_array();
  if (d.has_stalls) {
    w.key("stalls").begin_array();
    for (const auto& s : d.stalls) {
      w.begin_object();
      w.key("category").value(s.category);
      w.key("a_pct").value(s.a_pct);
      w.key("b_pct").value(s.b_pct);
      w.key("delta_pct").value(s.delta_pct);
      w.end_object();
    }
    w.end_array();
  }
  w.key("metrics").begin_array();
  for (const auto& m : d.metrics) {
    w.begin_object();
    w.key("name").value(m.name);
    w.key("unit").value(m.unit);
    w.key("a");
    write_null_or(w, m.a_present, m.a);
    w.key("b");
    write_null_or(w, m.b_present, m.b);
    w.key("delta").value(m.delta);
    w.end_object();
  }
  w.end_array();
  if (d.has_folded) {
    w.key("folded_diff").begin_array();
    for (const auto& f : d.folded) {
      w.begin_object();
      w.key("stack").value(f.stack);
      w.key("a_us").value(f.a_us);
      w.key("b_us").value(f.b_us);
      w.key("delta_us").value(f.delta_us);
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();
  return w.str();
}

std::string diff_to_folded(const RunDiff& d) {
  std::string out;
  for (const auto& f : d.folded) {
    out += f.stack;
    out += ' ';
    out += std::to_string(static_cast<long long>(std::llround(f.b_us)));
    out += ' ';
    const long long delta = std::llround(f.delta_us);
    if (delta >= 0) out += '+';
    out += std::to_string(delta);
    out += '\n';
  }
  return out;
}

}  // namespace stash::archive
