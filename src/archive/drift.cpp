#include "archive/drift.h"

#include <map>
#include <optional>

namespace stash::archive {

namespace {

// The fixed signal set scanned per run, in report order. Stall categories
// first (the paper's coordinate system), then the run-level time/cost
// scalars. Registry metrics are deliberately not scanned: most are
// throughput counters whose scale tracks run length, not health.
constexpr const char* kSignals[] = {
    "ic_stall_pct",  "nw_stall_pct",   "prep_stall_pct", "fetch_stall_pct",
    "fault_stall_pct", "epoch_seconds", "epoch_cost_usd", "total_seconds",
    "total_cost_usd",
};

// One run's value for `signal`, when the record carries it.
std::optional<double> signal_value(const util::JsonValue& record,
                                   const std::string& signal) {
  const util::JsonValue& stall = primary_stall_report(record);
  if (stall.is_object()) {
    // A report without a network step has no meaningful N/W percentage.
    if (signal == "nw_stall_pct" && !stall.get("has_network_step").as_bool())
      return std::nullopt;
    const util::JsonValue* v = stall.find(signal);
    if (v != nullptr && v->is_number()) return v->as_double();
  }
  const util::JsonValue& est = record.get("manifest").get("estimate");
  if (est.is_object()) {
    const util::JsonValue* v = est.find(signal);
    if (v != nullptr && v->is_number()) return v->as_double();
  }
  return std::nullopt;
}

struct SeriesPoint {
  std::uint64_t seq = 0;
  std::string id;
  double value = 0.0;
};

std::string prom_label(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\')
      out += "\\\\";
    else if (c == '"')
      out += "\\\"";
    else if (c == '\n')
      out += "\\n";
    else
      out += c;
  }
  return out;
}

std::string group_labels(const DriftGroupSummary& g) {
  return "model=\"" + prom_label(g.model) + "\",dataset=\"" +
         prom_label(g.dataset) + "\",instance=\"" + prom_label(g.instance) +
         "\",count=\"" + std::to_string(g.count) + "\",batch=\"" +
         std::to_string(g.batch) + "\"";
}

std::string finding_labels(const DriftFinding& f) {
  return "model=\"" + prom_label(f.model) + "\",instance=\"" +
         prom_label(f.instance) + "\",count=\"" + std::to_string(f.count) +
         "\",batch=\"" + std::to_string(f.batch) + "\",signal=\"" +
         prom_label(f.signal) + "\",direction=\"" +
         (f.increase ? "increase" : "decrease") + "\",detectors=\"" +
         f.detectors + "\"";
}

const char* detector_name(monitor::SeriesFinding::Detector d) {
  return d == monitor::SeriesFinding::Detector::kCusum ? "cusum" : "ewma";
}

}  // namespace

DriftReport scan_archive(const Archive& ar,
                         const monitor::DetectorConfig& cfg) {
  cfg.validate();
  DriftReport report;
  report.config = cfg;

  const std::vector<IndexEntry> entries = ar.list();

  // Group by group_key in first-seen order; records are loaded once per
  // distinct id (identical re-runs share a content-addressed record).
  std::vector<std::string> group_order;
  std::map<std::string, std::vector<const IndexEntry*>> groups;
  for (const auto& e : entries) {
    auto [it, inserted] = groups.try_emplace(e.group_key);
    if (inserted) group_order.push_back(e.group_key);
    it->second.push_back(&e);
  }
  std::map<std::string, util::JsonValue> records;
  for (const auto& e : entries)
    if (records.find(e.id) == records.end()) records[e.id] = ar.load(e.id);

  for (const std::string& key : group_order) {
    const std::vector<const IndexEntry*>& members = groups[key];
    DriftGroupSummary summary;
    summary.group_key = key;
    summary.model = members.front()->model;
    summary.dataset = members.front()->dataset;
    summary.instance = members.front()->instance;
    summary.count = members.front()->count;
    summary.batch = members.front()->batch;
    summary.runs = members.size();

    for (const char* signal : kSignals) {
      std::vector<SeriesPoint> points;
      for (const IndexEntry* e : members) {
        std::optional<double> v = signal_value(records[e->id], signal);
        if (!v) continue;
        points.push_back({e->seq, e->id, *v});
      }
      // A series the baseline would swallow whole cannot alarm; leave it
      // out of the scanned-signals list so the summary reflects coverage.
      if (points.size() < cfg.baseline_iters + 1) continue;
      summary.signals.push_back(signal);

      std::vector<double> xs;
      xs.reserve(points.size());
      for (const auto& p : points) xs.push_back(p.value);
      const std::vector<monitor::SeriesFinding> fired =
          monitor::scan_series(xs, cfg);

      // Merge an EWMA firing into a CUSUM firing with the same direction
      // and onset; everything else stays its own finding.
      std::vector<DriftFinding> merged;
      for (const auto& f : fired) {
        bool absorbed = false;
        if (f.detector == monitor::SeriesFinding::Detector::kEwma) {
          for (auto& m : merged) {
            if (m.increase == f.increase &&
                m.onset_seq == points[f.detection.onset_index].seq &&
                m.detectors == "cusum") {
              m.detectors = "cusum+ewma";
              absorbed = true;
              break;
            }
          }
        }
        if (absorbed) continue;
        DriftFinding out;
        out.group_key = key;
        out.model = summary.model;
        out.dataset = summary.dataset;
        out.instance = summary.instance;
        out.count = summary.count;
        out.batch = summary.batch;
        out.signal = signal;
        out.unit = metric_unit(signal);
        out.increase = f.increase;
        out.detectors = detector_name(f.detector);
        out.onset_seq = points[f.detection.onset_index].seq;
        out.onset_id = points[f.detection.onset_index].id;
        out.detect_seq = points[f.detection.detect_index].seq;
        out.detect_id = points[f.detection.detect_index].id;
        out.baseline_mean = f.detection.baseline_mean;
        out.observed = f.detection.observed;
        out.delta = f.detection.observed - f.detection.baseline_mean;
        out.magnitude_sigma = f.detection.magnitude_sigma;
        merged.push_back(std::move(out));
      }
      for (auto& m : merged) report.findings.push_back(std::move(m));
    }
    report.groups.push_back(std::move(summary));
  }
  return report;
}

std::string drift_to_json(const DriftReport& r) {
  util::JsonWriter w;
  w.begin_object();
  w.key("schema").value("stash.runs/1");
  w.key("mode").value("drift");
  w.key("detector").begin_object();
  w.key("baseline_runs")
      .value(static_cast<unsigned long long>(r.config.baseline_iters));
  w.key("cusum_k").value(r.config.cusum_k);
  w.key("cusum_h").value(r.config.cusum_h);
  w.key("ewma_lambda").value(r.config.ewma_lambda);
  w.key("ewma_limit").value(r.config.ewma_limit);
  w.key("min_sigma").value(r.config.min_sigma);
  w.key("min_sigma_frac").value(r.config.min_sigma_frac);
  w.key("baseline_guard").value(r.config.baseline_guard);
  w.end_object();
  w.key("groups").begin_array();
  for (const auto& g : r.groups) {
    w.begin_object();
    w.key("group_key").value(g.group_key);
    w.key("model").value(g.model);
    w.key("dataset").value(g.dataset);
    w.key("instance").value(g.instance);
    w.key("count").value(g.count);
    w.key("batch").value(g.batch);
    w.key("runs").value(static_cast<unsigned long long>(g.runs));
    w.key("signals").begin_array();
    for (const auto& s : g.signals) w.value(s);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.key("findings").begin_array();
  for (const auto& f : r.findings) {
    w.begin_object();
    w.key("group_key").value(f.group_key);
    w.key("model").value(f.model);
    w.key("dataset").value(f.dataset);
    w.key("instance").value(f.instance);
    w.key("count").value(f.count);
    w.key("batch").value(f.batch);
    w.key("signal").value(f.signal);
    w.key("unit").value(f.unit);
    w.key("direction").value(f.increase ? "increase" : "decrease");
    w.key("detectors").value(f.detectors);
    w.key("onset_seq").value(static_cast<unsigned long long>(f.onset_seq));
    w.key("onset_id").value(f.onset_id);
    w.key("detect_seq").value(static_cast<unsigned long long>(f.detect_seq));
    w.key("detect_id").value(f.detect_id);
    w.key("baseline_mean").value(f.baseline_mean);
    w.key("observed").value(f.observed);
    w.key("delta").value(f.delta);
    w.key("magnitude_sigma").value(f.magnitude_sigma);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string drift_to_openmetrics(const DriftReport& r) {
  std::string out;
  out += "# TYPE stash_runs_archive_runs gauge\n";
  for (const auto& g : r.groups)
    out += "stash_runs_archive_runs{" + group_labels(g) + "} " +
           std::to_string(g.runs) + "\n";
  out += "# TYPE stash_runs_drift_flag gauge\n";
  for (const auto& f : r.findings)
    out += "stash_runs_drift_flag{" + finding_labels(f) + "} 1\n";
  out += "# TYPE stash_runs_drift_onset_seq gauge\n";
  for (const auto& f : r.findings)
    out += "stash_runs_drift_onset_seq{" + finding_labels(f) + "} " +
           std::to_string(f.onset_seq) + "\n";
  out += "# TYPE stash_runs_drift_delta gauge\n";
  for (const auto& f : r.findings)
    out += "stash_runs_drift_delta{" + finding_labels(f) + "} " +
           util::json_double(f.delta) + "\n";
  out += "# TYPE stash_runs_drift_magnitude_sigma gauge\n";
  for (const auto& f : r.findings)
    out += "stash_runs_drift_magnitude_sigma{" + finding_labels(f) + "} " +
           util::json_double(f.magnitude_sigma) + "\n";
  return out;
}

}  // namespace stash::archive
