// Append-only, content-addressed on-disk run archive.
//
// Every producing stash_cli command can append one `stash.run_record/1`
// JSON document per run: the run manifest (config, reports, metrics
// snapshot), the blame report and folded stacks when attribution ran, and a
// command-specific payload (plan/autopilot report, monitor event stream).
// The record id is the FNV-1a 64-bit hash of the serialized record body —
// the same canonical-key machinery SimCache uses — so identical runs
// produce identical records with identical ids, and an archive built with
// `--jobs 8` is byte-for-byte the archive built with `--jobs 1`.
//
// On-disk layout under the archive directory:
//
//   records/<id>.json   one record per distinct content, written to a temp
//                       file, fsync'd, then renamed into place — a crash
//                       leaves either the old state or the complete record,
//                       never a torn one
//   index.jsonl         one line per appended run (seq, id, group axis),
//                       appended with a single O_APPEND write + fsync; a
//                       torn trailing line (the documented crash window) is
//                       skipped with a warning on read, never an abort
//
// The index is the time axis: `seq` is the append order, and the drift
// scanner (drift.h) treats each (model, dataset, instance, count, batch)
// group's seq-ordered records as a time series. Records deliberately carry
// no wall-clock timestamps — they would break both content addressing and
// the --jobs byte-identity guarantee.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/json.h"

namespace stash::archive {

// Everything a command hands the archive. Documents arrive pre-serialized
// so the archive depends only on their schemas, not their producing
// libraries; `manifest_json` is required, the rest optional (empty = omit).
struct RecordInputs {
  std::string command;  // producing subcommand, e.g. "profile"

  // Grouping axis for cross-run analysis.
  std::string model;
  std::string dataset;
  std::string instance;
  int count = 0;  // machines
  int batch = 0;  // per-GPU batch

  // Manifest config key/values, folded into config_key (insertion order is
  // part of the key, matching the manifest's own serialization).
  std::vector<std::pair<std::string, std::string>> config;

  std::string manifest_json;  // stash.run_manifest/1 or /2 document
  std::string blame_json;     // stash.blame/1 document, when attribution ran
  std::string folded;         // folded-stack flamegraph text
  std::string payload_json;   // command-specific document (plan, autopilot)
  std::string events_jsonl;   // stash.monitor/1 JSONL stream, as a string
};

struct BuiltRecord {
  std::string id;    // 16 lowercase hex digits
  std::string json;  // complete stash.run_record/1 document, one line
};

// Serializes the record body, hashes it into the id, and returns the
// finished document. Pure: same inputs, same bytes.
BuiltRecord build_record(const RecordInputs& in);

// Canonical group hash (16 hex digits) of the cross-run comparison axis.
std::string group_key(const std::string& model, const std::string& dataset,
                      const std::string& instance, int count, int batch);

// One line of index.jsonl.
struct IndexEntry {
  std::uint64_t seq = 0;  // 1-based append order — the drift time axis
  std::string id;
  std::string command;
  std::string model;
  std::string dataset;
  std::string instance;
  int count = 0;
  int batch = 0;
  std::string group_key;
};

class Archive {
 public:
  // Opens (creating if needed) the archive at `dir`.
  explicit Archive(std::string dir);

  const std::string& dir() const { return dir_; }

  // Builds the record and appends it: record file first (skipped when the
  // content-addressed file already exists), then the index line. Throws
  // std::runtime_error on I/O failure.
  IndexEntry append(const RecordInputs& in);

  // All valid index entries in append order. Corrupt or truncated lines
  // (torn trailing write) are skipped with a warning on stderr.
  std::vector<IndexEntry> list() const;

  // Raw record bytes / parsed record by id. Throws when missing or corrupt.
  std::string read_raw(const std::string& id) const;
  util::JsonValue load(const std::string& id) const;

  // Resolves a user-supplied run reference: a decimal seq number, or an id
  // prefix of at least 4 hex digits. Throws std::runtime_error when the
  // reference is unknown or ambiguous.
  IndexEntry resolve(const std::string& ref) const;

 private:
  std::string dir_;
  std::string records_dir_;
  std::string index_path_;
};

// Writes an IndexEntry as a JSON object in value position (shared by the
// index lines and the diff/drift documents).
void write_index_entry(util::JsonWriter& w, const IndexEntry& e);

// The stall report a record's signals are read from: the manifest's
// `stall_report` when present, else a fault-conditioned run's
// `fault_report.faulted` (the faulted run is the one being archived for
// comparison). Returns a null JsonValue when the record carries neither.
const util::JsonValue& primary_stall_report(const util::JsonValue& record);

// Unit inferred from a metric/signal name suffix: _pct -> "percent",
// _s/_seconds -> "seconds", _usd -> "usd", _bytes -> "bytes", else "count".
std::string metric_unit(const std::string& name);

}  // namespace stash::archive
