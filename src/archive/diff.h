// Structural comparison of two archived runs.
//
// A diff joins the two records field-by-field rather than textually:
// per-category stall deltas from the primary stall reports, per-metric
// drift (manifest metrics snapshot plus the report-level scalars) with
// units inferred from the metric name, config changes from the manifest
// config blocks, and a folded-stack blame diff when both records carry
// folded stacks — `stack b_us delta_us` lines loadable as a differential
// flamegraph. Serialized as a `stash.runs/1` document with mode "diff".
#pragma once

#include <string>
#include <vector>

#include "archive/archive.h"

namespace stash::archive {

struct StallDelta {
  std::string category;  // ic, nw, prep, fetch, fault
  double a_pct = 0.0;
  double b_pct = 0.0;
  double delta_pct = 0.0;
};

struct MetricDelta {
  std::string name;
  std::string unit;
  bool a_present = false;
  bool b_present = false;
  double a = 0.0;
  double b = 0.0;
  double delta = 0.0;  // b - a; 0 when either side is absent
};

struct ConfigChange {
  std::string key;
  bool a_present = false;
  bool b_present = false;
  std::string a;
  std::string b;
};

struct FoldedDelta {
  std::string stack;  // machineM;gpuG;phase;category
  double a_us = 0.0;
  double b_us = 0.0;
  double delta_us = 0.0;
};

struct RunDiff {
  IndexEntry a;
  IndexEntry b;
  bool same_group = false;
  bool has_stalls = false;  // both records carried a stall report
  bool has_folded = false;  // both records carried folded stacks
  std::vector<StallDelta> stalls;
  std::vector<MetricDelta> metrics;         // sorted by name
  std::vector<ConfigChange> config_changes; // differing keys only, sorted
  std::vector<FoldedDelta> folded;          // union of stacks, sorted
};

// Pure structural join of two loaded records.
RunDiff diff_records(const IndexEntry& ea, const util::JsonValue& a,
                     const IndexEntry& eb, const util::JsonValue& b);

// stash.runs/1 document, mode "diff". Deliberately contains no archive
// paths or timestamps, so equal archives diff to equal bytes.
std::string diff_to_json(const RunDiff& d);

// Differential flamegraph text: `stack b_us delta_us`, one line per stack.
std::string diff_to_folded(const RunDiff& d);

}  // namespace stash::archive
