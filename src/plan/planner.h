// Mixed spot/on-demand cluster planning (DeepVM-style tiering on top of the
// paper's §V recommendations).
//
// The paper ranks on-demand clusters only; its related work on transient
// instances shows the cost-optimal DDL deployment is usually a *mix* of
// spot and on-demand capacity under revocation risk. This module composes
// the two halves the repo already has — the Stash epoch-time profiles
// (stash/profiler) and the Monte-Carlo revocation model (cloud/spot) — into
// a deployment planner: for every candidate cluster it enumerates pure
// on-demand, pure spot, and k-of-n spot-with-on-demand-fallback
// allocations, prices each under the spot interruption process, and returns
// the Pareto frontier of (expected wall time, expected cost, p95 cost).
//
// Pricing model, per allocation of a spec with n machines, k of them spot:
//   * useful work = cold first epoch + (epochs-1) warm epochs, from the
//     profiler's T3/T4 steps (cached in the shared SimCache, fanned out on
//     the execution context's pool);
//   * revocations arrive as a Poisson process with rate k * lambda — each
//     spot machine is revoked independently, and any revocation stalls the
//     whole synchronous job;
//   * each revocation costs the measured per-revocation fixed cost (one
//     crash-calibration run through ddl::Trainer's recovery machinery, the
//     spot_replay approach lifted into the sweep) plus the work since the
//     last checkpoint, replayed at training speed;
//   * the bill charges k machines at the spot price factor and n-k at the
//     on-demand price for the whole wall time.
// k = 0 plans skip the Monte-Carlo loop and pay no checkpoint overhead:
// with no revocation risk there is nothing to checkpoint for.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cloud/spot.h"
#include "dnn/dataset.h"
#include "dnn/model.h"
#include "stash/profiler.h"
#include "telemetry/metrics.h"

namespace stash::plan {

enum class AllocKind {
  kOnDemand,  // every machine on-demand
  kSpot,      // every machine spot
  kMixed,     // k spot machines, n-k on-demand fallback (DeepVM tiering)
};

const char* to_string(AllocKind kind);

struct PlanOptions {
  int epochs = 90;
  int per_gpu_batch = 32;

  // Feasibility constraints; 0 = unconstrained.
  double budget_usd = 0.0;
  double deadline_hours = 0.0;

  // Spot market parameters shared by every spot-using allocation; the
  // per-machine interruption rate is scaled by the spot machine count.
  cloud::SpotConfig spot{};
  int trials = 25;  // Monte-Carlo draws per spot-using plan
  std::uint64_t seed = 2026;

  // Measure the per-revocation fixed cost (watchdog detection + reprovision
  // wait) with one crash-calibration trainer run per candidate instead of
  // assuming spot.restart_overhead_s. Calibration runs bypass the SimCache
  // (fault-injected runs always do) but cost only one short warm-step sim.
  bool calibrate_recovery = true;

  // Barrier-watchdog window for the crash-calibration runs; 0 selects the
  // automatic default (twice the measured iteration time). Negative, NaN,
  // or infinite values are rejected — long-recovery stress scenarios set
  // this explicitly so the watchdog does not false-trigger.
  double watchdog_timeout_s = 0.0;

  // Candidate cluster configurations; empty = the paper's characterization
  // set (profiler::default_candidates()).
  std::vector<profiler::ClusterSpec> candidates;
  profiler::ProfileOptions profile{};

  // Throws std::invalid_argument naming the offending field.
  void validate() const;
};

struct CandidatePlan {
  profiler::ClusterSpec spec;
  AllocKind kind = AllocKind::kOnDemand;
  int spot_machines = 0;
  int ondemand_machines = 0;

  double expected_wall_s = 0.0;
  double expected_cost_usd = 0.0;
  // Dispersion across the Monte-Carlo draws; equal to the expectation for
  // deterministic (pure on-demand) plans.
  double p95_wall_s = 0.0;
  double p95_cost_usd = 0.0;

  // Risk annotations.
  double expected_interruptions = 0.0;
  double expected_lost_work_s = 0.0;  // recomputed work + checkpoint writes
  // Measured cost of one revocation when calibrated, else the configured
  // restart overhead.
  double recovery_fixed_cost_s = 0.0;
  // Fault-stall share of the crash-calibration run (fault-conditioned
  // profiler measurement); 0 for uncalibrated or on-demand plans.
  double calibration_fault_stall_pct = 0.0;

  double steady_epoch_s = 0.0;  // healthy warm-cache epoch on this spec

  bool meets_budget = true;
  bool meets_deadline = true;
  bool on_frontier = false;

  // "p3.8xlarge*2 [spot1+od1]", "p3.2xlarge [spot]", "p3.16xlarge [od]".
  std::string label() const;
};

struct PlanReport {
  std::string model_name;
  int epochs = 0;
  int per_gpu_batch = 0;
  double budget_usd = 0.0;
  double deadline_hours = 0.0;
  cloud::SpotConfig spot{};
  int trials = 0;
  std::uint64_t seed = 0;
  bool calibrated = false;
  double watchdog_timeout_s = 0.0;  // 0 = automatic (2x iteration time)

  // Every evaluated allocation, sorted by (expected cost, expected wall,
  // label) — a deterministic order independent of the jobs count.
  std::vector<CandidatePlan> plans;
  // Indices into `plans` of the Pareto frontier over (expected wall,
  // expected cost, p95 cost), ascending by expected cost. Computed over the
  // feasible plans when any allocation meets both constraints, over all
  // plans otherwise (any_feasible says which).
  std::vector<int> frontier;
  bool any_feasible = true;

  const CandidatePlan* cheapest_on_frontier() const {
    return frontier.empty() ? nullptr : &plans[frontier.front()];
  }
};

// Profiles every candidate (five-step machinery not required: T3/T4 plus an
// optional crash calibration), enumerates allocations, and prices them.
// Candidates whose GPU memory cannot fit the batch are skipped. With an
// exec context in options.profile, candidate profiling fans out across the
// pool and memoizes in the SimCache; the report is byte-identical for every
// jobs value.
PlanReport plan(const dnn::Model& model, const dnn::Dataset& dataset,
                const PlanOptions& options);

// stash.plan/1 JSON document. `extra_config` key/values are echoed into the
// config block after the planner's own (RunManifest-style provenance);
// `metrics` (may be null) appends a registry snapshot.
std::string to_json(const PlanReport& r,
                    const std::vector<std::pair<std::string, std::string>>&
                        extra_config = {},
                    const telemetry::MetricsRegistry* metrics = nullptr);

}  // namespace stash::plan
