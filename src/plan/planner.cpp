#include "plan/planner.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <tuple>

#include "exec/thread_pool.h"
#include "stash/recommend.h"
#include "stash/session.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/stats.h"

namespace stash::plan {

const char* to_string(AllocKind kind) {
  switch (kind) {
    case AllocKind::kOnDemand:
      return "on-demand";
    case AllocKind::kSpot:
      return "spot";
    case AllocKind::kMixed:
      return "mixed";
  }
  return "?";
}

void PlanOptions::validate() const {
  if (epochs < 1) throw std::invalid_argument("PlanOptions: epochs must be >= 1");
  if (per_gpu_batch < 1)
    throw std::invalid_argument("PlanOptions: per_gpu_batch must be >= 1");
  if (budget_usd < 0.0 || !std::isfinite(budget_usd))
    throw std::invalid_argument("PlanOptions: budget_usd must be finite and >= 0");
  if (deadline_hours < 0.0 || !std::isfinite(deadline_hours))
    throw std::invalid_argument(
        "PlanOptions: deadline_hours must be finite and >= 0");
  if (trials < 1) throw std::invalid_argument("PlanOptions: trials must be >= 1");
  if (watchdog_timeout_s < 0.0 || !std::isfinite(watchdog_timeout_s))
    throw std::invalid_argument(
        "PlanOptions: watchdog_timeout_s must be finite and >= 0 "
        "(0 = automatic)");
  spot.validate();
  profile.validate();
}

std::string CandidatePlan::label() const {
  std::string suffix;
  switch (kind) {
    case AllocKind::kOnDemand:
      suffix = "od";
      break;
    case AllocKind::kSpot:
      suffix = "spot";
      break;
    case AllocKind::kMixed:
      suffix = "spot" + std::to_string(spot_machines) + "+od" +
               std::to_string(ondemand_machines);
      break;
  }
  return spec.label() + " [" + suffix + "]";
}

namespace {

// Healthy and crash-calibration measurements for one candidate spec.
struct Measurement {
  double first_epoch_s = 0.0;
  double steady_epoch_s = 0.0;
  double recovery_fixed_cost_s = 0.0;
  double calibration_fault_stall_pct = 0.0;
};

Measurement measure(const profiler::StashProfiler& prof,
                    const profiler::ClusterSpec& spec, const PlanOptions& opt) {
  Measurement m;
  // The healthy cold/warm measurements are the estimate_training pair —
  // shared with the session/autopilot path so all planners price the same
  // epoch profile (and hit the same SimCache entries).
  profiler::TrainingEstimate est =
      profiler::estimate_training(prof, spec, opt.per_gpu_batch, /*epochs=*/2);
  m.first_epoch_s = est.first_epoch_seconds;
  m.steady_epoch_s = est.steady_epoch_seconds;

  if (!opt.calibrate_recovery) {
    m.recovery_fixed_cost_s = opt.spot.restart_overhead_s;
    return m;
  }

  // One revocation through the trainer's actual recovery machinery — the
  // spot_replay calibration, per candidate: the recovery record's wait is
  // the measured fixed cost of a revocation (partial iteration thrown away,
  // watchdog detection gap, reprovision wait).
  const double iter_s = std::max(est.steady_iteration_seconds, 1e-9);
  profiler::FaultProfileOptions fopt;
  fopt.policy = ddl::RecoveryPolicy::kCheckpointRestart;
  fopt.barrier_timeout_s = opt.watchdog_timeout_s > 0.0
                               ? opt.watchdog_timeout_s
                               : std::max(2.0 * iter_s, 1e-6);
  fopt.checkpoint_interval_s = opt.spot.checkpoint_interval_s;
  fopt.checkpoint_write_s = opt.spot.checkpoint_write_s;

  faults::FaultPlan crash_plan;
  faults::FaultEvent crash;
  crash.kind = faults::FaultKind::kCrash;
  crash.start_s = iter_s * 2.5;
  crash.machine = 0;
  crash.reprovision_s = opt.spot.restart_overhead_s;
  crash_plan.events.push_back(crash);

  ddl::TrainResult faulted = prof.run_step(spec, profiler::Step::kRealWarm,
                                           opt.per_gpu_batch, &crash_plan, fopt);
  if (!faulted.recoveries.empty())
    m.recovery_fixed_cost_s = faulted.recoveries.front().wait_seconds;
  else  // crash missed the window (degenerate spec); assume watchdog + restart
    m.recovery_fixed_cost_s = fopt.barrier_timeout_s + opt.spot.restart_overhead_s;
  double total = faulted.window_time + faulted.fault_stall;
  if (faulted.fault_stall > 0.0 && total > 0.0)
    m.calibration_fault_stall_pct = faulted.fault_stall / total * 100.0;
  return m;
}

}  // namespace

PlanReport plan(const dnn::Model& model, const dnn::Dataset& dataset,
                const PlanOptions& options) {
  options.validate();

  PlanReport report;
  report.model_name = model.name();
  report.epochs = options.epochs;
  report.per_gpu_batch = options.per_gpu_batch;
  report.budget_usd = options.budget_usd;
  report.deadline_hours = options.deadline_hours;
  report.spot = options.spot;
  report.trials = options.trials;
  report.seed = options.seed;
  report.calibrated = options.calibrate_recovery;
  report.watchdog_timeout_s = options.watchdog_timeout_s;

  std::vector<profiler::ClusterSpec> candidates =
      options.candidates.empty() ? profiler::default_candidates()
                                 : options.candidates;
  // Telemetry sinks are stripped for the candidate sweep (recommend's rule:
  // overlaid counters from many candidates are meaningless, and with a pool
  // attached they would race); planner summary gauges land on the caller's
  // registry after the sweep.
  profiler::ProfileOptions popt = options.profile;
  popt.trace = nullptr;
  popt.metrics = nullptr;
  popt.causal = nullptr;
  profiler::StashProfiler prof(model, dataset, popt);

  std::vector<profiler::ClusterSpec> fitting;
  for (const profiler::ClusterSpec& spec : candidates) {
    const auto& type = cloud::instance(spec.instance);
    if (model.train_memory_bytes(options.per_gpu_batch) > type.gpu.memory_bytes)
      continue;  // batch does not fit this GPU
    fitting.push_back(spec);
  }

  // Profile (and crash-calibrate) the surviving candidates across the
  // execution context's pool; results land by candidate index so the
  // enumeration below never sees completion order, and the shared SimCache
  // dedups the healthy steps against profile/estimate/recommend runs.
  std::vector<Measurement> measured(fitting.size());
  exec::ThreadPool* pool =
      options.profile.exec != nullptr ? options.profile.exec->pool() : nullptr;
  exec::parallel_for(pool, fitting.size(), [&](std::size_t i) {
    measured[i] = measure(prof, fitting[i], options);
  });

  // Enumerate allocations in deterministic (candidate, spot-count) order.
  // plan_index seeds each allocation's Monte-Carlo stream, so the draws are
  // independent across plans yet identical across jobs values and runs.
  util::Rng root(options.seed);
  int plan_index = 0;
  for (std::size_t i = 0; i < fitting.size(); ++i) {
    const profiler::ClusterSpec& spec = fitting[i];
    const Measurement& m = measured[i];
    const auto& type = cloud::instance(spec.instance);
    const int n = spec.count;
    const double work_s =
        m.first_epoch_s + (options.epochs - 1) * m.steady_epoch_s;

    for (int k = 0; k <= n; ++k, ++plan_index) {
      CandidatePlan p;
      p.spec = spec;
      p.spot_machines = k;
      p.ondemand_machines = n - k;
      p.kind = k == 0   ? AllocKind::kOnDemand
               : k == n ? AllocKind::kSpot
                        : AllocKind::kMixed;
      p.steady_epoch_s = m.steady_epoch_s;

      if (k == 0) {
        // Deterministic: no revocation risk, so no checkpoints either.
        p.expected_wall_s = work_s;
        p.expected_cost_usd = cloud::cost_usd(type, work_s, n);
        p.p95_wall_s = p.expected_wall_s;
        p.p95_cost_usd = p.expected_cost_usd;
      } else {
        // Any spot machine's revocation stalls the whole synchronous job,
        // so interruptions arrive at k times the per-machine rate; each one
        // costs the measured recovery fixed cost plus replayed work. The
        // bill charges k machines at the spot factor, n-k at on-demand.
        cloud::SpotConfig cfg = options.spot;
        cfg.interruptions_per_hour *= k;
        cfg.restart_overhead_s = m.recovery_fixed_cost_s;
        p.recovery_fixed_cost_s = m.recovery_fixed_cost_s;
        p.calibration_fault_stall_pct = m.calibration_fault_stall_pct;

        const double machine_factor =
            k * options.spot.price_factor + (n - k);
        util::Rng plan_rng = root.child(static_cast<std::uint64_t>(plan_index));
        util::SampleSet walls, costs;
        double interruptions = 0.0, lost = 0.0;
        for (int t = 0; t < options.trials; ++t) {
          util::Rng rng = plan_rng.child(static_cast<std::uint64_t>(t));
          cloud::SpotOutcome o =
              cloud::simulate_spot_run(work_s, type, n, cfg, rng);
          double cost = cloud::cost_usd(type, o.wall_seconds, 1) * machine_factor;
          walls.add(o.wall_seconds);
          costs.add(cost);
          interruptions += o.interruptions;
          lost += o.lost_work_seconds;
        }
        p.expected_wall_s = walls.mean();
        p.expected_cost_usd = costs.mean();
        p.p95_wall_s = walls.percentile(95.0);
        p.p95_cost_usd = costs.percentile(95.0);
        p.expected_interruptions = interruptions / options.trials;
        p.expected_lost_work_s = lost / options.trials;
      }

      p.meets_budget =
          options.budget_usd <= 0.0 || p.expected_cost_usd <= options.budget_usd;
      p.meets_deadline = options.deadline_hours <= 0.0 ||
                         p.expected_wall_s <= options.deadline_hours * 3600.0;
      report.plans.push_back(std::move(p));
    }
  }

  std::sort(report.plans.begin(), report.plans.end(),
            [](const CandidatePlan& a, const CandidatePlan& b) {
              return std::make_tuple(a.expected_cost_usd, a.expected_wall_s,
                                     a.label()) <
                     std::make_tuple(b.expected_cost_usd, b.expected_wall_s,
                                     b.label());
            });

  // Pareto frontier over (expected wall, expected cost, p95 cost) of the
  // feasible plans; if nothing is feasible, over everything (a planner that
  // answers "no plan fits, here is the least-bad frontier" beats one that
  // answers nothing).
  report.any_feasible = std::any_of(
      report.plans.begin(), report.plans.end(),
      [](const CandidatePlan& p) { return p.meets_budget && p.meets_deadline; });
  auto eligible = [&](const CandidatePlan& p) {
    return !report.any_feasible || (p.meets_budget && p.meets_deadline);
  };
  auto dominates = [](const CandidatePlan& a, const CandidatePlan& b) {
    bool no_worse = a.expected_wall_s <= b.expected_wall_s &&
                    a.expected_cost_usd <= b.expected_cost_usd &&
                    a.p95_cost_usd <= b.p95_cost_usd;
    bool better = a.expected_wall_s < b.expected_wall_s ||
                  a.expected_cost_usd < b.expected_cost_usd ||
                  a.p95_cost_usd < b.p95_cost_usd;
    return no_worse && better;
  };
  for (std::size_t i = 0; i < report.plans.size(); ++i) {
    if (!eligible(report.plans[i])) continue;
    bool dominated = false;
    for (std::size_t j = 0; j < report.plans.size() && !dominated; ++j)
      dominated = j != i && eligible(report.plans[j]) &&
                  dominates(report.plans[j], report.plans[i]);
    if (!dominated) {
      report.plans[i].on_frontier = true;
      report.frontier.push_back(static_cast<int>(i));
    }
  }

  if (options.profile.metrics != nullptr) {
    auto& mreg = *options.profile.metrics;
    mreg.gauge("planner/plans_evaluated")
        .set(static_cast<double>(report.plans.size()));
    mreg.gauge("planner/frontier_size")
        .set(static_cast<double>(report.frontier.size()));
    if (const CandidatePlan* best = report.cheapest_on_frontier()) {
      mreg.gauge("planner/frontier_min_cost_usd").set(best->expected_cost_usd);
      mreg.gauge("planner/frontier_min_wall_s").set(best->expected_wall_s);
    }
  }
  return report;
}

std::string to_json(const PlanReport& r,
                    const std::vector<std::pair<std::string, std::string>>&
                        extra_config,
                    const telemetry::MetricsRegistry* metrics) {
  util::JsonWriter w;
  w.begin_object();
  w.key("schema").value("stash.plan/1");
  w.key("tool").value("stash");
  w.key("command").value("plan");
  w.key("config").begin_object();
  w.key("model").value(r.model_name);
  w.key("epochs").value(r.epochs);
  w.key("per_gpu_batch").value(r.per_gpu_batch);
  w.key("budget_usd").value(r.budget_usd);
  w.key("deadline_hours").value(r.deadline_hours);
  w.key("spot_price_factor").value(r.spot.price_factor);
  w.key("spot_interruptions_per_hour").value(r.spot.interruptions_per_hour);
  w.key("spot_restart_overhead_s").value(r.spot.restart_overhead_s);
  w.key("checkpoint_interval_s").value(r.spot.checkpoint_interval_s);
  w.key("checkpoint_write_s").value(r.spot.checkpoint_write_s);
  w.key("trials").value(r.trials);
  w.key("seed").value(static_cast<unsigned long long>(r.seed));
  w.key("calibrated").value(r.calibrated);
  w.key("watchdog_timeout_s").value(r.watchdog_timeout_s);
  for (const auto& [k, v] : extra_config) w.key(k).value(v);
  w.end_object();
  w.key("plans").begin_array();
  for (const CandidatePlan& p : r.plans) {
    w.begin_object();
    w.key("label").value(p.label());
    w.key("instance").value(p.spec.instance);
    w.key("count").value(p.spec.count);
    w.key("kind").value(to_string(p.kind));
    w.key("spot_machines").value(p.spot_machines);
    w.key("ondemand_machines").value(p.ondemand_machines);
    w.key("expected_wall_s").value(p.expected_wall_s);
    w.key("expected_cost_usd").value(p.expected_cost_usd);
    w.key("p95_wall_s").value(p.p95_wall_s);
    w.key("p95_cost_usd").value(p.p95_cost_usd);
    w.key("expected_interruptions").value(p.expected_interruptions);
    w.key("expected_lost_work_s").value(p.expected_lost_work_s);
    w.key("recovery_fixed_cost_s").value(p.recovery_fixed_cost_s);
    w.key("calibration_fault_stall_pct").value(p.calibration_fault_stall_pct);
    w.key("steady_epoch_s").value(p.steady_epoch_s);
    w.key("meets_budget").value(p.meets_budget);
    w.key("meets_deadline").value(p.meets_deadline);
    w.key("on_frontier").value(p.on_frontier);
    w.end_object();
  }
  w.end_array();
  w.key("frontier").begin_array();
  for (int i : r.frontier) w.value(i);
  w.end_array();
  w.key("any_feasible").value(r.any_feasible);
  if (metrics != nullptr) w.key("metrics").raw(metrics->to_json());
  w.end_object();
  return w.str();
}

}  // namespace stash::plan
