// Chrome-trace event recorder.
//
// Collects named duration spans on (process, thread) tracks and serializes
// them in the Chrome trace-event JSON format, loadable in chrome://tracing
// or Perfetto. The trainer uses it to emit per-iteration timelines (data
// wait / H2D / forward / backward / collectives) for every GPU worker on
// every machine, so a stall diagnosis can be read straight off the track
// view.
//
// Besides duration spans ("ph":"X") the recorder supports:
//   * instant events ("ph":"i") — point-in-time markers such as fault
//     detections and worker deaths;
//   * counter tracks ("ph":"C") — numeric series (queue depth, link
//     utilization, loader occupancy) that render as graphs under the span
//     tracks;
//   * process_name / thread_name metadata ("ph":"M") — labels each machine
//     (pid) and each GPU worker (tid) so multi-machine traces stay legible.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace stash::util {

class TraceRecorder {
 public:
  struct Span {
    std::string name;
    std::string category;
    double start_s = 0.0;     // simulated seconds
    double duration_s = 0.0;
    int pid = 0;  // track group (e.g. machine)
    int tid = 0;  // track (e.g. GPU worker)
  };

  struct Instant {
    std::string name;
    std::string category;
    double time_s = 0.0;
    int pid = 0;
    int tid = 0;
  };

  struct CounterSample {
    std::string name;  // counter-track name; one track per (pid, name)
    double time_s = 0.0;
    double value = 0.0;
    int pid = 0;
  };

  void add_span(std::string name, std::string category, double start_s,
                double duration_s, int pid, int tid);

  // Point-in-time marker on a (pid, tid) track.
  void add_instant(std::string name, std::string category, double time_s,
                   int pid, int tid);

  // Appends one sample to the counter track `name` of process `pid`; the
  // viewer renders consecutive samples of a track as a step graph.
  void add_counter(std::string name, double time_s, double value, int pid);

  // Labels a track; emitted as a thread_name metadata record.
  void name_track(int pid, int tid, std::string label);
  // Labels a process (track group); emitted as process_name metadata.
  void name_process(int pid, std::string label);

  std::size_t size() const { return spans_.size(); }
  const std::vector<Span>& spans() const { return spans_; }
  const std::vector<Instant>& instants() const { return instants_; }
  const std::vector<CounterSample>& counters() const { return counters_; }

  // Number of distinct (pid, name) counter tracks recorded so far.
  std::size_t num_counter_tracks() const;
  // Number of distinct (pid, tid) pairs referenced by spans.
  std::size_t num_span_tracks() const;

  // Chrome trace-event JSON (timestamps in microseconds, as the format
  // requires).
  std::string to_json() const;
  void write(std::ostream& os) const;

 private:
  struct TrackName {
    int pid;
    int tid;
    std::string label;
  };
  struct ProcessName {
    int pid;
    std::string label;
  };
  std::vector<Span> spans_;
  std::vector<Instant> instants_;
  std::vector<CounterSample> counters_;
  std::vector<TrackName> track_names_;
  std::vector<ProcessName> process_names_;
};

}  // namespace stash::util
