// Chrome-trace event recorder.
//
// Collects named duration spans on (process, thread) tracks and serializes
// them in the Chrome trace-event JSON format, loadable in chrome://tracing
// or Perfetto. The trainer uses it to emit per-iteration timelines (data
// wait / H2D / forward / backward / collectives) so a stall diagnosis can
// be read straight off the track view.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace stash::util {

class TraceRecorder {
 public:
  struct Span {
    std::string name;
    std::string category;
    double start_s = 0.0;     // simulated seconds
    double duration_s = 0.0;
    int pid = 0;  // track group (e.g. machine)
    int tid = 0;  // track (e.g. GPU worker)
  };

  void add_span(std::string name, std::string category, double start_s,
                double duration_s, int pid, int tid);

  // Labels a track; emitted as a thread_name metadata record.
  void name_track(int pid, int tid, std::string label);

  std::size_t size() const { return spans_.size(); }
  const std::vector<Span>& spans() const { return spans_; }

  // Chrome trace-event JSON (timestamps in microseconds, as the format
  // requires).
  std::string to_json() const;
  void write(std::ostream& os) const;

 private:
  struct TrackName {
    int pid;
    int tid;
    std::string label;
  };
  std::vector<Span> spans_;
  std::vector<TrackName> track_names_;
};

}  // namespace stash::util
