#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace stash::util {

std::string format_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table needs at least one column");
}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(std::string value) {
  if (rows_.empty()) throw std::logic_error("Table::cell before Table::row");
  if (rows_.back().size() >= headers_.size())
    throw std::logic_error("Table row has more cells than headers");
  rows_.back().push_back(std::move(value));
  return *this;
}

Table& Table::cell(const char* value) { return cell(std::string(value)); }
Table& Table::cell(double value, int precision) { return cell(format_double(value, precision)); }
Table& Table::cell(long long value) { return cell(std::to_string(value)); }
Table& Table::cell(int value) { return cell(std::to_string(value)); }
Table& Table::cell(std::size_t value) { return cell(std::to_string(value)); }

std::string Table::to_ascii() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c) width[c] = std::max(width[c], r[c].size());

  auto emit_row = [&](std::ostringstream& os, const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      std::string v = c < cells.size() ? cells[c] : "";
      os << "| " << v << std::string(width[c] - v.size(), ' ') << ' ';
    }
    os << "|\n";
  };

  std::ostringstream os;
  emit_row(os, headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << "|" << std::string(width[c] + 2, '-');
  os << "|\n";
  for (const auto& r : rows_) emit_row(os, r);
  return os.str();
}

std::string Table::to_csv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << (c ? "," : "") << quote(headers_[c]);
  os << '\n';
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < headers_.size(); ++c)
      os << (c ? "," : "") << quote(c < r.size() ? r[c] : "");
    os << '\n';
  }
  return os.str();
}

void Table::print(std::ostream& os) const { os << to_ascii(); }

}  // namespace stash::util
