// Running statistics accumulators for simulation metrics.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <stdexcept>
#include <vector>

namespace stash::util {

// Welford online mean/variance plus min/max. O(1) memory.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  std::size_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Stores all samples; supports exact percentiles. Used where the sample
// count is bounded (per-iteration times within one profiled epoch).
class SampleSet {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  std::size_t count() const { return samples_.size(); }

  double mean() const {
    if (samples_.empty()) return 0.0;
    double s = 0.0;
    for (double x : samples_) s += x;
    return s / static_cast<double>(samples_.size());
  }

  // Linear-interpolated percentile, p in [0, 100].
  double percentile(double p) const {
    if (samples_.empty()) throw std::out_of_range("percentile of empty SampleSet");
    ensure_sorted();
    if (p <= 0.0) return samples_.front();
    if (p >= 100.0) return samples_.back();
    double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
    auto lo = static_cast<std::size_t>(rank);
    double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= samples_.size()) return samples_.back();
    return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
  }

  double median() const { return percentile(50.0); }
  const std::vector<double>& samples() const { return samples_; }

 private:
  void ensure_sorted() const {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace stash::util
