#include "util/log.h"

#include <cstdlib>
#include <iostream>
#include <mutex>

namespace stash::util {

namespace {

LogLevel& level_storage() {
  static LogLevel level = parse_log_level(std::getenv("STASH_LOG"));
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel parse_log_level(const char* value) {
  if (value == nullptr) return LogLevel::kOff;
  std::string v(value);
  if (v == "debug") return LogLevel::kDebug;
  if (v == "info") return LogLevel::kInfo;
  if (v == "warn") return LogLevel::kWarn;
  if (v == "error") return LogLevel::kError;
  return LogLevel::kOff;
}

LogLevel log_level() { return level_storage(); }
void set_log_level(LogLevel level) { level_storage() = level; }

void log_write(LogLevel level, const std::string& message) {
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  std::cerr << "[" << level_name(level) << "] " << message << '\n';
}

}  // namespace stash::util
