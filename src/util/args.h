// Minimal command-line argument parser for the CLI and examples.
//
// Supports positionals plus --key=value / --key value options and --flag
// booleans. Boolean flags must be registered by the caller: an unregistered
// option followed by a non-option token takes that token as its value, so
// without registration `--progress resnet50` would swallow the positional.
// No external dependencies; throws std::invalid_argument with a usable
// message on malformed input.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

namespace stash::util {

// Full-consumption numeric parsing: the entire string must be consumed, so
// "8x" and "0.2.5" are rejected (nullopt) instead of silently truncated to
// 8 and 0.2. Shared by Args::get_int/get_double and other CLI-facing
// parsers (faults::FaultPlan::parse).
inline std::optional<int> parse_int(const std::string& s) {
  try {
    std::size_t pos = 0;
    int v = std::stoi(s, &pos);
    if (pos != s.size()) return std::nullopt;
    return v;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

// Strict unsigned 64-bit parse: digits only, full consumption, and overflow
// is a parse failure (nullopt) rather than an exception — "99999999999999999999999"
// must not crash the caller (Archive::resolve regression).
inline std::optional<std::uint64_t> parse_u64(const std::string& s) {
  if (s.empty()) return std::nullopt;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) return std::nullopt;  // would overflow
    v = v * 10 + digit;
  }
  return v;
}

inline std::optional<double> parse_double(const std::string& s) {
  try {
    std::size_t pos = 0;
    double v = std::stod(s, &pos);
    if (pos != s.size()) return std::nullopt;
    return v;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

class Args {
 public:
  // `flags` registers the boolean options: a registered flag never consumes
  // the following token, so `--progress resnet50` keeps `resnet50` as a
  // positional. Unregistered options followed by a non-option token (which
  // may be a negative number like `-5`) take it as their value.
  Args(int argc, const char* const* argv,
       std::initializer_list<const char*> flags = {}) {
    std::set<std::string> flag_set(flags.begin(), flags.end());
    for (int i = 1; i < argc; ++i) {
      std::string a = argv[i];
      if (a.rfind("--", 0) == 0) {
        std::string body = a.substr(2);
        if (body.empty()) throw std::invalid_argument("empty option '--'");
        auto eq = body.find('=');
        if (eq != std::string::npos) {
          options_[body.substr(0, eq)] = body.substr(eq + 1);
        } else if (!flag_set.contains(body) && i + 1 < argc &&
                   std::string(argv[i + 1]).rfind("--", 0) != 0) {
          options_[body] = argv[++i];
        } else {
          options_[body] = "";  // bare flag
        }
      } else {
        positionals_.push_back(std::move(a));
      }
    }
  }

  std::size_t num_positional() const { return positionals_.size(); }

  std::string positional(std::size_t index, const std::string& fallback = "") const {
    return index < positionals_.size() ? positionals_[index] : fallback;
  }

  bool has(const std::string& key) const { return options_.contains(key); }

  std::string get(const std::string& key, const std::string& fallback = "") const {
    auto it = options_.find(key);
    return it != options_.end() ? it->second : fallback;
  }

  int get_int(const std::string& key, int fallback) const {
    auto it = options_.find(key);
    if (it == options_.end()) return fallback;
    std::optional<int> v = parse_int(it->second);
    if (!v)
      throw std::invalid_argument("option --" + key + " expects an integer, got '" +
                                  it->second + "'");
    return *v;
  }

  // All parsed options in key order (bare flags map to ""). Lets generic
  // forwarders (stash_cli query) pass unknown options through verbatim.
  const std::map<std::string, std::string>& options() const { return options_; }

  double get_double(const std::string& key, double fallback) const {
    auto it = options_.find(key);
    if (it == options_.end()) return fallback;
    std::optional<double> v = parse_double(it->second);
    if (!v)
      throw std::invalid_argument("option --" + key + " expects a number, got '" +
                                  it->second + "'");
    return *v;
  }

 private:
  std::vector<std::string> positionals_;
  std::map<std::string, std::string> options_;
};

}  // namespace stash::util
