// Minimal command-line argument parser for the CLI and examples.
//
// Supports positionals plus --key=value / --key value options and --flag
// booleans. No external dependencies; throws std::invalid_argument with a
// usable message on malformed input.
#pragma once

#include <cstddef>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace stash::util {

class Args {
 public:
  Args(int argc, const char* const* argv) {
    for (int i = 1; i < argc; ++i) {
      std::string a = argv[i];
      if (a.rfind("--", 0) == 0) {
        std::string body = a.substr(2);
        if (body.empty()) throw std::invalid_argument("empty option '--'");
        auto eq = body.find('=');
        if (eq != std::string::npos) {
          options_[body.substr(0, eq)] = body.substr(eq + 1);
        } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
          options_[body] = argv[++i];
        } else {
          options_[body] = "";  // bare flag
        }
      } else {
        positionals_.push_back(std::move(a));
      }
    }
  }

  std::size_t num_positional() const { return positionals_.size(); }

  std::string positional(std::size_t index, const std::string& fallback = "") const {
    return index < positionals_.size() ? positionals_[index] : fallback;
  }

  bool has(const std::string& key) const { return options_.contains(key); }

  std::string get(const std::string& key, const std::string& fallback = "") const {
    auto it = options_.find(key);
    return it != options_.end() ? it->second : fallback;
  }

  int get_int(const std::string& key, int fallback) const {
    auto it = options_.find(key);
    if (it == options_.end()) return fallback;
    try {
      return std::stoi(it->second);
    } catch (const std::exception&) {
      throw std::invalid_argument("option --" + key + " expects an integer, got '" +
                                  it->second + "'");
    }
  }

  double get_double(const std::string& key, double fallback) const {
    auto it = options_.find(key);
    if (it == options_.end()) return fallback;
    try {
      return std::stod(it->second);
    } catch (const std::exception&) {
      throw std::invalid_argument("option --" + key + " expects a number, got '" +
                                  it->second + "'");
    }
  }

 private:
  std::vector<std::string> positionals_;
  std::map<std::string, std::string> options_;
};

}  // namespace stash::util
