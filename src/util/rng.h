// Deterministic random number generation.
//
// Every stochastic component of the simulator draws from an Rng that is
// explicitly seeded by the experiment configuration, so a run is fully
// reproducible from its seed. Child generators are derived with
// SplitMix64-style mixing so that two components never share a stream.
#pragma once

#include <cstdint>
#include <random>

namespace stash::util {

// Mixes a 64-bit value; used to derive independent child seeds.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97f4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed)
      : engine_(splitmix64(seed)), seed_base_(splitmix64(seed)) {}

  // Derives an independent generator for a named sub-component.
  Rng child(std::uint64_t stream_id) const {
    return Rng(seed_base_ ^ splitmix64(stream_id));
  }

  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  // Normal draw clamped to [lo, hi]; convenient for jittered service times
  // that must stay positive.
  double clamped_normal(double mean, double stddev, double lo, double hi) {
    double v = normal(mean, stddev);
    if (v < lo) return lo;
    if (v > hi) return hi;
    return v;
  }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_base_ = 0;
};

}  // namespace stash::util
