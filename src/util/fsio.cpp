#include "util/fsio.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace stash::util {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + " " + path + ": " + std::strerror(errno));
}

}  // namespace

void fsync_dir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

void write_file_durable(const std::string& dir, const std::string& name,
                        const std::string& content) {
  const std::string tmp = dir + "/." + name + ".tmp";
  const std::string path = dir + "/" + name;
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail("cannot create", tmp);
  std::size_t off = 0;
  while (off < content.size()) {
    ssize_t n = ::write(fd, content.data() + off, content.size() - off);
    if (n < 0) {
      ::close(fd);
      fail("cannot write", tmp);
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    fail("cannot fsync", tmp);
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) fail("cannot rename", path);
  fsync_dir(dir);
}

}  // namespace stash::util
