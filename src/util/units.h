// Units and quantity helpers used throughout the library.
//
// All simulated time is in seconds (double), data sizes in bytes (double —
// sizes reach hundreds of GB and participate in rate arithmetic), rates in
// bytes/second and FLOP rates in FLOP/second. The constexpr helpers below
// make call sites read like the specs they encode: `gbps(25)`,
// `gib(16)`, `usec(60)`.
#pragma once

namespace stash::util {

// --- data sizes (bytes) ---
constexpr double kib(double v) { return v * 1024.0; }
constexpr double mib(double v) { return v * 1024.0 * 1024.0; }
constexpr double gib(double v) { return v * 1024.0 * 1024.0 * 1024.0; }
constexpr double kb(double v) { return v * 1e3; }
constexpr double mb(double v) { return v * 1e6; }
constexpr double gb(double v) { return v * 1e9; }

// --- rates (bytes per second) ---
// Network link rates are quoted in decimal bits per second.
constexpr double gbps(double v) { return v * 1e9 / 8.0; }
constexpr double mbps(double v) { return v * 1e6 / 8.0; }
// Bus/interconnect rates are usually quoted in decimal bytes per second.
constexpr double gb_per_s(double v) { return v * 1e9; }
constexpr double mb_per_s(double v) { return v * 1e6; }

// --- time (seconds) ---
constexpr double usec(double v) { return v * 1e-6; }
constexpr double msec(double v) { return v * 1e-3; }
constexpr double minutes(double v) { return v * 60.0; }
constexpr double hours(double v) { return v * 3600.0; }

// --- compute ---
constexpr double gflop(double v) { return v * 1e9; }
constexpr double tflops(double v) { return v * 1e12; }

// --- conversions for reporting ---
constexpr double to_gb_per_s(double bytes_per_s) { return bytes_per_s / 1e9; }
constexpr double to_gbps(double bytes_per_s) { return bytes_per_s * 8.0 / 1e9; }
constexpr double to_gib(double bytes) { return bytes / (1024.0 * 1024.0 * 1024.0); }
constexpr double to_hours(double seconds) { return seconds / 3600.0; }

}  // namespace stash::util
