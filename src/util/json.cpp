#include "util/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace stash::util {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_double(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

void JsonWriter::comma_for_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!need_comma_.empty()) {
    if (need_comma_.back() == '1') out_ += ',';
    need_comma_.back() = '1';
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma_for_value();
  out_ += '{';
  need_comma_.push_back('0');
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  need_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma_for_value();
  out_ += '[';
  need_comma_.push_back('0');
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  need_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  comma_for_value();
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  comma_for_value();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(double v) {
  comma_for_value();
  out_ += json_double(v);
  return *this;
}

JsonWriter& JsonWriter::value(int v) { return value(static_cast<long long>(v)); }

JsonWriter& JsonWriter::value(long long v) {
  comma_for_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(unsigned long long v) {
  comma_for_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma_for_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma_for_value();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::raw(const std::string& json) {
  comma_for_value();
  out_ += json;
  return *this;
}

}  // namespace stash::util
