#include "util/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace stash::util {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: {
        const unsigned char uc = static_cast<unsigned char>(c);
        if (uc < 0x20) {
          // Remaining control characters (NUL included) have no short form.
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", uc);
          out += buf;
        } else {
          out += c;  // includes DEL and raw UTF-8 bytes, both legal in JSON
        }
      }
    }
  }
  return out;
}

std::string json_double(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

void JsonWriter::comma_for_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!need_comma_.empty()) {
    if (need_comma_.back() == '1') out_ += ',';
    need_comma_.back() = '1';
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma_for_value();
  out_ += '{';
  need_comma_.push_back('0');
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  need_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma_for_value();
  out_ += '[';
  need_comma_.push_back('0');
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  need_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  comma_for_value();
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  comma_for_value();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(double v) {
  comma_for_value();
  out_ += json_double(v);
  return *this;
}

JsonWriter& JsonWriter::value(int v) { return value(static_cast<long long>(v)); }

JsonWriter& JsonWriter::value(long long v) {
  comma_for_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(unsigned long long v) {
  comma_for_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma_for_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma_for_value();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::raw(const std::string& json) {
  comma_for_value();
  out_ += json;
  return *this;
}

// ---------------------------------------------------------------------------
// JsonValue

const JsonValue& JsonValue::at(std::size_t i) const {
  static const JsonValue kNullValue;
  if (is_array() && i < array_.size()) return array_[i];
  return kNullValue;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : members_)
    if (k == key) return &v;
  return nullptr;
}

const JsonValue& JsonValue::get(const std::string& key) const {
  static const JsonValue kNullValue;
  const JsonValue* v = find(key);
  return v != nullptr ? *v : kNullValue;
}

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double num, std::string raw) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = num;
  v.string_ = std::move(raw);
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::make_object(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.members_ = std::move(members);
  return v;
}

void JsonValue::dump_to(std::string& out) const {
  switch (kind_) {
    case Kind::kNull: out += "null"; return;
    case Kind::kBool: out += bool_ ? "true" : "false"; return;
    case Kind::kNumber:
      // Raw spelling from the source (or from make_number); falls back to
      // shortest-round-trip when a caller built one without a spelling.
      out += string_.empty() ? json_double(number_) : string_;
      return;
    case Kind::kString:
      out += '"';
      out += json_escape(string_);
      out += '"';
      return;
    case Kind::kArray: {
      out += '[';
      bool first = true;
      for (const JsonValue& v : array_) {
        if (!first) out += ',';
        first = false;
        v.dump_to(out);
      }
      out += ']';
      return;
    }
    case Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : members_) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += json_escape(k);
        out += "\":";
        v.dump_to(out);
      }
      out += '}';
      return;
    }
  }
}

std::string JsonValue::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

// ---------------------------------------------------------------------------
// Parser: strict recursive descent over the RFC 8259 grammar.

namespace {

class Parser {
 public:
  explicit Parser(const std::string& s) : s_(s) {}

  JsonValue parse_document() {
    ws();
    JsonValue v = parse_value();
    ws();
    if (pos_ != s_.size()) fail("trailing garbage after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw JsonParseError(what, pos_);
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  void ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r'))
      ++pos_;
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  void literal(const char* word, std::size_t n) {
    if (s_.compare(pos_, n, word) != 0) fail("invalid literal");
    pos_ += n;
  }

  JsonValue parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue::make_string(parse_string());
      case 't': literal("true", 4); return JsonValue::make_bool(true);
      case 'f': literal("false", 5); return JsonValue::make_bool(false);
      case 'n': literal("null", 4); return JsonValue::make_null();
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    std::vector<std::pair<std::string, JsonValue>> members;
    ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(members));
    }
    while (true) {
      ws();
      std::string key = parse_string();
      ws();
      expect(':');
      ws();
      members.emplace_back(std::move(key), parse_value());
      ws();
      if (peek() == '}') {
        ++pos_;
        return JsonValue::make_object(std::move(members));
      }
      expect(',');
    }
  }

  JsonValue parse_array() {
    expect('[');
    std::vector<JsonValue> items;
    ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(items));
    }
    while (true) {
      ws();
      items.push_back(parse_value());
      ws();
      if (peek() == ']') {
        ++pos_;
        return JsonValue::make_array(std::move(items));
      }
      expect(',');
    }
  }

  unsigned hex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = peek();
      unsigned d;
      if (c >= '0' && c <= '9') d = static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') d = static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') d = static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid \\u escape");
      v = v * 16 + d;
      ++pos_;
    }
    return v;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      unsigned char c = static_cast<unsigned char>(s_[pos_]);
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += static_cast<char>(c);
        ++pos_;
        continue;
      }
      ++pos_;  // consume backslash
      switch (peek()) {
        case '"': out += '"'; ++pos_; break;
        case '\\': out += '\\'; ++pos_; break;
        case '/': out += '/'; ++pos_; break;
        case 'b': out += '\b'; ++pos_; break;
        case 'f': out += '\f'; ++pos_; break;
        case 'n': out += '\n'; ++pos_; break;
        case 'r': out += '\r'; ++pos_; break;
        case 't': out += '\t'; ++pos_; break;
        case 'u': {
          ++pos_;
          unsigned cp = hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate must follow.
            if (peek() != '\\') fail("unpaired surrogate");
            ++pos_;
            if (peek() != 'u') fail("unpaired surrogate");
            ++pos_;
            unsigned lo = hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) fail("invalid low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: fail("invalid escape");
      }
    }
  }

  void digits() {
    if (!(peek() >= '0' && peek() <= '9')) fail("expected digit");
    while (peek() >= '0' && peek() <= '9') ++pos_;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (peek() == '0') {
      ++pos_;
    } else {
      digits();
    }
    if (peek() == '.') {
      ++pos_;
      digits();
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      digits();
    }
    if (pos_ == start) fail("expected value");
    std::string raw = s_.substr(start, pos_ - start);
    // strtod over the validated spelling: exact for everything json_double
    // emits (shortest-round-trip decimals convert back bit-identically).
    double v = std::strtod(raw.c_str(), nullptr);
    return JsonValue::make_number(v, std::move(raw));
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue json_parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace stash::util
