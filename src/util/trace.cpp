#include "util/trace.h"

#include <algorithm>
#include <ostream>
#include <set>
#include <stdexcept>
#include <utility>

#include "util/json.h"

namespace stash::util {

void TraceRecorder::add_span(std::string name, std::string category, double start_s,
                             double duration_s, int pid, int tid) {
  if (duration_s < 0.0) throw std::invalid_argument("TraceRecorder: negative duration");
  spans_.push_back(Span{std::move(name), std::move(category), start_s, duration_s,
                        pid, tid});
}

void TraceRecorder::add_instant(std::string name, std::string category,
                                double time_s, int pid, int tid) {
  // Simulated time starts at zero; a negative timestamp is always a bug.
  if (time_s < 0.0) throw std::invalid_argument("TraceRecorder: negative time");
  instants_.push_back(Instant{std::move(name), std::move(category), time_s, pid, tid});
}

void TraceRecorder::add_counter(std::string name, double time_s, double value,
                                int pid) {
  if (time_s < 0.0) throw std::invalid_argument("TraceRecorder: negative time");
  counters_.push_back(CounterSample{std::move(name), time_s, value, pid});
}

void TraceRecorder::name_track(int pid, int tid, std::string label) {
  track_names_.push_back(TrackName{pid, tid, std::move(label)});
}

void TraceRecorder::name_process(int pid, std::string label) {
  process_names_.push_back(ProcessName{pid, std::move(label)});
}

std::size_t TraceRecorder::num_counter_tracks() const {
  std::set<std::pair<int, std::string>> tracks;
  for (const auto& c : counters_) tracks.emplace(c.pid, c.name);
  return tracks.size();
}

std::size_t TraceRecorder::num_span_tracks() const {
  std::set<std::pair<int, int>> tracks;
  for (const auto& s : spans_) tracks.emplace(s.pid, s.tid);
  return tracks.size();
}

std::string TraceRecorder::to_json() const {
  std::string out;
  out += "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) out += ",";
    first = false;
  };
  for (const auto& p : process_names_) {
    sep();
    out += "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" +
           std::to_string(p.pid) + ",\"tid\":0,\"args\":{\"name\":\"" +
           json_escape(p.label) + "\"}}";
  }
  for (const auto& t : track_names_) {
    sep();
    out += "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" +
           std::to_string(t.pid) + ",\"tid\":" + std::to_string(t.tid) +
           ",\"args\":{\"name\":\"" + json_escape(t.label) + "\"}}";
  }
  for (const auto& s : spans_) {
    sep();
    out += "{\"ph\":\"X\",\"name\":\"" + json_escape(s.name) + "\",\"cat\":\"" +
           json_escape(s.category) + "\",\"ts\":" + json_double(s.start_s * 1e6) +
           ",\"dur\":" + json_double(s.duration_s * 1e6) +
           ",\"pid\":" + std::to_string(s.pid) +
           ",\"tid\":" + std::to_string(s.tid) + "}";
  }
  for (const auto& i : instants_) {
    sep();
    out += "{\"ph\":\"i\",\"s\":\"t\",\"name\":\"" + json_escape(i.name) +
           "\",\"cat\":\"" + json_escape(i.category) +
           "\",\"ts\":" + json_double(i.time_s * 1e6) +
           ",\"pid\":" + std::to_string(i.pid) +
           ",\"tid\":" + std::to_string(i.tid) + "}";
  }
  for (const auto& c : counters_) {
    sep();
    out += "{\"ph\":\"C\",\"name\":\"" + json_escape(c.name) +
           "\",\"ts\":" + json_double(c.time_s * 1e6) +
           ",\"pid\":" + std::to_string(c.pid) + ",\"args\":{\"value\":" +
           json_double(c.value) + "}}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

void TraceRecorder::write(std::ostream& os) const { os << to_json(); }

}  // namespace stash::util
