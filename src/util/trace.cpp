#include "util/trace.h"

#include <ostream>
#include <sstream>
#include <stdexcept>

namespace stash::util {

namespace {

// JSON string escaping for the few characters that can appear in labels.
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

void TraceRecorder::add_span(std::string name, std::string category, double start_s,
                             double duration_s, int pid, int tid) {
  if (duration_s < 0.0) throw std::invalid_argument("TraceRecorder: negative duration");
  spans_.push_back(Span{std::move(name), std::move(category), start_s, duration_s,
                        pid, tid});
}

void TraceRecorder::name_track(int pid, int tid, std::string label) {
  track_names_.push_back(TrackName{pid, tid, std::move(label)});
}

std::string TraceRecorder::to_json() const {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& t : track_names_) {
    if (!first) os << ",";
    first = false;
    os << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" << t.pid
       << ",\"tid\":" << t.tid << ",\"args\":{\"name\":\"" << escape(t.label)
       << "\"}}";
  }
  for (const auto& s : spans_) {
    if (!first) os << ",";
    first = false;
    os << "{\"ph\":\"X\",\"name\":\"" << escape(s.name) << "\",\"cat\":\""
       << escape(s.category) << "\",\"ts\":" << s.start_s * 1e6
       << ",\"dur\":" << s.duration_s * 1e6 << ",\"pid\":" << s.pid
       << ",\"tid\":" << s.tid << "}";
  }
  os << "],\"displayTimeUnit\":\"ms\"}";
  return os.str();
}

void TraceRecorder::write(std::ostream& os) const { os << to_json(); }

}  // namespace stash::util
