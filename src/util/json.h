// Minimal JSON emission helpers shared by every machine-readable output
// (TraceRecorder, MetricsRegistry, RunManifest).
//
// There is deliberately no parser here — the repo has no dependency budget
// for one and never consumes JSON, only produces it. What matters for the
// producers is (a) strings are escaped correctly and (b) doubles round-trip
// exactly, so a manifest reader recovers bit-identical stall percentages.
#pragma once

#include <string>

namespace stash::util {

// Escapes `s` for inclusion inside a JSON string literal (quotes not
// included). Control characters are \u-escaped.
std::string json_escape(const std::string& s);

// Shortest decimal representation that round-trips the exact double
// (std::to_chars). Non-finite values have no JSON spelling and become
// "null" — callers that care must clamp first.
std::string json_double(double v);

// Streaming JSON writer with automatic comma placement. Usage:
//   JsonWriter w;
//   w.begin_object();
//   w.key("x").value(1.5);
//   w.key("tags").begin_array().value("a").value("b").end_array();
//   w.end_object();
//   std::string doc = w.str();
// The writer does not validate nesting beyond comma bookkeeping; callers
// are expected to emit well-formed structures (tests enforce it).
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(const std::string& k);
  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(int v);
  JsonWriter& value(long long v);
  JsonWriter& value(unsigned long long v);
  JsonWriter& value(bool v);
  JsonWriter& null();
  // Splices a pre-serialized JSON fragment in value position.
  JsonWriter& raw(const std::string& json);

  const std::string& str() const { return out_; }

 private:
  void comma_for_value();
  std::string out_;
  // Whether the next value/key at the current nesting level needs a comma.
  std::string need_comma_;  // stack of flags, one char per open scope
  bool after_key_ = false;
};

}  // namespace stash::util
