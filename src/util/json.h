// Minimal JSON emission and parsing helpers shared by every
// machine-readable surface (TraceRecorder, MetricsRegistry, RunManifest,
// the run archive).
//
// Emission guarantees: (a) strings are escaped correctly — every control
// character U+0000..U+001F is escaped, either with its short form
// (\b \t \n \f \r \" \\) or as \u00XX — and (b) doubles round-trip exactly
// (shortest-round-trip via std::to_chars). Non-finite doubles have no JSON
// spelling; json_double maps them to "null", and JsonWriter::value(double)
// goes through json_double, so no emitter can produce a bare `nan`/`inf`
// token. Code that formats doubles into JSON by hand must use json_double —
// the adversarial-string and non-finite regression tests in
// tests/util/json_test.cpp pin both properties.
//
// Parsing exists for exactly one consumer: the run archive
// (src/archive/), which reads back the JSONL records it wrote. The parser
// is strict RFC 8259 (no trailing commas, no comments, no NaN/Infinity
// literals) and preserves both object key order and the raw spelling of
// numbers, so parse(x).dump() == x for any document JsonWriter produced —
// the round-trip property the archive's content-addressed ids rely on.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace stash::util {

// Escapes `s` for inclusion inside a JSON string literal (quotes not
// included). All control characters are escaped; everything >= 0x20 passes
// through untouched (UTF-8 sequences are preserved byte-for-byte).
std::string json_escape(const std::string& s);

// Shortest decimal representation that round-trips the exact double
// (std::to_chars). Non-finite values have no JSON spelling and become
// "null" — callers that need a number must clamp first.
std::string json_double(double v);

// Streaming JSON writer with automatic comma placement. Usage:
//   JsonWriter w;
//   w.begin_object();
//   w.key("x").value(1.5);
//   w.key("tags").begin_array().value("a").value("b").end_array();
//   w.end_object();
//   std::string doc = w.str();
// The writer does not validate nesting beyond comma bookkeeping; callers
// are expected to emit well-formed structures (tests enforce it).
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(const std::string& k);
  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(int v);
  JsonWriter& value(long long v);
  JsonWriter& value(unsigned long long v);
  JsonWriter& value(bool v);
  JsonWriter& null();
  // Splices a pre-serialized JSON fragment in value position.
  JsonWriter& raw(const std::string& json);

  const std::string& str() const { return out_; }

 private:
  void comma_for_value();
  std::string out_;
  // Whether the next value/key at the current nesting level needs a comma.
  std::string need_comma_;  // stack of flags, one char per open scope
  bool after_key_ = false;
};

// Thrown by json_parse on malformed input; what() names the byte offset.
class JsonParseError : public std::runtime_error {
 public:
  JsonParseError(const std::string& what, std::size_t offset)
      : std::runtime_error(what + " at offset " + std::to_string(offset)),
        offset_(offset) {}
  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

// Parsed JSON document. Objects keep insertion order (so dump() reproduces
// the source) and numbers keep their raw source spelling alongside the
// converted double (so dump() is byte-exact and integers survive intact).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  double as_double(double fallback = 0.0) const {
    return is_number() ? number_ : fallback;
  }
  long long as_int(long long fallback = 0) const {
    return is_number() ? static_cast<long long>(number_) : fallback;
  }
  const std::string& as_string() const { return string_; }
  std::string as_string(const std::string& fallback) const {
    return is_string() ? string_ : fallback;
  }

  // Array access. size() is 0 for non-arrays/objects.
  std::size_t size() const {
    return is_array() ? array_.size() : is_object() ? members_.size() : 0;
  }
  const JsonValue& at(std::size_t i) const;
  const std::vector<JsonValue>& items() const { return array_; }

  // Object access: find returns nullptr when absent (or not an object);
  // `get` returns a shared null value instead, so lookups chain safely:
  // doc.get("manifest").get("stall_report").find("fetch_stall_pct").
  const JsonValue* find(const std::string& key) const;
  const JsonValue& get(const std::string& key) const;
  bool has(const std::string& key) const { return find(key) != nullptr; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  // Compact re-serialization: key order and number spellings are preserved,
  // strings re-escape through json_escape. For any document produced by
  // JsonWriter, dump(parse(doc)) == doc.
  std::string dump() const;

  // Construction helpers (used by the parser; handy in tests).
  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double v, std::string raw);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(std::vector<JsonValue> items);
  static JsonValue make_object(
      std::vector<std::pair<std::string, JsonValue>> members);

 private:
  void dump_to(std::string& out) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;  // string value, or the raw number spelling
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

// Strict RFC 8259 parse of exactly one document (trailing whitespace
// allowed, trailing garbage is an error). Throws JsonParseError.
JsonValue json_parse(const std::string& text);

}  // namespace stash::util
