// Crash-safe file writes shared by every persistent surface (the run
// archive's records, SimCache's persisted results).
//
// The discipline: write the full content to a dot-prefixed temp file in the
// destination directory, fsync it, rename over the final name, then fsync
// the directory. A crash at any point leaves either the old state or the
// complete new file — never a torn one.
#pragma once

#include <string>

namespace stash::util {

// Flushes directory metadata so a rename/creation survives a crash. Best
// effort: some filesystems reject O_DIRECTORY fsync, which is not fatal.
void fsync_dir(const std::string& dir);

// Crash-safe whole-file write of `dir`/`name`. Throws std::runtime_error
// (with errno text) on any I/O failure.
void write_file_durable(const std::string& dir, const std::string& name,
                        const std::string& content);

}  // namespace stash::util
