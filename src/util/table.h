// ASCII table / CSV printer used by the bench harness to emit the rows and
// series that the paper's tables and figures report.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace stash::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Starts a new row. Subsequent add_*() calls append cells to it.
  Table& row();
  Table& cell(std::string value);
  Table& cell(const char* value);
  // Numeric cell with fixed precision.
  Table& cell(double value, int precision = 2);
  Table& cell(long long value);
  Table& cell(int value);
  Table& cell(std::size_t value);

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_columns() const { return headers_.size(); }
  const std::vector<std::string>& header() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  // Renders with aligned columns and a header rule.
  std::string to_ascii() const;
  // Renders RFC-4180-ish CSV (quotes cells containing commas/quotes).
  std::string to_csv() const;

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with the given precision (helper shared with benches).
std::string format_double(double value, int precision);

}  // namespace stash::util
