// Minimal leveled logging. Off by default so that benches print only the
// tables they are asked for; enable with STASH_LOG=debug|info|warn|error.
// The variable names the *least severe* level that still prints —
// STASH_LOG=warn shows warnings and errors, STASH_LOG=debug everything.
#pragma once

#include <sstream>
#include <string>

namespace stash::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Current threshold, read once from the STASH_LOG environment variable.
LogLevel log_level();
void set_log_level(LogLevel level);

// STASH_LOG value -> threshold: "debug", "info", "warn", "error"; anything
// else (including unset) is kOff. Exposed for tests.
LogLevel parse_log_level(const char* value);

void log_write(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
std::string log_concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::kDebug)
    log_write(LogLevel::kDebug, detail::log_concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::kInfo)
    log_write(LogLevel::kInfo, detail::log_concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::kWarn)
    log_write(LogLevel::kWarn, detail::log_concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_error(Args&&... args) {
  if (log_level() <= LogLevel::kError)
    log_write(LogLevel::kError, detail::log_concat(std::forward<Args>(args)...));
}

}  // namespace stash::util
