#include "obs/critical_path.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "obs/causal_log.h"
#include "util/json.h"
#include "util/trace.h"

namespace stash::obs {

namespace {

bool is_comm(Category c) {
  return c == Category::kInterconnect || c == Category::kNetwork;
}

// Backward walk over one iteration window. Segments are collected in
// reverse (end to start) and flipped once; every segment boundary is the
// walker's own position `t`, so adjacent segments share bits exactly.
IterationBlame walk_iteration(const std::vector<CausalEdge>& edges,
                              const IterationMark& m) {
  IterationBlame ib;
  ib.iteration = m.iteration;
  ib.measured = m.measured;
  ib.rework = m.rework;
  ib.start_s = m.start_s;
  ib.end_s = m.end_s;

  const double s0 = m.start_s;
  double t = m.end_s;
  int eid = m.anchor;

  auto claim = [&](double lo, Category c, const char* phase, int machine,
                   int gpu) {
    if (lo < s0) lo = s0;
    if (lo >= t) return;
    BlameSegment seg;
    seg.start_s = lo;
    seg.end_s = t;
    seg.category = c;
    seg.phase = phase;
    seg.machine = static_cast<std::int16_t>(machine);
    seg.gpu = static_cast<std::int16_t>(gpu);
    ib.segments.push_back(seg);
    ib.by_category[static_cast<std::size_t>(c)] += t - lo;
    t = lo;
  };

  while (t > s0) {
    if (eid < 0) {
      claim(s0, Category::kUnattributed, "gap", 0, 0);
      break;
    }
    const CausalEdge& e = edges[static_cast<std::size_t>(eid)];
    if (e.end_s < t) {
      // The chain cannot explain (e.end_s, t]: no edge covers it.
      claim(e.end_s, Category::kUnattributed, "gap", e.machine, e.gpu);
      continue;  // revisit the same edge at its own end time
    }
    if (!e.wait) {
      claim(e.start_s, e.category, e.phase, e.machine, e.gpu);
      eid = e.prev;
    } else if (e.cause >= 0 && e.end_s > e.start_s) {
      eid = e.cause;  // the producer's activity covers the wait
    } else if (e.end_s > e.start_s) {
      // Blocked with no recorded producer: backpressure-style wait.
      claim(e.start_s, e.category, e.phase, e.machine, e.gpu);
      eid = e.prev;
    } else {
      eid = e.prev;  // instantaneous wait: pure program order
    }
  }
  std::reverse(ib.segments.begin(), ib.segments.end());
  return ib;
}

double clamp_pct(double num, double den) {
  if (!(den > 1e-12)) return 0.0;
  double pct = num / den * 100.0;
  return std::isfinite(pct) ? pct : 0.0;
}

}  // namespace

BlameReport analyze_critical_path(const CausalLog& log) {
  BlameReport r;
  const auto& edges = log.edges();

  std::set<std::int32_t> measured_iters;
  for (const IterationMark& m : log.iterations()) {
    IterationBlame ib = walk_iteration(edges, m);
    if (ib.measured) {
      ++r.measured_iterations;
      r.measured_window_s += ib.end_s - ib.start_s;
      for (std::size_t c = 0; c < kBlameCategories; ++c)
        r.totals_s[c] += ib.by_category[c];
      for (const BlameSegment& seg : ib.segments)
        if (is_comm(seg.category)) r.comm_on_path_s += seg.end_s - seg.start_s;
      measured_iters.insert(m.iteration);
    }
    r.iterations.push_back(std::move(ib));
  }
  if (r.measured_iterations > 0)
    for (std::size_t c = 0; c < kBlameCategories; ++c)
      r.per_iteration_s[c] = r.totals_s[c] / r.measured_iterations;

  for (const CausalEdge& e : edges)
    if (!e.wait && is_comm(e.category) && measured_iters.count(e.iteration))
      r.comm_activity_s += e.end_s - e.start_s;
  r.comm_hidden_s = std::max(0.0, r.comm_activity_s - r.comm_on_path_s);

  for (const FaultWindow& w : log.fault_windows()) {
    r.fault_window_s += w.end_s - w.start_s;
    ++r.fault_windows;
  }

  const auto cat = [&](Category c) {
    return r.per_iteration_s[static_cast<std::size_t>(c)];
  };
  const double total = r.measured_iterations > 0
                           ? r.measured_window_s / r.measured_iterations
                           : 0.0;
  r.ic_stall_pct = clamp_pct(cat(Category::kInterconnect),
                             cat(Category::kCompute));
  r.nw_stall_pct =
      clamp_pct(cat(Category::kNetwork), total - cat(Category::kNetwork));
  r.prep_stall_pct = clamp_pct(cat(Category::kCpuPrep) + cat(Category::kH2D) +
                                   cat(Category::kPipeline),
                               total);
  r.fetch_stall_pct = clamp_pct(cat(Category::kDisk), total);
  return r;
}

namespace {

void write_category_map(util::JsonWriter& w,
                        const std::array<double, kBlameCategories>& v) {
  w.begin_object();
  for (std::size_t c = 0; c < kBlameCategories; ++c)
    w.key(category_name(static_cast<Category>(c))).value(v[c]);
  w.end_object();
}

}  // namespace

void write_blame_fields(util::JsonWriter& w, const BlameReport& r) {
  w.key("schema").value("stash.blame/1");
  w.key("scenario").value(r.scenario);
  w.key("model").value(r.model_name);
  w.key("config").value(r.config_label);
  w.key("gpus").value(r.gpus);
  w.key("per_gpu_batch").value(r.per_gpu_batch);
  w.key("measured_iterations").value(r.measured_iterations);
  w.key("measured_window_s").value(r.measured_window_s);
  w.key("totals_s");
  write_category_map(w, r.totals_s);
  w.key("per_iteration_s");
  write_category_map(w, r.per_iteration_s);
  w.key("stall_pcts").begin_object();
  w.key("interconnect").value(r.ic_stall_pct);
  w.key("network").value(r.nw_stall_pct);
  w.key("prep").value(r.prep_stall_pct);
  w.key("fetch").value(r.fetch_stall_pct);
  w.end_object();
  w.key("overlap").begin_object();
  w.key("comm_activity_s").value(r.comm_activity_s);
  w.key("comm_on_path_s").value(r.comm_on_path_s);
  w.key("comm_hidden_s").value(r.comm_hidden_s);
  w.end_object();
  w.key("faults").begin_object();
  w.key("windows").value(r.fault_windows);
  w.key("seconds").value(r.fault_window_s);
  w.end_object();
  w.key("iterations").begin_array();
  for (const IterationBlame& ib : r.iterations) {
    w.begin_object();
    w.key("iteration").value(ib.iteration);
    w.key("measured").value(ib.measured);
    w.key("rework").value(ib.rework);
    w.key("start_s").value(ib.start_s);
    w.key("end_s").value(ib.end_s);
    w.key("by_category_s");
    write_category_map(w, ib.by_category);
    w.key("segments").begin_array();
    for (const BlameSegment& s : ib.segments) {
      w.begin_object();
      w.key("start_s").value(s.start_s);
      w.key("end_s").value(s.end_s);
      w.key("category").value(category_name(s.category));
      w.key("phase").value(s.phase);
      w.key("machine").value(static_cast<int>(s.machine));
      w.key("gpu").value(static_cast<int>(s.gpu));
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
}

std::string blame_to_json(const BlameReport& r) {
  util::JsonWriter w;
  w.begin_object();
  write_blame_fields(w, r);
  w.end_object();
  return w.str();
}

std::string blame_to_folded(const BlameReport& r) {
  // machineM;gpuG;phase;category -> microseconds, sorted by stack string so
  // the output is deterministic regardless of walk order.
  std::map<std::string, double> stacks;
  for (const IterationBlame& ib : r.iterations) {
    if (!ib.measured) continue;
    for (const BlameSegment& s : ib.segments) {
      std::string key = "machine" + std::to_string(s.machine) + ";gpu" +
                        std::to_string(s.gpu) + ";" + s.phase + ";" +
                        category_name(s.category);
      stacks[key] += s.end_s - s.start_s;
    }
  }
  std::string out;
  for (const auto& [stack, seconds] : stacks) {
    long long us = std::llround(seconds * 1e6);
    if (us <= 0) continue;
    out += stack;
    out += ' ';
    out += std::to_string(us);
    out += '\n';
  }
  return out;
}

void annotate_trace(const BlameReport& r, util::TraceRecorder& trace) {
  constexpr int kCriticalPathTid = 120;
  std::set<int> named;
  for (const IterationBlame& ib : r.iterations) {
    for (const BlameSegment& s : ib.segments) {
      if (named.insert(s.machine).second)
        trace.name_track(s.machine, kCriticalPathTid, "critical path");
      trace.add_span(std::string(category_name(s.category)) + ":" + s.phase,
                     "critical_path", s.start_s, s.end_s - s.start_s,
                     s.machine, kCriticalPathTid);
    }
  }
}

}  // namespace stash::obs
