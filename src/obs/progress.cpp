#include "obs/progress.h"

#include <cstdio>
#include <iostream>

namespace stash::obs {

ProgressReporter::ProgressReporter(std::ostream* os)
    : os_(os != nullptr ? os : &std::cerr),
      start_(std::chrono::steady_clock::now()) {}

void ProgressReporter::begin(const std::string& task, int total) {
  std::lock_guard<std::mutex> lock(mu_);
  task_ = task;
  total_ = total;
  done_ = 0;
  start_ = std::chrono::steady_clock::now();
}

void ProgressReporter::step(const std::string& what) {
  std::lock_guard<std::mutex> lock(mu_);
  ++done_;
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  char suffix[64];
  std::snprintf(suffix, sizeof(suffix), ", %.2f s elapsed", elapsed);
  std::string counter = total_ > 0 ? std::to_string(done_) + "/" +
                                         std::to_string(total_)
                                   : std::to_string(done_);
  line("[" + task_ + "] " + counter + " " + what + suffix);
}

void ProgressReporter::note(const std::string& what) {
  std::lock_guard<std::mutex> lock(mu_);
  line("[" + task_ + "] " + what);
}

void ProgressReporter::line(const std::string& text) {
  *os_ << text << '\n';
  os_->flush();
}

int ProgressReporter::done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_;
}

}  // namespace stash::obs
