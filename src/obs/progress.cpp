#include "obs/progress.h"

#include <cstdio>
#include <iostream>

#include <unistd.h>

namespace stash::obs {

namespace {
constexpr std::chrono::milliseconds kRedrawInterval{50};
}  // namespace

bool stderr_is_tty() { return ::isatty(2) != 0; }

ProgressReporter::ProgressReporter(std::ostream* os)
    : os_(os != nullptr ? os : &std::cerr),
      interactive_(os_ == &std::cerr && stderr_is_tty()),
      start_(std::chrono::steady_clock::now()) {}

void ProgressReporter::begin(const std::string& task, int total) {
  std::lock_guard<std::mutex> lock(mu_);
  task_ = task;
  total_ = total;
  done_ = 0;
  start_ = std::chrono::steady_clock::now();
}

void ProgressReporter::step(const std::string& what) {
  std::lock_guard<std::mutex> lock(mu_);
  ++done_;
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  char suffix[64];
  std::snprintf(suffix, sizeof(suffix), ", %.2f s elapsed", elapsed);
  std::string counter = total_ > 0 ? std::to_string(done_) + "/" +
                                         std::to_string(total_)
                                   : std::to_string(done_);
  line_locked("[" + task_ + "] " + counter + " " + what + suffix);
}

void ProgressReporter::note(const std::string& what) {
  std::lock_guard<std::mutex> lock(mu_);
  line_locked("[" + task_ + "] " + what);
}

void ProgressReporter::status(const std::string& text, bool force) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto now = std::chrono::steady_clock::now();
  if (!force && now - last_draw_ < kRedrawInterval) return;
  last_draw_ = now;
  if (interactive_) {
    *os_ << "\r\033[K" << text;
    os_->flush();
    status_active_ = true;
  } else {
    // Redirected stderr: each surviving frame is its own complete line, so
    // logs stay grep-able and carry no control characters.
    *os_ << text << '\n';
    os_->flush();
  }
}

void ProgressReporter::clear_status() {
  std::lock_guard<std::mutex> lock(mu_);
  erase_status_locked();
}

void ProgressReporter::set_interactive(bool on) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!on) erase_status_locked();
  interactive_ = on;
}

bool ProgressReporter::interactive() const {
  std::lock_guard<std::mutex> lock(mu_);
  return interactive_;
}

void ProgressReporter::erase_status_locked() {
  if (!status_active_) return;
  *os_ << "\r\033[K";
  os_->flush();
  status_active_ = false;
}

void ProgressReporter::line_locked(const std::string& text) {
  erase_status_locked();
  *os_ << text << '\n';
  os_->flush();
}

int ProgressReporter::done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_;
}

}  // namespace stash::obs
