// Critical-path analyzer: turns a CausalLog into a BlameReport.
//
// For every completed iteration the walker starts at the iteration's anchor
// edge (the lead worker's end-of-iteration barrier edge, which ends exactly
// at the iteration boundary) and walks the causal links backwards in time:
//
//   * an activity edge claims the interval it overlaps — that time is
//     *blamed* on the edge's category — and the walk continues from its
//     program-order predecessor;
//   * a wait edge with a known cause is transparent: the producer that
//     ended the wait was the real bottleneck, so the walk jumps to it
//     without attributing anything (the producer's own activity covers the
//     interval);
//   * a wait edge with no recorded producer (backpressure) claims its
//     interval under its fallback category;
//   * any gap the links cannot explain becomes kUnattributed — a loud
//     signal that instrumentation is missing, pinned to ~0 by tests.
//
// The walk is clipped to the iteration window, so the resulting segments
// tile [start_s, end_s] exactly: segment boundaries are *reused* walker
// positions, never recomputed, which makes "segments sum to the wall time"
// an identity rather than a floating-point accident.
//
// Overlap accounting: the log also knows every collective edge that was
// recorded, on or off the critical path. Total collective activity minus
// the on-path share is the communication that successfully hid under
// compute — the quantity differencing methodologies silently fold away.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace stash::util {
class TraceRecorder;
class JsonWriter;
}

namespace stash::obs {

class CausalLog;
enum class Category : std::uint8_t;
inline constexpr std::size_t kBlameCategories = 11;

// One critical-path interval inside an iteration window.
struct BlameSegment {
  double start_s = 0.0;
  double end_s = 0.0;
  Category category{};
  const char* phase = "";
  std::int16_t machine = 0;
  std::int16_t gpu = 0;
};

struct IterationBlame {
  std::int32_t iteration = -1;
  bool measured = false;
  bool rework = false;
  double start_s = 0.0;
  double end_s = 0.0;
  // Ascending, contiguous, exactly tiling [start_s, end_s].
  std::vector<BlameSegment> segments;
  std::array<double, kBlameCategories> by_category{};
};

struct BlameReport {
  // Scenario metadata, filled by the caller (the profiler knows the spec).
  std::string scenario;
  std::string model_name;
  std::string config_label;
  int gpus = 0;
  int per_gpu_batch = 0;

  std::vector<IterationBlame> iterations;

  // Aggregates over *measured* iterations only (warmup and rework excluded,
  // matching the trainer's measurement window).
  int measured_iterations = 0;
  double measured_window_s = 0.0;
  std::array<double, kBlameCategories> totals_s{};          // sum
  std::array<double, kBlameCategories> per_iteration_s{};   // mean

  // Overlap accounting, measured iterations only: every recorded collective
  // activity second vs. the share that sat on the critical path. The
  // difference hid under compute.
  double comm_activity_s = 0.0;
  double comm_on_path_s = 0.0;
  double comm_hidden_s = 0.0;

  // Fault accounting over the whole run (outside iteration windows).
  double fault_window_s = 0.0;
  int fault_windows = 0;

  // Stall percentages in the paper's coordinate system, derived from the
  // per-iteration means: interconnect over compute, network over non-network
  // time, prep and fetch over the full iteration. Comparable directly with
  // StallReport's differencing estimates.
  double ic_stall_pct = 0.0;
  double nw_stall_pct = 0.0;
  double prep_stall_pct = 0.0;
  double fetch_stall_pct = 0.0;
};

// Walks every marked iteration of `log`. Metadata fields of the returned
// report are left empty for the caller to fill.
BlameReport analyze_critical_path(const CausalLog& log);

// `stash.blame/1` JSON document (see EXPERIMENTS.md for the schema).
std::string blame_to_json(const BlameReport& report);

// Writes the stash.blame/1 fields (schema key included) into an object the
// caller has already opened — lets extended documents (the profiler's
// cross-checked attribute report) add sibling keys to the same object.
void write_blame_fields(util::JsonWriter& w, const BlameReport& report);

// Folded-stack flamegraph lines, `machine<M>;gpu<G>;<phase>;<category> <us>`
// aggregated over measured iterations and sorted by stack — pipe into
// flamegraph.pl or load into speedscope.
std::string blame_to_folded(const BlameReport& report);

// Appends the critical path to a Chrome trace as a highlighted track
// (tid 120 of every machine on the path): one span per segment, named
// "<category>:<phase>".
void annotate_trace(const BlameReport& report, util::TraceRecorder& trace);

}  // namespace stash::obs
