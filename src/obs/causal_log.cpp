#include "obs/causal_log.h"

#include <stdexcept>
#include <string>

namespace stash::obs {

const char* category_name(Category c) {
  switch (c) {
    case Category::kCompute: return "compute";
    case Category::kH2D: return "h2d";
    case Category::kInterconnect: return "interconnect";
    case Category::kNetwork: return "network";
    case Category::kDisk: return "disk";
    case Category::kCpuPrep: return "cpu_prep";
    case Category::kBarrier: return "barrier";
    case Category::kPipeline: return "pipeline";
    case Category::kCheckpoint: return "checkpoint";
    case Category::kFaultRecovery: return "fault_recovery";
    case Category::kUnattributed: return "unattributed";
  }
  return "unknown";
}

int CausalLog::add(Category c, const char* phase, int machine, int gpu,
                   int iteration, double start_s, double end_s, int prev,
                   int cause, bool wait) {
  const int id = static_cast<int>(edges_.size());
  if (end_s < start_s)
    throw std::invalid_argument("CausalLog: negative-length edge '" +
                                std::string(phase) + "'");
  if (prev >= id || cause >= id)
    throw std::invalid_argument("CausalLog: forward link on edge '" +
                                std::string(phase) + "'");
  CausalEdge e;
  e.start_s = start_s;
  e.end_s = end_s;
  e.category = c;
  e.wait = wait;
  e.machine = static_cast<std::int16_t>(machine);
  e.gpu = static_cast<std::int16_t>(gpu);
  e.iteration = iteration;
  e.prev = prev;
  e.cause = cause;
  e.phase = phase;
  edges_.push_back(e);
  return id;
}

int CausalLog::add_activity(Category c, const char* phase, int machine,
                            int gpu, int iteration, double start_s,
                            double end_s, int prev) {
  return add(c, phase, machine, gpu, iteration, start_s, end_s, prev, prev,
             /*wait=*/false);
}

int CausalLog::add_wait(Category fallback, const char* phase, int machine,
                        int gpu, int iteration, double start_s, double end_s,
                        int prev, int cause) {
  return add(fallback, phase, machine, gpu, iteration, start_s, end_s, prev,
             cause, /*wait=*/true);
}

void CausalLog::mark_iteration(int iteration, bool measured, bool rework,
                               double start_s, double end_s, int anchor) {
  if (end_s < start_s)
    throw std::invalid_argument("CausalLog: negative iteration window");
  if (anchor >= static_cast<int>(edges_.size()))
    throw std::invalid_argument("CausalLog: iteration anchor not recorded");
  IterationMark m;
  m.iteration = iteration;
  m.measured = measured;
  m.rework = rework;
  m.start_s = start_s;
  m.end_s = end_s;
  m.anchor = anchor;
  marks_.push_back(m);
}

void CausalLog::add_fault_window(double start_s, double end_s,
                                 const char* what) {
  if (end_s < start_s)
    throw std::invalid_argument("CausalLog: negative fault window");
  faults_.push_back(FaultWindow{start_s, end_s, what});
}

void CausalLog::clear() {
  edges_.clear();
  marks_.clear();
  faults_.clear();
  iteration_ = -1;
  comm_chain_ = -1;
}

}  // namespace stash::obs
