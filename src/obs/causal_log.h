// Causal-edge recorder: the raw material of critical-path attribution.
//
// The simulator already executes the complete causal event graph of a
// training run — every coroutine suspension is a real dependency. This log
// captures just enough of that graph to reconstruct the critical path
// afterwards: a flat, append-only list of *edges*, each an interval of
// simulated time on some worker, classified as either an activity (the
// worker was doing something: compute, H2D copy, a collective round, a disk
// fetch) or a wait (the worker was blocked on someone else).
//
// Two link fields per edge make the backward walk possible:
//   prev   program-order predecessor on the same coroutine (-1 at the head);
//   cause  for waits, the edge whose completion woke the waiter (-1 when
//          the producer is unknown, e.g. backpressure); activity edges set
//          cause == prev.
// Both links always point at earlier edge ids (the log is append-only and
// an edge is recorded when its interval closes), so any backward walk
// terminates.
//
// The recorder is deliberately dumb: it validates intervals and link
// monotonicity and nothing else. All analysis lives in critical_path.h.
// One CausalLog instance belongs to one simulation; the profiler gives
// every causally-instrumented run a private log, which keeps attribution
// byte-identical for any --jobs value.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace stash::obs {

// Blame categories. The first six mirror the paper's stall taxonomy
// (compute, interconnect, network, disk fetch, CPU prep) plus the H2D stage
// that DS-Analyzer folds into prep; the rest cover mechanisms the
// differencing methodology cannot see individually.
enum class Category : std::uint8_t {
  kCompute = 0,       // GPU kernel time (forward/backward/optimizer)
  kH2D = 1,           // host-to-device staging copies
  kInterconnect = 2,  // intra-machine collective time (NVLink/PCIe)
  kNetwork = 3,       // cross-machine collective time (NIC/fabric)
  kDisk = 4,          // storage fetches on a cache miss
  kCpuPrep = 5,       // CPU decode/augment work
  kBarrier = 6,       // waiting for a slower peer at a barrier
  kPipeline = 7,      // input-pipeline backpressure (bounded queues full)
  kCheckpoint = 8,    // checkpoint writes
  kFaultRecovery = 9,  // fault detection, reprovision waits, rework
  kUnattributed = 10,  // critical-path time no recorded edge explains
};

inline constexpr std::size_t kNumCategories = 11;

// Stable lower-case name used in JSON documents and folded stacks.
const char* category_name(Category c);

struct CausalEdge {
  double start_s = 0.0;
  double end_s = 0.0;
  Category category = Category::kUnattributed;
  bool wait = false;
  std::int16_t machine = 0;
  std::int16_t gpu = 0;
  std::int32_t iteration = -1;
  std::int32_t prev = -1;   // program-order predecessor edge id
  std::int32_t cause = -1;  // wake-up producer (waits); == prev for activity
  const char* phase = "";   // static string: "forward", "h2d", "comm_round"...
};

// One completed training iteration, as seen by the lead worker. `anchor` is
// the edge the backward walk starts from (the lead's end-of-iteration
// barrier edge, which ends exactly at end_s).
struct IterationMark {
  std::int32_t iteration = -1;
  bool measured = false;  // inside the measurement window, not rework
  bool rework = false;    // replayed after a fault rollback
  double start_s = 0.0;
  double end_s = 0.0;
  std::int32_t anchor = -1;
};

// A span of run time lost to fault handling between iteration commits
// (detection, reprovision wait, restart). Lives outside iteration windows.
struct FaultWindow {
  double start_s = 0.0;
  double end_s = 0.0;
  const char* what = "";
};

class CausalLog {
 public:
  CausalLog() = default;
  CausalLog(const CausalLog&) = delete;
  CausalLog& operator=(const CausalLog&) = delete;

  // Records a closed interval [start_s, end_s] and returns its edge id.
  // Throws std::invalid_argument on a negative-length interval or a link
  // pointing at or past the new edge's own id.
  int add_activity(Category c, const char* phase, int machine, int gpu,
                   int iteration, double start_s, double end_s, int prev);
  // `cause` is the producer edge whose completion ended the wait, or -1
  // when unknown — then the wait itself is blamed on `fallback`.
  int add_wait(Category fallback, const char* phase, int machine, int gpu,
               int iteration, double start_s, double end_s, int prev,
               int cause);

  void mark_iteration(int iteration, bool measured, bool rework,
                      double start_s, double end_s, int anchor);
  void add_fault_window(double start_s, double end_s, const char* what);

  // Ambient iteration tag for recorders that have no iteration of their own
  // (the collective rounds run on the comm stream). Set by the lead worker
  // at each iteration top.
  void set_iteration(int it) { iteration_ = it; }
  int iteration() const { return iteration_; }

  // Tail of the chain of collective edges on the (serial) comm stream; the
  // lead worker reads it as the cause of its post-backward latch wait, and
  // each collective round links from it.
  void set_comm_chain(int id) { comm_chain_ = id; }
  int comm_chain() const { return comm_chain_; }

  const std::vector<CausalEdge>& edges() const { return edges_; }
  const std::vector<IterationMark>& iterations() const { return marks_; }
  const std::vector<FaultWindow>& fault_windows() const { return faults_; }
  std::size_t size() const { return edges_.size(); }

  void clear();

 private:
  int add(Category c, const char* phase, int machine, int gpu, int iteration,
          double start_s, double end_s, int prev, int cause, bool wait);

  std::vector<CausalEdge> edges_;
  std::vector<IterationMark> marks_;
  std::vector<FaultWindow> faults_;
  int iteration_ = -1;
  int comm_chain_ = -1;
};

}  // namespace stash::obs
