// Live progress reporting for long profiling runs.
//
// A ProgressReporter prints one line per completed unit of work ("step 3/5
// (T3 real cold) done, 1.24 s elapsed") to a stream of the caller's choice
// — stderr for the CLI, so machine-readable stdout stays clean and every
// determinism guarantee about the real outputs is untouched. Thread-safe:
// the profiler's steps complete on pool threads in any order.
//
// Besides the permanent lines (begin/step/note), status() maintains a
// single transient status line — the live dashboard's frame. On an
// interactive terminal it is rewritten in place with \r + erase-to-EOL; when
// stderr is redirected (CI logs, pipes) the reporter degrades to plain
// line-buffered output so no carriage returns land in log files. Redraws
// are throttled to at most one per 50 ms either way; pass force=true for
// frames that must not be dropped (the final one).
//
// A null reporter pointer everywhere means "silent", which is the default;
// stash_cli turns one on with --progress (or STASH_PROGRESS=1).
#pragma once

#include <chrono>
#include <iosfwd>
#include <mutex>
#include <string>

namespace stash::obs {

// Whether stderr is attached to a terminal (POSIX isatty). The reporter
// consults this once at construction; exposed for tests and callers that
// pick output styles themselves.
bool stderr_is_tty();

class ProgressReporter {
 public:
  // Writes to `os` (not owned); defaults to std::cerr. In-place status
  // rewriting is only enabled when writing to the real std::cerr AND stderr
  // is a terminal; any other stream (test harnesses, redirected logs) gets
  // plain lines.
  explicit ProgressReporter(std::ostream* os = nullptr);

  // Starts a new task with `total` expected units (0 = indeterminate).
  void begin(const std::string& task, int total);
  // Marks one unit done and prints "[task] k/N what, T s elapsed".
  void step(const std::string& what);
  // Prints an out-of-band line without advancing the counter.
  void note(const std::string& what);

  // Draws (or redraws) the transient status line. Throttled: calls within
  // 50 ms of the last draw are dropped unless force is set. A subsequent
  // step/note/clear_status erases an active in-place status line before
  // printing, so permanent lines never interleave with a stale frame.
  void status(const std::string& text, bool force = false);
  // Erases an active in-place status line (no-op in line mode).
  void clear_status();

  // Overrides the constructor's TTY detection (tests pin both modes).
  void set_interactive(bool on);
  bool interactive() const;

  int done() const;

 private:
  void line_locked(const std::string& text);
  void erase_status_locked();

  mutable std::mutex mu_;
  std::ostream* os_;
  bool interactive_ = false;
  bool status_active_ = false;  // an in-place status line is on screen
  std::string task_ = "stash";
  int total_ = 0;
  int done_ = 0;
  std::chrono::steady_clock::time_point start_;
  // Epoch-initialized so the very first status() always draws.
  std::chrono::steady_clock::time_point last_draw_{};
};

}  // namespace stash::obs
