// Live progress reporting for long profiling runs.
//
// A ProgressReporter prints one line per completed unit of work ("step 3/5
// (T3 real cold) done, 1.24 s elapsed") to a stream of the caller's choice
// — stderr for the CLI, so machine-readable stdout stays clean and every
// determinism guarantee about the real outputs is untouched. Thread-safe:
// the profiler's steps complete on pool threads in any order.
//
// A null reporter pointer everywhere means "silent", which is the default;
// stash_cli turns one on with --progress (or STASH_PROGRESS=1).
#pragma once

#include <chrono>
#include <iosfwd>
#include <mutex>
#include <string>

namespace stash::obs {

class ProgressReporter {
 public:
  // Writes to `os` (not owned); defaults to std::cerr.
  explicit ProgressReporter(std::ostream* os = nullptr);

  // Starts a new task with `total` expected units (0 = indeterminate).
  void begin(const std::string& task, int total);
  // Marks one unit done and prints "[task] k/N what, T s elapsed".
  void step(const std::string& what);
  // Prints an out-of-band line without advancing the counter.
  void note(const std::string& what);

  int done() const;

 private:
  void line(const std::string& text);

  mutable std::mutex mu_;
  std::ostream* os_;
  std::string task_ = "stash";
  int total_ = 0;
  int done_ = 0;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace stash::obs
