#include "monitor/driver.h"

#include <stdexcept>
#include <utility>

#include "cloud/builder.h"
#include "faults/injector.h"
#include "hw/flow_network.h"
#include "obs/causal_log.h"
#include "sim/simulator.h"
#include "util/json.h"

namespace stash::monitor {

void MonitorOptions::validate() const {
  if (per_gpu_batch < 1)
    throw std::invalid_argument("MonitorOptions: per_gpu_batch must be >= 1");
  if (iterations < 1)
    throw std::invalid_argument("MonitorOptions: iterations must be >= 1");
  if (warmup_iterations < 0 || warmup_iterations >= iterations)
    throw std::invalid_argument(
        "MonitorOptions: warmup_iterations must be in [0, iterations)");
  monitor.validate();
}

namespace {

// The trainer-side observer chain: monitor first (so detector state is
// current), then the recording/streaming duties, then the caller's extra
// observer (the live dashboard).
struct Recorder : ddl::IterationObserver {
  Recorder(StallMonitor& m, const MonitorOptions& opts,
           ddl::IterationObserver* extra)
      : monitor(m), opts(opts), extra(extra) {}

  void on_iteration(const ddl::IterationSample& s) override {
    monitor.on_iteration(s);
    samples.push_back(s);
    events_after.push_back(monitor.events().size());
    if (opts.stream_openmetrics &&
        samples.size() % opts.monitor.window == 0)
      append_window();
    if (extra != nullptr) extra->on_iteration(s);
  }

  void on_recovery(const ddl::RecoveryRecord& rec) override {
    monitor.on_recovery(rec);
    if (extra != nullptr) extra->on_recovery(rec);
  }

  void append_window() {
    const Snapshot snap = monitor.snapshot();
    ++windows;
    telemetry::MetricsRegistry reg;
    reg.gauge("monitor/iter_total_mean_s").set(snap.total.mean);
    reg.gauge("monitor/iter_total_p50_s").set(snap.total.p50);
    reg.gauge("monitor/iter_total_p95_s").set(snap.total.p95);
    reg.gauge("monitor/data_wait_mean_s").set(snap.data_wait.mean);
    reg.gauge("monitor/compute_mean_s").set(snap.compute.mean);
    reg.gauge("monitor/comm_tail_mean_s").set(snap.comm_tail.mean);
    reg.gauge("monitor/barrier_mean_s").set(snap.barrier.mean);
    reg.gauge("monitor/iters_per_s").set(snap.window_iters_per_s);
    reg.gauge("monitor/events_total")
        .set(static_cast<double>(snap.events_total));
    openmetrics += "# window " + std::to_string(windows) + " samples " +
                   std::to_string(samples.size()) + " end_s " +
                   util::json_double(snap.last_end_s) + "\n";
    openmetrics += reg.to_prometheus();
  }

  StallMonitor& monitor;
  const MonitorOptions& opts;
  ddl::IterationObserver* extra;
  std::vector<ddl::IterationSample> samples;
  std::vector<std::size_t> events_after;
  std::string openmetrics;
  int windows = 0;
};

void write_signal(util::JsonWriter& w, const char* name,
                  const SignalSummary& s) {
  w.key(name).begin_object();
  w.key("last_s").value(s.last);
  w.key("mean_s").value(s.mean);
  w.key("stddev_s").value(s.stddev);
  w.key("p50_s").value(s.p50);
  w.key("p95_s").value(s.p95);
  w.end_object();
}

void write_event(util::JsonWriter& w, const MonitorEvent& ev) {
  w.begin_object();
  w.key("type").value("event");
  w.key("kind").value(to_string(ev.kind));
  w.key("detector").value(to_string(ev.detector));
  w.key("signal").value(ev.signal);
  w.key("onset_iteration").value(ev.onset_iteration);
  w.key("detect_iteration").value(ev.detect_iteration);
  w.key("latency_iterations").value(ev.latency_iterations);
  w.key("time_s").value(ev.time_s);
  w.key("baseline").value(ev.baseline);
  w.key("observed").value(ev.observed);
  w.key("magnitude_sigma").value(ev.magnitude_sigma);
  w.end_object();
}

}  // namespace

MonitorRunReport run_monitor(const dnn::Model& model,
                             const dnn::Dataset& dataset,
                             const MonitorOptions& opts, StallMonitor& monitor,
                             ddl::IterationObserver* extra,
                             util::TraceRecorder* trace,
                             telemetry::MetricsRegistry* metrics) {
  opts.validate();

  sim::Simulator sim;
  hw::FlowNetwork net(sim);
  hw::Cluster cluster(
      net, sim,
      cloud::cluster_configs_for(cloud::instance(opts.spec.instance),
                                 opts.spec.count, opts.spec.slice),
      cloud::fabric_bandwidth());

  // The production-like scenario: real data, warm caches (profiler step 4).
  ddl::TrainConfig cfg;
  cfg.per_gpu_batch = opts.per_gpu_batch;
  cfg.iterations = opts.iterations;
  cfg.warmup_iterations = opts.warmup_iterations;
  cfg.synthetic_data = false;
  cfg.cold_cache = false;
  cfg.trace = trace;
  cfg.metrics = metrics;

  obs::CausalLog causal;
  cfg.causal = &causal;

  Recorder recorder(monitor, opts, extra);
  cfg.observer = &recorder;

  std::optional<faults::FaultPlan> plan;
  std::optional<faults::FaultInjector> injector;
  if (!opts.faults_spec.empty()) {
    plan = faults::FaultPlan::parse(opts.faults_spec);
    injector.emplace(sim, net, cluster, *plan);
    injector->arm();
    cfg.fault_tolerance = opts.recovery.tolerance(&injector->state());
  }

  MonitorRunReport report;
  ddl::Trainer trainer(sim, net, cluster, model, dataset, cfg);
  report.result = trainer.run();

  report.model_name = model.name();
  report.config_label = opts.spec.label();
  report.per_gpu_batch = opts.per_gpu_batch;
  report.iterations = opts.iterations;
  report.warmup_iterations = opts.warmup_iterations;
  report.faults_spec = opts.faults_spec;
  report.monitor = monitor.config();
  report.samples = std::move(recorder.samples);
  report.events_after = std::move(recorder.events_after);
  report.live_events = monitor.events().size();
  report.openmetrics = std::move(recorder.openmetrics);

  // Post-run: walk the causal log and fold each iteration's blame through
  // the monitor's sliding window (the fold itself is streaming — the replay
  // is batched only because the critical path needs the complete DAG).
  report.blame = obs::analyze_critical_path(causal);
  report.blame.scenario = "monitor";
  report.blame.model_name = report.model_name;
  report.blame.config_label = report.config_label;
  for (const auto& ib : report.blame.iterations) monitor.fold_blame(ib);

  report.events = monitor.events();
  report.recoveries = monitor.recoveries();
  report.final_snapshot = monitor.snapshot();
  return report;
}

std::string event_to_json(const MonitorEvent& ev) {
  util::JsonWriter w;
  write_event(w, ev);
  return w.str();
}

std::string monitor_to_jsonl(const MonitorRunReport& report) {
  std::string out;
  {
    util::JsonWriter w;
    w.begin_object();
    w.key("schema").value("stash.monitor/1");
    w.key("type").value("header");
    w.key("model").value(report.model_name);
    w.key("config").value(report.config_label);
    w.key("batch").value(report.per_gpu_batch);
    w.key("iterations").value(report.iterations);
    w.key("warmup").value(report.warmup_iterations);
    w.key("faults").value(report.faults_spec);
    w.key("window").value(static_cast<int>(report.monitor.window));
    w.key("detector").begin_object();
    w.key("baseline_iters")
        .value(static_cast<int>(report.monitor.detector.baseline_iters));
    w.key("cusum_k").value(report.monitor.detector.cusum_k);
    w.key("cusum_h").value(report.monitor.detector.cusum_h);
    w.key("ewma_lambda").value(report.monitor.detector.ewma_lambda);
    w.key("ewma_limit").value(report.monitor.detector.ewma_limit);
    w.end_object();
    w.end_object();
    out += w.str();
    out += '\n';
  }

  // Samples with their events interleaved exactly where they fired.
  std::size_t emitted = 0;
  for (std::size_t i = 0; i < report.samples.size(); ++i) {
    const auto& s = report.samples[i];
    util::JsonWriter w;
    w.begin_object();
    w.key("type").value("sample");
    w.key("iteration").value(s.iteration);
    w.key("attempt").value(s.attempt);
    w.key("measured").value(s.measured);
    w.key("rework").value(s.rework);
    w.key("start_s").value(s.start_s);
    w.key("end_s").value(s.end_s);
    w.key("total_s").value(s.total_s);
    w.key("data_wait_s").value(s.data_wait_s);
    w.key("compute_s").value(s.compute_s);
    w.key("comm_tail_s").value(s.comm_tail_s);
    w.key("barrier_s").value(s.barrier_s);
    w.key("checkpoint_s").value(s.checkpoint_s);
    w.key("workers").value(s.workers);
    w.end_object();
    out += w.str();
    out += '\n';
    const std::size_t upto =
        i < report.events_after.size() ? report.events_after[i] : emitted;
    for (; emitted < upto && emitted < report.events.size(); ++emitted) {
      out += event_to_json(report.events[emitted]);
      out += '\n';
    }
  }
  // Blame-fold events (the windowed causal stream) trail the samples.
  for (; emitted < report.events.size(); ++emitted) {
    out += event_to_json(report.events[emitted]);
    out += '\n';
  }

  for (const auto& rec : report.recoveries) {
    util::JsonWriter w;
    w.begin_object();
    w.key("type").value("recovery");
    w.key("time_s").value(rec.time_s);
    w.key("at_iteration").value(rec.at_iteration);
    w.key("policy").value(rec.policy == ddl::RecoveryPolicy::kCheckpointRestart
                              ? "restart"
                              : "shrink");
    w.key("workers_before").value(rec.workers_before);
    w.key("workers_after").value(rec.workers_after);
    w.key("wait_seconds").value(rec.wait_seconds);
    w.key("rework_iterations").value(rec.rework_iterations);
    w.end_object();
    out += w.str();
    out += '\n';
  }

  {
    const Snapshot& snap = report.final_snapshot;
    util::JsonWriter w;
    w.begin_object();
    w.key("type").value("summary");
    w.key("samples").value(static_cast<int>(report.samples.size()));
    w.key("events").value(static_cast<int>(report.events.size()));
    w.key("live_events").value(static_cast<int>(report.live_events));
    w.key("events_by_kind").begin_object();
    for (EventKind k :
         {EventKind::kStragglerOnset, EventKind::kFetchStallRegression,
          EventKind::kCommBlameShift, EventKind::kThroughputCollapse}) {
      int n = 0;
      for (const auto& ev : report.events)
        if (ev.kind == k) ++n;
      w.key(to_string(k)).value(n);
    }
    w.end_object();
    w.key("recoveries").value(static_cast<int>(report.recoveries.size()));
    w.key("per_iteration_s").value(report.result.per_iteration);
    w.key("window_iters_per_s").value(snap.window_iters_per_s);
    w.key("signals").begin_object();
    write_signal(w, "total", snap.total);
    write_signal(w, "data_wait", snap.data_wait);
    write_signal(w, "compute", snap.compute);
    write_signal(w, "comm_tail", snap.comm_tail);
    write_signal(w, "barrier", snap.barrier);
    w.end_object();
    w.key("window_blame").begin_object();
    w.key("total_s").value(snap.window_blame_total_s);
    w.key("comm_share").value(snap.comm_blame_share);
    w.key("by_category").begin_object();
    for (std::size_t c = 0; c < obs::kBlameCategories; ++c)
      w.key(obs::category_name(static_cast<obs::Category>(c)))
          .value(snap.window_blame_s[c]);
    w.end_object();
    w.end_object();
    w.end_object();
    out += w.str();
    out += '\n';
  }
  return out;
}

void annotate_monitor_trace(const MonitorRunReport& report,
                            util::TraceRecorder& trace) {
  if (report.events.empty()) return;
  // tid 130 sits above the trainer's worker (0..), H2D (100+), comm (110),
  // fault (115) and critical-path (120) tracks.
  trace.name_track(0, 130, "monitor detections");
  for (const auto& ev : report.events)
    trace.add_instant(std::string("monitor:") + to_string(ev.kind), "monitor",
                      ev.time_s, 0, 130);
}

void record_monitor_metrics(const MonitorRunReport& report,
                            telemetry::MetricsRegistry& metrics) {
  const Snapshot& snap = report.final_snapshot;
  metrics.gauge("monitor/samples")
      .set(static_cast<double>(report.samples.size()));
  metrics.gauge("monitor/iters_per_s").set(snap.window_iters_per_s);
  metrics.gauge("monitor/iter_total_mean_s").set(snap.total.mean);
  metrics.gauge("monitor/iter_total_p95_s").set(snap.total.p95);
  metrics.gauge("monitor/comm_blame_share").set(snap.comm_blame_share);
  for (EventKind k :
       {EventKind::kStragglerOnset, EventKind::kFetchStallRegression,
        EventKind::kCommBlameShift, EventKind::kThroughputCollapse}) {
    int n = 0;
    double latency = 0.0;
    for (const auto& ev : report.events)
      if (ev.kind == k) {
        ++n;
        latency += ev.latency_iterations;
      }
    const std::string base = std::string("monitor/events/") + to_string(k);
    metrics.counter(base).add(n);
    if (n > 0)
      metrics.gauge(base + "_mean_latency_iters").set(latency / n);
  }
}

}  // namespace stash::monitor
