#include "monitor/monitor.h"

#include <algorithm>
#include <stdexcept>

namespace stash::monitor {

const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::kStragglerOnset: return "straggler_onset";
    case EventKind::kFetchStallRegression: return "fetch_stall_regression";
    case EventKind::kCommBlameShift: return "comm_blame_shift";
    case EventKind::kThroughputCollapse: return "throughput_collapse";
  }
  return "unknown";
}

const char* to_string(DetectorKind k) {
  switch (k) {
    case DetectorKind::kCusum: return "cusum";
    case DetectorKind::kEwma: return "ewma";
  }
  return "unknown";
}

void MonitorConfig::validate() const {
  if (window < 2)
    throw std::invalid_argument("MonitorConfig: window must be >= 2");
  detector.validate();
}

StallMonitor::Signal::Signal(const char* name, EventKind kind,
                             const MonitorConfig& cfg)
    : name(name),
      kind(kind),
      stats(cfg.window),
      p50(0.5),
      p95(0.95),
      cusum(cfg.detector),
      ewma(cfg.detector) {}

SignalSummary StallMonitor::Signal::summary() const {
  SignalSummary s;
  s.last = last;
  s.mean = stats.mean();
  s.stddev = stats.stddev();
  s.p50 = p50.value();
  s.p95 = p95.value();
  return s;
}

void StallMonitor::Signal::push(StallMonitor& m, double value, int iteration,
                                double time_s) {
  last = value;
  stats.push(value);
  p50.push(value);
  p95.push(value);
  iterations.push_back(iteration);
  const Detection dc = cusum.push(value);
  if (dc.fired) m.emit(*this, DetectorKind::kCusum, dc, iteration, time_s);
  const Detection de = ewma.push(value);
  if (de.fired) m.emit(*this, DetectorKind::kEwma, de, iteration, time_s);
}

StallMonitor::StallMonitor(const MonitorConfig& cfg)
    : cfg_(cfg),
      total_("iter_total_s", EventKind::kThroughputCollapse, cfg_),
      data_wait_("data_wait_s", EventKind::kFetchStallRegression, cfg_),
      compute_("compute_s", EventKind::kThroughputCollapse, cfg_),
      comm_tail_("comm_tail_s", EventKind::kCommBlameShift, cfg_),
      barrier_("barrier_s", EventKind::kStragglerOnset, cfg_),
      comm_share_("comm_blame_share", EventKind::kCommBlameShift, cfg_),
      window_ends_(cfg_.window),
      blame_ring_(cfg_.window) {
  cfg_.validate();
}

void StallMonitor::emit(Signal& sig, DetectorKind det, const Detection& d,
                        int iteration, double time_s) {
  // One regime shift should yield one event even though two detectors watch
  // the signal: whichever fires first wins the cooldown window.
  if (d.detect_index < sig.cooldown_until) return;
  sig.cooldown_until = d.detect_index + cfg_.event_cooldown;

  MonitorEvent ev;
  ev.kind = sig.kind;
  ev.detector = det;
  ev.signal = sig.name;
  const auto clamp_idx = [&](std::size_t idx) {
    return sig.iterations[std::min(idx, sig.iterations.size() - 1)];
  };
  ev.onset_iteration = clamp_idx(d.onset_index);
  ev.detect_iteration = iteration;
  ev.latency_iterations = ev.detect_iteration - ev.onset_iteration;
  ev.time_s = time_s;
  ev.baseline = d.baseline_mean;
  ev.observed = d.observed;
  ev.magnitude_sigma = d.magnitude_sigma;
  events_.push_back(ev);
}

void StallMonitor::on_iteration(const ddl::IterationSample& s) {
  ++iterations_seen_;
  last_iteration_ = s.iteration;
  last_end_s_ = s.end_s;
  window_ends_.push(s.end_s);

  total_.push(*this, s.total_s, s.iteration, s.end_s);
  data_wait_.push(*this, s.data_wait_s, s.iteration, s.end_s);
  compute_.push(*this, s.compute_s, s.iteration, s.end_s);
  comm_tail_.push(*this, s.comm_tail_s, s.iteration, s.end_s);
  barrier_.push(*this, s.barrier_s, s.iteration, s.end_s);
}

void StallMonitor::on_recovery(const ddl::RecoveryRecord& rec) {
  recoveries_.push_back(rec);
}

void StallMonitor::fold_blame(const obs::IterationBlame& blame) {
  BlameEntry entry;
  entry.by_category = blame.by_category;
  for (double v : entry.by_category) entry.total += v;

  BlameEntry evicted;
  if (blame_ring_.push(entry, &evicted)) {
    for (std::size_t i = 0; i < obs::kBlameCategories; ++i)
      blame_sums_[i] -= evicted.by_category[i];
    blame_total_ -= evicted.total;
  }
  for (std::size_t i = 0; i < obs::kBlameCategories; ++i)
    blame_sums_[i] += entry.by_category[i];
  blame_total_ += entry.total;
  has_blame_ = true;

  const double comm =
      blame_sums_[static_cast<std::size_t>(obs::Category::kInterconnect)] +
      blame_sums_[static_cast<std::size_t>(obs::Category::kNetwork)];
  const double share = blame_total_ > 0.0 ? comm / blame_total_ : 0.0;
  comm_share_.push(*this, share, blame.iteration, blame.end_s);
}

std::vector<double> StallMonitor::recent_totals() const {
  std::vector<double> out;
  // The throughput ring and the total signal's stats ring share a window;
  // expose the retained iteration totals oldest-first for sparklines.
  out.reserve(total_.stats.count());
  for (std::size_t i = 0; i < total_.stats.count(); ++i)
    out.push_back(total_.stats.at(i));
  return out;
}

Snapshot StallMonitor::snapshot() const {
  Snapshot s;
  s.iterations_seen = iterations_seen_;
  s.last_iteration = last_iteration_;
  s.last_end_s = last_end_s_;
  s.total = total_.summary();
  s.data_wait = data_wait_.summary();
  s.compute = compute_.summary();
  s.comm_tail = comm_tail_.summary();
  s.barrier = barrier_.summary();
  if (window_ends_.size() >= 2) {
    const double span = window_ends_.back() - window_ends_.front();
    if (span > 0.0)
      s.window_iters_per_s =
          static_cast<double>(window_ends_.size() - 1) / span;
  }
  s.has_blame = has_blame_;
  s.window_blame_s = blame_sums_;
  s.window_blame_total_s = blame_total_;
  if (blame_total_ > 0.0) {
    const double comm =
        blame_sums_[static_cast<std::size_t>(obs::Category::kInterconnect)] +
        blame_sums_[static_cast<std::size_t>(obs::Category::kNetwork)];
    s.comm_blame_share = comm / blame_total_;
  }
  s.events_total = static_cast<int>(events_.size());
  return s;
}

}  // namespace stash::monitor
