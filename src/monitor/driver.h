// Monitor driver: runs one (optionally fault-injected) warm-data training
// simulation with a StallMonitor attached live, replays the run's causal
// blame through the monitor's sliding window, and serializes the resulting
// stream three ways:
//
//   * monitor_to_jsonl      — the `stash.monitor/1` JSONL stream: one
//                             header line, one line per committed iteration
//                             with detector events interleaved exactly where
//                             they fired, recovery and summary trailers.
//   * report.openmetrics    — windowed OpenMetrics snapshots appended every
//                             `window` iterations while the run streams.
//   * annotate_monitor_trace— one Chrome-trace instant per detection on the
//                             monitor track of the existing timeline.
//
// Every output is a pure function of (model, options): byte-identical for
// any --jobs value, no wall-clock anywhere.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ddl/train_config.h"
#include "dnn/dataset.h"
#include "dnn/model.h"
#include "faults/fault_plan.h"
#include "monitor/monitor.h"
#include "obs/critical_path.h"
#include "stash/cluster_spec.h"
#include "stash/profiler.h"
#include "telemetry/metrics.h"
#include "util/trace.h"

namespace stash::monitor {

struct MonitorOptions {
  profiler::ClusterSpec spec;
  int per_gpu_batch = 32;
  int iterations = 64;
  int warmup_iterations = 2;
  MonitorConfig monitor{};
  // ';'-separated fault events (faults::FaultPlan::parse syntax); empty =
  // healthy run. Recovery behavior under faults comes from `recovery`.
  std::string faults_spec;
  profiler::FaultProfileOptions recovery{};
  // Emit one OpenMetrics snapshot block every monitor.window iterations
  // into MonitorRunReport::openmetrics.
  bool stream_openmetrics = true;

  void validate() const;
};

struct MonitorRunReport {
  std::string model_name;
  std::string config_label;
  int per_gpu_batch = 0;
  int iterations = 0;
  int warmup_iterations = 0;
  std::string faults_spec;
  MonitorConfig monitor;

  // The live sample stream, in commit order (iteration indices may rewind
  // across recovery attempts).
  std::vector<ddl::IterationSample> samples;
  // events[0 .. events_after[i]) had fired once sample i was consumed; the
  // JSONL writer uses this to interleave events at their firing position.
  std::vector<std::size_t> events_after;
  std::size_t live_events = 0;  // events from the sample stream itself
  // Live events first (firing order), then blame-fold events (fold order).
  std::vector<MonitorEvent> events;
  std::vector<ddl::RecoveryRecord> recoveries;
  Snapshot final_snapshot;

  obs::BlameReport blame;
  ddl::TrainResult result;

  // Appended windowed OpenMetrics snapshots (empty unless requested).
  std::string openmetrics;
};

// Runs the simulation with `monitor` attached as the trainer's live
// observer. `extra` (may be null) sees every sample/recovery after the
// monitor has consumed it — the live dashboard hangs here. `trace` and
// `metrics` (may be null) attach to the training run like the profiler's
// sinks. After the run the causal log is walked and its per-iteration
// blame folded into the monitor, which may append further events.
MonitorRunReport run_monitor(const dnn::Model& model,
                             const dnn::Dataset& dataset,
                             const MonitorOptions& opts, StallMonitor& monitor,
                             ddl::IterationObserver* extra = nullptr,
                             util::TraceRecorder* trace = nullptr,
                             telemetry::MetricsRegistry* metrics = nullptr);

// The `stash.monitor/1` JSONL stream (every line a complete JSON document,
// newline-terminated; see EXPERIMENTS.md for the schema).
std::string monitor_to_jsonl(const MonitorRunReport& report);

// One JSON document for a single event (no trailing newline) — shared by
// the JSONL writer and tests.
std::string event_to_json(const MonitorEvent& ev);

// Adds one instant per detection to the "monitor" track (pid 0, tid 130 —
// above the trainer's worker tracks) of an existing timeline.
void annotate_monitor_trace(const MonitorRunReport& report,
                            util::TraceRecorder& trace);

// Records the monitor's run-level summary into a registry under "monitor/"
// (event counts by kind, final windowed signal means, detection latency).
void record_monitor_metrics(const MonitorRunReport& report,
                            telemetry::MetricsRegistry& metrics);

}  // namespace stash::monitor
