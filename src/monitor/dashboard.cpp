#include "monitor/dashboard.h"

#include <algorithm>
#include <cstdio>

namespace stash::monitor {

namespace {

const char* const kBlocks[8] = {"▁", "▂", "▃", "▄",
                                "▅", "▆", "▇", "█"};

std::string pct(double num, double den) {
  const double v = den > 0.0 ? num / den * 100.0 : 0.0;
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%.0f%%", std::max(0.0, v));
  return buf;
}

}  // namespace

std::string sparkline(const std::vector<double>& values, std::size_t width) {
  if (values.size() < 2 || width == 0) return "";
  const std::size_t first =
      values.size() > width ? values.size() - width : 0;
  double lo = values[first], hi = values[first];
  for (std::size_t i = first; i < values.size(); ++i) {
    lo = std::min(lo, values[i]);
    hi = std::max(hi, values[i]);
  }
  std::string out;
  for (std::size_t i = first; i < values.size(); ++i) {
    int level = 0;
    if (hi > lo)
      level = static_cast<int>((values[i] - lo) / (hi - lo) * 7.0 + 0.5);
    out += kBlocks[std::clamp(level, 0, 7)];
  }
  return out;
}

LiveDashboard::LiveDashboard(const StallMonitor& monitor,
                             obs::ProgressReporter& reporter,
                             int total_iterations)
    : monitor_(monitor),
      reporter_(reporter),
      total_iterations_(total_iterations) {
  reporter_.begin("monitor", total_iterations);
}

std::string LiveDashboard::frame(const ddl::IterationSample& sample) const {
  const Snapshot snap = monitor_.snapshot();
  char head[96];
  std::snprintf(head, sizeof(head), "[monitor] it %d/%d  %.2f it/s ",
                sample.iteration + 1, total_iterations_,
                snap.window_iters_per_s);
  std::string out = head;
  out += sparkline(monitor_.recent_totals(), 16);
  out += " | wait " + pct(snap.data_wait.mean, snap.total.mean);
  out += " comp " + pct(snap.compute.mean, snap.total.mean);
  out += " comm " + pct(snap.comm_tail.mean, snap.total.mean);
  out += " barr " + pct(snap.barrier.mean, snap.total.mean);
  out += " | alerts " + std::to_string(snap.events_total);
  return out;
}

void LiveDashboard::on_iteration(const ddl::IterationSample& sample) {
  // New detections become permanent ALERT lines before the frame redraw,
  // so they stay on screen after the status line moves on.
  const auto& events = monitor_.events();
  for (; alerts_seen_ < events.size(); ++alerts_seen_) {
    const MonitorEvent& ev = events[alerts_seen_];
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "ALERT %s (%s on %s): onset it %d, detected it %d "
                  "(latency %d), %.1f sigma",
                  to_string(ev.kind), to_string(ev.detector),
                  ev.signal.c_str(), ev.onset_iteration, ev.detect_iteration,
                  ev.latency_iterations, ev.magnitude_sigma);
    reporter_.note(buf);
  }
  last_frame_ = frame(sample);
  reporter_.status(last_frame_);
}

void LiveDashboard::on_recovery(const ddl::RecoveryRecord& rec) {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "recovery at %.1f s (iteration %d): workers %d -> %d, "
                "waited %.1f s",
                rec.time_s, rec.at_iteration, rec.workers_before,
                rec.workers_after, rec.wait_seconds);
  reporter_.note(buf);
}

void LiveDashboard::finish() {
  if (!last_frame_.empty()) reporter_.status(last_frame_, /*force=*/true);
  reporter_.clear_status();
}

}  // namespace stash::monitor
