#include "monitor/detectors.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace stash::monitor {

void DetectorConfig::validate() const {
  if (baseline_iters < 2)
    throw std::invalid_argument("DetectorConfig: baseline_iters must be >= 2");
  if (!(cusum_k >= 0.0) || !std::isfinite(cusum_k))
    throw std::invalid_argument("DetectorConfig: cusum_k must be >= 0");
  if (!(cusum_h > 0.0) || !std::isfinite(cusum_h))
    throw std::invalid_argument("DetectorConfig: cusum_h must be > 0");
  if (!(ewma_lambda > 0.0 && ewma_lambda <= 1.0))
    throw std::invalid_argument("DetectorConfig: ewma_lambda must be in (0, 1]");
  if (!(ewma_limit > 0.0) || !std::isfinite(ewma_limit))
    throw std::invalid_argument("DetectorConfig: ewma_limit must be > 0");
  if (!(min_sigma > 0.0) || !std::isfinite(min_sigma))
    throw std::invalid_argument("DetectorConfig: min_sigma must be > 0");
  if (min_sigma_frac < 0.0 || !std::isfinite(min_sigma_frac))
    throw std::invalid_argument("DetectorConfig: min_sigma_frac must be >= 0");
  if (baseline_guard < 0.0 || !std::isfinite(baseline_guard))
    throw std::invalid_argument("DetectorConfig: baseline_guard must be >= 0");
}

namespace {

double floored_sigma(const DetectorConfig& cfg, double mu, double var,
                     std::size_t n) {
  double sigma = std::sqrt(std::max(0.0, var));
  sigma *= 1.0 + cfg.baseline_guard / std::sqrt(static_cast<double>(n));
  sigma = std::max(sigma, cfg.min_sigma);
  return std::max(sigma, cfg.min_sigma_frac * std::abs(mu));
}

}  // namespace

CusumDetector::CusumDetector(const DetectorConfig& cfg) : cfg_(cfg) {
  cfg_.validate();
}

void CusumDetector::freeze() {
  const double n = static_cast<double>(armed_n_);
  mu0_ = sum_ / n;
  // Sample (Bessel-corrected) variance: a short baseline must not freeze an
  // optimistically small sigma, or in-control noise turns into alarms.
  const double var = (sum_sq_ - n * mu0_ * mu0_) / (n - 1.0);
  sigma0_ = floored_sigma(cfg_, mu0_, var, armed_n_);
  frozen_ = true;
}

Detection CusumDetector::push(double x) {
  Detection d;
  const std::size_t idx = n_++;
  ++armed_n_;
  if (!frozen_) {
    sum_ += x;
    sum_sq_ += x * x;
    last_zero_ = idx;
    if (armed_n_ >= cfg_.baseline_iters) freeze();
    return d;
  }
  const double z = (x - mu0_) / sigma0_;
  s_ = std::max(0.0, s_ + z - cfg_.cusum_k);
  if (s_ == 0.0) last_zero_ = idx;
  if (s_ > cfg_.cusum_h) {
    d.fired = true;
    d.onset_index = last_zero_ + 1;
    d.detect_index = idx;
    d.baseline_mean = mu0_;
    d.baseline_sigma = sigma0_;
    d.observed = x;
    d.magnitude_sigma = z;
    // Re-arm: learn the post-change regime as the new baseline.
    frozen_ = false;
    armed_n_ = 0;
    sum_ = 0.0;
    sum_sq_ = 0.0;
    s_ = 0.0;
  }
  return d;
}

void CusumDetector::clear() {
  n_ = 0;
  armed_n_ = 0;
  frozen_ = false;
  sum_ = 0.0;
  sum_sq_ = 0.0;
  mu0_ = 0.0;
  sigma0_ = 0.0;
  s_ = 0.0;
  last_zero_ = 0;
}

EwmaDrift::EwmaDrift(const DetectorConfig& cfg) : cfg_(cfg) {
  cfg_.validate();
}

void EwmaDrift::freeze() {
  const double n = static_cast<double>(armed_n_);
  mu0_ = sum_ / n;
  const double var = (sum_sq_ - n * mu0_ * mu0_) / (n - 1.0);
  sigma0_ = floored_sigma(cfg_, mu0_, var, armed_n_);
  z_ = mu0_;
  frozen_ = true;
}

Detection EwmaDrift::push(double x) {
  Detection d;
  const std::size_t idx = n_++;
  ++armed_n_;
  if (!frozen_) {
    sum_ += x;
    sum_sq_ += x * x;
    last_inside_ = idx;
    if (armed_n_ >= cfg_.baseline_iters) freeze();
    return d;
  }
  const double lam = cfg_.ewma_lambda;
  z_ = lam * x + (1.0 - lam) * z_;
  const double t = static_cast<double>(armed_n_);
  const double correction = 1.0 - std::pow(1.0 - lam, 2.0 * t);
  const double width =
      cfg_.ewma_limit * sigma0_ * std::sqrt(lam / (2.0 - lam) * correction);
  if (std::abs(z_ - mu0_) <= width) {
    last_inside_ = idx;
  } else {
    d.fired = true;
    d.onset_index = last_inside_ + 1;
    d.detect_index = idx;
    d.baseline_mean = mu0_;
    d.baseline_sigma = sigma0_;
    d.observed = x;
    d.magnitude_sigma = (z_ - mu0_) / sigma0_;
    frozen_ = false;
    armed_n_ = 0;
    sum_ = 0.0;
    sum_sq_ = 0.0;
    z_ = 0.0;
  }
  return d;
}

void EwmaDrift::clear() {
  n_ = 0;
  armed_n_ = 0;
  frozen_ = false;
  sum_ = 0.0;
  sum_sq_ = 0.0;
  mu0_ = 0.0;
  sigma0_ = 0.0;
  z_ = 0.0;
  last_inside_ = 0;
}

DetectorConfig run_axis_config() {
  DetectorConfig cfg;
  // Archives are short series: three runs establish the baseline, and a
  // single strongly-shifted run should alarm (h = 3 sigmas after the k
  // allowance). Identical seeded runs freeze sigma at the floors: 5% of the
  // baseline mean, or an absolute 0.05 when the baseline sits at zero (a
  // stall category that appears out of nowhere is then ~20 sigma per
  // percentage point, not millions).
  cfg.baseline_iters = 3;
  cfg.cusum_k = 0.5;
  cfg.cusum_h = 3.0;
  cfg.ewma_lambda = 0.4;
  cfg.ewma_limit = 3.0;
  cfg.min_sigma = 0.05;
  cfg.min_sigma_frac = 0.05;
  cfg.baseline_guard = 1.0;
  return cfg;
}

namespace {

// Rank used only to order same-index firings deterministically.
int finding_rank(const SeriesFinding& f) {
  if (f.detector == SeriesFinding::Detector::kCusum) return f.increase ? 0 : 1;
  return 2;
}

}  // namespace

std::vector<SeriesFinding> scan_series(const std::vector<double>& xs,
                                       const DetectorConfig& cfg) {
  std::vector<SeriesFinding> out;

  CusumDetector up(cfg);
  for (double x : xs) {
    Detection d = up.push(x);
    if (d.fired) {
      SeriesFinding f;
      f.detector = SeriesFinding::Detector::kCusum;
      f.increase = true;
      f.detection = d;
      out.push_back(f);
    }
  }

  // Decrease side: the one-sided CUSUM only accumulates positive shifts, so
  // feed the negated series and map the affected fields back to raw units.
  CusumDetector down(cfg);
  for (double x : xs) {
    Detection d = down.push(-x);
    if (d.fired) {
      d.baseline_mean = -d.baseline_mean;
      d.observed = -d.observed;
      SeriesFinding f;
      f.detector = SeriesFinding::Detector::kCusum;
      f.increase = false;
      f.detection = d;
      out.push_back(f);
    }
  }

  EwmaDrift ewma(cfg);
  for (double x : xs) {
    Detection d = ewma.push(x);
    if (d.fired) {
      SeriesFinding f;
      f.detector = SeriesFinding::Detector::kEwma;
      f.increase = d.magnitude_sigma >= 0.0;
      f.detection = d;
      out.push_back(f);
    }
  }

  std::stable_sort(out.begin(), out.end(),
                   [](const SeriesFinding& a, const SeriesFinding& b) {
                     if (a.detection.detect_index != b.detection.detect_index)
                       return a.detection.detect_index < b.detection.detect_index;
                     return finding_rank(a) < finding_rank(b);
                   });
  return out;
}

}  // namespace stash::monitor
