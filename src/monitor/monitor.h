// StallMonitor: the streaming stall observatory core.
//
// Consumes the trainer's live per-iteration samples (ddl::IterationObserver)
// and maintains, per stall signal, a fixed-capacity ring window with O(1)
// rolling mean/variance, streaming p50/p95 (P-squared), and two online
// change-point detectors (CUSUM onset + EWMA drift). Detections become
// typed MonitorEvents carrying the estimated onset iteration and the
// detection latency in iterations.
//
// It also maintains a sliding-window view of PR 4's causal blame: callers
// fold per-iteration obs::IterationBlame records (in sample order) and the
// monitor keeps windowed by-category totals incrementally — add the new
// iteration, subtract whatever the ring evicts — instead of whole-run
// aggregation. The windowed communication share (interconnect + network on
// the critical path) feeds its own detectors and emits kCommBlameShift.
//
// Everything is a pure function of the (sample, blame) streams: no clocks,
// no threads, no allocation in steady state beyond the event list.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "ddl/train_config.h"
#include "monitor/detectors.h"
#include "monitor/event.h"
#include "monitor/online_stats.h"
#include "monitor/ring_buffer.h"
#include "obs/causal_log.h"
#include "obs/critical_path.h"

namespace stash::monitor {

struct MonitorConfig {
  // Ring capacity per signal and the sliding blame window, in iterations.
  std::size_t window = 32;
  DetectorConfig detector{};
  // After any event on a signal, further events on the same signal are
  // suppressed for this many samples (both detectors re-baseline after
  // firing; the cooldown keeps one regime shift from double-reporting
  // through the other detector). 0 = no cooldown.
  std::size_t event_cooldown = 8;

  void validate() const;
};

// Windowed summary of one signal.
struct SignalSummary {
  double last = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
};

// Point-in-time view for dashboards and summary tables.
struct Snapshot {
  int iterations_seen = 0;
  int last_iteration = -1;
  double last_end_s = 0.0;
  SignalSummary total;
  SignalSummary data_wait;
  SignalSummary compute;
  SignalSummary comm_tail;
  SignalSummary barrier;
  // Mean iterations/s over the retained window (0 until two samples).
  double window_iters_per_s = 0.0;
  // Sliding-window causal blame (absent until blame is folded).
  bool has_blame = false;
  std::array<double, obs::kBlameCategories> window_blame_s{};
  double window_blame_total_s = 0.0;
  double comm_blame_share = 0.0;  // (interconnect + network) / total
  int events_total = 0;
};

class StallMonitor : public ddl::IterationObserver {
 public:
  explicit StallMonitor(const MonitorConfig& cfg);

  // ddl::IterationObserver: feed one committed iteration.
  void on_iteration(const ddl::IterationSample& s) override;
  void on_recovery(const ddl::RecoveryRecord& rec) override;

  // Folds one iteration's causal blame into the sliding window. Records
  // must arrive in the same order as the samples they describe; iterations
  // the walker skipped may be omitted.
  void fold_blame(const obs::IterationBlame& blame);

  Snapshot snapshot() const;
  const std::vector<MonitorEvent>& events() const { return events_; }
  const std::vector<ddl::RecoveryRecord>& recoveries() const {
    return recoveries_;
  }
  // Retained iteration totals, oldest first (dashboard sparkline).
  std::vector<double> recent_totals() const;
  const MonitorConfig& config() const { return cfg_; }

 private:
  // One monitored signal: window stats, quantiles, and both detectors.
  struct Signal {
    Signal(const char* name, EventKind kind, const MonitorConfig& cfg);
    void push(StallMonitor& m, double value, int iteration, double time_s);
    SignalSummary summary() const;

    const char* name;
    EventKind kind;
    RollingStats stats;
    P2Quantile p50;
    P2Quantile p95;
    CusumDetector cusum;
    EwmaDrift ewma;
    double last = 0.0;
    // Sample-stream-index -> iteration mapping for onset reporting.
    std::vector<int> iterations;
    std::size_t cooldown_until = 0;  // suppress events below this index
  };

  void emit(Signal& sig, DetectorKind det, const Detection& d, int iteration,
            double time_s);

  MonitorConfig cfg_;
  Signal total_;
  Signal data_wait_;
  Signal compute_;
  Signal comm_tail_;
  Signal barrier_;
  Signal comm_share_;

  int iterations_seen_ = 0;
  int last_iteration_ = -1;
  double last_end_s_ = 0.0;
  RingBuffer<double> window_ends_;  // iteration end times (throughput)

  // Sliding blame window.
  struct BlameEntry {
    std::array<double, obs::kBlameCategories> by_category{};
    double total = 0.0;
  };
  RingBuffer<BlameEntry> blame_ring_;
  std::array<double, obs::kBlameCategories> blame_sums_{};
  double blame_total_ = 0.0;
  bool has_blame_ = false;

  std::vector<MonitorEvent> events_;
  std::vector<ddl::RecoveryRecord> recoveries_;
};

}  // namespace stash::monitor
