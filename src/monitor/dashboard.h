// Live terminal dashboard for `stash_cli monitor --live`.
//
// Hangs off the monitor driver's observer chain and renders one status
// frame per committed iteration through a ProgressReporter:
//
//   [monitor] it 42/64  8.1 it/s ▂▃▂▇▇▇ | wait 2% comp 81% comm 11% barr 5% | alerts 1
//
// plus a permanent `ALERT <kind> ...` line the moment a detector fires. All
// output goes to the reporter's stream (stderr for the CLI): stdout's
// machine-readable documents and their byte-identical guarantee are
// untouched. Frame pacing (>= 50 ms between redraws, in-place rewriting on
// a TTY, plain lines when redirected) is the reporter's job.
#pragma once

#include <string>

#include "ddl/train_config.h"
#include "monitor/monitor.h"
#include "obs/progress.h"

namespace stash::monitor {

class LiveDashboard : public ddl::IterationObserver {
 public:
  // `monitor` must be the observer ahead of this one in the chain (the
  // dashboard renders its snapshot); `total_iterations` sizes the counter.
  LiveDashboard(const StallMonitor& monitor, obs::ProgressReporter& reporter,
                int total_iterations);

  void on_iteration(const ddl::IterationSample& sample) override;
  void on_recovery(const ddl::RecoveryRecord& rec) override;

  // Draws the final frame unthrottled and drops to a fresh line.
  void finish();

  // The current frame text (exposed for tests; no terminal involved).
  std::string frame(const ddl::IterationSample& sample) const;

 private:
  const StallMonitor& monitor_;
  obs::ProgressReporter& reporter_;
  int total_iterations_;
  std::size_t alerts_seen_ = 0;
  std::string last_frame_;
};

// Unicode block sparkline of `values` (empty string for < 2 values).
std::string sparkline(const std::vector<double>& values, std::size_t width);

}  // namespace stash::monitor
