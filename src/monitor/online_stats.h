// Streaming statistics over per-iteration samples: O(1) rolling
// mean/variance over a fixed window, P-squared quantile estimation, and an
// exponentially weighted moving average. All of it is a pure function of
// the sample sequence — no clocks, no allocation in steady state — so every
// consumer inherits the repo's byte-identical-output guarantee.
#pragma once

#include <array>
#include <cstddef>

#include "monitor/ring_buffer.h"

namespace stash::monitor {

// Windowed mean/variance maintained incrementally: push adds the new sample
// and subtracts whatever the ring evicts, so cost is O(1) regardless of the
// window length. Variance is the population variance of the retained
// window, clamped at zero against floating-point cancellation.
class RollingStats {
 public:
  explicit RollingStats(std::size_t window);

  void push(double x);
  std::size_t count() const { return ring_.size(); }
  std::size_t window() const { return ring_.capacity(); }
  // i-th retained sample, oldest first.
  double at(std::size_t i) const { return ring_.at(i); }
  double mean() const;
  double variance() const;
  double stddev() const;
  double min() const;  // of the retained window, O(n) — diagnostics only
  double max() const;
  void clear();

 private:
  RingBuffer<double> ring_;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
};

// P-squared (Jain & Chlamtac 1985) streaming quantile estimator: five
// markers track min, q/2, q, (1+q)/2 and max, adjusted per observation with
// piecewise-parabolic interpolation. O(1) per sample and O(1) memory, with
// the classic accuracy of a few percent of the true quantile on smooth
// distributions — the exact-sort oracle tolerance is pinned by tests.
class P2Quantile {
 public:
  explicit P2Quantile(double q);

  void push(double x);
  std::size_t count() const { return count_; }
  // Current estimate. Before five samples have arrived this falls back to
  // the exact quantile of the buffered samples.
  double value() const;
  void clear();

 private:
  double q_;
  std::size_t count_ = 0;
  std::array<double, 5> heights_{};       // marker heights
  std::array<double, 5> positions_{};     // actual marker positions
  std::array<double, 5> desired_{};       // desired marker positions
  std::array<double, 5> increments_{};    // desired-position increments
};

// Exponentially weighted moving average with the standard control-chart
// variance correction: var(z_t) = sigma^2 * lambda/(2-lambda) *
// (1 - (1-lambda)^{2t}).
class Ewma {
 public:
  explicit Ewma(double lambda);

  void push(double x);
  std::size_t count() const { return count_; }
  double value() const { return value_; }
  double lambda() const { return lambda_; }
  // The (1 - (1-lambda)^{2t}) startup correction factor for control limits.
  double limit_correction() const;
  void clear();

 private:
  double lambda_;
  double value_ = 0.0;
  std::size_t count_ = 0;
};

}  // namespace stash::monitor
