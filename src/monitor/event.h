// Typed events the streaming observatory emits when a detector fires.
#pragma once

#include <string>

namespace stash::monitor {

enum class EventKind {
  kStragglerOnset,       // barrier-wait shift: a peer started pacing the ring
  kFetchStallRegression, // data-wait shift: the input pipeline fell behind
  kCommBlameShift,       // windowed causal comm blame share drifted up
  kThroughputCollapse,   // total iteration time shifted up
};

const char* to_string(EventKind k);

enum class DetectorKind { kCusum, kEwma };

const char* to_string(DetectorKind k);

struct MonitorEvent {
  EventKind kind = EventKind::kThroughputCollapse;
  DetectorKind detector = DetectorKind::kCusum;
  std::string signal;        // e.g. "iter_total_s", "barrier_s"
  int onset_iteration = 0;   // estimated first shifted iteration
  int detect_iteration = 0;  // iteration whose sample raised the alarm
  int latency_iterations = 0;  // detect - onset
  double time_s = 0.0;       // simulated time of the detecting sample's end
  double baseline = 0.0;     // frozen baseline mean of the signal
  double observed = 0.0;     // the alarming sample value
  double magnitude_sigma = 0.0;
};

}  // namespace stash::monitor
