// Online change-point detectors over per-iteration stall signals.
//
// Two complementary detectors run per signal:
//
//   CusumDetector  one-sided CUSUM on standardized deviations from a frozen
//                  baseline: S_t = max(0, S_{t-1} + (x_t - mu0)/sigma0 - k).
//                  Alarms when S_t > h. Because S stays pinned at zero until
//                  the shift starts, the last iteration with S == 0 is a
//                  maximum-likelihood estimate of the onset — the detector
//                  reports both the onset and the detection latency in
//                  iterations.
//   EwmaDrift      an EWMA control chart: z_t = lambda*x + (1-lambda)*z,
//                  alarming when z leaves mu0 +/- L*sigma0*sqrt(lambda/
//                  (2-lambda)*(1-(1-lambda)^(2t))). Catches slow drifts the
//                  CUSUM's per-step drift allowance k absorbs.
//
// Both freeze their baseline (mu0, sigma0) from the first `baseline_iters`
// samples, floor sigma0 at min_sigma (a perfectly deterministic simulation
// can produce a zero-variance baseline), and re-arm after an alarm by
// collecting a fresh baseline from post-change samples, so a later second
// shift is detected against the new regime. Pure functions of the sample
// stream: no clocks, no randomness.
#pragma once

#include <cstddef>
#include <vector>

namespace stash::monitor {

struct DetectorConfig {
  std::size_t baseline_iters = 8;  // samples frozen into (mu0, sigma0)
  double cusum_k = 0.5;            // per-step drift allowance, in sigmas
  double cusum_h = 5.0;            // alarm threshold, in sigmas
  double ewma_lambda = 0.2;
  double ewma_limit = 3.0;         // control-limit width L, in sigmas
  double min_sigma = 1e-6;         // sigma0 floor (deterministic baselines)
  // sigma0 is also floored at this fraction of |mu0|, so "interesting"
  // shifts are relative to the signal's own scale rather than simulation
  // noise when the baseline is nearly constant.
  double min_sigma_frac = 0.02;
  // Phase-I estimation guard: the frozen sigma0 is inflated by
  // (1 + baseline_guard / sqrt(baseline_iters)). A short baseline both
  // underestimates sigma (chi-square spread) and misplaces mu0 (sigma/
  // sqrt(n) bias that CUSUM integrates every step); without the guard the
  // realized in-control run length collapses far below the nominal ARL.
  // Genuine shifts in the simulator are many baseline sigmas, so detection
  // latency is unaffected. 0 disables.
  double baseline_guard = 2.0;

  void validate() const;
};

struct Detection {
  bool fired = false;
  // Estimated first shifted iteration: the sample index (0-based, in
  // samples seen by this detector) after the last time the CUSUM statistic
  // was zero.
  std::size_t onset_index = 0;
  std::size_t detect_index = 0;  // sample index that raised the alarm
  double baseline_mean = 0.0;
  double baseline_sigma = 0.0;
  double observed = 0.0;          // the alarming sample
  double magnitude_sigma = 0.0;   // (observed - mu0) / sigma0
};

class CusumDetector {
 public:
  explicit CusumDetector(const DetectorConfig& cfg);

  // Feeds one sample; returns a Detection with fired=true at most once per
  // armed period. The first `baseline_iters` samples only train the
  // baseline and can never alarm.
  Detection push(double x);

  std::size_t samples() const { return n_; }
  bool baseline_frozen() const { return frozen_; }
  double baseline_mean() const { return mu0_; }
  double baseline_sigma() const { return sigma0_; }
  double statistic() const { return s_; }
  void clear();

 private:
  void freeze();

  DetectorConfig cfg_;
  std::size_t n_ = 0;       // total samples consumed
  std::size_t armed_n_ = 0; // samples consumed since the last (re)arm
  bool frozen_ = false;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double mu0_ = 0.0;
  double sigma0_ = 0.0;
  double s_ = 0.0;
  std::size_t last_zero_ = 0;  // last sample index with s_ == 0
};

// Detector configuration retuned for the run axis: the archive's drift
// scan feeds one sample per *run*, not per iteration, so series are short
// (often 5-20 points). The baseline shrinks to 3 runs and the CUSUM
// threshold drops so a sustained shift is flagged within ~2 shifted runs,
// while min_sigma_frac rises to 5% — run-to-run variation below that is
// configuration noise, not a regression.
DetectorConfig run_axis_config();

// One firing from scan_series: which detector fired, in which direction,
// and the embedded Detection (onset_index/detect_index are indices into the
// scanned series).
struct SeriesFinding {
  enum class Detector { kCusum, kEwma };
  Detector detector = Detector::kCusum;
  bool increase = true;  // shift direction relative to the frozen baseline
  Detection detection;
};

// Replays a finite series through fresh detectors and returns every firing
// in detection order: an increase-side CUSUM on the raw series, a
// decrease-side CUSUM on the negated series (Detection fields mapped back
// to raw-series units), and the two-sided EWMA chart. Deterministic — a
// pure function of (xs, cfg).
std::vector<SeriesFinding> scan_series(const std::vector<double>& xs,
                                       const DetectorConfig& cfg);

class EwmaDrift {
 public:
  explicit EwmaDrift(const DetectorConfig& cfg);

  Detection push(double x);

  std::size_t samples() const { return n_; }
  double value() const { return z_; }
  void clear();

 private:
  void freeze();

  DetectorConfig cfg_;
  std::size_t n_ = 0;
  std::size_t armed_n_ = 0;
  bool frozen_ = false;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double mu0_ = 0.0;
  double sigma0_ = 0.0;
  double z_ = 0.0;
  std::size_t last_inside_ = 0;  // last sample index inside the limits
};

}  // namespace stash::monitor
