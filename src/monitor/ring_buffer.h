// Fixed-capacity ring buffer: the storage discipline of the streaming
// observatory. Capacity is set once; push evicts the oldest element when
// full. No allocation after construction, O(1) push, oldest-first indexing
// — a window over an unbounded sample stream with bounded memory.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace stash::monitor {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity)
      : buf_(capacity > 0
                 ? capacity
                 : throw std::invalid_argument(
                       "RingBuffer: capacity must be >= 1")) {}

  std::size_t capacity() const { return buf_.size(); }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == buf_.size(); }

  // Appends `v`; returns true if an element was evicted to make room (the
  // evicted value is written to *evicted when non-null, for streaming
  // statistics that subtract what leaves the window).
  bool push(const T& v, T* evicted = nullptr) {
    const bool evict = full();
    if (evict) {
      if (evicted != nullptr) *evicted = buf_[head_];
      buf_[head_] = v;
      head_ = (head_ + 1) % buf_.size();
    } else {
      buf_[(head_ + size_) % buf_.size()] = v;
      ++size_;
    }
    return evict;
  }

  // Oldest-first access: at(0) is the oldest retained element, at(size()-1)
  // the newest.
  const T& at(std::size_t i) const {
    if (i >= size_) throw std::out_of_range("RingBuffer::at");
    return buf_[(head_ + i) % buf_.size()];
  }

  const T& front() const { return at(0); }
  const T& back() const { return at(size_ - 1); }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  std::vector<T> buf_;
  std::size_t head_ = 0;  // index of the oldest element
  std::size_t size_ = 0;
};

}  // namespace stash::monitor
