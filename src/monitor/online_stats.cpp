#include "monitor/online_stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace stash::monitor {

RollingStats::RollingStats(std::size_t window) : ring_(window) {}

void RollingStats::push(double x) {
  double evicted = 0.0;
  if (ring_.push(x, &evicted)) {
    sum_ -= evicted;
    sum_sq_ -= evicted * evicted;
  }
  sum_ += x;
  sum_sq_ += x * x;
}

double RollingStats::mean() const {
  return ring_.empty() ? 0.0 : sum_ / static_cast<double>(ring_.size());
}

double RollingStats::variance() const {
  if (ring_.size() < 2) return 0.0;
  const double n = static_cast<double>(ring_.size());
  const double m = sum_ / n;
  return std::max(0.0, sum_sq_ / n - m * m);
}

double RollingStats::stddev() const { return std::sqrt(variance()); }

double RollingStats::min() const {
  double m = ring_.empty() ? 0.0 : ring_.at(0);
  for (std::size_t i = 1; i < ring_.size(); ++i) m = std::min(m, ring_.at(i));
  return m;
}

double RollingStats::max() const {
  double m = ring_.empty() ? 0.0 : ring_.at(0);
  for (std::size_t i = 1; i < ring_.size(); ++i) m = std::max(m, ring_.at(i));
  return m;
}

void RollingStats::clear() {
  ring_.clear();
  sum_ = 0.0;
  sum_sq_ = 0.0;
}

P2Quantile::P2Quantile(double q) : q_(q) {
  if (!(q > 0.0 && q < 1.0))
    throw std::invalid_argument("P2Quantile: q must be in (0, 1)");
}

void P2Quantile::push(double x) {
  if (count_ < 5) {
    heights_[count_++] = x;
    if (count_ == 5) {
      std::sort(heights_.begin(), heights_.end());
      for (int i = 0; i < 5; ++i) positions_[i] = i + 1;
      desired_ = {1.0, 1.0 + 2.0 * q_, 1.0 + 4.0 * q_, 3.0 + 2.0 * q_, 5.0};
      increments_ = {0.0, q_ / 2.0, q_, (1.0 + q_) / 2.0, 1.0};
    }
    return;
  }

  // Find the cell the observation falls into and bump the extremes.
  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }
  for (int i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];
  ++count_;

  // Adjust the three interior markers toward their desired positions using
  // the piecewise-parabolic (P^2) formula, falling back to linear when the
  // parabolic prediction would leave the bracketing heights.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double below = positions_[i] - positions_[i - 1];
    const double above = positions_[i + 1] - positions_[i];
    if ((d >= 1.0 && above > 1.0) || (d <= -1.0 && below > 1.0)) {
      const double s = d >= 1.0 ? 1.0 : -1.0;
      const double np = positions_[i] + s;
      const double parabolic =
          heights_[i] +
          s / (positions_[i + 1] - positions_[i - 1]) *
              ((below + s) * (heights_[i + 1] - heights_[i]) / above +
               (above - s) * (heights_[i] - heights_[i - 1]) / below);
      if (heights_[i - 1] < parabolic && parabolic < heights_[i + 1]) {
        heights_[i] = parabolic;
      } else {
        const int j = i + static_cast<int>(s);
        heights_[i] += s * (heights_[j] - heights_[i]) /
                       (positions_[j] - positions_[i]);
      }
      positions_[i] = np;
    }
  }
}

double P2Quantile::value() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Exact quantile of the few buffered samples (nearest-rank).
    std::array<double, 5> s = heights_;
    std::sort(s.begin(), s.begin() + count_);
    const auto idx = static_cast<std::size_t>(
        q_ * static_cast<double>(count_ - 1) + 0.5);
    return s[std::min(idx, count_ - 1)];
  }
  return heights_[2];
}

void P2Quantile::clear() {
  count_ = 0;
  heights_.fill(0.0);
  positions_.fill(0.0);
  desired_.fill(0.0);
  increments_.fill(0.0);
}

Ewma::Ewma(double lambda) : lambda_(lambda) {
  if (!(lambda > 0.0 && lambda <= 1.0))
    throw std::invalid_argument("Ewma: lambda must be in (0, 1]");
}

void Ewma::push(double x) {
  value_ = count_ == 0 ? x : lambda_ * x + (1.0 - lambda_) * value_;
  ++count_;
}

double Ewma::limit_correction() const {
  const double r = 1.0 - lambda_;
  return 1.0 - std::pow(r, 2.0 * static_cast<double>(count_));
}

void Ewma::clear() {
  value_ = 0.0;
  count_ = 0;
}

}  // namespace stash::monitor
