#include "coll/ring_allreduce.h"

#include <stdexcept>

#include "sim/sync.h"

namespace stash::coll {

sim::Task<void> ring_allreduce_over(CollectiveContext& ctx,
                                    std::vector<hw::GpuRef> ring, double bytes,
                                    double round_latency) {
  if (bytes < 0.0) throw std::invalid_argument("ring_allreduce: negative bytes");
  const std::size_t k = ring.size();
  if (k == 0) throw std::invalid_argument("ring_allreduce: empty ring");
  if (ctx.metrics != nullptr) {
    ctx.metrics->counter("coll/ring/collectives").increment();
    ctx.metrics->counter("coll/ring/bytes_sent").add(bytes);
  }
  if (k == 1) {
    co_await ctx.sim.delay(round_latency);
    co_return;
  }

  // Reduce-scatter then all-gather: 2(k-1) rounds, each moving one
  // bytes/k chunk along every ring edge concurrently. Rounds are
  // barrier-synchronized (the standard round-synchronous approximation);
  // the slowest edge paces every round.
  const double chunk = bytes / static_cast<double>(k);
  const int rounds = 2 * (static_cast<int>(k) - 1);
  for (int r = 0; r < rounds; ++r) {
    const double round_start = ctx.sim.now();
    co_await ctx.sim.delay(round_latency);
    std::vector<sim::Task<void>> flows;
    flows.reserve(k);
    for (std::size_t i = 0; i < k; ++i) {
      auto path = ctx.cluster.path(ring[i], ring[(i + 1) % k]);
      flows.push_back(ctx.net.transfer(chunk, std::move(path)));
    }
    co_await sim::join_all(ctx.sim, std::move(flows));
    if (ctx.metrics != nullptr) {
      ctx.metrics->counter("coll/ring/rounds").increment();
      ctx.metrics->histogram("coll/ring/step_latency_s")
          .observe(ctx.sim.now() - round_start);
    }
  }
}

sim::Task<void> ring_allreduce(CollectiveContext& ctx, double bytes) {
  return ring_allreduce_over(ctx, ctx.cluster.ring_order(), bytes,
                             ctx.round_latency());
}

double ring_allreduce_analytic(double bytes, int k, double bottleneck_bw,
                               double round_latency) {
  if (k < 1) throw std::invalid_argument("ring_allreduce_analytic: k < 1");
  if (k == 1) return round_latency;
  if (bottleneck_bw <= 0.0)
    throw std::invalid_argument("ring_allreduce_analytic: bw <= 0");
  double rounds = 2.0 * (k - 1);
  return rounds * (round_latency + bytes / (static_cast<double>(k) * bottleneck_bw));
}

}  // namespace stash::coll
