#include "coll/ring_allreduce.h"

#include <algorithm>
#include <limits>
#include <map>
#include <stdexcept>

#include "sim/sync.h"

namespace stash::coll {

namespace {

// Analytic intra-machine share of one ring round: the duration a round
// *would* have if only the intra-machine hops existed, over the duration
// with every hop. Used to split each recorded round edge into an
// interconnect part and a network part — the same decomposition the
// trainer applies to its synchronous collective charge, so blame reports
// agree with differencing's T5-T2 coordinate.
double intra_round_fraction(CollectiveContext& ctx,
                            const std::vector<hw::GpuRef>& ring, double chunk,
                            double round_latency) {
  const std::size_t k = ring.size();
  std::map<hw::Link*, int> traversals;
  for (std::size_t i = 0; i < k; ++i)
    for (hw::Link* l : ctx.cluster.path(ring[i], ring[(i + 1) % k]))
      ++traversals[l];
  const double inf = std::numeric_limits<double>::infinity();
  double full_rate = inf;
  double intra_rate = inf;
  bool crosses = false;
  for (std::size_t i = 0; i < k; ++i) {
    const hw::GpuRef& a = ring[i];
    const hw::GpuRef& b = ring[(i + 1) % k];
    double hop_rate = inf;
    for (hw::Link* l : ctx.cluster.path(a, b))
      hop_rate = std::min(hop_rate, l->capacity() / traversals[l]);
    full_rate = std::min(full_rate, hop_rate);
    if (a.machine == b.machine)
      intra_rate = std::min(intra_rate, hop_rate);
    else
      crosses = true;
  }
  if (!crosses) return 1.0;
  const double intra_latency = ctx.config.intra_round_latency;
  const double intra_round =
      intra_latency + (intra_rate < inf ? chunk / intra_rate : 0.0);
  const double full_round =
      round_latency + (full_rate > 0.0 ? chunk / full_rate : 0.0);
  if (!(full_round > 0.0)) return 1.0;
  return std::clamp(intra_round / full_round, 0.0, 1.0);
}

// Records one completed round [start, end], split interconnect/network by
// `intra_frac`, chained onto the comm stream's edge chain.
void record_round(CollectiveContext& ctx, const std::vector<hw::GpuRef>& ring,
                  double start, double end, double intra_frac) {
  obs::CausalLog& log = *ctx.causal;
  const int machine = ring[0].machine;
  const int gpu = ring[0].local;
  const int iter = log.iteration();
  const double split = start + intra_frac * (end - start);
  int prev = log.comm_chain();
  if (split > start || intra_frac >= 1.0)
    prev = log.add_activity(obs::Category::kInterconnect, "ring_round",
                            machine, gpu, iter, start, split, prev);
  if (end > split)
    prev = log.add_activity(obs::Category::kNetwork, "ring_round", machine,
                            gpu, iter, split, end, prev);
  log.set_comm_chain(prev);
}

}  // namespace

sim::Task<void> ring_allreduce_over(CollectiveContext& ctx,
                                    std::vector<hw::GpuRef> ring, double bytes,
                                    double round_latency, RingPacing pacing) {
  if (bytes < 0.0) throw std::invalid_argument("ring_allreduce: negative bytes");
  const std::size_t k = ring.size();
  if (k == 0) throw std::invalid_argument("ring_allreduce: empty ring");
  if (ctx.metrics != nullptr) {
    ctx.metrics->counter("coll/ring/collectives").increment();
    ctx.metrics->counter("coll/ring/bytes_sent").add(bytes);
  }
  if (k == 1) {
    const double start = ctx.sim.now();
    co_await ctx.sim.delay(round_latency);
    if (ctx.causal != nullptr)
      record_round(ctx, ring, start, ctx.sim.now(), 1.0);
    co_return;
  }

  // Reduce-scatter then all-gather: 2(k-1) rounds, each moving one
  // bytes/k chunk along every ring edge concurrently. Rounds are
  // barrier-synchronized (the standard round-synchronous approximation);
  // the slowest edge paces every round.
  const double chunk = bytes / static_cast<double>(k);
  const int rounds = 2 * (static_cast<int>(k) - 1);
  const double intra_frac =
      ctx.causal != nullptr ? intra_round_fraction(ctx, ring, chunk, round_latency)
                            : 1.0;

  if (pacing == RingPacing::kAggregated) {
    // One aggregate flow per ring edge (see RingPacing). The round
    // latencies serialize up front; the edge flows then contend in the
    // FlowNetwork like any other traffic, so shared-bottleneck behaviour
    // is preserved — only the per-round barriers are collapsed. The
    // causal edge and the step-latency histogram record per-round
    // averages so downstream attribution keeps its units.
    const double start = ctx.sim.now();
    co_await ctx.sim.delay(rounds * round_latency);
    std::vector<sim::Task<void>> flows;
    flows.reserve(k);
    for (std::size_t i = 0; i < k; ++i) {
      auto path = ctx.cluster.path(ring[i], ring[(i + 1) % k]);
      flows.push_back(ctx.net.transfer(rounds * chunk, std::move(path)));
    }
    co_await sim::join_all(ctx.sim, std::move(flows));
    if (ctx.causal != nullptr)
      record_round(ctx, ring, start, ctx.sim.now(), intra_frac);
    if (ctx.metrics != nullptr) {
      ctx.metrics->counter("coll/ring/rounds").add(rounds);
      ctx.metrics->histogram("coll/ring/step_latency_s")
          .observe((ctx.sim.now() - start) / rounds);
    }
    co_return;
  }

  for (int r = 0; r < rounds; ++r) {
    const double round_start = ctx.sim.now();
    co_await ctx.sim.delay(round_latency);
    std::vector<sim::Task<void>> flows;
    flows.reserve(k);
    for (std::size_t i = 0; i < k; ++i) {
      auto path = ctx.cluster.path(ring[i], ring[(i + 1) % k]);
      flows.push_back(ctx.net.transfer(chunk, std::move(path)));
    }
    co_await sim::join_all(ctx.sim, std::move(flows));
    if (ctx.causal != nullptr)
      record_round(ctx, ring, round_start, ctx.sim.now(), intra_frac);
    if (ctx.metrics != nullptr) {
      ctx.metrics->counter("coll/ring/rounds").increment();
      ctx.metrics->histogram("coll/ring/step_latency_s")
          .observe(ctx.sim.now() - round_start);
    }
  }
}

sim::Task<void> ring_allreduce(CollectiveContext& ctx, double bytes) {
  return ring_allreduce_over(ctx, ctx.cluster.ring_order(), bytes,
                             ctx.round_latency());
}

double ring_allreduce_analytic(double bytes, int k, double bottleneck_bw,
                               double round_latency) {
  if (k < 1) throw std::invalid_argument("ring_allreduce_analytic: k < 1");
  if (k == 1) return round_latency;
  if (bottleneck_bw <= 0.0)
    throw std::invalid_argument("ring_allreduce_analytic: bw <= 0");
  double rounds = 2.0 * (k - 1);
  return rounds * (round_latency + bytes / (static_cast<double>(k) * bottleneck_bw));
}

}  // namespace stash::coll
