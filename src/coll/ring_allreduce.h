// Ring all-reduce (reduce-scatter + all-gather), the collective used by
// NCCL/PyTorch DDP and therefore by every experiment in the paper.
#pragma once

#include <vector>

#include "coll/collective.h"
#include "sim/task.h"

namespace stash::coll {

// All-reduces `bytes` of gradients across every GPU in the cluster, using
// the cluster's NVLink-optimized ring order. Completes when the all-gather
// phase drains. k=1 degenerates to a launch latency.
sim::Task<void> ring_allreduce(CollectiveContext& ctx, double bytes);

// How the 2(k-1) ring rounds are paced in simulation.
//
// kPerRound simulates every round lock-step: one bytes/k chunk per ring
// edge, barrier, repeat. This is the exact round-synchronous schedule and
// the default everywhere the paper's measured configurations run.
//
// kAggregated collapses the rounds into one aggregate flow per ring edge
// carrying 2(k-1)*bytes/k, after a single up-front charge of the
// serialized round latencies. Under contention that is static for the
// duration of the collective the two pacings complete at the same
// simulated time: lock-step costs sum_r (L + chunk/rate) = R*L +
// R*chunk/rate, aggregation costs R*L + (R*chunk)/rate. What aggregation
// gives up is per-round re-pacing when background traffic changes
// mid-collective (it integrates through the change instead); what it buys
// is O(k) simulated transfers per collective instead of O(k^2), which is
// what makes the 1024-machine leader ring tractable.
enum class RingPacing {
  kPerRound,
  kAggregated,
};

// Ring all-reduce over an explicit participant ring (used by the
// hierarchical collective and by tests).
sim::Task<void> ring_allreduce_over(CollectiveContext& ctx,
                                    std::vector<hw::GpuRef> ring, double bytes,
                                    double round_latency,
                                    RingPacing pacing = RingPacing::kPerRound);

// Closed-form cost used by the §VI analytic model and by tests:
//   2(k-1) * (round_latency + bytes / (k * bottleneck_bw)).
double ring_allreduce_analytic(double bytes, int k, double bottleneck_bw,
                               double round_latency);

}  // namespace stash::coll
