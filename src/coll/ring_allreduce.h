// Ring all-reduce (reduce-scatter + all-gather), the collective used by
// NCCL/PyTorch DDP and therefore by every experiment in the paper.
#pragma once

#include <vector>

#include "coll/collective.h"
#include "sim/task.h"

namespace stash::coll {

// All-reduces `bytes` of gradients across every GPU in the cluster, using
// the cluster's NVLink-optimized ring order. Completes when the all-gather
// phase drains. k=1 degenerates to a launch latency.
sim::Task<void> ring_allreduce(CollectiveContext& ctx, double bytes);

// Ring all-reduce over an explicit participant ring (used by the
// hierarchical collective and by tests).
sim::Task<void> ring_allreduce_over(CollectiveContext& ctx,
                                    std::vector<hw::GpuRef> ring, double bytes,
                                    double round_latency);

// Closed-form cost used by the §VI analytic model and by tests:
//   2(k-1) * (round_latency + bytes / (k * bottleneck_bw)).
double ring_allreduce_analytic(double bytes, int k, double bottleneck_bw,
                               double round_latency);

}  // namespace stash::coll
