// Alternative gradient-exchange strategies.
//
// The paper restricts its experiments to ring all-reduce, noting that
// parameter-server exchange "is strictly less performant" (§IV) — these
// implementations let the benches demonstrate that claim on the simulated
// fabric, plus a hierarchical collective as an extension ablation.
#pragma once

#include <vector>

#include "coll/collective.h"
#include "sim/task.h"

namespace stash::coll {

// Binary-tree all-reduce: reduce up a tree then broadcast down,
// 2*ceil(log2 k) rounds each moving the full payload per edge.
sim::Task<void> tree_allreduce(CollectiveContext& ctx, double bytes);

// Centralized parameter server hosted on machine 0's CPU. The server's
// CPU-side gradient reduction and parameter serving are memory-bandwidth
// bound; PsServer models that as ingest/egress links every push/pull
// crosses. Create one per cluster and reuse it across iterations.
struct PsServer {
  hw::Link* ingest = nullptr;  // aggregate reduction throughput
  hw::Link* egress = nullptr;  // aggregate serving throughput
  // ~11 GB/s: single-socket streaming reduce bandwidth.
  static PsServer create(hw::FlowNetwork& net, double bw = 11e9);
};

// Every worker pushes its full gradient, then pulls the updated
// parameters. All pushes (and all pulls) are concurrent — the server's
// links and host bridge are the hot spot.
sim::Task<void> parameter_server_exchange(CollectiveContext& ctx, PsServer server,
                                          double bytes);

// Hierarchical all-reduce: ring all-reduce inside each machine, ring
// all-reduce across machine leaders, then an intra-machine broadcast. For
// multi-machine clusters this sends only one payload per machine across
// the slow NIC instead of k/M.
sim::Task<void> hierarchical_allreduce(CollectiveContext& ctx, double bytes);

// Hierarchical all-reduce over an explicit participant set (the trainer's
// surviving workers after a shrink, or a subset ring in tests). Groups the
// participants by machine, rings each group over the NVLink tier, rings the
// group leaders over the NIC tier, then broadcasts back down the intra
// rings. Falls back to a flat intra-machine ring when only one machine is
// represented. This is what makes 1024-machine clusters tractable: the
// flat ring's 2(k-1) global rounds become 2(M-1) machine rounds plus
// 2(g-1) NVLink rounds per machine.
sim::Task<void> hierarchical_allreduce_over(CollectiveContext& ctx,
                                            std::vector<hw::GpuRef> gpus,
                                            double bytes);

// Closed-form cost of the hierarchical schedule for a homogeneous
// machines x gpus_per_machine cluster (the §VI-style analytic companion to
// ring_allreduce_analytic):
//   phase 1: 2(g-1) * (intra_latency + bytes / (g * intra_bw))
//   phase 2: 2(M-1) * (inter_latency + bytes / (M * inter_bw))
//   phase 3: intra_latency + bytes / intra_bw   (pipelined broadcast)
double hierarchical_allreduce_analytic(double bytes, int machines,
                                       int gpus_per_machine, double intra_bw,
                                       double inter_bw, double intra_latency,
                                       double inter_latency);

}  // namespace stash::coll
