// Alternative gradient-exchange strategies.
//
// The paper restricts its experiments to ring all-reduce, noting that
// parameter-server exchange "is strictly less performant" (§IV) — these
// implementations let the benches demonstrate that claim on the simulated
// fabric, plus a hierarchical collective as an extension ablation.
#pragma once

#include "coll/collective.h"
#include "sim/task.h"

namespace stash::coll {

// Binary-tree all-reduce: reduce up a tree then broadcast down,
// 2*ceil(log2 k) rounds each moving the full payload per edge.
sim::Task<void> tree_allreduce(CollectiveContext& ctx, double bytes);

// Centralized parameter server hosted on machine 0's CPU. The server's
// CPU-side gradient reduction and parameter serving are memory-bandwidth
// bound; PsServer models that as ingest/egress links every push/pull
// crosses. Create one per cluster and reuse it across iterations.
struct PsServer {
  hw::Link* ingest = nullptr;  // aggregate reduction throughput
  hw::Link* egress = nullptr;  // aggregate serving throughput
  // ~11 GB/s: single-socket streaming reduce bandwidth.
  static PsServer create(hw::FlowNetwork& net, double bw = 11e9);
};

// Every worker pushes its full gradient, then pulls the updated
// parameters. All pushes (and all pulls) are concurrent — the server's
// links and host bridge are the hot spot.
sim::Task<void> parameter_server_exchange(CollectiveContext& ctx, PsServer server,
                                          double bytes);

// Hierarchical all-reduce: ring all-reduce inside each machine, ring
// all-reduce across machine leaders, then an intra-machine broadcast. For
// multi-machine clusters this sends only one payload per machine across
// the slow NIC instead of k/M.
sim::Task<void> hierarchical_allreduce(CollectiveContext& ctx, double bytes);

}  // namespace stash::coll
