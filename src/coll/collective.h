// Collective communication over the simulated fabric.
//
// All gradient exchange in the paper's setup is synchronous data-parallel
// collective all-reduce (PyTorch DDP + NCCL). The simulated collectives
// move real flows over the Cluster's link paths, so contention with other
// traffic (H2D copies, other collectives) emerges from the FlowNetwork
// rather than being assumed.
#pragma once

#include "hw/flow_network.h"
#include "hw/topology.h"
#include "obs/causal_log.h"
#include "sim/simulator.h"
#include "telemetry/metrics.h"

namespace stash::coll {

// Which all-reduce the trainer's gradient exchange uses. kAuto picks the
// flat NVLink-optimized ring for small clusters (the paper's measured
// configuration) and switches to the hierarchical collective once the ring
// would cross enough machine boundaries that its 2(k-1) global rounds
// dominate — a flat ring over 1024 machines x 8 GPUs is ~16k rounds per
// all-reduce, the hierarchical one ~2k machine-rounds plus 14 NVLink-rounds.
enum class CollectiveAlgo {
  kAuto,
  kRing,
  kHierarchical,
};

struct CollectiveConfig {
  // Wire-level cost per ring round (protocol hop latency).
  double intra_round_latency = 2e-6;   // all hops inside one machine
  double inter_round_latency = 20e-6;  // ring crosses a network link

  // Per-collective launch overhead paid synchronously on the GPU's compute
  // stream (bucket packing, kernel launch, framework bookkeeping). This is
  // the paper's §VI per-layer "tau": with per-tensor flushes a model with L
  // layers pays tau*L per iteration regardless of transfer overlap, which
  // is why deep models stall more on fast interconnects (Fig 16a).
  double launch_blocking_latency = 1e-4;

  // Fraction of each collective's transfer that overlaps with backward
  // compute. Overlap is imperfect in practice — NCCL kernels occupy SMs
  // and PCIe copies steal memory bandwidth from compute — so the remaining
  // (1 - overlap_fraction) is charged synchronously on the compute stream.
  // 1.0 models ideal DDP overlap; 0.0 fully serial exchange.
  double overlap_fraction = 0.5;

  // Gradient-exchange algorithm selection (see CollectiveAlgo). The kAuto
  // threshold is the machine count at which the hierarchical schedule takes
  // over; 16 keeps every configuration the paper measured (<= 4 machines)
  // on the flat ring, so their outputs are byte-identical to before. Kept
  // after the latency/overlap fields so existing aggregate initializers
  // are unaffected.
  CollectiveAlgo algorithm = CollectiveAlgo::kAuto;
  int hierarchical_auto_machines = 16;
};

// Bundles the simulation handles every collective needs.
struct CollectiveContext {
  sim::Simulator& sim;
  hw::FlowNetwork& net;
  hw::Cluster& cluster;
  CollectiveConfig config{};
  // Optional metrics sink (not owned; must outlive every collective). When
  // set, collectives record per-call bytes, counts and per-round latencies
  // under "coll/...".
  telemetry::MetricsRegistry* metrics = nullptr;
  // Optional causal-edge sink (not owned). When set, every collective round
  // records an activity edge — interconnect for the intra-machine share,
  // network for the cross-machine share — chained through the log's
  // comm-chain tail so the critical-path walker can traverse the stream.
  obs::CausalLog* causal = nullptr;

  double round_latency() const {
    return cluster.multi_machine() ? config.inter_round_latency
                                   : config.intra_round_latency;
  }
};

}  // namespace stash::coll
