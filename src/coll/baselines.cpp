#include "coll/baselines.h"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "coll/ring_allreduce.h"
#include "sim/sync.h"

namespace stash::coll {

sim::Task<void> tree_allreduce(CollectiveContext& ctx, double bytes) {
  auto gpus = ctx.cluster.ring_order();
  const std::size_t k = gpus.size();
  const double latency = ctx.round_latency();
  if (k <= 1) {
    co_await ctx.sim.delay(latency);
    co_return;
  }

  // Reduce phase: at stride s, nodes at odd multiples of s send their
  // partial sums to the even neighbour; broadcast mirrors it downward.
  auto edge_transfer = [&](std::size_t from, std::size_t to) {
    return ctx.net.transfer(bytes, ctx.cluster.path(gpus[from], gpus[to]));
  };

  // Upward: edges within a level run concurrently; levels are sequential.
  for (std::size_t stride = 1; stride < k; stride *= 2) {
    std::vector<sim::Task<void>> level;
    for (std::size_t i = 0; i + stride < k; i += 2 * stride)
      level.push_back(edge_transfer(i + stride, i));
    co_await ctx.sim.delay(latency);
    co_await sim::join_all(ctx.sim, std::move(level));
  }
  // Downward broadcast: same levels reversed, direction flipped.
  std::size_t top = 1;
  while (top * 2 < k) top *= 2;
  for (std::size_t stride = top; stride >= 1; stride /= 2) {
    std::vector<sim::Task<void>> level;
    for (std::size_t i = 0; i + stride < k; i += 2 * stride)
      level.push_back(edge_transfer(i, i + stride));
    co_await ctx.sim.delay(latency);
    co_await sim::join_all(ctx.sim, std::move(level));
    if (stride == 1) break;
  }
}

PsServer PsServer::create(hw::FlowNetwork& net, double bw) {
  return PsServer{net.add_link("ps.ingest", bw), net.add_link("ps.egress", bw)};
}

namespace {
sim::Task<void> ps_exchange_impl(CollectiveContext& ctx, PsServer server,
                                 double bytes);
}  // namespace

sim::Task<void> parameter_server_exchange(CollectiveContext& ctx, PsServer server,
                                          double bytes) {
  // Validate eagerly: a lazy coroutine would defer the throw to first await.
  if (server.ingest == nullptr || server.egress == nullptr)
    throw std::invalid_argument("parameter_server_exchange: PsServer not created");
  return ps_exchange_impl(ctx, server, bytes);
}

namespace {
sim::Task<void> ps_exchange_impl(CollectiveContext& ctx, PsServer server,
                                 double bytes) {
  auto gpus = ctx.cluster.ring_order();
  const double latency = ctx.round_latency();
  if (gpus.size() <= 1) {
    co_await ctx.sim.delay(latency);
    co_return;
  }

  // The server lives in machine 0's host memory. A worker on machine 0
  // pushes over its PCIe lane + bridge; remote workers additionally cross
  // both NICs and the fabric. Every push funnels into the server's
  // reduction bandwidth and every pull out of its serving bandwidth.
  auto push_path = [&](hw::GpuRef w) {
    const hw::Machine& m = ctx.cluster.machine(w.machine);
    if (w.machine == 0)
      return std::vector<hw::Link*>{m.pcie_up(w.local), m.host_bridge(),
                                    server.ingest};
    const hw::Machine& host = ctx.cluster.machine(0);
    return std::vector<hw::Link*>{m.pcie_up(w.local), m.host_bridge(), m.nic_tx(),
                                  ctx.cluster.fabric(), host.nic_rx(),
                                  host.host_bridge(), server.ingest};
  };
  auto pull_path = [&](hw::GpuRef w) {
    const hw::Machine& m = ctx.cluster.machine(w.machine);
    if (w.machine == 0)
      return std::vector<hw::Link*>{server.egress, m.host_bridge(),
                                    m.pcie_down(w.local)};
    const hw::Machine& host = ctx.cluster.machine(0);
    return std::vector<hw::Link*>{server.egress, host.host_bridge(), host.nic_tx(),
                                  ctx.cluster.fabric(), m.nic_rx(), m.host_bridge(),
                                  m.pcie_down(w.local)};
  };

  co_await ctx.sim.delay(latency);
  std::vector<sim::Task<void>> pushes;
  for (auto w : gpus) pushes.push_back(ctx.net.transfer(bytes, push_path(w)));
  co_await sim::join_all(ctx.sim, std::move(pushes));

  co_await ctx.sim.delay(latency);
  std::vector<sim::Task<void>> pulls;
  for (auto w : gpus) pulls.push_back(ctx.net.transfer(bytes, pull_path(w)));
  co_await sim::join_all(ctx.sim, std::move(pulls));
}
}  // namespace

sim::Task<void> hierarchical_allreduce(CollectiveContext& ctx, double bytes) {
  const auto machines = ctx.cluster.num_machines();
  if (machines == 1) {
    co_await ring_allreduce(ctx, bytes);
    co_return;
  }

  // Phase 1: independent intra-machine rings (concurrent across machines).
  std::vector<sim::Task<void>> intra;
  for (std::size_t m = 0; m < machines; ++m) {
    std::vector<hw::GpuRef> ring;
    for (int g : ctx.cluster.machine(static_cast<int>(m)).ring_order())
      ring.push_back(hw::GpuRef{static_cast<int>(m), g});
    intra.push_back(ring_allreduce_over(ctx, std::move(ring), bytes,
                                        ctx.config.intra_round_latency));
  }
  co_await sim::join_all(ctx.sim, std::move(intra));

  // Phase 2: leaders exchange across the network.
  std::vector<hw::GpuRef> leaders;
  for (std::size_t m = 0; m < machines; ++m)
    leaders.push_back(hw::GpuRef{static_cast<int>(m), 0});
  co_await ring_allreduce_over(ctx, std::move(leaders), bytes,
                               ctx.config.inter_round_latency);

  // Phase 3: pipelined ring broadcast inside each machine — every ring
  // edge forwards the payload concurrently (the fluid approximation of a
  // chunked pipeline), so the cost is one payload over the slowest edge,
  // not a star fan-out from the leader's PCIe lane.
  std::vector<sim::Task<void>> bcast;
  for (std::size_t m = 0; m < machines; ++m) {
    const hw::Machine& mach = ctx.cluster.machine(static_cast<int>(m));
    const auto& order = mach.ring_order();
    for (std::size_t i = 0; i + 1 < order.size(); ++i)
      bcast.push_back(ctx.net.transfer(
          bytes, ctx.cluster.path(hw::GpuRef{static_cast<int>(m), order[i]},
                                  hw::GpuRef{static_cast<int>(m), order[i + 1]})));
  }
  co_await ctx.sim.delay(ctx.config.intra_round_latency);
  co_await sim::join_all(ctx.sim, std::move(bcast));
}

}  // namespace stash::coll
