#include "coll/baselines.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "coll/ring_allreduce.h"
#include "sim/sync.h"

namespace stash::coll {

sim::Task<void> tree_allreduce(CollectiveContext& ctx, double bytes) {
  auto gpus = ctx.cluster.ring_order();
  const std::size_t k = gpus.size();
  const double latency = ctx.round_latency();
  if (k <= 1) {
    co_await ctx.sim.delay(latency);
    co_return;
  }

  // Reduce phase: at stride s, nodes at odd multiples of s send their
  // partial sums to the even neighbour; broadcast mirrors it downward.
  auto edge_transfer = [&](std::size_t from, std::size_t to) {
    return ctx.net.transfer(bytes, ctx.cluster.path(gpus[from], gpus[to]));
  };

  // Upward: edges within a level run concurrently; levels are sequential.
  for (std::size_t stride = 1; stride < k; stride *= 2) {
    std::vector<sim::Task<void>> level;
    for (std::size_t i = 0; i + stride < k; i += 2 * stride)
      level.push_back(edge_transfer(i + stride, i));
    co_await ctx.sim.delay(latency);
    co_await sim::join_all(ctx.sim, std::move(level));
  }
  // Downward broadcast: same levels reversed, direction flipped.
  std::size_t top = 1;
  while (top * 2 < k) top *= 2;
  for (std::size_t stride = top; stride >= 1; stride /= 2) {
    std::vector<sim::Task<void>> level;
    for (std::size_t i = 0; i + stride < k; i += 2 * stride)
      level.push_back(edge_transfer(i, i + stride));
    co_await ctx.sim.delay(latency);
    co_await sim::join_all(ctx.sim, std::move(level));
    if (stride == 1) break;
  }
}

PsServer PsServer::create(hw::FlowNetwork& net, double bw) {
  return PsServer{net.add_link("ps.ingest", bw), net.add_link("ps.egress", bw)};
}

namespace {
sim::Task<void> ps_exchange_impl(CollectiveContext& ctx, PsServer server,
                                 double bytes);
}  // namespace

sim::Task<void> parameter_server_exchange(CollectiveContext& ctx, PsServer server,
                                          double bytes) {
  // Validate eagerly: a lazy coroutine would defer the throw to first await.
  if (server.ingest == nullptr || server.egress == nullptr)
    throw std::invalid_argument("parameter_server_exchange: PsServer not created");
  return ps_exchange_impl(ctx, server, bytes);
}

namespace {
sim::Task<void> ps_exchange_impl(CollectiveContext& ctx, PsServer server,
                                 double bytes) {
  auto gpus = ctx.cluster.ring_order();
  const double latency = ctx.round_latency();
  if (gpus.size() <= 1) {
    co_await ctx.sim.delay(latency);
    co_return;
  }

  // The server lives in machine 0's host memory. A worker on machine 0
  // pushes over its PCIe lane + bridge; remote workers additionally cross
  // both NICs and the fabric. Every push funnels into the server's
  // reduction bandwidth and every pull out of its serving bandwidth.
  auto push_path = [&](hw::GpuRef w) {
    const hw::Machine& m = ctx.cluster.machine(w.machine);
    if (w.machine == 0)
      return std::vector<hw::Link*>{m.pcie_up(w.local), m.host_bridge(),
                                    server.ingest};
    const hw::Machine& host = ctx.cluster.machine(0);
    return std::vector<hw::Link*>{m.pcie_up(w.local), m.host_bridge(), m.nic_tx(),
                                  ctx.cluster.fabric(), host.nic_rx(),
                                  host.host_bridge(), server.ingest};
  };
  auto pull_path = [&](hw::GpuRef w) {
    const hw::Machine& m = ctx.cluster.machine(w.machine);
    if (w.machine == 0)
      return std::vector<hw::Link*>{server.egress, m.host_bridge(),
                                    m.pcie_down(w.local)};
    const hw::Machine& host = ctx.cluster.machine(0);
    return std::vector<hw::Link*>{server.egress, host.host_bridge(), host.nic_tx(),
                                  ctx.cluster.fabric(), m.nic_rx(), m.host_bridge(),
                                  m.pcie_down(w.local)};
  };

  co_await ctx.sim.delay(latency);
  std::vector<sim::Task<void>> pushes;
  for (auto w : gpus) pushes.push_back(ctx.net.transfer(bytes, push_path(w)));
  co_await sim::join_all(ctx.sim, std::move(pushes));

  co_await ctx.sim.delay(latency);
  std::vector<sim::Task<void>> pulls;
  for (auto w : gpus) pulls.push_back(ctx.net.transfer(bytes, pull_path(w)));
  co_await sim::join_all(ctx.sim, std::move(pulls));
}
}  // namespace

sim::Task<void> hierarchical_allreduce(CollectiveContext& ctx, double bytes) {
  return hierarchical_allreduce_over(ctx, ctx.cluster.ring_order(), bytes);
}

namespace {
sim::Task<void> hierarchical_impl(CollectiveContext& ctx,
                                  std::vector<std::vector<hw::GpuRef>> groups,
                                  double bytes);
}  // namespace

sim::Task<void> hierarchical_allreduce_over(CollectiveContext& ctx,
                                            std::vector<hw::GpuRef> gpus,
                                            double bytes) {
  // Validate and group eagerly: a lazy coroutine would defer throws to the
  // first await.
  if (bytes < 0.0)
    throw std::invalid_argument("hierarchical_allreduce: negative bytes");
  if (gpus.empty())
    throw std::invalid_argument("hierarchical_allreduce: empty participant set");

  // Group participants by machine, each group ordered along its machine's
  // NVLink-optimized ring; machine order follows first appearance so the
  // schedule is a pure function of the participant list.
  std::vector<std::vector<hw::GpuRef>> groups;
  for (const hw::GpuRef& g : gpus) {
    auto it = std::find_if(groups.begin(), groups.end(), [&](const auto& grp) {
      return grp.front().machine == g.machine;
    });
    if (it == groups.end())
      groups.push_back({g});
    else
      it->push_back(g);
  }
  for (auto& grp : groups) {
    const auto& order = ctx.cluster.machine(grp.front().machine).ring_order();
    std::sort(grp.begin(), grp.end(), [&](const hw::GpuRef& a, const hw::GpuRef& b) {
      auto pos = [&](int local) {
        return std::find(order.begin(), order.end(), local) - order.begin();
      };
      return pos(a.local) < pos(b.local);
    });
  }
  if (groups.size() == 1)
    return ring_allreduce_over(ctx, std::move(groups.front()), bytes,
                               ctx.config.intra_round_latency);
  return hierarchical_impl(ctx, std::move(groups), bytes);
}

namespace {
sim::Task<void> hierarchical_impl(CollectiveContext& ctx,
                                  std::vector<std::vector<hw::GpuRef>> groups,
                                  double bytes) {
  if (ctx.metrics != nullptr) {
    ctx.metrics->counter("coll/hier/collectives").increment();
    ctx.metrics->counter("coll/hier/bytes_sent").add(bytes);
  }

  // Phases 1 and 2 use aggregated ring pacing: at hierarchical scale the
  // leader ring alone is 2(M-1) rounds x M edges — simulating every round
  // of a 1024-machine ring lock-step is ~2M flow transfers per collective
  // for a schedule whose rounds are identical by construction. Aggregation
  // is completion-time-equivalent under static contention (see RingPacing)
  // and keeps the simulated transfer count linear in the ring size.

  // Phase 1: independent intra-machine rings (concurrent across machines).
  std::vector<sim::Task<void>> intra;
  for (const auto& grp : groups)
    intra.push_back(ring_allreduce_over(ctx, grp, bytes,
                                        ctx.config.intra_round_latency,
                                        RingPacing::kAggregated));
  co_await sim::join_all(ctx.sim, std::move(intra));

  // Phase 2: group leaders exchange across the network.
  std::vector<hw::GpuRef> leaders;
  leaders.reserve(groups.size());
  for (const auto& grp : groups) leaders.push_back(grp.front());
  co_await ring_allreduce_over(ctx, std::move(leaders), bytes,
                               ctx.config.inter_round_latency,
                               RingPacing::kAggregated);

  // Phase 3: pipelined ring broadcast inside each machine — every ring
  // edge forwards the payload concurrently (the fluid approximation of a
  // chunked pipeline), so the cost is one payload over the slowest edge,
  // not a star fan-out from the leader's PCIe lane.
  std::vector<sim::Task<void>> bcast;
  for (const auto& grp : groups)
    for (std::size_t i = 0; i + 1 < grp.size(); ++i)
      bcast.push_back(
          ctx.net.transfer(bytes, ctx.cluster.path(grp[i], grp[i + 1])));
  co_await ctx.sim.delay(ctx.config.intra_round_latency);
  co_await sim::join_all(ctx.sim, std::move(bcast));
}
}  // namespace

double hierarchical_allreduce_analytic(double bytes, int machines,
                                       int gpus_per_machine, double intra_bw,
                                       double inter_bw, double intra_latency,
                                       double inter_latency) {
  if (machines < 1 || gpus_per_machine < 1)
    throw std::invalid_argument("hierarchical_allreduce_analytic: bad shape");
  if (machines == 1)
    return ring_allreduce_analytic(bytes, gpus_per_machine, intra_bw,
                                   intra_latency);
  double total =
      ring_allreduce_analytic(bytes, machines, inter_bw, inter_latency);
  if (gpus_per_machine > 1) {
    total += ring_allreduce_analytic(bytes, gpus_per_machine, intra_bw,
                                     intra_latency);
    total += intra_latency + bytes / intra_bw;
  }
  return total;
}

}  // namespace stash::coll
