// FIFO communication stream.
//
// NCCL executes collectives launched on one communicator strictly in order.
// CommStream reproduces that: operations enqueued while earlier ones are in
// flight wait their turn. The DDP engine enqueues one all-reduce per
// gradient bucket as the backward pass produces them; the stream serializes
// the transfers while the backward compute continues — that's the
// compute/communication overlap of Li et al. (PyTorch Distributed).
#pragma once

#include <functional>
#include <memory>

#include "sim/simulator.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace stash::coll {

class CommStream {
 public:
  explicit CommStream(sim::Simulator& sim) : sim_(sim) {}
  CommStream(const CommStream&) = delete;
  CommStream& operator=(const CommStream&) = delete;

  using Op = std::function<sim::Task<void>()>;

  // Returns a task that runs `op` after every previously enqueued operation
  // has completed. Ordering is fixed at enqueue time; the caller must spawn
  // or await the returned task for the stream to make progress.
  sim::Task<void> enqueue(Op op) {
    auto prev = tail_;
    auto done = std::make_shared<sim::Event>(sim_);
    tail_ = done;
    ++enqueued_;
    return run_in_order(std::move(prev), std::move(done), std::move(op));
  }

  std::size_t enqueued() const { return enqueued_; }

 private:
  sim::Task<void> run_in_order(std::shared_ptr<sim::Event> prev,
                               std::shared_ptr<sim::Event> done, Op op) {
    if (prev) co_await prev->wait();
    co_await op();
    done->trigger();
  }

  sim::Simulator& sim_;
  std::shared_ptr<sim::Event> tail_;
  std::size_t enqueued_ = 0;
};

}  // namespace stash::coll
