#include "exec/exec_context.h"

namespace stash::exec {

SimCache& process_cache() {
  static SimCache cache;
  return cache;
}

}  // namespace stash::exec
