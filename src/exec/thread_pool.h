// Fixed thread pool + fork-join helpers for the scenario-execution layer.
//
// The pool is deliberately simple: N worker threads draining one shared
// queue. What makes it safe for this codebase's nested fan-outs (recommend
// parallelizes candidates, each candidate's profile parallelizes its five
// steps) is the caller-helps protocol in parallel_for: the thread that
// opens a parallel region executes items from its own region while it
// waits, so a region always makes progress even when every pool worker is
// busy with outer-level work. Nesting therefore cannot deadlock — the
// worst case is serial execution on the calling thread.
//
// Determinism contract: parallel_for only changes WHEN item i runs, never
// what it computes or where its result lands (results are written by index,
// merged by key order — never completion order). If several items throw,
// the exception from the lowest index is rethrown, matching what a serial
// loop would have surfaced first.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace stash::exec {

// Hardware concurrency with a sane floor (hardware_concurrency may be 0).
inline int default_jobs() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

class ThreadPool {
 public:
  // Spawns `threads` workers. 0 is allowed and makes post() run inline,
  // which keeps "jobs=1 means serial" a property of the pool rather than a
  // special case at every call site.
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  // Enqueues fire-and-forget work (parallel_for's helper tasks). With zero
  // workers the task runs inline on the calling thread.
  void post(std::function<void()> task);

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

namespace detail {

// Shared state of one parallel region: an atomic item cursor plus
// completion accounting. Helpers and the caller drain the same cursor.
struct ForState {
  std::function<void(std::size_t)> body;
  std::size_t n = 0;
  std::atomic<std::size_t> next{0};
  std::mutex mu;
  std::condition_variable done_cv;
  std::size_t completed = 0;
  std::size_t first_error_index = std::numeric_limits<std::size_t>::max();
  std::exception_ptr error;

  // Runs items until the cursor is exhausted. Returns when this thread can
  // claim no more work (other threads may still be finishing theirs).
  void drain();
  // Blocks until every item has completed, then rethrows the lowest-index
  // exception if any item failed.
  void wait_and_rethrow();
};

}  // namespace detail

// Runs body(0..n-1), fanning out across `pool` (nullable). The calling
// thread always participates; `pool == nullptr` or a zero-thread pool
// degrades to a plain serial loop. Blocks until all items complete.
template <typename Body>
void parallel_for(ThreadPool* pool, std::size_t n, Body&& body) {
  if (n == 0) return;
  if (pool == nullptr || pool->size() == 0 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  auto state = std::make_shared<detail::ForState>();
  state->body = std::function<void(std::size_t)>(std::forward<Body>(body));
  state->n = n;
  std::size_t helpers = std::min<std::size_t>(pool->size(), n - 1);
  for (std::size_t h = 0; h < helpers; ++h)
    pool->post([state] { state->drain(); });
  state->drain();
  state->wait_and_rethrow();
}

}  // namespace stash::exec
