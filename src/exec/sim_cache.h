// Content-addressed, thread-safe, bounded memo of simulation results.
//
// Every figure bench, the five profiler steps, recommend's candidate grid,
// the batch sweeps and every stash_serve query ultimately call the same
// pure function: (ClusterSpec, TrainConfig, step, seed) -> ddl::TrainResult.
// The SimCache makes that function execute exactly once per distinct
// scenario process-wide, no matter how many layers ask for it or how many
// threads ask concurrently.
//
// Keys are content-addressed (exec/scenario_key.h): a KeyBuilder folds
// every semantically significant field into a canonical byte string and its
// FNV-1a 64-bit hash; the map compares the canonical string on collision,
// so a 64-bit collision can never serve the wrong result.
//
// Exactly-once under concurrency, bounded residency: the slot mechanism
// (first requester computes, later requesters block on the slot) now lives
// in the generic exec::LruMemo, which also bounds the cache — a
// SimCacheConfig caps entries and bytes, eviction is strict LRU over
// completed scenarios, a hit refreshes recency, and an evicted-then-
// re-requested key counts as a miss because the simulation really re-runs.
// A scenario that throws (ModelDoesNotFit is routine) memoizes its
// exception in memory only — deterministic functions fail deterministically,
// so re-running could only waste time — and is never persisted.
//
// Persistence: with `persist_dir` set, every completed TrainResult is also
// written to disk as a stash.sim_result/1 document named by the key hash
// (temp+fsync+rename, the archive's crash-safety discipline), and a miss
// consults the directory before simulating. This is what lets a restarted
// stash_serve daemon answer a previously seen profile query without running
// a single simulation.
//
// What must NOT go through the cache: runs with attached telemetry sinks
// (trace/metrics) or armed fault injectors. Their value is the side
// effects, which a cache hit would silently skip. scenario_key() callers
// gate on that; SimCache itself is policy-free.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "ddl/train_config.h"
#include "dnn/dataset.h"
#include "dnn/model.h"
#include "exec/lru_memo.h"
#include "exec/scenario_key.h"
#include "stash/cluster_spec.h"

namespace stash::exec {

// Canonical key of one simulated training scenario. `seed` namespaces runs
// that would otherwise collide (e.g. spot-replay re-draws); the profiler's
// deterministic runs all use seed 0. Pointer-valued TrainConfig fields
// (trace, metrics, fault_tolerance.faults) are deliberately NOT part of the
// key — runs carrying them must bypass the cache entirely (see cacheable()).
ScenarioKey scenario_key(const dnn::Model& model, const dnn::Dataset& dataset,
                         const profiler::ClusterSpec& spec, int step,
                         const ddl::TrainConfig& cfg, std::uint64_t seed = 0);

// True when a run of `cfg` is a pure function of the key: no telemetry
// sinks to populate and no live fault state to consult.
bool cacheable(const ddl::TrainConfig& cfg);

// TrainResult <-> stash.sim_result/1 JSON, the persistence format (and a
// handy deterministic serialization for tests). from_json returns nullopt
// on any structural mismatch instead of throwing — a corrupt or
// foreign-schema cache file is simply a miss.
std::string train_result_to_json(const ddl::TrainResult& r);
std::optional<ddl::TrainResult> train_result_from_json(const std::string& json);

struct SimCacheConfig {
  std::size_t max_entries = 0;  // completed scenarios kept in memory; 0 = all
  std::size_t max_bytes = 0;    // approximate in-memory bytes cap; 0 = none
  std::string persist_dir;      // on-disk result store; empty = none
};

class SimCache {
 public:
  explicit SimCache(SimCacheConfig config = {});
  SimCache(const SimCache&) = delete;
  SimCache& operator=(const SimCache&) = delete;

  // Returns the memoized result for `key`, running `fn` exactly once among
  // concurrent callers to produce it. Lookup order: in-memory slot, then
  // the persist directory (a disk hit repopulates memory without running
  // `fn`), then `fn`. If `fn` throws, the exception is memoized in memory
  // and rethrown to every current and future caller of the key.
  ddl::TrainResult get_or_run(const ScenarioKey& key,
                              const std::function<ddl::TrainResult()>& fn);

  // Peek without computing; nullopt when absent, in flight, or memoized as
  // an error. Returns a copy — entries can be evicted at any moment, so
  // there is no stable interior pointer to hand out.
  std::optional<ddl::TrainResult> find(const ScenarioKey& key) const;

  const SimCacheConfig& config() const { return config_; }

  std::size_t size() const { return memo_.size(); }
  std::size_t bytes() const { return memo_.bytes(); }
  // Counter contract (pinned by tests): a hit is a request served from a
  // live in-memory slot — completed (refreshes LRU recency) or in-flight
  // (also counted in `coalesced`). A miss is a request that had to install
  // a fresh slot; an evicted-then-re-requested key is therefore a miss, and
  // hits+misses always equals total get_or_run calls. `disk_hits` counts
  // the misses that were answered from the persist directory instead of a
  // simulation.
  std::uint64_t hits() const { return memo_.hits(); }
  std::uint64_t misses() const { return memo_.misses(); }
  std::uint64_t coalesced() const { return memo_.coalesced(); }
  std::uint64_t evictions() const { return memo_.evictions(); }
  std::uint64_t disk_hits() const { return disk_hits_.load(); }

 private:
  std::optional<ddl::TrainResult> load_persisted(const ScenarioKey& key) const;
  void persist(const ScenarioKey& key, const ddl::TrainResult& result) const;
  std::string persist_path(const ScenarioKey& key) const;

  SimCacheConfig config_;
  LruMemo<ddl::TrainResult> memo_;
  std::atomic<std::uint64_t> disk_hits_{0};
};

}  // namespace stash::exec
