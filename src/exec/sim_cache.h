// Content-addressed, thread-safe memo of simulation results.
//
// Every figure bench, the five profiler steps, recommend's candidate grid
// and the batch sweeps ultimately call the same pure function: (ClusterSpec,
// TrainConfig, step, seed) -> ddl::TrainResult. The SimCache makes that
// function execute exactly once per distinct scenario process-wide, no
// matter how many layers ask for it or how many threads ask concurrently.
//
// Keys are content-addressed: a KeyBuilder folds every semantically
// significant field (tagged, with shortest-round-trip double encoding so
// 0.1 and 0.1000...1 never alias) into a canonical byte string and its
// FNV-1a 64-bit hash. The map is keyed by the hash but compares the
// canonical string on collision, so a 64-bit collision can never serve the
// wrong result.
//
// Exactly-once under concurrency: the first requester of a key installs an
// in-flight slot and computes outside the lock; later requesters block on
// the slot's condition variable. A scenario that throws (ModelDoesNotFit
// is routine) memoizes its exception — deterministic functions fail
// deterministically, so re-running could only waste time.
//
// What must NOT go through the cache: runs with attached telemetry sinks
// (trace/metrics) or armed fault injectors. Their value is the side
// effects, which a cache hit would silently skip. scenario_key() callers
// gate on that; SimCache itself is policy-free.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "ddl/train_config.h"
#include "dnn/dataset.h"
#include "dnn/model.h"
#include "stash/cluster_spec.h"

namespace stash::exec {

// Incremental FNV-1a over a tagged canonical encoding. Field order is part
// of the content; every add() also appends to the canonical string used to
// disambiguate hash collisions.
class KeyBuilder {
 public:
  static constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
  static constexpr std::uint64_t kFnvPrime = 1099511628211ull;

  KeyBuilder& add(const std::string& tag, const std::string& v);
  KeyBuilder& add(const std::string& tag, const char* v) {
    return add(tag, std::string(v));
  }
  KeyBuilder& add(const std::string& tag, double v);
  KeyBuilder& add(const std::string& tag, std::int64_t v);
  KeyBuilder& add(const std::string& tag, int v) {
    return add(tag, static_cast<std::int64_t>(v));
  }
  KeyBuilder& add(const std::string& tag, bool v) {
    return add(tag, static_cast<std::int64_t>(v ? 1 : 0));
  }

  std::uint64_t hash() const { return hash_; }
  const std::string& canonical() const { return canonical_; }

 private:
  void fold(const std::string& bytes);
  std::uint64_t hash_ = kFnvOffset;
  std::string canonical_;
};

struct ScenarioKey {
  std::uint64_t hash = 0;
  std::string canonical;

  bool operator==(const ScenarioKey& o) const { return canonical == o.canonical; }
};

struct ScenarioKeyHash {
  std::size_t operator()(const ScenarioKey& k) const {
    return static_cast<std::size_t>(k.hash);
  }
};

// Canonical key of one simulated training scenario. `seed` namespaces runs
// that would otherwise collide (e.g. spot-replay re-draws); the profiler's
// deterministic runs all use seed 0. Pointer-valued TrainConfig fields
// (trace, metrics, fault_tolerance.faults) are deliberately NOT part of the
// key — runs carrying them must bypass the cache entirely (see cacheable()).
ScenarioKey scenario_key(const dnn::Model& model, const dnn::Dataset& dataset,
                         const profiler::ClusterSpec& spec, int step,
                         const ddl::TrainConfig& cfg, std::uint64_t seed = 0);

// True when a run of `cfg` is a pure function of the key: no telemetry
// sinks to populate and no live fault state to consult.
bool cacheable(const ddl::TrainConfig& cfg);

class SimCache {
 public:
  SimCache() = default;
  SimCache(const SimCache&) = delete;
  SimCache& operator=(const SimCache&) = delete;

  // Returns the memoized result for `key`, running `fn` exactly once
  // process-wide to produce it. Concurrent callers of the same key block
  // until the first finishes. If `fn` throws, the exception is memoized
  // and rethrown to every current and future caller of the key.
  ddl::TrainResult get_or_run(const ScenarioKey& key,
                              const std::function<ddl::TrainResult()>& fn);

  // Peek without computing; nullptr when absent or still in flight.
  // (Returned pointer is stable: slots are never evicted.)
  const ddl::TrainResult* find(const ScenarioKey& key) const;

  std::size_t size() const;
  std::uint64_t hits() const;
  std::uint64_t misses() const;

 private:
  struct Slot {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    ddl::TrainResult result;
    std::exception_ptr error;
  };

  mutable std::mutex mu_;
  std::unordered_map<ScenarioKey, std::shared_ptr<Slot>, ScenarioKeyHash> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace stash::exec
