// Bounded, coalescing, exception-memoizing memo — the slot mechanism that
// SimCache pioneered for simulation results, generalized so any layer can
// memoize any value under the same canonical-key discipline (stash_serve
// memoizes whole response documents with it).
//
// Semantics:
//   - Exactly-once: the first requester of a key installs an in-flight slot
//     and computes outside the lock; concurrent requesters of the same key
//     block on the slot (counted as `coalesced`, and as hits) instead of
//     recomputing.
//   - Exceptions memoize like values: deterministic functions fail
//     deterministically, so every current and future caller rethrows the
//     first failure without re-running it.
//   - Bounded: `Limits{max_entries, max_bytes}` (0 = unbounded) cap the
//     COMPLETED entries. Eviction is strict LRU over completed slots; a hit
//     refreshes recency, an in-flight slot is never evicted (someone is
//     waiting on it), and a key that was evicted and re-requested is a miss
//     again — the hit/miss counters always describe what actually ran.
//   - Byte accounting comes from the caller-supplied sizer (plus the
//     canonical key string); with no sizer every value weighs its sizeof.
//
// Waiters hold a shared_ptr to their slot, so eviction never invalidates a
// blocked reader; values are returned by copy for the same reason (there is
// no stable interior pointer once entries can be evicted).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "exec/scenario_key.h"

namespace stash::exec {

template <typename V>
class LruMemo {
 public:
  struct Limits {
    std::size_t max_entries = 0;  // 0 = unbounded
    std::size_t max_bytes = 0;    // 0 = unbounded
  };
  using Sizer = std::function<std::size_t(const V&)>;

  explicit LruMemo(Limits limits = {}, Sizer sizer = {})
      : limits_(limits), sizer_(std::move(sizer)) {}
  LruMemo(const LruMemo&) = delete;
  LruMemo& operator=(const LruMemo&) = delete;

  // Returns the memoized value for `key`, running `fn` exactly once among
  // concurrent callers to produce it. If `fn` throws, the exception is
  // memoized and rethrown to every current and future caller of the key
  // (until the slot is evicted like any other entry).
  V get_or_run(const ScenarioKey& key, const std::function<V()>& fn) {
    std::shared_ptr<Slot> slot;
    bool owner = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = map_.find(key);
      if (it == map_.end()) {
        slot = std::make_shared<Slot>();
        slot->key = key;
        map_.emplace(key, slot);
        owner = true;
        ++misses_;
      } else {
        slot = it->second;
        ++hits_;
        if (slot->in_lru) {
          // Completed entry: a hit refreshes LRU recency.
          lru_.splice(lru_.begin(), lru_, slot->lru_it);
        } else {
          // Still in flight: this caller coalesces onto the running one.
          ++coalesced_;
        }
      }
    }
    if (owner) {
      V value{};
      std::exception_ptr error;
      try {
        value = fn();
      } catch (...) {
        error = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lock(slot->mu);
        slot->value = std::move(value);
        slot->error = error;
        slot->done = true;
      }
      slot->cv.notify_all();
      publish(slot);
    }
    std::unique_lock<std::mutex> lock(slot->mu);
    slot->cv.wait(lock, [&] { return slot->done; });
    if (slot->error) std::rethrow_exception(slot->error);
    return slot->value;
  }

  // Peek without computing or perturbing recency; nullopt when absent,
  // still in flight, or memoized as an error.
  std::optional<V> find(const ScenarioKey& key) const {
    std::shared_ptr<Slot> slot;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = map_.find(key);
      if (it == map_.end()) return std::nullopt;
      slot = it->second;
    }
    std::lock_guard<std::mutex> lock(slot->mu);
    if (!slot->done || slot->error) return std::nullopt;
    return slot->value;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
  }
  std::size_t bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return bytes_;
  }
  std::uint64_t hits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
  }
  std::uint64_t misses() const {
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
  }
  std::uint64_t coalesced() const {
    std::lock_guard<std::mutex> lock(mu_);
    return coalesced_;
  }
  std::uint64_t evictions() const {
    std::lock_guard<std::mutex> lock(mu_);
    return evictions_;
  }

 private:
  struct Slot {
    ScenarioKey key;
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    V value{};
    std::exception_ptr error;
    // LRU bookkeeping, guarded by the memo's mu_ (not the slot's): a slot
    // enters the list only once complete, so in-flight slots are unevictable.
    bool in_lru = false;
    std::size_t charged_bytes = 0;
    typename std::list<std::shared_ptr<Slot>>::iterator lru_it;
  };

  // Moves a freshly completed slot into the LRU list and enforces the caps.
  // Called after the slot's cv fired, so evicting even this slot is safe —
  // every waiter holds its own shared_ptr.
  void publish(const std::shared_ptr<Slot>& slot) {
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t value_bytes = sizeof(V);
    {
      std::lock_guard<std::mutex> slock(slot->mu);
      if (!slot->error && sizer_) value_bytes = sizer_(slot->value);
    }
    slot->charged_bytes = slot->key.canonical.size() + value_bytes;
    lru_.push_front(slot);
    slot->lru_it = lru_.begin();
    slot->in_lru = true;
    bytes_ += slot->charged_bytes;
    while (!lru_.empty() &&
           ((limits_.max_entries != 0 && lru_.size() > limits_.max_entries) ||
            (limits_.max_bytes != 0 && bytes_ > limits_.max_bytes))) {
      std::shared_ptr<Slot> victim = lru_.back();
      lru_.pop_back();
      victim->in_lru = false;
      bytes_ -= victim->charged_bytes;
      map_.erase(victim->key);
      ++evictions_;
    }
  }

  Limits limits_;
  Sizer sizer_;
  mutable std::mutex mu_;
  std::unordered_map<ScenarioKey, std::shared_ptr<Slot>, ScenarioKeyHash> map_;
  std::list<std::shared_ptr<Slot>> lru_;  // front = most recent, back = victim
  std::size_t bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t coalesced_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace stash::exec
