#include "exec/thread_pool.h"

#include <utility>

namespace stash::exec {

ThreadPool::ThreadPool(int threads) {
  if (threads < 0) threads = 0;
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::post(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

namespace detail {

void ForState::drain() {
  for (;;) {
    std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) return;
    std::exception_ptr err;
    try {
      body(i);
    } catch (...) {
      err = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(mu);
    if (err && i < first_error_index) {
      first_error_index = i;
      error = err;
    }
    if (++completed == n) done_cv.notify_all();
  }
}

void ForState::wait_and_rethrow() {
  std::unique_lock<std::mutex> lock(mu);
  done_cv.wait(lock, [this] { return completed == n; });
  if (error) std::rethrow_exception(error);
}

}  // namespace detail

}  // namespace stash::exec
