// Canonical content-addressed keys: the hash family every memoizing layer
// shares (SimCache scenarios, archive record/group ids, stash_serve request
// coalescing).
//
// A KeyBuilder folds tagged fields (with shortest-round-trip double
// encoding so 0.1 and 0.1000...1 never alias) into a canonical byte string
// and its FNV-1a 64-bit hash. Maps key by the hash but compare the
// canonical string on collision, so a 64-bit collision can never serve the
// wrong value.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace stash::exec {

// Incremental FNV-1a over a tagged canonical encoding. Field order is part
// of the content; every add() also appends to the canonical string used to
// disambiguate hash collisions.
class KeyBuilder {
 public:
  static constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
  static constexpr std::uint64_t kFnvPrime = 1099511628211ull;

  KeyBuilder& add(const std::string& tag, const std::string& v);
  KeyBuilder& add(const std::string& tag, const char* v) {
    return add(tag, std::string(v));
  }
  KeyBuilder& add(const std::string& tag, double v);
  KeyBuilder& add(const std::string& tag, std::int64_t v);
  KeyBuilder& add(const std::string& tag, int v) {
    return add(tag, static_cast<std::int64_t>(v));
  }
  KeyBuilder& add(const std::string& tag, bool v) {
    return add(tag, static_cast<std::int64_t>(v ? 1 : 0));
  }

  std::uint64_t hash() const { return hash_; }
  const std::string& canonical() const { return canonical_; }

 private:
  void fold(const std::string& bytes);
  std::uint64_t hash_ = kFnvOffset;
  std::string canonical_;
};

struct ScenarioKey {
  std::uint64_t hash = 0;
  std::string canonical;

  bool operator==(const ScenarioKey& o) const { return canonical == o.canonical; }
};

struct ScenarioKeyHash {
  std::size_t operator()(const ScenarioKey& k) const {
    return static_cast<std::size_t>(k.hash);
  }
};

}  // namespace stash::exec
