// Bundles the two halves of the execution layer — a thread pool and a
// scenario cache — behind the one knob users see: --jobs N.
//
// jobs counts TOTAL concurrent simulations, calling thread included, so
// jobs=1 is strictly serial (zero pool threads, parallel_for degrades to a
// plain loop) and jobs=N spawns N-1 workers. Every layer that fans out
// (profiler steps, recommend candidates, bench sweeps) takes an
// ExecContext* and must behave identically for any jobs value — results
// are merged by scenario key order, never completion order.
#pragma once

#include "exec/sim_cache.h"
#include "exec/thread_pool.h"

namespace stash::exec {

// Process-wide scenario cache: bench binaries construct many profilers
// (one StepRunner per model), and T2-of-resnet18-on-p3.8xlarge is the same
// scenario no matter which of them asks.
SimCache& process_cache();

class ExecContext {
 public:
  // `cache == nullptr` selects the process-wide cache.
  explicit ExecContext(int jobs = 1, SimCache* cache = nullptr)
      : jobs_(jobs < 1 ? 1 : jobs),
        pool_(jobs_ - 1),
        cache_(cache != nullptr ? cache : &process_cache()) {}
  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  int jobs() const { return jobs_; }
  // Never null; a jobs=1 context returns a zero-thread pool that
  // parallel_for treats as "run serially on the caller".
  ThreadPool* pool() { return &pool_; }
  SimCache& cache() { return *cache_; }

 private:
  int jobs_;
  ThreadPool pool_;
  SimCache* cache_;
};

}  // namespace stash::exec
