#include "exec/scenario_key.h"

#include "util/json.h"

namespace stash::exec {

void KeyBuilder::fold(const std::string& bytes) {
  for (unsigned char c : bytes) {
    hash_ ^= static_cast<std::uint64_t>(c);
    hash_ *= kFnvPrime;
  }
  canonical_ += bytes;
}

KeyBuilder& KeyBuilder::add(const std::string& tag, const std::string& v) {
  // Length-prefixing makes the encoding injective: ("ab","c") can never
  // collide with ("a","bc") under any tag/value split.
  fold(tag + ":s" + std::to_string(v.size()) + ":" + v + ";");
  return *this;
}

KeyBuilder& KeyBuilder::add(const std::string& tag, double v) {
  // Shortest round-trip form: distinct doubles get distinct encodings and
  // equal doubles always encode identically (json_double maps non-finite
  // values to "null", which is fine for a key — NaN != NaN never matters
  // here because config validation rejects non-finite fields).
  fold(tag + ":d" + util::json_double(v) + ";");
  return *this;
}

KeyBuilder& KeyBuilder::add(const std::string& tag, std::int64_t v) {
  fold(tag + ":i" + std::to_string(v) + ";");
  return *this;
}

}  // namespace stash::exec
