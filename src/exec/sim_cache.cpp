#include "exec/sim_cache.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "util/fsio.h"
#include "util/json.h"
#include "util/log.h"

namespace stash::exec {

namespace {

std::string hex64(std::uint64_t h) {
  static const char kDigits[] = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i) {
    s[static_cast<std::size_t>(i)] = kDigits[h & 0xf];
    h >>= 4;
  }
  return s;
}

// Approximate in-memory weight of a cached result, for the byte cap.
std::size_t train_result_bytes(const ddl::TrainResult& r) {
  return sizeof(ddl::TrainResult) +
         r.recoveries.capacity() * sizeof(ddl::RecoveryRecord);
}

}  // namespace

bool cacheable(const ddl::TrainConfig& cfg) {
  return cfg.trace == nullptr && cfg.metrics == nullptr &&
         cfg.fault_tolerance.faults == nullptr;
}

ScenarioKey scenario_key(const dnn::Model& model, const dnn::Dataset& dataset,
                         const profiler::ClusterSpec& spec, int step,
                         const ddl::TrainConfig& cfg, std::uint64_t seed) {
  KeyBuilder b;
  b.add("v", "stash.sim_key/1");
  // Model identity: the zoo builds models deterministically from the name,
  // but custom models (model_architect) share names, so fold the derived
  // quantities the trainer actually consumes.
  b.add("model", model.name());
  b.add("model.params", model.total_params());
  b.add("model.tensors", static_cast<std::int64_t>(model.num_param_tensors()));
  b.add("model.fwd_flops", model.fwd_flops_per_sample());
  b.add("model.mem_b1", model.train_memory_bytes(1));

  b.add("data", dataset.name);
  b.add("data.samples", dataset.num_samples);
  b.add("data.bytes", dataset.total_bytes);
  b.add("data.prep_s", dataset.prep_cpu_seconds_per_sample);

  b.add("spec.instance", spec.instance);
  b.add("spec.count", spec.count);
  b.add("spec.gpm", spec.gpus_per_machine);
  b.add("spec.slice", static_cast<int>(spec.slice));

  b.add("step", step);
  b.add("seed", static_cast<std::int64_t>(seed));

  b.add("cfg.batch", cfg.per_gpu_batch);
  b.add("cfg.iters", cfg.iterations);
  b.add("cfg.warmup", cfg.warmup_iterations);
  b.add("cfg.bucket", cfg.bucket_bytes);
  b.add("cfg.synthetic", cfg.synthetic_data);
  b.add("cfg.cold", cfg.cold_cache);
  b.add("cfg.loaders", cfg.loader_workers_per_gpu);
  b.add("cfg.prefetch", cfg.prefetch_depth);
  b.add("cfg.gpus", static_cast<std::int64_t>(cfg.use_gpus.size()));
  for (const auto& g : cfg.use_gpus) {
    b.add("cfg.gpu.m", g.machine);
    b.add("cfg.gpu.g", g.local);
  }
  b.add("cfg.coll.intra", cfg.collective.intra_round_latency);
  b.add("cfg.coll.inter", cfg.collective.inter_round_latency);
  b.add("cfg.coll.launch", cfg.collective.launch_blocking_latency);
  b.add("cfg.coll.overlap", cfg.collective.overlap_fraction);
  b.add("cfg.red.kind", static_cast<int>(cfg.comm_reduction.kind));
  b.add("cfg.red.topk", cfg.comm_reduction.topk_ratio);
  b.add("cfg.red.local", cfg.comm_reduction.local_steps);
  b.add("cfg.strag.worker", cfg.straggler.worker_index);
  b.add("cfg.strag.slow", cfg.straggler.slowdown);
  b.add("cfg.opt_overhead", cfg.optimizer_overhead);
  b.add("cfg.enforce_mem", cfg.enforce_memory);

  return ScenarioKey{b.hash(), b.canonical()};
}

std::string train_result_to_json(const ddl::TrainResult& r) {
  util::JsonWriter w;
  w.begin_object();
  w.key("measured_iterations").value(r.measured_iterations);
  w.key("window_time").value(r.window_time);
  w.key("per_iteration").value(r.per_iteration);
  w.key("data_wait").value(r.data_wait);
  w.key("h2d_time").value(r.h2d_time);
  w.key("compute_time").value(r.compute_time);
  w.key("comm_tail").value(r.comm_tail);
  w.key("gpus_used").value(r.gpus_used);
  w.key("fault_stall").value(r.fault_stall);
  w.key("checkpoint_seconds").value(r.checkpoint_seconds);
  w.key("checkpoints_written").value(r.checkpoints_written);
  w.key("gpus_at_end").value(r.gpus_at_end);
  w.key("recoveries").begin_array();
  for (const auto& rec : r.recoveries) {
    w.begin_object();
    w.key("time_s").value(rec.time_s);
    w.key("at_iteration").value(rec.at_iteration);
    w.key("policy").value(
        rec.policy == ddl::RecoveryPolicy::kCheckpointRestart ? "restart"
                                                              : "shrink");
    w.key("workers_before").value(rec.workers_before);
    w.key("workers_after").value(rec.workers_after);
    w.key("wait_seconds").value(rec.wait_seconds);
    w.key("rework_iterations").value(rec.rework_iterations);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::optional<ddl::TrainResult> train_result_from_json(const std::string& json) {
  util::JsonValue doc;
  try {
    doc = util::json_parse(json);
  } catch (const util::JsonParseError&) {
    return std::nullopt;
  }
  if (!doc.is_object() || !doc.has("per_iteration") || !doc.has("gpus_used"))
    return std::nullopt;
  ddl::TrainResult r;
  r.measured_iterations =
      static_cast<int>(doc.get("measured_iterations").as_int());
  r.window_time = doc.get("window_time").as_double();
  r.per_iteration = doc.get("per_iteration").as_double();
  r.data_wait = doc.get("data_wait").as_double();
  r.h2d_time = doc.get("h2d_time").as_double();
  r.compute_time = doc.get("compute_time").as_double();
  r.comm_tail = doc.get("comm_tail").as_double();
  r.gpus_used = static_cast<int>(doc.get("gpus_used").as_int());
  r.fault_stall = doc.get("fault_stall").as_double();
  r.checkpoint_seconds = doc.get("checkpoint_seconds").as_double();
  r.checkpoints_written =
      static_cast<int>(doc.get("checkpoints_written").as_int());
  r.gpus_at_end = static_cast<int>(doc.get("gpus_at_end").as_int());
  for (const auto& item : doc.get("recoveries").items()) {
    if (!item.is_object()) return std::nullopt;
    ddl::RecoveryRecord rec;
    rec.time_s = item.get("time_s").as_double();
    rec.at_iteration = static_cast<int>(item.get("at_iteration").as_int());
    rec.policy = item.get("policy").as_string() == "shrink"
                     ? ddl::RecoveryPolicy::kShrink
                     : ddl::RecoveryPolicy::kCheckpointRestart;
    rec.workers_before = static_cast<int>(item.get("workers_before").as_int());
    rec.workers_after = static_cast<int>(item.get("workers_after").as_int());
    rec.wait_seconds = item.get("wait_seconds").as_double();
    rec.rework_iterations =
        static_cast<int>(item.get("rework_iterations").as_int());
    r.recoveries.push_back(rec);
  }
  return r;
}

SimCache::SimCache(SimCacheConfig config)
    : config_(std::move(config)),
      memo_(LruMemo<ddl::TrainResult>::Limits{config_.max_entries,
                                              config_.max_bytes},
            &train_result_bytes) {
  if (!config_.persist_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(config_.persist_dir, ec);
    if (ec)
      util::log_warn("sim cache: cannot create persist dir ",
                     config_.persist_dir, ": ", ec.message(),
                     " (persistence disabled)");
  }
}

std::string SimCache::persist_path(const ScenarioKey& key) const {
  return config_.persist_dir + "/" + hex64(key.hash) + ".json";
}

std::optional<ddl::TrainResult> SimCache::load_persisted(
    const ScenarioKey& key) const {
  if (config_.persist_dir.empty()) return std::nullopt;
  std::ifstream is(persist_path(key), std::ios::binary);
  if (!is) return std::nullopt;
  std::ostringstream ss;
  ss << is.rdbuf();
  util::JsonValue doc;
  try {
    doc = util::json_parse(ss.str());
  } catch (const util::JsonParseError&) {
    return std::nullopt;  // torn or foreign file: just a miss
  }
  if (!doc.is_object() ||
      doc.get("schema").as_string() != "stash.sim_result/1" ||
      doc.get("key").as_string() != key.canonical)
    return std::nullopt;  // hash collision or schema drift: a miss, never a lie
  const util::JsonValue* result = doc.find("result");
  if (result == nullptr) return std::nullopt;
  return train_result_from_json(result->dump());
}

void SimCache::persist(const ScenarioKey& key,
                       const ddl::TrainResult& result) const {
  if (config_.persist_dir.empty()) return;
  util::JsonWriter w;
  w.begin_object();
  w.key("schema").value("stash.sim_result/1");
  w.key("key").value(key.canonical);
  w.key("result").raw(train_result_to_json(result));
  w.end_object();
  try {
    util::write_file_durable(config_.persist_dir, hex64(key.hash) + ".json",
                             w.str() + "\n");
  } catch (const std::exception& e) {
    // Persistence is an accelerator, not a correctness surface: losing a
    // write only costs a future re-simulation.
    util::log_warn("sim cache: persist failed: ", e.what());
  }
}

ddl::TrainResult SimCache::get_or_run(
    const ScenarioKey& key, const std::function<ddl::TrainResult()>& fn) {
  return memo_.get_or_run(key, [&]() -> ddl::TrainResult {
    if (std::optional<ddl::TrainResult> loaded = load_persisted(key)) {
      disk_hits_.fetch_add(1, std::memory_order_relaxed);
      return *loaded;
    }
    ddl::TrainResult result = fn();
    persist(key, result);
    return result;
  });
}

std::optional<ddl::TrainResult> SimCache::find(const ScenarioKey& key) const {
  return memo_.find(key);
}

}  // namespace stash::exec
