#include "exec/sim_cache.h"

#include <utility>

#include "util/json.h"

namespace stash::exec {

void KeyBuilder::fold(const std::string& bytes) {
  for (unsigned char c : bytes) {
    hash_ ^= static_cast<std::uint64_t>(c);
    hash_ *= kFnvPrime;
  }
  canonical_ += bytes;
}

KeyBuilder& KeyBuilder::add(const std::string& tag, const std::string& v) {
  // Length-prefixing makes the encoding injective: ("ab","c") can never
  // collide with ("a","bc") under any tag/value split.
  fold(tag + ":s" + std::to_string(v.size()) + ":" + v + ";");
  return *this;
}

KeyBuilder& KeyBuilder::add(const std::string& tag, double v) {
  // Shortest round-trip form: distinct doubles get distinct encodings and
  // equal doubles always encode identically (json_double maps non-finite
  // values to "null", which is fine for a key — NaN != NaN never matters
  // here because config validation rejects non-finite fields).
  fold(tag + ":d" + util::json_double(v) + ";");
  return *this;
}

KeyBuilder& KeyBuilder::add(const std::string& tag, std::int64_t v) {
  fold(tag + ":i" + std::to_string(v) + ";");
  return *this;
}

bool cacheable(const ddl::TrainConfig& cfg) {
  return cfg.trace == nullptr && cfg.metrics == nullptr &&
         cfg.fault_tolerance.faults == nullptr;
}

ScenarioKey scenario_key(const dnn::Model& model, const dnn::Dataset& dataset,
                         const profiler::ClusterSpec& spec, int step,
                         const ddl::TrainConfig& cfg, std::uint64_t seed) {
  KeyBuilder b;
  b.add("v", "stash.sim_key/1");
  // Model identity: the zoo builds models deterministically from the name,
  // but custom models (model_architect) share names, so fold the derived
  // quantities the trainer actually consumes.
  b.add("model", model.name());
  b.add("model.params", model.total_params());
  b.add("model.tensors", static_cast<std::int64_t>(model.num_param_tensors()));
  b.add("model.fwd_flops", model.fwd_flops_per_sample());
  b.add("model.mem_b1", model.train_memory_bytes(1));

  b.add("data", dataset.name);
  b.add("data.samples", dataset.num_samples);
  b.add("data.bytes", dataset.total_bytes);
  b.add("data.prep_s", dataset.prep_cpu_seconds_per_sample);

  b.add("spec.instance", spec.instance);
  b.add("spec.count", spec.count);
  b.add("spec.gpm", spec.gpus_per_machine);
  b.add("spec.slice", static_cast<int>(spec.slice));

  b.add("step", step);
  b.add("seed", static_cast<std::int64_t>(seed));

  b.add("cfg.batch", cfg.per_gpu_batch);
  b.add("cfg.iters", cfg.iterations);
  b.add("cfg.warmup", cfg.warmup_iterations);
  b.add("cfg.bucket", cfg.bucket_bytes);
  b.add("cfg.synthetic", cfg.synthetic_data);
  b.add("cfg.cold", cfg.cold_cache);
  b.add("cfg.loaders", cfg.loader_workers_per_gpu);
  b.add("cfg.prefetch", cfg.prefetch_depth);
  b.add("cfg.gpus", static_cast<std::int64_t>(cfg.use_gpus.size()));
  for (const auto& g : cfg.use_gpus) {
    b.add("cfg.gpu.m", g.machine);
    b.add("cfg.gpu.g", g.local);
  }
  b.add("cfg.coll.intra", cfg.collective.intra_round_latency);
  b.add("cfg.coll.inter", cfg.collective.inter_round_latency);
  b.add("cfg.coll.launch", cfg.collective.launch_blocking_latency);
  b.add("cfg.coll.overlap", cfg.collective.overlap_fraction);
  b.add("cfg.red.kind", static_cast<int>(cfg.comm_reduction.kind));
  b.add("cfg.red.topk", cfg.comm_reduction.topk_ratio);
  b.add("cfg.red.local", cfg.comm_reduction.local_steps);
  b.add("cfg.strag.worker", cfg.straggler.worker_index);
  b.add("cfg.strag.slow", cfg.straggler.slowdown);
  b.add("cfg.opt_overhead", cfg.optimizer_overhead);
  b.add("cfg.enforce_mem", cfg.enforce_memory);

  return ScenarioKey{b.hash(), b.canonical()};
}

ddl::TrainResult SimCache::get_or_run(
    const ScenarioKey& key, const std::function<ddl::TrainResult()>& fn) {
  std::shared_ptr<Slot> slot;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it == map_.end()) {
      slot = std::make_shared<Slot>();
      map_.emplace(key, slot);
      owner = true;
      ++misses_;
    } else {
      slot = it->second;
      ++hits_;
    }
  }
  if (owner) {
    ddl::TrainResult result;
    std::exception_ptr error;
    try {
      result = fn();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(slot->mu);
      slot->result = std::move(result);
      slot->error = error;
      slot->done = true;
    }
    slot->cv.notify_all();
  }
  std::unique_lock<std::mutex> lock(slot->mu);
  slot->cv.wait(lock, [&] { return slot->done; });
  if (slot->error) std::rethrow_exception(slot->error);
  return slot->result;
}

const ddl::TrainResult* SimCache::find(const ScenarioKey& key) const {
  std::shared_ptr<Slot> slot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it == map_.end()) return nullptr;
    slot = it->second;
  }
  std::lock_guard<std::mutex> lock(slot->mu);
  return slot->done && !slot->error ? &slot->result : nullptr;
}

std::size_t SimCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

std::uint64_t SimCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t SimCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

}  // namespace stash::exec
