#include "serve/protocol.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <vector>

namespace stash::serve {

namespace {

// Reads exactly n bytes; false on EOF or error (errno preserved).
bool read_exact(int fd, char* buf, std::size_t n, bool& eof) {
  std::size_t off = 0;
  eof = false;
  while (off < n) {
    ssize_t r = ::recv(fd, buf + off, n - off, 0);
    if (r == 0) {
      eof = true;
      return false;
    }
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

ReadStatus read_frame(int fd, std::string& payload, std::string& error) {
  unsigned char hdr[4];
  bool eof = false;
  if (!read_exact(fd, reinterpret_cast<char*>(hdr), 4, eof)) {
    if (eof) {
      error.clear();
      return ReadStatus::kClosed;
    }
    error = std::strerror(errno);
    return ReadStatus::kError;
  }
  const std::uint32_t len = (static_cast<std::uint32_t>(hdr[0]) << 24) |
                            (static_cast<std::uint32_t>(hdr[1]) << 16) |
                            (static_cast<std::uint32_t>(hdr[2]) << 8) |
                            static_cast<std::uint32_t>(hdr[3]);
  if (len > kMaxFrameBytes) {
    error = "frame of " + std::to_string(len) + " bytes exceeds limit";
    return ReadStatus::kError;
  }
  payload.resize(len);
  if (len > 0 && !read_exact(fd, payload.data(), len, eof)) {
    error = eof ? "connection closed mid-frame" : std::strerror(errno);
    return ReadStatus::kError;
  }
  return ReadStatus::kOk;
}

bool write_frame(int fd, const std::string& payload) {
  if (payload.size() > kMaxFrameBytes) return false;
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  std::string framed;
  framed.reserve(4 + payload.size());
  framed.push_back(static_cast<char>((len >> 24) & 0xff));
  framed.push_back(static_cast<char>((len >> 16) & 0xff));
  framed.push_back(static_cast<char>((len >> 8) & 0xff));
  framed.push_back(static_cast<char>(len & 0xff));
  framed += payload;
  std::size_t off = 0;
  while (off < framed.size()) {
    ssize_t w = ::send(fd, framed.data() + off, framed.size() - off,
                       MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(w);
  }
  return true;
}

bool parse_request(const std::string& payload, Request& out,
                   std::string& error) {
  util::JsonValue doc;
  try {
    doc = util::json_parse(payload);
  } catch (const util::JsonParseError& e) {
    error = std::string("malformed JSON: ") + e.what();
    return false;
  }
  if (!doc.is_object()) {
    error = "request must be a JSON object";
    return false;
  }
  if (doc.get("schema").as_string() != "stash.serve_request/1") {
    error = "unknown schema (expected stash.serve_request/1)";
    return false;
  }
  const util::JsonValue* command = doc.find("command");
  if (command == nullptr || !command->is_string() ||
      command->as_string().empty()) {
    error = "missing command";
    return false;
  }
  out.command = command->as_string();
  out.id = doc.get("id").as_string();
  const util::JsonValue* params = doc.find("params");
  if (params != nullptr && !params->is_object()) {
    error = "params must be an object";
    return false;
  }
  out.params = params != nullptr ? *params : util::JsonValue::make_object({});
  return true;
}

exec::ScenarioKey request_key(const Request& req) {
  exec::KeyBuilder b;
  b.add("v", "stash.serve_key/1");
  b.add("command", req.command);
  // Sorted members: {"a":1,"b":2} and {"b":2,"a":1} are the same query.
  std::vector<std::pair<std::string, std::string>> members;
  members.reserve(req.params.members().size());
  for (const auto& [k, v] : req.params.members())
    members.emplace_back(k, v.dump());
  std::sort(members.begin(), members.end());
  for (const auto& [k, v] : members) b.add(k, v);
  return exec::ScenarioKey{b.hash(), b.canonical()};
}

namespace {

void envelope_head(util::JsonWriter& w, const Request& req,
                   const char* status) {
  w.begin_object();
  w.key("schema").value("stash.serve_response/1");
  w.key("id").value(req.id);
  w.key("command").value(req.command);
  w.key("status").value(status);
}

}  // namespace

std::string ok_response(const Request& req, const std::string& result_json,
                        bool cached, double elapsed_ms) {
  util::JsonWriter w;
  envelope_head(w, req, "ok");
  w.key("cached").value(cached);
  w.key("elapsed_ms").value(elapsed_ms);
  w.key("result").raw(result_json);
  w.end_object();
  return w.str();
}

std::string error_response(const Request& req, const std::string& message) {
  util::JsonWriter w;
  envelope_head(w, req, "error");
  w.key("error").value(message);
  w.end_object();
  return w.str();
}

std::string overloaded_response(const Request& req) {
  util::JsonWriter w;
  envelope_head(w, req, "overloaded");
  w.key("error").value("server at max in-flight requests, retry later");
  w.end_object();
  return w.str();
}

}  // namespace stash::serve
