// Minimal blocking client for the stash_serve protocol, shared by the
// `stash_cli query` subcommand and the serve tests. One connection, one
// outstanding request at a time; the daemon's coalescing makes concurrency
// a multi-connection (or multi-client) affair, not a pipelining one.
#pragma once

#include <string>

namespace stash::serve {

class Client {
 public:
  // Both throw std::runtime_error (with errno text) on connection failure.
  static Client connect_unix(const std::string& path);
  static Client connect_tcp(int port);  // 127.0.0.1 only, like the daemon

  Client(Client&& o) noexcept;
  Client& operator=(Client&& o) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  // Sends one framed request payload and blocks for the framed response.
  // Throws std::runtime_error on any I/O or framing failure.
  std::string roundtrip(const std::string& request_json);

  int fd() const { return fd_; }

 private:
  explicit Client(int fd) : fd_(fd) {}
  int fd_ = -1;
};

}  // namespace stash::serve
