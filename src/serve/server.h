// stash_serve: the long-running profiling-as-a-service daemon.
//
// One process owns the expensive state — a bounded, disk-backed SimCache of
// simulation results and an exec::ThreadPool — and answers profile /
// estimate / attribute / plan queries over a Unix or localhost-TCP socket
// (serve/protocol.h framing). The point is amortization: the first profile
// of a scenario simulates, every later identical query (from any client,
// any connection, even after a daemon restart when --persist-dir is set)
// is a cache read.
//
// Request lifecycle:
//   accept thread --> one reader thread per connection --> per request:
//     control commands (ping / stats / shutdown / sleep) run inline;
//     pure commands pass admission control (max in-flight, `overloaded`
//     response when saturated), then go through the response memo — an
//     exec::LruMemo keyed by the request-level KeyBuilder hash — so N
//     identical concurrent queries block on ONE computation (the SimCache
//     slot mechanism generalized to whole responses), and repeats are
//     served from memory without touching the profiler at all.
//
// Shutdown is graceful: stop() closes the listeners, half-closes every
// connection (SHUT_RD — the in-flight request finishes and its response is
// written), then joins every thread. A `shutdown` request or SIGTERM in the
// binary routes through request_shutdown()/wait_for_shutdown().
//
// Telemetry: per-request latency histograms, hit/miss/coalesce/eviction
// counters for both caches, and an in-flight gauge, exposed as Prometheus
// text on an optional localhost HTTP port (--metrics-port) and through the
// `stats` command.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exec/exec_context.h"
#include "exec/lru_memo.h"
#include "serve/protocol.h"
#include "telemetry/metrics.h"

namespace stash::serve {

struct ServeOptions {
  // Listeners; at least one must be enabled. TCP binds 127.0.0.1 only —
  // this daemon has no authentication story and never should be exposed.
  std::string unix_path;  // empty = no Unix listener
  int tcp_port = -1;      // -1 = no TCP listener, 0 = ephemeral port
  int metrics_port = -1;  // -1 = no metrics HTTP listener, 0 = ephemeral

  int jobs = 1;           // simulation fan-out per request (exec::ExecContext)
  int max_inflight = 32;  // pure requests beyond this get `overloaded`; 0 = off
  int accept_backlog = 64;

  // SimCache bounds + persistence (exec::SimCacheConfig).
  std::size_t cache_entries = 0;
  std::size_t cache_bytes = 0;
  std::string persist_dir;

  // Response-memo entry bound (completed response fragments kept hot).
  std::size_t response_entries = 1024;

  // Enables the `sleep` command ({"ms":N}), which the overload and drain
  // tests use as a calibrated slow request. Off in the shipped binary.
  bool enable_test_commands = false;
};

class Server {
 public:
  explicit Server(ServeOptions options);
  ~Server();  // stop()s if still running
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds the listeners and starts the accept / metrics threads. Throws
  // std::runtime_error on bind failure.
  void start();

  // Marks the server as shutting down (idempotent, thread-safe; callable
  // from a request handler). wait_for_shutdown() wakes; actually draining
  // is stop()'s job.
  void request_shutdown();

  // Blocks until request_shutdown() or stop() is called.
  void wait_for_shutdown();

  // Graceful drain: stop accepting, half-close every live connection, join
  // every thread. Idempotent.
  void stop();

  // Actual bound ports (useful with port 0); -1 when the listener is off.
  int tcp_port() const { return tcp_port_bound_; }
  int metrics_port() const { return metrics_port_bound_; }

  const ServeOptions& options() const { return options_; }
  exec::SimCache& sim_cache() { return sim_cache_; }
  const exec::LruMemo<std::string>& response_memo() const { return responses_; }

  // Prometheus exposition with cache gauges refreshed at scrape time (what
  // the metrics HTTP listener serves).
  std::string prometheus_snapshot();

  // stash.serve_stats/1 JSON fragment (the `stats` command's result).
  std::string stats_json();

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
  };

  void accept_loop();
  void metrics_loop();
  void serve_connection(int fd);
  void reap_finished_locked();

  // One request in, one response out. Returns false when the connection
  // should close (shutdown command, write failure).
  bool handle_request(int fd, const std::string& payload);
  std::string run_command(const Request& req);  // the actual computation

  ServeOptions options_;
  exec::SimCache sim_cache_;
  exec::ExecContext exec_;
  exec::LruMemo<std::string> responses_;

  std::mutex metrics_mu_;  // MetricsRegistry instruments are not atomic
  telemetry::MetricsRegistry metrics_;

  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int metrics_fd_ = -1;
  int tcp_port_bound_ = -1;
  int metrics_port_bound_ = -1;
  int wake_pipe_[2] = {-1, -1};  // self-pipe: stop() wakes poll()ers

  std::thread accept_thread_;
  std::thread metrics_thread_;

  std::mutex conns_mu_;
  std::uint64_t next_conn_id_ = 0;
  std::map<std::uint64_t, std::unique_ptr<Connection>> conns_;
  std::vector<std::uint64_t> finished_;

  std::atomic<int> in_flight_{0};
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::mutex shutdown_mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
};

}  // namespace stash::serve
