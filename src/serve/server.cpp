#include "serve/server.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "dnn/zoo.h"
#include "plan/planner.h"
#include "stash/attribute.h"
#include "stash/session.h"
#include "telemetry/manifest.h"
#include "util/json.h"

namespace stash::serve {

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

// --- request parameter helpers -------------------------------------------
// Typed, validating extraction: an absent key yields the fallback, a key of
// the wrong JSON type is the client's bug and throws (surfaced as a status
// "error" response naming the field).

std::string param_string(const util::JsonValue& params, const std::string& key,
                         const std::string& fallback = "") {
  const util::JsonValue* v = params.find(key);
  if (v == nullptr) return fallback;
  if (!v->is_string())
    throw std::invalid_argument("param '" + key + "' must be a string");
  return v->as_string();
}

int param_int(const util::JsonValue& params, const std::string& key,
              int fallback) {
  const util::JsonValue* v = params.find(key);
  if (v == nullptr) return fallback;
  if (!v->is_number())
    throw std::invalid_argument("param '" + key + "' must be a number");
  return static_cast<int>(v->as_int());
}

double param_double(const util::JsonValue& params, const std::string& key,
                    double fallback) {
  const util::JsonValue* v = params.find(key);
  if (v == nullptr) return fallback;
  if (!v->is_number())
    throw std::invalid_argument("param '" + key + "' must be a number");
  return v->as_double();
}

bool param_bool(const util::JsonValue& params, const std::string& key,
                bool fallback) {
  const util::JsonValue* v = params.find(key);
  if (v == nullptr) return fallback;
  if (!v->is_bool())
    throw std::invalid_argument("param '" + key + "' must be a boolean");
  return v->as_bool();
}

profiler::ClusterSpec spec_from(const util::JsonValue& params) {
  profiler::ClusterSpec spec;
  spec.instance = param_string(params, "instance", "p3.8xlarge");
  spec.count = param_int(params, "count", 1);
  if (param_bool(params, "full_quad", false))
    spec.slice = cloud::CrossbarSlice::kFullQuad;
  return spec;
}

std::string required_model(const util::JsonValue& params) {
  std::string model = param_string(params, "model");
  if (model.empty()) throw std::invalid_argument("param 'model' is required");
  return model;
}

}  // namespace

Server::Server(ServeOptions options)
    : options_(std::move(options)),
      sim_cache_(exec::SimCacheConfig{options_.cache_entries,
                                      options_.cache_bytes,
                                      options_.persist_dir}),
      exec_(options_.jobs < 1 ? 1 : options_.jobs, &sim_cache_),
      responses_(exec::LruMemo<std::string>::Limits{options_.response_entries,
                                                    0},
                 [](const std::string& s) { return s.size(); }) {}

Server::~Server() { stop(); }

void Server::start() {
  if (running_.exchange(true)) throw std::logic_error("server already started");
  if (options_.unix_path.empty() && options_.tcp_port < 0)
    throw std::runtime_error("no listener configured (need a socket path or port)");
  if (::pipe(wake_pipe_) != 0) fail_errno("cannot create wake pipe");

  if (!options_.unix_path.empty()) {
    unix_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (unix_fd_ < 0) fail_errno("cannot create unix socket");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_path.size() >= sizeof(addr.sun_path))
      throw std::runtime_error("socket path too long: " + options_.unix_path);
    std::strncpy(addr.sun_path, options_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(options_.unix_path.c_str());  // stale socket from a dead daemon
    if (::bind(unix_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
      fail_errno("cannot bind " + options_.unix_path);
    if (::listen(unix_fd_, options_.accept_backlog) != 0)
      fail_errno("cannot listen on " + options_.unix_path);
  }

  if (options_.tcp_port >= 0) {
    tcp_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (tcp_fd_ < 0) fail_errno("cannot create tcp socket");
    int one = 1;
    ::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(options_.tcp_port));
    if (::bind(tcp_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
      fail_errno("cannot bind 127.0.0.1:" + std::to_string(options_.tcp_port));
    if (::listen(tcp_fd_, options_.accept_backlog) != 0)
      fail_errno("cannot listen on port " + std::to_string(options_.tcp_port));
    sockaddr_in bound{};
    socklen_t blen = sizeof(bound);
    ::getsockname(tcp_fd_, reinterpret_cast<sockaddr*>(&bound), &blen);
    tcp_port_bound_ = ntohs(bound.sin_port);
  }

  if (options_.metrics_port >= 0) {
    metrics_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (metrics_fd_ < 0) fail_errno("cannot create metrics socket");
    int one = 1;
    ::setsockopt(metrics_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(options_.metrics_port));
    if (::bind(metrics_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
      fail_errno("cannot bind metrics port " +
                 std::to_string(options_.metrics_port));
    if (::listen(metrics_fd_, 16) != 0) fail_errno("cannot listen on metrics port");
    sockaddr_in bound{};
    socklen_t blen = sizeof(bound);
    ::getsockname(metrics_fd_, reinterpret_cast<sockaddr*>(&bound), &blen);
    metrics_port_bound_ = ntohs(bound.sin_port);
    metrics_thread_ = std::thread([this] { metrics_loop(); });
  }

  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::request_shutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();
}

void Server::wait_for_shutdown() {
  std::unique_lock<std::mutex> lock(shutdown_mu_);
  shutdown_cv_.wait(lock, [&] { return shutdown_requested_; });
}

void Server::stop() {
  if (!running_.load()) return;
  if (stopping_.exchange(true)) {
    // A concurrent stop() is already draining; just wait for the threads it
    // owns by returning — destructor-level double stop is a no-op.
    return;
  }
  request_shutdown();

  // Wake the poll()ers so they observe stopping_ and exit.
  if (wake_pipe_[1] >= 0) {
    char byte = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (metrics_thread_.joinable()) metrics_thread_.join();
  close_fd(unix_fd_);
  close_fd(tcp_fd_);
  close_fd(metrics_fd_);
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());

  // Half-close every live connection: the reader sees EOF after finishing
  // (and answering) its current request — the graceful part of the drain.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& [id, conn] : conns_)
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RD);
  }
  for (;;) {
    std::unique_ptr<Connection> victim;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      if (conns_.empty()) break;
      auto it = conns_.begin();
      victim = std::move(it->second);
      conns_.erase(it);
    }
    if (victim->thread.joinable()) victim->thread.join();
    close_fd(victim->fd);
  }
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    finished_.clear();
  }
  close_fd(wake_pipe_[0]);
  close_fd(wake_pipe_[1]);
  running_.store(false);
}

void Server::reap_finished_locked() {
  for (std::uint64_t id : finished_) {
    auto it = conns_.find(id);
    if (it == conns_.end()) continue;
    if (it->second->thread.joinable()) it->second->thread.join();
    close_fd(it->second->fd);
    conns_.erase(it);
  }
  finished_.clear();
}

void Server::accept_loop() {
  while (!stopping_.load()) {
    pollfd fds[3];
    nfds_t nfds = 0;
    int idx_unix = -1, idx_tcp = -1;
    fds[nfds] = {wake_pipe_[0], POLLIN, 0};
    ++nfds;
    if (unix_fd_ >= 0) {
      idx_unix = static_cast<int>(nfds);
      fds[nfds] = {unix_fd_, POLLIN, 0};
      ++nfds;
    }
    if (tcp_fd_ >= 0) {
      idx_tcp = static_cast<int>(nfds);
      fds[nfds] = {tcp_fd_, POLLIN, 0};
      ++nfds;
    }
    int rc = ::poll(fds, nfds, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (stopping_.load()) break;
    for (int idx : {idx_unix, idx_tcp}) {
      if (idx < 0 || (fds[idx].revents & POLLIN) == 0) continue;
      int conn = ::accept(fds[idx].fd, nullptr, nullptr);
      if (conn < 0) continue;
      std::lock_guard<std::mutex> lock(conns_mu_);
      reap_finished_locked();
      const std::uint64_t id = next_conn_id_++;
      auto c = std::make_unique<Connection>();
      c->fd = conn;
      c->thread = std::thread([this, id, conn] {
        serve_connection(conn);
        std::lock_guard<std::mutex> lock2(conns_mu_);
        finished_.push_back(id);
      });
      conns_.emplace(id, std::move(c));
    }
  }
}

void Server::serve_connection(int fd) {
  std::string payload;
  std::string err;
  for (;;) {
    ReadStatus rs = read_frame(fd, payload, err);
    if (rs != ReadStatus::kOk) break;  // clean close or broken peer: done
    if (!handle_request(fd, payload)) break;
  }
}

bool Server::handle_request(int fd, const std::string& payload) {
  {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    metrics_.counter("serve/requests_total").increment();
  }
  Request req;
  std::string parse_err;
  if (!parse_request(payload, req, parse_err)) {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    metrics_.counter("serve/errors_total").increment();
    return write_frame(fd, error_response(Request{}, parse_err));
  }

  // Control commands: cheap, never memoized, never admission-controlled.
  if (req.command == "ping")
    return write_frame(fd, ok_response(req, "{\"pong\":true}", false, 0.0));
  if (req.command == "stats")
    return write_frame(fd, ok_response(req, stats_json(), false, 0.0));
  if (req.command == "shutdown") {
    write_frame(fd, ok_response(req, "{\"shutting_down\":true}", false, 0.0));
    request_shutdown();
    return false;  // close this connection; stop() drains the rest
  }

  // Pure commands: admission control, then the coalescing response memo.
  const int inflight = in_flight_.fetch_add(1) + 1;
  if (options_.max_inflight > 0 && inflight > options_.max_inflight) {
    in_flight_.fetch_sub(1);
    std::lock_guard<std::mutex> lock(metrics_mu_);
    metrics_.counter("serve/overloaded_total").increment();
    return write_frame(fd, overloaded_response(req));
  }
  {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    metrics_.gauge("serve/in_flight", /*volatile_metric=*/true)
        .set(static_cast<double>(inflight));
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::string response;
  bool ok = true;
  try {
    bool computed = false;
    std::string result = responses_.get_or_run(request_key(req), [&] {
      computed = true;
      return run_command(req);
    });
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    response = ok_response(req, result, /*cached=*/!computed, elapsed_ms);
  } catch (const std::exception& e) {
    response = error_response(req, e.what());
    ok = false;
  }
  in_flight_.fetch_sub(1);
  {
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    std::lock_guard<std::mutex> lock(metrics_mu_);
    metrics_.histogram("serve/latency_ms").observe(elapsed_ms);
    metrics_.counter(ok ? "serve/ok_total" : "serve/errors_total").increment();
  }
  return write_frame(fd, response);
}

std::string Server::run_command(const Request& req) {
  const util::JsonValue& p = req.params;

  if (req.command == "sleep") {
    if (!options_.enable_test_commands)
      throw std::invalid_argument("unknown command 'sleep'");
    const int ms = param_int(p, "ms", 10);
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    return "{\"slept_ms\":" + std::to_string(ms) + "}";
  }

  if (req.command == "profile" || req.command == "stalls") {
    const std::string model = required_model(p);
    const profiler::ClusterSpec spec = spec_from(p);
    const int batch = param_int(p, "batch", 32);
    profiler::ProfileOptions opt;
    opt.exec = &exec_;
    opt.prefetch_depth = param_int(p, "prefetch", opt.prefetch_depth);
    opt.loader_workers_per_gpu =
        param_int(p, "loader_workers", opt.loader_workers_per_gpu);
    profiler::StashProfiler prof(dnn::make_zoo_model(model),
                                 dnn::dataset_for(model), opt);
    return telemetry::to_json(prof.profile(spec, batch));
  }

  if (req.command == "estimate") {
    const std::string model = required_model(p);
    const profiler::ClusterSpec spec = spec_from(p);
    const int batch = param_int(p, "batch", 32);
    const int epochs = param_int(p, "epochs", 90);
    profiler::ProfileOptions opt;
    opt.exec = &exec_;
    profiler::StashProfiler prof(dnn::make_zoo_model(model),
                                 dnn::dataset_for(model), opt);
    return telemetry::to_json(
        profiler::estimate_training(prof, spec, batch, epochs));
  }

  if (req.command == "attribute") {
    const std::string model = required_model(p);
    const profiler::ClusterSpec spec = spec_from(p);
    const int batch = param_int(p, "batch", 32);
    profiler::ProfileOptions opt;
    opt.exec = &exec_;
    profiler::StashProfiler prof(dnn::make_zoo_model(model),
                                 dnn::dataset_for(model), opt);
    return profiler::blame_profile_to_json(profiler::attribute(prof, spec, batch));
  }

  if (req.command == "plan") {
    const std::string model = required_model(p);
    plan::PlanOptions opt;
    opt.per_gpu_batch = param_int(p, "batch", opt.per_gpu_batch);
    opt.epochs = param_int(p, "epochs", opt.epochs);
    opt.budget_usd = param_double(p, "budget", opt.budget_usd);
    opt.deadline_hours = param_double(p, "deadline", opt.deadline_hours);
    opt.spot.interruptions_per_hour =
        param_double(p, "spot_rate", opt.spot.interruptions_per_hour);
    opt.spot.price_factor =
        param_double(p, "spot_price", opt.spot.price_factor);
    opt.trials = param_int(p, "trials", opt.trials);
    opt.seed = static_cast<std::uint64_t>(
        param_int(p, "seed", static_cast<int>(opt.seed)));
    opt.calibrate_recovery = param_bool(p, "calibrate", opt.calibrate_recovery);
    opt.watchdog_timeout_s =
        param_double(p, "watchdog_timeout", opt.watchdog_timeout_s);
    if (p.has("instance")) opt.candidates.push_back(spec_from(p));
    opt.profile.exec = &exec_;
    plan::PlanReport report = plan::plan(
        dnn::make_zoo_model(model), dnn::dataset_for(model), opt);
    if (report.plans.empty())
      throw std::runtime_error("no configuration fits " + model + " at batch " +
                               std::to_string(opt.per_gpu_batch));
    return plan::to_json(report);
  }

  throw std::invalid_argument("unknown command '" + req.command + "'");
}

std::string Server::stats_json() {
  util::JsonWriter w;
  w.begin_object();
  w.key("schema").value("stash.serve_stats/1");
  w.key("sim_cache").begin_object();
  w.key("size").value(static_cast<unsigned long long>(sim_cache_.size()));
  w.key("bytes").value(static_cast<unsigned long long>(sim_cache_.bytes()));
  w.key("hits").value(static_cast<unsigned long long>(sim_cache_.hits()));
  w.key("misses").value(static_cast<unsigned long long>(sim_cache_.misses()));
  w.key("coalesced").value(
      static_cast<unsigned long long>(sim_cache_.coalesced()));
  w.key("evictions").value(
      static_cast<unsigned long long>(sim_cache_.evictions()));
  w.key("disk_hits").value(
      static_cast<unsigned long long>(sim_cache_.disk_hits()));
  w.end_object();
  w.key("responses").begin_object();
  w.key("size").value(static_cast<unsigned long long>(responses_.size()));
  w.key("bytes").value(static_cast<unsigned long long>(responses_.bytes()));
  w.key("hits").value(static_cast<unsigned long long>(responses_.hits()));
  w.key("misses").value(static_cast<unsigned long long>(responses_.misses()));
  w.key("coalesced").value(
      static_cast<unsigned long long>(responses_.coalesced()));
  w.key("evictions").value(
      static_cast<unsigned long long>(responses_.evictions()));
  w.end_object();
  w.key("in_flight").value(in_flight_.load());
  w.key("jobs").value(options_.jobs);
  w.end_object();
  return w.str();
}

std::string Server::prometheus_snapshot() {
  std::lock_guard<std::mutex> lock(metrics_mu_);
  // Cache counters live in the caches; copy them into gauges at scrape time
  // so one exposition carries the request metrics and the cache state.
  auto set = [&](const char* name, double v) {
    metrics_.gauge(name, /*volatile_metric=*/true).set(v);
  };
  set("serve/sim_cache_size", static_cast<double>(sim_cache_.size()));
  set("serve/sim_cache_bytes", static_cast<double>(sim_cache_.bytes()));
  set("serve/sim_cache_hits", static_cast<double>(sim_cache_.hits()));
  set("serve/sim_cache_misses", static_cast<double>(sim_cache_.misses()));
  set("serve/sim_cache_coalesced", static_cast<double>(sim_cache_.coalesced()));
  set("serve/sim_cache_evictions", static_cast<double>(sim_cache_.evictions()));
  set("serve/sim_cache_disk_hits", static_cast<double>(sim_cache_.disk_hits()));
  set("serve/response_cache_size", static_cast<double>(responses_.size()));
  set("serve/response_cache_hits", static_cast<double>(responses_.hits()));
  set("serve/response_cache_misses", static_cast<double>(responses_.misses()));
  set("serve/response_cache_coalesced",
      static_cast<double>(responses_.coalesced()));
  set("serve/in_flight_now", static_cast<double>(in_flight_.load()));
  return metrics_.to_prometheus();
}

void Server::metrics_loop() {
  while (!stopping_.load()) {
    pollfd fds[2] = {{wake_pipe_[0], POLLIN, 0}, {metrics_fd_, POLLIN, 0}};
    int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (stopping_.load()) break;
    if ((fds[1].revents & POLLIN) == 0) continue;
    int conn = ::accept(metrics_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    // Minimal HTTP: read whatever request line arrives, answer the one page
    // this endpoint has, close. Enough for curl and a Prometheus scraper.
    char buf[1024];
    [[maybe_unused]] ssize_t n = ::recv(conn, buf, sizeof(buf), 0);
    const std::string body = prometheus_snapshot();
    std::string resp =
        "HTTP/1.1 200 OK\r\n"
        "Content-Type: text/plain; version=0.0.4\r\n"
        "Content-Length: " +
        std::to_string(body.size()) +
        "\r\n"
        "Connection: close\r\n\r\n" +
        body;
    std::size_t off = 0;
    while (off < resp.size()) {
      ssize_t w = ::send(conn, resp.data() + off, resp.size() - off,
                         MSG_NOSIGNAL);
      if (w <= 0) break;
      off += static_cast<std::size_t>(w);
    }
    ::close(conn);
  }
}

}  // namespace stash::serve
