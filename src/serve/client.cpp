#include "serve/client.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "serve/protocol.h"

namespace stash::serve {

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

Client Client::connect_unix(const std::string& path) {
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) fail_errno("cannot create socket");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    throw std::runtime_error("socket path too long: " + path);
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int saved = errno;
    ::close(fd);
    errno = saved;
    fail_errno("cannot connect to " + path);
  }
  return Client(fd);
}

Client Client::connect_tcp(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail_errno("cannot create socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int saved = errno;
    ::close(fd);
    errno = saved;
    fail_errno("cannot connect to 127.0.0.1:" + std::to_string(port));
  }
  return Client(fd);
}

Client::Client(Client&& o) noexcept : fd_(std::exchange(o.fd_, -1)) {}

Client& Client::operator=(Client&& o) noexcept {
  if (this != &o) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(o.fd_, -1);
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

std::string Client::roundtrip(const std::string& request_json) {
  if (fd_ < 0) throw std::runtime_error("client not connected");
  if (!write_frame(fd_, request_json)) fail_errno("cannot send request");
  std::string payload;
  std::string err;
  switch (read_frame(fd_, payload, err)) {
    case ReadStatus::kOk:
      return payload;
    case ReadStatus::kClosed:
      throw std::runtime_error("server closed the connection");
    case ReadStatus::kError:
      throw std::runtime_error("cannot read response: " + err);
  }
  throw std::runtime_error("unreachable");
}

}  // namespace stash::serve
