// Wire protocol of the stash_serve daemon.
//
// Transport framing: each message is a 4-byte big-endian payload length
// followed by exactly that many bytes of UTF-8 JSON. Length-prefixing keeps
// the reader trivial (no delimiter scanning, no partial-JSON buffering) and
// makes oversized or garbage input rejectable before any parsing happens.
//
// Payloads are single JSON documents:
//
//   stash.serve_request/1
//     {"schema":"stash.serve_request/1", "id":"<client tag, echoed back>",
//      "command":"profile", "params":{"model":"resnet18", ...}}
//
//   stash.serve_response/1
//     {"schema":"stash.serve_response/1", "id":"...", "command":"profile",
//      "status":"ok"|"error"|"overloaded", "cached":true|false,
//      "elapsed_ms":..., "result":{...}}       (ok)
//      ..., "error":"message"}                 (error / overloaded)
//
// The result fragment of a pure command is exactly the document the CLI's
// --json mode prints for the same query (stash.run_manifest-style report
// JSON), so existing consumers parse both identically. The envelope fields
// `cached` and `elapsed_ms` are per-request observations and deliberately
// NOT part of the memoized fragment.
#pragma once

#include <cstdint>
#include <string>

#include "exec/scenario_key.h"
#include "util/json.h"

namespace stash::serve {

// Frames larger than this are a protocol error, not a malloc attempt.
inline constexpr std::uint32_t kMaxFrameBytes = 8u << 20;

enum class ReadStatus {
  kOk,        // one whole frame read into `payload`
  kClosed,    // clean EOF at a frame boundary
  kError,     // I/O failure, oversized frame, or truncated frame
};

// Blocking whole-frame read from a socket fd. Retries EINTR; a peer close
// mid-frame is kError, at a frame boundary kClosed.
ReadStatus read_frame(int fd, std::string& payload, std::string& error);

// Blocking whole-frame write (MSG_NOSIGNAL: a vanished peer yields EPIPE,
// never a SIGPIPE). Returns false on any send failure.
bool write_frame(int fd, const std::string& payload);

struct Request {
  std::string id;        // client correlation tag, echoed verbatim
  std::string command;   // "profile", "estimate", "attribute", "plan", ...
  util::JsonValue params;  // object; empty object when absent
};

// Parses and validates a stash.serve_request/1 payload. Returns false with
// a human-readable reason on schema or shape mismatch.
bool parse_request(const std::string& payload, Request& out, std::string& error);

// Canonical cache identity of a pure request: the command plus every param,
// folded sorted by key so JSON member order never splits the cache. This is
// the request-level KeyBuilder hash the daemon coalesces and memoizes on.
exec::ScenarioKey request_key(const Request& req);

// Response builders. `result_json` must be a serialized JSON value.
std::string ok_response(const Request& req, const std::string& result_json,
                        bool cached, double elapsed_ms);
std::string error_response(const Request& req, const std::string& message);
std::string overloaded_response(const Request& req);

}  // namespace stash::serve
